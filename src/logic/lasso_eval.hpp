// LTL semantics on ultimately periodic words u·v^ω ("lassos"). Used to
// validate counter-examples returned by the model checker (a reported lasso
// must actually falsify the specification) and as an independent oracle in
// the property-based test suite.
#pragma once

#include <vector>

#include "logic/ltl.hpp"
#include "logic/vocabulary.hpp"

namespace dpoaf::logic {

/// An ultimately periodic word: prefix u followed by cycle v repeated
/// forever. `cycle` must be non-empty.
struct LassoWord {
  std::vector<Symbol> prefix;
  std::vector<Symbol> cycle;
};

/// Evaluate `f` at position 0 of the infinite word `w` under standard LTL
/// semantics. Temporal operators are computed by fix-point iteration over
/// the |prefix| + |cycle| distinct positions.
bool evaluate_lasso(const Ltl& f, const LassoWord& w);

}  // namespace dpoaf::logic
