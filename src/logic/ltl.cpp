#include "logic/ltl.hpp"

#include <mutex>
#include <unordered_map>

#include "util/check.hpp"

namespace dpoaf::logic {

namespace {

struct Key {
  LtlOp op;
  int prop;
  std::uint64_t lhs;
  std::uint64_t rhs;
  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    std::uint64_t h = static_cast<std::uint64_t>(k.op) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<std::uint64_t>(static_cast<std::int64_t>(k.prop)) +
         0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h ^= k.lhs + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h ^= k.rhs + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<std::size_t>(h);
  }
};

// Process-wide interning pool. Guarded by a mutex: candidate scoring and
// checkpoint evaluation verify responses from pool worker threads, and
// each verification builds derived formulas (NNF, tableau closures) that
// intern nodes here. Node *identity* stays canonical — interning the same
// structure always yields the same handle — but id assignment order may
// vary across runs once threads race on first construction; nothing
// observable depends on the order, only on identity.
std::mutex& pool_mutex() {
  static std::mutex m;
  return m;
}

std::unordered_map<Key, Ltl, KeyHash>& pool() {
  static std::unordered_map<Key, Ltl, KeyHash> p;
  return p;
}

Ltl intern(LtlOp op, int prop, const Ltl& lhs, const Ltl& rhs) {
  const Key key{op, prop, lhs ? lhs->id : 0, rhs ? rhs->id : 0};
  std::lock_guard<std::mutex> lock(pool_mutex());
  auto& p = pool();
  if (auto it = p.find(key); it != p.end()) return it->second;
  static std::uint64_t next_id = 1;
  auto node = std::make_shared<LtlNode>(LtlNode{op, prop, lhs, rhs, next_id++});
  p.emplace(key, node);
  return node;
}

}  // namespace

namespace ltl {

Ltl ltrue() { return intern(LtlOp::True, -1, nullptr, nullptr); }
Ltl lfalse() { return intern(LtlOp::False, -1, nullptr, nullptr); }

Ltl prop(int index) {
  DPOAF_CHECK(index >= 0 &&
              static_cast<std::size_t>(index) < Vocabulary::kMaxProps);
  return intern(LtlOp::Prop, index, nullptr, nullptr);
}

Ltl lnot(const Ltl& a) {
  DPOAF_CHECK(a != nullptr);
  // Light simplification keeps tableau closures small.
  if (a->op == LtlOp::True) return lfalse();
  if (a->op == LtlOp::False) return ltrue();
  if (a->op == LtlOp::Not) return a->lhs;
  return intern(LtlOp::Not, -1, a, nullptr);
}

Ltl land(const Ltl& a, const Ltl& b) {
  DPOAF_CHECK(a != nullptr && b != nullptr);
  if (a->op == LtlOp::False || b->op == LtlOp::False) return lfalse();
  if (a->op == LtlOp::True) return b;
  if (b->op == LtlOp::True) return a;
  if (a == b) return a;
  return intern(LtlOp::And, -1, a, b);
}

Ltl lor(const Ltl& a, const Ltl& b) {
  DPOAF_CHECK(a != nullptr && b != nullptr);
  if (a->op == LtlOp::True || b->op == LtlOp::True) return ltrue();
  if (a->op == LtlOp::False) return b;
  if (b->op == LtlOp::False) return a;
  if (a == b) return a;
  return intern(LtlOp::Or, -1, a, b);
}

Ltl implies(const Ltl& a, const Ltl& b) {
  return intern(LtlOp::Implies, -1, a, b);
}

Ltl next(const Ltl& a) { return intern(LtlOp::Next, -1, a, nullptr); }

Ltl eventually(const Ltl& a) {
  return intern(LtlOp::Eventually, -1, a, nullptr);
}

Ltl always(const Ltl& a) { return intern(LtlOp::Always, -1, a, nullptr); }

Ltl until(const Ltl& a, const Ltl& b) {
  return intern(LtlOp::Until, -1, a, b);
}

Ltl release(const Ltl& a, const Ltl& b) {
  return intern(LtlOp::Release, -1, a, b);
}

Ltl land_all(const std::vector<Ltl>& xs) {
  Ltl acc = ltrue();
  for (const Ltl& x : xs) acc = land(acc, x);
  return acc;
}

Ltl lor_all(const std::vector<Ltl>& xs) {
  Ltl acc = lfalse();
  for (const Ltl& x : xs) acc = lor(acc, x);
  return acc;
}

}  // namespace ltl

namespace {

Ltl nnf_pos(const Ltl& f);

Ltl nnf_neg(const Ltl& f) {
  using namespace ltl;
  switch (f->op) {
    case LtlOp::True:
      return lfalse();
    case LtlOp::False:
      return ltrue();
    case LtlOp::Prop:
      return lnot(f);
    case LtlOp::Not:
      return nnf_pos(f->lhs);
    case LtlOp::And:
      return lor(nnf_neg(f->lhs), nnf_neg(f->rhs));
    case LtlOp::Or:
      return land(nnf_neg(f->lhs), nnf_neg(f->rhs));
    case LtlOp::Implies:
      return land(nnf_pos(f->lhs), nnf_neg(f->rhs));
    case LtlOp::Next:
      return next(nnf_neg(f->lhs));
    case LtlOp::Eventually:  // ¬◇φ = □¬φ = false R ¬φ
      return release(lfalse(), nnf_neg(f->lhs));
    case LtlOp::Always:  // ¬□φ = ◇¬φ = true U ¬φ
      return until(ltrue(), nnf_neg(f->lhs));
    case LtlOp::Until:  // ¬(φ U ψ) = ¬φ R ¬ψ
      return release(nnf_neg(f->lhs), nnf_neg(f->rhs));
    case LtlOp::Release:  // ¬(φ R ψ) = ¬φ U ¬ψ
      return until(nnf_neg(f->lhs), nnf_neg(f->rhs));
  }
  DPOAF_CHECK_MSG(false, "unreachable LtlOp in nnf_neg");
  return nullptr;
}

Ltl nnf_pos(const Ltl& f) {
  using namespace ltl;
  switch (f->op) {
    case LtlOp::True:
    case LtlOp::False:
    case LtlOp::Prop:
      return f;
    case LtlOp::Not:
      return nnf_neg(f->lhs);
    case LtlOp::And:
      return land(nnf_pos(f->lhs), nnf_pos(f->rhs));
    case LtlOp::Or:
      return lor(nnf_pos(f->lhs), nnf_pos(f->rhs));
    case LtlOp::Implies:
      return lor(nnf_neg(f->lhs), nnf_pos(f->rhs));
    case LtlOp::Next:
      return next(nnf_pos(f->lhs));
    case LtlOp::Eventually:  // ◇φ = true U φ
      return until(ltrue(), nnf_pos(f->lhs));
    case LtlOp::Always:  // □φ = false R φ
      return release(lfalse(), nnf_pos(f->lhs));
    case LtlOp::Until:
      return until(nnf_pos(f->lhs), nnf_pos(f->rhs));
    case LtlOp::Release:
      return release(nnf_pos(f->lhs), nnf_pos(f->rhs));
  }
  DPOAF_CHECK_MSG(false, "unreachable LtlOp in nnf_pos");
  return nullptr;
}

}  // namespace

Ltl to_nnf(const Ltl& f) {
  DPOAF_CHECK(f != nullptr);
  return nnf_pos(f);
}

std::size_t formula_size(const Ltl& f) {
  if (!f) return 0;
  return 1 + formula_size(f->lhs) + formula_size(f->rhs);
}

namespace {

// Precedence for parenthesis-minimal printing.
int prec(LtlOp op) {
  switch (op) {
    case LtlOp::Implies:
      return 1;
    case LtlOp::Or:
      return 2;
    case LtlOp::And:
      return 3;
    case LtlOp::Until:
    case LtlOp::Release:
      return 4;
    default:
      return 5;  // literals and unary operators
  }
}

void print(const Ltl& f, const Vocabulary& vocab, int parent_prec,
           std::string& out) {
  const int p = prec(f->op);
  const bool need_paren = p < parent_prec;
  if (need_paren) out += "(";
  switch (f->op) {
    case LtlOp::True:
      out += "true";
      break;
    case LtlOp::False:
      out += "false";
      break;
    case LtlOp::Prop:
      out += vocab.name(f->prop);
      break;
    case LtlOp::Not:
      out += "!";
      print(f->lhs, vocab, p + 1, out);
      break;
    // The parser folds & and | left-associatively, so the right child
    // needs parens at equal precedence or round-tripping would re-nest
    // `a | (b | c)` into `(a | b) | c`.
    case LtlOp::And:
      print(f->lhs, vocab, p, out);
      out += " & ";
      print(f->rhs, vocab, p + 1, out);
      break;
    case LtlOp::Or:
      print(f->lhs, vocab, p, out);
      out += " | ";
      print(f->rhs, vocab, p + 1, out);
      break;
    case LtlOp::Implies:
      print(f->lhs, vocab, p + 1, out);
      out += " -> ";
      print(f->rhs, vocab, p, out);
      break;
    case LtlOp::Next:
      out += "X ";
      print(f->lhs, vocab, p + 1, out);
      break;
    case LtlOp::Eventually:
      out += "F ";
      print(f->lhs, vocab, p + 1, out);
      break;
    case LtlOp::Always:
      out += "G ";
      print(f->lhs, vocab, p + 1, out);
      break;
    case LtlOp::Until:
      print(f->lhs, vocab, p + 1, out);
      out += " U ";
      print(f->rhs, vocab, p + 1, out);
      break;
    case LtlOp::Release:
      print(f->lhs, vocab, p + 1, out);
      out += " R ";
      print(f->rhs, vocab, p + 1, out);
      break;
  }
  if (need_paren) out += ")";
}

}  // namespace

std::string to_string(const Ltl& f, const Vocabulary& vocab) {
  DPOAF_CHECK(f != nullptr);
  std::string out;
  print(f, vocab, 0, out);
  return out;
}

}  // namespace dpoaf::logic
