// Linear temporal logic AST (Pnueli 1977), used for the specifications Φ
// the paper verifies controllers against. Nodes are hash-consed: building
// the same formula twice yields the same pointer, so structural equality is
// pointer equality — this is what makes the GPVW tableau sets cheap.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "logic/vocabulary.hpp"

namespace dpoaf::logic {

enum class LtlOp {
  True,
  False,
  Prop,
  Not,
  And,
  Or,
  Implies,
  Next,        // ○ φ
  Eventually,  // ◇ φ
  Always,      // □ φ
  Until,       // φ U ψ
  Release,     // φ R ψ
};

struct LtlNode;
/// Interned, immutable formula handle. Pointer equality ⇔ structural
/// equality for formulas built through the ltl::* constructors below.
using Ltl = std::shared_ptr<const LtlNode>;

struct LtlNode {
  LtlOp op;
  int prop = -1;  // valid when op == Prop; index into a Vocabulary
  Ltl lhs;        // unary operand or left operand
  Ltl rhs;        // right operand for binary operators
  std::uint64_t id = 0;  // unique interning id (stable within a process)
};

namespace ltl {

Ltl ltrue();
Ltl lfalse();
Ltl prop(int index);
Ltl lnot(const Ltl& a);
Ltl land(const Ltl& a, const Ltl& b);
Ltl lor(const Ltl& a, const Ltl& b);
Ltl implies(const Ltl& a, const Ltl& b);
Ltl next(const Ltl& a);
Ltl eventually(const Ltl& a);
Ltl always(const Ltl& a);
Ltl until(const Ltl& a, const Ltl& b);
Ltl release(const Ltl& a, const Ltl& b);

/// n-ary conjunction/disjunction (empty → true/false respectively).
Ltl land_all(const std::vector<Ltl>& xs);
Ltl lor_all(const std::vector<Ltl>& xs);

}  // namespace ltl

/// Negation normal form: negations pushed to literals; Implies eliminated;
/// Eventually/Always rewritten to Until/Release. The result only contains
/// True, False, Prop, Not(Prop), And, Or, Next, Until, Release — the input
/// language of the LTL→Büchi tableau.
Ltl to_nnf(const Ltl& f);

/// Number of nodes in the DAG-unfolded syntax tree (diagnostic metric).
std::size_t formula_size(const Ltl& f);

/// Human-readable rendering using names from `vocab`, e.g.
/// "G (pedestrian_in_front -> F stop)".
std::string to_string(const Ltl& f, const Vocabulary& vocab);

}  // namespace dpoaf::logic
