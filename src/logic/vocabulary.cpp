#include "logic/vocabulary.hpp"

#include "util/check.hpp"

namespace dpoaf::logic {

int Vocabulary::add(std::string_view name, bool action) {
  const std::string key(name);
  if (auto it = index_.find(key); it != index_.end()) {
    DPOAF_CHECK_MSG(action_flags_[static_cast<std::size_t>(it->second)] ==
                        action,
                    "name registered with a different kind: " + key);
    return it->second;
  }
  DPOAF_CHECK_MSG(names_.size() < kMaxProps,
                  "vocabulary limited to 64 propositions");
  const int idx = static_cast<int>(names_.size());
  names_.push_back(key);
  action_flags_.push_back(action);
  index_.emplace(key, idx);
  if (!action) ++prop_count_;
  return idx;
}

int Vocabulary::add_prop(std::string_view name) { return add(name, false); }
int Vocabulary::add_action(std::string_view name) { return add(name, true); }

std::optional<int> Vocabulary::find(std::string_view name) const {
  if (auto it = index_.find(std::string(name)); it != index_.end())
    return it->second;
  return std::nullopt;
}

bool Vocabulary::is_action(int index) const {
  DPOAF_CHECK(index >= 0 && static_cast<std::size_t>(index) < names_.size());
  return action_flags_[static_cast<std::size_t>(index)];
}

const std::string& Vocabulary::name(int index) const {
  DPOAF_CHECK(index >= 0 && static_cast<std::size_t>(index) < names_.size());
  return names_[static_cast<std::size_t>(index)];
}

std::vector<int> Vocabulary::prop_indices() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (!action_flags_[i]) out.push_back(static_cast<int>(i));
  return out;
}

std::vector<int> Vocabulary::action_indices() const {
  std::vector<int> out;
  for (std::size_t i = 0; i < names_.size(); ++i)
    if (action_flags_[i]) out.push_back(static_cast<int>(i));
  return out;
}

Symbol Vocabulary::env_mask() const {
  Symbol m = 0;
  for (int i : prop_indices()) m |= bit(i);
  return m;
}

Symbol Vocabulary::action_mask() const {
  Symbol m = 0;
  for (int i : action_indices()) m |= bit(i);
  return m;
}

Symbol Vocabulary::make_symbol(
    std::initializer_list<std::string_view> names) const {
  Symbol sym = 0;
  for (std::string_view n : names) {
    const auto idx = find(n);
    DPOAF_CHECK_MSG(idx.has_value(),
                    "unknown proposition: " + std::string(n));
    sym |= bit(*idx);
  }
  return sym;
}

std::string Vocabulary::format(Symbol sym) const {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (!has(sym, static_cast<int>(i))) continue;
    if (!first) out += ", ";
    out += names_[i];
    first = false;
  }
  out += "}";
  return out;
}

Vocabulary make_driving_vocabulary() {
  Vocabulary v;
  v.add_prop("green_traffic_light");
  v.add_prop("green_left_turn_light");
  v.add_prop("flashing_left_turn_light");
  v.add_prop("opposite_car");
  v.add_prop("car_from_left");
  v.add_prop("car_from_right");
  v.add_prop("pedestrian_at_left");
  v.add_prop("pedestrian_at_right");
  v.add_prop("pedestrian_in_front");
  v.add_prop("stop_sign");
  v.add_action("stop");
  v.add_action("turn_left");
  v.add_action("turn_right");
  v.add_action("go_straight");
  return v;
}

}  // namespace dpoaf::logic
