// Recursive-descent parser for the ASCII LTL syntax used throughout the
// repository (specifications, tests, fairness assumptions):
//
//   expr    := or ('->' expr)?                  (implication, right-assoc)
//   or      := and ('|' and)*
//   and     := until ('&' until)*
//   until   := unary (('U' | 'R') until)?       (right-assoc)
//   unary   := ('!' | 'G' | 'F' | 'X') unary | atom
//   atom    := 'true' | 'false' | ident | '(' expr ')'
//
// `ident` is an underscored proposition/action name resolved against the
// vocabulary (e.g. green_traffic_light). Unicode operators □ ◇ ○ from the
// paper are accepted as synonyms for G F X.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "logic/ltl.hpp"
#include "logic/vocabulary.hpp"

namespace dpoaf::logic {

class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Parse `text` into a formula; throws ParseError on malformed input or
/// names missing from `vocab`.
Ltl parse_ltl(std::string_view text, const Vocabulary& vocab);

}  // namespace dpoaf::logic
