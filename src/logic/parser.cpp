#include "logic/parser.hpp"

#include <cctype>
#include <vector>

namespace dpoaf::logic {

namespace {

enum class Tok { Ident, LParen, RParen, Not, And, Or, Implies, End };

struct Token {
  Tok kind;
  std::string text;  // for Ident
};

class Lexer {
 public:
  explicit Lexer(std::string_view s) : s_(s) {}

  Token next() {
    skip_ws();
    if (pos_ >= s_.size()) return {Tok::End, ""};
    const char c = s_[pos_];
    // Unicode synonyms for the paper's notation.
    if (consume_utf8("□") || consume_utf8("☐")) return {Tok::Ident, "G"};
    if (consume_utf8("◇") || consume_utf8("⋄")) return {Tok::Ident, "F"};
    if (consume_utf8("○")) return {Tok::Ident, "X"};
    if (consume_utf8("¬")) return {Tok::Not, ""};
    if (consume_utf8("∧")) return {Tok::And, ""};
    if (consume_utf8("∨")) return {Tok::Or, ""};
    if (consume_utf8("→")) return {Tok::Implies, ""};
    switch (c) {
      case '(':
        ++pos_;
        return {Tok::LParen, ""};
      case ')':
        ++pos_;
        return {Tok::RParen, ""};
      case '!':
        ++pos_;
        return {Tok::Not, ""};
      case '&':
        ++pos_;
        if (pos_ < s_.size() && s_[pos_] == '&') ++pos_;
        return {Tok::And, ""};
      case '|':
        ++pos_;
        if (pos_ < s_.size() && s_[pos_] == '|') ++pos_;
        return {Tok::Or, ""};
      case '-':
        if (pos_ + 1 < s_.size() && s_[pos_ + 1] == '>') {
          pos_ += 2;
          return {Tok::Implies, ""};
        }
        throw ParseError("unexpected '-' in LTL formula");
      default:
        break;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = pos_;
      while (j < s_.size() &&
             (std::isalnum(static_cast<unsigned char>(s_[j])) || s_[j] == '_'))
        ++j;
      Token t{Tok::Ident, std::string(s_.substr(pos_, j - pos_))};
      pos_ = j;
      return t;
    }
    throw ParseError(std::string("unexpected character '") + c +
                     "' in LTL formula");
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }
  bool consume_utf8(std::string_view needle) {
    if (s_.substr(pos_, needle.size()) == needle) {
      pos_ += needle.size();
      return true;
    }
    return false;
  }
  std::string_view s_;
  std::size_t pos_ = 0;
};

class Parser {
 public:
  Parser(std::string_view text, const Vocabulary& vocab)
      : vocab_(vocab), lexer_(text) {
    advance();
  }

  Ltl parse() {
    Ltl f = expr();
    expect(Tok::End, "trailing input after formula");
    return f;
  }

 private:
  void advance() { cur_ = lexer_.next(); }

  void expect(Tok kind, const char* msg) {
    if (cur_.kind != kind) throw ParseError(msg);
  }

  Ltl expr() {
    Ltl lhs = or_expr();
    if (cur_.kind == Tok::Implies) {
      advance();
      return ltl::implies(lhs, expr());
    }
    return lhs;
  }

  Ltl or_expr() {
    Ltl lhs = and_expr();
    while (cur_.kind == Tok::Or) {
      advance();
      lhs = ltl::lor(lhs, and_expr());
    }
    return lhs;
  }

  Ltl and_expr() {
    Ltl lhs = until_expr();
    while (cur_.kind == Tok::And) {
      advance();
      lhs = ltl::land(lhs, until_expr());
    }
    return lhs;
  }

  Ltl until_expr() {
    Ltl lhs = unary();
    if (cur_.kind == Tok::Ident && (cur_.text == "U" || cur_.text == "R")) {
      const bool is_until = cur_.text == "U";
      advance();
      Ltl rhs = until_expr();
      return is_until ? ltl::until(lhs, rhs) : ltl::release(lhs, rhs);
    }
    return lhs;
  }

  Ltl unary() {
    if (cur_.kind == Tok::Not) {
      advance();
      return ltl::lnot(unary());
    }
    if (cur_.kind == Tok::Ident) {
      if (cur_.text == "G") {
        advance();
        return ltl::always(unary());
      }
      if (cur_.text == "F") {
        advance();
        return ltl::eventually(unary());
      }
      if (cur_.text == "X") {
        advance();
        return ltl::next(unary());
      }
    }
    return atom();
  }

  Ltl atom() {
    if (cur_.kind == Tok::LParen) {
      advance();
      Ltl f = expr();
      expect(Tok::RParen, "expected ')'");
      advance();
      return f;
    }
    expect(Tok::Ident, "expected proposition, 'true', 'false' or '('");
    const std::string name = cur_.text;
    advance();
    if (name == "true" || name == "TRUE") return ltl::ltrue();
    if (name == "false" || name == "FALSE") return ltl::lfalse();
    const auto idx = vocab_.find(name);
    if (!idx) throw ParseError("unknown proposition: " + name);
    return ltl::prop(*idx);
  }

  const Vocabulary& vocab_;
  Lexer lexer_;
  Token cur_{Tok::End, ""};
};

}  // namespace

Ltl parse_ltl(std::string_view text, const Vocabulary& vocab) {
  return Parser(text, vocab).parse();
}

}  // namespace dpoaf::logic
