#include "logic/lasso_eval.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace dpoaf::logic {

namespace {

// The word has |prefix| + |cycle| distinct positions; position i's successor
// is i+1, except the last position which loops back to the cycle start.
class LassoEvaluator {
 public:
  explicit LassoEvaluator(const LassoWord& w) : w_(w) {
    n_ = w.prefix.size() + w.cycle.size();
  }

  const std::vector<char>& values(const Ltl& f) {
    if (auto it = memo_.find(f->id); it != memo_.end()) return it->second;
    std::vector<char> v(n_, 0);
    switch (f->op) {
      case LtlOp::True:
        v.assign(n_, 1);
        break;
      case LtlOp::False:
        break;
      case LtlOp::Prop: {
        for (std::size_t i = 0; i < n_; ++i)
          v[i] = Vocabulary::has(at(i), f->prop) ? 1 : 0;
        break;
      }
      case LtlOp::Not: {
        const auto& a = values(f->lhs);
        for (std::size_t i = 0; i < n_; ++i) v[i] = a[i] ? 0 : 1;
        break;
      }
      case LtlOp::And: {
        const auto& a = values(f->lhs);
        const auto& b = values(f->rhs);
        for (std::size_t i = 0; i < n_; ++i) v[i] = (a[i] && b[i]) ? 1 : 0;
        break;
      }
      case LtlOp::Or: {
        const auto& a = values(f->lhs);
        const auto& b = values(f->rhs);
        for (std::size_t i = 0; i < n_; ++i) v[i] = (a[i] || b[i]) ? 1 : 0;
        break;
      }
      case LtlOp::Implies: {
        const auto& a = values(f->lhs);
        const auto& b = values(f->rhs);
        for (std::size_t i = 0; i < n_; ++i) v[i] = (!a[i] || b[i]) ? 1 : 0;
        break;
      }
      case LtlOp::Next: {
        const auto& a = values(f->lhs);
        for (std::size_t i = 0; i < n_; ++i) v[i] = a[succ(i)];
        break;
      }
      case LtlOp::Eventually: {
        // Least fix-point of v[i] = a[i] ∨ v[succ(i)].
        const auto& a = values(f->lhs);
        v = lfp(a, std::vector<char>(n_, 1));
        break;
      }
      case LtlOp::Always: {
        // Greatest fix-point of v[i] = a[i] ∧ v[succ(i)].
        const auto& a = values(f->lhs);
        v = gfp(std::vector<char>(n_, 0), a);
        break;
      }
      case LtlOp::Until: {
        // Least fix-point of v[i] = b[i] ∨ (a[i] ∧ v[succ(i)]).
        v = lfp(values(f->rhs), values(f->lhs));
        break;
      }
      case LtlOp::Release: {
        // Greatest fix-point of v[i] = b[i] ∧ (a[i] ∨ v[succ(i)]).
        v = gfp(values(f->lhs), values(f->rhs));
        break;
      }
    }
    return memo_.emplace(f->id, std::move(v)).first->second;
  }

 private:
  Symbol at(std::size_t i) const {
    return i < w_.prefix.size() ? w_.prefix[i]
                                : w_.cycle[i - w_.prefix.size()];
  }
  std::size_t succ(std::size_t i) const {
    return i + 1 < n_ ? i + 1 : w_.prefix.size();
  }

  // v[i] = hold_now[i] ∨ (cont[i] ∧ v[succ(i)]), least fix-point.
  std::vector<char> lfp(const std::vector<char>& hold_now,
                        const std::vector<char>& cont) {
    std::vector<char> v(n_, 0);
    for (std::size_t iter = 0; iter <= n_; ++iter) {
      bool changed = false;
      for (std::size_t i = n_; i-- > 0;) {
        const char nv =
            (hold_now[i] || (cont[i] && v[succ(i)])) ? 1 : 0;
        if (nv != v[i]) {
          v[i] = nv;
          changed = true;
        }
      }
      if (!changed) break;
    }
    return v;
  }

  // v[i] = must[i] ∧ (release_now[i] ∨ v[succ(i)]), greatest fix-point.
  std::vector<char> gfp(const std::vector<char>& release_now,
                        const std::vector<char>& must) {
    std::vector<char> v(n_, 1);
    for (std::size_t iter = 0; iter <= n_; ++iter) {
      bool changed = false;
      for (std::size_t i = n_; i-- > 0;) {
        const char nv = (must[i] && (release_now[i] || v[succ(i)])) ? 1 : 0;
        if (nv != v[i]) {
          v[i] = nv;
          changed = true;
        }
      }
      if (!changed) break;
    }
    return v;
  }

  const LassoWord& w_;
  std::size_t n_ = 0;
  std::unordered_map<std::uint64_t, std::vector<char>> memo_;
};

}  // namespace

bool evaluate_lasso(const Ltl& f, const LassoWord& w) {
  DPOAF_CHECK(f != nullptr);
  DPOAF_CHECK_MSG(!w.cycle.empty(), "lasso cycle must be non-empty");
  LassoEvaluator ev(w);
  return ev.values(f)[0] != 0;
}

}  // namespace dpoaf::logic
