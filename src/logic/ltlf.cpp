#include "logic/ltlf.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace dpoaf::logic {

namespace {

struct Memo {
  // Key: (node id, position), compared exactly. The previous scheme
  // flattened the pair into `id * 1000003 + pos`, which collides whenever
  // two pairs differ by a multiple of the stride — reachable with traces
  // past a million steps (ids are consecutive for formulas interned
  // back-to-back), silently returning one subformula's verdict for
  // another's (regression: tests/test_logic.cpp MemoKeyCollision).
  struct Key {
    std::uint64_t id = 0;
    std::uint64_t pos = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // splitmix64-style mix of both fields; exactness comes from
      // operator==, the hash only needs to spread.
      std::uint64_t h = k.id * 0x9E3779B97F4A7C15ULL + k.pos;
      h ^= h >> 30;
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<Key, bool, KeyHash> table;
  const Trace* trace = nullptr;

  static Key key(const Ltl& f, std::size_t pos) {
    return Key{f->id, pos};
  }

  bool eval(const Ltl& f, std::size_t pos) {
    const std::size_t n = trace->size();
    DPOAF_DCHECK(pos < n);
    switch (f->op) {
      case LtlOp::True:
        return true;
      case LtlOp::False:
        return false;
      case LtlOp::Prop:
        return Vocabulary::has((*trace)[pos], f->prop);
      case LtlOp::Not:
        return !eval(f->lhs, pos);
      case LtlOp::And:
        return eval(f->lhs, pos) && eval(f->rhs, pos);
      case LtlOp::Or:
        return eval(f->lhs, pos) || eval(f->rhs, pos);
      case LtlOp::Implies:
        return !eval(f->lhs, pos) || eval(f->rhs, pos);
      case LtlOp::Next:
        return pos + 1 < n && memo(f->lhs, pos + 1);
      case LtlOp::Eventually: {
        for (std::size_t j = pos; j < n; ++j)
          if (memo(f->lhs, j)) return true;
        return false;
      }
      case LtlOp::Always: {
        for (std::size_t j = pos; j < n; ++j)
          if (!memo(f->lhs, j)) return false;
        return true;
      }
      case LtlOp::Until: {
        for (std::size_t j = pos; j < n; ++j) {
          if (memo(f->rhs, j)) return true;
          if (!memo(f->lhs, j)) return false;
        }
        return false;
      }
      case LtlOp::Release: {
        // φ R ψ on finite traces: ψ holds up to and including the step where
        // φ first holds; if φ never holds, ψ must hold to the end.
        for (std::size_t j = pos; j < n; ++j) {
          if (!memo(f->rhs, j)) return false;
          if (memo(f->lhs, j)) return true;
        }
        return true;
      }
    }
    DPOAF_CHECK_MSG(false, "unreachable LtlOp in LTLf evaluation");
    return false;
  }

  bool memo(const Ltl& f, std::size_t pos) {
    const Key k = key(f, pos);
    if (auto it = table.find(k); it != table.end()) return it->second;
    const bool v = eval(f, pos);
    table.emplace(k, v);
    return v;
  }
};

}  // namespace

bool evaluate_ltlf(const Ltl& f, const Trace& trace, std::size_t pos) {
  DPOAF_CHECK(f != nullptr);
  DPOAF_CHECK_MSG(pos < trace.size(),
                  "LTLf evaluation requires a non-empty trace");
  Memo memo;
  memo.trace = &trace;
  return memo.memo(f, pos);
}

double satisfaction_rate(const Ltl& f, const std::vector<Trace>& traces) {
  if (traces.empty()) return 0.0;
  // Empty traces carry no step to evaluate: they are excluded from the
  // denominator rather than silently counted as violations, and a batch
  // of *only* empty traces is a simulator bug, not a 0% rate.
  std::size_t sat = 0, evaluated = 0;
  for (const Trace& t : traces) {
    if (t.empty()) continue;
    ++evaluated;
    if (evaluate_ltlf(f, t)) ++sat;
  }
  DPOAF_CHECK_MSG(evaluated > 0,
                  "satisfaction_rate over " + std::to_string(traces.size()) +
                      " traces: every trace is empty — the simulator "
                      "produced no steps");
  return static_cast<double>(sat) / static_cast<double>(evaluated);
}

}  // namespace dpoaf::logic
