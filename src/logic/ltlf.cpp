#include "logic/ltlf.hpp"

#include <unordered_map>

#include "util/check.hpp"

namespace dpoaf::logic {

namespace {

struct Memo {
  // Key: (node id, position). Values memoized per evaluate_ltlf call.
  std::unordered_map<std::uint64_t, bool> table;
  const Trace* trace = nullptr;

  static std::uint64_t key(const Ltl& f, std::size_t pos) {
    return f->id * 1000003ULL + pos;
  }

  bool eval(const Ltl& f, std::size_t pos) {
    const std::size_t n = trace->size();
    DPOAF_DCHECK(pos < n);
    switch (f->op) {
      case LtlOp::True:
        return true;
      case LtlOp::False:
        return false;
      case LtlOp::Prop:
        return Vocabulary::has((*trace)[pos], f->prop);
      case LtlOp::Not:
        return !eval(f->lhs, pos);
      case LtlOp::And:
        return eval(f->lhs, pos) && eval(f->rhs, pos);
      case LtlOp::Or:
        return eval(f->lhs, pos) || eval(f->rhs, pos);
      case LtlOp::Implies:
        return !eval(f->lhs, pos) || eval(f->rhs, pos);
      case LtlOp::Next:
        return pos + 1 < n && memo(f->lhs, pos + 1);
      case LtlOp::Eventually: {
        for (std::size_t j = pos; j < n; ++j)
          if (memo(f->lhs, j)) return true;
        return false;
      }
      case LtlOp::Always: {
        for (std::size_t j = pos; j < n; ++j)
          if (!memo(f->lhs, j)) return false;
        return true;
      }
      case LtlOp::Until: {
        for (std::size_t j = pos; j < n; ++j) {
          if (memo(f->rhs, j)) return true;
          if (!memo(f->lhs, j)) return false;
        }
        return false;
      }
      case LtlOp::Release: {
        // φ R ψ on finite traces: ψ holds up to and including the step where
        // φ first holds; if φ never holds, ψ must hold to the end.
        for (std::size_t j = pos; j < n; ++j) {
          if (!memo(f->rhs, j)) return false;
          if (memo(f->lhs, j)) return true;
        }
        return true;
      }
    }
    DPOAF_CHECK_MSG(false, "unreachable LtlOp in LTLf evaluation");
    return false;
  }

  bool memo(const Ltl& f, std::size_t pos) {
    const std::uint64_t k = key(f, pos);
    if (auto it = table.find(k); it != table.end()) return it->second;
    const bool v = eval(f, pos);
    table.emplace(k, v);
    return v;
  }
};

}  // namespace

bool evaluate_ltlf(const Ltl& f, const Trace& trace, std::size_t pos) {
  DPOAF_CHECK(f != nullptr);
  DPOAF_CHECK_MSG(pos < trace.size(),
                  "LTLf evaluation requires a non-empty trace");
  Memo memo;
  memo.trace = &trace;
  return memo.memo(f, pos);
}

double satisfaction_rate(const Ltl& f, const std::vector<Trace>& traces) {
  if (traces.empty()) return 0.0;
  std::size_t sat = 0;
  for (const Trace& t : traces)
    if (!t.empty() && evaluate_ltlf(f, t)) ++sat;
  return static_cast<double>(sat) / static_cast<double>(traces.size());
}

}  // namespace dpoaf::logic
