// LTL over finite traces (LTLf) — the semantics used for the paper's
// *empirical evaluation* channel (Eq. 2): simulator rollouts are finite
// sequences over 2^(P ∪ P_A), and each rollout is checked against each
// specification. Standard LTLf semantics: X is the strong next (false at
// the last position), G/F/U/R quantify over the remaining finite suffix.
#pragma once

#include <vector>

#include "logic/ltl.hpp"
#include "logic/vocabulary.hpp"

namespace dpoaf::logic {

/// A finite trace: one Symbol (truth assignment over P ∪ P_A) per step.
using Trace = std::vector<Symbol>;

/// Evaluate `f` on `trace` starting at position `pos`. Requires
/// pos < trace.size(). Memoizes internally; O(|f| · |trace|²) worst case.
bool evaluate_ltlf(const Ltl& f, const Trace& trace, std::size_t pos = 0);

/// Fraction of non-empty traces satisfying `f` — the paper's P_Φ. Empty
/// *input* → 0; empty traces within the input are excluded from the
/// denominator (they carry no step to evaluate), and a non-empty input
/// consisting solely of empty traces CHECKs — that is a simulator bug,
/// not a 0% satisfaction rate. The compiled-monitor fast path
/// (monitor::satisfaction_counts) is verdict-identical to this function.
double satisfaction_rate(const Ltl& f, const std::vector<Trace>& traces);

}  // namespace dpoaf::logic
