// LTL over finite traces (LTLf) — the semantics used for the paper's
// *empirical evaluation* channel (Eq. 2): simulator rollouts are finite
// sequences over 2^(P ∪ P_A), and each rollout is checked against each
// specification. Standard LTLf semantics: X is the strong next (false at
// the last position), G/F/U/R quantify over the remaining finite suffix.
#pragma once

#include <vector>

#include "logic/ltl.hpp"
#include "logic/vocabulary.hpp"

namespace dpoaf::logic {

/// A finite trace: one Symbol (truth assignment over P ∪ P_A) per step.
using Trace = std::vector<Symbol>;

/// Evaluate `f` on `trace` starting at position `pos`. Requires
/// pos < trace.size(). Memoizes internally; O(|f| · |trace|²) worst case.
bool evaluate_ltlf(const Ltl& f, const Trace& trace, std::size_t pos = 0);

/// Fraction of traces satisfying `f` — the paper's P_Φ. Empty input → 0.
double satisfaction_rate(const Ltl& f, const std::vector<Trace>& traces);

}  // namespace dpoaf::logic
