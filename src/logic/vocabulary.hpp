// Vocabulary: the atomic-proposition sets P (environment behaviours) and
// P_A (controller actions) from the paper (§3). A Symbol σ ∈ 2^(P ∪ P_A) is
// a 64-bit mask over the combined index space; environment propositions and
// action propositions share indices so LTL specifications can mix both
// (e.g., □(pedestrian → ◇ stop)).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dpoaf::logic {

/// A truth assignment over the vocabulary: bit i set ⇔ proposition i holds.
using Symbol = std::uint64_t;

class Vocabulary {
 public:
  static constexpr std::size_t kMaxProps = 64;

  /// Register an environment proposition (set P). Returns its index.
  /// Re-registering an existing name returns the existing index.
  int add_prop(std::string_view name);

  /// Register an action proposition (set P_A). Returns its index.
  int add_action(std::string_view name);

  [[nodiscard]] std::optional<int> find(std::string_view name) const;
  [[nodiscard]] bool is_action(int index) const;
  [[nodiscard]] const std::string& name(int index) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] std::size_t prop_count() const { return prop_count_; }
  [[nodiscard]] std::size_t action_count() const {
    return names_.size() - prop_count_;
  }

  /// Indices of all environment propositions / all actions.
  [[nodiscard]] std::vector<int> prop_indices() const;
  [[nodiscard]] std::vector<int> action_indices() const;

  /// Mask with a bit set for every environment proposition / action.
  [[nodiscard]] Symbol env_mask() const;
  [[nodiscard]] Symbol action_mask() const;

  [[nodiscard]] static Symbol bit(int index) {
    return Symbol{1} << static_cast<unsigned>(index);
  }
  [[nodiscard]] static bool has(Symbol sym, int index) {
    return (sym >> static_cast<unsigned>(index)) & 1U;
  }

  /// Build a symbol from proposition names; all names must exist.
  [[nodiscard]] Symbol make_symbol(
      std::initializer_list<std::string_view> names) const;

  /// Render a symbol as "{a, b}" for diagnostics.
  [[nodiscard]] std::string format(Symbol sym) const;

 private:
  int add(std::string_view name, bool action);

  std::vector<std::string> names_;
  std::vector<bool> action_flags_;
  std::unordered_map<std::string, int> index_;
  std::size_t prop_count_ = 0;
};

/// The shared driving-domain vocabulary from §5.1 of the paper:
/// propositions {green traffic light, green left-turn light, flashing
/// left-turn light, opposite car, car from left, car from right, pedestrian
/// at left, pedestrian at right, pedestrian in front, stop sign} and actions
/// {stop, turn left, turn right, go straight}. Names are underscored.
Vocabulary make_driving_vocabulary();

}  // namespace dpoaf::logic
