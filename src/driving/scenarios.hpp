// The autonomous-driving world models from the paper (§5.1 and Appendix C):
// one transition system per scenario — regular traffic light (Fig. 5),
// wide median (Fig. 6), left-turn signal (Fig. 15), two-way stop (Fig. 16),
// roundabout (Fig. 17) — plus the universal model that integrates them.
//
// Each scenario is generated with Algorithm 1 over its proposition subset:
// a state per valid labeling and a transition wherever the environment can
// move between two labelings in one perception step (at most two
// propositions change at once — this is what lets the model checker find
// the paper's §5.1 edge case where "the traffic light turns back to red
// AND a car comes from the left" in a single step).
#pragma once

#include <string>
#include <vector>

#include "automata/transition_system.hpp"
#include "logic/ltl.hpp"
#include "logic/vocabulary.hpp"

namespace dpoaf::driving {

using automata::TransitionSystem;
using logic::Ltl;
using logic::Vocabulary;

enum class ScenarioId {
  TrafficLight,    // Fig. 5 — intersection with a regular signal
  WideMedian,      // Fig. 6 — yield-based wide median
  LeftTurnSignal,  // Fig. 15 — intersection with explicit left-turn light
  TwoWayStop,      // Fig. 16 — two-way stop sign
  Roundabout,      // Fig. 17 — roundabout entry
};

std::vector<ScenarioId> all_scenarios();
std::string scenario_name(ScenarioId id);

/// Build one scenario's transition system over `vocab` (must be the
/// driving vocabulary). `conservative` keeps unreachable labelings
/// (Algorithm 1's no-pruning variant; used by the ablation bench).
TransitionSystem make_scenario_model(ScenarioId id, const Vocabulary& vocab,
                                     bool conservative = false);

/// The paper's universal model: disjoint integration of all scenarios, so
/// a controller is verified from every state of every scenario at once.
TransitionSystem make_universal_model(const Vocabulary& vocab);

/// Per-scenario LTL fairness assumptions: the environment is live — the
/// configuration that permits the scenario's legal manoeuvre (green light
/// and/or clear traffic) recurs infinitely often. Liveness specifications
/// (Φ7, Φ10, Φ13, …) are checked under these, mirroring NuSMV FAIRNESS
/// constraints.
std::vector<Ltl> fairness_assumptions(ScenarioId id, const Vocabulary& vocab);

}  // namespace dpoaf::driving
