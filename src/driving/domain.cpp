#include "driving/domain.hpp"

#include "automata/product.hpp"
#include "monitor/monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace dpoaf::driving {

DrivingDomain::DrivingDomain()
    : vocab_(logic::make_driving_vocabulary()),
      aligner_(glm2fsa::make_driving_aligner(vocab_)),
      specs_(rulebook(vocab_)),
      tasks_(task_catalog()) {
  // Satisfiability / triviality pre-pass: an unsatisfiable spec would
  // zero every controller's score and a trivially-true one would inflate
  // it — both are rulebook authoring bugs, so reject them before any
  // checking runs against the rulebook.
  for (const modelcheck::NamedSpec& spec : specs_) {
    const monitor::SpecClass cls = monitor::classify_spec(spec.formula);
    DPOAF_CHECK_MSG(cls != monitor::SpecClass::kUnsatisfiable,
                    "rulebook spec '" + spec.name +
                        "' is unsatisfiable over finite traces");
    DPOAF_CHECK_MSG(cls != monitor::SpecClass::kTriviallyTrue,
                    "rulebook spec '" + spec.name +
                        "' is trivially true over finite traces");
  }
  for (ScenarioId id : all_scenarios()) {
    models_.emplace(id, make_scenario_model(id, vocab_));
    fairness_.emplace(id, fairness_assumptions(id, vocab_));
  }
  universal_ = make_universal_model(vocab_);
  stop_action_ = logic::Vocabulary::bit(*vocab_.find("stop"));
}

const TransitionSystem& DrivingDomain::model(ScenarioId id) const {
  const auto it = models_.find(id);
  DPOAF_CHECK(it != models_.end());
  return it->second;
}

const std::vector<logic::Ltl>& DrivingDomain::fairness(ScenarioId id) const {
  const auto it = fairness_.find(id);
  DPOAF_CHECK(it != fairness_.end());
  return it->second;
}

glm2fsa::BuildOptions DrivingDomain::build_options() const {
  glm2fsa::BuildOptions opt;
  opt.wait_action = stop_action_;
  return opt;
}

automata::ProductOptions DrivingDomain::product_options() const {
  automata::ProductOptions opt;
  opt.epsilon_label = stop_action_;
  return opt;
}

const Task& DrivingDomain::task_by_id(std::string_view id) const {
  for (const Task& t : tasks_)
    if (t.id == id) return t;
  DPOAF_CHECK_MSG(false, "unknown task id: " + std::string(id));
  // Unreachable; silences the missing-return warning.
  return tasks_.front();
}

std::string canonical_response_text(std::string_view response_text) {
  // Mirror glm2fsa::split_steps's projection: split on '\n', trim each
  // line (which also strips '\r'), drop blanks. Texts differing only in
  // line endings or surrounding whitespace share one cache entry.
  std::string out;
  for (const std::string& raw : split(response_text, '\n')) {
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (!out.empty()) out += '\n';
    out += line;
  }
  return out;
}

namespace {

FeedbackResult compute_feedback(const DrivingDomain& domain,
                                ScenarioId scenario,
                                std::string_view response_text) {
  // "synthesis" (GLM2FSA) and "verification" (product + 15-spec model
  // checking) are two of the five pipeline phases in the RunReport.
  static obs::Counter& computed = obs::counter("feedback.computed");
  static obs::Counter& failures = obs::counter("feedback.alignment_failures");
  computed.add();
  FeedbackResult result;
  {
    obs::Span span("synthesis", obs::histogram("glm2fsa.synthesis_ns"));
    auto g2f = glm2fsa::glm2fsa(response_text, domain.aligner(),
                                domain.build_options());
    result.issues = g2f.parsed.issues;
    if (!g2f.parsed.ok()) {
      failures.add();
      result.aligned = false;
      return result;
    }
    result.aligned = true;
    result.controller = std::move(g2f.controller);
  }
  obs::Span span("verification", obs::histogram("modelcheck.verify_ns"));
  const automata::Kripke product = automata::make_product(
      domain.model(scenario), result.controller, domain.product_options());
  result.report = modelcheck::verify_all(product, domain.specs(),
                                         domain.fairness(scenario));
  return result;
}

}  // namespace

FeedbackResult formal_feedback(const DrivingDomain& domain,
                               ScenarioId scenario,
                               std::string_view response_text) {
  static obs::Counter& requests = obs::counter("feedback.requests");
  requests.add();
  if (!domain.feedback_cache_enabled())
    return compute_feedback(domain, scenario, response_text);
  std::string key = scenario_name(scenario);
  key += '\n';
  key += canonical_response_text(response_text);
  return domain.feedback_cache_.get_or_compute(key, [&] {
    return compute_feedback(domain, scenario, response_text);
  });
}

}  // namespace dpoaf::driving
