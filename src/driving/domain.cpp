#include "driving/domain.hpp"

#include "automata/product.hpp"
#include "monitor/monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace dpoaf::driving {

DrivingDomain::DrivingDomain() : DrivingDomain(generator::GeneratorConfig{}) {}

DrivingDomain::DrivingDomain(const generator::GeneratorConfig& gen)
    : vocab_(logic::make_driving_vocabulary()),
      aligner_(glm2fsa::make_driving_aligner(vocab_)),
      specs_(rulebook(vocab_)),
      tasks_(task_catalog()) {
  // Satisfiability / triviality pre-pass: an unsatisfiable spec would
  // zero every controller's score and a trivially-true one would inflate
  // it — both are rulebook authoring bugs, so reject them before any
  // checking runs against the rulebook. (Generated rulebooks go through
  // the tolerant version of this gate inside instantiate_rulebook, where
  // degenerate instantiations are expected and silently discarded.)
  for (const modelcheck::NamedSpec& spec : specs_) {
    const monitor::SpecClass cls = monitor::classify_spec(spec.formula);
    DPOAF_CHECK_MSG(cls != monitor::SpecClass::kUnsatisfiable,
                    "rulebook spec '" + spec.name +
                        "' is unsatisfiable over finite traces");
    DPOAF_CHECK_MSG(cls != monitor::SpecClass::kTriviallyTrue,
                    "rulebook spec '" + spec.name +
                        "' is trivially true over finite traces");
  }
  for (ScenarioId id : all_scenarios()) {
    Scenario s;
    s.key = scenario_name(id);
    s.model = make_scenario_model(id, vocab_);
    s.fairness = fairness_assumptions(id, vocab_);
    s.specs = specs_;
    s.perception_noise =
        generator::perception_noise(generator::NoiseRegime::Nominal);
    install_scenario(std::move(s));
  }
  universal_ = make_universal_model(vocab_);
  stop_action_ = logic::Vocabulary::bit(*vocab_.find("stop"));

  if (gen.count > 0) {
    for (generator::GeneratedScenario& g :
         generator::generate_scenarios(gen, vocab_, &generator_stats_)) {
      Scenario s;
      s.key = g.key;
      s.model = std::move(g.model);
      s.fairness = std::move(g.fairness);
      s.specs = std::move(g.specs);
      s.perception_noise = generator::perception_noise(g.features.noise);
      s.generated = true;
      s.holdout = g.holdout;
      install_scenario(std::move(s));
      tasks_.push_back(instantiate_task(g.task));
    }
  }
}

void DrivingDomain::install_scenario(Scenario scenario) {
  const bool inserted =
      scenario_index_.emplace(scenario.key, scenarios_.size()).second;
  DPOAF_CHECK_MSG(inserted, "duplicate scenario key: " + scenario.key);
  scenarios_.push_back(std::move(scenario));
}

const Scenario& DrivingDomain::scenario(std::string_view key) const {
  const auto it = scenario_index_.find(key);
  DPOAF_CHECK_MSG(it != scenario_index_.end(),
                  "unknown scenario key: " + std::string(key));
  return scenarios_[it->second];
}

glm2fsa::BuildOptions DrivingDomain::build_options() const {
  glm2fsa::BuildOptions opt;
  opt.wait_action = stop_action_;
  return opt;
}

automata::ProductOptions DrivingDomain::product_options() const {
  automata::ProductOptions opt;
  opt.epsilon_label = stop_action_;
  return opt;
}

const Task& DrivingDomain::task_by_id(std::string_view id) const {
  for (const Task& t : tasks_)
    if (t.id == id) return t;
  DPOAF_CHECK_MSG(false, "unknown task id: " + std::string(id));
  // Unreachable; silences the missing-return warning.
  return tasks_.front();
}

std::string canonical_response_text(std::string_view response_text) {
  // Mirror glm2fsa::split_steps's projection: split on '\n', trim each
  // line (which also strips '\r'), drop blanks. Texts differing only in
  // line endings or surrounding whitespace share one cache entry.
  std::string out;
  for (const std::string& raw : split(response_text, '\n')) {
    const std::string line = trim(raw);
    if (line.empty()) continue;
    if (!out.empty()) out += '\n';
    out += line;
  }
  return out;
}

namespace {

FeedbackResult compute_feedback(const DrivingDomain& domain,
                                std::string_view scenario_key,
                                std::string_view response_text) {
  // "synthesis" (GLM2FSA) and "verification" (product + rulebook model
  // checking) are two of the five pipeline phases in the RunReport.
  static obs::Counter& computed = obs::counter("feedback.computed");
  static obs::Counter& failures = obs::counter("feedback.alignment_failures");
  computed.add();
  FeedbackResult result;
  {
    obs::Span span("synthesis", obs::histogram("glm2fsa.synthesis_ns"));
    auto g2f = glm2fsa::glm2fsa(response_text, domain.aligner(),
                                domain.build_options());
    result.issues = g2f.parsed.issues;
    if (!g2f.parsed.ok()) {
      failures.add();
      result.aligned = false;
      return result;
    }
    result.aligned = true;
    result.controller = std::move(g2f.controller);
  }
  obs::Span span("verification", obs::histogram("modelcheck.verify_ns"));
  const Scenario& scenario = domain.scenario(scenario_key);
  const automata::Kripke product = automata::make_product(
      scenario.model, result.controller, domain.product_options());
  result.report =
      modelcheck::verify_all(product, scenario.specs, scenario.fairness);
  return result;
}

}  // namespace

FeedbackResult formal_feedback(const DrivingDomain& domain,
                               std::string_view scenario_key,
                               std::string_view response_text) {
  static obs::Counter& requests = obs::counter("feedback.requests");
  requests.add();
  if (!domain.feedback_cache_enabled())
    return compute_feedback(domain, scenario_key, response_text);
  std::string key(scenario_key);
  key += '\n';
  key += canonical_response_text(response_text);
  return domain.feedback_cache_.get_or_compute(key, [&] {
    return compute_feedback(domain, scenario_key, response_text);
  });
}

}  // namespace dpoaf::driving
