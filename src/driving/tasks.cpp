#include "driving/tasks.hpp"

#include "util/check.hpp"
#include "util/strings.hpp"

namespace dpoaf::driving {

namespace {

using TaskTemplate = TaskBlueprint;

std::string obstacle_name(const std::string& cond) {
  // "no car from the left" → "the car from the left"
  if (starts_with(cond, "no "))
    return "the " + cond.substr(3);
  return cond;
}

std::string conjunction(const std::vector<std::string>& parts) {
  return join(parts, " and ");
}

std::vector<std::string> with_light(const TaskTemplate& t,
                                    const std::vector<std::string>& conds) {
  std::vector<std::string> all;
  if (!t.light_cond.empty()) all.push_back(t.light_cond);
  all.insert(all.end(), conds.begin(), conds.end());
  return all;
}

std::string make_good(const TaskTemplate& t) {
  std::vector<std::string> names;
  for (const auto& c : t.obstacle_conds) names.push_back(obstacle_name(c));
  std::string out;
  out += "1. Observe " + t.observe + ".\n";
  out += "2. Check for " + conjunction(names) + ".\n";
  out += "3. If " + conjunction(with_light(t, t.obstacle_conds)) + ", " +
         t.action + ".";
  return out;
}

std::string make_good_verbose(const TaskTemplate& t) {
  std::string out;
  out += "1. Look at " + t.observe + " as you approach.\n";
  out += "2. If " + conjunction(with_light(t, t.obstacle_conds)) + ", then " +
         t.action + ".";
  return out;
}

// The paper's before-fine-tuning failure shape (§5.1 and App. C): each
// safety condition is awaited in its own sequential step and the manoeuvre
// is executed unconditionally at the end — so the environment can
// invalidate an earlier check before the action fires (the §5.1
// counter-example: "the traffic light turns back to red and a car is
// coming from the left immediately after the agent is checking or waiting
// for pedestrians").
std::string make_split_checks(const TaskTemplate& t) {
  std::string out;
  int n = 1;
  out += std::to_string(n++) + ". Observe " + t.observe + ".\n";
  if (!t.light_wait.empty())
    out += std::to_string(n++) + ". " + t.light_wait + ".\n";
  for (const std::string& cond : t.obstacle_conds)
    out += std::to_string(n++) + ". Wait until " + cond + ".\n";
  out += std::to_string(n++) + ". " + t.action +
         " and proceed through the intersection.";
  return out;
}

std::string make_dropped(const TaskTemplate& t, std::string_view drop_word) {
  std::vector<std::string> kept;
  for (const auto& c : t.obstacle_conds)
    if (c.find(drop_word) == std::string::npos) kept.push_back(c);
  if (kept.size() == t.obstacle_conds.size()) return {};  // nothing dropped
  std::vector<std::string> conds = with_light(t, kept);
  if (conds.empty()) return {};
  std::string out;
  out += "1. Observe " + t.observe + ".\n";
  out += "2. If " + conjunction(conds) + ", " + t.action + ".";
  return out;
}

std::string make_no_light(const TaskTemplate& t) {
  if (t.light_cond.empty()) return {};
  std::string out;
  out += "1. Observe " + t.observe + ".\n";
  out += "2. If " + conjunction(t.obstacle_conds) + ", " + t.action + ".";
  return out;
}

std::string make_wrong_action(const TaskTemplate& t) {
  std::string out;
  out += "1. Observe " + t.observe + ".\n";
  out += "2. If " + conjunction(with_light(t, t.obstacle_conds)) + ", " +
         t.wrong_action + ".";
  return out;
}

std::string make_reckless(const TaskTemplate& t) {
  return "1. " + t.action + " immediately.";
}

std::string make_unaligned(const TaskTemplate&) {
  return "1. Make sure everything around you seems fine.\n"
         "2. Do the maneuver when it feels right.";
}

}  // namespace

Task instantiate_task(const TaskBlueprint& t) {
  Task task;
  task.id = t.id;
  task.prompt = t.prompt;
  task.scenario = t.scenario;
  task.training = t.training;
  task.holdout = t.holdout;

  auto add = [&task](FlawTag tag, std::string text) {
    if (!text.empty()) task.variants.push_back({tag, std::move(text)});
  };
  add(FlawTag::Good, make_good(t));
  add(FlawTag::GoodVerbose, make_good_verbose(t));
  add(FlawTag::SplitChecks, make_split_checks(t));
  add(FlawTag::NoPedCheck, make_dropped(t, "pedestrian"));
  add(FlawTag::NoCarCheck, make_dropped(t, "car"));
  add(FlawTag::NoLightCheck, make_no_light(t));
  add(FlawTag::WrongAction, make_wrong_action(t));
  add(FlawTag::Reckless, make_reckless(t));
  add(FlawTag::Unaligned, make_unaligned(t));
  return task;
}

std::string flaw_name(FlawTag tag) {
  switch (tag) {
    case FlawTag::Good:
      return "good";
    case FlawTag::GoodVerbose:
      return "good_verbose";
    case FlawTag::SplitChecks:
      return "split_checks";
    case FlawTag::NoPedCheck:
      return "no_ped_check";
    case FlawTag::NoCarCheck:
      return "no_car_check";
    case FlawTag::NoLightCheck:
      return "no_light_check";
    case FlawTag::WrongAction:
      return "wrong_action";
    case FlawTag::Reckless:
      return "reckless";
    case FlawTag::Unaligned:
      return "unaligned";
  }
  DPOAF_CHECK_MSG(false, "unknown flaw tag");
  return {};
}

std::vector<Task> task_catalog() {
  std::vector<TaskTemplate> templates;

  templates.push_back(
      {"turn_right_traffic_light", "turn right at the traffic light",
       scenario_name(ScenarioId::TrafficLight), true, false,
       "the traffic light",
       "", "",
       {"no car from the left", "no pedestrian on the right",
        "no pedestrian in front"},
       "turn right", "go straight"});

  templates.push_back(
      {"turn_left_protected", "turn left at the traffic light",
       scenario_name(ScenarioId::LeftTurnSignal), true, false,
       "the left turn light",
       "the left turn light is green",
       "Wait for the left turn light to turn green",
       {"no oncoming traffic"},
       "turn left", "go straight"});

  templates.push_back(
      {"go_straight_traffic_light", "go straight at the traffic light",
       scenario_name(ScenarioId::TrafficLight), true, false,
       "the traffic light",
       "the green traffic light is on",
       "Wait for the traffic light to turn green",
       {"no pedestrian in front"},
       "go straight", "turn right"});

  templates.push_back(
      {"turn_right_stop_sign", "turn right at the two way stop sign",
       scenario_name(ScenarioId::TwoWayStop), true, false, "the stop sign",
       "", "",
       {"no car from the left", "no car from the right",
        "no pedestrian in front"},
       "turn right", "go straight"});

  templates.push_back(
      {"enter_roundabout", "enter the roundabout",
       scenario_name(ScenarioId::Roundabout), true, false,
       "the roundabout entry",
       "", "",
       {"no car from the left", "no pedestrian on the left",
        "no pedestrian on the right"},
       "turn right", "go straight"});

  templates.push_back(
      {"turn_left_wide_median", "turn left across the wide median",
       scenario_name(ScenarioId::WideMedian), false, false,
       "the median opening",
       "", "",
       {"no car from the left", "no car from the right",
        "no oncoming traffic"},
       "turn left", "go straight"});

  templates.push_back(
      {"cross_crosswalk", "drive through the crosswalk at the traffic light",
       scenario_name(ScenarioId::TrafficLight), false, false,
       "the traffic light",
       "the green traffic light is on",
       "Wait for the traffic light to turn green",
       {"no pedestrian in front"},
       "go straight", "turn left"});

  templates.push_back(
      {"turn_left_flashing", "turn left on the flashing left turn light",
       scenario_name(ScenarioId::LeftTurnSignal), false, false,
       "the left turn light",
       "the left turn light is flashing",
       "Wait until the left turn light is flashing",
       {"no oncoming traffic"},
       "turn left", "go straight"});

  std::vector<Task> tasks;
  tasks.reserve(templates.size());
  for (const TaskTemplate& t : templates) tasks.push_back(instantiate_task(t));
  return tasks;
}

std::string paper_right_turn_before() {
  return "1. Observe the state of the green traffic light.\n"
         "2. If the green traffic light is on, execute the action go "
         "straight.\n"
         "3. As you approach the intersection, observe the state of the car "
         "from left.\n"
         "4. If the car from left is not present, check the state of the "
         "pedestrian at right.\n"
         "5. If the pedestrian at right is not present, execute the action "
         "turn right.";
}

std::string paper_right_turn_after() {
  return "1. Observe the traffic light in front of you.\n"
         "2. Check for the left approaching car and right side pedestrian.\n"
         "3. If no car from the left is approaching and no pedestrian on "
         "the right, proceed to turn right.";
}

std::string paper_left_turn_before() {
  return "1. Approach the traffic light with a left-turn light.\n"
         "2. Wait for the left-turn light to turn green.\n"
         "3. When the left-turn light turns green, wait for oncoming "
         "traffic to clear before turning left.\n"
         "4. Turn left and proceed through the intersection.";
}

std::string paper_left_turn_after() {
  return "1. Approach the traffic light and observe the left turn light.\n"
         "2. If the left turn light is not green, then stop.\n"
         "3. If the left turn light is green, then turn left.";
}

}  // namespace dpoaf::driving
