#include "driving/specs.hpp"

#include "logic/parser.hpp"
#include "util/check.hpp"

namespace dpoaf::driving {

std::vector<NamedSpec> rulebook(const logic::Vocabulary& vocab) {
  auto spec = [&vocab](const char* name, const char* text) {
    return NamedSpec{name, logic::parse_ltl(text, vocab)};
  };
  return {
      // Φ1 = □(pedestrian → ◇ stop)
      spec("phi_1",
           "G ((pedestrian_at_left | pedestrian_at_right | "
           "pedestrian_in_front) -> F stop)"),
      // Φ2 = □(opposite car ∧ ¬green left-turn light → ¬turn left)
      spec("phi_2",
           "G (opposite_car & !green_left_turn_light -> !turn_left)"),
      // Φ3 = □(¬green traffic light → ¬go straight)
      spec("phi_3", "G (!green_traffic_light -> !go_straight)"),
      // Φ4 = □(stop sign → ◇ stop)
      spec("phi_4", "G (stop_sign -> F stop)"),
      // Φ5 = □(car from left ∨ pedestrian at right → ¬turn right)
      spec("phi_5",
           "G (car_from_left | pedestrian_at_right -> !turn_right)"),
      // Φ6 = □(stop ∨ go straight ∨ turn left ∨ turn right)
      spec("phi_6", "G (stop | go_straight | turn_left | turn_right)"),
      // Φ7 = ◇(green traffic light ∨ green left-turn light) → ◇¬stop
      spec("phi_7",
           "F (green_traffic_light | green_left_turn_light) -> F !stop"),
      // Φ8 = □(¬green traffic light → ◇ stop)
      spec("phi_8", "G (!green_traffic_light -> F stop)"),
      // Φ9 = □(car from left → ¬(turn left ∨ turn right))
      spec("phi_9", "G (car_from_left -> !(turn_left | turn_right))"),
      // Φ10 = □(green traffic light → ◇¬stop)
      spec("phi_10", "G (green_traffic_light -> F !stop)"),
      // Φ11 = □((turn right ∧ ¬green traffic light) → ¬car from left)
      spec("phi_11",
           "G (turn_right & !green_traffic_light -> !car_from_left)"),
      // Φ12 = □((turn left ∧ ¬green left-turn light) →
      //         (¬car from right ∧ ¬car from left ∧ ¬opposite car))
      spec("phi_12",
           "G (turn_left & !green_left_turn_light -> "
           "(!car_from_right & !car_from_left & !opposite_car))"),
      // Φ13 = □((stop sign ∧ ¬car from left ∧ ¬car from right) → ◇¬stop)
      spec("phi_13",
           "G (stop_sign & !car_from_left & !car_from_right -> F !stop)"),
      // Φ14 = □(go straight → ¬pedestrian in front)
      spec("phi_14", "G (go_straight -> !pedestrian_in_front)"),
      // Φ15 = □((turn right ∧ stop sign) → ¬car from left)
      spec("phi_15", "G (turn_right & stop_sign -> !car_from_left)"),
  };
}

std::vector<NamedSpec> rulebook_head(const logic::Vocabulary& vocab) {
  auto all = rulebook(vocab);
  all.resize(5);
  return all;
}

}  // namespace dpoaf::driving
