// Task catalog and the synthetic response distribution.
//
// The paper queries Llama2-7B for step lists and samples multiple responses
// per task; the pre-trained model has generic driving knowledge but misses
// domain-specific rules, so its samples range from fully compliant to
// subtly unsafe. This module is the C++ substitute for that distribution:
// for every control task it generates a *canonical compliant* response plus
// systematically flawed variants (the flaw patterns are the ones the paper
// exhibits — split safety checks, omitted guards, wrong manoeuvre,
// unalignable vocabulary). The tiny LM is pre-trained on a corpus drawn
// from this distribution, so "sampling the pre-trained model" reproduces
// the paper's starting point (~60% specification satisfaction).
#pragma once

#include <string>
#include <vector>

#include "driving/scenarios.hpp"

namespace dpoaf::driving {

/// Why a variant is flawed (or not). Tags are diagnostic only — ranking
/// always comes from verification, never from the tag.
enum class FlawTag {
  Good,          // canonical compliant response
  GoodVerbose,   // compliant, different surface phrasing
  SplitChecks,   // checks spread over sequential steps (paper §5.1 bug)
  NoPedCheck,    // pedestrian guard omitted
  NoCarCheck,    // cross-traffic guard omitted
  NoLightCheck,  // signal guard omitted
  WrongAction,   // wrong manoeuvre for the task
  Reckless,      // unconditional action, no checks at all
  Unaligned,     // vocabulary that cannot be aligned to P ∪ P_A
};

std::string flaw_name(FlawTag tag);

struct ResponseVariant {
  FlawTag tag = FlawTag::Good;
  std::string text;  // numbered step list
};

struct Task {
  std::string id;      // e.g. "turn_right_traffic_light"
  std::string prompt;  // e.g. "turn right at the traffic light"
  /// Scenario-registry key (DrivingDomain::scenario); `scenario_name(id)`
  /// for the five paper scenarios, "genNNN_…" for generated ones.
  std::string scenario = "traffic_light";
  bool training = true;  // false ⇒ held-out validation task (Fig. 9)
  /// Held-out generated scenario: excluded from the pre-training corpus,
  /// candidate sampling, and checkpoint evaluation; scored only by the
  /// generalization eval (docs/GENERATOR.md).
  bool holdout = false;
  std::vector<ResponseVariant> variants;
};

/// Slot-filled template for one task. The variant builders assemble the
/// canonical compliant response and the systematically flawed ones from
/// these pieces; the scenario generator fills blueprints procedurally.
struct TaskBlueprint {
  std::string id;
  std::string prompt;
  std::string scenario;  // registry key
  bool training = true;
  bool holdout = false;
  std::string observe;     // "the traffic light"
  std::string light_cond;  // "" when the manoeuvre needs no signal
  std::string light_wait;  // "Wait for/until …" phrasing
  std::vector<std::string> obstacle_conds;  // negated, "no car from the left"
  std::string action;        // "turn right"
  std::string wrong_action;  // plausible but non-compliant manoeuvre
};

/// Expand a blueprint into a Task with the full variant distribution
/// (good, good_verbose, split_checks, dropped guards, wrong action,
/// reckless, unaligned — variants whose slots are empty are skipped).
Task instantiate_task(const TaskBlueprint& t);

/// The full catalog: five training tasks and three validation tasks across
/// the five scenario models.
std::vector<Task> task_catalog();

/// Paper-exact §5.1 right-turn responses (before / after fine-tuning).
std::string paper_right_turn_before();
std::string paper_right_turn_after();

/// Paper-exact Appendix C left-turn responses (before / after fine-tuning).
std::string paper_left_turn_before();
std::string paper_left_turn_after();

}  // namespace dpoaf::driving
