// The complete set of 15 LTL traffic-rule specifications from the paper's
// Appendix C — the externally provided "rule book" (Censi et al. 2019
// style) the controllers are verified against.
#pragma once

#include <vector>

#include "logic/vocabulary.hpp"
#include "modelcheck/checker.hpp"

namespace dpoaf::driving {

using modelcheck::NamedSpec;

/// Φ1..Φ15 exactly as listed in Appendix C, with "pedestrian" in Φ1
/// read as any pedestrian proposition (left, right or in front).
std::vector<NamedSpec> rulebook(const logic::Vocabulary& vocab);

/// The first five specifications (the subset reported in Figure 11).
std::vector<NamedSpec> rulebook_head(const logic::Vocabulary& vocab);

}  // namespace dpoaf::driving
