#include "driving/generator/generator.hpp"

#include <cstdio>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::driving::generator {

namespace {

std::string action_phrase(const std::string& action_prop) {
  std::string out = action_prop;
  for (char& c : out)
    if (c == '_') c = ' ';
  return out;
}

// Negated-condition surface forms the GLM2FSA aligner lexicon already
// resolves (they are the paper catalog's own phrases).
std::string obstacle_cond(const std::string& agent) {
  if (agent == "opposite_car") return "no oncoming traffic";
  if (agent == "car_from_left") return "no car from the left";
  if (agent == "car_from_right") return "no car from the right";
  if (agent == "pedestrian_at_left") return "no pedestrian on the left";
  if (agent == "pedestrian_at_right") return "no pedestrian on the right";
  if (agent == "pedestrian_in_front") return "no pedestrian in front";
  DPOAF_CHECK_MSG(false, "unknown agent proposition: " + agent);
  return {};
}

std::string setting_phrase(Topology t) {
  switch (t) {
    case Topology::Signalized:
      return "the signalized intersection";
    case Topology::StopControlled:
      return "the two way stop";
    case Topology::Roundabout:
      return "the roundabout";
    case Topology::MedianCrossing:
      return "the wide median";
    case Topology::Uncontrolled:
      return "the open intersection";
  }
  DPOAF_CHECK_MSG(false, "unknown topology");
  return {};
}

std::string observe_phrase(const ScenarioFeatures& f, bool left_lamp) {
  if (f.signal != SignalRegime::None)
    return left_lamp ? "the left turn light" : "the traffic light";
  switch (f.topology) {
    case Topology::StopControlled:
      return "the stop sign";
    case Topology::Roundabout:
      return "the roundabout entry";
    case Topology::MedianCrossing:
      return "the median opening";
    default:
      return "the intersection";
  }
}

TaskBlueprint make_blueprint(const ScenarioFeatures& f, const std::string& key,
                             int index, bool holdout) {
  TaskBlueprint t;
  t.id = key;
  t.scenario = key;
  t.training = true;
  t.holdout = holdout;
  t.prompt = action_phrase(f.action) + " at " + setting_phrase(f.topology) +
             " " + std::to_string(index);

  const bool protected_left = f.signal == SignalRegime::ProtectedLeft ||
                              f.signal == SignalRegime::FullHead;
  bool left_lamp = false;
  if (f.action == "go_straight" && f.signal != SignalRegime::None) {
    t.light_cond = "the green traffic light is on";
    t.light_wait = "Wait for the traffic light to turn green";
  } else if (f.action == "turn_left" && protected_left) {
    t.light_cond = "the left turn light is green";
    t.light_wait = "Wait for the left turn light to turn green";
    left_lamp = true;
  } else if (f.action == "turn_left" &&
             f.signal == SignalRegime::PermissiveLeft) {
    t.light_cond = "the left turn light is flashing";
    t.light_wait = "Wait until the left turn light is flashing";
    left_lamp = true;
  }
  t.observe = observe_phrase(f, left_lamp);
  for (const std::string& agent : f.agents)
    t.obstacle_conds.push_back(obstacle_cond(agent));
  t.action = action_phrase(f.action);
  t.wrong_action = action_phrase(f.wrong_action);
  return t;
}

std::string scenario_key(const ScenarioFeatures& f, int index) {
  char prefix[16];
  std::snprintf(prefix, sizeof prefix, "gen%03d", index);
  std::string key = std::string(prefix) + "_" + topology_name(f.topology);
  if (f.signal != SignalRegime::None) key += "_" + signal_name(f.signal);
  key += "_" + noise_name(f.noise);
  return key;
}

}  // namespace

std::vector<GeneratedScenario> generate_scenarios(const GeneratorConfig& config,
                                                  const Vocabulary& vocab,
                                                  GeneratorStats* stats) {
  DPOAF_CHECK_MSG(config.count >= 0, "generator count must be >= 0");
  DPOAF_CHECK_MSG(config.holdout >= 0 && config.holdout <= config.count,
                  "generator holdout must be within [0, count]");
  static obs::Counter& generated_counter = obs::counter("generator.scenarios");

  if (stats != nullptr) {
    stats->requested = config.count;
    stats->holdout = config.holdout;
  }

  // Serial fold: one child generator per scenario, split in index order —
  // the whole registry is a pure function of (seed, count, holdout).
  Rng root(config.seed);
  std::vector<GeneratedScenario> out;
  out.reserve(static_cast<std::size_t>(config.count));
  RulebookStats rb;
  for (int i = 0; i < config.count; ++i) {
    Rng rng = root.split();
    GeneratedScenario gs;
    gs.features = draw_features(rng);
    gs.key = scenario_key(gs.features, i);
    gs.model = build_model(gs.features, vocab, config.conservative);
    gs.fairness = derive_fairness(gs.features, vocab);
    gs.specs = instantiate_rulebook(gs.features, vocab, &rb);
    gs.holdout = i >= config.count - config.holdout;
    gs.task = make_blueprint(gs.features, gs.key, i, gs.holdout);
    DPOAF_CHECK_MSG(!gs.specs.empty(),
                    "generated scenario " + gs.key + " has an empty rulebook");
    generated_counter.add();
    out.push_back(std::move(gs));
  }
  if (stats != nullptr) {
    stats->generated = static_cast<int>(out.size());
    stats->specs_instantiated += rb.instantiated;
    stats->specs_discarded_unsat += rb.discarded_unsat;
    stats->specs_discarded_trivial += rb.discarded_trivial;
  }
  return out;
}

}  // namespace dpoaf::driving::generator
