#include "driving/generator/rulebook.hpp"

#include <string_view>

#include "monitor/monitor.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::driving::generator {

using logic::Ltl;
using namespace logic::ltl;

namespace {

int idx(const Vocabulary& v, std::string_view name) {
  const auto i = v.find(name);
  DPOAF_CHECK_MSG(i.has_value(),
                  "driving vocabulary missing " + std::string(name));
  return *i;
}

bool has(const ScenarioFeatures& f, std::string_view agent) {
  for (const std::string& a : f.agents)
    if (a == agent) return true;
  return false;
}

// The lamp formula permitting an action, or ltrue() when this scenario's
// head carries no lamp for it — the "empty permission slot" that makes a
// gate template degenerate to □(¬true → …), which the pre-pass removes.
Ltl permission(const ScenarioFeatures& f, const Vocabulary& v,
               std::string_view action) {
  if (action == "go_straight" && f.signal != SignalRegime::None)
    return prop(idx(v, "green_traffic_light"));
  if (action == "turn_left") {
    std::vector<Ltl> aspects;
    if (f.signal == SignalRegime::ProtectedLeft ||
        f.signal == SignalRegime::FullHead)
      aspects.push_back(prop(idx(v, "green_left_turn_light")));
    if (f.signal == SignalRegime::PermissiveLeft ||
        f.signal == SignalRegime::FullHead)
      aspects.push_back(prop(idx(v, "flashing_left_turn_light")));
    if (!aspects.empty()) return lor_all(aspects);
  }
  return ltrue();  // no lamp governs this manoeuvre here
}

// An arrow-aspect formula, or lfalse() when the head lacks that aspect —
// the degenerate slot of the aspect-mutex template.
Ltl aspect_or_absent(const ScenarioFeatures& f, const Vocabulary& v,
                     std::string_view lamp) {
  for (const std::string& p : signal_props(f.signal))
    if (p == lamp) return prop(idx(v, lamp));
  return lfalse();
}

}  // namespace

std::vector<NamedSpec> rule_templates(const ScenarioFeatures& f,
                                      const Vocabulary& v) {
  auto P = [&v](std::string_view name) { return prop(idx(v, name)); };
  const Ltl stop = P("stop");
  const Ltl go = P("go_straight");
  const Ltl left = P("turn_left");
  const Ltl right = P("turn_right");

  std::vector<Ltl> clear_lits;
  for (const std::string& a : f.agents) clear_lits.push_back(lnot(P(a)));
  const Ltl clear = land_all(clear_lits);

  std::vector<NamedSpec> specs;
  auto add = [&specs](std::string name, Ltl formula) {
    specs.push_back({std::move(name), std::move(formula)});
  };

  // Φ6 shape: some action (possibly stop) is always emitted.
  add("action_alive", always(lor(lor(stop, go), lor(left, right))));

  // Φ1 shape: any present pedestrian eventually forces a stop.
  for (const char* ped :
       {"pedestrian_at_left", "pedestrian_at_right", "pedestrian_in_front"})
    if (has(f, ped))
      add(std::string("stop_for_") + ped, always(implies(P(ped), eventually(stop))));

  // Φ9/Φ2/Φ5/Φ14 shapes: per-agent manoeuvre guards over the present mix.
  if (has(f, "car_from_left"))
    add("guard_car_from_left",
        always(implies(P("car_from_left"), lnot(lor(left, right)))));
  if (has(f, "car_from_right"))
    add("guard_car_from_right", always(implies(P("car_from_right"), lnot(left))));
  if (has(f, "opposite_car")) {
    // Φ2: oncoming traffic forbids an *unprotected* left turn; with no
    // protected aspect in the head, it forbids the left turn outright.
    const Ltl protected_left = aspect_or_absent(f, v, "green_left_turn_light");
    const Ltl antecedent = protected_left->op == logic::LtlOp::False
                               ? P("opposite_car")
                               : land(P("opposite_car"), lnot(protected_left));
    add("guard_opposite_car", always(implies(antecedent, lnot(left))));
  }
  if (has(f, "pedestrian_in_front"))
    add("guard_pedestrian_in_front",
        always(implies(P("pedestrian_in_front"), lnot(go))));
  if (has(f, "pedestrian_at_right"))
    add("guard_pedestrian_at_right",
        always(implies(P("pedestrian_at_right"), lnot(right))));
  if (has(f, "pedestrian_at_left"))
    add("guard_pedestrian_at_left",
        always(implies(P("pedestrian_at_left"), lnot(left))));

  // Φ3 shape, one gate per manoeuvre: never act without the lamp that
  // permits it. The permission slot is ltrue() for ungoverned manoeuvres
  // (every manoeuvre at an unsignalized junction, and right turns
  // everywhere), so those instantiations degenerate to □(¬true → ¬a) —
  // exactly what the satisfiability pre-pass exists to discard.
  add("gate_go_straight",
      always(implies(lnot(permission(f, v, "go_straight")), lnot(go))));
  add("gate_turn_left",
      always(implies(lnot(permission(f, v, "turn_left")), lnot(left))));
  add("gate_turn_right",
      always(implies(lnot(permission(f, v, "turn_right")), lnot(right))));

  // Fig. 15's one-aspect-at-a-time head invariant. With fewer than two
  // aspects in this head a slot is lfalse() and the mutex is vacuous —
  // discarded by the pre-pass rather than scored for free.
  if (f.signal != SignalRegime::None)
    add("aspect_mutex",
        always(lnot(land(aspect_or_absent(f, v, "green_left_turn_light"),
                         aspect_or_absent(f, v, "flashing_left_turn_light")))));

  // Φ10/Φ13 shape: a permitted, clear junction is eventually taken.
  const Ltl perm = permission(f, v, f.action);
  const Ltl window =
      perm->op == logic::LtlOp::True ? clear : land(perm, clear);
  add("window_liveness", always(implies(window, eventually(lnot(stop)))));

  if (f.signal != SignalRegime::None) {
    // Φ8 shape: while the ball is red the vehicle keeps coming to a stop.
    add("wait_liveness", always(implies(lnot(P("green_traffic_light")),
                                        eventually(stop))));
    // Φ7 shape: if any lamp ever lights, waiting was worthwhile.
    std::vector<Ltl> lamps;
    for (const std::string& lamp : signal_props(f.signal))
      lamps.push_back(P(lamp));
    add("worthwhile_wait",
        implies(eventually(lor_all(lamps)), eventually(lnot(stop))));
  }
  return specs;
}

std::vector<NamedSpec> filter_satisfiable(std::vector<NamedSpec> specs,
                                          RulebookStats* stats) {
  static obs::Counter& instantiated =
      obs::counter("generator.specs_instantiated");
  static obs::Counter& dropped_unsat =
      obs::counter("generator.specs_discarded_unsat");
  static obs::Counter& dropped_trivial =
      obs::counter("generator.specs_discarded_trivial");
  std::vector<NamedSpec> kept;
  kept.reserve(specs.size());
  for (NamedSpec& spec : specs) {
    instantiated.add();
    if (stats != nullptr) ++stats->instantiated;
    switch (monitor::classify_spec(spec.formula)) {
      case monitor::SpecClass::kUnsatisfiable:
        dropped_unsat.add();
        if (stats != nullptr) ++stats->discarded_unsat;
        break;
      case monitor::SpecClass::kTriviallyTrue:
        dropped_trivial.add();
        if (stats != nullptr) ++stats->discarded_trivial;
        break;
      case monitor::SpecClass::kNormal:
        kept.push_back(std::move(spec));
        break;
    }
  }
  return kept;
}

std::vector<NamedSpec> instantiate_rulebook(const ScenarioFeatures& f,
                                            const Vocabulary& v,
                                            RulebookStats* stats) {
  return filter_satisfiable(rule_templates(f, v), stats);
}

}  // namespace dpoaf::driving::generator
