// Rulebook derivation for generated scenarios: LTL spec *templates* —
// written once against the full proposition vocabulary, in the shapes of
// the paper's Φ1…Φ15 — are instantiated over a generated scenario's actual
// proposition subset. Instantiation is partial by construction: a template
// whose permission slot has no lamp in this scenario degenerates to a
// tautology (e.g. the turn-right permission gate in a junction with no
// signal head), so every instantiated rule passes through a
// satisfiability pre-pass (monitor::classify_spec) and kUnsatisfiable /
// kTriviallyTrue instantiations are discarded — the same authoring gate
// DrivingDomain applies to the hand-written rulebook, made tolerant
// because degeneration is expected here, not a bug.
#pragma once

#include <vector>

#include "driving/generator/grammar.hpp"
#include "modelcheck/checker.hpp"

namespace dpoaf::driving::generator {

using modelcheck::NamedSpec;

/// Pre-pass tally for one rulebook instantiation.
struct RulebookStats {
  int instantiated = 0;        // template instantiations produced
  int discarded_unsat = 0;     // classified kUnsatisfiable, dropped
  int discarded_trivial = 0;   // classified kTriviallyTrue, dropped
};

/// Every template instantiated over the scenario's propositions, *before*
/// the satisfiability pre-pass (exposed for the fuzz bridge, which feeds
/// raw instantiations through the printer→parser round-trip and the
/// monitor compiler).
std::vector<NamedSpec> rule_templates(const ScenarioFeatures& f,
                                      const Vocabulary& v);

/// The satisfiability pre-pass: classify each spec over finite traces and
/// drop the unsatisfiable / trivially-true ones, tallying into `stats`
/// (which is accumulated into, not reset). Exposed for tests.
std::vector<NamedSpec> filter_satisfiable(std::vector<NamedSpec> specs,
                                          RulebookStats* stats = nullptr);

/// rule_templates + filter_satisfiable: the scenario's final rulebook.
std::vector<NamedSpec> instantiate_rulebook(const ScenarioFeatures& f,
                                            const Vocabulary& v,
                                            RulebookStats* stats = nullptr);

}  // namespace dpoaf::driving::generator
