// The scenario feature grammar (docs/GENERATOR.md): a generated driving
// scenario is one point in
//
//   intersection topology × signal regime × agent mix × perception-noise
//   regime
//
// drawn deterministically from a seeded Rng. The grammar only composes
// propositions from the fixed driving vocabulary (the tokenizer, aligner
// lexicon, and spec templates all key on it), so every generated world
// model, rulebook, and task phrase stays inside the language the rest of
// the pipeline already understands — the generator widens the *scenario*
// distribution, not the vocabulary.
#pragma once

#include <string>
#include <vector>

#include "automata/transition_system.hpp"
#include "logic/ltl.hpp"
#include "logic/vocabulary.hpp"
#include "util/rng.hpp"

namespace dpoaf::driving::generator {

using automata::TransitionSystem;
using logic::Ltl;
using logic::Vocabulary;

/// What controls the conflict point the manoeuvre crosses.
enum class Topology {
  Signalized,      // signal head governs the intersection
  StopControlled,  // stop sign (the sign proposition is forced true)
  Roundabout,      // yield-on-entry circular junction
  MedianCrossing,  // unsignalized gap across a wide median
  Uncontrolled,    // open intersection, right-of-way by observation only
};

/// Which lamps the signal head carries (None for every unsignalized
/// topology). The regimes mirror the paper's two signalized figures:
/// Standard is Fig. 5's single green ball, FullHead is Fig. 15's
/// green-ball + protected/permissive left-turn arrow head.
enum class SignalRegime {
  None,
  Standard,        // green_traffic_light only
  ProtectedLeft,   // green ball + green left-turn arrow
  PermissiveLeft,  // green ball + flashing left-turn arrow
  FullHead,        // green ball + both arrow aspects (one lit at a time)
};

/// How jittery one perception step is: the maximum number of propositions
/// Algorithm 1 lets flip per transition, and the simulator's observation
/// flip probability.
enum class NoiseRegime {
  Calm,     // ≤ 1 proposition changes per step, near-perfect perception
  Nominal,  // ≤ 2 (the paper's setting), small observation noise
};

std::string topology_name(Topology t);
std::string signal_name(SignalRegime s);
std::string noise_name(NoiseRegime n);

/// One grammar sample. `agents` holds agent-proposition names (subset of
/// the six car/pedestrian propositions, in fixed vocabulary order);
/// `action`/`wrong_action` are action-proposition names.
struct ScenarioFeatures {
  Topology topology = Topology::Uncontrolled;
  SignalRegime signal = SignalRegime::None;
  NoiseRegime noise = NoiseRegime::Nominal;
  std::vector<std::string> agents;
  std::string action;
  std::string wrong_action;
};

/// Draw one feature tuple. Consumes a fixed number of draws per axis in a
/// fixed order, so a given Rng state maps to exactly one feature tuple
/// (the seeding/determinism contract in docs/GENERATOR.md). The drawn
/// manoeuvre is guaranteed to be *constrained*: at least one agent in the
/// mix (or the signal itself) forbids it somewhere, so the compliant and
/// reckless responses are always separable by verification.
ScenarioFeatures draw_features(Rng& rng);

/// Signal-head proposition names of a regime (empty for None).
std::vector<std::string> signal_props(SignalRegime s);

/// Algorithm 1 over the feature tuple's proposition subset: a state per
/// valid labeling (at most one left-turn arrow aspect lit; the stop sign
/// forced true under StopControlled), a transition wherever at most
/// `noise`-many propositions flip, and pruning unless `conservative`.
TransitionSystem build_model(const ScenarioFeatures& f, const Vocabulary& v,
                             bool conservative = false);

/// Environment-liveness assumptions mirroring `fairness_assumptions()`:
/// the configuration permitting the manoeuvre (its permission lamp, if
/// any, plus all agents clear) recurs, and a lit lamp keeps cycling.
std::vector<Ltl> derive_fairness(const ScenarioFeatures& f,
                                 const Vocabulary& v);

/// The simulator's per-proposition observation flip probability for a
/// noise regime (the sim-facing half of the perception-noise axis).
double perception_noise(NoiseRegime n);

}  // namespace dpoaf::driving::generator
