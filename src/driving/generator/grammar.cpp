#include "driving/generator/grammar.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace dpoaf::driving::generator {

using logic::Symbol;
using namespace logic::ltl;

namespace {

int idx(const Vocabulary& v, std::string_view name) {
  const auto i = v.find(name);
  DPOAF_CHECK_MSG(i.has_value(),
                  "driving vocabulary missing " + std::string(name));
  return *i;
}

// The six agent propositions, in vocabulary declaration order — the agent
// mix is always a sorted subset of this list.
const std::vector<std::string>& agent_pool() {
  static const std::vector<std::string> kAgents = {
      "opposite_car",       "car_from_left",      "car_from_right",
      "pedestrian_at_left", "pedestrian_at_right", "pedestrian_in_front"};
  return kAgents;
}

bool has_left_aspect(SignalRegime s) {
  return s == SignalRegime::ProtectedLeft || s == SignalRegime::PermissiveLeft ||
         s == SignalRegime::FullHead;
}

bool contains(const std::vector<std::string>& xs, std::string_view x) {
  return std::find(xs.begin(), xs.end(), x) != xs.end();
}

// Agents whose presence forbids the manoeuvre outright (the safety-guard
// spec templates quantify over exactly these pairs).
std::vector<std::string> forbidders(std::string_view action) {
  if (action == "turn_right") return {"car_from_left", "pedestrian_at_right"};
  if (action == "turn_left")
    return {"opposite_car", "car_from_left", "car_from_right",
            "pedestrian_at_left"};
  if (action == "go_straight") return {"pedestrian_in_front"};
  return {};
}

// A manoeuvre is constrained in this scenario when some agent in the mix
// forbids it, or a signal lamp gates it.
bool constrained(const ScenarioFeatures& f, const std::string& action) {
  for (const std::string& a : forbidders(action))
    if (contains(f.agents, a)) return true;
  if (action == "go_straight" && f.signal != SignalRegime::None) return true;
  if (action == "turn_left" && has_left_aspect(f.signal)) return true;
  return false;
}

std::vector<std::string> candidate_actions(const ScenarioFeatures& f) {
  switch (f.topology) {
    case Topology::Signalized:
      return f.signal == SignalRegime::Standard
                 ? std::vector<std::string>{"go_straight", "turn_right"}
                 : std::vector<std::string>{"turn_left"};
    case Topology::StopControlled:
      return {"turn_right", "go_straight"};
    case Topology::Roundabout:
      return {"turn_right"};
    case Topology::MedianCrossing:
      return {"turn_left"};
    case Topology::Uncontrolled:
      return {"go_straight", "turn_left", "turn_right"};
  }
  DPOAF_CHECK_MSG(false, "unknown topology");
  return {};
}

}  // namespace

std::string topology_name(Topology t) {
  switch (t) {
    case Topology::Signalized:
      return "signalized";
    case Topology::StopControlled:
      return "stop_controlled";
    case Topology::Roundabout:
      return "roundabout";
    case Topology::MedianCrossing:
      return "median_crossing";
    case Topology::Uncontrolled:
      return "uncontrolled";
  }
  DPOAF_CHECK_MSG(false, "unknown topology");
  return {};
}

std::string signal_name(SignalRegime s) {
  switch (s) {
    case SignalRegime::None:
      return "none";
    case SignalRegime::Standard:
      return "standard";
    case SignalRegime::ProtectedLeft:
      return "protected_left";
    case SignalRegime::PermissiveLeft:
      return "permissive_left";
    case SignalRegime::FullHead:
      return "full_head";
  }
  DPOAF_CHECK_MSG(false, "unknown signal regime");
  return {};
}

std::string noise_name(NoiseRegime n) {
  return n == NoiseRegime::Calm ? "calm" : "nominal";
}

std::vector<std::string> signal_props(SignalRegime s) {
  switch (s) {
    case SignalRegime::None:
      return {};
    case SignalRegime::Standard:
      return {"green_traffic_light"};
    case SignalRegime::ProtectedLeft:
      return {"green_traffic_light", "green_left_turn_light"};
    case SignalRegime::PermissiveLeft:
      return {"green_traffic_light", "flashing_left_turn_light"};
    case SignalRegime::FullHead:
      return {"green_traffic_light", "green_left_turn_light",
              "flashing_left_turn_light"};
  }
  DPOAF_CHECK_MSG(false, "unknown signal regime");
  return {};
}

ScenarioFeatures draw_features(Rng& rng) {
  ScenarioFeatures f;
  f.topology = static_cast<Topology>(rng.below(5));
  f.signal = f.topology == Topology::Signalized
                 ? static_cast<SignalRegime>(1 + rng.below(4))
                 : SignalRegime::None;
  f.noise = static_cast<NoiseRegime>(rng.below(2));

  // Agent mix: 2–3 of the six agent propositions, drawn by shuffling the
  // pool and keeping a prefix, then restored to vocabulary order so the
  // mix is a canonical set (its identity never depends on draw order).
  const auto& pool = agent_pool();
  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const std::size_t mix = 2 + rng.below(2);
  std::vector<std::size_t> picked(order.begin(),
                                  order.begin() + static_cast<long>(mix));
  // A median crossing is defined by the oncoming stream: force it in.
  if (f.topology == Topology::MedianCrossing &&
      std::find(picked.begin(), picked.end(), std::size_t{0}) == picked.end())
    picked[0] = 0;  // opposite_car
  std::sort(picked.begin(), picked.end());
  for (std::size_t i : picked) f.agents.push_back(pool[i]);

  // Manoeuvre: one of the topology's plausible actions that the mix (or
  // the signal) actually constrains. If the draw produced an entirely
  // unconstrained junction, adopt the first candidate's first forbidder —
  // a scenario whose rulebook cannot distinguish compliant from reckless
  // would be dead weight in training.
  std::vector<std::string> candidates;
  for (const std::string& a : candidate_actions(f))
    if (constrained(f, a)) candidates.push_back(a);
  if (candidates.empty()) {
    const std::string fallback = candidate_actions(f).front();
    const std::string forced = forbidders(fallback).front();
    f.agents.push_back(forced);
    std::sort(f.agents.begin(), f.agents.end(),
              [&pool](const std::string& a, const std::string& b) {
                return std::find(pool.begin(), pool.end(), a) <
                       std::find(pool.begin(), pool.end(), b);
              });
    candidates.push_back(fallback);
  }
  f.action = candidates[rng.below(candidates.size())];
  for (const char* a : {"go_straight", "turn_right", "turn_left"})
    if (f.action != a) {
      f.wrong_action = a;
      break;
    }
  return f;
}

TransitionSystem build_model(const ScenarioFeatures& f, const Vocabulary& v,
                             bool conservative) {
  std::vector<int> props;
  for (const std::string& p : signal_props(f.signal)) props.push_back(idx(v, p));
  for (const std::string& a : f.agents) props.push_back(idx(v, a));
  DPOAF_CHECK_MSG(props.size() <= 7,
                  "generated scenario proposition subset too large");

  // The left-turn head shows at most one arrow aspect at a time (the same
  // validity constraint the paper's Fig. 15 model carries).
  Symbol aspects = 0;
  if (f.signal == SignalRegime::FullHead)
    aspects = Vocabulary::bit(idx(v, "green_left_turn_light")) |
              Vocabulary::bit(idx(v, "flashing_left_turn_light"));
  const int max_flips = f.noise == NoiseRegime::Calm ? 1 : 2;
  auto allowed = [aspects, max_flips](Symbol from, Symbol to) {
    if (aspects != 0 &&
        ((from & aspects) == aspects || (to & aspects) == aspects))
      return false;
    return std::popcount(from ^ to) <= max_flips;
  };
  TransitionSystem base =
      TransitionSystem::from_predicate(props, allowed, conservative);

  if (f.topology != Topology::StopControlled) return base;
  // Re-apply the forced always-true stop sign, as make_scenario_model does
  // for the paper's two-way stop.
  const Symbol forced = Vocabulary::bit(idx(v, "stop_sign"));
  TransitionSystem ts;
  for (std::size_t p = 0; p < base.state_count(); ++p)
    ts.add_state(base.label(static_cast<int>(p)) | forced,
                 "gen_stop_p" + std::to_string(p));
  for (std::size_t p = 0; p < base.state_count(); ++p)
    for (int q : base.successors(static_cast<int>(p)))
      ts.add_transition(static_cast<int>(p), q);
  return ts;
}

std::vector<Ltl> derive_fairness(const ScenarioFeatures& f,
                                 const Vocabulary& v) {
  std::vector<Ltl> clear_lits;
  for (const std::string& a : f.agents)
    clear_lits.push_back(lnot(prop(idx(v, a))));
  const Ltl clear = land_all(clear_lits);

  std::vector<Ltl> out;
  const std::vector<std::string> lamps = signal_props(f.signal);
  if (lamps.empty()) {
    // No signal: the junction simply clears infinitely often.
    out.push_back(always(eventually(clear)));
    return out;
  }
  // Every lamp opens a clear window infinitely often, and no lamp is
  // stuck on forever — the generalization of the paper's per-scenario
  // FAIRNESS constraints (green window recurs, the head keeps cycling).
  for (const std::string& lamp : lamps)
    out.push_back(always(eventually(land(prop(idx(v, lamp)), clear))));
  for (const std::string& lamp : lamps)
    out.push_back(always(eventually(lnot(prop(idx(v, lamp))))));
  return out;
}

double perception_noise(NoiseRegime n) {
  return n == NoiseRegime::Calm ? 0.01 : 0.05;
}

}  // namespace dpoaf::driving::generator
