// Seeded procedural scenario generation (docs/GENERATOR.md): draw feature
// tuples from the grammar, build each scenario's transition system with
// Algorithm 1, instantiate + satisfiability-filter its rulebook, derive
// fairness assumptions, and fill one TaskBlueprint per scenario so the
// rest of the pipeline (corpus, sampling, verification, DPO, eval) treats
// generated scenarios exactly like the five hand-built ones.
//
// Determinism contract: generation is a serial fold over one Rng seeded
// with GeneratorConfig::seed — per-scenario generators are split in index
// order — so the same config yields a byte-identical registry at any
// thread count, on any backend (property-tested in tests/test_generator).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driving/generator/grammar.hpp"
#include "driving/generator/rulebook.hpp"
#include "driving/tasks.hpp"

namespace dpoaf::driving::generator {

struct GeneratorConfig {
  /// Seed of the generator's private stream — deliberately separate from
  /// the pipeline seed so the scenario set can stay fixed while training
  /// randomness varies (and vice versa).
  std::uint64_t seed = 7;
  /// Number of scenarios to generate (0 disables generation).
  int count = 0;
  /// Of `count`, hold out the *last* M scenarios: their tasks are flagged
  /// Task::holdout and excluded from every training signal, then scored
  /// by the held-out generalization eval.
  int holdout = 0;
  /// Algorithm 1 without pruning (the ablation variant).
  bool conservative = false;
};

/// Audit counters for one generation run (surfaced in core::RunResult).
struct GeneratorStats {
  int requested = 0;
  int generated = 0;
  int holdout = 0;
  int specs_instantiated = 0;
  int specs_discarded_unsat = 0;
  int specs_discarded_trivial = 0;

  [[nodiscard]] int discarded() const {
    return specs_discarded_unsat + specs_discarded_trivial;
  }
};

/// One generated scenario, ready for registry installation.
struct GeneratedScenario {
  std::string key;  // "gen007_signalized_full_head_nominal"
  ScenarioFeatures features;
  TransitionSystem model;
  std::vector<logic::Ltl> fairness;
  std::vector<NamedSpec> specs;  // post-pre-pass rulebook
  TaskBlueprint task;            // one control task per scenario
  bool holdout = false;
};

/// Generate `config.count` scenarios over the driving vocabulary.
std::vector<GeneratedScenario> generate_scenarios(const GeneratorConfig& config,
                                                  const Vocabulary& vocab,
                                                  GeneratorStats* stats = nullptr);

}  // namespace dpoaf::driving::generator
