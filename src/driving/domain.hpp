// DrivingDomain — the assembled autonomous-driving system: vocabulary,
// aligner lexicon, the scenario *registry* (the paper's five hand-built
// scenarios plus any procedurally generated ones), the 15-spec rulebook,
// and the task catalog. Also hosts `formal_feedback`, the paper's
// automated feedback channel (§4.2, Formal Verification): response text →
// GLM2FSA controller → product with the task's scenario model → count of
// satisfied specifications.
//
// The registry is string-keyed: the five paper scenarios keep their
// ScenarioId enum (and enum-keyed accessor overloads forward through
// scenario_name), while generated scenarios exist only as registry
// entries — each carries its own model, fairness assumptions, and
// satisfiability-filtered rulebook (docs/GENERATOR.md).
//
// Feedback is a pure function of (scenario, response text), and the DPO-AF
// loop re-scores identical texts constantly (low-temperature sampling,
// checkpoint re-evaluation), so the domain memoizes it: a content-addressed
// cache keyed by (scenario key, canonicalized response text) returns the
// stored FeedbackResult on repeat queries. Hits are indistinguishable from
// recomputation (enforced by tests/test_properties.cpp).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "driving/generator/generator.hpp"
#include "driving/scenarios.hpp"
#include "driving/specs.hpp"
#include "driving/tasks.hpp"
#include "glm2fsa/builder.hpp"
#include "modelcheck/checker.hpp"
#include "util/cache.hpp"

namespace dpoaf::driving {

using glm2fsa::PhraseAligner;
using logic::Symbol;
using modelcheck::VerificationReport;

/// Outcome of the automated-feedback pipeline on one response.
struct FeedbackResult {
  bool aligned = false;        // GLM2FSA parse/alignment succeeded
  std::vector<glm2fsa::ParseIssue> issues;  // why alignment failed
  VerificationReport report;   // valid when aligned
  automata::FsaController controller;  // valid when aligned

  /// Ranking score: number of satisfied specifications, with alignment
  /// failures ranked strictly below every verifiable response (the
  /// fine-tuning explicitly also targets alignability, §4.1 property 1).
  [[nodiscard]] int score() const {
    return aligned ? static_cast<int>(report.satisfied()) : -1;
  }
};

/// One registry entry: a world model plus everything needed to verify a
/// controller against it (and to simulate it empirically).
struct Scenario {
  std::string key;                    // "traffic_light", "gen007_…", …
  TransitionSystem model;
  std::vector<logic::Ltl> fairness;   // environment-liveness assumptions
  std::vector<NamedSpec> specs;       // this scenario's rulebook
  double perception_noise = 0.05;     // sim observation flip probability
  bool generated = false;             // procedurally generated entry
  bool holdout = false;               // reserved for the generalization eval
};

class DrivingDomain {
 public:
  /// The paper's five-scenario domain.
  DrivingDomain();
  /// Five paper scenarios plus `gen.count` generated ones (one task each).
  explicit DrivingDomain(const generator::GeneratorConfig& gen);

  [[nodiscard]] const logic::Vocabulary& vocab() const { return vocab_; }
  [[nodiscard]] const PhraseAligner& aligner() const { return aligner_; }
  /// The paper's 15-spec rulebook (every hand-built scenario's rulebook).
  [[nodiscard]] const std::vector<NamedSpec>& specs() const { return specs_; }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }

  /// The full registry, paper scenarios first, generated ones after in
  /// generation (index) order.
  [[nodiscard]] const std::vector<Scenario>& scenarios() const {
    return scenarios_;
  }
  [[nodiscard]] const Scenario& scenario(std::string_view key) const;
  [[nodiscard]] const TransitionSystem& model(std::string_view key) const {
    return scenario(key).model;
  }
  [[nodiscard]] const std::vector<logic::Ltl>& fairness(
      std::string_view key) const {
    return scenario(key).fairness;
  }
  /// The scenario's own rulebook — `specs()` for paper scenarios, the
  /// satisfiability-filtered template instantiation for generated ones.
  [[nodiscard]] const std::vector<NamedSpec>& specs_for(
      std::string_view key) const {
    return scenario(key).specs;
  }
  // Enum conveniences for the five paper scenarios.
  [[nodiscard]] const TransitionSystem& model(ScenarioId id) const {
    return model(std::string_view(scenario_name(id)));
  }
  [[nodiscard]] const std::vector<logic::Ltl>& fairness(ScenarioId id) const {
    return fairness(std::string_view(scenario_name(id)));
  }
  [[nodiscard]] const TransitionSystem& universal_model() const {
    return universal_;
  }
  /// Tally of the generation run that built this domain (all zeros for the
  /// default five-scenario domain).
  [[nodiscard]] const generator::GeneratorStats& generator_stats() const {
    return generator_stats_;
  }
  /// The {stop} action symbol — emitted while waiting/observing.
  [[nodiscard]] Symbol stop_action() const { return stop_action_; }
  [[nodiscard]] glm2fsa::BuildOptions build_options() const;
  [[nodiscard]] automata::ProductOptions product_options() const;

  [[nodiscard]] const Task& task_by_id(std::string_view id) const;

  /// Toggle the formal-feedback memoization (default on). Disabling does
  /// not clear stored entries; clear_feedback_cache() does.
  void set_feedback_cache(bool enabled) { feedback_cache_on_ = enabled; }
  [[nodiscard]] bool feedback_cache_enabled() const {
    return feedback_cache_on_;
  }
  [[nodiscard]] util::CacheStats feedback_cache_stats() const {
    return feedback_cache_.stats();
  }
  void clear_feedback_cache() {
    feedback_cache_.clear();
    feedback_cache_.reset_stats();
  }

 private:
  friend FeedbackResult formal_feedback(const DrivingDomain& domain,
                                        std::string_view scenario_key,
                                        std::string_view response_text);

  void install_scenario(Scenario scenario);

  logic::Vocabulary vocab_;
  PhraseAligner aligner_;
  std::vector<NamedSpec> specs_;
  std::vector<Task> tasks_;
  std::vector<Scenario> scenarios_;
  std::map<std::string, std::size_t, std::less<>> scenario_index_;
  TransitionSystem universal_;
  generator::GeneratorStats generator_stats_;
  Symbol stop_action_ = 0;
  bool feedback_cache_on_ = true;
  // Mutable: formal_feedback takes a const domain (scoring threads share
  // it read-only); the cache is the one internally synchronized exception.
  mutable util::ShardedCache<std::string, FeedbackResult> feedback_cache_{
      /*capacity_per_shard=*/512, /*shards=*/16};
};

/// The cache key's text component: CR/LF normalized, lines trimmed, blank
/// lines dropped. Exactly the projection the GLM2FSA step splitter applies
/// before parsing, so two texts with equal canonical forms are guaranteed
/// the same feedback. Exposed for tests.
std::string canonical_response_text(std::string_view response_text);

/// Run the full formal-verification feedback on one response text within
/// the given scenario (any registry key). Verification runs against the
/// scenario's *own* rulebook and fairness assumptions. Memoized per domain
/// (see class comment); the returned value is identical whether it was
/// computed or replayed.
FeedbackResult formal_feedback(const DrivingDomain& domain,
                               std::string_view scenario_key,
                               std::string_view response_text);

/// Enum convenience for the five paper scenarios.
inline FeedbackResult formal_feedback(const DrivingDomain& domain,
                                      ScenarioId scenario,
                                      std::string_view response_text) {
  return formal_feedback(domain, std::string_view(scenario_name(scenario)),
                         response_text);
}

}  // namespace dpoaf::driving
