// DrivingDomain — the assembled autonomous-driving system: vocabulary,
// aligner lexicon, scenario models with fairness assumptions, the 15-spec
// rulebook, and the task catalog. Also hosts `formal_feedback`, the paper's
// automated feedback channel (§4.2, Formal Verification): response text →
// GLM2FSA controller → product with the task's scenario model → count of
// satisfied specifications.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "driving/scenarios.hpp"
#include "driving/specs.hpp"
#include "driving/tasks.hpp"
#include "glm2fsa/builder.hpp"
#include "modelcheck/checker.hpp"

namespace dpoaf::driving {

using glm2fsa::PhraseAligner;
using logic::Symbol;
using modelcheck::VerificationReport;

class DrivingDomain {
 public:
  DrivingDomain();

  [[nodiscard]] const logic::Vocabulary& vocab() const { return vocab_; }
  [[nodiscard]] const PhraseAligner& aligner() const { return aligner_; }
  [[nodiscard]] const std::vector<NamedSpec>& specs() const { return specs_; }
  [[nodiscard]] const std::vector<Task>& tasks() const { return tasks_; }
  [[nodiscard]] const TransitionSystem& model(ScenarioId id) const;
  [[nodiscard]] const std::vector<logic::Ltl>& fairness(ScenarioId id) const;
  [[nodiscard]] const TransitionSystem& universal_model() const {
    return universal_;
  }
  /// The {stop} action symbol — emitted while waiting/observing.
  [[nodiscard]] Symbol stop_action() const { return stop_action_; }
  [[nodiscard]] glm2fsa::BuildOptions build_options() const;
  [[nodiscard]] automata::ProductOptions product_options() const;

  [[nodiscard]] const Task& task_by_id(std::string_view id) const;

 private:
  logic::Vocabulary vocab_;
  PhraseAligner aligner_;
  std::vector<NamedSpec> specs_;
  std::vector<Task> tasks_;
  std::map<ScenarioId, TransitionSystem> models_;
  std::map<ScenarioId, std::vector<logic::Ltl>> fairness_;
  TransitionSystem universal_;
  Symbol stop_action_ = 0;
};

/// Outcome of the automated-feedback pipeline on one response.
struct FeedbackResult {
  bool aligned = false;        // GLM2FSA parse/alignment succeeded
  std::vector<glm2fsa::ParseIssue> issues;  // why alignment failed
  VerificationReport report;   // valid when aligned
  automata::FsaController controller;  // valid when aligned

  /// Ranking score: number of satisfied specifications, with alignment
  /// failures ranked strictly below every verifiable response (the
  /// fine-tuning explicitly also targets alignability, §4.1 property 1).
  [[nodiscard]] int score() const {
    return aligned ? static_cast<int>(report.satisfied()) : -1;
  }
};

/// Run the full formal-verification feedback on one response text within
/// the given scenario.
FeedbackResult formal_feedback(const DrivingDomain& domain,
                               ScenarioId scenario,
                               std::string_view response_text);

}  // namespace dpoaf::driving
