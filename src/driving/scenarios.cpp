#include "driving/scenarios.hpp"

#include <bit>
#include <functional>

#include "logic/parser.hpp"
#include "util/check.hpp"

namespace dpoaf::driving {

using logic::Symbol;

namespace {

int idx(const Vocabulary& v, std::string_view name) {
  const auto i = v.find(name);
  DPOAF_CHECK_MSG(i.has_value(), "driving vocabulary missing " +
                                     std::string(name));
  return *i;
}

struct ScenarioSpec {
  std::vector<int> props;                       // varying propositions
  Symbol forced = 0;                            // always-true propositions
  std::function<bool(Symbol)> valid;            // state filter
};

ScenarioSpec scenario_spec(ScenarioId id, const Vocabulary& v) {
  ScenarioSpec s;
  s.valid = [](Symbol) { return true; };
  switch (id) {
    case ScenarioId::TrafficLight:
      s.props = {idx(v, "green_traffic_light"), idx(v, "car_from_left"),
                 idx(v, "pedestrian_at_right"),
                 idx(v, "pedestrian_in_front")};
      break;
    case ScenarioId::WideMedian:
      s.props = {idx(v, "car_from_left"), idx(v, "car_from_right"),
                 idx(v, "opposite_car")};
      break;
    case ScenarioId::LeftTurnSignal: {
      const Symbol green = Vocabulary::bit(idx(v, "green_left_turn_light"));
      const Symbol flash =
          Vocabulary::bit(idx(v, "flashing_left_turn_light"));
      s.props = {idx(v, "green_traffic_light"),
                 idx(v, "green_left_turn_light"),
                 idx(v, "flashing_left_turn_light"), idx(v, "opposite_car")};
      // The left-turn head shows at most one aspect at a time.
      s.valid = [green, flash](Symbol sym) {
        return (sym & (green | flash)) != (green | flash);
      };
      break;
    }
    case ScenarioId::TwoWayStop:
      s.props = {idx(v, "car_from_left"), idx(v, "car_from_right"),
                 idx(v, "pedestrian_in_front")};
      s.forced = Vocabulary::bit(idx(v, "stop_sign"));
      break;
    case ScenarioId::Roundabout:
      s.props = {idx(v, "car_from_left"), idx(v, "pedestrian_at_left"),
                 idx(v, "pedestrian_at_right")};
      break;
  }
  return s;
}

}  // namespace

std::vector<ScenarioId> all_scenarios() {
  return {ScenarioId::TrafficLight, ScenarioId::WideMedian,
          ScenarioId::LeftTurnSignal, ScenarioId::TwoWayStop,
          ScenarioId::Roundabout};
}

std::string scenario_name(ScenarioId id) {
  switch (id) {
    case ScenarioId::TrafficLight:
      return "traffic_light";
    case ScenarioId::WideMedian:
      return "wide_median";
    case ScenarioId::LeftTurnSignal:
      return "left_turn_signal";
    case ScenarioId::TwoWayStop:
      return "two_way_stop";
    case ScenarioId::Roundabout:
      return "roundabout";
  }
  DPOAF_CHECK_MSG(false, "unknown scenario id");
  return {};
}

TransitionSystem make_scenario_model(ScenarioId id, const Vocabulary& vocab,
                                     bool conservative) {
  const ScenarioSpec spec = scenario_spec(id, vocab);
  // One perception step changes at most two propositions; both endpoint
  // labelings must satisfy the scenario's validity constraint.
  auto allowed = [&spec](Symbol from, Symbol to) {
    if (!spec.valid(from) || !spec.valid(to)) return false;
    return std::popcount(from ^ to) <= 2;
  };
  TransitionSystem base =
      TransitionSystem::from_predicate(spec.props, allowed, conservative);

  if (spec.forced == 0) return base;
  // Re-apply forced (always-true) propositions, e.g. the stop sign itself.
  TransitionSystem ts;
  for (std::size_t p = 0; p < base.state_count(); ++p)
    ts.add_state(base.label(static_cast<int>(p)) | spec.forced,
                 scenario_name(id) + "_p" + std::to_string(p));
  for (std::size_t p = 0; p < base.state_count(); ++p)
    for (int q : base.successors(static_cast<int>(p)))
      ts.add_transition(static_cast<int>(p), q);
  return ts;
}

TransitionSystem make_universal_model(const Vocabulary& vocab) {
  TransitionSystem universal;
  for (ScenarioId id : all_scenarios())
    universal.integrate(make_scenario_model(id, vocab));
  return universal;
}

std::vector<Ltl> fairness_assumptions(ScenarioId id, const Vocabulary& vocab) {
  auto parse = [&vocab](const char* text) {
    return logic::parse_ltl(text, vocab);
  };
  switch (id) {
    case ScenarioId::TrafficLight:
      // A green window with clear traffic recurs, and the signal keeps
      // cycling (it is not stuck on green forever).
      return {parse("G F (green_traffic_light & !car_from_left & "
                    "!pedestrian_at_right & !pedestrian_in_front)"),
              parse("G F !green_traffic_light")};
    case ScenarioId::WideMedian:
      return {parse(
          "G F (!car_from_left & !car_from_right & !opposite_car)")};
    case ScenarioId::LeftTurnSignal:
      // Both a protected (green arrow) and a permissive (flashing) window
      // recur with oncoming traffic clear, and the arrow keeps cycling.
      return {parse("G F (green_left_turn_light & !opposite_car)"),
              parse("G F (flashing_left_turn_light & !opposite_car)"),
              parse("G F !green_left_turn_light")};
    case ScenarioId::TwoWayStop:
      return {parse("G F (!car_from_left & !car_from_right & "
                    "!pedestrian_in_front)")};
    case ScenarioId::Roundabout:
      return {parse("G F (!car_from_left & !pedestrian_at_left & "
                    "!pedestrian_at_right)")};
  }
  return {};
}

}  // namespace dpoaf::driving
