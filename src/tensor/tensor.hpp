// Minimal dense float tensor with reverse-mode autodiff — the substrate
// the tiny GPT and the DPO trainer are built on. Deliberately small:
// row-major 1-D/2-D tensors, a flat gradient buffer per tensor, and an
// explicit Tape that records backward closures in execution order.
//
// Threading: the hot ops in ops.cpp fan out over the shared thread pool
// (util/threadpool.hpp) with fixed, reduction-preserving partitions, so
// results are bitwise-identical at any thread count; Tensor handles and
// Tape themselves are not synchronized — don't share one Tape across
// threads (see DESIGN.md "Threading model").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace dpoaf::tensor {

/// Tensor shape; rank ≤ 2 in this library (scalars are shape {1}).
struct Shape {
  std::int64_t rows = 1;
  std::int64_t cols = 1;

  [[nodiscard]] std::int64_t numel() const { return rows * cols; }
  bool operator==(const Shape&) const = default;
};

namespace detail {
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;  // lazily sized on first access
  bool requires_grad = false;
};
}  // namespace detail

/// Value-semantics handle to a shared tensor buffer. Copies alias the same
/// storage (like torch.Tensor); use clone() for a deep copy.
class Tensor {
 public:
  Tensor() : impl_(std::make_shared<detail::TensorImpl>()) {}

  static Tensor zeros(Shape shape);
  static Tensor full(Shape shape, float value);
  static Tensor from(Shape shape, std::vector<float> values);
  /// Gaussian init, scaled (e.g. 0.02 for GPT-style init).
  static Tensor randn(Shape shape, Rng& rng, float scale = 1.0f);

  [[nodiscard]] const Shape& shape() const { return impl_->shape; }
  [[nodiscard]] std::int64_t rows() const { return impl_->shape.rows; }
  [[nodiscard]] std::int64_t cols() const { return impl_->shape.cols; }
  [[nodiscard]] std::int64_t numel() const { return impl_->shape.numel(); }

  [[nodiscard]] float* data() { return impl_->data.data(); }
  [[nodiscard]] const float* data() const { return impl_->data.data(); }
  [[nodiscard]] float item() const;

  [[nodiscard]] float& at(std::int64_t r, std::int64_t c);
  [[nodiscard]] float at(std::int64_t r, std::int64_t c) const;

  [[nodiscard]] bool requires_grad() const { return impl_->requires_grad; }
  Tensor& set_requires_grad(bool v) {
    impl_->requires_grad = v;
    return *this;
  }

  /// Gradient buffer, allocated (zero-filled) on first access.
  [[nodiscard]] float* grad();
  [[nodiscard]] bool has_grad() const { return !impl_->grad.empty(); }
  void zero_grad();

  /// Deep copy of the data (grad not copied; requires_grad preserved).
  [[nodiscard]] Tensor clone() const;
  /// True when two handles alias the same storage.
  [[nodiscard]] bool same_storage(const Tensor& other) const {
    return impl_ == other.impl_;
  }

 private:
  std::shared_ptr<detail::TensorImpl> impl_;
};

/// Records backward closures during the forward pass; backward() replays
/// them in reverse. One Tape per training step; clear() or a fresh Tape
/// between steps.
class Tape {
 public:
  void record(std::function<void()> backward_fn) {
    nodes_.push_back(std::move(backward_fn));
  }
  /// Seed: caller sets the loss tensor's grad to 1 first (or uses
  /// backward(loss) below).
  void backward();
  /// Convenience: seeds `loss` (a scalar) with grad 1 and replays.
  void backward(Tensor loss);
  void clear() { nodes_.clear(); }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

 private:
  std::vector<std::function<void()>> nodes_;
};

}  // namespace dpoaf::tensor
