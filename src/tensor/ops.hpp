// Differentiable operations over Tensor. Every op takes an optional Tape*;
// passing nullptr runs inference-only (no backward closure recorded).
// Gradients flow only into inputs with requires_grad().
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace dpoaf::tensor::ops {

/// C[M,N] = A[M,K] · B[K,N]
Tensor matmul(Tape* tape, const Tensor& a, const Tensor& b);

/// Elementwise sum; shapes must match.
Tensor add(Tape* tape, const Tensor& a, const Tensor& b);

/// x[M,N] + bias broadcast over rows; bias is [1,N].
Tensor add_rowwise(Tape* tape, const Tensor& x, const Tensor& bias);

/// Elementwise product; shapes must match.
Tensor mul(Tape* tape, const Tensor& a, const Tensor& b);

/// Elementwise difference; shapes must match.
Tensor sub(Tape* tape, const Tensor& a, const Tensor& b);

/// s · a
Tensor scale(Tape* tape, const Tensor& a, float s);

/// GELU (tanh approximation), elementwise.
Tensor gelu(Tape* tape, const Tensor& a);

/// Row-wise layer normalization with learnable gamma/beta ([1,N]).
Tensor layer_norm(Tape* tape, const Tensor& x, const Tensor& gamma,
                  const Tensor& beta, float eps = 1e-5f);

/// Row-wise softmax.
Tensor softmax_rows(Tape* tape, const Tensor& x);

/// Row-wise softmax over a causal mask: row i attends to columns j ≤ i
/// only (entries j > i are exactly zero in the output).
Tensor causal_softmax_rows(Tape* tape, const Tensor& scores);

/// out[T,D] = table[ids[t], :]; backward scatter-adds into the table.
Tensor embedding(Tape* tape, const Tensor& table,
                 const std::vector<int>& ids);

/// Columns [start, start+len) of x.
Tensor slice_cols(Tape* tape, const Tensor& x, std::int64_t start,
                  std::int64_t len);

/// Horizontal concatenation of tensors with equal row counts.
Tensor concat_cols(Tape* tape, const std::vector<Tensor>& parts);

/// xᵀ
Tensor transpose(Tape* tape, const Tensor& x);

/// Scalar sum of all entries.
Tensor sum(Tape* tape, const Tensor& x);

/// Mean cross-entropy of next-token prediction: logits[T,V] vs targets[T];
/// positions with target < 0 are ignored (e.g. prompt/padding).
Tensor cross_entropy(Tape* tape, const Tensor& logits,
                     const std::vector<int>& targets);

/// Scalar Σ_{t ≥ from} log softmax(logits[t])[targets[t]] — the sequence
/// log-probability of the response region, differentiable for DPO.
/// Positions with target < 0 are skipped.
Tensor sum_log_probs(Tape* tape, const Tensor& logits,
                     const std::vector<int>& targets, std::int64_t from);

/// softplus(x) = log(1 + eˣ), elementwise (numerically stable).
Tensor softplus(Tape* tape, const Tensor& x);

}  // namespace dpoaf::tensor::ops
