#include "tensor/tensor.hpp"

#include <algorithm>

namespace dpoaf::tensor {

Tensor Tensor::zeros(Shape shape) {
  Tensor t;
  t.impl_->shape = shape;
  t.impl_->data.assign(static_cast<std::size_t>(shape.numel()), 0.0f);
  return t;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t = zeros(shape);
  std::fill(t.impl_->data.begin(), t.impl_->data.end(), value);
  return t;
}

Tensor Tensor::from(Shape shape, std::vector<float> values) {
  DPOAF_CHECK(static_cast<std::int64_t>(values.size()) == shape.numel());
  Tensor t;
  t.impl_->shape = shape;
  t.impl_->data = std::move(values);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float scale) {
  Tensor t = zeros(shape);
  for (float& v : t.impl_->data)
    v = static_cast<float>(rng.normal()) * scale;
  return t;
}

float Tensor::item() const {
  DPOAF_CHECK_MSG(numel() == 1, "item() requires a scalar tensor");
  return impl_->data[0];
}

float& Tensor::at(std::int64_t r, std::int64_t c) {
  DPOAF_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
  return impl_->data[static_cast<std::size_t>(r * cols() + c)];
}

float Tensor::at(std::int64_t r, std::int64_t c) const {
  DPOAF_DCHECK(r >= 0 && r < rows() && c >= 0 && c < cols());
  return impl_->data[static_cast<std::size_t>(r * cols() + c)];
}

float* Tensor::grad() {
  if (impl_->grad.empty())
    impl_->grad.assign(impl_->data.size(), 0.0f);
  return impl_->grad.data();
}

void Tensor::zero_grad() {
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

Tensor Tensor::clone() const {
  Tensor t;
  t.impl_->shape = impl_->shape;
  t.impl_->data = impl_->data;
  t.impl_->requires_grad = impl_->requires_grad;
  return t;
}

void Tape::backward() {
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) (*it)();
}

void Tape::backward(Tensor loss) {
  DPOAF_CHECK_MSG(loss.numel() == 1, "backward() seeds a scalar loss");
  loss.grad()[0] = 1.0f;
  backward();
}

}  // namespace dpoaf::tensor
