#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "tensor/backend/backend.hpp"
#include "util/threadpool.hpp"

namespace dpoaf::tensor::ops {

namespace {

bool track(const Tape* tape, std::initializer_list<const Tensor*> inputs) {
  if (tape == nullptr) return false;
  for (const Tensor* t : inputs)
    if (t->requires_grad()) return true;
  return false;
}

std::string shape_str(const Shape& s) {
  // Formatted into a char buffer: literal+string concatenation trips
  // GCC 12's -Wrestrict false positive at -O3 (GCC PR105651).
  char buf[56];
  std::snprintf(buf, sizeof buf, "[%lldx%lld]",
                static_cast<long long>(s.rows),
                static_cast<long long>(s.cols));
  return buf;
}

std::string shapes_msg(const char* op, const Shape& a, const Shape& b) {
  return std::string(op) + ": " + shape_str(a) + " vs " + shape_str(b);
}

// Minimum per-chunk work (in float ops) before an op fans out to the pool;
// below this the dispatch overhead beats the parallelism.
constexpr std::int64_t kGrainFlops = 16384;

// Chunk size, in rows, for a loop whose per-row cost is `row_flops`.
std::int64_t row_grain(std::int64_t row_flops) {
  return row_flops < 1 ? kGrainFlops : std::max<std::int64_t>(1, kGrainFlops / row_flops);
}

}  // namespace

Tensor matmul(Tape* tape, const Tensor& a, const Tensor& b) {
  DPOAF_CHECK_MSG(a.cols() == b.rows(),
                  shapes_msg("matmul: inner dimensions differ", a.shape(),
                             b.shape()));
  const std::int64_t m = a.rows(), k = a.cols(), n = b.cols();
  // Throughput telemetry (counts only; obs::counter is a no-op when
  // observability is off): calls and multiply-add flops of the forward,
  // totalled and broken out per backend (docs/BACKENDS.md).
  static obs::Counter& fwd_calls = obs::counter("tensor.matmul.calls");
  static obs::Counter& fwd_flops = obs::counter("tensor.matmul.flops");
  const backend::ComputeBackend& be = backend::active();
  fwd_calls.add();
  fwd_flops.add(static_cast<std::uint64_t>(2 * m * k * n));
  be.matmul_counters().fwd_calls.add();
  be.matmul_counters().fwd_flops.add(static_cast<std::uint64_t>(2 * m * k * n));
  Tensor c = Tensor::zeros({m, n});
  {
    const float* pa = a.data();
    const float* pb = b.data();
    float* pc = c.data();
    // Row partition: each output row is produced by exactly one chunk, and
    // backend kernels keep per-element arithmetic independent of the chunk
    // bounds, so the result is thread-count-invariant per backend.
    util::parallel_for(0, m, row_grain(2 * k * n),
                       [&](std::int64_t i0, std::int64_t i1) {
      be.matmul_fwd(pa, pb, pc, k, n, i0, i1);
    });
  }
  if (track(tape, {&a, &b})) {
    c.set_requires_grad(true);
    Tensor at = a, bt = b, ct = c;
    tape->record([at, bt, ct]() mutable {
      const std::int64_t m = at.rows(), k = at.cols(), n = bt.cols();
      static obs::Counter& bwd_calls = obs::counter("tensor.matmul.bwd_calls");
      static obs::Counter& bwd_flops = obs::counter("tensor.matmul.bwd_flops");
      const backend::ComputeBackend& be = backend::active();
      const auto flops = static_cast<std::uint64_t>(
          2 * m * k * n * ((at.requires_grad() ? 1 : 0) +
                           (bt.requires_grad() ? 1 : 0)));
      bwd_calls.add();
      bwd_flops.add(flops);
      be.matmul_counters().bwd_calls.add();
      be.matmul_counters().bwd_flops.add(flops);
      const float* gc = ct.grad();
      if (at.requires_grad()) {
        float* ga = at.grad();
        const float* pb = bt.data();
        // dA[i,kk] += Σ_j gC[i,j] · B[kk,j] — partition over i; each dA row
        // belongs to one chunk and the j-reduction order is unchanged.
        util::parallel_for(0, m, row_grain(2 * k * n),
                           [&](std::int64_t i0, std::int64_t i1) {
          be.matmul_bwd_a(gc, pb, ga, k, n, i0, i1);
        });
      }
      if (bt.requires_grad()) {
        float* gb = bt.grad();
        const float* pa = at.data();
        // dB[kk,j] += Σ_i A[i,kk] · gC[i,j] — partition over kk (dB rows) so
        // no two chunks touch the same accumulator; i stays the inner serial
        // loop, preserving the i-ascending accumulation order per cell.
        util::parallel_for(0, k, row_grain(2 * m * n),
                           [&](std::int64_t k0, std::int64_t k1) {
          be.matmul_bwd_b(pa, gc, gb, m, k, n, k0, k1);
        });
      }
    });
  }
  return c;
}

Tensor add(Tape* tape, const Tensor& a, const Tensor& b) {
  DPOAF_CHECK_MSG(a.shape() == b.shape(),
                  shapes_msg("add: shape mismatch", a.shape(), b.shape()));
  Tensor c = Tensor::zeros(a.shape());
  const backend::ComputeBackend& be = backend::active();
  util::parallel_for(0, a.numel(), kGrainFlops,
                     [&](std::int64_t i0, std::int64_t i1) {
    be.ew_add(a.data(), b.data(), c.data(), i0, i1);
  });
  if (track(tape, {&a, &b})) {
    c.set_requires_grad(true);
    Tensor at = a, bt = b, ct = c;
    tape->record([at, bt, ct]() mutable {
      const backend::ComputeBackend& be = backend::active();
      const float* gc = ct.grad();
      if (at.requires_grad()) {
        float* ga = at.grad();
        util::parallel_for(0, at.numel(), kGrainFlops,
                           [&](std::int64_t i0, std::int64_t i1) {
          be.ew_axpy(1.0f, gc, ga, i0, i1);
        });
      }
      if (bt.requires_grad()) {
        float* gb = bt.grad();
        util::parallel_for(0, bt.numel(), kGrainFlops,
                           [&](std::int64_t i0, std::int64_t i1) {
          be.ew_axpy(1.0f, gc, gb, i0, i1);
        });
      }
    });
  }
  return c;
}

Tensor add_rowwise(Tape* tape, const Tensor& x, const Tensor& bias) {
  DPOAF_CHECK_MSG(
      bias.rows() == 1 && bias.cols() == x.cols(),
      shapes_msg("add_rowwise: bias must be [1 x cols(x)]", x.shape(),
                 bias.shape()));
  Tensor c = Tensor::zeros(x.shape());
  const std::int64_t m = x.rows(), n = x.cols();
  const backend::ComputeBackend& be = backend::active();
  util::parallel_for(0, m, row_grain(n),
                     [&](std::int64_t i0, std::int64_t i1) {
    be.row_bias_add(x.data(), bias.data(), c.data(), n, i0, i1);
  });
  if (track(tape, {&x, &bias})) {
    c.set_requires_grad(true);
    Tensor xt = x, bt = bias, ct = c;
    tape->record([xt, bt, ct]() mutable {
      const std::int64_t m = xt.rows(), n = xt.cols();
      const backend::ComputeBackend& be = backend::active();
      const float* gc = ct.grad();
      if (xt.requires_grad()) {
        float* gx = xt.grad();
        util::parallel_for(0, m * n, kGrainFlops,
                           [&](std::int64_t i0, std::int64_t i1) {
          be.ew_axpy(1.0f, gc, gx, i0, i1);
        });
      }
      if (bt.requires_grad()) {
        // Column reduction across rows: stays serial — splitting rows
        // across threads would reorder the float accumulation into gb.
        float* gb = bt.grad();
        for (std::int64_t i = 0; i < m; ++i)
          for (std::int64_t j = 0; j < n; ++j) gb[j] += gc[i * n + j];
      }
    });
  }
  return c;
}

Tensor mul(Tape* tape, const Tensor& a, const Tensor& b) {
  DPOAF_CHECK_MSG(a.shape() == b.shape(),
                  shapes_msg("mul: shape mismatch", a.shape(), b.shape()));
  Tensor c = Tensor::zeros(a.shape());
  const backend::ComputeBackend& be = backend::active();
  util::parallel_for(0, a.numel(), kGrainFlops,
                     [&](std::int64_t i0, std::int64_t i1) {
    be.ew_mul(a.data(), b.data(), c.data(), i0, i1);
  });
  if (track(tape, {&a, &b})) {
    c.set_requires_grad(true);
    Tensor at = a, bt = b, ct = c;
    tape->record([at, bt, ct]() mutable {
      const backend::ComputeBackend& be = backend::active();
      const float* gc = ct.grad();
      if (at.requires_grad()) {
        float* ga = at.grad();
        util::parallel_for(0, at.numel(), kGrainFlops,
                           [&](std::int64_t i0, std::int64_t i1) {
          be.ew_mul_acc(gc, bt.data(), ga, i0, i1);
        });
      }
      if (bt.requires_grad()) {
        float* gb = bt.grad();
        util::parallel_for(0, bt.numel(), kGrainFlops,
                           [&](std::int64_t i0, std::int64_t i1) {
          be.ew_mul_acc(gc, at.data(), gb, i0, i1);
        });
      }
    });
  }
  return c;
}

Tensor sub(Tape* tape, const Tensor& a, const Tensor& b) {
  return add(tape, a, scale(tape, b, -1.0f));
}

Tensor scale(Tape* tape, const Tensor& a, float s) {
  Tensor c = Tensor::zeros(a.shape());
  const backend::ComputeBackend& be = backend::active();
  util::parallel_for(0, a.numel(), kGrainFlops,
                     [&](std::int64_t i0, std::int64_t i1) {
    be.ew_scale(a.data(), s, c.data(), i0, i1);
  });
  if (track(tape, {&a})) {
    c.set_requires_grad(true);
    Tensor at = a, ct = c;
    tape->record([at, ct, s]() mutable {
      if (!at.requires_grad()) return;
      float* ga = at.grad();
      const float* gc = ct.grad();
      util::parallel_for(0, at.numel(), kGrainFlops,
                         [&](std::int64_t i0, std::int64_t i1) {
        backend::active().ew_axpy(s, gc, ga, i0, i1);
      });
    });
  }
  return c;
}

Tensor gelu(Tape* tape, const Tensor& a) {
  constexpr float kC = 0.7978845608028654f;  // √(2/π)
  Tensor c = Tensor::zeros(a.shape());
  // tanh is expensive relative to a flop; use a finer grain so mid-sized
  // activations still fan out.
  util::parallel_for(0, a.numel(), kGrainFlops / 16,
                     [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float x = a.data()[i];
      const float t = std::tanh(kC * (x + 0.044715f * x * x * x));
      c.data()[i] = 0.5f * x * (1.0f + t);
    }
  });
  if (track(tape, {&a})) {
    c.set_requires_grad(true);
    Tensor at = a, ct = c;
    tape->record([at, ct]() mutable {
      if (!at.requires_grad()) return;
      float* ga = at.grad();
      const float* gc = ct.grad();
      util::parallel_for(0, at.numel(), kGrainFlops / 16,
                         [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float x = at.data()[i];
          const float u = kC * (x + 0.044715f * x * x * x);
          const float t = std::tanh(u);
          const float du = kC * (1.0f + 3.0f * 0.044715f * x * x);
          const float d = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
          ga[i] += gc[i] * d;
        }
      });
    });
  }
  return c;
}

Tensor layer_norm(Tape* tape, const Tensor& x, const Tensor& gamma,
                  const Tensor& beta, float eps) {
  DPOAF_CHECK_MSG(
      gamma.rows() == 1 && gamma.cols() == x.cols(),
      shapes_msg("layer_norm: gamma must be [1 x cols(x)]", x.shape(),
                 gamma.shape()));
  DPOAF_CHECK_MSG(
      beta.rows() == 1 && beta.cols() == x.cols(),
      shapes_msg("layer_norm: beta must be [1 x cols(x)]", x.shape(),
                 beta.shape()));
  const std::int64_t m = x.rows(), n = x.cols();
  Tensor y = Tensor::zeros(x.shape());
  // Cache per-row mean and inverse stddev for the backward pass. Each row's
  // statistics are reduced entirely within its chunk (row partition), so
  // the forward is thread-count-invariant.
  std::vector<float> mean(static_cast<std::size_t>(m));
  std::vector<float> inv_std(static_cast<std::size_t>(m));
  util::parallel_for(0, m, row_grain(4 * n),
                     [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* xr = x.data() + i * n;
      float mu = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) mu += xr[j];
      mu /= static_cast<float>(n);
      float var = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) var += (xr[j] - mu) * (xr[j] - mu);
      var /= static_cast<float>(n);
      const float is = 1.0f / std::sqrt(var + eps);
      mean[static_cast<std::size_t>(i)] = mu;
      inv_std[static_cast<std::size_t>(i)] = is;
      float* yr = y.data() + i * n;
      for (std::int64_t j = 0; j < n; ++j)
        yr[j] = (xr[j] - mu) * is * gamma.data()[j] + beta.data()[j];
    }
  });
  if (track(tape, {&x, &gamma, &beta})) {
    y.set_requires_grad(true);
    Tensor xt = x, gt = gamma, bt = beta, yt = y;
    tape->record([xt, gt, bt, yt, mean, inv_std]() mutable {
      const std::int64_t m = xt.rows(), n = xt.cols();
      const float* gy = yt.grad();
      // Backward stays serial: the gamma/beta gradients reduce across rows,
      // and a row partition would reorder that float accumulation.
      for (std::int64_t i = 0; i < m; ++i) {
        const float* xr = xt.data() + i * n;
        const float* gyr = gy + i * n;
        const float mu = mean[static_cast<std::size_t>(i)];
        const float is = inv_std[static_cast<std::size_t>(i)];
        if (gt.requires_grad() || bt.requires_grad()) {
          float* gg = gt.grad();
          float* gb = bt.grad();
          for (std::int64_t j = 0; j < n; ++j) {
            gg[j] += gyr[j] * (xr[j] - mu) * is;
            gb[j] += gyr[j];
          }
        }
        if (xt.requires_grad()) {
          // d x̂ = gy·γ ; dx = is(d x̂ − mean(d x̂) − x̂·mean(d x̂·x̂))
          float sum_dxh = 0.0f, sum_dxh_xh = 0.0f;
          for (std::int64_t j = 0; j < n; ++j) {
            const float xh = (xr[j] - mu) * is;
            const float dxh = gyr[j] * gt.data()[j];
            sum_dxh += dxh;
            sum_dxh_xh += dxh * xh;
          }
          const float inv_n = 1.0f / static_cast<float>(n);
          float* gx = xt.grad() + i * n;
          for (std::int64_t j = 0; j < n; ++j) {
            const float xh = (xr[j] - mu) * is;
            const float dxh = gyr[j] * gt.data()[j];
            gx[j] += is * (dxh - inv_n * sum_dxh - xh * inv_n * sum_dxh_xh);
          }
        }
      }
    });
  }
  return y;
}

namespace {

// Shared forward for (masked) row softmax; `limit(i)` gives the exclusive
// column bound for row i.
template <typename Limit>
Tensor softmax_impl(Tape* tape, const Tensor& x, Limit limit) {
  const std::int64_t m = x.rows(), n = x.cols();
  Tensor y = Tensor::zeros(x.shape());
  // Row partition: each row's max/sum reduction is confined to one chunk.
  util::parallel_for(0, m, row_grain(4 * n),
                     [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const std::int64_t lim = limit(i);
      const float* xr = x.data() + i * n;
      float* yr = y.data() + i * n;
      float mx = -1e30f;
      for (std::int64_t j = 0; j < lim; ++j) mx = std::max(mx, xr[j]);
      float z = 0.0f;
      for (std::int64_t j = 0; j < lim; ++j) {
        yr[j] = std::exp(xr[j] - mx);
        z += yr[j];
      }
      const float inv = 1.0f / z;
      for (std::int64_t j = 0; j < lim; ++j) yr[j] *= inv;
    }
  });
  if (track(tape, {&x})) {
    y.set_requires_grad(true);
    Tensor xt = x, yt = y;
    tape->record([xt, yt, limit]() mutable {
      if (!xt.requires_grad()) return;
      const std::int64_t m = xt.rows(), n = xt.cols();
      const float* gy = yt.grad();
      float* gx = xt.grad();
      util::parallel_for(0, m, row_grain(4 * n),
                         [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const std::int64_t lim = limit(i);
          const float* yr = yt.data() + i * n;
          const float* gyr = gy + i * n;
          float dot = 0.0f;
          for (std::int64_t j = 0; j < lim; ++j) dot += gyr[j] * yr[j];
          for (std::int64_t j = 0; j < lim; ++j)
            gx[i * n + j] += yr[j] * (gyr[j] - dot);
        }
      });
    });
  }
  return y;
}

}  // namespace

Tensor softmax_rows(Tape* tape, const Tensor& x) {
  const std::int64_t n = x.cols();
  return softmax_impl(tape, x, [n](std::int64_t) { return n; });
}

Tensor causal_softmax_rows(Tape* tape, const Tensor& scores) {
  DPOAF_CHECK_MSG(scores.rows() == scores.cols(),
                  "causal softmax expects square score matrix");
  return softmax_impl(tape, scores,
                      [](std::int64_t i) { return i + 1; });
}

Tensor embedding(Tape* tape, const Tensor& table,
                 const std::vector<int>& ids) {
  const std::int64_t v = table.rows(), d = table.cols();
  const auto t_len = static_cast<std::int64_t>(ids.size());
  Tensor out = Tensor::zeros({t_len, d});
  for (std::int64_t t = 0; t < t_len; ++t) {
    const int id = ids[static_cast<std::size_t>(t)];
    DPOAF_CHECK_MSG(id >= 0 && id < v, "embedding id out of range");
    const float* row = table.data() + static_cast<std::int64_t>(id) * d;
    float* dst = out.data() + t * d;
    for (std::int64_t j = 0; j < d; ++j) dst[j] = row[j];
  }
  if (track(tape, {&table})) {
    out.set_requires_grad(true);
    Tensor tt = table, ot = out;
    tape->record([tt, ot, ids]() mutable {
      if (!tt.requires_grad()) return;
      const std::int64_t d = tt.cols();
      float* gt = tt.grad();
      const float* go = ot.grad();
      for (std::size_t t = 0; t < ids.size(); ++t) {
        float* dst = gt + static_cast<std::int64_t>(ids[t]) * d;
        const float* src = go + static_cast<std::int64_t>(t) * d;
        for (std::int64_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    });
  }
  return out;
}

Tensor slice_cols(Tape* tape, const Tensor& x, std::int64_t start,
                  std::int64_t len) {
  DPOAF_CHECK_MSG(start >= 0 && len > 0 && start + len <= x.cols(),
                  "slice_cols: [" + std::to_string(start) + ", " +
                      std::to_string(start + len) + ") out of range for " +
                      shape_str(x.shape()));
  const std::int64_t m = x.rows(), n = x.cols();
  Tensor y = Tensor::zeros({m, len});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < len; ++j)
      y.data()[i * len + j] = x.data()[i * n + start + j];
  if (track(tape, {&x})) {
    y.set_requires_grad(true);
    Tensor xt = x, yt = y;
    tape->record([xt, yt, start, len]() mutable {
      if (!xt.requires_grad()) return;
      const std::int64_t m = xt.rows(), n = xt.cols();
      float* gx = xt.grad();
      const float* gy = yt.grad();
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < len; ++j)
          gx[i * n + start + j] += gy[i * len + j];
    });
  }
  return y;
}

Tensor concat_cols(Tape* tape, const std::vector<Tensor>& parts) {
  DPOAF_CHECK(!parts.empty());
  const std::int64_t m = parts.front().rows();
  std::int64_t n = 0;
  for (const Tensor& p : parts) {
    DPOAF_CHECK_MSG(p.rows() == m,
                    shapes_msg("concat_cols: row mismatch",
                               parts.front().shape(), p.shape()));
    n += p.cols();
  }
  Tensor y = Tensor::zeros({m, n});
  std::int64_t off = 0;
  bool needs_grad = false;
  for (const Tensor& p : parts) {
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < p.cols(); ++j)
        y.data()[i * n + off + j] = p.data()[i * p.cols() + j];
    off += p.cols();
    needs_grad = needs_grad || p.requires_grad();
  }
  if (tape != nullptr && needs_grad) {
    y.set_requires_grad(true);
    std::vector<Tensor> ps = parts;
    Tensor yt = y;
    tape->record([ps, yt]() mutable {
      const std::int64_t m = yt.rows(), n = yt.cols();
      const float* gy = yt.grad();
      std::int64_t off = 0;
      for (Tensor& p : ps) {
        if (p.requires_grad()) {
          float* gp = p.grad();
          for (std::int64_t i = 0; i < m; ++i)
            for (std::int64_t j = 0; j < p.cols(); ++j)
              gp[i * p.cols() + j] += gy[i * n + off + j];
        }
        off += p.cols();
      }
    });
  }
  return y;
}

Tensor transpose(Tape* tape, const Tensor& x) {
  const std::int64_t m = x.rows(), n = x.cols();
  Tensor y = Tensor::zeros({n, m});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      y.data()[j * m + i] = x.data()[i * n + j];
  if (track(tape, {&x})) {
    y.set_requires_grad(true);
    Tensor xt = x, yt = y;
    tape->record([xt, yt]() mutable {
      if (!xt.requires_grad()) return;
      const std::int64_t m = xt.rows(), n = xt.cols();
      float* gx = xt.grad();
      const float* gy = yt.grad();
      for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j)
          gx[i * n + j] += gy[j * m + i];
    });
  }
  return y;
}

Tensor sum(Tape* tape, const Tensor& x) {
  Tensor y = Tensor::zeros({1, 1});
  float acc = 0.0f;
  for (std::int64_t i = 0; i < x.numel(); ++i) acc += x.data()[i];
  y.data()[0] = acc;
  if (track(tape, {&x})) {
    y.set_requires_grad(true);
    Tensor xt = x, yt = y;
    tape->record([xt, yt]() mutable {
      if (!xt.requires_grad()) return;
      float* gx = xt.grad();
      const float g = yt.grad()[0];
      for (std::int64_t i = 0; i < xt.numel(); ++i) gx[i] += g;
    });
  }
  return y;
}

namespace {

// Shared machinery for cross_entropy and sum_log_probs: computes
// Σ/mean of -log p(target) with softmax-minus-onehot backward.
Tensor nll(Tape* tape, const Tensor& logits, const std::vector<int>& targets,
           std::int64_t from, bool mean, float sign) {
  DPOAF_CHECK_MSG(static_cast<std::int64_t>(targets.size()) == logits.rows(),
                  "nll: " + std::to_string(targets.size()) +
                      " targets for logits " + shape_str(logits.shape()));
  const std::int64_t t_len = logits.rows(), v = logits.cols();
  std::vector<std::int64_t> positions;
  for (std::int64_t t = from; t < t_len; ++t)
    if (targets[static_cast<std::size_t>(t)] >= 0) positions.push_back(t);
  DPOAF_CHECK_MSG(!positions.empty(), "no scored positions");

  // Row-wise log-softmax at scored positions only.
  Tensor out = Tensor::zeros({1, 1});
  std::vector<float> logz(positions.size());
  float acc = 0.0f;
  for (std::size_t p = 0; p < positions.size(); ++p) {
    const std::int64_t t = positions[p];
    const float* row = logits.data() + t * v;
    float mx = row[0];
    for (std::int64_t j = 1; j < v; ++j) mx = std::max(mx, row[j]);
    float z = 0.0f;
    for (std::int64_t j = 0; j < v; ++j) z += std::exp(row[j] - mx);
    logz[p] = mx + std::log(z);
    acc += row[targets[static_cast<std::size_t>(t)]] - logz[p];
  }
  const float denom = mean ? static_cast<float>(positions.size()) : 1.0f;
  out.data()[0] = sign * acc / denom;

  if (track(tape, {&logits})) {
    out.set_requires_grad(true);
    Tensor lt = logits, ot = out;
    tape->record([lt, ot, targets, positions, logz, denom, sign]() mutable {
      if (!lt.requires_grad()) return;
      const std::int64_t v = lt.cols();
      const float g = ot.grad()[0] * sign / denom;
      float* gl = lt.grad();
      for (std::size_t p = 0; p < positions.size(); ++p) {
        const std::int64_t t = positions[p];
        const float* row = lt.data() + t * v;
        float* grow = gl + t * v;
        const int y = targets[static_cast<std::size_t>(t)];
        for (std::int64_t j = 0; j < v; ++j) {
          const float prob = std::exp(row[j] - logz[p]);
          // d(log p_y)/d logit_j = 1[j==y] − p_j
          grow[j] += g * ((j == y ? 1.0f : 0.0f) - prob);
        }
      }
    });
  }
  return out;
}

}  // namespace

Tensor cross_entropy(Tape* tape, const Tensor& logits,
                     const std::vector<int>& targets) {
  return nll(tape, logits, targets, 0, /*mean=*/true, /*sign=*/-1.0f);
}

Tensor sum_log_probs(Tape* tape, const Tensor& logits,
                     const std::vector<int>& targets, std::int64_t from) {
  return nll(tape, logits, targets, from, /*mean=*/false, /*sign=*/1.0f);
}

Tensor softplus(Tape* tape, const Tensor& x) {
  Tensor y = Tensor::zeros(x.shape());
  util::parallel_for(0, x.numel(), kGrainFlops / 16,
                     [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float v = x.data()[i];
      // log(1+eᵛ) = max(v,0) + log1p(e^{−|v|})
      y.data()[i] = std::max(v, 0.0f) + std::log1p(std::exp(-std::fabs(v)));
    }
  });
  if (track(tape, {&x})) {
    y.set_requires_grad(true);
    Tensor xt = x, yt = y;
    tape->record([xt, yt]() mutable {
      if (!xt.requires_grad()) return;
      float* gx = xt.grad();
      const float* gy = yt.grad();
      util::parallel_for(0, xt.numel(), kGrainFlops / 16,
                         [&](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          const float s = 1.0f / (1.0f + std::exp(-xt.data()[i]));
          gx[i] += gy[i] * s;
        }
      });
    });
  }
  return y;
}

}  // namespace dpoaf::tensor::ops
