// Scalar reference backend: the exact loops tensor/ops.cpp ran before the
// backend seam existed, so "scalar" results stay byte-identical to the
// pre-backend library. Every other backend is judged against this one
// (tolerance cross-checks in tests/test_backend.cpp and micro_tensor).
#include "tensor/backend/backend.hpp"

namespace dpoaf::tensor::backend {

namespace {

class ScalarBackend final : public ComputeBackend {
 public:
  ScalarBackend() : ComputeBackend("scalar") {}

  [[nodiscard]] Kind kind() const override { return Kind::kScalar; }

  void matmul_fwd(const float* a, const float* b, float* c, std::int64_t k,
                  std::int64_t n, std::int64_t i0,
                  std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = a[i * k + kk];
        const float* pbr = b + kk * n;
        float* pcr = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) pcr[j] += av * pbr[j];
      }
    }
  }

  void matmul_bwd_a(const float* gc, const float* b, float* ga, std::int64_t k,
                    std::int64_t n, std::int64_t i0,
                    std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float* gcr = gc + i * n;
        const float* pbr = b + kk * n;
        float acc = 0.0f;
        for (std::int64_t j = 0; j < n; ++j) acc += gcr[j] * pbr[j];
        ga[i * k + kk] += acc;
      }
    }
  }

  void matmul_bwd_b(const float* a, const float* gc, float* gb, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t k0,
                    std::int64_t k1) const override {
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t kk = k0; kk < k1; ++kk) {
        const float av = a[i * k + kk];
        const float* gcr = gc + i * n;
        float* gbr = gb + kk * n;
        for (std::int64_t j = 0; j < n; ++j) gbr[j] += av * gcr[j];
      }
    }
  }

  void ew_add(const float* a, const float* b, float* out, std::int64_t i0,
              std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) out[i] = a[i] + b[i];
  }

  void ew_mul(const float* a, const float* b, float* out, std::int64_t i0,
              std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) out[i] = a[i] * b[i];
  }

  void ew_scale(const float* a, float s, float* out, std::int64_t i0,
                std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) out[i] = s * a[i];
  }

  void ew_axpy(float s, const float* a, float* out, std::int64_t i0,
               std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) out[i] += s * a[i];
  }

  void ew_mul_acc(const float* a, const float* b, float* out, std::int64_t i0,
                  std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) out[i] += a[i] * b[i];
  }

  void row_bias_add(const float* x, const float* bias, float* out,
                    std::int64_t n, std::int64_t i0,
                    std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i)
      for (std::int64_t j = 0; j < n; ++j)
        out[i * n + j] = x[i * n + j] + bias[j];
  }
};

}  // namespace

const ComputeBackend& scalar_backend() {
  static ScalarBackend backend;
  return backend;
}

}  // namespace dpoaf::tensor::backend
