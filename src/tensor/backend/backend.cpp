#include "tensor/backend/backend.hpp"

#include <atomic>
#include <cstdlib>

#include "util/check.hpp"

namespace dpoaf::tensor::backend {

namespace {

obs::Counter& matmul_counter(const char* field, const char* backend_name) {
  return obs::counter(std::string("tensor.matmul.") + field + "." +
                      backend_name);
}

// The active backend. nullptr until the first select()/active() call;
// written under selection (rare), read with a relaxed load on every op.
std::atomic<const ComputeBackend*> g_active{nullptr};

const ComputeBackend& resolve_auto() {
  if (const ComputeBackend* simd = simd_backend()) return *simd;
  return scalar_backend();
}

}  // namespace

ComputeBackend::ComputeBackend(const char* name)
    : name_(name),
      counters_{matmul_counter("calls", name), matmul_counter("flops", name),
                matmul_counter("bwd_calls", name),
                matmul_counter("bwd_flops", name)} {}

bool simd_supported() {
  static const bool supported = [] {
    if (!detail::simd_compiled()) return false;
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
    return false;
#endif
  }();
  return supported;
}

const ComputeBackend* simd_backend() {
  return simd_supported() ? detail::simd_backend_impl() : nullptr;
}

void select(const std::string& choice) {
  std::string want = choice;
  if (want.empty()) {
    const char* env = std::getenv("DPOAF_BACKEND");
    want = env == nullptr ? "auto" : env;
    if (want.empty()) want = "auto";
  }
  const ComputeBackend* next = nullptr;
  if (want == "scalar") {
    next = &scalar_backend();
  } else if (want == "simd") {
    DPOAF_CHECK_MSG(simd_supported(),
                    "backend 'simd' requested but this build/CPU has no "
                    "AVX2+FMA support");
    next = simd_backend();
  } else if (want == "auto") {
    next = &resolve_auto();
  } else {
    DPOAF_CHECK_MSG(false, "unknown backend '" + want +
                               "' (expected scalar|simd|auto)");
  }
  g_active.store(next, std::memory_order_release);
  // Report-only telemetry; Gauge::set is a no-op while obs is disabled,
  // so active() refreshes these on the hot path too (one relaxed load).
  obs::gauge("tensor.backend.active")
      .set(next->kind() == Kind::kSimd ? 1 : 0);
  obs::gauge("tensor.backend.simd_supported").set(simd_supported() ? 1 : 0);
}

const ComputeBackend& active() {
  static obs::Gauge& active_gauge = obs::gauge("tensor.backend.active");
  const ComputeBackend* be = g_active.load(std::memory_order_acquire);
  if (be == nullptr) {
    select("");
    be = g_active.load(std::memory_order_acquire);
  }
  // Refreshed here as well as in select(): observability may be switched
  // on after selection, and Gauge::set is a single relaxed load when off.
  active_gauge.set(be->kind() == Kind::kSimd ? 1 : 0);
  return *be;
}

Kind active_kind() { return active().kind(); }

}  // namespace dpoaf::tensor::backend
