// AVX2/FMA backend: register-blocked, cache-tiled microkernels for the
// matmul paths plus 8-wide elementwise kernels. Compiled with
// -mavx2 -mfma on x86 (see src/tensor/CMakeLists.txt); execution is
// gated at runtime by cpuid in backend::simd_supported(), so carrying
// the code in a generic build is safe.
//
// Determinism (the contract tests/test_backend.cpp pins): every output
// element's arithmetic depends only on its absolute indices and the full
// operand shapes — never on the thread-pool chunk bounds. Concretely:
//  - each output row/cell owns its accumulator registers, and the
//    register-blocked (MR rows) and remainder (1 row) paths run the same
//    ascending-k FMA chain per element, so how rows group into blocks
//    (which chunk bounds shift) cannot change any value;
//  - column tiling (64/16/8-wide tiles, scalar tails) only groups
//    independent columns into registers — it never alters a column's own
//    FMA chain — and the scalar tails use std::fma, which rounds exactly
//    like a vector FMA lane;
//  - the K cache tiles spill accumulators to the float32 output between
//    tiles — a lossless round-trip, so tiling never reorders a rounding.
// Results *do* differ from the scalar backend (FMA fuses the multiply
// and add into one rounding); that is the allowed cross-backend delta.
#include "tensor/backend/backend.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>

namespace dpoaf::tensor::backend {

namespace {

// Microkernel shape: MR output rows × NR output columns of C stay in
// registers across a K tile (MR·NR/8 = 8 accumulators + 2 B vectors +
// broadcasts fit the 16 ymm registers).
constexpr std::int64_t kMR = 4;
constexpr std::int64_t kNR = 16;
// K cache tile: one B panel (kKC × kNR floats = 16 KiB) stays L1-resident
// while the microkernel sweeps its rows.
constexpr std::int64_t kKC = 256;

// Fixed-order horizontal sum of 8 lanes (pairwise tree, independent of
// call-site context).
float hsum8(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 s = _mm_add_ps(lo, hi);
  s = _mm_add_ps(s, _mm_movehl_ps(s, s));
  s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
  return _mm_cvtss_f32(s);
}

// C rows [i, i+R) × columns [j, j+16) over K tile [kc0, kc1); the
// accumulators start from C (zero-filled by the caller, or the previous
// K tile's exact float32 spill).
template <std::int64_t R>
void fwd_tile16(const float* a, const float* b, float* c, std::int64_t k,
                std::int64_t n, std::int64_t i, std::int64_t j,
                std::int64_t kc0, std::int64_t kc1) {
  __m256 acc0[R], acc1[R];
  for (std::int64_t r = 0; r < R; ++r) {
    acc0[r] = _mm256_loadu_ps(c + (i + r) * n + j);
    acc1[r] = _mm256_loadu_ps(c + (i + r) * n + j + 8);
  }
  for (std::int64_t kk = kc0; kk < kc1; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(b + kk * n + j);
    const __m256 b1 = _mm256_loadu_ps(b + kk * n + j + 8);
    for (std::int64_t r = 0; r < R; ++r) {
      const __m256 av = _mm256_broadcast_ss(a + (i + r) * k + kk);
      acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
      acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
    }
  }
  for (std::int64_t r = 0; r < R; ++r) {
    _mm256_storeu_ps(c + (i + r) * n + j, acc0[r]);
    _mm256_storeu_ps(c + (i + r) * n + j + 8, acc1[r]);
  }
}

// Column tail: 8-wide then std::fma scalars; same per-element FMA chain
// as the 16-wide path, so which tile a column lands in (a function of N
// alone) is the only thing that varies.
template <std::int64_t R>
void fwd_tail(const float* a, const float* b, float* c, std::int64_t k,
              std::int64_t n, std::int64_t i, std::int64_t j0,
              std::int64_t kc0, std::int64_t kc1) {
  std::int64_t j = j0;
  for (; j + 8 <= n; j += 8) {
    __m256 acc[R];
    for (std::int64_t r = 0; r < R; ++r)
      acc[r] = _mm256_loadu_ps(c + (i + r) * n + j);
    for (std::int64_t kk = kc0; kk < kc1; ++kk) {
      const __m256 bv = _mm256_loadu_ps(b + kk * n + j);
      for (std::int64_t r = 0; r < R; ++r)
        acc[r] = _mm256_fmadd_ps(_mm256_broadcast_ss(a + (i + r) * k + kk),
                                 bv, acc[r]);
    }
    for (std::int64_t r = 0; r < R; ++r)
      _mm256_storeu_ps(c + (i + r) * n + j, acc[r]);
  }
  for (; j < n; ++j) {
    for (std::int64_t r = 0; r < R; ++r) {
      float acc = c[(i + r) * n + j];
      for (std::int64_t kk = kc0; kk < kc1; ++kk)
        acc = std::fma(a[(i + r) * k + kk], b[kk * n + j], acc);
      c[(i + r) * n + j] = acc;
    }
  }
}

template <std::int64_t R>
void fwd_rows(const float* a, const float* b, float* c, std::int64_t k,
              std::int64_t n, std::int64_t i, std::int64_t kc0,
              std::int64_t kc1) {
  std::int64_t j = 0;
  for (; j + kNR <= n; j += kNR) fwd_tile16<R>(a, b, c, k, n, i, j, kc0, kc1);
  if (j < n) fwd_tail<R>(a, b, c, k, n, i, j, kc0, kc1);
}

// Single-row path (remainder rows, and the m=1 matvec the KV-cache
// decoder issues every token): with one row the 16-wide tile holds only
// 2 accumulator chains — too few to hide FMA latency — so tile 64
// columns (8 independent chains) first. Register grouping of independent
// columns never changes a column's own ascending-kk FMA chain, so a row
// computes the same bits here as inside a 4-row block.
void fwd_row1(const float* a, const float* b, float* c, std::int64_t k,
              std::int64_t n, std::int64_t i, std::int64_t kc0,
              std::int64_t kc1) {
  const float* ar = a + i * k;
  float* cr = c + i * n;
  std::int64_t j = 0;
  for (; j + 64 <= n; j += 64) {
    __m256 acc[8];
    for (int t = 0; t < 8; ++t) acc[t] = _mm256_loadu_ps(cr + j + 8 * t);
    for (std::int64_t kk = kc0; kk < kc1; ++kk) {
      const __m256 av = _mm256_broadcast_ss(ar + kk);
      const float* br = b + kk * n + j;
      for (int t = 0; t < 8; ++t)
        acc[t] = _mm256_fmadd_ps(av, _mm256_loadu_ps(br + 8 * t), acc[t]);
    }
    for (int t = 0; t < 8; ++t) _mm256_storeu_ps(cr + j + 8 * t, acc[t]);
  }
  for (; j + kNR <= n; j += kNR) fwd_tile16<1>(a, b, c, k, n, i, j, kc0, kc1);
  if (j < n) fwd_tail<1>(a, b, c, k, n, i, j, kc0, kc1);
}

class SimdBackend final : public ComputeBackend {
 public:
  SimdBackend() : ComputeBackend("simd") {}

  [[nodiscard]] Kind kind() const override { return Kind::kSimd; }

  void matmul_fwd(const float* a, const float* b, float* c, std::int64_t k,
                  std::int64_t n, std::int64_t i0,
                  std::int64_t i1) const override {
    for (std::int64_t kc0 = 0; kc0 < k; kc0 += kKC) {
      const std::int64_t kc1 = kc0 + kKC < k ? kc0 + kKC : k;
      std::int64_t i = i0;
      for (; i + kMR <= i1; i += kMR)
        fwd_rows<kMR>(a, b, c, k, n, i, kc0, kc1);
      for (; i < i1; ++i) fwd_row1(a, b, c, k, n, i, kc0, kc1);
    }
  }

  void matmul_bwd_a(const float* gc, const float* b, float* ga, std::int64_t k,
                    std::int64_t n, std::int64_t i0,
                    std::int64_t i1) const override {
    // ga[i,kk] += ⟨gc[i,:], b[kk,:]⟩ — kk blocked by 4 to reuse each gc
    // vector across four B rows; per-(i,kk) the j-ascending FMA chain,
    // the hsum8 tree, and the scalar tail are identical in the blocked
    // and remainder paths.
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* gcr = gc + i * n;
      std::int64_t kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        __m256 acc[4] = {_mm256_setzero_ps(), _mm256_setzero_ps(),
                         _mm256_setzero_ps(), _mm256_setzero_ps()};
        std::int64_t j = 0;
        for (; j + 8 <= n; j += 8) {
          const __m256 g = _mm256_loadu_ps(gcr + j);
          for (std::int64_t r = 0; r < 4; ++r)
            acc[r] = _mm256_fmadd_ps(
                g, _mm256_loadu_ps(b + (kk + r) * n + j), acc[r]);
        }
        for (std::int64_t r = 0; r < 4; ++r) {
          float s = hsum8(acc[r]);
          for (std::int64_t jt = j; jt < n; ++jt)
            s = std::fma(gcr[jt], b[(kk + r) * n + jt], s);
          ga[i * k + kk + r] += s;
        }
      }
      for (; kk < k; ++kk) {
        __m256 acc = _mm256_setzero_ps();
        std::int64_t j = 0;
        for (; j + 8 <= n; j += 8)
          acc = _mm256_fmadd_ps(_mm256_loadu_ps(gcr + j),
                                _mm256_loadu_ps(b + kk * n + j), acc);
        float s = hsum8(acc);
        for (; j < n; ++j) s = std::fma(gcr[j], b[kk * n + j], s);
        ga[i * k + kk] += s;
      }
    }
  }

  void matmul_bwd_b(const float* a, const float* gc, float* gb, std::int64_t m,
                    std::int64_t k, std::int64_t n, std::int64_t k0,
                    std::int64_t k1) const override {
    // gb[kk,j] += Σ_i a[i,kk]·gc[i,j]: a gb j-tile stays in registers
    // while i ascends (the accumulation order every backend preserves);
    // the i loop is innermost so each cell sees one fixed FMA chain.
    for (std::int64_t kk = k0; kk < k1; ++kk) {
      float* gbr = gb + kk * n;
      std::int64_t j = 0;
      for (; j + kNR <= n; j += kNR) {
        __m256 acc0 = _mm256_loadu_ps(gbr + j);
        __m256 acc1 = _mm256_loadu_ps(gbr + j + 8);
        for (std::int64_t i = 0; i < m; ++i) {
          const __m256 av = _mm256_broadcast_ss(a + i * k + kk);
          acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(gc + i * n + j), acc0);
          acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(gc + i * n + j + 8),
                                 acc1);
        }
        _mm256_storeu_ps(gbr + j, acc0);
        _mm256_storeu_ps(gbr + j + 8, acc1);
      }
      for (; j + 8 <= n; j += 8) {
        __m256 acc = _mm256_loadu_ps(gbr + j);
        for (std::int64_t i = 0; i < m; ++i)
          acc = _mm256_fmadd_ps(_mm256_broadcast_ss(a + i * k + kk),
                                _mm256_loadu_ps(gc + i * n + j), acc);
        _mm256_storeu_ps(gbr + j, acc);
      }
      for (; j < n; ++j) {
        float acc = gbr[j];
        for (std::int64_t i = 0; i < m; ++i)
          acc = std::fma(a[i * k + kk], gc[i * n + j], acc);
        gbr[j] = acc;
      }
    }
  }

  // The elementwise kernels are per-element (no reductions), so vector
  // grouping — which does shift with the chunk base — cannot change any
  // value; add/mul/scale round exactly like scalar, axpy/mul_acc fuse.
  void ew_add(const float* a, const float* b, float* out, std::int64_t i0,
              std::int64_t i1) const override {
    std::int64_t i = i0;
    for (; i + 8 <= i1; i += 8)
      _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < i1; ++i) out[i] = a[i] + b[i];
  }

  void ew_mul(const float* a, const float* b, float* out, std::int64_t i0,
              std::int64_t i1) const override {
    std::int64_t i = i0;
    for (; i + 8 <= i1; i += 8)
      _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                              _mm256_loadu_ps(b + i)));
    for (; i < i1; ++i) out[i] = a[i] * b[i];
  }

  void ew_scale(const float* a, float s, float* out, std::int64_t i0,
                std::int64_t i1) const override {
    const __m256 sv = _mm256_set1_ps(s);
    std::int64_t i = i0;
    for (; i + 8 <= i1; i += 8)
      _mm256_storeu_ps(out + i, _mm256_mul_ps(sv, _mm256_loadu_ps(a + i)));
    for (; i < i1; ++i) out[i] = s * a[i];
  }

  void ew_axpy(float s, const float* a, float* out, std::int64_t i0,
               std::int64_t i1) const override {
    const __m256 sv = _mm256_set1_ps(s);
    std::int64_t i = i0;
    for (; i + 8 <= i1; i += 8)
      _mm256_storeu_ps(out + i,
                       _mm256_fmadd_ps(sv, _mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(out + i)));
    for (; i < i1; ++i) out[i] = std::fma(s, a[i], out[i]);
  }

  void ew_mul_acc(const float* a, const float* b, float* out, std::int64_t i0,
                  std::int64_t i1) const override {
    std::int64_t i = i0;
    for (; i + 8 <= i1; i += 8)
      _mm256_storeu_ps(out + i,
                       _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                                       _mm256_loadu_ps(b + i),
                                       _mm256_loadu_ps(out + i)));
    for (; i < i1; ++i) out[i] = std::fma(a[i], b[i], out[i]);
  }

  void row_bias_add(const float* x, const float* bias, float* out,
                    std::int64_t n, std::int64_t i0,
                    std::int64_t i1) const override {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* xr = x + i * n;
      float* outr = out + i * n;
      std::int64_t j = 0;
      for (; j + 8 <= n; j += 8)
        _mm256_storeu_ps(outr + j, _mm256_add_ps(_mm256_loadu_ps(xr + j),
                                                 _mm256_loadu_ps(bias + j)));
      for (; j < n; ++j) outr[j] = xr[j] + bias[j];
    }
  }
};

}  // namespace

namespace detail {

const ComputeBackend* simd_backend_impl() {
  static SimdBackend backend;
  return &backend;
}

bool simd_compiled() { return true; }

}  // namespace detail

}  // namespace dpoaf::tensor::backend

#else  // !(__AVX2__ && __FMA__): generic build — stub out the backend.

namespace dpoaf::tensor::backend::detail {

const ComputeBackend* simd_backend_impl() { return nullptr; }

bool simd_compiled() { return false; }

}  // namespace dpoaf::tensor::backend::detail

#endif
