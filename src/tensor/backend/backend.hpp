// Pluggable compute backends for the tensor hot paths (docs/BACKENDS.md).
//
// A ComputeBackend supplies the *chunk-level* kernels behind
// tensor::ops — matmul forward/backward and the large elementwise/row
// ops. ops.cpp keeps owning the thread-pool partitioning (fixed
// contiguous ranges, util::parallel_for) and hands each chunk to the
// active backend, so every backend composes with DPOAF_THREADS for free.
//
// Determinism contract:
//  - Each backend must be bitwise-reproducible across thread counts: a
//    kernel's per-element arithmetic (reduction order, rounding) may
//    depend only on the element's absolute indices and the full operand
//    shapes, never on the chunk bounds [i0, i1) it was invoked with.
//    Register blocking is fine as long as the blocked and remainder
//    paths produce identical per-element results (tests/test_backend.cpp
//    sweeps odd shapes across thread counts to pin this).
//  - Different backends may round differently (the simd backend fuses
//    multiply-adds; scalar keeps separate roundings). Cross-backend
//    results agree only within tolerance — pick one backend per
//    experiment when bitwise comparison matters.
//
// Selection precedence (mirrors the DPOAF_THREADS rules):
//  1. an explicit select("scalar"|"simd"|"auto") — e.g. from
//     PipelineConfig::backend;
//  2. the DPOAF_BACKEND environment variable (select("") / first use);
//  3. "auto": cpuid runtime dispatch — simd when the CPU supports
//     AVX2+FMA and the build carries the simd backend, else scalar.
// Explicitly requesting "simd" on hardware without AVX2+FMA is a
// contract violation (loud, never a silent fallback).
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace dpoaf::tensor::backend {

enum class Kind { kScalar, kSimd };

/// Per-backend matmul telemetry, registered as
/// tensor.matmul.{calls,flops,bwd_calls,bwd_flops}.<backend>.
struct MatmulCounters {
  obs::Counter& fwd_calls;
  obs::Counter& fwd_flops;
  obs::Counter& bwd_calls;
  obs::Counter& bwd_flops;
};

/// Chunk-level compute kernels. All row/index ranges [i0, i1) come from
/// the caller's fixed thread-pool partition; pointers are dense
/// row-major buffers owned by the caller.
class ComputeBackend {
 public:
  explicit ComputeBackend(const char* name);
  virtual ~ComputeBackend() = default;
  ComputeBackend(const ComputeBackend&) = delete;
  ComputeBackend& operator=(const ComputeBackend&) = delete;

  [[nodiscard]] const char* name() const { return name_; }
  [[nodiscard]] virtual Kind kind() const = 0;
  /// Const access is enough to record: the struct members are references
  /// to registry-owned counters.
  [[nodiscard]] const MatmulCounters& matmul_counters() const {
    return counters_;
  }

  // ---- matmul (C[M,N] = A[M,K]·B[K,N]) ------------------------------
  /// Rows [i0, i1) of the forward: c[i,:] = Σ_kk a[i,kk]·b[kk,:].
  /// c rows are zero-initialized by the caller.
  virtual void matmul_fwd(const float* a, const float* b, float* c,
                          std::int64_t k, std::int64_t n, std::int64_t i0,
                          std::int64_t i1) const = 0;
  /// Rows [i0, i1) of dA: ga[i,kk] += Σ_j gc[i,j]·b[kk,j].
  virtual void matmul_bwd_a(const float* gc, const float* b, float* ga,
                            std::int64_t k, std::int64_t n, std::int64_t i0,
                            std::int64_t i1) const = 0;
  /// dB rows [k0, k1): gb[kk,:] += Σ_i a[i,kk]·gc[i,:], i ascending (the
  /// per-cell accumulation order every backend must preserve).
  virtual void matmul_bwd_b(const float* a, const float* gc, float* gb,
                            std::int64_t m, std::int64_t k, std::int64_t n,
                            std::int64_t k0, std::int64_t k1) const = 0;

  // ---- large elementwise ops over flat index range [i0, i1) ---------
  /// out[i] = a[i] + b[i]
  virtual void ew_add(const float* a, const float* b, float* out,
                      std::int64_t i0, std::int64_t i1) const = 0;
  /// out[i] = a[i] · b[i]
  virtual void ew_mul(const float* a, const float* b, float* out,
                      std::int64_t i0, std::int64_t i1) const = 0;
  /// out[i] = s · a[i]
  virtual void ew_scale(const float* a, float s, float* out, std::int64_t i0,
                        std::int64_t i1) const = 0;
  /// out[i] += s · a[i]  (gradient accumulation for add/scale)
  virtual void ew_axpy(float s, const float* a, float* out, std::int64_t i0,
                       std::int64_t i1) const = 0;
  /// out[i] += a[i] · b[i]  (gradient accumulation for mul)
  virtual void ew_mul_acc(const float* a, const float* b, float* out,
                          std::int64_t i0, std::int64_t i1) const = 0;

  // ---- row ops ------------------------------------------------------
  /// Rows [i0, i1): out[i,:] = x[i,:] + bias[:], bias is [1,N].
  virtual void row_bias_add(const float* x, const float* bias, float* out,
                            std::int64_t n, std::int64_t i0,
                            std::int64_t i1) const = 0;

 private:
  const char* name_;
  MatmulCounters counters_;
};

/// True when this build carries the simd backend and the CPU supports
/// AVX2 + FMA (cpuid, checked once).
[[nodiscard]] bool simd_supported();

/// The scalar reference backend (always available).
[[nodiscard]] const ComputeBackend& scalar_backend();

/// The simd backend, or nullptr when the build/CPU cannot run it.
[[nodiscard]] const ComputeBackend* simd_backend();

/// Select the active backend: "scalar", "simd", "auto", or "" (empty
/// defers to DPOAF_BACKEND, then auto). Throws ContractViolation on an
/// unknown name or an explicit "simd" without hardware support.
void select(const std::string& choice);

/// The active backend (resolved via select("") on first use). Also
/// refreshes the tensor.backend.active gauge (0 scalar, 1 simd).
[[nodiscard]] const ComputeBackend& active();

/// Kind of the active backend (resolving it if needed).
[[nodiscard]] Kind active_kind();

namespace detail {
/// Defined by simd_avx2.cpp: the simd backend instance when compiled in,
/// nullptr otherwise. Runtime cpuid gating happens in simd_supported().
const ComputeBackend* simd_backend_impl();
/// Defined by simd_avx2.cpp: compile-time availability of the kernels.
bool simd_compiled();
}  // namespace detail

}  // namespace dpoaf::tensor::backend
