// Continuous-batching generation service (Orca-style iteration-level
// scheduling) over the KV-cache DecodeSession.
//
// A GenerationService owns a fixed fleet of decode slots and one scheduler
// thread. Requests enter a bounded admission queue; every scheduler
// iteration admits queued requests into free slots (priority-descending,
// then FIFO, lowest free slot first) and advances each active slot by one
// generated token, fanning the per-slot steps across util::ThreadPool.
// Finished, expired, or aborted requests retire at the end of the iteration
// and their slot is re-admitted immediately — new work never waits for the
// whole batch to drain.
//
// Determinism (see docs/SERVING.md): a request's output depends only on the
// model weights, its own fields, and request_rng(config.seed, request.seed).
// Each slot decodes with a private DecodeSession and a private RNG that is a
// pure function of the two seeds — never split at admission time — so token
// ids are bitwise-identical regardless of arrival order, slot count, thread
// count, or scheduling interleaving. In deterministic mode deadlines are
// ignored (wall-clock expiry is the one scheduling input that could leak
// into results); wall-clock latency fields are always report-only.
#pragma once

#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "nn/decoder.hpp"
#include "nn/gpt.hpp"

namespace dpoaf::serve {

/// Why a request stopped decoding.
enum class FinishReason {
  kEos,       // sampled the eos token
  kLength,    // emitted max_new_tokens
  kContext,   // hit the model's max_seq context limit (truncated)
  kDeadline,  // wall-clock deadline expired mid-decode (truncated)
  kShutdown,  // service aborted before the request completed (truncated)
};

[[nodiscard]] const char* to_string(FinishReason reason);

struct GenerateRequest {
  std::vector<int> prompt;  // token ids; non-empty, each in [0, vocab)
  int max_new_tokens = 72;
  float temperature = 0.7f;  // > 0 unless greedy
  int top_k = 6;             // <= 0 keeps the full distribution
  int eos_id = -1;           // -1: never stop on eos
  /// Greedy argmax decoding (temperature/top_k/seed unused).
  bool greedy = false;
  /// Per-request RNG seed; the decode stream is request_rng(service seed,
  /// this seed) — independent of every other request.
  std::uint64_t seed = 0;
  /// Wall-clock budget from admission, microseconds; 0 = none. Ignored in
  /// deterministic mode.
  std::int64_t timeout_us = 0;
  /// Higher-priority requests are admitted first; ties are FIFO.
  int priority = 0;
};

struct GenerateResult {
  std::vector<int> ids;    // generated tokens (eos never included)
  bool truncated = false;  // context, deadline, or shutdown cut it short
  FinishReason finish = FinishReason::kEos;
  // Wall-clock latency breakdown, report-only (never fed back into token
  // selection): admission→slot, admission→first emitted token (0 when no
  // token was emitted), admission→retirement.
  std::uint64_t queue_ns = 0;
  std::uint64_t ttft_ns = 0;
  std::uint64_t total_ns = 0;
};

enum class SubmitError {
  kQueueFull,  // bounded admission queue at capacity
  kShutdown,   // service no longer accepts requests
  kInvalid,    // request failed validation (see validate())
};

/// A ticket for an admitted request.
struct Submission {
  std::uint64_t id = 0;
  std::future<GenerateResult> result;
};

struct ServiceConfig {
  int slots = 8;            // concurrent decode sessions (>= 1)
  int queue_capacity = 64;  // admission queue bound, excluding active slots
  /// Reproducible mode: wall-clock deadlines are ignored so results are a
  /// pure function of (seed, request set). Latency stats stay wall-clock.
  bool deterministic = false;
  std::uint64_t seed = 0;  // mixed into every per-request RNG
};

/// Lifetime totals (monotone; read with stats()).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t completed = 0;
  std::uint64_t generated_tokens = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t iterations = 0;  // scheduler iterations that advanced work
};

/// The decode RNG for a request: a pure function of the service seed and
/// the request seed, so streams never depend on admission order.
[[nodiscard]] Rng request_rng(std::uint64_t service_seed,
                              std::uint64_t request_seed);

class GenerationService {
 public:
  /// Binds to `model`, which must outlive the service and must not be
  /// mutated while the service is running.
  GenerationService(const nn::TinyGpt& model, ServiceConfig config);
  /// Drains outstanding work (shutdown(true)) before returning.
  ~GenerationService();

  GenerationService(const GenerationService&) = delete;
  GenerationService& operator=(const GenerationService&) = delete;

  /// Empty when the request is valid for this service's model.
  [[nodiscard]] std::string validate(const GenerateRequest& req) const;

  /// Non-blocking admission. On rejection returns nullopt and sets *why
  /// (when given) to the reason.
  std::optional<Submission> try_submit(GenerateRequest req,
                                       SubmitError* why = nullptr);

  /// Blocking admission: waits for queue space. Throws ContractViolation
  /// on an invalid request or when the service has shut down.
  Submission submit(GenerateRequest req);

  /// Submit every request (blocking for space) and wait; results come back
  /// in input order.
  std::vector<GenerateResult> generate_all(
      const std::vector<GenerateRequest>& requests);

  /// Stop accepting requests. drain=true completes all admitted work
  /// first; drain=false retires active slots with FinishReason::kShutdown
  /// (keeping any tokens generated so far) and fails queued requests the
  /// same way. Idempotent; safe to call from multiple threads.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Pending;
  struct Slot;
  struct Impl;

  void scheduler_loop();
  /// Move queued requests into free slots; caller holds mutex_.
  void admit_locked(std::uint64_t now_ns);
  /// One generated token (or prefill + first token) for an active slot.
  void advance(Slot& slot, std::uint64_t now_ns);
  /// Fulfill a finished slot's promise and free it.
  void retire(Slot& slot, std::uint64_t now_ns);

  const nn::TinyGpt& model_;
  ServiceConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dpoaf::serve
