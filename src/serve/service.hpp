// Continuous-batching generation service (Orca-style iteration-level
// scheduling) over block-paged KV storage with prefix sharing.
//
// A GenerationService owns a fixed fleet of decode slots, one shared
// KvBlockPool, a PrefixTree of cached prompt prefixes, and one scheduler
// thread. Requests enter a bounded admission queue (per-priority FIFO
// lanes); every scheduler iteration admits queued requests into free slots
// — gated on free KV blocks, not just slot count — and advances each
// active slot by one generated token, fanning the per-slot steps across
// util::ThreadPool. Finished, expired, or aborted requests retire at the
// end of the iteration, release their blocks, and their slot is
// re-admitted immediately — new work never waits for the whole batch to
// drain.
//
// Prefix sharing (see docs/SERVING.md): completed prompt prefills are
// anchored in the prefix tree; admission walks the tree and adopts
// already-computed prefix blocks, so requests sharing a scenario preamble
// prefill only their un-cached suffix. Copy-on-write keeps shared blocks
// immutable. Admission reserves each request's worst-case block need
// (evicting cached prefixes LRU-first when short), so an admitted request
// can always run to completion — the pool can never strand a slot
// mid-decode.
//
// Determinism: a request's output depends only on the model weights, its
// own fields, and request_rng(config.seed, request.seed). Adopted prefix
// blocks hold bit-exactly the rows the request's own prefill would have
// produced, and attention walks positions in the same order at any block
// size — so token ids are bitwise-identical regardless of arrival order,
// slot count, thread count, KV block size, or cache hits. In
// deterministic mode deadlines are ignored (wall-clock expiry is the one
// scheduling input that could leak into results); wall-clock latency
// fields are always report-only.
#pragma once

#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "nn/decoder.hpp"
#include "nn/gpt.hpp"
#include "nn/kv_cache.hpp"

namespace dpoaf::serve {

/// Why a request stopped decoding.
enum class FinishReason {
  kEos,       // sampled the eos token
  kLength,    // emitted max_new_tokens
  kContext,   // hit the model's max_seq context limit (truncated)
  kDeadline,  // wall-clock deadline expired mid-decode (truncated)
  kShutdown,  // service aborted before the request completed (truncated)
  kInvalid,   // rejected by validate() without ever reaching a slot
};

[[nodiscard]] const char* to_string(FinishReason reason);

struct GenerateRequest {
  std::vector<int> prompt;  // token ids; non-empty, each in [0, vocab)
  int max_new_tokens = 72;
  float temperature = 0.7f;  // > 0 unless greedy
  int top_k = 6;             // <= 0 keeps the full distribution
  int eos_id = -1;           // -1: never stop on eos
  /// Greedy argmax decoding (temperature/top_k/seed unused).
  bool greedy = false;
  /// Per-request RNG seed; the decode stream is request_rng(service seed,
  /// this seed) — independent of every other request.
  std::uint64_t seed = 0;
  /// Wall-clock budget from admission, microseconds; 0 = none. Ignored in
  /// deterministic mode.
  std::int64_t timeout_us = 0;
  /// Higher-priority requests are admitted first; ties are FIFO.
  int priority = 0;
};

struct GenerateResult {
  std::vector<int> ids;    // generated tokens (eos never included)
  bool truncated = false;  // context, deadline, or shutdown cut it short
  FinishReason finish = FinishReason::kEos;
  // Wall-clock latency breakdown, report-only (never fed back into token
  // selection): admission→slot, admission→first decode step (recorded on
  // the iteration clock even when that step sampled eos; 0 only when no
  // decode step ran), admission→retirement.
  std::uint64_t queue_ns = 0;
  std::uint64_t ttft_ns = 0;
  std::uint64_t total_ns = 0;
};

enum class SubmitError {
  kQueueFull,  // bounded admission queue at capacity
  kShutdown,   // service no longer accepts requests
  kInvalid,    // request failed validation (see validate())
};

/// A ticket for an admitted request.
struct Submission {
  std::uint64_t id = 0;
  std::future<GenerateResult> result;
};

struct ServiceConfig {
  int slots = 8;            // concurrent decode sessions (>= 1)
  int queue_capacity = 64;  // admission queue bound, excluding active slots
  /// Reproducible mode: wall-clock deadlines are ignored so results are a
  /// pure function of (seed, request set). Latency stats stay wall-clock.
  bool deterministic = false;
  std::uint64_t seed = 0;  // mixed into every per-request RNG
  /// Tokens per KV block. Smaller blocks share prefixes at finer grain
  /// and waste less tail space; larger blocks cut per-block bookkeeping.
  /// Results are bitwise-identical at any value (>= 1).
  int kv_block_tokens = 16;
  /// Total blocks in the shared pool; 0 sizes it to fit `slots`
  /// worst-case sequences (slots * ceil(max_seq / kv_block_tokens)).
  /// Must fit at least one worst-case sequence — admission reserves every
  /// admitted request's remaining need, so smaller pools throttle
  /// concurrency instead of stranding requests.
  std::int64_t kv_blocks_total = 0;
  /// Adopt cached prompt prefixes from the prefix tree (and anchor new
  /// ones). Off = every request prefills privately; outputs are identical
  /// either way.
  bool prefix_sharing = true;
};

/// Lifetime totals (monotone; read with stats()).
struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t rejected_invalid = 0;
  std::uint64_t completed = 0;
  std::uint64_t generated_tokens = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t iterations = 0;  // scheduler iterations that advanced work
  // Paged-KV / prefix-sharing telemetry.
  std::int64_t blocks_total = 0;  // pool size (constant)
  std::int64_t blocks_free = 0;   // free blocks at sampling time
  std::uint64_t prefix_hits = 0;  // admissions that adopted a cached prefix
  std::uint64_t prefix_tokens_reused = 0;  // prompt positions not prefilled
  std::uint64_t prefill_steps = 0;  // prompt positions actually computed
  std::uint64_t cow_copies = 0;     // copy-on-write block copies
  std::uint64_t evicted_blocks = 0;  // cached-prefix blocks reclaimed
};

/// The decode RNG for a request: a pure function of the service seed and
/// the request seed, so streams never depend on admission order.
[[nodiscard]] Rng request_rng(std::uint64_t service_seed,
                              std::uint64_t request_seed);

class GenerationService {
 public:
  /// Binds to `model`, which must outlive the service and must not be
  /// mutated while the service is running.
  GenerationService(const nn::TinyGpt& model, ServiceConfig config);
  /// Drains outstanding work (shutdown(true)) before returning.
  ~GenerationService();

  GenerationService(const GenerationService&) = delete;
  GenerationService& operator=(const GenerationService&) = delete;

  /// Empty when the request is valid for this service's model.
  [[nodiscard]] std::string validate(const GenerateRequest& req) const;

  /// Non-blocking admission. On rejection returns nullopt and sets *why
  /// (when given) to the reason.
  std::optional<Submission> try_submit(GenerateRequest req,
                                       SubmitError* why = nullptr);

  /// Blocking admission: waits for queue space. An invalid request never
  /// reaches the scheduler — its future resolves immediately with
  /// FinishReason::kInvalid. Throws ContractViolation only when called
  /// after shutdown.
  Submission submit(GenerateRequest req);

  /// Submit every request (blocking for space) and wait; results come back
  /// in input order.
  std::vector<GenerateResult> generate_all(
      const std::vector<GenerateRequest>& requests);

  /// Stop accepting requests. drain=true completes all admitted work
  /// first; drain=false retires active slots with FinishReason::kShutdown
  /// (keeping any tokens generated so far) and fails queued requests the
  /// same way. Idempotent; safe to call from multiple threads.
  void shutdown(bool drain = true);

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Pending;
  struct Slot;
  struct Impl;

  void scheduler_loop();
  /// Move queued requests into free slots while their worst-case block
  /// need fits the unreserved pool; caller holds mutex_.
  void admit_locked(std::uint64_t now_ns);
  /// One generated token (or prefill + first token) for an active slot.
  void advance(Slot& slot, std::uint64_t now_ns);
  /// Anchor freshly prefilled prompts in the prefix tree (scheduler
  /// thread, between iterations).
  void register_prefixes();
  /// Fulfill a finished slot's promise and free it.
  void retire(Slot& slot, std::uint64_t now_ns);
  /// KV blocks the slot may still allocate (drives admission reservation).
  [[nodiscard]] std::int64_t remaining_need(const Slot& slot) const;
  /// Worst-case block count for a request before any prefix adoption.
  [[nodiscard]] std::int64_t worst_case_blocks(
      const GenerateRequest& req) const;

  const nn::TinyGpt& model_;
  ServiceConfig config_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dpoaf::serve
