#include "serve/service.hpp"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace dpoaf::serve {

const char* to_string(FinishReason reason) {
  switch (reason) {
    case FinishReason::kEos: return "eos";
    case FinishReason::kLength: return "length";
    case FinishReason::kContext: return "context";
    case FinishReason::kDeadline: return "deadline";
    case FinishReason::kShutdown: return "shutdown";
  }
  return "unknown";
}

Rng request_rng(std::uint64_t service_seed, std::uint64_t request_seed) {
  // Mix both seeds into one 64-bit value with two splitmix64 rounds; Rng's
  // reseed expands it to the full 256-bit state. A pure function of the two
  // seeds — never derived from admission order or a shared stream.
  std::uint64_t s = service_seed ^
                    (0x9E3779B97F4A7C15ULL *
                     (request_seed + 0x632BE59BD9B4E019ULL));
  std::uint64_t z = splitmix64(s);
  z ^= splitmix64(s);
  return Rng(z);
}

/// A request waiting in the admission queue.
struct GenerationService::Pending {
  GenerateRequest req;
  std::promise<GenerateResult> promise;
  std::uint64_t id = 0;
  std::uint64_t admit_ns = 0;
};

/// One decode slot. Slots are touched only by the scheduler thread and, via
/// parallel_for, by at most one worker per iteration; the pool's fork/join
/// orders those accesses.
struct GenerationService::Slot {
  bool active = false;
  bool finished = false;
  std::unique_ptr<nn::DecodeSession> session;
  Rng rng{0};
  GenerateRequest req;
  std::promise<GenerateResult> promise;
  std::uint64_t id = 0;
  std::uint64_t admit_ns = 0;
  std::uint64_t deadline_ns = 0;  // 0 = no deadline
  bool prefilled = false;
  int last = 0;
  std::int64_t consumed = 0;  // tokens fed to the session
  int steps_done = 0;         // decode steps taken (= generate()'s loop index)
  GenerateResult result;
};

struct GenerationService::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // wakes the scheduler
  std::condition_variable space_cv;  // wakes blocking submitters
  std::vector<Pending> queue;        // pushed in id order (FIFO within priority)
  bool draining = false;             // no new admissions
  bool abort = false;                // retire outstanding work as kShutdown
  std::uint64_t next_id = 1;
  int active_count = 0;
  std::vector<Slot> slots;
  std::thread scheduler;
  std::mutex join_mutex;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_full{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> generated_tokens{0};
  std::atomic<std::uint64_t> deadline_expired{0};
  std::atomic<std::uint64_t> iterations{0};
};

GenerationService::GenerationService(const nn::TinyGpt& model,
                                     ServiceConfig config)
    : model_(model), config_(config), impl_(std::make_unique<Impl>()) {
  DPOAF_CHECK_MSG(config_.slots >= 1, "service needs at least one slot");
  DPOAF_CHECK_MSG(config_.queue_capacity >= 0,
                  "queue_capacity must be >= 0");
  impl_->slots.resize(static_cast<std::size_t>(config_.slots));
  for (Slot& slot : impl_->slots)
    slot.session = std::make_unique<nn::DecodeSession>(model_);
  impl_->scheduler = std::thread([this] { scheduler_loop(); });
}

GenerationService::~GenerationService() { shutdown(true); }

std::string GenerationService::validate(const GenerateRequest& req) const {
  // Everything the decode loop would CHECK is rejected here instead, so the
  // scheduler thread never throws.
  const auto& cfg = model_.config();
  if (req.prompt.empty()) return "prompt is empty";
  if (static_cast<std::int64_t>(req.prompt.size()) > cfg.max_seq)
    return "prompt alone exceeds max_seq";
  for (const int t : req.prompt)
    if (t < 0 || t >= cfg.vocab_size)
      return "prompt token out of vocabulary range";
  if (req.max_new_tokens < 0) return "max_new_tokens must be >= 0";
  if (!req.greedy && !(req.temperature > 0.0f))
    return "temperature must be > 0";
  if (req.timeout_us < 0) return "timeout_us must be >= 0";
  return {};
}

std::optional<Submission> GenerationService::try_submit(GenerateRequest req,
                                                        SubmitError* why) {
  static obs::Counter& accepted_c = obs::counter("serve.requests");
  static obs::Counter& rejected_c = obs::counter("serve.rejected");
  if (!validate(req).empty()) {
    if (why != nullptr) *why = SubmitError::kInvalid;
    rejected_c.add();
    return std::nullopt;
  }
  auto& im = *impl_;
  std::promise<GenerateResult> promise;
  Submission sub;
  sub.result = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    if (im.draining) {
      im.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      if (why != nullptr) *why = SubmitError::kShutdown;
      rejected_c.add();
      return std::nullopt;
    }
    if (static_cast<int>(im.queue.size()) >= config_.queue_capacity) {
      im.rejected_full.fetch_add(1, std::memory_order_relaxed);
      if (why != nullptr) *why = SubmitError::kQueueFull;
      rejected_c.add();
      return std::nullopt;
    }
    sub.id = im.next_id++;
    im.queue.push_back(Pending{std::move(req), std::move(promise), sub.id,
                               obs::monotonic_now_ns()});
    im.accepted.fetch_add(1, std::memory_order_relaxed);
  }
  im.work_cv.notify_all();
  accepted_c.add();
  return sub;
}

Submission GenerationService::submit(GenerateRequest req) {
  const std::string err = validate(req);
  DPOAF_CHECK_MSG(err.empty(), "invalid GenerateRequest: " + err);
  DPOAF_CHECK_MSG(config_.queue_capacity > 0,
                  "blocking submit needs queue_capacity > 0");
  static obs::Counter& accepted_c = obs::counter("serve.requests");
  auto& im = *impl_;
  std::promise<GenerateResult> promise;
  Submission sub;
  sub.result = promise.get_future();
  {
    std::unique_lock<std::mutex> lock(im.mutex);
    im.space_cv.wait(lock, [&] {
      return im.draining ||
             static_cast<int>(im.queue.size()) < config_.queue_capacity;
    });
    DPOAF_CHECK_MSG(!im.draining, "submit() after shutdown");
    sub.id = im.next_id++;
    im.queue.push_back(Pending{std::move(req), std::move(promise), sub.id,
                               obs::monotonic_now_ns()});
    im.accepted.fetch_add(1, std::memory_order_relaxed);
  }
  im.work_cv.notify_all();
  accepted_c.add();
  return sub;
}

std::vector<GenerateResult> GenerationService::generate_all(
    const std::vector<GenerateRequest>& requests) {
  std::vector<Submission> subs;
  subs.reserve(requests.size());
  for (const GenerateRequest& req : requests) subs.push_back(submit(req));
  std::vector<GenerateResult> out;
  out.reserve(subs.size());
  for (Submission& sub : subs) out.push_back(sub.result.get());
  return out;
}

void GenerationService::shutdown(bool drain) {
  auto& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    im.draining = true;
    if (!drain) im.abort = true;
  }
  im.work_cv.notify_all();
  im.space_cv.notify_all();
  std::lock_guard<std::mutex> join_lock(im.join_mutex);
  if (im.scheduler.joinable()) im.scheduler.join();
}

ServiceStats GenerationService::stats() const {
  const auto& im = *impl_;
  ServiceStats s;
  s.accepted = im.accepted.load(std::memory_order_relaxed);
  s.rejected_full = im.rejected_full.load(std::memory_order_relaxed);
  s.rejected_shutdown = im.rejected_shutdown.load(std::memory_order_relaxed);
  s.completed = im.completed.load(std::memory_order_relaxed);
  s.generated_tokens = im.generated_tokens.load(std::memory_order_relaxed);
  s.deadline_expired = im.deadline_expired.load(std::memory_order_relaxed);
  s.iterations = im.iterations.load(std::memory_order_relaxed);
  return s;
}

void GenerationService::admit_locked(std::uint64_t now_ns) {
  auto& im = *impl_;
  while (!im.queue.empty() && im.active_count < config_.slots) {
    // Highest priority first; ids grow in admission order, so the lowest id
    // within a priority class is the oldest (FIFO).
    std::size_t best = 0;
    for (std::size_t i = 1; i < im.queue.size(); ++i) {
      const Pending& a = im.queue[i];
      const Pending& b = im.queue[best];
      if (a.req.priority > b.req.priority ||
          (a.req.priority == b.req.priority && a.id < b.id))
        best = i;
    }
    std::size_t si = 0;
    while (im.slots[si].active) ++si;  // lowest free slot
    Slot& slot = im.slots[si];
    Pending p = std::move(im.queue[best]);
    im.queue.erase(im.queue.begin() + static_cast<std::ptrdiff_t>(best));
    slot.active = true;
    slot.finished = false;
    slot.req = std::move(p.req);
    slot.promise = std::move(p.promise);
    slot.id = p.id;
    slot.admit_ns = p.admit_ns;
    slot.deadline_ns =
        (!config_.deterministic && slot.req.timeout_us > 0)
            ? p.admit_ns + static_cast<std::uint64_t>(slot.req.timeout_us) *
                               1000ULL
            : 0;
    slot.prefilled = false;
    slot.last = 0;
    slot.consumed = 0;
    slot.steps_done = 0;
    slot.result = GenerateResult{};
    slot.result.queue_ns = now_ns - p.admit_ns;
    slot.rng = request_rng(config_.seed, slot.req.seed);
    ++im.active_count;
  }
}

void GenerationService::advance(Slot& slot, std::uint64_t now_ns) {
  // Mirrors one TinyGpt::generate loop step exactly (same check order, same
  // sampling helpers), so a served request reproduces generate() bitwise
  // when decoded with the same RNG.
  GenerateResult& r = slot.result;
  if (slot.deadline_ns != 0 && now_ns >= slot.deadline_ns) {
    r.truncated = true;
    r.finish = FinishReason::kDeadline;
    slot.finished = true;
    return;
  }
  const auto& cfg = model_.config();
  if (!slot.prefilled) {
    slot.session->reset();
    for (std::size_t i = 0; i + 1 < slot.req.prompt.size(); ++i)
      slot.session->step(slot.req.prompt[i]);
    slot.consumed = static_cast<std::int64_t>(slot.req.prompt.size()) - 1;
    slot.last = slot.req.prompt.back();
    slot.prefilled = true;
  }
  if (slot.steps_done >= slot.req.max_new_tokens) {
    r.finish = FinishReason::kLength;
    slot.finished = true;
    return;
  }
  if (slot.consumed + 1 >= cfg.max_seq) {
    r.truncated = true;  // context exhausted before eos/max_new
    r.finish = FinishReason::kContext;
    slot.finished = true;
    return;
  }
  const std::vector<float>& logits = slot.session->step(slot.last);
  ++slot.consumed;
  ++slot.steps_done;
  const int next =
      slot.req.greedy
          ? nn::argmax_token(logits.data(), cfg.vocab_size)
          : nn::sample_token(logits.data(), cfg.vocab_size,
                             slot.req.temperature, slot.req.top_k, slot.rng);
  if (next == slot.req.eos_id) {
    r.finish = FinishReason::kEos;
    slot.finished = true;
    return;
  }
  r.ids.push_back(next);
  slot.last = next;
  if (r.ids.size() == 1) r.ttft_ns = obs::monotonic_now_ns() - slot.admit_ns;
  if (slot.steps_done >= slot.req.max_new_tokens) {
    r.finish = FinishReason::kLength;
    slot.finished = true;
  }
}

void GenerationService::retire(Slot& slot, std::uint64_t now_ns) {
  static obs::Counter& tokens_c = obs::counter("serve.generated_tokens");
  static obs::Counter& completed_c = obs::counter("serve.completed");
  static obs::Histogram& latency_h = obs::histogram("serve.latency_ns");
  static obs::Histogram& ttft_h = obs::histogram("serve.ttft_ns");
  static obs::Histogram& queue_h = obs::histogram("serve.queue_ns");
  auto& im = *impl_;
  GenerateResult r = std::move(slot.result);
  r.total_ns = now_ns - slot.admit_ns;
  im.completed.fetch_add(1, std::memory_order_relaxed);
  im.generated_tokens.fetch_add(r.ids.size(), std::memory_order_relaxed);
  if (r.finish == FinishReason::kDeadline)
    im.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  completed_c.add();
  tokens_c.add(r.ids.size());
  latency_h.record(r.total_ns);
  if (r.ttft_ns != 0) ttft_h.record(r.ttft_ns);
  queue_h.record(r.queue_ns);
  slot.active = false;
  slot.promise.set_value(std::move(r));
}

void GenerationService::scheduler_loop() {
  static obs::Gauge& queue_depth = obs::gauge("serve.queue_depth");
  static obs::Gauge& queue_depth_max = obs::gauge("serve.queue_depth.max");
  static obs::Gauge& active_gauge = obs::gauge("serve.active_slots");
  static obs::Gauge& active_max = obs::gauge("serve.active_slots.max");
  static obs::Counter& iterations_c = obs::counter("serve.iterations");
  auto& im = *impl_;
  // One "serve" span per contiguous busy period (armed only while
  // observability is on), closed whenever the service goes idle.
  std::optional<obs::Span> busy;
  for (;;) {
    bool do_abort = false;
    std::vector<Pending> failed;
    {
      std::unique_lock<std::mutex> lock(im.mutex);
      im.work_cv.wait(lock, [&] {
        return im.abort || im.draining || im.active_count > 0 ||
               !im.queue.empty();
      });
      do_abort = im.abort;
      if (do_abort) {
        failed = std::move(im.queue);
        im.queue.clear();
      } else {
        admit_locked(obs::monotonic_now_ns());
        im.space_cv.notify_all();
        queue_depth.set(static_cast<std::int64_t>(im.queue.size()));
        queue_depth_max.record_max(
            static_cast<std::int64_t>(im.queue.size()));
        active_gauge.set(im.active_count);
        active_max.record_max(im.active_count);
        if (im.active_count == 0) {
          // All slots free ⇒ admit drained the whole queue.
          busy.reset();
          if (im.draining) return;
          continue;
        }
      }
    }
    if (do_abort) {
      const std::uint64_t now = obs::monotonic_now_ns();
      for (Pending& p : failed) {
        GenerateResult r;
        r.truncated = true;
        r.finish = FinishReason::kShutdown;
        r.queue_ns = now - p.admit_ns;
        r.total_ns = r.queue_ns;
        p.promise.set_value(std::move(r));
      }
      int aborted = 0;
      for (Slot& slot : im.slots) {
        if (!slot.active) continue;
        slot.result.truncated = true;
        slot.result.finish = FinishReason::kShutdown;
        retire(slot, now);
        ++aborted;
      }
      if (aborted > 0) {
        std::lock_guard<std::mutex> lock(im.mutex);
        im.active_count -= aborted;
      }
      return;
    }

    if (!busy && obs::enabled())
      busy.emplace("serve", obs::histogram("serve.busy_ns"));
    iterations_c.add();
    im.iterations.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t iter_ns = obs::monotonic_now_ns();
    auto& slots = im.slots;
    util::parallel_for(
        0, static_cast<std::int64_t>(slots.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            Slot& slot = slots[static_cast<std::size_t>(i)];
            if (slot.active && !slot.finished) advance(slot, iter_ns);
          }
        });
    const std::uint64_t end_ns = obs::monotonic_now_ns();
    int retired = 0;
    for (Slot& slot : slots) {
      if (slot.active && slot.finished) {
        retire(slot, end_ns);
        ++retired;
      }
    }
    if (retired > 0) {
      std::lock_guard<std::mutex> lock(im.mutex);
      im.active_count -= retired;
    }
  }
}

}  // namespace dpoaf::serve
