#include "serve/service.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace dpoaf::serve {

const char* to_string(FinishReason reason) {
  switch (reason) {
    case FinishReason::kEos: return "eos";
    case FinishReason::kLength: return "length";
    case FinishReason::kContext: return "context";
    case FinishReason::kDeadline: return "deadline";
    case FinishReason::kShutdown: return "shutdown";
    case FinishReason::kInvalid: return "invalid";
  }
  return "unknown";
}

Rng request_rng(std::uint64_t service_seed, std::uint64_t request_seed) {
  // Mix both seeds into one 64-bit value with two splitmix64 rounds; Rng's
  // reseed expands it to the full 256-bit state. A pure function of the two
  // seeds — never derived from admission order or a shared stream.
  std::uint64_t s = service_seed ^
                    (0x9E3779B97F4A7C15ULL *
                     (request_seed + 0x632BE59BD9B4E019ULL));
  std::uint64_t z = splitmix64(s);
  z ^= splitmix64(s);
  return Rng(z);
}

/// A request waiting in the admission queue.
struct GenerationService::Pending {
  GenerateRequest req;
  std::promise<GenerateResult> promise;
  std::uint64_t id = 0;
  std::uint64_t admit_ns = 0;
};

/// One decode slot. Slots are touched only by the scheduler thread and, via
/// parallel_for, by at most one worker per iteration; the pool's fork/join
/// orders those accesses.
struct GenerationService::Slot {
  bool active = false;
  bool finished = false;
  std::unique_ptr<nn::DecodeSession> session;
  Rng rng{0};
  GenerateRequest req;
  std::promise<GenerateResult> promise;
  std::uint64_t id = 0;
  std::uint64_t admit_ns = 0;
  std::uint64_t deadline_ns = 0;  // 0 = no deadline
  bool prefilled = false;
  bool registered = false;     // prompt prefix anchored in the tree
  std::int64_t cached = 0;     // prompt positions adopted from the tree
  std::int64_t worst_blocks = 0;  // admission-time block reservation
  int last = 0;
  std::int64_t consumed = 0;  // tokens fed to the session
  int steps_done = 0;         // decode steps taken (= generate()'s loop index)
  GenerateResult result;
};

struct GenerationService::Impl {
  // Pool outlives the tree and every session (members destroy in reverse
  // declaration order; sessions and the tree release block references on
  // destruction).
  std::unique_ptr<nn::KvBlockPool> pool;
  std::unique_ptr<nn::PrefixTree> tree;  // scheduler-thread confined

  std::mutex mutex;
  std::condition_variable work_cv;   // wakes the scheduler
  std::condition_variable space_cv;  // wakes blocking submitters
  // Per-priority FIFO lanes (highest priority first); admission pops the
  // front of the first non-empty lane in O(log #priorities) instead of
  // scanning the whole backlog per admitted request.
  std::map<int, std::deque<Pending>, std::greater<int>> queue;
  int queue_size = 0;
  bool draining = false;  // no new admissions
  bool abort = false;     // retire outstanding work as kShutdown
  std::uint64_t next_id = 1;
  int active_count = 0;
  std::vector<Slot> slots;
  std::thread scheduler;
  std::mutex join_mutex;

  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> rejected_full{0};
  std::atomic<std::uint64_t> rejected_shutdown{0};
  std::atomic<std::uint64_t> rejected_invalid{0};
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> generated_tokens{0};
  std::atomic<std::uint64_t> deadline_expired{0};
  std::atomic<std::uint64_t> iterations{0};
  std::atomic<std::uint64_t> prefix_hits{0};
  std::atomic<std::uint64_t> prefix_tokens_reused{0};
  std::atomic<std::uint64_t> prefill_steps{0};
  std::atomic<std::uint64_t> cow_copies{0};
  std::atomic<std::uint64_t> evicted_blocks{0};
};

GenerationService::GenerationService(const nn::TinyGpt& model,
                                     ServiceConfig config)
    : model_(model), config_(config), impl_(std::make_unique<Impl>()) {
  DPOAF_CHECK_MSG(config_.slots >= 1, "service needs at least one slot");
  DPOAF_CHECK_MSG(config_.queue_capacity >= 0,
                  "queue_capacity must be >= 0");
  DPOAF_CHECK_MSG(config_.kv_block_tokens >= 1,
                  "kv_block_tokens must be >= 1");
  const auto& cfg = model_.config();
  const std::int64_t bt = config_.kv_block_tokens;
  const std::int64_t per_seq = (cfg.max_seq + bt - 1) / bt;
  std::int64_t total = config_.kv_blocks_total > 0
                           ? config_.kv_blocks_total
                           : per_seq * config_.slots;
  // The reservation floor: the pool must fit at least one worst-case
  // sequence or no admission reservation could ever succeed.
  DPOAF_CHECK_MSG(total >= per_seq,
                  "kv_blocks_total smaller than one max_seq sequence");
  impl_->pool = std::make_unique<nn::KvBlockPool>(cfg.n_layers, cfg.d_model,
                                                  bt, total);
  impl_->tree = std::make_unique<nn::PrefixTree>(impl_->pool.get());
  impl_->slots.resize(static_cast<std::size_t>(config_.slots));
  for (Slot& slot : impl_->slots)
    slot.session =
        std::make_unique<nn::DecodeSession>(model_, impl_->pool.get());
  impl_->scheduler = std::thread([this] { scheduler_loop(); });
}

GenerationService::~GenerationService() { shutdown(true); }

std::string GenerationService::validate(const GenerateRequest& req) const {
  // Everything the decode loop would CHECK is rejected here instead, so the
  // scheduler thread never throws.
  const auto& cfg = model_.config();
  if (req.prompt.empty()) return "prompt is empty";
  if (static_cast<std::int64_t>(req.prompt.size()) > cfg.max_seq)
    return "prompt alone exceeds max_seq";
  for (const int t : req.prompt)
    if (t < 0 || t >= cfg.vocab_size)
      return "prompt token out of vocabulary range";
  if (req.max_new_tokens < 0) return "max_new_tokens must be >= 0";
  if (!req.greedy && !(req.temperature > 0.0f))
    return "temperature must be > 0";
  if (req.timeout_us < 0) return "timeout_us must be >= 0";
  return {};
}

std::optional<Submission> GenerationService::try_submit(GenerateRequest req,
                                                        SubmitError* why) {
  static obs::Counter& accepted_c = obs::counter("serve.requests");
  static obs::Counter& rejected_c = obs::counter("serve.rejected");
  if (!validate(req).empty()) {
    impl_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    if (why != nullptr) *why = SubmitError::kInvalid;
    rejected_c.add();
    return std::nullopt;
  }
  auto& im = *impl_;
  std::promise<GenerateResult> promise;
  Submission sub;
  sub.result = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    if (im.draining) {
      im.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      if (why != nullptr) *why = SubmitError::kShutdown;
      rejected_c.add();
      return std::nullopt;
    }
    if (im.queue_size >= config_.queue_capacity) {
      im.rejected_full.fetch_add(1, std::memory_order_relaxed);
      if (why != nullptr) *why = SubmitError::kQueueFull;
      rejected_c.add();
      return std::nullopt;
    }
    sub.id = im.next_id++;
    im.queue[req.priority].push_back(Pending{
        std::move(req), std::move(promise), sub.id, obs::monotonic_now_ns()});
    ++im.queue_size;
    im.accepted.fetch_add(1, std::memory_order_relaxed);
  }
  im.work_cv.notify_all();
  accepted_c.add();
  return sub;
}

Submission GenerationService::submit(GenerateRequest req) {
  static obs::Counter& accepted_c = obs::counter("serve.requests");
  static obs::Counter& rejected_c = obs::counter("serve.rejected");
  const std::string err = validate(req);
  if (!err.empty()) {
    // Rejected requests never reach the scheduler: resolve the future
    // right here instead of crashing the caller (or worse, letting an
    // empty prompt reach the prefill loop).
    impl_->rejected_invalid.fetch_add(1, std::memory_order_relaxed);
    rejected_c.add();
    std::promise<GenerateResult> promise;
    Submission sub;
    sub.result = promise.get_future();
    GenerateResult r;
    r.finish = FinishReason::kInvalid;
    promise.set_value(std::move(r));
    return sub;
  }
  DPOAF_CHECK_MSG(config_.queue_capacity > 0,
                  "blocking submit needs queue_capacity > 0");
  auto& im = *impl_;
  std::promise<GenerateResult> promise;
  Submission sub;
  sub.result = promise.get_future();
  {
    std::unique_lock<std::mutex> lock(im.mutex);
    im.space_cv.wait(lock, [&] {
      return im.draining || im.queue_size < config_.queue_capacity;
    });
    DPOAF_CHECK_MSG(!im.draining, "submit() after shutdown");
    sub.id = im.next_id++;
    im.queue[req.priority].push_back(Pending{
        std::move(req), std::move(promise), sub.id, obs::monotonic_now_ns()});
    ++im.queue_size;
    im.accepted.fetch_add(1, std::memory_order_relaxed);
  }
  im.work_cv.notify_all();
  accepted_c.add();
  return sub;
}

std::vector<GenerateResult> GenerationService::generate_all(
    const std::vector<GenerateRequest>& requests) {
  std::vector<Submission> subs;
  subs.reserve(requests.size());
  for (const GenerateRequest& req : requests) subs.push_back(submit(req));
  std::vector<GenerateResult> out;
  out.reserve(subs.size());
  for (Submission& sub : subs) out.push_back(sub.result.get());
  return out;
}

void GenerationService::shutdown(bool drain) {
  auto& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mutex);
    im.draining = true;
    if (!drain) im.abort = true;
  }
  im.work_cv.notify_all();
  im.space_cv.notify_all();
  std::lock_guard<std::mutex> join_lock(im.join_mutex);
  if (im.scheduler.joinable()) im.scheduler.join();
}

ServiceStats GenerationService::stats() const {
  const auto& im = *impl_;
  ServiceStats s;
  s.accepted = im.accepted.load(std::memory_order_relaxed);
  s.rejected_full = im.rejected_full.load(std::memory_order_relaxed);
  s.rejected_shutdown = im.rejected_shutdown.load(std::memory_order_relaxed);
  s.rejected_invalid = im.rejected_invalid.load(std::memory_order_relaxed);
  s.completed = im.completed.load(std::memory_order_relaxed);
  s.generated_tokens = im.generated_tokens.load(std::memory_order_relaxed);
  s.deadline_expired = im.deadline_expired.load(std::memory_order_relaxed);
  s.iterations = im.iterations.load(std::memory_order_relaxed);
  s.blocks_total = im.pool->total_blocks();
  s.blocks_free = im.pool->free_blocks();
  s.prefix_hits = im.prefix_hits.load(std::memory_order_relaxed);
  s.prefix_tokens_reused =
      im.prefix_tokens_reused.load(std::memory_order_relaxed);
  s.prefill_steps = im.prefill_steps.load(std::memory_order_relaxed);
  s.cow_copies = im.cow_copies.load(std::memory_order_relaxed);
  s.evicted_blocks = im.evicted_blocks.load(std::memory_order_relaxed);
  return s;
}

std::int64_t GenerationService::worst_case_blocks(
    const GenerateRequest& req) const {
  const std::int64_t positions =
      std::min<std::int64_t>(static_cast<std::int64_t>(req.prompt.size()) +
                                 req.max_new_tokens,
                             model_.config().max_seq);
  return impl_->pool->blocks_for(positions);
}

std::int64_t GenerationService::remaining_need(const Slot& slot) const {
  // Blocks the slot's session may still allocate: its admission-time
  // worst case minus what its table already holds, plus one replacement
  // when the (adopted) tail is still shared and awaits copy-on-write.
  const auto held =
      static_cast<std::int64_t>(slot.session->block_table().size());
  const std::int64_t cow = slot.session->pending_cow() ? 1 : 0;
  return std::max<std::int64_t>(0, slot.worst_blocks - held + cow);
}

void GenerationService::admit_locked(std::uint64_t now_ns) {
  auto& im = *impl_;
  while (im.queue_size > 0 && im.active_count < config_.slots) {
    // Outstanding reservations for everything already admitted.
    std::int64_t reserved = 0;
    for (const Slot& s : im.slots)
      if (s.active) reserved += remaining_need(s);

    auto lane = im.queue.begin();  // highest priority, FIFO within
    Pending& head = lane->second.front();
    const auto prompt_len =
        static_cast<std::int64_t>(head.req.prompt.size());

    // Worst-case need first; a prefix match can only shrink it, so only
    // pay for the tree walk when the conservative bound doesn't fit.
    std::int64_t need = worst_case_blocks(head.req);
    nn::PrefixTree::Match match;
    bool matched = false;
    const auto affordable = [&] {
      if (im.pool->free_blocks() >= reserved + need) return true;
      im.evicted_blocks.fetch_add(
          static_cast<std::uint64_t>(
              im.tree->evict_until_free(reserved + need)),
          std::memory_order_relaxed);
      return im.pool->free_blocks() >= reserved + need;
    };
    if (config_.prefix_sharing && prompt_len > 1) {
      if (!affordable()) {
        // Retry with the adopted prefix discounted. Matched full blocks
        // are already resident, so they drop out of the reservation.
        match = im.tree->match(head.req.prompt, prompt_len - 1);
        matched = true;
        need = worst_case_blocks(head.req) -
               match.tokens / config_.kv_block_tokens;
      }
      if (!affordable()) {
        for (const std::int32_t b : match.blocks) im.pool->decref(b);
        break;  // head-of-line blocks; retirements will free space
      }
      if (!matched) match = im.tree->match(head.req.prompt, prompt_len - 1);
    } else if (!affordable()) {
      break;
    }

    std::size_t si = 0;
    while (im.slots[si].active) ++si;  // lowest free slot
    Slot& slot = im.slots[si];
    Pending p = std::move(head);
    lane->second.pop_front();
    if (lane->second.empty()) im.queue.erase(lane);
    --im.queue_size;
    slot.active = true;
    slot.finished = false;
    slot.req = std::move(p.req);
    slot.promise = std::move(p.promise);
    slot.id = p.id;
    slot.admit_ns = p.admit_ns;
    slot.deadline_ns =
        (!config_.deterministic && slot.req.timeout_us > 0)
            ? p.admit_ns + static_cast<std::uint64_t>(slot.req.timeout_us) *
                               1000ULL
            : 0;
    slot.prefilled = false;
    slot.registered = false;
    slot.cached = 0;
    slot.worst_blocks = worst_case_blocks(slot.req);
    slot.last = 0;
    slot.consumed = 0;
    slot.steps_done = 0;
    slot.result = GenerateResult{};
    slot.result.queue_ns = now_ns - p.admit_ns;
    slot.rng = request_rng(config_.seed, slot.req.seed);
    slot.session->reset();
    if (match.tokens > 0) {
      slot.session->adopt_prefix(match.blocks, match.tokens);
      slot.cached = match.tokens;
      im.prefix_hits.fetch_add(1, std::memory_order_relaxed);
      im.prefix_tokens_reused.fetch_add(
          static_cast<std::uint64_t>(match.tokens),
          std::memory_order_relaxed);
    }
    ++im.active_count;
  }
}

void GenerationService::advance(Slot& slot, std::uint64_t now_ns) {
  // Mirrors one TinyGpt::generate loop step exactly (same check order, same
  // sampling helpers), so a served request reproduces generate() bitwise
  // when decoded with the same RNG.
  GenerateResult& r = slot.result;
  if (slot.req.prompt.empty()) {
    // validate() rejects empty prompts before admission; this guard keeps
    // a future regression from dereferencing prompt.back() below.
    r.finish = FinishReason::kInvalid;
    slot.finished = true;
    return;
  }
  if (slot.deadline_ns != 0 && now_ns >= slot.deadline_ns) {
    r.truncated = true;
    r.finish = FinishReason::kDeadline;
    slot.finished = true;
    return;
  }
  const auto& cfg = model_.config();
  if (!slot.prefilled) {
    // Adopted prefix positions [0, cached) are already in the KV cache;
    // prefill only the un-cached suffix of the prompt.
    for (std::size_t i = static_cast<std::size_t>(slot.cached);
         i + 1 < slot.req.prompt.size(); ++i)
      slot.session->step(slot.req.prompt[i]);
    slot.consumed = static_cast<std::int64_t>(slot.req.prompt.size()) - 1;
    slot.last = slot.req.prompt.back();
    slot.prefilled = true;
    impl_->prefill_steps.fetch_add(
        static_cast<std::uint64_t>(slot.consumed - slot.cached),
        std::memory_order_relaxed);
  }
  if (slot.steps_done >= slot.req.max_new_tokens) {
    r.finish = FinishReason::kLength;
    slot.finished = true;
    return;
  }
  if (slot.consumed + 1 >= cfg.max_seq) {
    r.truncated = true;  // context exhausted before eos/max_new
    r.finish = FinishReason::kContext;
    slot.finished = true;
    return;
  }
  const std::vector<float>& logits = slot.session->step(slot.last);
  ++slot.consumed;
  ++slot.steps_done;
  // Time-to-first-token on the iteration clock, recorded for the first
  // decode step no matter what it samples (an eos first token previously
  // left ttft_ns at 0 and the old wall-clock read drifted from the
  // iteration the token actually landed in).
  if (slot.steps_done == 1) r.ttft_ns = now_ns - slot.admit_ns;
  const int next =
      slot.req.greedy
          ? nn::argmax_token(logits.data(), cfg.vocab_size)
          : nn::sample_token(logits.data(), cfg.vocab_size,
                             slot.req.temperature, slot.req.top_k, slot.rng);
  if (next == slot.req.eos_id) {
    r.finish = FinishReason::kEos;
    slot.finished = true;
    return;
  }
  r.ids.push_back(next);
  slot.last = next;
  if (slot.steps_done >= slot.req.max_new_tokens) {
    r.finish = FinishReason::kLength;
    slot.finished = true;
  }
}

void GenerationService::register_prefixes() {
  auto& im = *impl_;
  if (!config_.prefix_sharing) return;
  const std::int64_t bt = config_.kv_block_tokens;
  for (Slot& slot : im.slots) {
    if (!slot.active || slot.registered || !slot.prefilled) continue;
    slot.registered = true;
    // Cache-resident prompt positions: the full prompt once the first
    // decode step fed prompt.back(), one less when the slot finished
    // before that step (max_new == 0 or immediate context exhaustion).
    const std::int64_t len = std::min(
        slot.consumed, static_cast<std::int64_t>(slot.req.prompt.size()));
    if (len <= 0) continue;
    const auto& chain = slot.session->block_table();
    std::int32_t partial = -1;
    if (len % bt != 0 && !im.tree->has_anchor(slot.req.prompt.data(), len)) {
      // The tail block keeps receiving generated-token rows, so the tree
      // anchors a snapshot copy — paid for only when the pool can spare a
      // block beyond every admitted request's reservation.
      std::int64_t reserved = 0;
      for (const Slot& s : im.slots)
        if (s.active) reserved += remaining_need(s);
      if (im.pool->free_blocks() > reserved) {
        partial = im.pool->allocate();
        im.pool->copy_rows(chain[static_cast<std::size_t>(len / bt)],
                           partial, len % bt);
      }
    }
    im.tree->insert(slot.req.prompt.data(), len, chain, partial);
  }
}

void GenerationService::retire(Slot& slot, std::uint64_t now_ns) {
  static obs::Counter& tokens_c = obs::counter("serve.generated_tokens");
  static obs::Counter& completed_c = obs::counter("serve.completed");
  static obs::Histogram& latency_h = obs::histogram("serve.latency_ns");
  static obs::Histogram& ttft_h = obs::histogram("serve.ttft_ns");
  static obs::Histogram& queue_h = obs::histogram("serve.queue_ns");
  auto& im = *impl_;
  GenerateResult r = std::move(slot.result);
  r.total_ns = now_ns - slot.admit_ns;
  im.completed.fetch_add(1, std::memory_order_relaxed);
  im.generated_tokens.fetch_add(r.ids.size(), std::memory_order_relaxed);
  im.cow_copies.fetch_add(
      static_cast<std::uint64_t>(slot.session->cow_copies()),
      std::memory_order_relaxed);
  if (r.finish == FinishReason::kDeadline)
    im.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  completed_c.add();
  tokens_c.add(r.ids.size());
  latency_h.record(r.total_ns);
  if (r.ttft_ns != 0) ttft_h.record(r.ttft_ns);
  queue_h.record(r.queue_ns);
  // Release this sequence's block references immediately so the freed
  // space is visible to the very next admission pass (tree-anchored
  // prefix blocks stay resident until evicted).
  slot.session->reset();
  slot.active = false;
  slot.promise.set_value(std::move(r));
}

void GenerationService::scheduler_loop() {
  static obs::Gauge& queue_depth = obs::gauge("serve.queue_depth");
  static obs::Gauge& queue_depth_max = obs::gauge("serve.queue_depth.max");
  static obs::Gauge& active_gauge = obs::gauge("serve.active_slots");
  static obs::Gauge& active_max = obs::gauge("serve.active_slots.max");
  static obs::Gauge& blocks_total_g = obs::gauge("serve.kv_blocks_total");
  static obs::Gauge& blocks_free_g = obs::gauge("serve.kv_blocks_free");
  static obs::Counter& iterations_c = obs::counter("serve.iterations");
  static obs::Counter& prefix_hits_c = obs::counter("serve.prefix_hits");
  static obs::Counter& prefix_reused_c =
      obs::counter("serve.prefix_tokens_reused");
  static obs::Counter& prefill_steps_c = obs::counter("serve.prefill_steps");
  static obs::Counter& cow_c = obs::counter("serve.cow_copies");
  static obs::Counter& evicted_c = obs::counter("serve.evicted_blocks");
  auto& im = *impl_;
  blocks_total_g.set(im.pool->total_blocks());
  // Deltas for mirroring the atomic lifetime totals into obs counters.
  std::uint64_t seen_hits = 0, seen_reused = 0, seen_prefill = 0,
                seen_cow = 0, seen_evicted = 0;
  const auto drain_counters = [&] {
    const auto mirror = [](std::atomic<std::uint64_t>& total,
                           std::uint64_t& seen, obs::Counter& c) {
      const std::uint64_t now = total.load(std::memory_order_relaxed);
      if (now > seen) {
        c.add(now - seen);
        seen = now;
      }
    };
    mirror(im.prefix_hits, seen_hits, prefix_hits_c);
    mirror(im.prefix_tokens_reused, seen_reused, prefix_reused_c);
    mirror(im.prefill_steps, seen_prefill, prefill_steps_c);
    mirror(im.cow_copies, seen_cow, cow_c);
    mirror(im.evicted_blocks, seen_evicted, evicted_c);
  };
  // One "serve" span per contiguous busy period (armed only while
  // observability is on), closed whenever the service goes idle.
  std::optional<obs::Span> busy;
  for (;;) {
    bool do_abort = false;
    std::vector<Pending> failed;
    {
      std::unique_lock<std::mutex> lock(im.mutex);
      im.work_cv.wait(lock, [&] {
        return im.abort || im.draining || im.active_count > 0 ||
               im.queue_size > 0;
      });
      do_abort = im.abort;
      if (do_abort) {
        for (auto& lane : im.queue)
          for (Pending& p : lane.second) failed.push_back(std::move(p));
        im.queue.clear();
        im.queue_size = 0;
      } else {
        admit_locked(obs::monotonic_now_ns());
        im.space_cv.notify_all();
        queue_depth.set(im.queue_size);
        queue_depth_max.record_max(im.queue_size);
        active_gauge.set(im.active_count);
        active_max.record_max(im.active_count);
        blocks_free_g.set(im.pool->free_blocks());
        drain_counters();
        if (im.active_count == 0) {
          // All slots free ⇒ admit drained the whole queue.
          busy.reset();
          if (im.draining) return;
          continue;
        }
      }
    }
    if (do_abort) {
      const std::uint64_t now = obs::monotonic_now_ns();
      for (Pending& p : failed) {
        GenerateResult r;
        r.truncated = true;
        r.finish = FinishReason::kShutdown;
        r.queue_ns = now - p.admit_ns;
        r.total_ns = r.queue_ns;
        p.promise.set_value(std::move(r));
      }
      int aborted = 0;
      for (Slot& slot : im.slots) {
        if (!slot.active) continue;
        slot.result.truncated = true;
        slot.result.finish = FinishReason::kShutdown;
        retire(slot, now);
        ++aborted;
      }
      if (aborted > 0) {
        std::lock_guard<std::mutex> lock(im.mutex);
        im.active_count -= aborted;
      }
      return;
    }

    if (!busy && obs::enabled())
      busy.emplace("serve", obs::histogram("serve.busy_ns"));
    iterations_c.add();
    im.iterations.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t iter_ns = obs::monotonic_now_ns();
    auto& slots = im.slots;
    util::parallel_for(
        0, static_cast<std::int64_t>(slots.size()), 1,
        [&](std::int64_t lo, std::int64_t hi) {
          for (std::int64_t i = lo; i < hi; ++i) {
            Slot& slot = slots[static_cast<std::size_t>(i)];
            if (slot.active && !slot.finished) advance(slot, iter_ns);
          }
        });
    // Anchor freshly prefilled prompts before retirement can release
    // their blocks; runs on the scheduler thread, after the fork/join.
    register_prefixes();
    const std::uint64_t end_ns = obs::monotonic_now_ns();
    int retired = 0;
    for (Slot& slot : slots) {
      if (slot.active && slot.finished) {
        retire(slot, end_ns);
        ++retired;
      }
    }
    if (retired > 0) {
      std::lock_guard<std::mutex> lock(im.mutex);
      im.active_count -= retired;
    }
  }
}

}  // namespace dpoaf::serve
