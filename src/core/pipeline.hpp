// DpoAfPipeline — the paper's contribution, end to end (Figure 2):
//
//   1. pre-train the language model on the synthetic driving corpus
//      (stand-in for the generic pre-trained Llama2-7B);
//   2. query it for m responses per control task;
//   3. construct an automaton-based controller from each response
//      (GLM2FSA), implement it in the scenario's world model, and verify
//      against the 15-specification rulebook — the automated feedback;
//   4. rank responses by specifications satisfied and build (x, y_w, y_l)
//      preference pairs;
//   5. fine-tune with DPO (LoRA-restricted), checkpointing every 20 epochs;
//   6. evaluate each checkpoint by re-querying the model on training and
//      held-out validation tasks and counting satisfied specifications
//      (Figure 9).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/store.hpp"
#include "dpo/trainer.hpp"
#include "driving/domain.hpp"
#include "lm/pretrain.hpp"
#include "obs/trace.hpp"

namespace dpoaf::core {

using driving::DrivingDomain;
using nn::TinyGpt;
using nn::Tokenizer;

struct PipelineConfig {
  std::uint64_t seed = 1;

  /// Compute parallelism for the tensor ops, the reference log-prob
  /// precompute, and per-task scoring/eval. 0 ⇒ resolve from the
  /// DPOAF_THREADS environment variable, else hardware concurrency.
  /// Results are bitwise-identical at any setting (see DESIGN.md).
  int threads = 0;

  /// Tensor compute backend: "scalar", "simd", or "auto". Empty (the
  /// default) defers to the DPOAF_BACKEND environment variable, then to
  /// auto cpuid dispatch. Each backend is bitwise-reproducible across
  /// thread counts, but backends round differently from each other, so
  /// hold the backend fixed when comparing runs (docs/BACKENDS.md).
  std::string backend;

  // Model size (vocab is derived from the corpus).
  std::int64_t d_model = 48;
  std::int64_t n_heads = 4;
  std::int64_t n_layers = 2;
  std::int64_t d_ff = 192;

  // Stage 1: pre-training corpus and loop.
  int corpus_samples_per_task = 40;
  lm::VariantWeights corpus_weights;
  lm::PretrainConfig pretrain;

  // Stage 2: sampling the pre-trained model.
  int responses_per_task = 16;  // m
  lm::SamplerConfig sampler;
  /// If true, use the catalog's variant texts as the candidate pool
  /// instead of sampling the LM (deterministic; used by fast benches —
  /// the paper's unlimited automated feedback makes the candidate source
  /// interchangeable).
  bool candidates_from_catalog = false;
  /// Route candidate sampling and checkpoint evaluation through the
  /// continuous-batching generation service (src/serve) in deterministic
  /// mode: per-request seeds are drawn serially from the same task-RNG
  /// splits, so results are reproducible at any serve_slots/threads
  /// setting. The sampling stream differs from the direct decode loop, so
  /// serve on/off are two distinct (each bitwise-reproducible)
  /// experiments. See docs/SERVING.md.
  bool serve = false;
  /// Concurrent decode slots when serve is enabled.
  int serve_slots = 8;

  // ---- Streaming dataflow (docs/PIPELINE.md) -------------------------
  /// Run stages 2–4 (sampling → synthesis/verification → ranking) as a
  /// bounded-queue streaming dataflow instead of barriered phases:
  /// every candidate is scored as soon as it is decoded, and a task's
  /// preference pairs are built the moment its last candidate is scored.
  /// Sequence-numbered reassembly preserves the serial consumption order,
  /// so the RunResult is bitwise-identical to the phased pipeline at any
  /// thread count on either backend (property-tested) — this is a
  /// scheduling knob, not an experiment axis.
  bool streaming = true;
  /// Scoring-stage workers when streaming. 0 ⇒ the thread-pool size.
  int verify_workers = 0;
  /// Bounded capacity of each inter-stage queue. Fast stages block once
  /// they are this far ahead (backpressure); values < 1 are clamped to 1.
  int stage_queue_capacity = 32;

  // Stage 5: DPO.
  dpo::DpoConfig dpo;

  // Checkpoint evaluation: sample this many responses per task at the
  // given temperature and average the per-response specification counts
  // (an unalignable response counts 0; the failure *rate* is reported
  // separately in CheckpointEval). Deterministic per (seed, epoch).
  int eval_samples_per_task = 10;
  float eval_temperature = 0.7f;
  int eval_top_k = 6;
  int eval_max_new_tokens = 72;

  // ---- Procedural scenario generation (docs/GENERATOR.md) ------------
  /// Number of procedurally generated scenarios appended to the paper's
  /// five (0 disables generation; the default domain is unchanged). Each
  /// generated scenario contributes one control task to the catalog.
  int generated_scenarios = 0;
  /// Of the generated scenarios, hold out the *last* M entirely: their
  /// tasks are excluded from the pre-training corpus, candidate
  /// collection, and checkpoint evaluation, then scored by the held-out
  /// generalization eval after DPO (RunResult::generalization).
  int holdout_scenarios = 0;
  /// Seed of the generator's private stream — independent of `seed`, so
  /// the scenario set can stay fixed while training randomness varies.
  std::uint64_t generator_seed = 7;

  /// Memoize formal feedback per (scenario, canonicalized response text).
  /// Feedback is deterministic, so caching cannot change any metric (the
  /// property tests assert bitwise-identical runs either way); off means
  /// every response is re-parsed and re-verified from scratch.
  bool feedback_cache = true;

  /// Turn on the process-wide observability layer (metric counters, trace
  /// spans, RunResult::phases). Only ever *enables* — a pipeline built with
  /// the default never switches globally-enabled observability off, so
  /// benches that call obs::set_enabled(true) themselves keep recording.
  /// Observability never feeds back into any computed number: the property
  /// tests assert RunResult is bitwise-identical with it on or off.
  bool observability = false;

  // ---- Durable checkpointing (docs/CHECKPOINT_FORMAT.md) -------------
  /// When non-empty, write a resumable snapshot into this directory at
  /// every `checkpoint_every_epochs` epoch boundary of pre-training and
  /// DPO (atomic temp-file-then-rename; file names
  /// ckpt-<stage>-epoch-NNNNNN.dpoaf). Empty disables durable snapshots
  /// unless a sink is injected via set_checkpoint_sink().
  std::string checkpoint_dir;
  /// Epochs between durable snapshots (per stage; the final epoch of a
  /// stage is always snapshotted too). 0 disables snapshots even when a
  /// sink is configured.
  int checkpoint_every_epochs = 20;
  /// Keep only the newest K snapshot files per stage (0 keeps all).
  int checkpoint_retain_last = 3;
  /// Path to a .dpoaf file — or a checkpoint directory, resolved to its
  /// newest snapshot — to resume from. The checkpoint's seed, model
  /// architecture, LoRA layout, and vocabulary must match this config;
  /// run() then continues the interrupted stage and produces a RunResult
  /// bitwise-identical to the uninterrupted run (property-tested).
  std::string resume_from;
};

/// Per-checkpoint formal-verification evaluation (Figure 9's y-axis).
struct CheckpointEval {
  int epoch = 0;
  double train_mean_satisfied = 0.0;  // mean over training tasks, of 15
  double val_mean_satisfied = 0.0;    // mean over validation tasks, of 15
  // Fraction of sampled responses whose feedback score was −1 (GLM2FSA
  // alignment failed). The means above count such responses as 0 satisfied
  // specs; these rates keep "unalignable" distinguishable from "aligned
  // but satisfied nothing" — the §4.1 property-1 signal.
  double train_alignment_failure_rate = 0.0;
  double val_alignment_failure_rate = 0.0;
  // Responses cut short by the model's max_seq context limit (still
  // scored; surfaced so truncation is never silent).
  int truncated_responses = 0;
  std::vector<std::pair<std::string, double>> per_task;
  // Parallel to per_task: alignment-failure fraction per task.
  std::vector<double> per_task_alignment_failure;
};

struct TaskCandidates {
  std::string task_id;
  std::vector<dpo::Candidate> candidates;  // text + verification score
  int truncated = 0;  // sampled candidates that hit the context limit
};

/// Train-vs-held-out comparison on the *final* policy (docs/GENERATOR.md):
/// the checkpoint-eval sampler run once more after DPO, but split by the
/// holdout flag and normalized per scenario rulebook size (generated
/// rulebooks differ in length, so raw satisfied counts are incomparable
/// across scenarios). Deterministic per pipeline seed.
struct GeneralizationEval {
  int train_tasks = 0;    // tasks the model trained on (incl. paper tasks)
  int holdout_tasks = 0;  // tasks of held-out generated scenarios
  // Mean over tasks of (satisfied specs / rulebook size), unalignable
  // responses counting 0.
  double train_mean_satisfied_fraction = 0.0;
  double holdout_mean_satisfied_fraction = 0.0;
  // Fraction of sampled responses GLM2FSA could not align.
  double train_alignment_failure_rate = 0.0;
  double holdout_alignment_failure_rate = 0.0;
  // Fraction of sampled responses that aligned but violated ≥ 1 spec.
  double train_violation_rate = 0.0;
  double holdout_violation_rate = 0.0;
  // (task id, mean satisfied fraction) for every held-out task.
  std::vector<std::pair<std::string, double>> per_holdout_task;
};

struct RunResult {
  std::vector<dpo::EpochMetrics> metrics;     // Figure 8 series
  std::vector<CheckpointEval> checkpoints;    // Figure 9 series
  std::size_t pair_count = 0;
  /// Memoization counters at the end of the run: the domain's
  /// (scenario, response) feedback cache and the process-wide LTL→Büchi
  /// translation cache (the latter is cumulative across pipelines).
  util::CacheStats feedback_cache_stats;
  util::CacheStats buchi_cache_stats;
  /// Process-wide LTLf→DFA monitor cache (src/monitor), cumulative like
  /// the Büchi cache; populated by the empirical-evaluation phase.
  util::CacheStats monitor_cache_stats;
  /// Per-phase wall-time aggregates over the trace recorded so far
  /// (generation / synthesis / verification / ranking / dpo, plus internal
  /// sub-spans). Empty unless observability was enabled. Wall times are
  /// report-only — nothing downstream computes on them.
  std::vector<obs::PhaseStat> phases;
  /// Procedural-generation tally (all zeros when generation was off),
  /// including the satisfiability pre-pass discard counts.
  driving::generator::GeneratorStats generator_stats;
  /// Held-out generalization eval; meaningful only when has_generalization
  /// (i.e. the domain contains held-out generated scenarios).
  bool has_generalization = false;
  GeneralizationEval generalization;
};

class DpoAfPipeline {
 public:
  explicit DpoAfPipeline(PipelineConfig config);

  [[nodiscard]] const DrivingDomain& domain() const { return domain_; }
  [[nodiscard]] const Tokenizer& tokenizer() const { return tokenizer_; }
  [[nodiscard]] const PipelineConfig& config() const { return config_; }

  /// Stage 1. Returns per-epoch pre-training losses.
  lm::PretrainStats pretrain_model();
  [[nodiscard]] const TinyGpt& model() const { return model_; }

  /// Stages 2–3: sample m responses per training task and score each via
  /// formal verification.
  [[nodiscard]] std::vector<TaskCandidates> collect_candidates();

  /// Stage 4: all strictly-ordered preference pairs.
  [[nodiscard]] std::vector<dpo::PreferencePair> build_pairs(
      const std::vector<TaskCandidates>& candidates) const;

  /// Stages 5–6: DPO fine-tuning with formal-verification checkpoint
  /// evaluation. Leaves the fine-tuned policy accessible via model().
  RunResult run_dpo(const std::vector<dpo::PreferencePair>& pairs);

  /// Convenience: run all stages and return the result. When
  /// config.resume_from is set, the run restarts from that snapshot
  /// instead: a pretrain-stage checkpoint re-enters the pre-training loop
  /// (then runs stages 2–6 normally); a dpo-stage checkpoint restores the
  /// stored preference dataset and re-enters DPO directly.
  RunResult run();

  /// Replace the snapshot destination (tests inject ckpt::MemorySink; a
  /// non-empty config.checkpoint_dir installs a ckpt::CheckpointStore at
  /// construction). Pass nullptr to disable snapshots.
  void set_checkpoint_sink(std::shared_ptr<ckpt::CheckpointSink> sink) {
    sink_ = std::move(sink);
  }
  [[nodiscard]] ckpt::CheckpointSink* checkpoint_sink() const {
    return sink_.get();
  }

  /// Verification score of one response for a task (−1 ⇒ unalignable).
  [[nodiscard]] int score_response(const driving::Task& task,
                                   const std::string& response_text) const;

  /// Greedy-decode every non-held-out task and verify (one Figure-9 data
  /// point; held-out tasks are reserved for evaluate_generalization).
  [[nodiscard]] CheckpointEval evaluate_model(const TinyGpt& model,
                                              int epoch) const;

  /// Sample the *current* policy on every task — held-out ones included —
  /// and split the per-rulebook-normalized metrics by the holdout flag.
  /// Run automatically at the end of run_dpo when the domain has held-out
  /// scenarios; exposed for tests.
  [[nodiscard]] GeneralizationEval evaluate_generalization() const;

 private:
  /// One scored candidate leaving the streaming dataflow's verifier stage,
  /// released to the consumer in sequence (task-major, sample-minor) order.
  struct ScoredItem {
    std::size_t task_index = 0;
    dpo::Candidate candidate;
    bool truncated = false;
  };
  /// Where the sampler stage gets candidate texts from.
  enum class SampleSource { kCatalog, kDirect, kServe };
  /// Candidates plus (optionally) the pairs built as tasks completed.
  struct StreamedCollection {
    std::vector<TaskCandidates> candidates;
    std::vector<dpo::PreferencePair> pairs;
  };

  /// The streaming engine behind stages 2–3 and checkpoint eval: generate
  /// `counts[u]` responses for each task, score each response as soon as
  /// it is available, and invoke `consume` on the calling thread in serial
  /// submission order (see docs/PIPELINE.md for the stage graph, queue
  /// bounds, and the determinism contract).
  void stream_scored_responses(
      const std::vector<const driving::Task*>& tasks,
      const std::vector<int>& counts, const TinyGpt& model,
      const lm::SamplerConfig& sampler, SampleSource source,
      std::vector<Rng>& task_rngs,
      const std::function<void(ScoredItem&&)>& consume) const;
  /// Stages 2–4 as one dataflow; pair building is skipped (and the
  /// "ranking" spans with it) when `with_pairs` is false.
  StreamedCollection stream_collect(bool with_pairs);

  /// Shared trailer of every snapshot: stage-independent identity fields
  /// (seed, model config, LoRA layout, vocabulary).
  [[nodiscard]] ckpt::TrainingCheckpoint base_checkpoint() const;
  /// Throws ckpt::CheckpointError unless the snapshot is resumable under
  /// this exact configuration (seed/architecture/LoRA/vocabulary match).
  void validate_checkpoint(const ckpt::TrainingCheckpoint& ckpt) const;
  /// pretrain_model() with snapshot hooks and optional restored state.
  lm::PretrainStats pretrain_model_impl(const lm::PretrainState* resume);
  /// run_dpo() with snapshot hooks and optional restored state.
  RunResult run_dpo_impl(const std::vector<dpo::PreferencePair>& pairs,
                         const ckpt::TrainingCheckpoint* resume);

  PipelineConfig config_;
  DrivingDomain domain_;
  Tokenizer tokenizer_;
  Rng rng_;
  TinyGpt model_;
  bool pretrained_ = false;
  std::shared_ptr<ckpt::CheckpointSink> sink_;
};

}  // namespace dpoaf::core
