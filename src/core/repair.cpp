#include "core/repair.hpp"

#include <algorithm>
#include <optional>

#include "automata/product.hpp"
#include "logic/ltlf.hpp"
#include "util/check.hpp"

namespace dpoaf::core {

namespace {

using automata::FsaController;
using automata::Guard;
using automata::Kripke;
using logic::Ltl;
using logic::LtlOp;
using logic::Symbol;
using logic::Vocabulary;

// □ψ with propositional ψ (no temporal operators inside)?
bool is_propositional(const Ltl& f) {
  switch (f->op) {
    case LtlOp::True:
    case LtlOp::False:
    case LtlOp::Prop:
      return true;
    case LtlOp::Not:
    case LtlOp::And:
    case LtlOp::Or:
    case LtlOp::Implies:
      return (!f->lhs || is_propositional(f->lhs)) &&
             (!f->rhs || is_propositional(f->rhs));
    default:
      return false;
  }
}

std::optional<Ltl> safety_body(const Ltl& spec) {
  if (spec->op == LtlOp::Always && is_propositional(spec->lhs))
    return spec->lhs;
  return std::nullopt;
}

// Evaluate a propositional formula on one symbol.
bool holds_on(const Ltl& body, Symbol label) {
  return logic::evaluate_ltlf(body, logic::Trace{label});
}

// One repair step: find a lasso state whose label falsifies `body`,
// locate the controller transition that produced it, and strengthen that
// transition's guard with an environment literal whose flip restores ψ.
// Returns true if a patch was applied.
bool apply_patch(const driving::DrivingDomain& domain,
                 const driving::Scenario& scenario, FsaController& controller,
                 const Ltl& body,
                 const modelcheck::CheckResult& result) {
  const auto& model = scenario.model;
  const Kripke product =
      automata::make_product(model, controller, domain.product_options());

  auto try_state = [&](int kripke_state) -> bool {
    const Symbol label = product.labels[static_cast<std::size_t>(kripke_state)];
    if (holds_on(body, label)) return false;
    const auto origin = product.origin[static_cast<std::size_t>(kripke_state)];
    if (origin.action == 0) return false;  // waiting step: nothing to guard

    // Find the explicit transition that fired: from ctrl_state, guard
    // matching the model label, emitting this action.
    const Symbol sigma = model.label(origin.model_state);
    // Candidate env literal: flipping it in the label restores ψ.
    for (int bit : domain.vocab().prop_indices()) {
      const Symbol mask = Vocabulary::bit(bit);
      if (!holds_on(body, label ^ mask)) continue;
      const bool currently_true = (label & mask) != 0;

      // Strengthen the matching transition(s).
      bool patched = false;
      for (std::size_t i = 0; i < controller.transitions().size(); ++i) {
        const auto& t = controller.transitions()[i];
        if (t.from != origin.ctrl_state || t.action != origin.action ||
            !t.guard.matches(sigma))
          continue;
        Guard g = t.guard;
        if (currently_true)
          g.must_false |= mask;  // require the proposition absent
        else
          g.must_true |= mask;  // require it present
        if ((g.must_true & g.must_false) != 0) continue;  // contradiction
        if (g.must_true == t.guard.must_true &&
            g.must_false == t.guard.must_false)
          continue;  // no change
        // Rebuild the controller with the strengthened guard.
        FsaController repaired(controller.default_action());
        for (std::size_t q = 0; q < controller.state_count(); ++q)
          repaired.add_state(controller.name(static_cast<int>(q)));
        repaired.set_initial(controller.initial());
        for (std::size_t j = 0; j < controller.transitions().size(); ++j) {
          const auto& tj = controller.transitions()[j];
          repaired.add_transition(tj.from, j == i ? g : tj.guard, tj.action,
                                  tj.to);
        }
        controller = std::move(repaired);
        patched = true;
        break;
      }
      if (patched) return true;
    }
    return false;
  };

  for (int s : result.counterexample.cycle)
    if (try_state(s)) return true;
  for (int s : result.counterexample.prefix)
    if (try_state(s)) return true;
  return false;
}

}  // namespace

RepairResult repair_controller(const driving::DrivingDomain& domain,
                               std::string_view scenario_key,
                               automata::FsaController controller,
                               const RepairOptions& options) {
  RepairResult result;
  const driving::Scenario& scenario = domain.scenario(scenario_key);
  auto verify = [&](const FsaController& c) {
    const Kripke product =
        automata::make_product(scenario.model, c, domain.product_options());
    return modelcheck::verify_all(product, scenario.specs, scenario.fairness);
  };

  auto report = verify(controller);
  result.score_before = static_cast<int>(report.satisfied());

  // Greedy with rollback: a guard strengthening that fixes one safety
  // specification can starve a liveness one (the controller waits for a
  // stronger condition). Patches that do not improve the total count are
  // reverted and their spec blacklisted for the rest of the run.
  std::vector<std::string> blacklist;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    bool patched = false;
    for (const auto& outcome : report.outcomes) {
      if (outcome.result.holds) continue;
      if (std::find(blacklist.begin(), blacklist.end(), outcome.spec.name) !=
          blacklist.end())
        continue;
      const auto body = safety_body(outcome.spec.formula);
      if (!body) continue;  // liveness: not repairable by guard injection
      const FsaController snapshot = controller;
      if (!apply_patch(domain, scenario, controller, *body,
                       outcome.result))
        continue;
      const auto new_report = verify(controller);
      if (new_report.satisfied() <= report.satisfied()) {
        controller = snapshot;  // net loss or no gain: revert
        blacklist.push_back(outcome.spec.name);
        continue;
      }
      result.patched_specs.push_back(outcome.spec.name);
      report = new_report;
      patched = true;
      break;
    }
    if (!patched) break;
    ++result.iterations;
  }

  result.score_after = static_cast<int>(report.satisfied());
  result.controller = std::move(controller);
  return result;
}

}  // namespace dpoaf::core
