// Bounded MPMC channel — the edge type of the streaming pipeline
// (docs/PIPELINE.md).
//
// Semantics:
//  - push() blocks while the channel is full (backpressure: a fast
//    producer is throttled to the consumer's pace plus `capacity` items)
//    and returns false — dropping the item — once the channel is closed
//    or failed, so producers upstream of a dead stage unwind promptly.
//  - pop() blocks while the channel is open and empty; after close() it
//    keeps returning buffered items until the queue is drained, then
//    returns nullopt. After fail() it returns nullopt immediately —
//    buffered items are intentionally abandoned, the run is aborting.
//  - close() and fail() are idempotent and wake every blocked thread.
//
// Instrumentation (obs gauges — high-water marks and wait tallies are
// scheduling-dependent, so none of them may be a Counter, which the
// run-report schema documents as deterministic):
//    dataflow.<name>.depth.max           high-water queue depth
//    dataflow.<name>.backpressure_waits  pushes that blocked on a full queue
// plus a plain ChannelStats snapshot for tests.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace dpoaf::core::dataflow {

struct ChannelStats {
  std::uint64_t pushes = 0;
  std::uint64_t pops = 0;
  std::uint64_t backpressure_waits = 0;  // pushes that found the queue full
  std::size_t max_depth = 0;
  bool closed = false;
  bool failed = false;
};

template <typename T>
class Channel {
 public:
  /// `name` keys the obs gauges (dataflow.<name>.*); capacity < 1 is
  /// clamped to 1 so push/pop always make progress.
  explicit Channel(std::size_t capacity, std::string name = "channel")
      : capacity_(capacity < 1 ? 1 : capacity), name_(std::move(name)) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  ~Channel() { publish_gauges(); }

  /// Blocks while full; true if the item was enqueued, false if the
  /// channel was closed/failed first (the item is dropped).
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!open_ && queue_.size() >= capacity_) return false;
    if (open_ && queue_.size() >= capacity_) {
      ++stats_.backpressure_waits;
      not_full_.wait(lock,
                     [this] { return !open_ || queue_.size() < capacity_; });
    }
    if (!open_) return false;
    queue_.push_back(std::move(value));
    ++stats_.pushes;
    if (queue_.size() > stats_.max_depth) stats_.max_depth = queue_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while open and empty; nullopt once closed-and-drained or
  /// failed.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return !open_ || !queue_.empty(); });
    if (stats_.failed || queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.pops;
    lock.unlock();
    not_full_.notify_one();
    return value;
  }

  /// No more pushes; poppers drain what is buffered, then see nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stats_.closed) return;
      open_ = false;
      stats_.closed = true;
    }
    wake_all();
    publish_gauges();
  }

  /// Abort: closes AND abandons buffered items — every blocked push and
  /// pop returns immediately (false / nullopt). Used by the stage
  /// framework to unwind all stages after a worker threw.
  void fail() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stats_.failed) return;
      open_ = false;
      stats_.closed = true;
      stats_.failed = true;
    }
    wake_all();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
  }

  [[nodiscard]] ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

 private:
  void wake_all() {
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  void publish_gauges() const {
    if (!obs::enabled()) return;
    ChannelStats s = stats();
    obs::gauge("dataflow." + name_ + ".depth.max")
        .record_max(static_cast<std::int64_t>(s.max_depth));
    obs::gauge("dataflow." + name_ + ".backpressure_waits")
        .record_max(static_cast<std::int64_t>(s.backpressure_waits));
  }

  const std::size_t capacity_;
  const std::string name_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> queue_;
  ChannelStats stats_;
  bool open_ = true;
};

}  // namespace dpoaf::core::dataflow
