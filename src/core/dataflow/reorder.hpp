// Sequence-numbered reassembly — the streaming pipeline's determinism
// hinge (docs/PIPELINE.md).
//
// Producers stamp every item with the sequence number it was *submitted*
// under (assigned serially before the fan-out, exactly like the serial
// per-candidate RNG splits) and push completions in any order; pop()
// releases items strictly in sequence order, blocking until the next
// expected number arrives. The consumer therefore observes the same order
// a serial run would have produced, regardless of which stage worker
// finished first — this is what makes the streaming pipeline's output
// bitwise-identical to the phased one.
//
// close() marks the producer side done: pop() keeps releasing the
// in-order prefix, then returns nullopt. fail() aborts — pending items
// are abandoned and pop() returns nullopt immediately. A gap below a
// buffered item at close() (a sequence number that will never arrive)
// also ends the stream rather than deadlocking.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>

#include "obs/metrics.hpp"

namespace dpoaf::core::dataflow {

template <typename T>
class Reorder {
 public:
  explicit Reorder(std::string name = "reorder", std::uint64_t first_seq = 0)
      : name_(std::move(name)), next_(first_seq) {}

  Reorder(const Reorder&) = delete;
  Reorder& operator=(const Reorder&) = delete;

  ~Reorder() { publish_gauges(); }

  /// Buffer a completed item. Sequence numbers must be unique; pushing a
  /// number below the consumption cursor is a contract violation and is
  /// dropped. Returns false once failed (item dropped).
  bool push(std::uint64_t seq, T value) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (failed_) return false;
    if (seq < next_) return false;  // already consumed past this number
    pending_.emplace(seq, std::move(value));
    if (pending_.size() > max_pending_) max_pending_ = pending_.size();
    const bool ready = pending_.begin()->first == next_;
    lock.unlock();
    if (ready) ready_.notify_all();
    return true;
  }

  /// Next item in sequence order; blocks until it arrives. nullopt when
  /// the stream is done: failed, or closed with no (reachable) next item.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] {
      return failed_ || closed_ ||
             (!pending_.empty() && pending_.begin()->first == next_);
    });
    if (failed_) return std::nullopt;
    if (!pending_.empty() && pending_.begin()->first == next_) {
      T value = std::move(pending_.begin()->second);
      pending_.erase(pending_.begin());
      ++next_;
      return value;
    }
    if (closed_) {
      // Closed with a gap at the cursor: whatever is still buffered can
      // never be released in order — the stream ends here.
      return std::nullopt;
    }
    return std::nullopt;  // unreachable; predicate covers all cases
  }

  /// Producer side done — pop() drains the in-order prefix then ends.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    publish_gauges();
  }

  /// Abort: abandon pending items, wake the consumer with nullopt.
  void fail() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      failed_ = true;
      closed_ = true;
    }
    ready_.notify_all();
  }

  /// Items buffered out of order right now.
  [[nodiscard]] std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pending_.size();
  }

  /// High-water mark of the out-of-order buffer.
  [[nodiscard]] std::size_t max_pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return max_pending_;
  }

 private:
  void publish_gauges() const {
    if (!obs::enabled()) return;
    obs::gauge("dataflow." + name_ + ".pending.max")
        .record_max(static_cast<std::int64_t>(max_pending()));
  }

  const std::string name_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<std::uint64_t, T> pending_;
  std::uint64_t next_ = 0;
  std::size_t max_pending_ = 0;
  bool closed_ = false;
  bool failed_ = false;
};

}  // namespace dpoaf::core::dataflow
