// Stage workers for the streaming pipeline (docs/PIPELINE.md).
//
// A StageSet owns the worker threads of a dataflow graph. Workers are
// dedicated std::threads, NOT jobs on util::ThreadPool — a pool job that
// blocked on an empty/full channel would starve the very parallel_for
// chunks (tensor ops, scoring fan-outs) its upstream stage needs to make
// progress, which is a deadlock. Stage *compute* still draws on the
// shared pool: worker counts are derived from util::global_threads(),
// and per-item work either fans out through parallel_for or pins itself
// serial with util::InlineComputeGuard so the stage's worker count is
// the unit of parallelism (same contract as phased parallel_for chunks).
//
// Error model ("clean shutdown/drain on error"): the first exception a
// worker throws is captured; the set's on_error hook fires once (the
// graph's channels get fail()-ed there, unblocking every other stage so
// its workers can unwind), and join() rethrows the captured exception on
// the owning thread. on_stage_done fires exactly once when the last
// worker of a spawn() group returns without error — the canonical place
// to close() the stage's output channel.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace dpoaf::core::dataflow {

class StageSet {
 public:
  /// `on_error` runs at most once, from the first failing worker's thread;
  /// it must unblock every channel in the graph (fail() them all).
  explicit StageSet(std::function<void()> on_error = {})
      : on_error_(std::move(on_error)) {}

  StageSet(const StageSet&) = delete;
  StageSet& operator=(const StageSet&) = delete;

  ~StageSet() {
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
  }

  /// Launch `workers` threads running `body(worker_index)`. When the last
  /// of them returns without having thrown, `on_stage_done` fires (from
  /// that worker's thread) — close the stage's downstream edge there. On
  /// error the done hook is skipped; the set-level on_error has already
  /// failed the graph.
  void spawn(std::string name, int workers, std::function<void(int)> body,
             std::function<void()> on_stage_done = {}) {
    if (workers < 1) workers = 1;
    if (obs::enabled())
      obs::gauge("dataflow.stage." + name + ".workers").record_max(workers);
    auto group = std::make_shared<Group>();
    group->remaining = workers;
    group->on_done = std::move(on_stage_done);
    auto shared_body = std::make_shared<std::function<void(int)>>(std::move(body));
    for (int i = 0; i < workers; ++i) {
      threads_.emplace_back([this, group, shared_body, i] {
        try {
          (*shared_body)(i);
        } catch (...) {
          record_error(std::current_exception());
        }
        bool last = false;
        {
          std::lock_guard<std::mutex> lock(group->mutex);
          last = --group->remaining == 0;
        }
        if (last && group->on_done && !has_error()) group->on_done();
      });
    }
  }

  /// Wait for every worker of every stage, then rethrow the first error.
  void join() {
    for (std::thread& t : threads_)
      if (t.joinable()) t.join();
    threads_.clear();
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      err = first_error_;
    }
    if (err) std::rethrow_exception(err);
  }

  [[nodiscard]] bool has_error() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_error_ != nullptr;
  }

 private:
  struct Group {
    std::mutex mutex;
    int remaining = 0;
    std::function<void()> on_done;
  };

  void record_error(std::exception_ptr err) {
    bool fire = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) {
        first_error_ = std::move(err);
        fire = true;
      }
    }
    if (fire && on_error_) on_error_();
  }

  std::function<void()> on_error_;
  std::vector<std::thread> threads_;
  mutable std::mutex mutex_;
  std::exception_ptr first_error_ = nullptr;
};

}  // namespace dpoaf::core::dataflow
