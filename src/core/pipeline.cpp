#include "core/pipeline.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/dataflow/channel.hpp"
#include "core/dataflow/reorder.hpp"
#include "core/dataflow/stage.hpp"
#include "modelcheck/buchi.hpp"
#include "monitor/monitor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/service.hpp"
#include "tensor/backend/backend.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace dpoaf::core {

namespace {

// CheckpointEval and ckpt::EvalRecord are field-for-field mirrors (ckpt
// sits below core in the dependency order); convert at the boundary.
ckpt::EvalRecord to_record(const CheckpointEval& e) {
  ckpt::EvalRecord r;
  r.epoch = e.epoch;
  r.train_mean_satisfied = e.train_mean_satisfied;
  r.val_mean_satisfied = e.val_mean_satisfied;
  r.train_alignment_failure_rate = e.train_alignment_failure_rate;
  r.val_alignment_failure_rate = e.val_alignment_failure_rate;
  r.truncated_responses = e.truncated_responses;
  r.per_task = e.per_task;
  r.per_task_alignment_failure = e.per_task_alignment_failure;
  return r;
}

CheckpointEval from_record(const ckpt::EvalRecord& r) {
  CheckpointEval e;
  e.epoch = r.epoch;
  e.train_mean_satisfied = r.train_mean_satisfied;
  e.val_mean_satisfied = r.val_mean_satisfied;
  e.train_alignment_failure_rate = r.train_alignment_failure_rate;
  e.val_alignment_failure_rate = r.val_alignment_failure_rate;
  e.truncated_responses = r.truncated_responses;
  e.per_task = r.per_task;
  e.per_task_alignment_failure = r.per_task_alignment_failure;
  return e;
}

driving::generator::GeneratorConfig make_generator_config(
    const PipelineConfig& config) {
  driving::generator::GeneratorConfig gen;
  gen.seed = config.generator_seed;
  gen.count = config.generated_scenarios;
  gen.holdout = config.holdout_scenarios;
  return gen;
}

serve::ServiceConfig make_serve_config(const PipelineConfig& config) {
  serve::ServiceConfig scfg;
  scfg.slots = config.serve_slots;
  scfg.queue_capacity = std::max(64, config.serve_slots * 4);
  scfg.deterministic = true;  // results must not depend on wall-clock
  scfg.seed = config.seed;
  return scfg;
}

}  // namespace

DpoAfPipeline::DpoAfPipeline(PipelineConfig config)
    : config_(config),
      domain_(make_generator_config(config_)),
      tokenizer_(lm::build_tokenizer(domain_.tasks())),
      rng_(config.seed) {
  util::set_global_threads(config_.threads);
  tensor::backend::select(config_.backend);
  domain_.set_feedback_cache(config_.feedback_cache);
  // Enable-only: never turn off observability some other component (a
  // bench harness, the example binary) switched on for the process.
  if (config_.observability) obs::set_enabled(true);
  nn::GptConfig gpt_cfg;
  gpt_cfg.vocab_size = static_cast<std::int64_t>(tokenizer_.vocab_size());
  gpt_cfg.d_model = config_.d_model;
  gpt_cfg.n_heads = config_.n_heads;
  gpt_cfg.n_layers = config_.n_layers;
  gpt_cfg.d_ff = config_.d_ff;
  // Size the context to the longest catalog sequence plus slack for
  // sampled responses.
  std::int64_t longest = 0;
  for (const auto& task : domain_.tasks())
    for (const auto& variant : task.variants)
      longest = std::max(
          longest, static_cast<std::int64_t>(
                       lm::encode_example(tokenizer_, task.prompt,
                                          variant.text)
                           .size()));
  gpt_cfg.max_seq = longest + 16;
  model_ = TinyGpt(gpt_cfg, rng_);
  if (!config_.checkpoint_dir.empty())
    sink_ = std::make_shared<ckpt::CheckpointStore>(
        config_.checkpoint_dir, config_.checkpoint_retain_last);
}

ckpt::TrainingCheckpoint DpoAfPipeline::base_checkpoint() const {
  ckpt::TrainingCheckpoint c;
  c.pipeline_seed = config_.seed;
  c.model_config = model_.config();
  c.lora_rank = config_.dpo.lora_rank;
  c.lora_alpha = config_.dpo.lora_alpha;
  c.vocab.reserve(tokenizer_.vocab_size());
  for (std::size_t i = 0; i < tokenizer_.vocab_size(); ++i)
    c.vocab.push_back(tokenizer_.word_of(static_cast<int>(i)));
  return c;
}

void DpoAfPipeline::validate_checkpoint(
    const ckpt::TrainingCheckpoint& snap) const {
  if (snap.pipeline_seed != config_.seed)
    throw ckpt::CheckpointError(
        "checkpoint was produced with seed " +
        std::to_string(snap.pipeline_seed) +
        " but this pipeline is configured with seed " +
        std::to_string(config_.seed));
  const nn::GptConfig& want = model_.config();
  const nn::GptConfig& got = snap.model_config;
  if (got.vocab_size != want.vocab_size || got.d_model != want.d_model ||
      got.n_heads != want.n_heads || got.n_layers != want.n_layers ||
      got.d_ff != want.d_ff || got.max_seq != want.max_seq)
    throw ckpt::CheckpointError(
        "checkpoint model architecture does not match this pipeline's "
        "configuration");
  if (snap.lora_rank != config_.dpo.lora_rank ||
      snap.lora_alpha != config_.dpo.lora_alpha)
    throw ckpt::CheckpointError(
        "checkpoint LoRA layout (rank " + std::to_string(snap.lora_rank) +
        ") does not match this pipeline's configuration (rank " +
        std::to_string(config_.dpo.lora_rank) + ")");
  if (snap.vocab.size() != tokenizer_.vocab_size())
    throw ckpt::CheckpointError(
        "checkpoint vocabulary size does not match this pipeline's "
        "tokenizer — the task catalog changed");
  for (std::size_t i = 0; i < snap.vocab.size(); ++i)
    if (snap.vocab[i] != tokenizer_.word_of(static_cast<int>(i)))
      throw ckpt::CheckpointError(
          "checkpoint vocabulary differs from this pipeline's tokenizer at "
          "token id " + std::to_string(i) + " — the task catalog changed");
}

lm::PretrainStats DpoAfPipeline::pretrain_model() {
  return pretrain_model_impl(nullptr);
}

lm::PretrainStats DpoAfPipeline::pretrain_model_impl(
    const lm::PretrainState* resume) {
  // A resume at the final epoch boundary skips the stage entirely; without
  // the guard its span would still charge the corpus rebuild (needed only
  // for the RNG stream) to "pretrain" — wall time for a phase that did
  // not run.
  const bool will_train =
      (resume == nullptr ? 0 : resume->completed_epochs) <
      config_.pretrain.epochs;
  std::optional<obs::Span> span;
  if (will_train)
    span.emplace("pretrain", obs::histogram("pipeline.pretrain_ns"));
  // The corpus build consumes the pipeline RNG identically on fresh and
  // resumed runs; pretrain() then restores the RNG from the snapshot, so
  // by the end of the stage the stream matches an uninterrupted run.
  //
  // Held-out scenarios must leave no trace in the training signal: their
  // tasks are dropped from the corpus here (the tokenizer still covers
  // them, so held-out prompts stay encodable at eval time). Without any
  // holdout the task list passes through untouched.
  std::vector<driving::Task> visible_tasks;
  const std::vector<driving::Task>* corpus_tasks = &domain_.tasks();
  for (const auto& task : domain_.tasks())
    if (task.holdout) {
      for (const auto& t : domain_.tasks())
        if (!t.holdout) visible_tasks.push_back(t);
      corpus_tasks = &visible_tasks;
      break;
    }
  const auto corpus =
      lm::build_corpus(*corpus_tasks, tokenizer_,
                       config_.corpus_samples_per_task,
                       config_.corpus_weights, rng_);
  lm::PretrainHooks hooks;
  if (sink_ && config_.checkpoint_every_epochs > 0) {
    hooks.snapshot_every = config_.checkpoint_every_epochs;
    hooks.snapshot = [this](const lm::PretrainState& s) {
      ckpt::TrainingCheckpoint snap = base_checkpoint();
      snap.stage = ckpt::Stage::kPretrain;
      snap.completed_epochs = s.completed_epochs;
      snap.policy_state = s.model_state;
      snap.opt_m = s.opt_m;
      snap.opt_v = s.opt_v;
      snap.opt_steps = s.opt_steps;
      snap.rng_state = s.rng_state;
      snap.order = s.order;
      snap.pretrain_losses = s.epoch_losses;
      sink_->write(snap);
    };
  }
  auto stats =
      lm::pretrain(model_, corpus, config_.pretrain, rng_, hooks, resume);
  pretrained_ = true;
  return stats;
}

int DpoAfPipeline::score_response(const driving::Task& task,
                                  const std::string& response_text) const {
  return driving::formal_feedback(domain_, task.scenario, response_text)
      .score();
}

void DpoAfPipeline::stream_scored_responses(
    const std::vector<const driving::Task*>& tasks,
    const std::vector<int>& counts, const TinyGpt& model,
    const lm::SamplerConfig& sampler, SampleSource source,
    std::vector<Rng>& task_rngs,
    const std::function<void(ScoredItem&&)>& consume) const {
  const std::size_t n_tasks = tasks.size();
  // Sequence numbers are assigned at submission, task-major then
  // sample-minor — the exact order the phased pipeline consumes in — and
  // every per-candidate RNG draw below comes from the serially-split
  // task_rngs, so reassembling by sequence number reproduces the phased
  // output bit for bit (docs/PIPELINE.md).
  std::vector<std::uint64_t> seq_base(n_tasks + 1, 0);
  for (std::size_t u = 0; u < n_tasks; ++u)
    seq_base[u + 1] = seq_base[u] + static_cast<std::uint64_t>(counts[u]);
  const std::uint64_t total = seq_base[n_tasks];

  struct WorkItem {
    std::uint64_t seq = 0;
    std::size_t task = 0;
    std::string text;
    bool truncated = false;
  };

  const auto capacity = static_cast<std::size_t>(
      config_.stage_queue_capacity < 1 ? 1 : config_.stage_queue_capacity);
  dataflow::Channel<WorkItem> work(capacity, "pipeline.candidates");
  dataflow::Reorder<ScoredItem> scored("pipeline.scored");
  // Overlap telemetry: scorings that complete while the sampler stage is
  // still producing are exactly the work the phased pipeline serialized.
  std::atomic<bool> sampling_open{true};
  std::atomic<std::uint64_t> scored_while_sampling{0};

  static obs::Counter& responses = obs::counter("lm.responses");
  static obs::Counter& tokens = obs::counter("lm.generated_tokens");
  static obs::Counter& truncations = obs::counter("lm.truncated_responses");
  obs::Histogram& gen_hist = obs::histogram("lm.sample_responses_ns");

  // In-flight serve submissions between the submitter and the harvester;
  // FIFO with one producer and one consumer, so submission order is
  // preserved. Declared before StageSet so workers outlive neither.
  struct Inflight {
    std::uint64_t seq = 0;
    std::size_t task = 0;
    serve::Submission submission;
  };
  std::unique_ptr<dataflow::Channel<Inflight>> inflight;
  std::unique_ptr<serve::GenerationService> service;
  if (source == SampleSource::kServe) {
    inflight = std::make_unique<dataflow::Channel<Inflight>>(
        capacity, "pipeline.inflight");
    service =
        std::make_unique<serve::GenerationService>(model,
                                                   make_serve_config(config_));
  }

  dataflow::StageSet stages([&] {
    if (inflight) inflight->fail();
    work.fail();
    scored.fail();
  });

  // --- sampler stage --------------------------------------------------
  if (source == SampleSource::kServe) {
    // Submitter: draw every per-request seed serially from the task RNGs
    // (the same derivation lm::sample_responses_served uses) and let the
    // service's bounded admission queue provide natural backpressure.
    stages.spawn(
        "submit", 1,
        [&](int) {
          for (std::size_t u = 0; u < n_tasks; ++u) {
            const std::vector<int> prompt =
                lm::encode_prompt(tokenizer_, tasks[u]->prompt);
            for (int s = 0; s < counts[u]; ++s) {
              serve::GenerateRequest req;
              req.prompt = prompt;
              req.max_new_tokens = sampler.max_new_tokens;
              req.temperature = sampler.temperature;
              req.top_k = sampler.top_k;
              req.eos_id = tokenizer_.eos();
              req.seed = task_rngs[u]();
              const std::uint64_t seq =
                  seq_base[u] + static_cast<std::uint64_t>(s);
              if (!inflight->push({seq, u, service->submit(std::move(req))}))
                return;
            }
          }
        },
        [&] { inflight->close(); });
    // Harvester: resolve futures in submission order, decode, hand off.
    stages.spawn(
        "sample", 1,
        [&](int) {
          while (auto sub = inflight->pop()) {
            obs::Span span("generation", gen_hist);
            const serve::GenerateResult r = sub->submission.result.get();
            responses.add();
            tokens.add(r.ids.size());
            if (r.truncated) truncations.add();
            if (!work.push(
                    {sub->seq, sub->task, tokenizer_.decode(r.ids), r.truncated}))
              return;
          }
        },
        [&] {
          sampling_open.store(false, std::memory_order_relaxed);
          work.close();
        });
  } else {
    // Direct / catalog sampler: workers claim whole tasks (each task's
    // RNG stream is private, so the claim order is irrelevant) and decode
    // serially — the worker count is the stage's parallelism.
    const int gen_workers =
        source == SampleSource::kCatalog
            ? 1
            : static_cast<int>(std::min<std::size_t>(
                  n_tasks == 0 ? 1 : n_tasks,
                  static_cast<std::size_t>(util::global_threads())));
    auto next_task = std::make_shared<std::atomic<std::size_t>>(0);
    stages.spawn(
        "sample", gen_workers,
        [&, next_task](int) {
          util::InlineComputeGuard serial;
          for (;;) {
            const std::size_t u = next_task->fetch_add(1);
            if (u >= n_tasks) return;
            if (source == SampleSource::kCatalog) {
              std::uint64_t seq = seq_base[u];
              for (const auto& variant : tasks[u]->variants)
                if (!work.push({seq++, u, variant.text, false})) return;
            } else {
              const std::vector<int> prompt =
                  lm::encode_prompt(tokenizer_, tasks[u]->prompt);
              for (int s = 0; s < counts[u]; ++s) {
                obs::Span span("generation", gen_hist);
                const auto gen = model.generate(
                    prompt, sampler.max_new_tokens, sampler.temperature,
                    sampler.top_k, tokenizer_.eos(), task_rngs[u]);
                responses.add();
                tokens.add(gen.ids.size());
                if (gen.truncated) truncations.add();
                if (!work.push({seq_base[u] + static_cast<std::uint64_t>(s),
                                u, tokenizer_.decode(gen.ids), gen.truncated}))
                  return;
              }
            }
          }
        },
        [&] {
          sampling_open.store(false, std::memory_order_relaxed);
          work.close();
        });
  }

  // --- synthesis + verification stage ---------------------------------
  const int score_workers =
      config_.verify_workers > 0 ? config_.verify_workers
                                 : util::global_threads();
  stages.spawn(
      "verify", score_workers,
      [&](int) {
        util::InlineComputeGuard serial;
        while (auto item = work.pop()) {
          ScoredItem out;
          out.task_index = item->task;
          out.truncated = item->truncated;
          const int score = score_response(*tasks[item->task], item->text);
          out.candidate = {std::move(item->text), score};
          if (sampling_open.load(std::memory_order_relaxed))
            scored_while_sampling.fetch_add(1, std::memory_order_relaxed);
          if (!scored.push(item->seq, std::move(out))) return;
        }
      },
      [&] { scored.close(); });

  // --- consumer: the calling thread, in submission order ---------------
  std::uint64_t consumed = 0;
  while (auto item = scored.pop()) {
    consume(std::move(*item));
    ++consumed;
  }
  stages.join();  // rethrows the first stage error, if any
  DPOAF_CHECK_MSG(consumed == total,
                  "streaming pipeline dropped scored candidates");
  if (obs::enabled()) {
    obs::gauge("dataflow.pipeline.scored_while_sampling")
        .record_max(static_cast<std::int64_t>(
            scored_while_sampling.load(std::memory_order_relaxed)));
    obs::gauge("dataflow.pipeline.items")
        .record_max(static_cast<std::int64_t>(total));
  }
}

DpoAfPipeline::StreamedCollection DpoAfPipeline::stream_collect(
    bool with_pairs) {
  DPOAF_CHECK_MSG(pretrained_ || config_.candidates_from_catalog,
                  "call pretrain_model() before sampling candidates");
  std::vector<const driving::Task*> training;
  for (const auto& task : domain_.tasks())
    if (task.training && !task.holdout) training.push_back(&task);

  // Same serial split as the phased path: the pipeline RNG stream is
  // identical in both modes.
  std::vector<Rng> task_rngs;
  task_rngs.reserve(training.size());
  for (std::size_t i = 0; i < training.size(); ++i)
    task_rngs.push_back(rng_.split());

  SampleSource source = SampleSource::kDirect;
  if (config_.candidates_from_catalog)
    source = SampleSource::kCatalog;
  else if (config_.serve)
    source = SampleSource::kServe;

  std::vector<int> counts(training.size(), config_.responses_per_task);
  if (source == SampleSource::kCatalog)
    for (std::size_t u = 0; u < training.size(); ++u)
      counts[u] = static_cast<int>(training[u]->variants.size());

  StreamedCollection out;
  out.candidates.resize(training.size());
  for (std::size_t u = 0; u < training.size(); ++u)
    out.candidates[u].task_id = training[u]->id;

  static obs::Counter& pair_counter = obs::counter("pipeline.pairs_built");
  stream_scored_responses(
      training, counts, model_, config_.sampler, source, task_rngs,
      [&](ScoredItem&& item) {
        TaskCandidates& tc = out.candidates[item.task_index];
        if (item.truncated) ++tc.truncated;
        tc.candidates.push_back(std::move(item.candidate));
        // Consumption is sequence-ordered, so a task is complete exactly
        // when its last candidate arrives — build its pairs right away
        // (the pair-builder stage of the dataflow).
        if (with_pairs &&
            tc.candidates.size() ==
                static_cast<std::size_t>(counts[item.task_index])) {
          obs::Span span("ranking", obs::histogram("pipeline.ranking_ns"));
          const auto& task = *training[item.task_index];
          const auto task_pairs = dpo::build_preference_pairs(
              task.id, task.prompt, tc.candidates, tokenizer_,
              model_.config().max_seq);
          out.pairs.insert(out.pairs.end(), task_pairs.begin(),
                           task_pairs.end());
        }
      });
  if (with_pairs) pair_counter.add(out.pairs.size());
  return out;
}

std::vector<TaskCandidates> DpoAfPipeline::collect_candidates() {
  if (config_.streaming) return stream_collect(/*with_pairs=*/false).candidates;
  DPOAF_CHECK_MSG(pretrained_ || config_.candidates_from_catalog,
                  "call pretrain_model() before sampling candidates");
  std::vector<const driving::Task*> training;
  for (const auto& task : domain_.tasks())  // pairs: training, non-held-out
    if (task.training && !task.holdout) training.push_back(&task);

  // One generator per task, split from the pipeline RNG in serial task
  // order: the sampling stream each task sees is fixed before the fan-out,
  // so any thread count yields identical candidates.
  std::vector<Rng> task_rngs;
  task_rngs.reserve(training.size());
  for (std::size_t i = 0; i < training.size(); ++i)
    task_rngs.push_back(rng_.split());

  // Serve mode: generation goes through the continuous-batching service
  // first (each task's m requests decode interleaved across the slots);
  // the fan-out below then only scores. The two phases never share the
  // thread pool, and per-request seeds come from the same serially-split
  // task RNGs, so candidates are identical at any slot or thread count.
  const bool use_serve = config_.serve && !config_.candidates_from_catalog;
  std::vector<lm::SampledResponses> served(training.size());
  if (use_serve) {
    serve::GenerationService service(model_, make_serve_config(config_));
    for (std::size_t u = 0; u < training.size(); ++u)
      served[u] = lm::sample_responses_served(
          service, tokenizer_, training[u]->prompt,
          config_.responses_per_task, config_.sampler, task_rngs[u]);
  }

  std::vector<TaskCandidates> out(training.size());
  util::parallel_for(0, static_cast<std::int64_t>(training.size()), 1,
                     [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const auto u = static_cast<std::size_t>(t);
      const driving::Task& task = *training[u];
      TaskCandidates tc;
      tc.task_id = task.id;
      if (config_.candidates_from_catalog) {
        for (const auto& variant : task.variants)
          tc.candidates.push_back(
              {variant.text, score_response(task, variant.text)});
      } else {
        const auto responses =
            use_serve
                ? std::move(served[u])
                : lm::sample_responses(model_, tokenizer_, task.prompt,
                                       config_.responses_per_task,
                                       config_.sampler, task_rngs[u]);
        tc.truncated = responses.truncated_count();
        for (const auto& response : responses.texts)
          tc.candidates.push_back({response, score_response(task, response)});
      }
      out[u] = std::move(tc);
    }
  });
  return out;
}

std::vector<dpo::PreferencePair> DpoAfPipeline::build_pairs(
    const std::vector<TaskCandidates>& candidates) const {
  static obs::Counter& pair_counter = obs::counter("pipeline.pairs_built");
  std::vector<dpo::PreferencePair> pairs;
  // A phase that never ran must not appear in the trace: an empty input
  // would otherwise charge pure call overhead to "ranking" and the phase
  // rollup would double-count wall time that belongs elsewhere.
  if (candidates.empty()) return pairs;
  // "ranking" is the fourth of the five pipeline phases in the RunReport.
  obs::Span span("ranking", obs::histogram("pipeline.ranking_ns"));
  for (const auto& tc : candidates) {
    const auto& task = domain_.task_by_id(tc.task_id);
    const auto task_pairs = dpo::build_preference_pairs(
        task.id, task.prompt, tc.candidates, tokenizer_,
        model_.config().max_seq);
    pairs.insert(pairs.end(), task_pairs.begin(), task_pairs.end());
  }
  pair_counter.add(pairs.size());
  return pairs;
}

CheckpointEval DpoAfPipeline::evaluate_model(const TinyGpt& model,
                                             int epoch) const {
  // A zero sample count would divide by zero below and propagate NaN means
  // into every CheckpointEval consumer; fail loudly instead.
  DPOAF_CHECK_MSG(config_.eval_samples_per_task > 0,
                  "eval_samples_per_task must be > 0");
  obs::Span span("eval", obs::histogram("pipeline.eval_ns"));
  CheckpointEval eval;
  eval.epoch = epoch;
  // Deterministic per (seed, epoch) so evaluation noise is shared across
  // configurations being compared.
  Rng eval_rng(config_.seed * 0x9E3779B9ULL + static_cast<std::uint64_t>(epoch));
  lm::SamplerConfig sampler;
  sampler.temperature = config_.eval_temperature;
  sampler.top_k = config_.eval_top_k;
  sampler.max_new_tokens = config_.eval_max_new_tokens;

  // Per-task generators split in serial task order (see
  // collect_candidates) keep the evaluation identical at any thread count.
  // Held-out tasks never appear in checkpoint evaluation — they are
  // reserved for evaluate_generalization (and skipping them here keeps the
  // no-holdout RNG stream untouched: the split count only drops when a
  // holdout exists).
  std::vector<const driving::Task*> tasks;
  for (const auto& task : domain_.tasks())
    if (!task.holdout) tasks.push_back(&task);
  std::vector<Rng> task_rngs;
  task_rngs.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    task_rngs.push_back(eval_rng.split());

  eval.per_task.resize(tasks.size());
  eval.per_task_alignment_failure.resize(tasks.size());
  std::vector<int> per_task_truncated(tasks.size(), 0);
  if (config_.streaming) {
    // Streaming: each response is scored as soon as it is decoded; the
    // sequence-ordered consumer reproduces the phased path's per-task
    // serial accumulation order, so every mean below is bitwise-identical.
    const std::vector<int> counts(tasks.size(),
                                  config_.eval_samples_per_task);
    std::vector<double> score_sum(tasks.size(), 0.0);
    std::vector<int> failures(tasks.size(), 0);
    stream_scored_responses(
        tasks, counts, model, sampler,
        config_.serve ? SampleSource::kServe : SampleSource::kDirect,
        task_rngs, [&](ScoredItem&& item) {
          const std::size_t u = item.task_index;
          if (item.truncated) ++per_task_truncated[u];
          // The mean counts an unalignable response as 0 satisfied specs;
          // the failure itself is tallied separately so the two outcomes
          // stay distinguishable.
          if (item.candidate.score < 0) ++failures[u];
          score_sum[u] += std::max(0, item.candidate.score);
        });
    const auto n = static_cast<double>(config_.eval_samples_per_task);
    for (std::size_t u = 0; u < tasks.size(); ++u) {
      eval.per_task[u] = {tasks[u]->id, score_sum[u] / n};
      eval.per_task_alignment_failure[u] =
          static_cast<double>(failures[u]) / n;
    }
  } else {
    // Phased: serve mode batches all generation first, then the fan-out
    // below only scores.
    std::vector<lm::SampledResponses> served(tasks.size());
    if (config_.serve) {
      serve::GenerationService service(model, make_serve_config(config_));
      for (std::size_t u = 0; u < tasks.size(); ++u)
        served[u] = lm::sample_responses_served(
            service, tokenizer_, tasks[u]->prompt,
            config_.eval_samples_per_task, sampler, task_rngs[u]);
    }
    util::parallel_for(0, static_cast<std::int64_t>(tasks.size()), 1,
                       [&](std::int64_t t0, std::int64_t t1) {
      for (std::int64_t t = t0; t < t1; ++t) {
        const auto u = static_cast<std::size_t>(t);
        const driving::Task& task = *tasks[u];
        const auto responses =
            config_.serve
                ? std::move(served[u])
                : lm::sample_responses(model, tokenizer_, task.prompt,
                                       config_.eval_samples_per_task, sampler,
                                       task_rngs[u]);
        per_task_truncated[u] = responses.truncated_count();
        double score_sum = 0.0;
        int failures = 0;
        for (const auto& response : responses.texts) {
          const int score = score_response(task, response);
          // The mean counts an unalignable response as 0 satisfied specs;
          // the failure itself is tallied separately so the two outcomes
          // stay distinguishable.
          if (score < 0) ++failures;
          score_sum += std::max(0, score);
        }
        const auto n = static_cast<double>(responses.texts.size());
        eval.per_task[u] = {task.id, score_sum / n};
        eval.per_task_alignment_failure[u] =
            static_cast<double>(failures) / n;
      }
    });
  }

  // Serial reduction in task order, independent of the fan-out above.
  double train_sum = 0.0, val_sum = 0.0;
  double train_fail = 0.0, val_fail = 0.0;
  std::size_t train_n = 0, val_n = 0;
  for (std::size_t u = 0; u < tasks.size(); ++u) {
    const double score = eval.per_task[u].second;
    const double fail = eval.per_task_alignment_failure[u];
    eval.truncated_responses += per_task_truncated[u];
    if (tasks[u]->training) {
      train_sum += score;
      train_fail += fail;
      ++train_n;
    } else {
      val_sum += score;
      val_fail += fail;
      ++val_n;
    }
  }
  if (train_n > 0) {
    eval.train_mean_satisfied = train_sum / static_cast<double>(train_n);
    eval.train_alignment_failure_rate =
        train_fail / static_cast<double>(train_n);
  }
  if (val_n > 0) {
    eval.val_mean_satisfied = val_sum / static_cast<double>(val_n);
    eval.val_alignment_failure_rate = val_fail / static_cast<double>(val_n);
  }
  return eval;
}

GeneralizationEval DpoAfPipeline::evaluate_generalization() const {
  DPOAF_CHECK_MSG(config_.eval_samples_per_task > 0,
                  "eval_samples_per_task must be > 0");
  GeneralizationEval out;
  // A fixed offset of the pipeline seed — a private stream, so running (or
  // skipping) this eval never perturbs any other RNG consumer.
  Rng gen_rng(config_.seed * 0x9E3779B9ULL + 0xC0FFEEULL);
  lm::SamplerConfig sampler;
  sampler.temperature = config_.eval_temperature;
  sampler.top_k = config_.eval_top_k;
  sampler.max_new_tokens = config_.eval_max_new_tokens;

  const auto& tasks = domain_.tasks();
  std::vector<Rng> task_rngs;
  task_rngs.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    task_rngs.push_back(gen_rng.split());

  struct TaskScore {
    double satisfied_fraction = 0.0;
    double alignment_failure = 0.0;
    double violation = 0.0;
  };
  std::vector<TaskScore> scores(tasks.size());
  util::parallel_for(0, static_cast<std::int64_t>(tasks.size()), 1,
                     [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const auto u = static_cast<std::size_t>(t);
      const driving::Task& task = tasks[u];
      // Generated rulebooks differ in length, so satisfied counts are
      // normalized by the task's own rulebook size before averaging.
      const auto rulebook_size =
          static_cast<double>(domain_.specs_for(task.scenario).size());
      const auto responses =
          lm::sample_responses(model_, tokenizer_, task.prompt,
                               config_.eval_samples_per_task, sampler,
                               task_rngs[u]);
      TaskScore s;
      for (const auto& response : responses.texts) {
        const int score = score_response(task, response);
        if (score < 0)
          s.alignment_failure += 1.0;
        else if (static_cast<double>(score) < rulebook_size)
          s.violation += 1.0;
        s.satisfied_fraction += std::max(0, score) / rulebook_size;
      }
      const auto n = static_cast<double>(responses.texts.size());
      s.satisfied_fraction /= n;
      s.alignment_failure /= n;
      s.violation /= n;
      scores[u] = s;
    }
  });

  // Serial reduction in task order.
  for (std::size_t u = 0; u < tasks.size(); ++u) {
    const TaskScore& s = scores[u];
    if (tasks[u].holdout) {
      ++out.holdout_tasks;
      out.holdout_mean_satisfied_fraction += s.satisfied_fraction;
      out.holdout_alignment_failure_rate += s.alignment_failure;
      out.holdout_violation_rate += s.violation;
      out.per_holdout_task.emplace_back(tasks[u].id, s.satisfied_fraction);
    } else {
      ++out.train_tasks;
      out.train_mean_satisfied_fraction += s.satisfied_fraction;
      out.train_alignment_failure_rate += s.alignment_failure;
      out.train_violation_rate += s.violation;
    }
  }
  if (out.train_tasks > 0) {
    const auto n = static_cast<double>(out.train_tasks);
    out.train_mean_satisfied_fraction /= n;
    out.train_alignment_failure_rate /= n;
    out.train_violation_rate /= n;
  }
  if (out.holdout_tasks > 0) {
    const auto n = static_cast<double>(out.holdout_tasks);
    out.holdout_mean_satisfied_fraction /= n;
    out.holdout_alignment_failure_rate /= n;
    out.holdout_violation_rate /= n;
  }
  return out;
}

RunResult DpoAfPipeline::run_dpo(
    const std::vector<dpo::PreferencePair>& pairs) {
  return run_dpo_impl(pairs, nullptr);
}

RunResult DpoAfPipeline::run_dpo_impl(
    const std::vector<dpo::PreferencePair>& pairs,
    const ckpt::TrainingCheckpoint* resume) {
  RunResult result;
  result.pair_count = pairs.size();

  dpo::TrainerCheckpointState trainer_resume;
  if (resume != nullptr) {
    // Splice the persisted history back in: metric rows come back through
    // the trainer (which extends them), evaluations directly here.
    trainer_resume.completed_epochs = resume->completed_epochs;
    trainer_resume.policy_state = resume->policy_state;
    trainer_resume.reference_state = resume->reference_state;
    trainer_resume.opt_m = resume->opt_m;
    trainer_resume.opt_v = resume->opt_v;
    trainer_resume.opt_steps = resume->opt_steps;
    trainer_resume.rng_state = resume->rng_state;
    trainer_resume.order = resume->order;
    trainer_resume.history = resume->dpo_history;
    result.checkpoints.reserve(resume->evals.size());
    for (const ckpt::EvalRecord& r : resume->evals)
      result.checkpoints.push_back(from_record(r));
  }

  {
    // "dpo" is the fifth of the five pipeline phases in the RunReport.
    // Skipped-stage guard: a resume that already completed every epoch
    // would otherwise charge the trainer setup (reference-model clone) to
    // a phase that never trained.
    const bool will_train =
        (resume == nullptr ? 0 : resume->completed_epochs) <
        config_.dpo.epochs;
    std::optional<obs::Span> span;
    if (will_train) span.emplace("dpo", obs::histogram("pipeline.dpo_ns"));
    dpo::DpoTrainer trainer(model_.clone(), config_.dpo, rng_);
    dpo::TrainHooks hooks;
    hooks.checkpoint = [this, &result](int epoch, const TinyGpt& policy) {
      result.checkpoints.push_back(evaluate_model(policy, epoch));
    };
    if (sink_ && config_.checkpoint_every_epochs > 0) {
      hooks.snapshot_every = config_.checkpoint_every_epochs;
      hooks.snapshot = [this, &result,
                        &pairs](const dpo::TrainerCheckpointState& s) {
        ckpt::TrainingCheckpoint snap = base_checkpoint();
        snap.stage = ckpt::Stage::kDpo;
        snap.completed_epochs = s.completed_epochs;
        snap.policy_state = s.policy_state;
        snap.reference_state = s.reference_state;
        snap.opt_m = s.opt_m;
        snap.opt_v = s.opt_v;
        snap.opt_steps = s.opt_steps;
        snap.rng_state = s.rng_state;
        snap.order = s.order;
        snap.dpo_history = s.history;
        snap.evals.reserve(result.checkpoints.size());
        for (const CheckpointEval& e : result.checkpoints)
          snap.evals.push_back(to_record(e));
        snap.pairs = pairs;
        sink_->write(snap);
      };
    }
    result.metrics = trainer.train(
        pairs, hooks, resume != nullptr ? &trainer_resume : nullptr);
    model_ = trainer.policy().clone();
  }
  result.generator_stats = domain_.generator_stats();
  for (const driving::Task& task : domain_.tasks())
    if (task.holdout) {
      // The fine-tuned policy against scenarios it never trained on —
      // the held-out generalization protocol of docs/GENERATOR.md.
      obs::Span span("generalization",
                     obs::histogram("pipeline.generalization_ns"));
      result.generalization = evaluate_generalization();
      result.has_generalization = true;
      break;
    }
  result.feedback_cache_stats = domain_.feedback_cache_stats();
  result.buchi_cache_stats = modelcheck::buchi_cache_stats();
  result.monitor_cache_stats = monitor::monitor_cache_stats();
  if (obs::enabled()) {
    // Mirror the cache counters into gauges so a MetricsSnapshot alone
    // (e.g. a bench's --metrics-json report) carries them too.
    const auto publish = [](const char* prefix, const util::CacheStats& s) {
      const auto as_i64 = [](std::uint64_t v) {
        return static_cast<std::int64_t>(v);
      };
      const std::string p(prefix);
      obs::gauge(p + ".hits").set(as_i64(s.hits));
      obs::gauge(p + ".misses").set(as_i64(s.misses));
      obs::gauge(p + ".inserts").set(as_i64(s.inserts));
      obs::gauge(p + ".evictions").set(as_i64(s.evictions));
    };
    publish("feedback_cache", result.feedback_cache_stats);
    publish("buchi_cache", result.buchi_cache_stats);
    publish("monitor_cache", result.monitor_cache_stats);
    result.phases = obs::aggregate_phases(obs::trace_snapshot());
  }
  return result;
}

RunResult DpoAfPipeline::run() {
  if (!config_.resume_from.empty()) {
    const auto path = ckpt::resolve_resume_path(config_.resume_from);
    const ckpt::TrainingCheckpoint snap = ckpt::load_checkpoint(path);
    validate_checkpoint(snap);
    if (snap.stage == ckpt::Stage::kDpo) {
      // The stored preference dataset makes stages 1–4 unnecessary; DPO
      // resumes directly and nothing downstream reads the pipeline RNG, so
      // the final RunResult is bitwise-identical to an uninterrupted run.
      return run_dpo_impl(snap.pairs, &snap);
    }
    lm::PretrainState state;
    state.completed_epochs = snap.completed_epochs;
    state.model_state = snap.policy_state;
    state.opt_m = snap.opt_m;
    state.opt_v = snap.opt_v;
    state.opt_steps = snap.opt_steps;
    state.rng_state = snap.rng_state;
    state.order = snap.order;
    state.epoch_losses = snap.pretrain_losses;
    pretrain_model_impl(&state);
  }
  if (!pretrained_) pretrain_model();
  if (config_.streaming) {
    // One dataflow for stages 2–4: candidates stream from the sampler
    // through synthesis/verification into the pair builder, and DPO
    // consumes the completed pair set per epoch.
    const auto streamed = stream_collect(/*with_pairs=*/true);
    return run_dpo(streamed.pairs);
  }
  const auto candidates = collect_candidates();
  const auto pairs = build_pairs(candidates);
  return run_dpo(pairs);
}

}  // namespace dpoaf::core
