#include "core/pipeline.hpp"

#include <algorithm>

#include "modelcheck/buchi.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace dpoaf::core {

DpoAfPipeline::DpoAfPipeline(PipelineConfig config)
    : config_(config),
      tokenizer_(lm::build_tokenizer(domain_.tasks())),
      rng_(config.seed) {
  util::set_global_threads(config_.threads);
  domain_.set_feedback_cache(config_.feedback_cache);
  // Enable-only: never turn off observability some other component (a
  // bench harness, the example binary) switched on for the process.
  if (config_.observability) obs::set_enabled(true);
  nn::GptConfig gpt_cfg;
  gpt_cfg.vocab_size = static_cast<std::int64_t>(tokenizer_.vocab_size());
  gpt_cfg.d_model = config_.d_model;
  gpt_cfg.n_heads = config_.n_heads;
  gpt_cfg.n_layers = config_.n_layers;
  gpt_cfg.d_ff = config_.d_ff;
  // Size the context to the longest catalog sequence plus slack for
  // sampled responses.
  std::int64_t longest = 0;
  for (const auto& task : domain_.tasks())
    for (const auto& variant : task.variants)
      longest = std::max(
          longest, static_cast<std::int64_t>(
                       lm::encode_example(tokenizer_, task.prompt,
                                          variant.text)
                           .size()));
  gpt_cfg.max_seq = longest + 16;
  model_ = TinyGpt(gpt_cfg, rng_);
}

lm::PretrainStats DpoAfPipeline::pretrain_model() {
  obs::Span span("pretrain", obs::histogram("pipeline.pretrain_ns"));
  const auto corpus =
      lm::build_corpus(domain_.tasks(), tokenizer_,
                       config_.corpus_samples_per_task,
                       config_.corpus_weights, rng_);
  auto stats = lm::pretrain(model_, corpus, config_.pretrain, rng_);
  pretrained_ = true;
  return stats;
}

int DpoAfPipeline::score_response(const driving::Task& task,
                                  const std::string& response_text) const {
  return driving::formal_feedback(domain_, task.scenario, response_text)
      .score();
}

std::vector<TaskCandidates> DpoAfPipeline::collect_candidates() {
  DPOAF_CHECK_MSG(pretrained_ || config_.candidates_from_catalog,
                  "call pretrain_model() before sampling candidates");
  std::vector<const driving::Task*> training;
  for (const auto& task : domain_.tasks())
    if (task.training) training.push_back(&task);  // pairs come from training tasks only

  // One generator per task, split from the pipeline RNG in serial task
  // order: the sampling stream each task sees is fixed before the fan-out,
  // so any thread count yields identical candidates.
  std::vector<Rng> task_rngs;
  task_rngs.reserve(training.size());
  for (std::size_t i = 0; i < training.size(); ++i)
    task_rngs.push_back(rng_.split());

  std::vector<TaskCandidates> out(training.size());
  util::parallel_for(0, static_cast<std::int64_t>(training.size()), 1,
                     [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const auto u = static_cast<std::size_t>(t);
      const driving::Task& task = *training[u];
      TaskCandidates tc;
      tc.task_id = task.id;
      if (config_.candidates_from_catalog) {
        for (const auto& variant : task.variants)
          tc.candidates.push_back(
              {variant.text, score_response(task, variant.text)});
      } else {
        const auto responses =
            lm::sample_responses(model_, tokenizer_, task.prompt,
                                 config_.responses_per_task, config_.sampler,
                                 task_rngs[u]);
        tc.truncated = responses.truncated_count();
        for (const auto& response : responses.texts)
          tc.candidates.push_back({response, score_response(task, response)});
      }
      out[u] = std::move(tc);
    }
  });
  return out;
}

std::vector<dpo::PreferencePair> DpoAfPipeline::build_pairs(
    const std::vector<TaskCandidates>& candidates) const {
  // "ranking" is the fourth of the five pipeline phases in the RunReport.
  obs::Span span("ranking", obs::histogram("pipeline.ranking_ns"));
  static obs::Counter& pair_counter = obs::counter("pipeline.pairs_built");
  std::vector<dpo::PreferencePair> pairs;
  for (const auto& tc : candidates) {
    const auto& task = domain_.task_by_id(tc.task_id);
    const auto task_pairs = dpo::build_preference_pairs(
        task.id, task.prompt, tc.candidates, tokenizer_,
        model_.config().max_seq);
    pairs.insert(pairs.end(), task_pairs.begin(), task_pairs.end());
  }
  pair_counter.add(pairs.size());
  return pairs;
}

CheckpointEval DpoAfPipeline::evaluate_model(const TinyGpt& model,
                                             int epoch) const {
  // A zero sample count would divide by zero below and propagate NaN means
  // into every CheckpointEval consumer; fail loudly instead.
  DPOAF_CHECK_MSG(config_.eval_samples_per_task > 0,
                  "eval_samples_per_task must be > 0");
  obs::Span span("eval", obs::histogram("pipeline.eval_ns"));
  CheckpointEval eval;
  eval.epoch = epoch;
  // Deterministic per (seed, epoch) so evaluation noise is shared across
  // configurations being compared.
  Rng eval_rng(config_.seed * 0x9E3779B9ULL + static_cast<std::uint64_t>(epoch));
  lm::SamplerConfig sampler;
  sampler.temperature = config_.eval_temperature;
  sampler.top_k = config_.eval_top_k;
  sampler.max_new_tokens = config_.eval_max_new_tokens;

  // Per-task generators split in serial task order (see
  // collect_candidates) keep the evaluation identical at any thread count.
  const auto& tasks = domain_.tasks();
  std::vector<Rng> task_rngs;
  task_rngs.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    task_rngs.push_back(eval_rng.split());

  eval.per_task.resize(tasks.size());
  eval.per_task_alignment_failure.resize(tasks.size());
  std::vector<int> per_task_truncated(tasks.size(), 0);
  util::parallel_for(0, static_cast<std::int64_t>(tasks.size()), 1,
                     [&](std::int64_t t0, std::int64_t t1) {
    for (std::int64_t t = t0; t < t1; ++t) {
      const auto u = static_cast<std::size_t>(t);
      const auto& task = tasks[u];
      const auto responses = lm::sample_responses(
          model, tokenizer_, task.prompt, config_.eval_samples_per_task,
          sampler, task_rngs[u]);
      per_task_truncated[u] = responses.truncated_count();
      double score_sum = 0.0;
      int failures = 0;
      for (const auto& response : responses.texts) {
        const int score = score_response(task, response);
        // The mean counts an unalignable response as 0 satisfied specs;
        // the failure itself is tallied separately so the two outcomes
        // stay distinguishable.
        if (score < 0) ++failures;
        score_sum += std::max(0, score);
      }
      const auto n = static_cast<double>(responses.texts.size());
      eval.per_task[u] = {task.id, score_sum / n};
      eval.per_task_alignment_failure[u] = static_cast<double>(failures) / n;
    }
  });

  // Serial reduction in task order, independent of the fan-out above.
  double train_sum = 0.0, val_sum = 0.0;
  double train_fail = 0.0, val_fail = 0.0;
  std::size_t train_n = 0, val_n = 0;
  for (std::size_t u = 0; u < tasks.size(); ++u) {
    const double score = eval.per_task[u].second;
    const double fail = eval.per_task_alignment_failure[u];
    eval.truncated_responses += per_task_truncated[u];
    if (tasks[u].training) {
      train_sum += score;
      train_fail += fail;
      ++train_n;
    } else {
      val_sum += score;
      val_fail += fail;
      ++val_n;
    }
  }
  if (train_n > 0) {
    eval.train_mean_satisfied = train_sum / static_cast<double>(train_n);
    eval.train_alignment_failure_rate =
        train_fail / static_cast<double>(train_n);
  }
  if (val_n > 0) {
    eval.val_mean_satisfied = val_sum / static_cast<double>(val_n);
    eval.val_alignment_failure_rate = val_fail / static_cast<double>(val_n);
  }
  return eval;
}

RunResult DpoAfPipeline::run_dpo(
    const std::vector<dpo::PreferencePair>& pairs) {
  RunResult result;
  result.pair_count = pairs.size();
  {
    // "dpo" is the fifth of the five pipeline phases in the RunReport.
    obs::Span span("dpo", obs::histogram("pipeline.dpo_ns"));
    dpo::DpoTrainer trainer(model_.clone(), config_.dpo, rng_);
    result.metrics = trainer.train(
        pairs, [this, &result](int epoch, const TinyGpt& policy) {
          result.checkpoints.push_back(evaluate_model(policy, epoch));
        });
    model_ = trainer.policy().clone();
  }
  result.feedback_cache_stats = domain_.feedback_cache_stats();
  result.buchi_cache_stats = modelcheck::buchi_cache_stats();
  if (obs::enabled()) {
    // Mirror the cache counters into gauges so a MetricsSnapshot alone
    // (e.g. a bench's --metrics-json report) carries them too.
    const auto publish = [](const char* prefix, const util::CacheStats& s) {
      const auto as_i64 = [](std::uint64_t v) {
        return static_cast<std::int64_t>(v);
      };
      const std::string p(prefix);
      obs::gauge(p + ".hits").set(as_i64(s.hits));
      obs::gauge(p + ".misses").set(as_i64(s.misses));
      obs::gauge(p + ".inserts").set(as_i64(s.inserts));
      obs::gauge(p + ".evictions").set(as_i64(s.evictions));
    };
    publish("feedback_cache", result.feedback_cache_stats);
    publish("buchi_cache", result.buchi_cache_stats);
    result.phases = obs::aggregate_phases(obs::trace_snapshot());
  }
  return result;
}

RunResult DpoAfPipeline::run() {
  if (!pretrained_) pretrain_model();
  const auto candidates = collect_candidates();
  const auto pairs = build_pairs(candidates);
  return run_dpo(pairs);
}

}  // namespace dpoaf::core
