// Counterexample-guided controller repair — the refinement-loop baseline
// from the paper's related work ("other methods iteratively refine …
// based on counter-examples until the outputs pass formal verification",
// Jha et al. 2023). Instead of fine-tuning the language model, this
// baseline patches the *controller*: for every violated safety
// specification □ψ (ψ propositional), the counter-example pinpoints a
// product state whose emitted action falsifies ψ; the transition that
// emitted it gets its guard strengthened by one environment literal that
// restores ψ. The loop repeats until every repairable specification holds
// or no further strengthening applies.
//
// The ablation bench compares this per-response patching against DPO-AF:
// repair fixes one controller at a time and cannot improve the language
// model itself, which is precisely the gap the paper's method fills.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "driving/domain.hpp"

namespace dpoaf::core {

struct RepairResult {
  automata::FsaController controller;  // the repaired controller
  int score_before = 0;                // specs satisfied before repair
  int score_after = 0;                 // specs satisfied after repair
  int iterations = 0;                  // outer verify-repair rounds used
  std::vector<std::string> patched_specs;  // specs that triggered a patch
};

struct RepairOptions {
  int max_iterations = 8;
};

/// Repair `controller` against the scenario's own rulebook within any
/// registry scenario. Only safety specifications of the form □ψ with
/// propositional ψ are candidates; liveness violations are left to
/// fine-tuning.
RepairResult repair_controller(const driving::DrivingDomain& domain,
                               std::string_view scenario,
                               automata::FsaController controller,
                               const RepairOptions& options = {});

/// Enum convenience for the five paper scenarios.
inline RepairResult repair_controller(const driving::DrivingDomain& domain,
                                      driving::ScenarioId scenario,
                                      automata::FsaController controller,
                                      const RepairOptions& options = {}) {
  return repair_controller(domain,
                           std::string_view(driving::scenario_name(scenario)),
                           std::move(controller), options);
}

}  // namespace dpoaf::core
