#include "nn/decoder.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tensor/backend/backend.hpp"
#include "util/check.hpp"

namespace dpoaf::nn {

namespace {
constexpr std::int64_t kDefaultBlockTokens = 16;
}  // namespace

int sample_token(const float* logits, std::int64_t vocab, float temperature,
                 int top_k, Rng& rng) {
  DPOAF_CHECK(temperature > 0.0f);
  DPOAF_CHECK(vocab > 0);
  // Collect (logit, id), optionally truncated to the top-k. Ties break
  // by ascending token id: partial_sort's ordering of equal keys is
  // implementation-defined, and the candidate set must not depend on
  // the standard library.
  std::vector<std::pair<float, int>> cand;
  cand.reserve(static_cast<std::size_t>(vocab));
  for (std::int64_t j = 0; j < vocab; ++j)
    cand.emplace_back(logits[j], static_cast<int>(j));
  if (top_k > 0 && top_k < static_cast<int>(cand.size())) {
    std::partial_sort(cand.begin(), cand.begin() + top_k, cand.end(),
                      [](const auto& a, const auto& b) {
                        if (a.first != b.first) return a.first > b.first;
                        return a.second < b.second;
                      });
    cand.resize(static_cast<std::size_t>(top_k));
  }
  float mx = -1e30f;
  for (const auto& [logit, id] : cand) mx = std::max(mx, logit);
  std::vector<double> weights;
  weights.reserve(cand.size());
  for (const auto& [logit, id] : cand)
    weights.push_back(std::exp((logit - mx) / temperature));
  return cand[rng.weighted(weights)].second;
}

int argmax_token(const float* logits, std::int64_t vocab) {
  DPOAF_CHECK(vocab > 0);
  int best = 0;
  for (std::int64_t j = 1; j < vocab; ++j)
    if (logits[j] > logits[best]) best = static_cast<int>(j);
  return best;
}

namespace {

// y[out] = x[in] · W + b (+ LoRA delta); single-row inference kernel.
// The dense matvec is a one-row matmul_fwd on the active compute backend
// (docs/BACKENDS.md): the kernel accumulates into y, so seeding y with
// the bias makes it compute b + x·W directly.
void row_linear(const Linear& lin, const float* x, float* y) {
  const std::int64_t in = lin.weight.rows();
  const std::int64_t out = lin.weight.cols();
  const float* b = lin.bias.data();
  for (std::int64_t j = 0; j < out; ++j) y[j] = b[j];
  tensor::backend::active().matmul_fwd(x, lin.weight.data(), y, in, out, 0, 1);
  if (lin.lora_enabled()) {
    const std::int64_t rank = lin.lora_rank();
    const float* a = lin.lora_a.data();
    const float* bb = lin.lora_b.data();
    std::vector<float> xa(static_cast<std::size_t>(rank), 0.0f);
    for (std::int64_t i = 0; i < in; ++i) {
      const float xi = x[i];
      const float* ar = a + i * rank;
      for (std::int64_t r = 0; r < rank; ++r) xa[static_cast<std::size_t>(r)] += xi * ar[r];
    }
    const float scale = lin.lora_scale();
    for (std::int64_t r = 0; r < rank; ++r) {
      const float xr = xa[static_cast<std::size_t>(r)] * scale;
      const float* br = bb + r * out;
      for (std::int64_t j = 0; j < out; ++j) y[j] += xr * br[j];
    }
  }
}

void row_layer_norm(const LayerNorm& ln, const float* x, std::int64_t n,
                    float* y) {
  float mu = 0.0f;
  for (std::int64_t j = 0; j < n; ++j) mu += x[j];
  mu /= static_cast<float>(n);
  float var = 0.0f;
  for (std::int64_t j = 0; j < n; ++j) var += (x[j] - mu) * (x[j] - mu);
  var /= static_cast<float>(n);
  const float inv = 1.0f / std::sqrt(var + 1e-5f);
  const float* gamma = ln.gamma.data();
  const float* beta = ln.beta.data();
  for (std::int64_t j = 0; j < n; ++j)
    y[j] = (x[j] - mu) * inv * gamma[j] + beta[j];
}

float gelu_scalar(float x) {
  constexpr float kC = 0.7978845608028654f;
  return 0.5f * x * (1.0f + std::tanh(kC * (x + 0.044715f * x * x * x)));
}

}  // namespace

DecodeSession::DecodeSession(const TinyGpt& model, KvBlockPool* pool,
                             std::int64_t block_tokens)
    : model_(model) {
  const auto& cfg = model_.config();
  if (pool != nullptr) {
    pool_ = pool;
  } else {
    const std::int64_t bt =
        block_tokens > 0 ? block_tokens : kDefaultBlockTokens;
    owned_pool_ = std::make_unique<KvBlockPool>(
        cfg.n_layers, cfg.d_model, bt, (cfg.max_seq + bt - 1) / bt);
    pool_ = owned_pool_.get();
  }
  table_.reserve(
      static_cast<std::size_t>(pool_->blocks_for(cfg.max_seq)));
  logits_.resize(static_cast<std::size_t>(cfg.vocab_size));
  x_.resize(static_cast<std::size_t>(cfg.d_model));
  h_.resize(static_cast<std::size_t>(cfg.d_model));
  qkv_.resize(static_cast<std::size_t>(3 * cfg.d_model));
  attn_out_.resize(static_cast<std::size_t>(cfg.d_model));
  mlp_.resize(static_cast<std::size_t>(cfg.d_ff));
  scores_.resize(static_cast<std::size_t>(cfg.max_seq));
}

DecodeSession::~DecodeSession() { reset(); }

void DecodeSession::reset() {
  position_ = 0;
  for (const std::int32_t b : table_) pool_->decref(b);
  table_.clear();
  pending_cow_ = false;
  cow_copies_ = 0;
}

void DecodeSession::adopt_prefix(const std::vector<std::int32_t>& blocks,
                                 std::int64_t tokens) {
  DPOAF_CHECK_MSG(position_ == 0 && table_.empty(),
                  "adopt_prefix requires a fresh session");
  DPOAF_CHECK(tokens >= 0);
  DPOAF_CHECK(static_cast<std::int64_t>(blocks.size()) ==
              pool_->blocks_for(tokens));
  table_ = blocks;
  position_ = tokens;
  // The partially-filled tail (if any) may be shared with the prefix tree
  // or other sessions; the first append resolves it via copy-on-write.
  pending_cow_ = tokens % pool_->block_tokens() != 0;
}

const std::vector<float>& DecodeSession::step(int token_id) {
  const auto& cfg = model_.config();
  DPOAF_CHECK_MSG(position_ < cfg.max_seq,
                  "decode session exceeded max_seq");
  DPOAF_CHECK(token_id >= 0 && token_id < cfg.vocab_size);
  const std::int64_t d = cfg.d_model;
  const std::int64_t n_heads = cfg.n_heads;
  const std::int64_t dh = d / n_heads;
  const std::int64_t bt = pool_->block_tokens();
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));

  // Map this position onto the block table: start a fresh block at a
  // boundary, and copy-on-write the tail block when it is shared (an
  // adopted partial prefix, or a block the prefix tree anchored).
  const std::int64_t bi = position_ / bt;
  const std::int64_t row = position_ % bt;
  if (bi == static_cast<std::int64_t>(table_.size())) {
    table_.push_back(pool_->allocate());
  } else if (pending_cow_ &&
             pool_->refcount(table_[static_cast<std::size_t>(bi)]) > 1) {
    const std::int32_t shared = table_[static_cast<std::size_t>(bi)];
    const std::int32_t fresh = pool_->allocate();
    pool_->copy_rows(shared, fresh, row);
    pool_->decref(shared);
    table_[static_cast<std::size_t>(bi)] = fresh;
    ++cow_copies_;
  }
  pending_cow_ = false;
  const std::int32_t tail = table_[static_cast<std::size_t>(bi)];

  // Token + positional embedding.
  const float* tok = model_.tok_emb_.data() + token_id * d;
  const float* pos = model_.pos_emb_.data() + position_ * d;
  for (std::int64_t j = 0; j < d; ++j) x_[static_cast<std::size_t>(j)] = tok[j] + pos[j];

  const std::int64_t t_len = position_ + 1;
  float* const scores = scores_.data();
  for (std::size_t l = 0; l < model_.blocks_.size(); ++l) {
    const TransformerBlock& block = model_.blocks_[l];
    const auto layer = static_cast<std::int64_t>(l);

    // Attention sublayer.
    row_layer_norm(block.ln1, x_.data(), d, h_.data());
    row_linear(block.attn.qkv, h_.data(), qkv_.data());
    std::copy(qkv_.begin() + d, qkv_.begin() + 2 * d,
              pool_->k(layer, tail) + row * d);
    std::copy(qkv_.begin() + 2 * d, qkv_.begin() + 3 * d,
              pool_->v(layer, tail) + row * d);

    for (std::int64_t head = 0; head < n_heads; ++head) {
      const float* q = qkv_.data() + head * dh;
      // Scores over the cached prefix (causal: all cached positions),
      // walked in position order so the arithmetic matches a contiguous
      // layout bit-for-bit at any block size.
      float mx = -1e30f;
      for (std::int64_t t = 0; t < t_len; ++t) {
        const float* kt =
            pool_->k(layer, table_[static_cast<std::size_t>(t / bt)]) +
            (t % bt) * d + head * dh;
        float acc = 0.0f;
        for (std::int64_t j = 0; j < dh; ++j) acc += q[j] * kt[j];
        scores[t] = acc * inv_sqrt;
        mx = std::max(mx, scores[t]);
      }
      float z = 0.0f;
      for (std::int64_t t = 0; t < t_len; ++t) {
        scores[t] = std::exp(scores[t] - mx);
        z += scores[t];
      }
      const float inv_z = 1.0f / z;
      float* ctx = attn_out_.data() + head * dh;
      for (std::int64_t j = 0; j < dh; ++j) ctx[j] = 0.0f;
      for (std::int64_t t = 0; t < t_len; ++t) {
        const float p = scores[t] * inv_z;
        const float* vt =
            pool_->v(layer, table_[static_cast<std::size_t>(t / bt)]) +
            (t % bt) * d + head * dh;
        for (std::int64_t j = 0; j < dh; ++j) ctx[j] += p * vt[j];
      }
    }
    // Projection + residual (reuse h_ for the projected output).
    row_linear(block.attn.proj, attn_out_.data(), h_.data());
    for (std::int64_t j = 0; j < d; ++j) x_[static_cast<std::size_t>(j)] += h_[static_cast<std::size_t>(j)];

    // MLP sublayer.
    row_layer_norm(block.ln2, x_.data(), d, h_.data());
    row_linear(block.fc1, h_.data(), mlp_.data());
    for (std::int64_t j = 0; j < cfg.d_ff; ++j)
      mlp_[static_cast<std::size_t>(j)] = gelu_scalar(mlp_[static_cast<std::size_t>(j)]);
    row_linear(block.fc2, mlp_.data(), h_.data());
    for (std::int64_t j = 0; j < d; ++j) x_[static_cast<std::size_t>(j)] += h_[static_cast<std::size_t>(j)];
  }

  row_layer_norm(model_.ln_f_, x_.data(), d, h_.data());
  row_linear(model_.head_, h_.data(), logits_.data());
  ++position_;
  return logits_;
}

}  // namespace dpoaf::nn
