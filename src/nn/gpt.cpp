#include "nn/gpt.hpp"

#include "nn/decoder.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dpoaf::nn {

namespace ops = tensor::ops;

TinyGpt::TinyGpt(GptConfig config, Rng& rng) : config_(config) {
  DPOAF_CHECK(config.vocab_size > 0);
  tok_emb_ = Tensor::randn({config.vocab_size, config.d_model}, rng,
                           config.init_scale)
                 .set_requires_grad(true);
  pos_emb_ =
      Tensor::randn({config.max_seq, config.d_model}, rng, config.init_scale)
          .set_requires_grad(true);
  blocks_.reserve(static_cast<std::size_t>(config.n_layers));
  for (std::int64_t l = 0; l < config.n_layers; ++l)
    blocks_.emplace_back(config.d_model, config.n_heads, config.d_ff, rng,
                         config.init_scale);
  ln_f_ = LayerNorm(config.d_model);
  head_ = Linear(config.d_model, config.vocab_size, rng, config.init_scale);
}

Tensor TinyGpt::forward(Tape* tape, const std::vector<int>& ids) const {
  DPOAF_CHECK_MSG(!ids.empty(), "forward() needs at least one token");
  DPOAF_CHECK_MSG(static_cast<std::int64_t>(ids.size()) <= config_.max_seq,
                  "sequence exceeds max_seq");
  std::vector<int> positions(ids.size());
  for (std::size_t t = 0; t < ids.size(); ++t)
    positions[t] = static_cast<int>(t);
  Tensor x = ops::add(tape, ops::embedding(tape, tok_emb_, ids),
                      ops::embedding(tape, pos_emb_, positions));
  for (const TransformerBlock& block : blocks_) x = block.forward(tape, x);
  return head_.forward(tape, ln_f_.forward(tape, x));
}

namespace {
// Next-token targets: position t predicts ids[t+1]; last position unused.
std::vector<int> shift_targets(const std::vector<int>& ids) {
  std::vector<int> targets(ids.size(), -1);
  for (std::size_t t = 0; t + 1 < ids.size(); ++t)
    targets[t] = ids[t + 1];
  return targets;
}
}  // namespace

Tensor TinyGpt::nll_loss(Tape* tape, const std::vector<int>& ids) const {
  return ops::cross_entropy(tape, forward(tape, ids), shift_targets(ids));
}

Tensor TinyGpt::response_log_prob(Tape* tape, const std::vector<int>& ids,
                                  std::int64_t prompt_len) const {
  DPOAF_CHECK_MSG(prompt_len >= 1 &&
                      prompt_len < static_cast<std::int64_t>(ids.size()),
                  "prompt_len must leave at least one response token");
  // Position prompt_len−1 predicts the first response token.
  return ops::sum_log_probs(tape, forward(tape, ids), shift_targets(ids),
                            prompt_len - 1);
}

double TinyGpt::response_log_prob_value(const std::vector<int>& ids,
                                        std::int64_t prompt_len) const {
  return static_cast<double>(
      response_log_prob(nullptr, ids, prompt_len).item());
}

Generation TinyGpt::generate(const std::vector<int>& prompt, int max_new,
                             float temperature, int top_k, int eos_id,
                             Rng& rng) const {
  DPOAF_CHECK(!prompt.empty());
  DPOAF_CHECK(temperature > 0.0f);
  DPOAF_CHECK_MSG(static_cast<std::int64_t>(prompt.size()) <= config_.max_seq,
                  "prompt alone exceeds max_seq");
  DecodeSession session(*this);
  std::int64_t consumed = 0;
  for (std::size_t i = 0; i + 1 < prompt.size(); ++i) {
    session.step(prompt[i]);
    ++consumed;
  }
  Generation out;
  int last = prompt.back();
  for (int step = 0; step < max_new; ++step) {
    if (consumed + 1 >= config_.max_seq) {
      out.truncated = true;  // context exhausted before eos/max_new
      break;
    }
    const std::vector<float>& logits = session.step(last);
    ++consumed;
    const int next =
        sample_token(logits.data(), config_.vocab_size, temperature, top_k, rng);
    if (next == eos_id) break;
    last = next;
    out.ids.push_back(next);
  }
  return out;
}

Generation TinyGpt::generate_greedy(const std::vector<int>& prompt,
                                    int max_new, int eos_id) const {
  DPOAF_CHECK(!prompt.empty());
  DPOAF_CHECK_MSG(static_cast<std::int64_t>(prompt.size()) <= config_.max_seq,
                  "prompt alone exceeds max_seq");
  DecodeSession session(*this);
  std::int64_t consumed = 0;
  for (std::size_t i = 0; i + 1 < prompt.size(); ++i) {
    session.step(prompt[i]);
    ++consumed;
  }
  Generation out;
  int last = prompt.back();
  for (int step = 0; step < max_new; ++step) {
    if (consumed + 1 >= config_.max_seq) {
      out.truncated = true;
      break;
    }
    const std::vector<float>& logits = session.step(last);
    ++consumed;
    const int best = argmax_token(logits.data(), config_.vocab_size);
    if (best == eos_id) break;
    last = best;
    out.ids.push_back(best);
  }
  return out;
}

void TinyGpt::enable_lora(std::int64_t rank, float alpha, Rng& rng) {
  DPOAF_CHECK_MSG(lora_rank_ == 0, "LoRA already enabled");
  for (TransformerBlock& block : blocks_) block.enable_lora(rank, alpha, rng);
  tok_emb_.set_requires_grad(false);
  pos_emb_.set_requires_grad(false);
  ln_f_.gamma.set_requires_grad(false);
  ln_f_.beta.set_requires_grad(false);
  head_.weight.set_requires_grad(false);
  head_.bias.set_requires_grad(false);
  for (TransformerBlock& block : blocks_) {
    block.ln1.gamma.set_requires_grad(false);
    block.ln1.beta.set_requires_grad(false);
    block.ln2.gamma.set_requires_grad(false);
    block.ln2.beta.set_requires_grad(false);
  }
  lora_rank_ = rank;
  lora_alpha_ = alpha;
}

ParamList TinyGpt::parameters() const {
  ParamList out;
  out.push_back(tok_emb_);
  out.push_back(pos_emb_);
  for (const TransformerBlock& block : blocks_) block.collect_params(out);
  ln_f_.collect_params(out);
  head_.collect_params(out);
  return out;
}

ParamList TinyGpt::trainable_parameters() const {
  ParamList out;
  for (const Tensor& p : parameters())
    if (p.requires_grad()) out.push_back(p);
  return out;
}

std::size_t TinyGpt::parameter_count() const {
  std::size_t n = 0;
  for (const Tensor& p : parameters()) n += static_cast<std::size_t>(p.numel());
  return n;
}

std::size_t TinyGpt::trainable_parameter_count() const {
  std::size_t n = 0;
  for (const Tensor& p : trainable_parameters())
    n += static_cast<std::size_t>(p.numel());
  return n;
}

std::vector<float> TinyGpt::state() const {
  std::vector<float> out;
  for (const Tensor& p : parameters())
    out.insert(out.end(), p.data(), p.data() + p.numel());
  return out;
}

void TinyGpt::load_state(const std::vector<float>& state) {
  std::size_t off = 0;
  for (Tensor p : parameters()) {
    DPOAF_CHECK_MSG(off + static_cast<std::size_t>(p.numel()) <= state.size(),
                    "state vector too short for this model layout");
    std::copy(state.begin() + static_cast<std::ptrdiff_t>(off),
              state.begin() + static_cast<std::ptrdiff_t>(
                                  off + static_cast<std::size_t>(p.numel())),
              p.data());
    off += static_cast<std::size_t>(p.numel());
  }
  DPOAF_CHECK_MSG(off == state.size(),
                  "state vector size does not match the model layout");
}

TinyGpt TinyGpt::clone() const {
  Rng scratch(0);  // weights are overwritten by load_state below
  TinyGpt copy(config_, scratch);
  if (lora_rank_ > 0) copy.enable_lora(lora_rank_, lora_alpha_, scratch);
  copy.load_state(state());
  return copy;
}

}  // namespace dpoaf::nn
