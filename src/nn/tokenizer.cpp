#include "nn/tokenizer.hpp"

#include "util/check.hpp"
#include "util/strings.hpp"

namespace dpoaf::nn {

namespace {
constexpr const char* kBos = "<s>";
constexpr const char* kEos = "</s>";
constexpr const char* kInstOpen = "[INST]";
constexpr const char* kInstClose = "[/INST]";
constexpr const char* kNl = "<nl>";
constexpr const char* kUnk = "<unk>";
}  // namespace

std::vector<std::string> Tokenizer::words(std::string_view text) {
  std::vector<std::string> out;
  // Newlines become the <nl> token so step structure survives.
  const std::string with_nl =
      replace_all(std::string(text), "\n", std::string(" ") + kNl + " ");
  for (const std::string& raw : split_ws(with_nl)) {
    // Split trailing '.' / ',' into their own tokens (possibly several,
    // e.g. "light.," — rare but cheap to handle). Collected back-to-front
    // and reversed, so a long punctuation run ("stop.....") stays linear.
    // This must run before the special-token check: decode() glues
    // punctuation onto the preceding token, so "[/INST]." has to re-split
    // into the case-sensitive special plus the punctuation.
    std::string w = raw;
    std::vector<std::string> tail;
    while (!w.empty() && (w.back() == '.' || w.back() == ',')) {
      tail.emplace_back(1, w.back());
      w.pop_back();
    }
    const bool special = w == kNl || w == kBos || w == kEos ||
                         w == kInstOpen || w == kInstClose;
    if (!special) w = to_lower(w);
    if (!w.empty()) out.push_back(w);
    out.insert(out.end(), tail.rbegin(), tail.rend());
  }
  return out;
}

int Tokenizer::add(const std::string& word) {
  if (auto it = index_.find(word); it != index_.end()) return it->second;
  const int id = static_cast<int>(words_.size());
  words_.push_back(word);
  index_.emplace(word, id);
  return id;
}

Tokenizer Tokenizer::build(const std::vector<std::string>& texts) {
  Tokenizer t;
  t.unk_ = t.add(kUnk);
  t.bos_ = t.add(kBos);
  t.eos_ = t.add(kEos);
  t.inst_open_ = t.add(kInstOpen);
  t.inst_close_ = t.add(kInstClose);
  t.nl_ = t.add(kNl);
  for (const std::string& text : texts)
    for (const std::string& w : words(text)) t.add(w);
  return t;
}

std::vector<int> Tokenizer::encode(std::string_view text) const {
  std::vector<int> ids;
  for (const std::string& w : words(text)) ids.push_back(id_of(w));
  return ids;
}

std::string Tokenizer::decode(const std::vector<int>& ids) const {
  std::string out;
  for (int id : ids) {
    const std::string& w = word_of(id);
    if (w == kNl) {
      // Strip the space a preceding word added.
      if (!out.empty() && out.back() == ' ') out.pop_back();
      out += '\n';
      continue;
    }
    if (w == "." || w == ",") {
      if (!out.empty() && out.back() == ' ') out.pop_back();
      out += w;
      out += ' ';
      continue;
    }
    out += w;
    out += ' ';
  }
  if (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

int Tokenizer::id_of(std::string_view word) const {
  if (auto it = index_.find(std::string(word)); it != index_.end())
    return it->second;
  return unk_;
}

const std::string& Tokenizer::word_of(int id) const {
  DPOAF_CHECK(id >= 0 && static_cast<std::size_t>(id) < words_.size());
  return words_[static_cast<std::size_t>(id)];
}

}  // namespace dpoaf::nn
