#include "nn/optim.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dpoaf::nn {

AdamW::AdamW(std::vector<tensor::Tensor> params, AdamWConfig config)
    : params_(std::move(params)), config_(config) {
  DPOAF_CHECK_MSG(!params_.empty(), "AdamW needs at least one parameter");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
  }
}

void AdamW::step() {
  ++t_;
  // Global-norm clipping across all parameters.
  double norm_sq = 0.0;
  for (auto& p : params_) {
    const float* g = p.grad();
    for (std::int64_t i = 0; i < p.numel(); ++i)
      norm_sq += static_cast<double>(g[i]) * static_cast<double>(g[i]);
  }
  last_grad_norm_ = std::sqrt(norm_sq);
  float clip_scale = 1.0f;
  if (config_.grad_clip > 0.0f && last_grad_norm_ > config_.grad_clip)
    clip_scale = config_.grad_clip / static_cast<float>(last_grad_norm_);

  const float bc1 =
      1.0f - std::pow(config_.beta1, static_cast<float>(t_));
  const float bc2 =
      1.0f - std::pow(config_.beta2, static_cast<float>(t_));

  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    float* w = p.data();
    const float* g = p.grad();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    for (std::int64_t i = 0; i < p.numel(); ++i) {
      const float gi = g[i] * clip_scale;
      m[i] = config_.beta1 * m[i] + (1.0f - config_.beta1) * gi;
      v[i] = config_.beta2 * v[i] + (1.0f - config_.beta2) * gi * gi;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= config_.lr *
              (mhat / (std::sqrt(vhat) + config_.eps) +
               config_.weight_decay * w[i]);
    }
  }
}

void AdamW::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

void AdamW::load_state(const std::vector<std::vector<float>>& m,
                       const std::vector<std::vector<float>>& v,
                       std::int64_t steps) {
  DPOAF_CHECK_MSG(m.size() == params_.size() && v.size() == params_.size(),
                  "optimizer state parameter count mismatch");
  for (std::size_t pi = 0; pi < params_.size(); ++pi)
    DPOAF_CHECK_MSG(
        m[pi].size() == m_[pi].size() && v[pi].size() == v_[pi].size(),
        "optimizer moment buffer size mismatch");
  DPOAF_CHECK(steps >= 0);
  m_ = m;
  v_ = v;
  t_ = steps;
}

}  // namespace dpoaf::nn
