// Neural-network building blocks: Linear (with optional LoRA adapter, Hu
// et al. 2021 — the paper fine-tunes a low-rank approximation instead of
// the full weights, App. E), Embedding, LayerNorm, multi-head causal
// self-attention, and the pre-LN transformer block.
#pragma once

#include <vector>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace dpoaf::nn {

using tensor::Tape;
using tensor::Tensor;

/// Collects a module's parameters; `out` accumulates across modules.
using ParamList = std::vector<Tensor>;

class Linear {
 public:
  Linear() = default;
  Linear(std::int64_t in, std::int64_t out, Rng& rng, float init_scale);

  [[nodiscard]] Tensor forward(Tape* tape, const Tensor& x) const;

  /// Attach a LoRA adapter W̃ = W + (α/k)·A·B with A ∈ R^{in×k} Gaussian,
  /// B ∈ R^{k×out} zero (so the adapted model starts identical to the
  /// base). Freezes W and b; only A and B remain trainable.
  void enable_lora(std::int64_t rank, float alpha, Rng& rng);
  [[nodiscard]] bool lora_enabled() const { return lora_rank_ > 0; }
  [[nodiscard]] std::int64_t lora_rank() const { return lora_rank_; }
  [[nodiscard]] float lora_scale() const { return lora_scale_; }

  void collect_params(ParamList& out) const;

  Tensor weight;  // [in, out]
  Tensor bias;    // [1, out]
  Tensor lora_a;  // [in, rank]
  Tensor lora_b;  // [rank, out]

 private:
  std::int64_t lora_rank_ = 0;
  float lora_scale_ = 0.0f;
};

class LayerNorm {
 public:
  LayerNorm() = default;
  explicit LayerNorm(std::int64_t dim);
  [[nodiscard]] Tensor forward(Tape* tape, const Tensor& x) const;
  void collect_params(ParamList& out) const;

  Tensor gamma;  // [1, dim]
  Tensor beta;   // [1, dim]
};

/// Multi-head causal self-attention (combined QKV projection).
class CausalSelfAttention {
 public:
  CausalSelfAttention() = default;
  CausalSelfAttention(std::int64_t d_model, std::int64_t n_heads, Rng& rng,
                      float init_scale);
  [[nodiscard]] Tensor forward(Tape* tape, const Tensor& x) const;
  void enable_lora(std::int64_t rank, float alpha, Rng& rng);
  void collect_params(ParamList& out) const;

  Linear qkv;   // [d, 3d]
  Linear proj;  // [d, d]

  [[nodiscard]] std::int64_t heads() const { return n_heads_; }

 private:
  std::int64_t n_heads_ = 1;
};

/// Pre-LN transformer block: x + attn(ln1(x)); x + mlp(ln2(x)).
class TransformerBlock {
 public:
  TransformerBlock() = default;
  TransformerBlock(std::int64_t d_model, std::int64_t n_heads,
                   std::int64_t d_ff, Rng& rng, float init_scale);
  [[nodiscard]] Tensor forward(Tape* tape, const Tensor& x) const;
  void enable_lora(std::int64_t rank, float alpha, Rng& rng);
  void collect_params(ParamList& out) const;

  LayerNorm ln1, ln2;
  CausalSelfAttention attn;
  Linear fc1, fc2;  // MLP with GELU
};

}  // namespace dpoaf::nn
