#include "nn/kv_cache.hpp"

#include <algorithm>
#include <cstring>

#include "util/check.hpp"

namespace dpoaf::nn {

KvBlockPool::KvBlockPool(std::int64_t n_layers, std::int64_t d_model,
                         std::int64_t block_tokens, std::int64_t total_blocks)
    : n_layers_(n_layers),
      d_model_(d_model),
      block_tokens_(block_tokens),
      total_blocks_(total_blocks) {
  DPOAF_CHECK(n_layers >= 1);
  DPOAF_CHECK(d_model >= 1);
  DPOAF_CHECK_MSG(block_tokens >= 1, "KV blocks need at least one token");
  DPOAF_CHECK_MSG(total_blocks >= 1, "KV pool needs at least one block");
  const std::size_t slab = static_cast<std::size_t>(total_blocks) *
                           static_cast<std::size_t>(block_tokens) *
                           static_cast<std::size_t>(d_model);
  k_.resize(static_cast<std::size_t>(n_layers));
  v_.resize(static_cast<std::size_t>(n_layers));
  for (auto& layer : k_) layer.resize(slab);
  for (auto& layer : v_) layer.resize(slab);
  refcounts_.assign(static_cast<std::size_t>(total_blocks), 0);
  free_.reserve(static_cast<std::size_t>(total_blocks));
  // LIFO free list seeded so the first allocations hand out low ids.
  for (std::int64_t b = total_blocks - 1; b >= 0; --b)
    free_.push_back(static_cast<std::int32_t>(b));
}

std::int32_t KvBlockPool::allocate() {
  std::lock_guard<std::mutex> lock(mutex_);
  DPOAF_CHECK_MSG(!free_.empty(),
                  "KV block pool exhausted — admission reservations must "
                  "cover every allocation");
  const std::int32_t b = free_.back();
  free_.pop_back();
  refcounts_[static_cast<std::size_t>(b)] = 1;
  return b;
}

void KvBlockPool::incref(std::int32_t block) {
  std::lock_guard<std::mutex> lock(mutex_);
  DPOAF_CHECK(block >= 0 && block < total_blocks_);
  DPOAF_CHECK(refcounts_[static_cast<std::size_t>(block)] > 0);
  ++refcounts_[static_cast<std::size_t>(block)];
}

void KvBlockPool::decref(std::int32_t block) {
  std::lock_guard<std::mutex> lock(mutex_);
  DPOAF_CHECK(block >= 0 && block < total_blocks_);
  int& rc = refcounts_[static_cast<std::size_t>(block)];
  DPOAF_CHECK(rc > 0);
  if (--rc == 0) free_.push_back(block);
}

int KvBlockPool::refcount(std::int32_t block) const {
  std::lock_guard<std::mutex> lock(mutex_);
  DPOAF_CHECK(block >= 0 && block < total_blocks_);
  return refcounts_[static_cast<std::size_t>(block)];
}

void KvBlockPool::copy_rows(std::int32_t src, std::int32_t dst,
                            std::int64_t rows) {
  DPOAF_CHECK(rows >= 0 && rows <= block_tokens_);
  const std::size_t n =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(d_model_);
  if (n == 0) return;
  for (std::int64_t l = 0; l < n_layers_; ++l) {
    std::memcpy(k(l, dst), k(l, src), n * sizeof(float));
    std::memcpy(v(l, dst), v(l, src), n * sizeof(float));
  }
}

std::int64_t KvBlockPool::free_blocks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return static_cast<std::int64_t>(free_.size());
}

// ---------------------------------------------------------------------------

PrefixTree::PrefixTree(KvBlockPool* pool)
    : pool_(pool), root_(std::make_unique<Node>()) {
  DPOAF_CHECK(pool != nullptr);
}

PrefixTree::~PrefixTree() { clear(); }

void PrefixTree::touch(Node* node) {
  by_stamp_.erase(node->stamp);
  node->stamp = next_stamp_++;
  by_stamp_.emplace(node->stamp, node);
}

PrefixTree::Match PrefixTree::match(const std::vector<int>& prompt,
                                    std::int64_t limit) {
  limit = std::min<std::int64_t>(limit,
                                 static_cast<std::int64_t>(prompt.size()));
  Match out;
  if (limit <= 0) return out;
  Node* node = root_.get();
  Node* best = nullptr;  // deepest anchored node on the walked path
  std::int64_t matched = 0;
  while (matched < limit) {
    const auto it = node->children.find(prompt[static_cast<std::size_t>(
        matched)]);
    if (it == node->children.end()) break;
    node = it->second.get();
    ++matched;
    if (!node->chain.empty()) best = node;
  }
  std::int64_t covered = best != nullptr ? best->depth : 0;
  if (matched == limit) {
    // Every queried token is in the trie; any anchor at or below the walk
    // end covers our whole prefix (its chain's leading blocks hold
    // exactly these positions). Descend the smallest-token branch — every
    // leaf is anchored by construction.
    Node* probe = node;
    while (probe->chain.empty() && !probe->children.empty())
      probe = probe->children.begin()->second.get();
    if (!probe->chain.empty() && probe->depth >= limit) {
      best = probe;
      covered = limit;
    }
  }
  if (best == nullptr || covered <= 0) {
    ++misses_;
    return out;
  }
  const std::int64_t n_blocks = pool_->blocks_for(covered);
  out.blocks.assign(best->chain.begin(), best->chain.begin() + n_blocks);
  out.tokens = covered;
  for (const std::int32_t b : out.blocks) pool_->incref(b);
  touch(best);
  ++hits_;
  tokens_reused_ += static_cast<std::uint64_t>(covered);
  return out;
}

bool PrefixTree::has_anchor(const int* tokens, std::int64_t len) const {
  const Node* node = root_.get();
  for (std::int64_t i = 0; i < len; ++i) {
    const auto it = node->children.find(tokens[i]);
    if (it == node->children.end()) return false;
    node = it->second.get();
  }
  return !node->chain.empty();
}

void PrefixTree::insert(const int* tokens, std::int64_t len,
                        const std::vector<std::int32_t>& chain,
                        std::int32_t partial_tail) {
  const std::int64_t bt = pool_->block_tokens();
  if (len <= 0) {
    if (partial_tail >= 0) pool_->decref(partial_tail);
    return;
  }
  DPOAF_CHECK(static_cast<std::int64_t>(chain.size()) >= len / bt);
  // Without a partial-tail block there is nothing to anchor past the last
  // full-block boundary, so don't grow unprunable nodes there.
  if (partial_tail < 0) len = (len / bt) * bt;
  Node* node = root_.get();
  bool tail_consumed = false;
  for (std::int64_t i = 0; i < len; ++i) {
    auto& child = node->children[tokens[i]];
    if (!child) {
      child = std::make_unique<Node>();
      child->parent = node;
      child->token = tokens[i];
      child->depth = node->depth + 1;
    }
    node = child.get();
    const std::int64_t depth = i + 1;
    const bool boundary = depth % bt == 0;
    const bool final_partial = depth == len && !boundary;
    if (!boundary && !final_partial) continue;
    if (!node->chain.empty()) {
      // Same tokens from position 0 produce bit-identical K/V, so the
      // existing anchor is as good as ours — just refresh its LRU slot.
      touch(node);
      continue;
    }
    if (boundary) {
      const std::int64_t n_blocks = depth / bt;
      node->chain.assign(chain.begin(), chain.begin() + n_blocks);
      for (const std::int32_t b : node->chain) pool_->incref(b);
      touch(node);
    } else if (partial_tail >= 0) {
      // Full blocks are shared references; the partial tail is the
      // caller-provided copy, whose reference we now own.
      node->chain.assign(chain.begin(), chain.begin() + len / bt);
      for (const std::int32_t b : node->chain) pool_->incref(b);
      node->chain.push_back(partial_tail);
      tail_consumed = true;
      touch(node);
    }
  }
  if (partial_tail >= 0 && !tail_consumed) pool_->decref(partial_tail);
}

void PrefixTree::release_anchor(Node* node) {
  for (const std::int32_t b : node->chain) pool_->decref(b);
  node->chain.clear();
  by_stamp_.erase(node->stamp);
  node->stamp = 0;
}

void PrefixTree::prune_upwards(Node* node) {
  while (node != root_.get() && node->children.empty() &&
         node->chain.empty()) {
    Node* parent = node->parent;
    parent->children.erase(node->token);  // destroys `node`
    node = parent;
  }
}

std::int64_t PrefixTree::evict_until_free(std::int64_t target_free) {
  std::int64_t freed = 0;
  while (pool_->free_blocks() < target_free && !by_stamp_.empty()) {
    Node* node = by_stamp_.begin()->second;
    const std::int64_t before = pool_->free_blocks();
    release_anchor(node);
    prune_upwards(node);
    const std::int64_t gained = pool_->free_blocks() - before;
    freed += gained;
    evicted_blocks_ += static_cast<std::uint64_t>(gained);
  }
  return freed;
}

void PrefixTree::clear() {
  while (!by_stamp_.empty()) {
    Node* node = by_stamp_.begin()->second;
    release_anchor(node);
    prune_upwards(node);
  }
}

}  // namespace dpoaf::nn
