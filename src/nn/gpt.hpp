// TinyGpt — a small GPT-style causal language model. This is the
// repository's stand-in for Llama2-7B (see DESIGN.md): DPO's optimization
// dynamics only require a causal LM with sampling and differentiable
// sequence log-probabilities, which this provides at laptop scale.
#pragma once

#include <vector>

#include "nn/modules.hpp"

namespace dpoaf::nn {

struct GptConfig {
  std::int64_t vocab_size = 0;
  std::int64_t d_model = 48;
  std::int64_t n_heads = 4;
  std::int64_t n_layers = 2;
  std::int64_t d_ff = 192;
  std::int64_t max_seq = 96;
  float init_scale = 0.02f;
};

/// Result of autoregressive decoding: the newly generated ids (without the
/// prompt, without eos) and whether decoding stopped early because
/// prompt + generated filled the max_seq context window — a truncated
/// step list would otherwise be scored as malformed with no trace of why.
struct Generation {
  std::vector<int> ids;
  bool truncated = false;
};

class TinyGpt {
 public:
  TinyGpt() = default;
  TinyGpt(GptConfig config, Rng& rng);

  /// Next-token logits [T, vocab] for a token id sequence (T ≤ max_seq).
  [[nodiscard]] Tensor forward(Tape* tape, const std::vector<int>& ids) const;

  /// Mean next-token cross-entropy over the whole sequence.
  [[nodiscard]] Tensor nll_loss(Tape* tape, const std::vector<int>& ids) const;

  /// Differentiable log P(ids[prompt_len:] | ids[:prompt_len]) — the
  /// quantity DPO optimizes. Scalar tensor.
  [[nodiscard]] Tensor response_log_prob(Tape* tape,
                                         const std::vector<int>& ids,
                                         std::int64_t prompt_len) const;

  /// Same value without recording gradients.
  [[nodiscard]] double response_log_prob_value(const std::vector<int>& ids,
                                               std::int64_t prompt_len) const;

  /// Autoregressive sampling with temperature and top-k (top_k ≤ 0 means
  /// full distribution). Stops at eos_id, max_new tokens, or the context
  /// limit (flagged as truncated). Logit ties are broken by token id so
  /// the top-k candidate set is identical across standard libraries.
  [[nodiscard]] Generation generate(const std::vector<int>& prompt,
                                    int max_new, float temperature, int top_k,
                                    int eos_id, Rng& rng) const;

  /// Greedy decoding (temperature → 0 limit).
  [[nodiscard]] Generation generate_greedy(const std::vector<int>& prompt,
                                           int max_new, int eos_id) const;

  /// Attach LoRA adapters to every Linear in the blocks and freeze all
  /// base parameters (embeddings and head included) — only the adapters
  /// train afterwards.
  void enable_lora(std::int64_t rank, float alpha, Rng& rng);
  [[nodiscard]] bool lora_enabled() const { return lora_rank_ > 0; }

  [[nodiscard]] ParamList parameters() const;
  [[nodiscard]] ParamList trainable_parameters() const;
  [[nodiscard]] std::size_t parameter_count() const;
  [[nodiscard]] std::size_t trainable_parameter_count() const;

  /// Flat snapshot of every parameter (canonical order) / restore. Used
  /// for reference-model cloning and the every-20-epochs checkpoints.
  [[nodiscard]] std::vector<float> state() const;
  void load_state(const std::vector<float>& state);

  /// Deep copy (same config, LoRA layout and weights, independent storage).
  [[nodiscard]] TinyGpt clone() const;

  [[nodiscard]] const GptConfig& config() const { return config_; }

 private:
  friend class DecodeSession;
  GptConfig config_;
  Tensor tok_emb_;  // [vocab, d]
  Tensor pos_emb_;  // [max_seq, d]
  std::vector<TransformerBlock> blocks_;
  LayerNorm ln_f_;
  Linear head_;  // [d, vocab]
  std::int64_t lora_rank_ = 0;
  float lora_alpha_ = 0.0f;
};

}  // namespace dpoaf::nn
