// AdamW (decoupled weight decay) over an explicit parameter list.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace dpoaf::nn {

struct AdamWConfig {
  float lr = 3e-4f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
  float grad_clip = 1.0f;  // global-norm clip; ≤ 0 disables
};

class AdamW {
 public:
  AdamW(std::vector<tensor::Tensor> params, AdamWConfig config);

  /// Apply one update from the accumulated gradients.
  void step();
  /// Zero every parameter's gradient buffer.
  void zero_grad();

  void set_lr(float lr) { config_.lr = lr; }
  [[nodiscard]] float lr() const { return config_.lr; }
  [[nodiscard]] std::int64_t steps_taken() const { return t_; }
  /// Global gradient norm observed at the last step() (pre-clipping).
  [[nodiscard]] double last_grad_norm() const { return last_grad_norm_; }

  /// Per-parameter first/second-moment buffers in parameter-list order —
  /// the optimizer state a durable checkpoint must carry alongside the
  /// weights for resumed training to be bitwise-identical.
  [[nodiscard]] const std::vector<std::vector<float>>& moments_m() const {
    return m_;
  }
  [[nodiscard]] const std::vector<std::vector<float>>& moments_v() const {
    return v_;
  }
  /// Restore moments and step count captured by a checkpoint. The buffer
  /// layout must match this optimizer's parameter list exactly.
  void load_state(const std::vector<std::vector<float>>& m,
                  const std::vector<std::vector<float>>& v,
                  std::int64_t steps);

 private:
  std::vector<tensor::Tensor> params_;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
  AdamWConfig config_;
  std::int64_t t_ = 0;
  double last_grad_norm_ = 0.0;
};

}  // namespace dpoaf::nn
