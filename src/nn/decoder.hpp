// Incremental decoding with per-layer KV caches. TinyGpt::forward
// recomputes the whole prefix for every generated token (O(T³·d) per
// response); a DecodeSession feeds one token at a time, caching each
// layer's keys and values, for O(T²·d) generation — the same optimization
// every production LLM server applies. Inference-only (no tape).
//
// Numerical note: the cached path accumulates in a different order than
// the batch forward, so logits agree to float tolerance (~1e-4), not
// bit-exactly; the test suite checks closeness and identical greedy
// decodes.
#pragma once

#include <vector>

#include "nn/gpt.hpp"

namespace dpoaf::nn {

/// Sample one token id from a next-token logit row with temperature and
/// top-k truncation — the exact procedure TinyGpt::generate applies (the
/// top-k candidate set breaks logit ties by ascending token id). Shared by
/// the batch sampler and the serve scheduler so both paths stay bitwise
/// interchangeable. Requires temperature > 0; top_k <= 0 keeps the full
/// distribution.
int sample_token(const float* logits, std::int64_t vocab, float temperature,
                 int top_k, Rng& rng);

/// Greedy argmax over a logit row; ties go to the lowest token id, matching
/// TinyGpt::generate_greedy.
int argmax_token(const float* logits, std::int64_t vocab);

class DecodeSession {
 public:
  /// Binds to `model` (which must outlive the session). The session
  /// snapshot includes LoRA adapters if enabled.
  explicit DecodeSession(const TinyGpt& model);

  /// Feed one token; returns the next-token logits (vocab_size floats).
  /// Position advances automatically; throws past max_seq.
  const std::vector<float>& step(int token_id);

  /// Number of tokens consumed so far.
  [[nodiscard]] std::int64_t position() const { return position_; }

  /// Reset to an empty prefix (caches cleared, position 0).
  void reset();

 private:
  const TinyGpt& model_;
  std::int64_t position_ = 0;
  // Per layer: cached keys/values, laid out [t * d_model + j] with all
  // heads packed contiguously (head h occupies columns [h*dh, (h+1)*dh)).
  std::vector<std::vector<float>> k_cache_;
  std::vector<std::vector<float>> v_cache_;
  std::vector<float> logits_;
  // Scratch buffers reused across steps.
  std::vector<float> x_, h_, qkv_, attn_out_, mlp_;
};

}  // namespace dpoaf::nn
