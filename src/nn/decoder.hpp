// Incremental decoding over block-paged KV storage. TinyGpt::forward
// recomputes the whole prefix for every generated token (O(T³·d) per
// response); a DecodeSession feeds one token at a time, caching each
// layer's keys and values, for O(T²·d) generation — the same optimization
// every production LLM server applies. Inference-only (no tape).
//
// Storage is a KvBlockPool block table rather than contiguous per-layer
// vectors (see nn/kv_cache.hpp): position p lives in row p % block_tokens
// of block table[p / block_tokens]. A standalone session owns a private,
// exactly-sized pool; the serve layer instead passes a shared pool so
// concurrent requests can adopt each other's prompt-prefix blocks
// (copy-on-write isolates appends into shared blocks). Attention walks
// positions in the same order and with the same arithmetic as the old
// contiguous layout, so logits are bit-identical across block sizes and
// sharing decisions.
//
// Numerical note: the cached path accumulates in a different order than
// the batch forward, so logits agree to float tolerance (~1e-4), not
// bit-exactly; the test suite checks closeness and identical greedy
// decodes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/gpt.hpp"
#include "nn/kv_cache.hpp"

namespace dpoaf::nn {

/// Sample one token id from a next-token logit row with temperature and
/// top-k truncation — the exact procedure TinyGpt::generate applies (the
/// top-k candidate set breaks logit ties by ascending token id). Shared by
/// the batch sampler and the serve scheduler so both paths stay bitwise
/// interchangeable. Requires temperature > 0; top_k <= 0 keeps the full
/// distribution.
int sample_token(const float* logits, std::int64_t vocab, float temperature,
                 int top_k, Rng& rng);

/// Greedy argmax over a logit row; ties go to the lowest token id, matching
/// TinyGpt::generate_greedy.
int argmax_token(const float* logits, std::int64_t vocab);

class DecodeSession {
 public:
  /// Binds to `model` (which must outlive the session). With `pool` null
  /// the session owns a private pool sized for one max_seq sequence at
  /// `block_tokens` tokens per block (0 picks a default); with a shared
  /// pool the session allocates, adopts, and releases that pool's blocks
  /// and `block_tokens` is taken from the pool.
  explicit DecodeSession(const TinyGpt& model, KvBlockPool* pool = nullptr,
                         std::int64_t block_tokens = 0);
  ~DecodeSession();

  DecodeSession(const DecodeSession&) = delete;
  DecodeSession& operator=(const DecodeSession&) = delete;

  /// Feed one token; returns the next-token logits (vocab_size floats).
  /// Position advances automatically; throws past max_seq.
  const std::vector<float>& step(int token_id);

  /// Number of tokens consumed so far.
  [[nodiscard]] std::int64_t position() const { return position_; }

  /// Reset to an empty prefix (all block references released, position 0).
  void reset();

  /// Install an already-computed prefix: `blocks` hold the K/V of the
  /// first `tokens` positions and the session takes ownership of one
  /// reference per block (the caller must have increffed them, e.g. via
  /// PrefixTree::match). Only valid on a fresh/reset session. If the last
  /// block is partially filled and shared, the first append copies it
  /// (copy-on-write) so other readers never observe the write.
  void adopt_prefix(const std::vector<std::int32_t>& blocks,
                    std::int64_t tokens);

  /// The block chain backing positions [0, position()).
  [[nodiscard]] const std::vector<std::int32_t>& block_table() const {
    return table_;
  }

  /// True while the tail block is (or may be) shared, i.e. the next step
  /// will allocate a copy-on-write replacement. The serve scheduler folds
  /// this into its free-block reservation.
  [[nodiscard]] bool pending_cow() const { return pending_cow_; }

  /// Copy-on-write block copies performed since construction/reset.
  [[nodiscard]] std::int64_t cow_copies() const { return cow_copies_; }

  [[nodiscard]] const KvBlockPool& pool() const { return *pool_; }

 private:
  const TinyGpt& model_;
  std::unique_ptr<KvBlockPool> owned_pool_;  // null when pool is shared
  KvBlockPool* pool_;
  std::int64_t position_ = 0;
  std::vector<std::int32_t> table_;
  bool pending_cow_ = false;
  std::int64_t cow_copies_ = 0;
  std::vector<float> logits_;
  // Scratch buffers reused across steps (scores_ holds the per-head
  // attention row — sized to max_seq once, never reallocated per token).
  std::vector<float> x_, h_, qkv_, attn_out_, mlp_, scores_;
};

}  // namespace dpoaf::nn
