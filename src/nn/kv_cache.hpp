// Block-paged KV storage with copy-on-write prefix sharing — the
// Orca→vLLM step for the serve layer.
//
// A KvBlockPool owns a fixed budget of fixed-size token blocks. Each block
// holds `block_tokens` rows of keys and values for every layer, so one
// block id names the same token span across the whole model. DecodeSession
// maps positions to storage through a per-sequence block table
// (position p lives in block table[p / block_tokens], row p % block_tokens)
// instead of a private contiguous buffer, which makes three things
// possible:
//
//   * memory-bounded admission — a request is admitted when enough free
//     blocks exist, not when a whole max_seq-sized slab does;
//   * prefix sharing — two sequences with a common token prefix can point
//     their tables at the same physical blocks (refcounted), so shared
//     scenario preambles are prefilled once and reused;
//   * copy-on-write — a sequence that needs to append into a shared,
//     partially-filled block first copies the valid rows into a fresh
//     block, leaving every other reader untouched.
//
// The PrefixTree is the sharing index: a trie keyed on token ids from
// position 0 (K/V rows are position-dependent, so only whole prefixes are
// shareable). Completed prefills anchor their block chains at every
// full-block boundary plus the full prompt depth; admission walks the trie
// and adopts the deepest anchored chain covering the new prompt. Because
// decode is deterministic scalar code, an adopted block holds bit-exactly
// the rows a fresh prefill would have produced — sharing changes how much
// prefill compute runs, never the bytes a request returns.
//
// Thread safety: block allocate/release/refcount mutate shared state under
// an internal mutex (crossing a block boundary happens once per
// block_tokens decode steps, so the lock is far off the hot path); the raw
// k()/v() row storage is lock-free — callers only touch rows their table
// entitles them to. The PrefixTree is NOT thread-safe; the serve scheduler
// confines all matching/insertion/eviction to its own thread.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace dpoaf::nn {

/// Fixed pool of KV blocks. Block ids are indices into preallocated
/// storage; storage never moves, so pointers from k()/v() stay valid for
/// the pool's lifetime.
class KvBlockPool {
 public:
  /// `block_tokens` rows per block, `total_blocks` blocks, each row
  /// holding `d_model` floats of keys and values per layer.
  KvBlockPool(std::int64_t n_layers, std::int64_t d_model,
              std::int64_t block_tokens, std::int64_t total_blocks);

  KvBlockPool(const KvBlockPool&) = delete;
  KvBlockPool& operator=(const KvBlockPool&) = delete;

  /// Take a free block (refcount 1). Throws when the pool is exhausted —
  /// the serve layer's admission reservations make that a logic error,
  /// not an overload condition.
  [[nodiscard]] std::int32_t allocate();

  /// Add / drop a reference. A block whose refcount reaches zero returns
  /// to the free list (ids are recycled LIFO).
  void incref(std::int32_t block);
  void decref(std::int32_t block);

  /// Current refcount (0 = free). A reader that holds its own reference
  /// can use this to decide copy-on-write: >1 means someone else also
  /// sees the block.
  [[nodiscard]] int refcount(std::int32_t block) const;

  /// Copy the first `rows` K and V rows of `src` into `dst` for every
  /// layer — the copy half of copy-on-write.
  void copy_rows(std::int32_t src, std::int32_t dst, std::int64_t rows);

  /// Key/value storage for `block` at `layer`: block_tokens rows of
  /// d_model floats, row-major.
  [[nodiscard]] float* k(std::int64_t layer, std::int32_t block) {
    return k_[static_cast<std::size_t>(layer)].data() + slab_offset(block);
  }
  [[nodiscard]] float* v(std::int64_t layer, std::int32_t block) {
    return v_[static_cast<std::size_t>(layer)].data() + slab_offset(block);
  }
  [[nodiscard]] const float* k(std::int64_t layer, std::int32_t block) const {
    return k_[static_cast<std::size_t>(layer)].data() + slab_offset(block);
  }
  [[nodiscard]] const float* v(std::int64_t layer, std::int32_t block) const {
    return v_[static_cast<std::size_t>(layer)].data() + slab_offset(block);
  }

  [[nodiscard]] std::int64_t block_tokens() const { return block_tokens_; }
  [[nodiscard]] std::int64_t total_blocks() const { return total_blocks_; }
  [[nodiscard]] std::int64_t free_blocks() const;
  [[nodiscard]] std::int64_t d_model() const { return d_model_; }

  /// Blocks needed to hold `tokens` positions at this pool's block size.
  [[nodiscard]] std::int64_t blocks_for(std::int64_t tokens) const {
    return (tokens + block_tokens_ - 1) / block_tokens_;
  }

 private:
  [[nodiscard]] std::int64_t slab_offset(std::int32_t block) const {
    return static_cast<std::int64_t>(block) * block_tokens_ * d_model_;
  }

  std::int64_t n_layers_;
  std::int64_t d_model_;
  std::int64_t block_tokens_;
  std::int64_t total_blocks_;
  // Per layer: total_blocks * block_tokens * d_model floats.
  std::vector<std::vector<float>> k_, v_;

  mutable std::mutex mutex_;       // guards refcounts_ and free_
  std::vector<int> refcounts_;     // by block id; 0 = free
  std::vector<std::int32_t> free_;  // free list (LIFO)
};

/// Trie over token ids indexing cached prompt prefixes by the block
/// chains that hold their K/V. Single-threaded by contract (see file
/// comment). Every reference the tree holds is counted in the pool, so
/// anchored blocks survive their donor request's retirement until
/// evicted.
class PrefixTree {
 public:
  explicit PrefixTree(KvBlockPool* pool);
  ~PrefixTree();

  PrefixTree(const PrefixTree&) = delete;
  PrefixTree& operator=(const PrefixTree&) = delete;

  /// Result of a prefix lookup: `blocks` covers `tokens` leading
  /// positions of the query. Each returned block has been increffed for
  /// the caller (typically handed straight to DecodeSession::adopt_prefix,
  /// whose release path drops them). tokens == 0 means a miss.
  struct Match {
    std::vector<std::int32_t> blocks;
    std::int64_t tokens = 0;
  };

  /// Deepest cached prefix of prompt[0, limit). If the walk matches all
  /// `limit` tokens, a longer anchored chain may be adopted partially —
  /// the caller uses only the first `tokens` rows and copy-on-write
  /// isolates any append.
  [[nodiscard]] Match match(const std::vector<int>& prompt,
                            std::int64_t limit);

  /// True when tokens[0, len) already has an exact-depth anchor — lets a
  /// caller skip the partial-tail copy that insert() would keep alive.
  [[nodiscard]] bool has_anchor(const int* tokens, std::int64_t len) const;

  /// Anchor `chain` (blocks covering tokens[0, len)) at every full-block
  /// boundary of tokens[0, len) and, when `partial_tail` >= 0, at depth
  /// `len` itself with the partial last block. Full blocks are increffed
  /// by the tree; ownership of the `partial_tail` reference transfers to
  /// the tree (the caller must have allocated or increffed it). Existing
  /// anchors are refreshed, not duplicated.
  void insert(const int* tokens, std::int64_t len,
              const std::vector<std::int32_t>& chain,
              std::int32_t partial_tail);

  /// Drop least-recently-used anchors until the pool has at least
  /// `target_free` free blocks or no anchors remain. Returns the number
  /// of pool blocks actually freed (shared blocks survive eviction until
  /// their other references drop).
  std::int64_t evict_until_free(std::int64_t target_free);

  /// Release every anchor (used at shutdown and in tests).
  void clear();

  [[nodiscard]] std::int64_t anchors() const { return by_stamp_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t tokens_reused() const { return tokens_reused_; }
  [[nodiscard]] std::uint64_t evicted_blocks() const {
    return evicted_blocks_;
  }

 private:
  struct Node {
    Node* parent = nullptr;
    int token = -1;
    std::int64_t depth = 0;  // tokens from the root
    std::map<int, std::unique_ptr<Node>> children;
    // Anchor: blocks covering positions [0, depth). Empty = no anchor.
    std::vector<std::int32_t> chain;
    std::uint64_t stamp = 0;  // LRU key while anchored (0 = unanchored)
  };

  void touch(Node* node);
  void release_anchor(Node* node);
  void prune_upwards(Node* node);

  KvBlockPool* pool_;
  std::unique_ptr<Node> root_;
  std::map<std::uint64_t, Node*> by_stamp_;  // anchored nodes, LRU order
  std::uint64_t next_stamp_ = 1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t tokens_reused_ = 0;
  std::uint64_t evicted_blocks_ = 0;
};

}  // namespace dpoaf::nn
