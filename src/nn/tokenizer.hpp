// Word-level tokenizer for the driving-instruction corpus, with the
// Llama-style special tokens the paper's Appendix E prompt format uses
// (<s>, </s>, [INST], [/INST]) plus a newline token so numbered step lists
// survive the round trip.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dpoaf::nn {

class Tokenizer {
 public:
  /// Build a vocabulary from the given texts (plus the special tokens and
  /// <unk>). Tokenization is lowercase word-level with '.', ',' split off.
  static Tokenizer build(const std::vector<std::string>& texts);

  [[nodiscard]] std::vector<int> encode(std::string_view text) const;
  [[nodiscard]] std::string decode(const std::vector<int>& ids) const;

  [[nodiscard]] std::size_t vocab_size() const { return words_.size(); }
  [[nodiscard]] int bos() const { return bos_; }
  [[nodiscard]] int eos() const { return eos_; }
  [[nodiscard]] int inst_open() const { return inst_open_; }
  [[nodiscard]] int inst_close() const { return inst_close_; }
  [[nodiscard]] int newline() const { return nl_; }
  [[nodiscard]] int unk() const { return unk_; }

  [[nodiscard]] int id_of(std::string_view word) const;  // unk() if absent
  [[nodiscard]] const std::string& word_of(int id) const;

  /// Raw word split used by build/encode (exposed for tests).
  static std::vector<std::string> words(std::string_view text);

 private:
  int add(const std::string& word);

  std::vector<std::string> words_;
  std::unordered_map<std::string, int> index_;
  int bos_ = 0, eos_ = 0, inst_open_ = 0, inst_close_ = 0, nl_ = 0, unk_ = 0;
};

}  // namespace dpoaf::nn
