#include "nn/modules.hpp"

#include <cmath>

#include "util/check.hpp"

namespace dpoaf::nn {

namespace ops = tensor::ops;

Linear::Linear(std::int64_t in, std::int64_t out, Rng& rng,
               float init_scale) {
  weight = Tensor::randn({in, out}, rng, init_scale).set_requires_grad(true);
  bias = Tensor::zeros({1, out}).set_requires_grad(true);
}

Tensor Linear::forward(Tape* tape, const Tensor& x) const {
  Tensor y = ops::add_rowwise(tape, ops::matmul(tape, x, weight), bias);
  if (lora_rank_ > 0) {
    const Tensor delta = ops::scale(
        tape, ops::matmul(tape, ops::matmul(tape, x, lora_a), lora_b),
        lora_scale_);
    y = ops::add(tape, y, delta);
  }
  return y;
}

void Linear::enable_lora(std::int64_t rank, float alpha, Rng& rng) {
  DPOAF_CHECK_MSG(rank > 0, "LoRA rank must be positive");
  DPOAF_CHECK_MSG(lora_rank_ == 0, "LoRA already enabled");
  const std::int64_t in = weight.rows();
  const std::int64_t out = weight.cols();
  // A Gaussian, B zero: the adapter starts as the identity update.
  lora_a = Tensor::randn({in, rank}, rng, 0.02f).set_requires_grad(true);
  lora_b = Tensor::zeros({rank, out}).set_requires_grad(true);
  lora_rank_ = rank;
  lora_scale_ = alpha / static_cast<float>(rank);
  weight.set_requires_grad(false);
  bias.set_requires_grad(false);
}

void Linear::collect_params(ParamList& out) const {
  out.push_back(weight);
  out.push_back(bias);
  if (lora_rank_ > 0) {
    out.push_back(lora_a);
    out.push_back(lora_b);
  }
}

LayerNorm::LayerNorm(std::int64_t dim) {
  gamma = Tensor::full({1, dim}, 1.0f).set_requires_grad(true);
  beta = Tensor::zeros({1, dim}).set_requires_grad(true);
}

Tensor LayerNorm::forward(Tape* tape, const Tensor& x) const {
  return ops::layer_norm(tape, x, gamma, beta);
}

void LayerNorm::collect_params(ParamList& out) const {
  out.push_back(gamma);
  out.push_back(beta);
}

CausalSelfAttention::CausalSelfAttention(std::int64_t d_model,
                                         std::int64_t n_heads, Rng& rng,
                                         float init_scale)
    : qkv(d_model, 3 * d_model, rng, init_scale),
      proj(d_model, d_model, rng, init_scale),
      n_heads_(n_heads) {
  DPOAF_CHECK_MSG(d_model % n_heads == 0,
                  "d_model must be divisible by n_heads");
}

Tensor CausalSelfAttention::forward(Tape* tape, const Tensor& x) const {
  const std::int64_t d = x.cols();
  const std::int64_t dh = d / n_heads_;
  const Tensor fused = qkv.forward(tape, x);  // [T, 3d]

  std::vector<Tensor> head_outputs;
  head_outputs.reserve(static_cast<std::size_t>(n_heads_));
  const float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(dh));
  for (std::int64_t h = 0; h < n_heads_; ++h) {
    const Tensor q = ops::slice_cols(tape, fused, h * dh, dh);
    const Tensor k = ops::slice_cols(tape, fused, d + h * dh, dh);
    const Tensor v = ops::slice_cols(tape, fused, 2 * d + h * dh, dh);
    const Tensor scores = ops::scale(
        tape, ops::matmul(tape, q, ops::transpose(tape, k)), inv_sqrt);
    const Tensor attn = ops::causal_softmax_rows(tape, scores);
    head_outputs.push_back(ops::matmul(tape, attn, v));
  }
  return proj.forward(tape, ops::concat_cols(tape, head_outputs));
}

void CausalSelfAttention::enable_lora(std::int64_t rank, float alpha,
                                      Rng& rng) {
  qkv.enable_lora(rank, alpha, rng);
  proj.enable_lora(rank, alpha, rng);
}

void CausalSelfAttention::collect_params(ParamList& out) const {
  qkv.collect_params(out);
  proj.collect_params(out);
}

TransformerBlock::TransformerBlock(std::int64_t d_model, std::int64_t n_heads,
                                   std::int64_t d_ff, Rng& rng,
                                   float init_scale)
    : ln1(d_model),
      ln2(d_model),
      attn(d_model, n_heads, rng, init_scale),
      fc1(d_model, d_ff, rng, init_scale),
      fc2(d_ff, d_model, rng, init_scale) {}

Tensor TransformerBlock::forward(Tape* tape, const Tensor& x) const {
  Tensor h = ops::add(tape, x, attn.forward(tape, ln1.forward(tape, x)));
  const Tensor mlp = fc2.forward(
      tape, ops::gelu(tape, fc1.forward(tape, ln2.forward(tape, h))));
  return ops::add(tape, h, mlp);
}

void TransformerBlock::enable_lora(std::int64_t rank, float alpha,
                                   Rng& rng) {
  attn.enable_lora(rank, alpha, rng);
  fc1.enable_lora(rank, alpha, rng);
  fc2.enable_lora(rank, alpha, rng);
}

void TransformerBlock::collect_params(ParamList& out) const {
  ln1.collect_params(out);
  ln2.collect_params(out);
  attn.collect_params(out);
  fc1.collect_params(out);
  fc2.collect_params(out);
}

}  // namespace dpoaf::nn
