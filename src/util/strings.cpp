#include "util/strings.hpp"

#include <algorithm>
#include <cctype>

namespace dpoaf {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string replace_all(std::string s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return s;
  std::size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0) return m;
  if (m == 0) return n;
  std::vector<std::size_t> prev(m + 1);
  std::vector<std::size_t> cur(m + 1);
  for (std::size_t j = 0; j <= m; ++j) prev[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

double normalized_edit_distance(std::string_view a, std::string_view b) {
  const std::size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 0.0;
  return static_cast<double>(edit_distance(a, b)) /
         static_cast<double>(longest);
}

}  // namespace dpoaf
