// Sharded, mutex-striped memoization cache for the formal-feedback hot
// path (see DESIGN.md "Feedback memoization"). Keys hash to one of a fixed
// set of shards, each guarded by its own mutex, so concurrent scoring
// threads only contend when they touch the same shard. Every shard is
// FIFO-bounded: once a shard holds `capacity_per_shard` entries, inserting
// a new key evicts the oldest one, so the cache's footprint is capped at
// shards × capacity_per_shard entries regardless of workload.
//
// The cache is only correct for *pure* functions of the key: a hit returns
// a copy of a previously computed value, so hits must be indistinguishable
// from recomputation. `get_or_compute` is single-flight: the first thread
// to miss a key computes it (outside the shard lock) while later arrivals
// block on the shard's condition variable and take the result as a hit.
// Each key is computed exactly once, so the hit/miss counters are
// deterministic — misses = unique keys — at any thread count (as long as
// nothing is evicted), which keeps bench output byte-identical across
// DPOAF_THREADS settings.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace dpoaf::util {

/// Counter snapshot of a cache's activity. hits + misses = lookups.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;

  CacheStats& operator+=(const CacheStats& other);
  /// Fraction of lookups that hit; 0 when there were no lookups.
  [[nodiscard]] double hit_rate() const;
  /// "hits=120 misses=16 hit_rate=88.2% inserts=16 evictions=0"
  [[nodiscard]] std::string summary() const;
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedCache {
 public:
  /// `capacity_per_shard` bounds each shard (≥ 1); `shards` is rounded up
  /// to a power of two so the shard index is a mask of the hash.
  explicit ShardedCache(std::size_t capacity_per_shard = 1024,
                        std::size_t shards = 16)
      : capacity_(capacity_per_shard) {
    DPOAF_CHECK(capacity_per_shard >= 1);
    DPOAF_CHECK(shards >= 1);
    std::size_t n = 1;
    while (n < shards) n <<= 1;
    shards_ = std::vector<Shard>(n);
  }

  /// Copy of the cached value, or nullopt. Counts a hit or a miss.
  [[nodiscard]] std::optional<Value> find(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (auto it = shard.map.find(key); it != shard.map.end()) {
      ++shard.stats.hits;
      return it->second;
    }
    ++shard.stats.misses;
    return std::nullopt;
  }

  /// Insert (first writer wins on a racing key). Evicts the shard's oldest
  /// entry when the shard is full. Counts an insert; a duplicate key counts
  /// nothing and changes nothing.
  void insert(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    insert_locked(shard, key, std::move(value));
  }

  /// find(), or compute-and-insert on a miss. Single-flight: concurrent
  /// callers of a missing key block until the first one's compute (run
  /// outside the shard lock) lands, then take it as a hit — the callback
  /// runs exactly once per key and must be a pure function of `key`.
  template <typename Fn>
  Value get_or_compute(const Key& key, Fn&& compute) {
    Shard& shard = shard_for(key);
    std::unique_lock<std::mutex> lock(shard.mutex);
    for (;;) {
      if (auto it = shard.map.find(key); it != shard.map.end()) {
        ++shard.stats.hits;
        return it->second;
      }
      if (shard.inflight.find(key) == shard.inflight.end()) break;
      // Another thread owns this key's compute; its result is our hit.
      shard.cv.wait(lock);
    }
    ++shard.stats.misses;
    shard.inflight.insert(key);
    lock.unlock();
    std::optional<Value> value;
    try {
      value.emplace(compute());
    } catch (...) {
      lock.lock();
      shard.inflight.erase(key);
      shard.cv.notify_all();
      throw;
    }
    lock.lock();
    insert_locked(shard, key, *value);
    shard.inflight.erase(key);
    shard.cv.notify_all();
    return std::move(*value);
  }

  [[nodiscard]] std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      n += shard.map.size();
    }
    return n;
  }

  /// Upper bound on size(): shards × capacity_per_shard.
  [[nodiscard]] std::size_t capacity() const {
    return capacity_ * shards_.size();
  }

  void clear() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.map.clear();
      shard.fifo.clear();
    }
  }

  [[nodiscard]] CacheStats stats() const {
    CacheStats total;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      total += shard.stats;
    }
    return total;
  }

  void reset_stats() {
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      shard.stats = CacheStats{};
    }
  }

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;  // wakes waiters when an in-flight key lands
    std::unordered_map<Key, Value, Hash> map;
    std::unordered_set<Key, Hash> inflight;  // keys being computed right now
    std::deque<Key> fifo;  // insertion order, for bounded FIFO eviction
    CacheStats stats;
  };

  // Caller holds shard.mutex. Evicts the shard's oldest entry when full;
  // a duplicate key counts nothing and changes nothing.
  void insert_locked(Shard& shard, const Key& key, Value value) {
    if (shard.map.find(key) != shard.map.end()) return;
    if (shard.map.size() >= capacity_) {
      shard.map.erase(shard.fifo.front());
      shard.fifo.pop_front();
      ++shard.stats.evictions;
    }
    shard.map.emplace(key, std::move(value));
    shard.fifo.push_back(key);
    ++shard.stats.inserts;
  }

  Shard& shard_for(const Key& key) {
    // Mix the hash before masking: std::hash<integral> is the identity on
    // common standard libraries, and sequential keys would otherwise pile
    // into adjacent shards' low bits.
    std::uint64_t h = static_cast<std::uint64_t>(Hash{}(key));
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return shards_[h & (shards_.size() - 1)];
  }

  std::size_t capacity_;
  std::vector<Shard> shards_;
};

}  // namespace dpoaf::util
