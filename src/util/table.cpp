#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace dpoaf {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  DPOAF_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                  "row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  os << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2) << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t w : widths) total += w + 2;
    os << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
}

void TextTable::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const auto& row : rows_) emit(row);
}

}  // namespace dpoaf
