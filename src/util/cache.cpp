#include "util/cache.hpp"

#include <sstream>

namespace dpoaf::util {

CacheStats& CacheStats::operator+=(const CacheStats& other) {
  hits += other.hits;
  misses += other.misses;
  inserts += other.inserts;
  evictions += other.evictions;
  return *this;
}

double CacheStats::hit_rate() const {
  const std::uint64_t lookups = hits + misses;
  if (lookups == 0) return 0.0;
  return static_cast<double>(hits) / static_cast<double>(lookups);
}

std::string CacheStats::summary() const {
  std::ostringstream os;
  os << "hits=" << hits << " misses=" << misses << " hit_rate=";
  os.precision(1);
  os << std::fixed << hit_rate() * 100.0 << "% inserts=" << inserts
     << " evictions=" << evictions;
  return os.str();
}

}  // namespace dpoaf::util
