// Small statistics helpers used across benches and the calibration module.
#pragma once

#include <cstddef>
#include <vector>

namespace dpoaf {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 for an empty vector.
double mean_of(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two samples.
double stddev_of(const std::vector<double>& xs);

/// Linear-interpolation quantile, q in [0, 1]. Requires non-empty input.
double quantile_of(std::vector<double> xs, double q);

/// Pearson correlation of two equal-length vectors; 0 if degenerate.
double pearson(const std::vector<double>& xs, const std::vector<double>& ys);

/// Spearman rank correlation (ties get average ranks).
double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace dpoaf
