#include "util/threadpool.hpp"

#include <atomic>
#include <cstdlib>
#include <memory>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::util {

namespace {

// True while the current thread is executing a parallel_for chunk (worker
// or caller). Nested parallel_for calls detect this and run inline.
thread_local bool t_in_parallel_region = false;

int resolve_default_threads() {
  if (const char* env = std::getenv("DPOAF_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool::ThreadPool(int threads) : threads_(threads < 1 ? 1 : threads) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  t_in_parallel_region = true;  // work items are always chunk bodies
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down, queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (begin >= end) return;
  // Scheduling telemetry only — counts and queue depth, never timing that
  // could feed back into the computation (see DESIGN.md "Observability").
  static obs::Counter& calls = obs::counter("threadpool.parallel_for.calls");
  static obs::Counter& inline_calls =
      obs::counter("threadpool.parallel_for.inline");
  static obs::Counter& jobs = obs::counter("threadpool.jobs");
  static obs::Gauge& depth_max = obs::gauge("threadpool.queue_depth.max");
  static obs::Gauge& pool_threads = obs::gauge("threadpool.threads");
  calls.add();
  pool_threads.set(threads_);
  const std::int64_t n = end - begin;
  if (grain < 1) grain = 1;
  std::int64_t chunks = (n + grain - 1) / grain;
  if (chunks > threads_) chunks = threads_;
  if (chunks <= 1 || t_in_parallel_region || workers_.empty()) {
    // Serial (or nested) path: one chunk, the loop body unchanged.
    inline_calls.add();
    fn(begin, end);
    return;
  }

  // Fixed contiguous partition: chunk c covers [begin + c·span, …), the
  // same split regardless of which thread runs which chunk.
  const std::int64_t span = (n + chunks - 1) / chunks;
  struct Completion {
    std::atomic<std::int64_t> remaining;
    std::mutex m;
    std::condition_variable done;
  };
  auto state = std::make_shared<Completion>();
  state->remaining.store(chunks - 1, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::int64_t c = 1; c < chunks; ++c) {
      const std::int64_t lo = begin + c * span;
      const std::int64_t hi = lo + span < end ? lo + span : end;
      queue_.push_back([state, &fn, lo, hi] {
        fn(lo, hi);
        if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> done_lock(state->m);
          state->done.notify_one();
        }
      });
    }
    jobs.add(static_cast<std::uint64_t>(chunks - 1));
    depth_max.record_max(static_cast<std::int64_t>(queue_.size()));
  }
  work_available_.notify_all();

  // The caller runs chunk 0 (marked as a parallel region so nested
  // parallel_for calls inline), then waits for the workers.
  t_in_parallel_region = true;
  fn(begin, begin + span < end ? begin + span : end);
  t_in_parallel_region = false;

  std::unique_lock<std::mutex> done_lock(state->m);
  state->done.wait(done_lock, [&state] {
    return state->remaining.load(std::memory_order_acquire) == 0;
  });
}

InlineComputeGuard::InlineComputeGuard() : prev_(t_in_parallel_region) {
  t_in_parallel_region = true;
}

InlineComputeGuard::~InlineComputeGuard() { t_in_parallel_region = prev_; }

namespace {

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

std::mutex& global_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(resolve_default_threads());
  return *slot;
}

void set_global_threads(int threads) {
  DPOAF_CHECK_MSG(threads >= 0, "thread count must be >= 0 (0 = auto)");
  const int n = threads == 0 ? resolve_default_threads() : threads;
  std::lock_guard<std::mutex> lock(global_mutex());
  auto& slot = global_slot();
  if (slot && slot->threads() == n) return;
  slot = std::make_unique<ThreadPool>(n);
}

int global_threads() { return global_pool().threads(); }

}  // namespace dpoaf::util
