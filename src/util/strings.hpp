// String helpers shared by the LTL parser, the semantic parser and the
// tokenizer. Kept deliberately allocation-simple; none of these sit on a
// hot path.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dpoaf {

/// Split on a single character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on runs of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

/// ASCII lowercase.
std::string to_lower(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Replace every occurrence of `from` with `to`.
std::string replace_all(std::string s, std::string_view from,
                        std::string_view to);

/// Levenshtein edit distance (O(len_a * len_b)).
std::size_t edit_distance(std::string_view a, std::string_view b);

/// Edit distance normalized to [0,1] by the longer length (0 = identical).
double normalized_edit_distance(std::string_view a, std::string_view b);

}  // namespace dpoaf
