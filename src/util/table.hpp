// Plain-text table / CSV emission for bench harnesses. Each bench prints
// the same rows/series the paper's figure reports, via these helpers, so
// all bench output shares one format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dpoaf {

/// Column-aligned text table with a title, printed to any ostream.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 4);

  void print(std::ostream& os) const;
  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dpoaf
