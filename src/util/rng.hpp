// Deterministic, seedable random number generation (xoshiro256**).
// All stochastic components of the library draw from this generator so that
// experiments are reproducible bit-for-bit given a seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace dpoaf {

/// splitmix64 — used to expand a single 64-bit seed into generator state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state PRNG.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2024'0229ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n) {
    DPOAF_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    DPOAF_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Box–Muller (no cached spare; simple and stateless).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-300) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(kTwoPi * u2);
  }

  /// Sample an index according to non-negative weights. Requires sum > 0.
  template <typename Container>
  std::size_t weighted(const Container& weights) {
    double total = 0.0;
    for (double w : weights) {
      DPOAF_CHECK(w >= 0.0);
      total += w;
    }
    DPOAF_CHECK_MSG(total > 0.0, "weighted(): weights must not all be zero");
    double r = uniform() * total;
    std::size_t i = 0;
    for (double w : weights) {
      if (r < w) return i;
      r -= w;
      ++i;
    }
    return i - 1;  // floating-point slack: return the last index
  }

  /// Fisher–Yates shuffle.
  template <typename Vec>
  void shuffle(Vec& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = below(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (e.g., one per worker/seed).
  Rng split() { return Rng((*this)() ^ 0x9E3779B97F4A7C15ULL); }

  /// The four 64-bit state words, exposed for durable checkpointing: a
  /// stream captured with state_words() and restored with
  /// set_state_words() continues exactly where it left off.
  [[nodiscard]] std::array<std::uint64_t, 4> state_words() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Restore a stream captured by state_words(). The all-zero state is
  /// a fixed point of xoshiro256** and can never be produced by reseed(),
  /// so it is rejected as a corrupted snapshot.
  void set_state_words(const std::array<std::uint64_t, 4>& words) {
    DPOAF_CHECK_MSG(words[0] | words[1] | words[2] | words[3],
                    "all-zero Rng state is invalid");
    for (std::size_t i = 0; i < 4; ++i) state_[i] = words[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace dpoaf
