// Fixed-size thread pool with a deterministic parallel-for primitive.
//
// Design constraints (see DESIGN.md "Threading model"):
//  - No work stealing and no dynamic scheduling of *result order*: callers
//    partition an index range into fixed contiguous chunks, each index is
//    processed by exactly one chunk, and every chunk runs the same code the
//    serial loop would. Reductions must stay within a chunk (partition over
//    the independent dimension), so single-thread and N-thread runs produce
//    bitwise-identical floats — no atomics on floats, ever.
//  - The pool is shared process-wide (global_pool()); ops grab it on the
//    fly so the tensor library needs no plumbing through call sites.
//  - Nested parallel_for calls run inline on the calling thread. This keeps
//    the scheduler trivial (no re-entrancy, no deadlock) and keeps outer
//    loops (per-pair, per-task) as the unit of parallelism.
//  - Thread count resolves, in priority order: explicit set_global_threads()
//    (e.g. from PipelineConfig::threads), the DPOAF_THREADS environment
//    variable, then std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dpoaf::util {

class ThreadPool {
 public:
  /// Total parallelism, including the calling thread: a pool of size n
  /// spawns n−1 workers. n < 1 is clamped to 1 (purely serial).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const { return threads_; }

  /// Partition [begin, end) into at most threads() contiguous chunks of at
  /// least `grain` indices each and run `fn(chunk_begin, chunk_end)` on
  /// each chunk; blocks until all chunks finish. The caller executes the
  /// first chunk itself. Runs fully inline when only one chunk results,
  /// when the pool is serial, or when called from inside another
  /// parallel_for (nesting).
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t, std::int64_t)>& fn);

 private:
  void worker_loop();

  int threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  bool shutting_down_ = false;
};

/// The process-wide pool. Created on first use with the resolved default
/// thread count (DPOAF_THREADS env var, else hardware_concurrency).
ThreadPool& global_pool();

/// Resize the global pool. threads == 0 re-resolves the default
/// (DPOAF_THREADS env var, else hardware_concurrency); threads >= 1 pins
/// the count. Must not be called while parallel work is in flight.
void set_global_threads(int threads);

/// Current size of the global pool (creating it if needed).
int global_threads();

/// RAII: mark the calling thread as a compute region, so every
/// parallel_for it makes runs inline (exactly as if it were a chunk body).
/// Dataflow stage workers (src/core/dataflow) wrap their per-item compute
/// in this so the stage's worker count — not the pool fan-out — is the
/// unit of parallelism, mirroring how the phased pipeline's per-task
/// chunks behave. Restores the previous state on destruction, so guards
/// nest safely.
class InlineComputeGuard {
 public:
  InlineComputeGuard();
  ~InlineComputeGuard();
  InlineComputeGuard(const InlineComputeGuard&) = delete;
  InlineComputeGuard& operator=(const InlineComputeGuard&) = delete;

 private:
  bool prev_;
};

/// Convenience: parallel_for on the global pool.
inline void parallel_for(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  global_pool().parallel_for(begin, end, grain, fn);
}

}  // namespace dpoaf::util
