#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace dpoaf {

void RunningStats::add(double x) {
  ++n_;
  if (n_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double stddev_of(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean_of(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double quantile_of(std::vector<double> xs, double q) {
  DPOAF_CHECK(!xs.empty());
  DPOAF_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double pearson(const std::vector<double>& xs, const std::vector<double>& ys) {
  DPOAF_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = mean_of(xs);
  const double my = mean_of(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

namespace {
std::vector<double> average_ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[idx[j + 1]] == xs[idx[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[idx[k]] = avg;
    i = j + 1;
  }
  return ranks;
}
}  // namespace

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  DPOAF_CHECK(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  return pearson(average_ranks(xs), average_ranks(ys));
}

}  // namespace dpoaf
