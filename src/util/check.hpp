// Lightweight contract checking. DPOAF_CHECK is always on (these guard
// library invariants and user-facing API misuse, not hot inner loops);
// DPOAF_DCHECK compiles away in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dpoaf {

/// Thrown when a library precondition or invariant is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace dpoaf

#define DPOAF_CHECK(expr)                                                     \
  do {                                                                        \
    if (!(expr))                                                              \
      ::dpoaf::detail::contract_fail("CHECK", #expr, __FILE__, __LINE__, ""); \
  } while (0)

#define DPOAF_CHECK_MSG(expr, msg)                                           \
  do {                                                                       \
    if (!(expr))                                                             \
      ::dpoaf::detail::contract_fail("CHECK", #expr, __FILE__, __LINE__,     \
                                     (msg));                                 \
  } while (0)

#ifdef NDEBUG
#define DPOAF_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define DPOAF_DCHECK(expr) DPOAF_CHECK(expr)
#endif
