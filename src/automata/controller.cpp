#include "automata/controller.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace dpoaf::automata {

CtrlStateId FsaController::add_state(std::string name) {
  // Formatted into a char buffer: literal+string concatenation here trips
  // GCC 12's -Wrestrict false positive at -O3 (GCC PR105651).
  if (name.empty()) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "q%zu", names_.size());
    name = buf;
  }
  names_.push_back(std::move(name));
  return static_cast<CtrlStateId>(names_.size() - 1);
}

void FsaController::set_initial(CtrlStateId q) {
  DPOAF_CHECK(q >= 0 && static_cast<std::size_t>(q) < names_.size());
  q0_ = q;
}

void FsaController::add_transition(CtrlStateId from, Guard guard,
                                   Symbol action, CtrlStateId to) {
  DPOAF_CHECK(from >= 0 && static_cast<std::size_t>(from) < names_.size());
  DPOAF_CHECK(to >= 0 && static_cast<std::size_t>(to) < names_.size());
  DPOAF_CHECK_MSG((guard.must_true & guard.must_false) == 0,
                  "guard requires a proposition both true and false");
  transitions_.push_back({from, guard, action, to});
}

const std::string& FsaController::name(CtrlStateId q) const {
  DPOAF_CHECK(q >= 0 && static_cast<std::size_t>(q) < names_.size());
  return names_[static_cast<std::size_t>(q)];
}

std::vector<ControllerMove> FsaController::moves(CtrlStateId q,
                                                 Symbol sigma) const {
  std::vector<ControllerMove> out;
  for (const auto& t : transitions_) {
    if (t.from != q || !t.guard.matches(sigma)) continue;
    out.push_back({t.action, t.to});
  }
  if (out.empty()) out.push_back({default_action_, q});
  return out;
}

ControllerMove FsaController::step(CtrlStateId q, Symbol sigma) const {
  for (const auto& t : transitions_) {
    if (t.from == q && t.guard.matches(sigma)) return {t.action, t.to};
  }
  return {default_action_, q};
}

std::string FsaController::describe(const Vocabulary& vocab) const {
  std::string out;
  out += "FSA controller: " + std::to_string(names_.size()) +
         " states, initial " + names_[static_cast<std::size_t>(q0_)] + "\n";
  auto literals = [&](const Guard& g) {
    if (g.is_top()) return std::string("true");
    std::string s;
    bool first = true;
    for (std::size_t i = 0; i < vocab.size(); ++i) {
      const auto idx = static_cast<int>(i);
      const bool pos = Vocabulary::has(g.must_true, idx);
      const bool neg = Vocabulary::has(g.must_false, idx);
      if (!pos && !neg) continue;
      if (!first) s += " & ";
      if (neg) s += "!";
      s += vocab.name(idx);
      first = false;
    }
    return s;
  };
  for (const auto& t : transitions_) {
    out += "  " + names_[static_cast<std::size_t>(t.from)] + " --[" +
           literals(t.guard) + " / " +
           (t.action == 0 ? "eps" : vocab.format(t.action)) + "]--> " +
           names_[static_cast<std::size_t>(t.to)] + "\n";
  }
  return out;
}

}  // namespace dpoaf::automata
