#include "automata/dot_export.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace dpoaf::automata {

namespace {

std::string escape(const std::string& s) {
  return replace_all(replace_all(s, "\\", "\\\\"), "\"", "\\\"");
}

std::string guard_text(const Guard& g, const Vocabulary& vocab) {
  if (g.is_top()) return "true";
  std::string s;
  bool first = true;
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    const auto idx = static_cast<int>(i);
    const bool pos = Vocabulary::has(g.must_true, idx);
    const bool neg = Vocabulary::has(g.must_false, idx);
    if (!pos && !neg) continue;
    if (!first) s += " & ";
    if (neg) s += "!";
    s += vocab.name(idx);
    first = false;
  }
  return s;
}

}  // namespace

std::string to_dot(const TransitionSystem& model, const Vocabulary& vocab,
                   const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=LR;\n"
     << "  node [shape=ellipse];\n";
  for (std::size_t p = 0; p < model.state_count(); ++p) {
    os << "  s" << p << " [label=\""
       << escape(model.name(static_cast<int>(p)) + "\\n" +
                 vocab.format(model.label(static_cast<int>(p))))
       << "\"];\n";
  }
  for (std::size_t p = 0; p < model.state_count(); ++p)
    for (int q : model.successors(static_cast<int>(p)))
      os << "  s" << p << " -> s" << q << ";\n";
  os << "}\n";
  return os.str();
}

std::string to_dot(const FsaController& controller, const Vocabulary& vocab,
                   const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=LR;\n";
  for (std::size_t q = 0; q < controller.state_count(); ++q) {
    os << "  q" << q << " [label=\""
       << escape(controller.name(static_cast<int>(q))) << "\", shape="
       << (static_cast<int>(q) == controller.initial() ? "doublecircle"
                                                       : "circle")
       << "];\n";
  }
  for (const auto& t : controller.transitions()) {
    os << "  q" << t.from << " -> q" << t.to << " [label=\""
       << escape(guard_text(t.guard, vocab) + " / " +
                 (t.action == 0 ? std::string("eps")
                                : vocab.format(t.action)))
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

std::string to_dot(const Kripke& kripke, const TransitionSystem& model,
                   const FsaController& controller, const Vocabulary& vocab,
                   const std::string& graph_name) {
  std::ostringstream os;
  os << "digraph " << graph_name << " {\n  rankdir=LR;\n"
     << "  node [shape=box];\n";
  for (std::size_t s = 0; s < kripke.state_count(); ++s) {
    os << "  k" << s << " [label=\""
       << escape(kripke.describe_state(static_cast<int>(s), model,
                                       controller, vocab) +
                 "\\n" + vocab.format(kripke.labels[s]))
       << "\"];\n";
  }
  for (int s : kripke.initial)
    os << "  init" << s << " [shape=point]; init" << s << " -> k" << s
       << ";\n";
  for (std::size_t s = 0; s < kripke.state_count(); ++s)
    for (int t : kripke.successors[s]) os << "  k" << s << " -> k" << t << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace dpoaf::automata
