#include "automata/product.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "util/check.hpp"

namespace dpoaf::automata {

std::size_t Kripke::transition_count() const {
  std::size_t n = 0;
  for (const auto& out : successors) n += out.size();
  return n;
}

std::string Kripke::describe_state(int s, const TransitionSystem& ts,
                                   const FsaController& ctrl,
                                   const Vocabulary& vocab) const {
  DPOAF_CHECK(s >= 0 && static_cast<std::size_t>(s) < origin.size());
  const KripkeState& ks = origin[static_cast<std::size_t>(s)];
  std::string out = "(" + ts.name(ks.model_state) + ", " +
                    ctrl.name(ks.ctrl_state) + ", ";
  out += ks.action == 0 ? "eps" : vocab.format(ks.action);
  out += ")";
  return out;
}

Kripke make_product(const TransitionSystem& model, const FsaController& ctrl,
                    const ProductOptions& options) {
  DPOAF_CHECK_MSG(model.state_count() > 0, "model must have states");
  DPOAF_CHECK_MSG(ctrl.state_count() > 0, "controller must have states");

  Kripke k;
  std::map<std::tuple<ModelStateId, CtrlStateId, Symbol>, int> index;

  auto get_state = [&](ModelStateId p, CtrlStateId q, Symbol a) {
    const auto key = std::make_tuple(p, q, a);
    if (auto it = index.find(key); it != index.end()) return it->second;
    const int s = static_cast<int>(k.labels.size());
    const Symbol act_label = (a == 0) ? options.epsilon_label : a;
    k.labels.push_back(model.label(p) | act_label);
    k.successors.emplace_back();
    k.origin.push_back({p, q, a});
    index.emplace(key, s);
    return s;
  };

  // Seed: all (p, q0, a) with a enabled in (q0, λ_M(p)).
  std::vector<int> frontier;
  for (std::size_t p = 0; p < model.state_count(); ++p) {
    const auto pid = static_cast<ModelStateId>(p);
    for (const ControllerMove& mv :
         ctrl.moves(ctrl.initial(), model.label(pid))) {
      const int s = get_state(pid, ctrl.initial(), mv.action);
      k.initial.push_back(s);
      frontier.push_back(s);
    }
  }
  // Deduplicate initial states (several moves can share an action).
  std::sort(k.initial.begin(), k.initial.end());
  k.initial.erase(std::unique(k.initial.begin(), k.initial.end()),
                  k.initial.end());
  std::sort(frontier.begin(), frontier.end());
  frontier.erase(std::unique(frontier.begin(), frontier.end()),
                 frontier.end());

  // BFS expansion of the reachable product.
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    const int s = frontier[i];
    const KripkeState ks = k.origin[static_cast<std::size_t>(s)];
    const Symbol sigma = model.label(ks.model_state);

    // Controller successors reachable by emitting ks.action under σ.
    std::vector<CtrlStateId> ctrl_targets;
    for (const ControllerMove& mv : ctrl.moves(ks.ctrl_state, sigma)) {
      if (mv.action != ks.action) continue;
      ctrl_targets.push_back(mv.to);
    }
    DPOAF_DCHECK(!ctrl_targets.empty());

    for (ModelStateId p2 : model.successors(ks.model_state)) {
      for (CtrlStateId q2 : ctrl_targets) {
        for (const ControllerMove& mv2 : ctrl.moves(q2, model.label(p2))) {
          const std::size_t before = k.labels.size();
          const int t = get_state(p2, q2, mv2.action);
          auto& out = k.successors[static_cast<std::size_t>(s)];
          if (std::find(out.begin(), out.end(), t) == out.end())
            out.push_back(t);
          if (k.labels.size() > before) frontier.push_back(t);
        }
      }
    }
  }

  if (options.stutter_deadlocks) {
    for (std::size_t s = 0; s < k.successors.size(); ++s)
      if (k.successors[s].empty())
        k.successors[s].push_back(static_cast<int>(s));
  }
  return k;
}

}  // namespace dpoaf::automata
