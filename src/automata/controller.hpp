// Automaton-based controller A = ⟨Σ, A, Q, q0, δ⟩ (paper §3): a finite
// state automaton mapping environment observations σ ∈ 2^P to actions
// a ∈ 2^P_A. Transitions carry a *guard* — a conjunction of literals over P
// (the GLM2FSA grammar only ever produces conjunctive conditions such as
// "no car from left ∧ no pedestrian at right") — an emitted action, and a
// successor state.
#pragma once

#include <string>
#include <vector>

#include "logic/vocabulary.hpp"

namespace dpoaf::automata {

using logic::Symbol;
using logic::Vocabulary;

using CtrlStateId = int;

/// Conjunction of literals over P: σ matches iff it contains every bit of
/// `must_true` and none of `must_false`.
struct Guard {
  Symbol must_true = 0;
  Symbol must_false = 0;

  [[nodiscard]] bool matches(Symbol sigma) const {
    return (sigma & must_true) == must_true && (sigma & must_false) == 0;
  }
  /// The trivially-true guard.
  [[nodiscard]] static Guard top() { return {}; }
  [[nodiscard]] bool is_top() const { return must_true == 0 && must_false == 0; }
};

struct ControllerTransition {
  CtrlStateId from = 0;
  Guard guard;
  Symbol action = 0;  // a ∈ 2^P_A; 0 is the no-op symbol ε
  CtrlStateId to = 0;
};

/// An enabled move of the controller: the action it emits and its successor.
struct ControllerMove {
  Symbol action = 0;
  CtrlStateId to = 0;
};

class FsaController {
 public:
  /// `default_action` is emitted by the implicit wait self-loop taken when
  /// no explicit transition is enabled (GLM2FSA semantics: the vehicle holds
  /// position while its current step's condition is unmet). The driving
  /// domain instantiates this with {stop}.
  explicit FsaController(Symbol default_action = 0)
      : default_action_(default_action) {}

  CtrlStateId add_state(std::string name = "");
  void set_initial(CtrlStateId q);
  void add_transition(CtrlStateId from, Guard guard, Symbol action,
                      CtrlStateId to);

  [[nodiscard]] std::size_t state_count() const { return names_.size(); }
  [[nodiscard]] CtrlStateId initial() const { return q0_; }
  [[nodiscard]] const std::string& name(CtrlStateId q) const;
  [[nodiscard]] Symbol default_action() const { return default_action_; }
  [[nodiscard]] const std::vector<ControllerTransition>& transitions() const {
    return transitions_;
  }

  /// All moves enabled in state q under observation σ. If no explicit
  /// transition matches, returns the implicit wait move
  /// {default_action, q} — the controller is input-enabled by construction.
  [[nodiscard]] std::vector<ControllerMove> moves(CtrlStateId q,
                                                  Symbol sigma) const;

  /// Deterministic single-step used by the simulator: the first matching
  /// transition in insertion order wins (GLM2FSA emits steps in priority
  /// order, so insertion order is the intended precedence).
  [[nodiscard]] ControllerMove step(CtrlStateId q, Symbol sigma) const;

  /// Multi-line description (one line per transition) for demos/tests.
  [[nodiscard]] std::string describe(const Vocabulary& vocab) const;

 private:
  Symbol default_action_;
  CtrlStateId q0_ = 0;
  std::vector<std::string> names_;
  std::vector<ControllerTransition> transitions_;
};

}  // namespace dpoaf::automata
