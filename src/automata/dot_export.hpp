// Graphviz DOT rendering of the automaton-based artifacts, matching the
// paper's figures: world models (Figures 5/6/15/16/17), FSA controllers
// (Figures 7/18), and product Kripke structures. Pipe the output through
// `dot -Tpng` to regenerate the figures for any controller the library
// constructs.
#pragma once

#include <string>

#include "automata/controller.hpp"
#include "automata/product.hpp"
#include "automata/transition_system.hpp"

namespace dpoaf::automata {

/// World model: one node per state labeled with its σ ∈ 2^P.
std::string to_dot(const TransitionSystem& model, const Vocabulary& vocab,
                   const std::string& graph_name = "model");

/// Controller: edges labeled "guard / action"; the initial state is drawn
/// with a double circle.
std::string to_dot(const FsaController& controller, const Vocabulary& vocab,
                   const std::string& graph_name = "controller");

/// Product Kripke structure: nodes named (p, q, a) with their labels.
std::string to_dot(const Kripke& kripke, const TransitionSystem& model,
                   const FsaController& controller, const Vocabulary& vocab,
                   const std::string& graph_name = "product");

}  // namespace dpoaf::automata
