// Automaton-based world model M = ⟨Γ_M, Q_M, δ_M, λ_M⟩ (paper §3): a
// transition system whose states are labeled with symbols σ ∈ 2^P and whose
// non-deterministic transition relation captures the environment dynamics
// the autonomous vehicle can perceive (traffic lights cycling, cars and
// pedestrians appearing/clearing, ...).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "logic/vocabulary.hpp"

namespace dpoaf::automata {

using logic::Symbol;
using logic::Vocabulary;

using ModelStateId = int;

class TransitionSystem {
 public:
  /// Add a state with label σ (its λ_M value) and a diagnostic name.
  ModelStateId add_state(Symbol label, std::string name = "");

  /// Add δ_M(from, to) = 1. Duplicate additions are ignored.
  void add_transition(ModelStateId from, ModelStateId to);

  [[nodiscard]] std::size_t state_count() const { return labels_.size(); }
  [[nodiscard]] Symbol label(ModelStateId p) const;
  [[nodiscard]] const std::string& name(ModelStateId p) const;
  [[nodiscard]] const std::vector<ModelStateId>& successors(
      ModelStateId p) const;
  [[nodiscard]] bool has_transition(ModelStateId from, ModelStateId to) const;
  [[nodiscard]] std::size_t transition_count() const;

  /// States with no outgoing transition (verification treats these as
  /// stuttering; the driving models are built without any).
  [[nodiscard]] std::vector<ModelStateId> deadlock_states() const;

  /// Disjoint union with `other` (the paper "integrates" per-scenario
  /// models into one universal model; initial states of the product range
  /// over every model state, so a disjoint union verifies the controller in
  /// every scenario at once). Returns the index offset of `other`'s states.
  ModelStateId integrate(const TransitionSystem& other);

  /// Algorithm 1 (paper §4.1): enumerate all 2^|props| labelings over the
  /// given proposition indices, connect (p_i, p_j) whenever
  /// `allowed(label_i, label_j)`, and — unless `conservative` — remove
  /// states with no incoming and no outgoing transition.
  static TransitionSystem from_predicate(
      const std::vector<int>& prop_indices,
      const std::function<bool(Symbol, Symbol)>& allowed,
      bool conservative = false);

 private:
  std::vector<Symbol> labels_;
  std::vector<std::string> names_;
  std::vector<std::vector<ModelStateId>> succ_;
};

}  // namespace dpoaf::automata
