#include "automata/transition_system.hpp"

#include <algorithm>
#include <cstdio>

#include "util/check.hpp"

namespace dpoaf::automata {

ModelStateId TransitionSystem::add_state(Symbol label, std::string name) {
  labels_.push_back(label);
  // The default name is formatted into a char buffer: any literal+string
  // concatenation here trips GCC 12's -Wrestrict false positive at -O3
  // (GCC PR105651).
  if (name.empty()) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "p%zu", labels_.size() - 1);
    name = buf;
  }
  names_.push_back(std::move(name));
  succ_.emplace_back();
  return static_cast<ModelStateId>(labels_.size() - 1);
}

void TransitionSystem::add_transition(ModelStateId from, ModelStateId to) {
  DPOAF_CHECK(from >= 0 && static_cast<std::size_t>(from) < labels_.size());
  DPOAF_CHECK(to >= 0 && static_cast<std::size_t>(to) < labels_.size());
  auto& out = succ_[static_cast<std::size_t>(from)];
  if (std::find(out.begin(), out.end(), to) == out.end()) out.push_back(to);
}

Symbol TransitionSystem::label(ModelStateId p) const {
  DPOAF_CHECK(p >= 0 && static_cast<std::size_t>(p) < labels_.size());
  return labels_[static_cast<std::size_t>(p)];
}

const std::string& TransitionSystem::name(ModelStateId p) const {
  DPOAF_CHECK(p >= 0 && static_cast<std::size_t>(p) < names_.size());
  return names_[static_cast<std::size_t>(p)];
}

const std::vector<ModelStateId>& TransitionSystem::successors(
    ModelStateId p) const {
  DPOAF_CHECK(p >= 0 && static_cast<std::size_t>(p) < succ_.size());
  return succ_[static_cast<std::size_t>(p)];
}

bool TransitionSystem::has_transition(ModelStateId from,
                                      ModelStateId to) const {
  const auto& out = successors(from);
  return std::find(out.begin(), out.end(), to) != out.end();
}

std::size_t TransitionSystem::transition_count() const {
  std::size_t n = 0;
  for (const auto& out : succ_) n += out.size();
  return n;
}

std::vector<ModelStateId> TransitionSystem::deadlock_states() const {
  std::vector<ModelStateId> out;
  for (std::size_t p = 0; p < succ_.size(); ++p)
    if (succ_[p].empty()) out.push_back(static_cast<ModelStateId>(p));
  return out;
}

ModelStateId TransitionSystem::integrate(const TransitionSystem& other) {
  const auto offset = static_cast<ModelStateId>(labels_.size());
  for (std::size_t p = 0; p < other.labels_.size(); ++p)
    add_state(other.labels_[p], other.names_[p]);
  for (std::size_t p = 0; p < other.succ_.size(); ++p)
    for (ModelStateId q : other.succ_[p])
      add_transition(static_cast<ModelStateId>(p) + offset, q + offset);
  return offset;
}

TransitionSystem TransitionSystem::from_predicate(
    const std::vector<int>& prop_indices,
    const std::function<bool(Symbol, Symbol)>& allowed, bool conservative) {
  DPOAF_CHECK_MSG(prop_indices.size() <= 20,
                  "Algorithm 1 enumerates 2^|P| states; |P| capped at 20");
  const std::size_t n_states = std::size_t{1} << prop_indices.size();

  // Build one state per subset of the propositions.
  std::vector<Symbol> labels(n_states, 0);
  for (std::size_t mask = 0; mask < n_states; ++mask) {
    Symbol sym = 0;
    for (std::size_t b = 0; b < prop_indices.size(); ++b)
      if ((mask >> b) & 1U) sym |= Vocabulary::bit(prop_indices[b]);
    labels[mask] = sym;
  }

  // Connect every allowed pair, tracking degree for pruning.
  std::vector<std::vector<ModelStateId>> succ(n_states);
  std::vector<bool> touched(n_states, false);
  for (std::size_t i = 0; i < n_states; ++i) {
    for (std::size_t j = 0; j < n_states; ++j) {
      if (!allowed(labels[i], labels[j])) continue;
      succ[i].push_back(static_cast<ModelStateId>(j));
      touched[i] = true;
      touched[j] = true;
    }
  }

  // Q_M := Q_M \ {p_i | no incoming and no outgoing transitions}, unless the
  // caller asked for the conservative (no-pruning) variant.
  TransitionSystem ts;
  std::vector<ModelStateId> remap(n_states, -1);
  for (std::size_t i = 0; i < n_states; ++i) {
    if (!conservative && !touched[i]) continue;
    remap[i] = ts.add_state(labels[i]);
  }
  for (std::size_t i = 0; i < n_states; ++i) {
    if (remap[i] < 0) continue;
    for (ModelStateId j : succ[i]) {
      if (remap[static_cast<std::size_t>(j)] < 0) continue;
      ts.add_transition(remap[i], remap[static_cast<std::size_t>(j)]);
    }
  }
  return ts;
}

}  // namespace dpoaf::automata
