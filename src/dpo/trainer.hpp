// Direct preference optimization (Rafailov et al. 2023) with LoRA-restricted
// updates — the fine-tuning stage of the paper's DPO-AF pipeline (§4.3).
//
// Loss per pair:  −log σ( β·[(log πθ(y_w|x) − log π_ref(y_w|x))
//                          −(log πθ(y_l|x) − log π_ref(y_l|x))] )
//
// Metrics match Figure 8:
//  * loss      — the mean DPO loss,
//  * accuracy  — mean 1[log πθ(y_w|x) > log πθ(y_l|x)],
//  * margin    — mean of the bracketed reward difference ("marginal
//                preference": 0 = indifferent, >0 = favours y_w).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "dpo/dataset.hpp"
#include "nn/gpt.hpp"

namespace dpoaf::nn {
class AdamW;
}

namespace dpoaf::dpo {

using nn::TinyGpt;

struct DpoConfig {
  float beta = 1.0f;
  float lr = 5e-4f;
  /// Weight of an auxiliary next-token NLL term on the *chosen* response
  /// (RPO-style anchor). At 7B scale this is optional; at this library's
  /// tiny scale it is what keeps generations coherent once the preference
  /// margin saturates (see EXPERIMENTS.md). 0 disables.
  float nll_coef = 0.2f;
  int epochs = 100;
  int batch_size = 8;
  /// Train on a random subsample of this many pairs each epoch (0 = all).
  int pairs_per_epoch = 0;
  /// LoRA adapter rank/alpha; rank 0 trains all parameters instead.
  std::int64_t lora_rank = 4;
  float lora_alpha = 8.0f;
  /// Invoke the checkpoint hook every this many epochs (paper: 20).
  int checkpoint_every = 20;
};

struct EpochMetrics {
  int epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;
  double margin = 0.0;
  /// Mean policy-vs-reference log-probability shift over the epoch's pair
  /// responses (chosen and rejected averaged) — the sampled-KL proxy that
  /// tracks how far DPO has pulled the policy off the frozen reference.
  /// 0 at initialization; grows as the preference margin is bought with
  /// distribution shift. Deterministic like the other metrics.
  double kl = 0.0;
};

/// Called with (epoch, policy) at epoch 0, every checkpoint_every epochs,
/// and after the final epoch.
using CheckpointHook = std::function<void(int, const TinyGpt&)>;

/// Everything train() needs to continue from an epoch boundary exactly as
/// if the process had never stopped: weights (policy with its LoRA
/// adapters, frozen reference), AdamW moments, the trainer's RNG stream,
/// the in-place shuffle permutation, and the metric history so far.
/// Captured by the snapshot hook; fed back via train()'s `resume`.
struct TrainerCheckpointState {
  int completed_epochs = 0;
  std::vector<float> policy_state;
  std::vector<float> reference_state;
  std::vector<std::vector<float>> opt_m;
  std::vector<std::vector<float>> opt_v;
  std::int64_t opt_steps = 0;
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<std::uint64_t> order;
  std::vector<EpochMetrics> history;
};

/// Receives the full resumable state at a snapshot boundary. Runs after
/// the CheckpointHook of the same epoch, so a snapshot always includes
/// every evaluation the caller recorded up to and including that epoch.
using SnapshotHook = std::function<void(const TrainerCheckpointState&)>;

/// Hook bundle for train(). `checkpoint` keeps the historical
/// (epoch, policy) evaluation cadence; `snapshot` fires every
/// `snapshot_every` epochs (and after the final epoch) with durable
/// state. snapshot_every == 0 disables snapshots.
struct TrainHooks {
  CheckpointHook checkpoint;
  SnapshotHook snapshot;
  int snapshot_every = 0;
};

class DpoTrainer {
 public:
  /// Takes ownership of a policy initialized from the pre-trained model.
  /// The frozen reference model is an internal clone of `policy` made
  /// before any update; LoRA adapters are attached here (per config).
  DpoTrainer(TinyGpt policy, DpoConfig config, Rng& rng);

  /// Run DPO over the pairs; returns one metrics row per epoch.
  std::vector<EpochMetrics> train(const std::vector<PreferencePair>& pairs,
                                  const CheckpointHook& hook = {});

  /// As above, with snapshot hooks and optional resume. When `resume` is
  /// non-null the trainer restores weights/optimizer/RNG/permutation from
  /// it and continues at resume->completed_epochs + 1; the returned
  /// history is resume->history extended with the new epochs, and the
  /// final result is bitwise-identical to an uninterrupted run (the
  /// property tests in tests/test_properties.cpp enforce this).
  std::vector<EpochMetrics> train(const std::vector<PreferencePair>& pairs,
                                  const TrainHooks& hooks,
                                  const TrainerCheckpointState* resume);

  [[nodiscard]] const TinyGpt& policy() const { return policy_; }
  [[nodiscard]] const TinyGpt& reference() const { return reference_; }
  [[nodiscard]] const DpoConfig& config() const { return config_; }

 private:
  [[nodiscard]] TrainerCheckpointState capture_state(
      int completed_epochs, const nn::AdamW& opt,
      const std::vector<std::size_t>& order,
      const std::vector<EpochMetrics>& history) const;

  TinyGpt policy_;
  TinyGpt reference_;
  DpoConfig config_;
  Rng rng_;
};

}  // namespace dpoaf::dpo
