#include "dpo/dataset.hpp"

#include <algorithm>

#include "lm/corpus.hpp"
#include "util/check.hpp"

namespace dpoaf::dpo {

std::vector<PreferencePair> build_preference_pairs(
    const std::string& task_id, const std::string& task_prompt,
    const std::vector<Candidate>& candidates, const nn::Tokenizer& tok,
    std::int64_t max_seq, std::size_t* dropped) {
  // Deduplicate by text, keeping the first occurrence's score.
  std::vector<Candidate> unique;
  for (const Candidate& c : candidates) {
    const bool seen =
        std::any_of(unique.begin(), unique.end(),
                    [&c](const Candidate& u) { return u.text == c.text; });
    if (!seen) unique.push_back(c);
  }

  const std::vector<int> prompt_ids = lm::encode_prompt(tok, task_prompt);
  const auto prompt_len = static_cast<std::int64_t>(prompt_ids.size());

  // Pre-encode every candidate once.
  std::vector<std::vector<int>> encoded;
  encoded.reserve(unique.size());
  for (const Candidate& c : unique)
    encoded.push_back(lm::encode_example(tok, task_prompt, c.text));

  std::vector<PreferencePair> pairs;
  for (std::size_t i = 0; i < unique.size(); ++i) {
    for (std::size_t j = i + 1; j < unique.size(); ++j) {
      if (unique[i].score == unique[j].score) continue;
      const std::size_t w = unique[i].score > unique[j].score ? i : j;
      const std::size_t l = w == i ? j : i;
      if (static_cast<std::int64_t>(encoded[w].size()) > max_seq ||
          static_cast<std::int64_t>(encoded[l].size()) > max_seq) {
        if (dropped != nullptr) ++*dropped;
        continue;
      }
      PreferencePair pair;
      pair.task_id = task_id;
      pair.chosen = encoded[w];
      pair.rejected = encoded[l];
      pair.prompt_len = prompt_len;
      pair.score_chosen = unique[w].score;
      pair.score_rejected = unique[l].score;
      pairs.push_back(std::move(pair));
    }
  }
  return pairs;
}

}  // namespace dpoaf::dpo
