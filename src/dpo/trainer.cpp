#include "dpo/trainer.hpp"

#include <algorithm>
#include <numeric>

#include "nn/optim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/threadpool.hpp"

namespace dpoaf::dpo {

namespace ops = tensor::ops;
using tensor::Tape;
using tensor::Tensor;

DpoTrainer::DpoTrainer(TinyGpt policy, DpoConfig config, Rng& rng)
    : policy_(std::move(policy)), config_(config), rng_(rng.split()) {
  // Reference = frozen snapshot of the pre-trained policy (before LoRA, so
  // cloning stays cheap; LoRA starts as the identity update anyway).
  reference_ = policy_.clone();
  if (config_.lora_rank > 0 && !policy_.lora_enabled())
    policy_.enable_lora(config_.lora_rank, config_.lora_alpha, rng_);
}

std::vector<EpochMetrics> DpoTrainer::train(
    const std::vector<PreferencePair>& pairs, const CheckpointHook& hook) {
  TrainHooks hooks;
  hooks.checkpoint = hook;
  return train(pairs, hooks, nullptr);
}

std::vector<EpochMetrics> DpoTrainer::train(
    const std::vector<PreferencePair>& pairs, const TrainHooks& hooks,
    const TrainerCheckpointState* resume) {
  DPOAF_CHECK_MSG(!pairs.empty(), "DPO requires at least one pair");
  DPOAF_CHECK(config_.batch_size > 0);

  // Restore weights before the reference precompute below: ref_w/ref_l are
  // a pure function of (pairs, reference weights), so once the reference
  // is back to its snapshot values the recomputed table is bit-identical
  // to the one the interrupted run used.
  int start_epoch = 1;
  std::vector<std::size_t> order(pairs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<EpochMetrics> history;
  if (resume != nullptr) {
    DPOAF_CHECK_MSG(resume->order.size() == pairs.size(),
                    "resume state was captured over a different pair set");
    DPOAF_CHECK(resume->completed_epochs >= 0);
    policy_.load_state(resume->policy_state);
    reference_.load_state(resume->reference_state);
    rng_.set_state_words(resume->rng_state);
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<std::size_t>(resume->order[i]);
    history = resume->history;
    start_epoch = resume->completed_epochs + 1;
  }

  // The reference model is frozen: its per-pair log-probabilities are
  // computed once up front (this is what makes long runs affordable).
  // Pairs are independent and the reference is read-only, so the
  // precompute fans out across the pool — each slot is written by exactly
  // one chunk and each pair's forward is the same serial computation, so
  // the values are thread-count-invariant.
  std::vector<float> ref_w(pairs.size());
  std::vector<float> ref_l(pairs.size());
  {
    obs::Span span("dpo.ref_precompute");
    util::parallel_for(0, static_cast<std::int64_t>(pairs.size()), 1,
                       [&](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        const auto u = static_cast<std::size_t>(i);
        ref_w[u] = static_cast<float>(reference_.response_log_prob_value(
            pairs[u].chosen, pairs[u].prompt_len));
        ref_l[u] = static_cast<float>(reference_.response_log_prob_value(
            pairs[u].rejected, pairs[u].prompt_len));
      }
    });
  }

  nn::AdamWConfig opt_cfg;
  opt_cfg.lr = config_.lr;
  nn::AdamW opt(policy_.trainable_parameters(), opt_cfg);
  if (resume != nullptr)
    opt.load_state(resume->opt_m, resume->opt_v, resume->opt_steps);

  // The epoch-0 evaluation already happened (and was persisted) before
  // the snapshot we are resuming from — re-running it would double-count.
  if (resume == nullptr && hooks.checkpoint) hooks.checkpoint(0, policy_);

  static obs::Counter& step_counter = obs::counter("dpo.steps");
  static obs::Counter& pair_counter = obs::counter("dpo.pairs_seen");
  static obs::Counter& epoch_counter = obs::counter("dpo.epochs");
  for (int epoch = start_epoch; epoch <= config_.epochs; ++epoch) {
    obs::Span epoch_span("dpo.epoch", obs::histogram("dpo.epoch_ns"));
    epoch_counter.add();
    rng_.shuffle(order);
    std::size_t epoch_pairs = order.size();
    if (config_.pairs_per_epoch > 0)
      epoch_pairs = std::min(
          epoch_pairs, static_cast<std::size_t>(config_.pairs_per_epoch));

    EpochMetrics metrics;
    metrics.epoch = epoch;
    std::size_t i = 0;
    while (i < epoch_pairs) {
      const std::size_t batch_end = std::min(
          epoch_pairs, i + static_cast<std::size_t>(config_.batch_size));
      const auto n_in_batch = static_cast<float>(batch_end - i);
      Tape tape;
      Tensor batch_loss;
      bool first = true;
      for (; i < batch_end; ++i) {
        const PreferencePair& pair = pairs[order[i]];
        Tensor lp_w =
            policy_.response_log_prob(&tape, pair.chosen, pair.prompt_len);
        Tensor lp_l =
            policy_.response_log_prob(&tape, pair.rejected, pair.prompt_len);
        const float ref_delta = ref_w[order[i]] - ref_l[order[i]];
        // z = (lp_w − lp_l) − (ref_w − ref_l);  loss = softplus(−β z)
        Tensor z = ops::add(&tape, ops::sub(&tape, lp_w, lp_l),
                            Tensor::full({1, 1}, -ref_delta));
        Tensor loss =
            ops::softplus(&tape, ops::scale(&tape, z, -config_.beta));
        // Figure 8 reports the DPO loss proper, before the anchor term.
        metrics.loss += loss.item();
        if (config_.nll_coef > 0.0f) {
          // Anchor: keep the chosen response likely in absolute terms
          // (mean per-token NLL over its response region).
          const auto resp_tokens = static_cast<float>(
              pair.chosen.size() - static_cast<std::size_t>(pair.prompt_len));
          Tensor nll = ops::scale(&tape, lp_w,
                                  -config_.nll_coef / resp_tokens);
          loss = ops::add(&tape, loss, nll);
        }

        metrics.accuracy += lp_w.item() > lp_l.item() ? 1.0 : 0.0;
        metrics.margin += static_cast<double>(z.item());
        // Sampled-KL proxy: mean (policy − reference) log-probability over
        // the pair's two responses (see EpochMetrics::kl).
        metrics.kl +=
            0.5 * ((static_cast<double>(lp_w.item()) - ref_w[order[i]]) +
                   (static_cast<double>(lp_l.item()) - ref_l[order[i]]));

        Tensor scaled = ops::scale(&tape, loss, 1.0f / n_in_batch);
        batch_loss = first ? scaled : ops::add(&tape, batch_loss, scaled);
        first = false;
      }
      opt.zero_grad();
      tape.backward(batch_loss);
      opt.step();
      step_counter.add();
      pair_counter.add(static_cast<std::uint64_t>(n_in_batch));
    }
    metrics.loss /= static_cast<double>(epoch_pairs);
    metrics.accuracy /= static_cast<double>(epoch_pairs);
    metrics.margin /= static_cast<double>(epoch_pairs);
    metrics.kl /= static_cast<double>(epoch_pairs);
    history.push_back(metrics);

    // Evaluation first, snapshot second: a snapshot must carry every
    // evaluation recorded up to and including its own epoch, so a resumed
    // run can splice the history without gaps or duplicates.
    if (hooks.checkpoint && (epoch % config_.checkpoint_every == 0 ||
                             epoch == config_.epochs))
      hooks.checkpoint(epoch, policy_);
    if (hooks.snapshot && hooks.snapshot_every > 0 &&
        (epoch % hooks.snapshot_every == 0 || epoch == config_.epochs))
      hooks.snapshot(capture_state(epoch, opt, order, history));
  }
  return history;
}

TrainerCheckpointState DpoTrainer::capture_state(
    int completed_epochs, const nn::AdamW& opt,
    const std::vector<std::size_t>& order,
    const std::vector<EpochMetrics>& history) const {
  TrainerCheckpointState s;
  s.completed_epochs = completed_epochs;
  s.policy_state = policy_.state();
  s.reference_state = reference_.state();
  s.opt_m = opt.moments_m();
  s.opt_v = opt.moments_v();
  s.opt_steps = opt.steps_taken();
  s.rng_state = rng_.state_words();
  s.order.assign(order.begin(), order.end());
  s.history = history;
  return s;
}

}  // namespace dpoaf::dpo
