// Preference-pair dataset construction (paper §4.3): every two responses
// to the same prompt whose verification scores differ strictly yield one
// data point (x, y_w, y_l) — up to N·C₂(m) points for N tasks and m
// responses per task. Scores come from the automated feedback channel
// (number of satisfied specifications; −1 for unalignable responses).
#pragma once

#include <string>
#include <vector>

#include "nn/tokenizer.hpp"

namespace dpoaf::dpo {

/// One candidate response and its verification score.
struct Candidate {
  std::string text;
  int score = 0;
};

struct PreferencePair {
  std::string task_id;
  std::vector<int> chosen;    // full sequence: prompt + y_w + </s>
  std::vector<int> rejected;  // full sequence: prompt + y_l + </s>
  std::int64_t prompt_len = 0;
  int score_chosen = 0;
  int score_rejected = 0;
};

/// Build all strictly-ordered pairs from one task's candidates. Sequences
/// longer than `max_seq` tokens are skipped (with the skip counted in
/// `dropped`, if given). Duplicate candidate texts are deduplicated first.
std::vector<PreferencePair> build_preference_pairs(
    const std::string& task_id, const std::string& task_prompt,
    const std::vector<Candidate>& candidates, const nn::Tokenizer& tok,
    std::int64_t max_seq, std::size_t* dropped = nullptr);

}  // namespace dpoaf::dpo
