// NuSMV model export (paper Appendix D): renders a controller⊗model
// product as a NuSMV module with one boolean VAR per proposition, an
// `action` enumeration, the product's transition relation, and one
// LTLSPEC per rulebook specification. The emitted file is accepted by
// NuSMV 2.6 (`read_model -i file.smv; go; check_ltlspec`), so results from
// this library's built-in checker can be cross-validated against NuSMV
// itself when it is available.
#pragma once

#include <string>
#include <vector>

#include "automata/product.hpp"
#include "modelcheck/checker.hpp"

namespace dpoaf::modelcheck {

struct SmvExportOptions {
  std::string module_name = "main";
  /// Emit FAIRNESS constraints (as NuSMV `FAIRNESS` on a boolean DEFINE)
  /// for □◇ assumptions; other shapes are emitted as comments.
  bool emit_fairness = true;
};

/// Render the product Kripke structure plus specifications as SMV text.
std::string to_smv(const automata::Kripke& kripke,
                   const logic::Vocabulary& vocab,
                   const std::vector<NamedSpec>& specs,
                   const std::vector<logic::Ltl>& fairness = {},
                   const SmvExportOptions& options = {});

}  // namespace dpoaf::modelcheck
