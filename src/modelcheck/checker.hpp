// Explicit-state LTL model checker — the repository's substitute for
// NuSMV (§4.2 of the paper). Checks M ⊗ C ⊨ Φ by translating ¬Φ to a Büchi
// automaton, forming the synchronous product with the Kripke structure, and
// searching for a reachable accepting cycle (SCC decomposition). A violation
// yields a lasso counter-example: a finite prefix plus a cycle of product
// states, printed in the paper's (p_i, q_i, σ_i ∪ a_i) trace notation.
#pragma once

#include <string>
#include <vector>

#include "automata/product.hpp"
#include "logic/ltl.hpp"

namespace dpoaf::modelcheck {

using automata::Kripke;
using logic::Ltl;
using logic::Vocabulary;

/// Lasso-shaped counter-example over Kripke state indices.
struct Lasso {
  std::vector<int> prefix;  // from an initial state up to the cycle entry
  std::vector<int> cycle;   // repeated forever; non-empty iff a violation
};

struct CheckResult {
  bool holds = false;
  Lasso counterexample;          // meaningful only when !holds
  std::size_t buchi_states = 0;  // |B_¬Φ|
  std::size_t product_states = 0;

  [[nodiscard]] explicit operator bool() const { return holds; }
};

/// Check that every infinite trace of `kripke` satisfies `spec`.
CheckResult check(const Kripke& kripke, const Ltl& spec);

/// Check `spec` under LTL fairness assumptions: verifies
/// (∧ assumptions) → spec. Used for specifications with eventualities that
/// only hold when the environment is live (e.g., obstacles clear
/// infinitely often).
CheckResult check_under_fairness(const Kripke& kripke, const Ltl& spec,
                                 const std::vector<Ltl>& assumptions);

/// A named specification, e.g. {"phi_5", □(car_from_left ∨ … → ¬turn_right)}.
struct NamedSpec {
  std::string name;
  Ltl formula;
};

struct SpecOutcome {
  NamedSpec spec;
  CheckResult result;
};

/// Batch verification report: one outcome per specification. This is the
/// paper's automated-feedback artifact — "the number or percentage of
/// specifications being satisfied".
struct VerificationReport {
  std::vector<SpecOutcome> outcomes;

  [[nodiscard]] std::size_t satisfied() const;
  [[nodiscard]] std::size_t total() const { return outcomes.size(); }
  [[nodiscard]] double fraction() const;
  /// Names of the violated specifications.
  [[nodiscard]] std::vector<std::string> violated() const;
};

VerificationReport verify_all(const Kripke& kripke,
                              const std::vector<NamedSpec>& specs,
                              const std::vector<Ltl>& fairness = {});

/// Render a counter-example in the paper's trace notation, e.g.
///   (p0, q3, {green_traffic_light, stop}) -> (p4, q4, …) -> [cycle] …
std::string format_counterexample(const Lasso& lasso, const Kripke& kripke,
                                  const automata::TransitionSystem& model,
                                  const automata::FsaController& ctrl,
                                  const Vocabulary& vocab);

}  // namespace dpoaf::modelcheck
