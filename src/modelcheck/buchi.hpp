// LTL → Büchi automaton translation via the GPVW tableau (Gerth, Peled,
// Vardi, Wolper, PSTV'95 — "Simple on-the-fly automatic verification of
// linear temporal logic"), the same construction at the core of SPIN and of
// NuSMV's BDD-free LTL engine. Produces a state-labeled generalized Büchi
// automaton, then degeneralizes it with the standard counter construction
// (Baier & Katoen, Principles of Model Checking, Thm. 4.56).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "logic/ltl.hpp"
#include "logic/vocabulary.hpp"
#include "util/cache.hpp"

namespace dpoaf::modelcheck {

using logic::Ltl;
using logic::Symbol;

/// A state of the (degeneralized) Büchi automaton. The literal constraint
/// (pos/neg masks over the vocabulary) must be satisfied by the Kripke
/// label read when *entering* the state.
struct BuchiState {
  Symbol pos = 0;  // propositions required true
  Symbol neg = 0;  // propositions required false
  bool accepting = false;
  std::vector<int> successors;

  [[nodiscard]] bool enabled(Symbol label) const {
    return (label & pos) == pos && (label & neg) == 0;
  }
};

struct BuchiAutomaton {
  std::vector<BuchiState> states;
  std::vector<int> initial;  // successors of the virtual init node

  [[nodiscard]] std::size_t state_count() const { return states.size(); }
  [[nodiscard]] std::size_t transition_count() const;
};

/// Translate an LTL formula (any operators; NNF is applied internally) into
/// a Büchi automaton accepting exactly the infinite words satisfying it.
BuchiAutomaton ltl_to_buchi(const Ltl& formula);

/// Diagnostic counters for the ablation/micro benches.
struct BuchiStats {
  std::size_t gba_states = 0;
  std::size_t acceptance_sets = 0;
  std::size_t ba_states = 0;
  std::size_t ba_transitions = 0;
};
BuchiAutomaton ltl_to_buchi(const Ltl& formula, BuchiStats& stats);

/// Shared immutable handle to a translated automaton. Checking only reads
/// the automaton, so one translation can serve every verify_all call.
using BuchiPtr = std::shared_ptr<const BuchiAutomaton>;

/// Memoized translation: one GPVW tableau run per distinct formula per
/// process, keyed by hash-consed formula identity (LtlNode::id — pointer
/// equality ⇔ structural equality, and interned nodes are never freed, so
/// ids are stable). The checker routes every ¬Φ and fairness-implication
/// form through this; repeated verification of the same rulebook skips
/// both the tableau and its interning traffic on the mutex-guarded LTL
/// pool. Falls back to a fresh translation when the cache is disabled.
BuchiPtr ltl_to_buchi_cached(const Ltl& formula);

/// Toggle the process-wide translation cache (default on). Disabling does
/// not clear it; re-enabling resumes hitting existing entries. Only the
/// cached-vs-uncached benches and tests should turn this off.
void set_buchi_cache_enabled(bool enabled);
[[nodiscard]] bool buchi_cache_enabled();

/// Counters of the process-wide translation cache.
[[nodiscard]] util::CacheStats buchi_cache_stats();
void clear_buchi_cache();  // drops entries and resets the counters

}  // namespace dpoaf::modelcheck
