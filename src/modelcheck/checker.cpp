#include "modelcheck/checker.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <utility>

#include "modelcheck/buchi.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::modelcheck {

namespace {

// Synchronous product of the Kripke structure with the Büchi automaton for
// ¬Φ, built on the fly (reachable fragment only).
struct Product {
  // product state -> (kripke state, büchi state)
  std::vector<std::pair<int, int>> states;
  std::vector<std::vector<int>> succ;
  std::vector<int> initial;
  std::vector<bool> accepting;
};

Product build_product(const Kripke& k, const BuchiAutomaton& ba) {
  Product prod;
  std::map<std::pair<int, int>, int> index;

  auto get = [&](int ks, int bs) {
    const auto key = std::make_pair(ks, bs);
    if (auto it = index.find(key); it != index.end()) return it->second;
    const int id = static_cast<int>(prod.states.size());
    prod.states.push_back(key);
    prod.succ.emplace_back();
    prod.accepting.push_back(ba.states[static_cast<std::size_t>(bs)].accepting);
    index.emplace(key, id);
    return id;
  };

  std::deque<int> frontier;
  for (int ks : k.initial) {
    for (int bs : ba.initial) {
      if (!ba.states[static_cast<std::size_t>(bs)].enabled(
              k.labels[static_cast<std::size_t>(ks)]))
        continue;
      const std::size_t before = prod.states.size();
      const int id = get(ks, bs);
      prod.initial.push_back(id);
      if (prod.states.size() > before) frontier.push_back(id);
    }
  }

  while (!frontier.empty()) {
    const int id = frontier.front();
    frontier.pop_front();
    const auto [ks, bs] = prod.states[static_cast<std::size_t>(id)];
    for (int ks2 : k.successors[static_cast<std::size_t>(ks)]) {
      const logic::Symbol label2 = k.labels[static_cast<std::size_t>(ks2)];
      for (int bs2 : ba.states[static_cast<std::size_t>(bs)].successors) {
        if (!ba.states[static_cast<std::size_t>(bs2)].enabled(label2))
          continue;
        const std::size_t before = prod.states.size();
        const int id2 = get(ks2, bs2);
        prod.succ[static_cast<std::size_t>(id)].push_back(id2);
        if (prod.states.size() > before) frontier.push_back(id2);
      }
    }
  }
  return prod;
}

// Iterative Tarjan SCC (explicit stack; product graphs can be deep).
std::vector<int> tarjan_scc(const Product& prod, int& scc_count) {
  const int n = static_cast<int>(prod.states.size());
  std::vector<int> comp(static_cast<std::size_t>(n), -1);
  std::vector<int> low(static_cast<std::size_t>(n), 0);
  std::vector<int> disc(static_cast<std::size_t>(n), -1);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  scc_count = 0;
  int timer = 0;

  struct Frame {
    int v;
    std::size_t child = 0;
  };

  for (int start = 0; start < n; ++start) {
    if (disc[static_cast<std::size_t>(start)] != -1) continue;
    std::vector<Frame> call;
    call.push_back({start});
    disc[static_cast<std::size_t>(start)] =
        low[static_cast<std::size_t>(start)] = timer++;
    stack.push_back(start);
    on_stack[static_cast<std::size_t>(start)] = true;

    while (!call.empty()) {
      Frame& f = call.back();
      const auto& out = prod.succ[static_cast<std::size_t>(f.v)];
      if (f.child < out.size()) {
        const int w = out[f.child++];
        if (disc[static_cast<std::size_t>(w)] == -1) {
          disc[static_cast<std::size_t>(w)] =
              low[static_cast<std::size_t>(w)] = timer++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = true;
          call.push_back({w});
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          low[static_cast<std::size_t>(f.v)] =
              std::min(low[static_cast<std::size_t>(f.v)],
                       disc[static_cast<std::size_t>(w)]);
        }
      } else {
        if (low[static_cast<std::size_t>(f.v)] ==
            disc[static_cast<std::size_t>(f.v)]) {
          while (true) {
            const int w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = false;
            comp[static_cast<std::size_t>(w)] = scc_count;
            if (w == f.v) break;
          }
          ++scc_count;
        }
        const int v = f.v;
        call.pop_back();
        if (!call.empty()) {
          const int parent = call.back().v;
          low[static_cast<std::size_t>(parent)] =
              std::min(low[static_cast<std::size_t>(parent)],
                       low[static_cast<std::size_t>(v)]);
        }
      }
    }
  }
  return comp;
}

// BFS path from any of `sources` to `target`; returns the state sequence
// including both endpoints. Optionally restrict moves to one SCC.
std::vector<int> bfs_path(const Product& prod, const std::vector<int>& sources,
                          int target, const std::vector<int>* comp = nullptr,
                          int restrict_comp = -1) {
  const int n = static_cast<int>(prod.states.size());
  std::vector<int> parent(static_cast<std::size_t>(n), -2);
  std::deque<int> queue;
  for (int s : sources) {
    if (parent[static_cast<std::size_t>(s)] != -2) continue;
    parent[static_cast<std::size_t>(s)] = -1;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (int w : prod.succ[static_cast<std::size_t>(v)]) {
      if (comp != nullptr &&
          (*comp)[static_cast<std::size_t>(w)] != restrict_comp)
        continue;
      if (w == target) {
        std::vector<int> path;
        path.push_back(w);
        int cur = v;
        while (cur != -1) {
          path.push_back(cur);
          cur = parent[static_cast<std::size_t>(cur)];
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      if (parent[static_cast<std::size_t>(w)] != -2) continue;
      parent[static_cast<std::size_t>(w)] = v;
      queue.push_back(w);
    }
  }
  // target is a source itself (empty path) or unreachable
  for (int s : sources)
    if (s == target) return {target};
  return {};
}

}  // namespace

CheckResult check(const Kripke& kripke, const Ltl& spec) {
  DPOAF_CHECK(spec != nullptr);
  static obs::Counter& checks = obs::counter("modelcheck.checks");
  checks.add();
  obs::ScopedTimer timer(obs::histogram("modelcheck.check_ns"));
  CheckResult res;

  // ¬Φ is hash-consed, so repeated checks of the same spec share one
  // translated automaton (read-only) instead of re-running the tableau.
  const BuchiPtr ba_ptr = ltl_to_buchi_cached(logic::ltl::lnot(spec));
  const BuchiAutomaton& ba = *ba_ptr;
  res.buchi_states = ba.state_count();

  const Product prod = build_product(kripke, ba);
  res.product_states = prod.states.size();
  if (prod.initial.empty()) {
    res.holds = true;  // no joint run at all ⇒ language of ¬Φ ∩ K is empty
    return res;
  }

  int scc_count = 0;
  const std::vector<int> comp = tarjan_scc(prod, scc_count);

  // A violation is a reachable accepting state inside a non-trivial SCC
  // (size > 1 or a self-loop). Everything in `prod` is reachable from the
  // initial states by construction.
  std::vector<int> comp_size(static_cast<std::size_t>(scc_count), 0);
  for (int c : comp) ++comp_size[static_cast<std::size_t>(c)];

  int witness = -1;
  for (std::size_t v = 0; v < prod.states.size(); ++v) {
    if (!prod.accepting[v]) continue;
    const int c = comp[v];
    bool nontrivial = comp_size[static_cast<std::size_t>(c)] > 1;
    if (!nontrivial) {
      const auto& out = prod.succ[v];
      nontrivial = std::find(out.begin(), out.end(), static_cast<int>(v)) !=
                   out.end();
    }
    if (nontrivial) {
      witness = static_cast<int>(v);
      break;
    }
  }

  if (witness < 0) {
    res.holds = true;
    return res;
  }

  // Counter-example: prefix from an initial state to the witness, then a
  // cycle through the witness inside its SCC.
  const std::vector<int> prefix = bfs_path(prod, prod.initial, witness);
  DPOAF_CHECK(!prefix.empty());

  const int wcomp = comp[static_cast<std::size_t>(witness)];
  std::vector<int> cycle_sources;
  for (int w : prod.succ[static_cast<std::size_t>(witness)])
    if (comp[static_cast<std::size_t>(w)] == wcomp) cycle_sources.push_back(w);
  DPOAF_CHECK(!cycle_sources.empty());
  std::vector<int> back = bfs_path(prod, cycle_sources, witness, &comp, wcomp);
  DPOAF_CHECK(!back.empty());

  res.holds = false;
  for (std::size_t i = 0; i + 1 < prefix.size(); ++i)
    res.counterexample.prefix.push_back(
        prod.states[static_cast<std::size_t>(prefix[i])].first);
  // Cycle: witness -> back[0] ... -> back.back()==witness (excluded; the
  // cycle list holds each state once).
  res.counterexample.cycle.push_back(
      prod.states[static_cast<std::size_t>(witness)].first);
  for (std::size_t i = 0; i + 1 < back.size(); ++i)
    res.counterexample.cycle.push_back(
        prod.states[static_cast<std::size_t>(back[i])].first);
  return res;
}

CheckResult check_under_fairness(const Kripke& kripke, const Ltl& spec,
                                 const std::vector<Ltl>& assumptions) {
  if (assumptions.empty()) return check(kripke, spec);
  const Ltl assume = logic::ltl::land_all(assumptions);
  return check(kripke, logic::ltl::implies(assume, spec));
}

std::size_t VerificationReport::satisfied() const {
  std::size_t n = 0;
  for (const auto& o : outcomes)
    if (o.result.holds) ++n;
  return n;
}

double VerificationReport::fraction() const {
  if (outcomes.empty()) return 0.0;
  return static_cast<double>(satisfied()) /
         static_cast<double>(outcomes.size());
}

std::vector<std::string> VerificationReport::violated() const {
  std::vector<std::string> out;
  for (const auto& o : outcomes)
    if (!o.result.holds) out.push_back(o.spec.name);
  return out;
}

VerificationReport verify_all(const Kripke& kripke,
                              const std::vector<NamedSpec>& specs,
                              const std::vector<Ltl>& fairness) {
  VerificationReport report;
  report.outcomes.reserve(specs.size());
  for (const NamedSpec& spec : specs) {
    report.outcomes.push_back(
        {spec, check_under_fairness(kripke, spec.formula, fairness)});
  }
  return report;
}

std::string format_counterexample(const Lasso& lasso, const Kripke& kripke,
                                  const automata::TransitionSystem& model,
                                  const automata::FsaController& ctrl,
                                  const Vocabulary& vocab) {
  std::string out;
  for (int s : lasso.prefix) {
    out += kripke.describe_state(s, model, ctrl, vocab);
    out += " -> ";
  }
  out += "[cycle: ";
  for (std::size_t i = 0; i < lasso.cycle.size(); ++i) {
    if (i > 0) out += " -> ";
    out += kripke.describe_state(lasso.cycle[i], model, ctrl, vocab);
  }
  out += " -> ...]";
  return out;
}

}  // namespace dpoaf::modelcheck
