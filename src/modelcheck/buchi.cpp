#include "modelcheck/buchi.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::modelcheck {

namespace {

using logic::LtlOp;

// Formula sets are sets of interning ids; `known` maps ids back to nodes.
using FSet = std::set<std::uint64_t>;

struct Registry {
  std::unordered_map<std::uint64_t, Ltl> known;
  std::uint64_t id(const Ltl& f) {
    known.emplace(f->id, f);
    return f->id;
  }
  const Ltl& get(std::uint64_t id) const {
    auto it = known.find(id);
    DPOAF_CHECK(it != known.end());
    return it->second;
  }
};

constexpr int kInitName = -1;

struct TableauNode {
  int name = 0;
  std::set<int> incoming;
  FSet news;
  FSet olds;
  FSet nexts;
};

// GPVW expansion. `nodes` accumulates the finished tableau nodes.
class Expander {
 public:
  explicit Expander(Registry& reg) : reg_(reg) {}

  std::vector<TableauNode> run(const Ltl& nnf_formula) {
    TableauNode init;
    init.name = fresh();
    init.incoming.insert(kInitName);
    init.news.insert(reg_.id(nnf_formula));
    expand(std::move(init));
    return std::move(done_);
  }

 private:
  int fresh() { return next_name_++; }

  static bool contradicts(const Ltl& f, const FSet& olds, Registry& reg) {
    // literal vs its negation already in Old
    if (f->op == LtlOp::Prop) {
      const Ltl neg = logic::ltl::lnot(f);
      return olds.count(reg.id(neg)) > 0;
    }
    if (f->op == LtlOp::Not) {
      return olds.count(f->lhs->id) > 0;
    }
    return false;
  }

  void expand(TableauNode node) {
    if (node.news.empty()) {
      // Merge with an existing node that has identical Old and Next.
      for (TableauNode& nd : done_) {
        if (nd.olds == node.olds && nd.nexts == node.nexts) {
          nd.incoming.insert(node.incoming.begin(), node.incoming.end());
          return;
        }
      }
      TableauNode next;
      next.name = fresh();
      next.incoming.insert(node.name);
      next.news = node.nexts;
      done_.push_back(std::move(node));
      expand(std::move(next));
      return;
    }

    const std::uint64_t eta_id = *node.news.begin();
    node.news.erase(node.news.begin());
    const Ltl eta = reg_.get(eta_id);

    switch (eta->op) {
      case LtlOp::False:
        return;  // inconsistent node: discard
      case LtlOp::True:
        expand(std::move(node));
        return;
      case LtlOp::Prop:
      case LtlOp::Not: {
        DPOAF_CHECK_MSG(eta->op == LtlOp::Prop || eta->lhs->op == LtlOp::Prop,
                        "tableau input must be in negation normal form");
        if (contradicts(eta, node.olds, reg_)) return;
        node.olds.insert(eta_id);
        expand(std::move(node));
        return;
      }
      case LtlOp::And: {
        node.olds.insert(eta_id);
        for (const Ltl& part : {eta->lhs, eta->rhs}) {
          const std::uint64_t pid = reg_.id(part);
          if (node.olds.count(pid) == 0) node.news.insert(pid);
        }
        expand(std::move(node));
        return;
      }
      case LtlOp::Next: {
        node.olds.insert(eta_id);
        node.nexts.insert(reg_.id(eta->lhs));
        expand(std::move(node));
        return;
      }
      case LtlOp::Or: {
        TableauNode left = node;
        left.name = fresh();
        left.olds.insert(eta_id);
        if (left.olds.count(reg_.id(eta->lhs)) == 0)
          left.news.insert(reg_.id(eta->lhs));

        TableauNode right = std::move(node);
        right.olds.insert(eta_id);
        if (right.olds.count(reg_.id(eta->rhs)) == 0)
          right.news.insert(reg_.id(eta->rhs));

        expand(std::move(left));
        expand(std::move(right));
        return;
      }
      case LtlOp::Until: {
        // μ U ψ  ≡  ψ ∨ (μ ∧ X(μ U ψ))
        TableauNode left = node;
        left.name = fresh();
        left.olds.insert(eta_id);
        if (left.olds.count(reg_.id(eta->lhs)) == 0)
          left.news.insert(reg_.id(eta->lhs));
        left.nexts.insert(eta_id);

        TableauNode right = std::move(node);
        right.olds.insert(eta_id);
        if (right.olds.count(reg_.id(eta->rhs)) == 0)
          right.news.insert(reg_.id(eta->rhs));

        expand(std::move(left));
        expand(std::move(right));
        return;
      }
      case LtlOp::Release: {
        // μ R ψ  ≡  (ψ ∧ μ) ∨ (ψ ∧ X(μ R ψ))
        TableauNode left = node;
        left.name = fresh();
        left.olds.insert(eta_id);
        if (left.olds.count(reg_.id(eta->rhs)) == 0)
          left.news.insert(reg_.id(eta->rhs));
        left.nexts.insert(eta_id);

        TableauNode right = std::move(node);
        right.olds.insert(eta_id);
        for (const Ltl& part : {eta->lhs, eta->rhs}) {
          const std::uint64_t pid = reg_.id(part);
          if (right.olds.count(pid) == 0) right.news.insert(pid);
        }

        expand(std::move(left));
        expand(std::move(right));
        return;
      }
      case LtlOp::Implies:
      case LtlOp::Eventually:
      case LtlOp::Always:
        DPOAF_CHECK_MSG(false, "tableau input must be in negation normal form");
    }
  }

  Registry& reg_;
  std::vector<TableauNode> done_;
  int next_name_ = 0;
};

}  // namespace

std::size_t BuchiAutomaton::transition_count() const {
  std::size_t n = initial.size();
  for (const auto& s : states) n += s.successors.size();
  return n;
}

BuchiAutomaton ltl_to_buchi(const Ltl& formula) {
  BuchiStats stats;
  return ltl_to_buchi(formula, stats);
}

BuchiAutomaton ltl_to_buchi(const Ltl& formula, BuchiStats& stats) {
  DPOAF_CHECK(formula != nullptr);
  // Counts tableau runs the Büchi cache did not absorb; timing feeds the
  // report's histogram only (never any computed metric).
  static obs::Counter& translations =
      obs::counter("modelcheck.buchi.translations");
  translations.add();
  obs::ScopedTimer timer(obs::histogram("modelcheck.buchi.translate_ns"));
  Registry reg;
  const Ltl nnf = logic::to_nnf(formula);
  Expander expander(reg);
  const std::vector<TableauNode> nodes = expander.run(nnf);
  stats.gba_states = nodes.size();

  // Index tableau nodes by name and invert `incoming` into adjacency.
  std::map<int, std::size_t> by_name;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    by_name.emplace(nodes[i].name, i);

  std::vector<std::vector<std::size_t>> gba_succ(nodes.size());
  std::vector<std::size_t> gba_init;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (int src : nodes[i].incoming) {
      if (src == kInitName) {
        gba_init.push_back(i);
      } else if (auto it = by_name.find(src); it != by_name.end()) {
        gba_succ[it->second].push_back(i);
      }
      // Sources that never became finished nodes (intermediate split names)
      // have no states; their edges are realized through their descendants.
    }
  }

  // Literal constraints per node.
  std::vector<Symbol> pos(nodes.size(), 0);
  std::vector<Symbol> neg(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::uint64_t id : nodes[i].olds) {
      const Ltl& f = reg.get(id);
      if (f->op == LtlOp::Prop)
        pos[i] |= logic::Vocabulary::bit(f->prop);
      else if (f->op == LtlOp::Not && f->lhs->op == LtlOp::Prop)
        neg[i] |= logic::Vocabulary::bit(f->lhs->prop);
    }
  }

  // Generalized acceptance: one set per Until subformula appearing in any
  // node: F_(μUψ) = { n | (μUψ) ∉ n.Old or ψ ∈ n.Old }.
  std::vector<std::uint64_t> untils;
  for (const TableauNode& n : nodes)
    for (std::uint64_t id : n.olds)
      if (reg.get(id)->op == LtlOp::Until) untils.push_back(id);
  std::sort(untils.begin(), untils.end());
  untils.erase(std::unique(untils.begin(), untils.end()), untils.end());

  std::vector<std::vector<bool>> in_accept(
      std::max<std::size_t>(untils.size(), 1),
      std::vector<bool>(nodes.size(), true));
  for (std::size_t k = 0; k < untils.size(); ++k) {
    const Ltl u = reg.get(untils[k]);
    const std::uint64_t psi_id = reg.id(u->rhs);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      const bool has_u = nodes[i].olds.count(untils[k]) > 0;
      const bool has_psi = nodes[i].olds.count(psi_id) > 0;
      in_accept[k][i] = !has_u || has_psi;
    }
  }
  const std::size_t k_sets = std::max<std::size_t>(untils.size(), 1);
  stats.acceptance_sets = k_sets;

  // Degeneralize: BA states are (node, counter).
  BuchiAutomaton ba;
  ba.states.resize(nodes.size() * k_sets);
  auto ba_index = [&](std::size_t node, std::size_t counter) {
    return static_cast<int>(node * k_sets + counter);
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t c = 0; c < k_sets; ++c) {
      BuchiState& s = ba.states[static_cast<std::size_t>(ba_index(i, c))];
      s.pos = pos[i];
      s.neg = neg[i];
      s.accepting = (c == 0) && in_accept[0][i];
      const std::size_t next_c = in_accept[c][i] ? (c + 1) % k_sets : c;
      for (std::size_t j : gba_succ[i])
        s.successors.push_back(ba_index(j, next_c));
    }
  }
  for (std::size_t j : gba_init) ba.initial.push_back(ba_index(j, 0));

  stats.ba_states = ba.state_count();
  stats.ba_transitions = ba.transition_count();
  return ba;
}

namespace {

// Process-wide translation cache. Shard count is modest: the working set
// is one formula per (spec, fairness set) pair — dozens, not millions —
// but the capacity must comfortably exceed it so the rulebook is never
// evicted mid-run.
std::atomic<bool> buchi_cache_on{true};

util::ShardedCache<std::uint64_t, BuchiPtr>& buchi_cache() {
  static util::ShardedCache<std::uint64_t, BuchiPtr> cache(
      /*capacity_per_shard=*/256, /*shards=*/8);
  return cache;
}

}  // namespace

BuchiPtr ltl_to_buchi_cached(const Ltl& formula) {
  DPOAF_CHECK(formula != nullptr);
  if (!buchi_cache_on.load(std::memory_order_relaxed))
    return std::make_shared<const BuchiAutomaton>(ltl_to_buchi(formula));
  return buchi_cache().get_or_compute(formula->id, [&] {
    return std::make_shared<const BuchiAutomaton>(ltl_to_buchi(formula));
  });
}

void set_buchi_cache_enabled(bool enabled) {
  buchi_cache_on.store(enabled, std::memory_order_relaxed);
}

bool buchi_cache_enabled() {
  return buchi_cache_on.load(std::memory_order_relaxed);
}

util::CacheStats buchi_cache_stats() { return buchi_cache().stats(); }

void clear_buchi_cache() {
  buchi_cache().clear();
  buchi_cache().reset_stats();
}

}  // namespace dpoaf::modelcheck
