// Synthetic pre-training corpus — the stand-in for Llama2-7B's generic
// driving knowledge. Sequences follow the paper's Appendix E prompt format
//   <s> [INST] steps for "<task>" : [/INST] <response> </s>
// and responses are drawn from each task's variant distribution with
// weights that put most of the probability mass on *imperfect* responses,
// reproducing the paper's pre-fine-tuning starting point (~60% of
// specifications satisfied).
#pragma once

#include <string>
#include <vector>

#include "driving/tasks.hpp"
#include "nn/tokenizer.hpp"
#include "util/rng.hpp"

namespace dpoaf::lm {

using nn::Tokenizer;

/// The Appendix-E-style prompt text for a task (without <s>).
std::string format_prompt_text(const std::string& task_prompt);

/// Prompt token ids including <s>; every sequence starts with these.
std::vector<int> encode_prompt(const Tokenizer& tok,
                               const std::string& task_prompt);

/// Full sequence ids: prompt + response + </s>.
std::vector<int> encode_example(const Tokenizer& tok,
                                const std::string& task_prompt,
                                const std::string& response_text);

/// Build the tokenizer over every prompt and variant text in the catalog.
Tokenizer build_tokenizer(const std::vector<driving::Task>& tasks);

/// Relative sampling weight of each variant kind in the pre-training
/// distribution. Defaults skew toward flawed phrasings.
struct VariantWeights {
  double good = 0.6;
  double good_verbose = 0.4;
  double split_checks = 1.5;
  double no_ped_check = 1.1;
  double no_car_check = 1.1;
  double no_light_check = 1.1;
  double wrong_action = 1.1;
  double reckless = 1.6;
  double unaligned = 3.4;

  [[nodiscard]] double weight(driving::FlawTag tag) const;
};

struct CorpusExample {
  std::string task_id;
  driving::FlawTag tag = driving::FlawTag::Good;
  std::vector<int> ids;
  std::int64_t prompt_len = 0;  // tokens up to and including [/INST]
};

/// Draw `samples_per_task` (prompt, response) sequences per task with the
/// given variant weights.
std::vector<CorpusExample> build_corpus(
    const std::vector<driving::Task>& tasks, const Tokenizer& tok,
    int samples_per_task, const VariantWeights& weights, Rng& rng);

/// Longest sequence in the corpus (to size the model's context).
std::int64_t max_sequence_length(const std::vector<CorpusExample>& corpus);

}  // namespace dpoaf::lm
