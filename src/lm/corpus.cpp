#include "lm/corpus.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace dpoaf::lm {

std::string format_prompt_text(const std::string& task_prompt) {
  return "[INST] steps for " + task_prompt + " : [/INST]";
}

std::vector<int> encode_prompt(const Tokenizer& tok,
                               const std::string& task_prompt) {
  std::vector<int> ids{tok.bos()};
  const auto body = tok.encode(format_prompt_text(task_prompt));
  ids.insert(ids.end(), body.begin(), body.end());
  return ids;
}

std::vector<int> encode_example(const Tokenizer& tok,
                                const std::string& task_prompt,
                                const std::string& response_text) {
  std::vector<int> ids = encode_prompt(tok, task_prompt);
  const auto body = tok.encode(response_text);
  ids.insert(ids.end(), body.begin(), body.end());
  ids.push_back(tok.eos());
  return ids;
}

Tokenizer build_tokenizer(const std::vector<driving::Task>& tasks) {
  std::vector<std::string> texts;
  for (const auto& task : tasks) {
    texts.push_back(format_prompt_text(task.prompt));
    for (const auto& variant : task.variants) texts.push_back(variant.text);
  }
  return Tokenizer::build(texts);
}

double VariantWeights::weight(driving::FlawTag tag) const {
  using driving::FlawTag;
  switch (tag) {
    case FlawTag::Good:
      return good;
    case FlawTag::GoodVerbose:
      return good_verbose;
    case FlawTag::SplitChecks:
      return split_checks;
    case FlawTag::NoPedCheck:
      return no_ped_check;
    case FlawTag::NoCarCheck:
      return no_car_check;
    case FlawTag::NoLightCheck:
      return no_light_check;
    case FlawTag::WrongAction:
      return wrong_action;
    case FlawTag::Reckless:
      return reckless;
    case FlawTag::Unaligned:
      return unaligned;
  }
  return 0.0;
}

std::vector<CorpusExample> build_corpus(
    const std::vector<driving::Task>& tasks, const Tokenizer& tok,
    int samples_per_task, const VariantWeights& weights, Rng& rng) {
  DPOAF_CHECK(samples_per_task > 0);
  std::vector<CorpusExample> corpus;
  corpus.reserve(tasks.size() * static_cast<std::size_t>(samples_per_task));
  for (const auto& task : tasks) {
    std::vector<double> w;
    w.reserve(task.variants.size());
    for (const auto& variant : task.variants)
      w.push_back(weights.weight(variant.tag));
    const std::int64_t prompt_len =
        static_cast<std::int64_t>(encode_prompt(tok, task.prompt).size());
    for (int s = 0; s < samples_per_task; ++s) {
      const auto& variant = task.variants[rng.weighted(w)];
      CorpusExample ex;
      ex.task_id = task.id;
      ex.tag = variant.tag;
      ex.ids = encode_example(tok, task.prompt, variant.text);
      ex.prompt_len = prompt_len;
      corpus.push_back(std::move(ex));
    }
  }
  return corpus;
}

std::int64_t max_sequence_length(const std::vector<CorpusExample>& corpus) {
  std::int64_t mx = 0;
  for (const auto& ex : corpus)
    mx = std::max(mx, static_cast<std::int64_t>(ex.ids.size()));
  return mx;
}

}  // namespace dpoaf::lm
