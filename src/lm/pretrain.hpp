// Pre-training loop (next-token cross-entropy over the synthetic corpus)
// and response sampling — "querying the pre-trained model" in the paper's
// pipeline. After pre-training, sampled responses mirror the corpus's
// variant distribution, so the model starts with generic-but-imperfect
// domain behaviour exactly as the paper assumes of Llama2-7B.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "lm/corpus.hpp"
#include "nn/gpt.hpp"
#include "serve/service.hpp"

namespace dpoaf::lm {

using nn::TinyGpt;

struct PretrainConfig {
  int epochs = 12;
  int batch_size = 8;
  float lr = 3e-3f;
};

struct PretrainStats {
  std::vector<double> epoch_losses;  // mean CE per epoch
};

/// Resumable pre-training state captured at an epoch boundary: model
/// weights, AdamW moments, the caller's RNG stream (pretrain shuffles
/// consume it in place), the shuffle permutation, and losses so far.
struct PretrainState {
  int completed_epochs = 0;
  std::vector<float> model_state;
  std::vector<std::vector<float>> opt_m;
  std::vector<std::vector<float>> opt_v;
  std::int64_t opt_steps = 0;
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<std::uint64_t> order;
  std::vector<double> epoch_losses;
};

/// Snapshot hooks for pretrain(): `snapshot` fires every `snapshot_every`
/// completed epochs (and after the final epoch); 0 disables.
struct PretrainHooks {
  std::function<void(const PretrainState&)> snapshot;
  int snapshot_every = 0;
};

/// Train `model` in place; returns per-epoch losses.
PretrainStats pretrain(TinyGpt& model,
                       const std::vector<CorpusExample>& corpus,
                       const PretrainConfig& config, Rng& rng);

/// As above with snapshots and optional resume. With `resume` non-null
/// the model/optimizer/RNG/permutation are restored and training
/// continues at the next epoch; the final weights, losses, and the
/// caller's RNG stream end up bitwise-identical to an uninterrupted run.
PretrainStats pretrain(TinyGpt& model,
                       const std::vector<CorpusExample>& corpus,
                       const PretrainConfig& config, Rng& rng,
                       const PretrainHooks& hooks,
                       const PretrainState* resume);

struct SamplerConfig {
  int max_new_tokens = 72;
  float temperature = 0.7f;
  int top_k = 6;
};

/// Decoded response texts (the step lists, ready for GLM2FSA) plus which
/// of them hit the model's context limit — truncated step lists usually
/// fail alignment, and the caller must be able to tell that apart from a
/// genuinely malformed response.
struct SampledResponses {
  std::vector<std::string> texts;
  std::vector<bool> truncated;  // parallel to texts

  [[nodiscard]] int truncated_count() const {
    int n = 0;
    for (const bool t : truncated) n += t ? 1 : 0;
    return n;
  }
};

/// Sample m responses for a task prompt.
SampledResponses sample_responses(const TinyGpt& model, const Tokenizer& tok,
                                  const std::string& task_prompt, int m,
                                  const SamplerConfig& config, Rng& rng);

/// Greedy (argmax) response for a task prompt — used to evaluate
/// checkpoints (Figure 9). Sets *truncated (when given) if the response
/// hit the context limit.
std::string greedy_response(const TinyGpt& model, const Tokenizer& tok,
                            const std::string& task_prompt,
                            int max_new_tokens = 72,
                            bool* truncated = nullptr);

/// Sample m responses through a continuous-batching service instead of the
/// serial decode loop above. Per-request seeds are drawn serially from
/// `rng` before submission, so with a deterministic service the result is
/// a pure function of (model weights, service seed, rng state) — identical
/// at any slot count, thread count, or arrival interleaving. The sampling
/// stream differs from sample_responses (which threads one RNG through
/// consecutive decodes), so served and direct runs are two distinct, each
/// internally reproducible, experiments.
SampledResponses sample_responses_served(serve::GenerationService& service,
                                         const Tokenizer& tok,
                                         const std::string& task_prompt,
                                         int m, const SamplerConfig& config,
                                         Rng& rng);

/// greedy_response through a service (greedy needs no RNG, so this is
/// bitwise-identical to the direct path).
std::string greedy_response_served(serve::GenerationService& service,
                                   const Tokenizer& tok,
                                   const std::string& task_prompt,
                                   int max_new_tokens = 72,
                                   bool* truncated = nullptr);

}  // namespace dpoaf::lm
