#include "lm/pretrain.hpp"

#include <numeric>

#include "nn/optim.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace dpoaf::lm {

using tensor::Tape;
using tensor::Tensor;

PretrainStats pretrain(TinyGpt& model,
                       const std::vector<CorpusExample>& corpus,
                       const PretrainConfig& config, Rng& rng) {
  return pretrain(model, corpus, config, rng, PretrainHooks{}, nullptr);
}

PretrainStats pretrain(TinyGpt& model,
                       const std::vector<CorpusExample>& corpus,
                       const PretrainConfig& config, Rng& rng,
                       const PretrainHooks& hooks,
                       const PretrainState* resume) {
  DPOAF_CHECK(!corpus.empty());
  DPOAF_CHECK(config.batch_size > 0);
  nn::AdamWConfig opt_cfg;
  opt_cfg.lr = config.lr;
  nn::AdamW opt(model.trainable_parameters(), opt_cfg);

  PretrainStats stats;
  std::vector<std::size_t> order(corpus.size());
  std::iota(order.begin(), order.end(), std::size_t{0});

  int start_epoch = 0;
  if (resume != nullptr) {
    DPOAF_CHECK_MSG(resume->order.size() == corpus.size(),
                    "resume state was captured over a different corpus");
    DPOAF_CHECK(resume->completed_epochs >= 0);
    model.load_state(resume->model_state);
    opt.load_state(resume->opt_m, resume->opt_v, resume->opt_steps);
    rng.set_state_words(resume->rng_state);
    for (std::size_t i = 0; i < order.size(); ++i)
      order[i] = static_cast<std::size_t>(resume->order[i]);
    stats.epoch_losses = resume->epoch_losses;
    start_epoch = resume->completed_epochs;
  }

  const auto capture = [&](int completed) {
    PretrainState s;
    s.completed_epochs = completed;
    s.model_state = model.state();
    s.opt_m = opt.moments_m();
    s.opt_v = opt.moments_v();
    s.opt_steps = opt.steps_taken();
    s.rng_state = rng.state_words();
    s.order.assign(order.begin(), order.end());
    s.epoch_losses = stats.epoch_losses;
    return s;
  };

  for (int epoch = start_epoch; epoch < config.epochs; ++epoch) {
    obs::ScopedTimer timer(obs::histogram("lm.pretrain.epoch_ns"));
    rng.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t i = 0;
    while (i < order.size()) {
      const std::size_t batch_end =
          std::min(order.size(), i + static_cast<std::size_t>(config.batch_size));
      Tape tape;
      Tensor batch_loss;
      const auto n_in_batch = static_cast<float>(batch_end - i);
      bool first = true;
      for (; i < batch_end; ++i) {
        Tensor loss = model.nll_loss(&tape, corpus[order[i]].ids);
        epoch_loss += loss.item();
        Tensor scaled = tensor::ops::scale(&tape, loss, 1.0f / n_in_batch);
        batch_loss = first ? scaled : tensor::ops::add(&tape, batch_loss, scaled);
        first = false;
      }
      opt.zero_grad();
      tape.backward(batch_loss);
      opt.step();
    }
    stats.epoch_losses.push_back(epoch_loss /
                                 static_cast<double>(corpus.size()));
    const int completed = epoch + 1;
    if (hooks.snapshot && hooks.snapshot_every > 0 &&
        (completed % hooks.snapshot_every == 0 || completed == config.epochs))
      hooks.snapshot(capture(completed));
  }
  return stats;
}

SampledResponses sample_responses(const TinyGpt& model, const Tokenizer& tok,
                                  const std::string& task_prompt, int m,
                                  const SamplerConfig& config, Rng& rng) {
  DPOAF_CHECK(m > 0);
  // "generation" is one of the five pipeline phases in the RunReport; every
  // sampled batch of m responses is one span (plus per-response counters).
  obs::Span span("generation", obs::histogram("lm.sample_responses_ns"));
  static obs::Counter& responses = obs::counter("lm.responses");
  static obs::Counter& tokens = obs::counter("lm.generated_tokens");
  static obs::Counter& truncations = obs::counter("lm.truncated_responses");
  const std::vector<int> prompt = encode_prompt(tok, task_prompt);
  SampledResponses out;
  out.texts.reserve(static_cast<std::size_t>(m));
  out.truncated.reserve(static_cast<std::size_t>(m));
  for (int s = 0; s < m; ++s) {
    const auto gen =
        model.generate(prompt, config.max_new_tokens, config.temperature,
                       config.top_k, tok.eos(), rng);
    responses.add();
    tokens.add(gen.ids.size());
    if (gen.truncated) truncations.add();
    out.texts.push_back(tok.decode(gen.ids));
    out.truncated.push_back(gen.truncated);
  }
  return out;
}

SampledResponses sample_responses_served(serve::GenerationService& service,
                                         const Tokenizer& tok,
                                         const std::string& task_prompt,
                                         int m, const SamplerConfig& config,
                                         Rng& rng) {
  DPOAF_CHECK(m > 0);
  obs::Span span("generation", obs::histogram("lm.sample_responses_ns"));
  static obs::Counter& responses = obs::counter("lm.responses");
  static obs::Counter& tokens = obs::counter("lm.generated_tokens");
  static obs::Counter& truncations = obs::counter("lm.truncated_responses");
  const std::vector<int> prompt = encode_prompt(tok, task_prompt);
  std::vector<serve::GenerateRequest> requests(static_cast<std::size_t>(m));
  for (serve::GenerateRequest& req : requests) {
    req.prompt = prompt;
    req.max_new_tokens = config.max_new_tokens;
    req.temperature = config.temperature;
    req.top_k = config.top_k;
    req.eos_id = tok.eos();
    req.seed = rng();  // serial draws fix every stream before submission
  }
  const auto results = service.generate_all(requests);
  SampledResponses out;
  out.texts.reserve(results.size());
  out.truncated.reserve(results.size());
  for (const serve::GenerateResult& r : results) {
    responses.add();
    tokens.add(r.ids.size());
    if (r.truncated) truncations.add();
    out.texts.push_back(tok.decode(r.ids));
    out.truncated.push_back(r.truncated);
  }
  return out;
}

std::string greedy_response_served(serve::GenerationService& service,
                                   const Tokenizer& tok,
                                   const std::string& task_prompt,
                                   int max_new_tokens, bool* truncated) {
  obs::Span span("generation");
  static obs::Counter& responses = obs::counter("lm.responses");
  static obs::Counter& tokens = obs::counter("lm.generated_tokens");
  serve::GenerateRequest req;
  req.prompt = encode_prompt(tok, task_prompt);
  req.max_new_tokens = max_new_tokens;
  req.greedy = true;
  req.eos_id = tok.eos();
  serve::GenerateResult r = service.submit(std::move(req)).result.get();
  responses.add();
  tokens.add(r.ids.size());
  if (truncated != nullptr) *truncated = r.truncated;
  return tok.decode(r.ids);
}

std::string greedy_response(const TinyGpt& model, const Tokenizer& tok,
                            const std::string& task_prompt,
                            int max_new_tokens, bool* truncated) {
  obs::Span span("generation");
  static obs::Counter& responses = obs::counter("lm.responses");
  static obs::Counter& tokens = obs::counter("lm.generated_tokens");
  const std::vector<int> prompt = encode_prompt(tok, task_prompt);
  const auto gen = model.generate_greedy(prompt, max_new_tokens, tok.eos());
  responses.add();
  tokens.add(gen.ids.size());
  if (truncated != nullptr) *truncated = gen.truncated;
  return tok.decode(gen.ids);
}

}  // namespace dpoaf::lm
