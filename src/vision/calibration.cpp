#include "vision/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dpoaf::vision {

std::vector<CalibrationBin> calibration_curve(
    const std::vector<DetectionSample>& samples, int bins) {
  DPOAF_CHECK(bins > 0);
  std::vector<CalibrationBin> curve(static_cast<std::size_t>(bins));
  const double width = 1.0 / bins;
  for (int b = 0; b < bins; ++b) {
    curve[static_cast<std::size_t>(b)].conf_lo = b * width;
    curve[static_cast<std::size_t>(b)].conf_hi = (b + 1) * width;
  }
  for (const DetectionSample& s : samples) {
    auto b = static_cast<std::size_t>(
        std::min<int>(bins - 1, static_cast<int>(s.confidence * bins)));
    CalibrationBin& bin = curve[b];
    bin.mean_confidence += s.confidence;
    bin.accuracy += s.correct ? 1.0 : 0.0;
    ++bin.count;
  }
  for (CalibrationBin& bin : curve) {
    if (bin.count == 0) continue;
    bin.mean_confidence /= bin.count;
    bin.accuracy /= bin.count;
  }
  return curve;
}

double expected_calibration_error(const std::vector<CalibrationBin>& curve) {
  std::size_t total = 0;
  for (const CalibrationBin& bin : curve) total += static_cast<std::size_t>(bin.count);
  if (total == 0) return 0.0;
  double ece = 0.0;
  for (const CalibrationBin& bin : curve) {
    if (bin.count == 0) continue;
    ece += (static_cast<double>(bin.count) / static_cast<double>(total)) *
           std::fabs(bin.accuracy - bin.mean_confidence);
  }
  return ece;
}

double max_accuracy_gap(const std::vector<CalibrationBin>& a,
                        const std::vector<CalibrationBin>& b) {
  DPOAF_CHECK(a.size() == b.size());
  double gap = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].count == 0 || b[i].count == 0) continue;
    gap = std::max(gap, std::fabs(a[i].accuracy - b[i].accuracy));
  }
  return gap;
}

double mean_accuracy_gap(const std::vector<CalibrationBin>& a,
                         const std::vector<CalibrationBin>& b) {
  DPOAF_CHECK(a.size() == b.size());
  double acc = 0.0;
  double weight = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].count == 0 || b[i].count == 0) continue;
    const double w = static_cast<double>(a[i].count + b[i].count);
    acc += w * std::fabs(a[i].accuracy - b[i].accuracy);
    weight += w;
  }
  return weight > 0.0 ? acc / weight : 0.0;
}

}  // namespace dpoaf::vision
