// Confidence calibration (the method of Yang et al. 2023 used in §5.3):
// group detections by confidence bin and compute per-bin accuracy, giving
// the confidence→accuracy mapping of Figure 12. Two domains "perform
// consistently" when their mappings approximately coincide across all
// confidence levels.
#pragma once

#include <vector>

#include "vision/detector.hpp"

namespace dpoaf::vision {

struct CalibrationBin {
  double conf_lo = 0.0;
  double conf_hi = 0.0;
  double mean_confidence = 0.0;
  double accuracy = 0.0;
  int count = 0;
};

/// Equal-width confidence bins over [0,1]; empty bins keep count 0.
std::vector<CalibrationBin> calibration_curve(
    const std::vector<DetectionSample>& samples, int bins = 10);

/// Expected calibration error: Σ (n_b / N) |acc_b − conf_b|.
double expected_calibration_error(const std::vector<CalibrationBin>& curve);

/// Maximum per-bin accuracy gap between two curves (bins empty in either
/// curve are skipped). This is the Figure-12 consistency metric: small ⇒
/// the detector performs consistently in both domains.
double max_accuracy_gap(const std::vector<CalibrationBin>& a,
                        const std::vector<CalibrationBin>& b);

/// Count-weighted mean accuracy gap between two curves.
double mean_accuracy_gap(const std::vector<CalibrationBin>& a,
                         const std::vector<CalibrationBin>& b);

}  // namespace dpoaf::vision
