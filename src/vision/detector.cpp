#include "vision/detector.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace dpoaf::vision {

std::string domain_name(Domain d) {
  return d == Domain::Simulation ? "simulation" : "real_world";
}

std::vector<std::string> driving_object_classes() {
  return {"car", "pedestrian", "traffic_light", "stop_sign"};
}

namespace {
double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

// Mild per-class detectability offsets (cars are easy, lights are small).
double class_offset(const std::string& object_class) {
  if (object_class == "car") return 0.5;
  if (object_class == "pedestrian") return 0.1;
  if (object_class == "traffic_light") return -0.3;
  if (object_class == "stop_sign") return 0.2;
  return 0.0;
}
}  // namespace

std::vector<DetectionSample> SyntheticDetector::detect(
    Domain domain, const std::string& object_class, int count,
    Rng& rng) const {
  DPOAF_CHECK(count > 0);
  const double clutter = domain == Domain::Simulation ? config_.sim_clutter
                                                      : config_.real_clutter;
  const double distortion =
      domain == Domain::Simulation ? 0.0 : config_.real_miscalibration;

  std::vector<DetectionSample> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Latent difficulty ∈ [0,1]; cluttered cases are drawn from the hard
    // end of the scale.
    double difficulty = rng.uniform();
    if (rng.chance(clutter)) difficulty = 0.5 + 0.5 * rng.uniform();

    const double quality_logit =
        config_.skill * (1.0 - 2.0 * difficulty) + class_offset(object_class);
    const double p_correct = sigmoid(quality_logit);

    // Reported confidence: the detector's own estimate of p_correct, with
    // reporting noise and the domain's calibration distortion.
    const double conf_logit = quality_logit + distortion +
                              rng.normal() * config_.confidence_noise * 4.0;
    const double confidence = std::clamp(sigmoid(conf_logit), 1e-4, 1.0 - 1e-4);

    out.push_back({object_class, confidence, rng.chance(p_correct)});
  }
  return out;
}

std::vector<DetectionSample> SyntheticDetector::detect_all(Domain domain,
                                                           int per_class,
                                                           Rng& rng) const {
  std::vector<DetectionSample> out;
  for (const std::string& cls : driving_object_classes()) {
    const auto samples = detect(domain, cls, per_class, rng);
    out.insert(out.end(), samples.begin(), samples.end());
  }
  return out;
}

}  // namespace dpoaf::vision
