// Synthetic open-set object detector — the stand-in for Grounded SAM on
// Carla frames vs NuImages (paper §5.3). Figure 12 does not need real
// pixels: it needs per-detection (confidence, correct?) samples in a
// "simulation" and a "real world" domain whose confidence→accuracy
// mappings can be compared. The generator models detections whose
// correctness probability is governed by a latent difficulty, with a
// domain-dependent clutter level and a small domain-dependent calibration
// distortion; the paper's claim — the detector performs consistently
// across the two domains — corresponds to a small distortion, which is
// the generator's default.
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dpoaf::vision {

enum class Domain { Simulation, RealWorld };

std::string domain_name(Domain d);

struct DetectionSample {
  std::string object_class;
  double confidence = 0.0;  // model's reported confidence ∈ (0,1)
  bool correct = false;     // detection matched ground truth
};

struct DetectorConfig {
  /// Detector sharpness: higher ⇒ confidence separates correct from
  /// incorrect detections more cleanly.
  double skill = 2.2;
  /// Fraction of hard cases (occlusion, glare, small objects).
  double sim_clutter = 0.18;
  double real_clutter = 0.25;
  /// Additive calibration distortion (in logit space) applied in the real
  /// domain only. Small ⇒ the two confidence→accuracy curves coincide —
  /// the consistency the paper demonstrates.
  double real_miscalibration = 0.12;
  /// Std-dev of the confidence reporting noise.
  double confidence_noise = 0.08;
};

/// The object classes Figure 12 reports.
std::vector<std::string> driving_object_classes();

class SyntheticDetector {
 public:
  explicit SyntheticDetector(DetectorConfig config = {}) : config_(config) {}

  /// Draw `count` detections of `object_class` in `domain`.
  [[nodiscard]] std::vector<DetectionSample> detect(
      Domain domain, const std::string& object_class, int count,
      Rng& rng) const;

  /// Draw `per_class` detections of every driving object class.
  [[nodiscard]] std::vector<DetectionSample> detect_all(
      Domain domain, int per_class, Rng& rng) const;

  [[nodiscard]] const DetectorConfig& config() const { return config_; }

 private:
  DetectorConfig config_;
};

}  // namespace dpoaf::vision
