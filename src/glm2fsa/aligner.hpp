// Phrase→proposition alignment (paper §4.1, "Task Prompt Engineering").
// The paper performs alignment with a second LM query ("Rephrase the
// following steps to align the defined Boolean Propositions …"); here the
// rephrasing is a deterministic lexicon of surface forms per proposition
// plus a normalized-edit-distance fallback for unseen-but-close phrasings.
// Phrases that align to nothing are reported as alignment failures — the
// paper's property 1 ("the LM can easily and correctly align the textual
// step descriptions") is scored through exactly these failures.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "logic/vocabulary.hpp"

namespace dpoaf::glm2fsa {

using logic::Vocabulary;

class PhraseAligner {
 public:
  /// An aligner seeded with every vocabulary entry's canonical name;
  /// add_surface_form() extends it, or use make_driving_aligner() for the
  /// pre-populated driving lexicon. The vocabulary is stored by value so
  /// the aligner can outlive (and be aggregated independently of) its
  /// source.
  explicit PhraseAligner(Vocabulary vocab);

  /// Register `phrase` as a surface form of proposition/action `index`.
  /// The canonical (underscore) name and its space-separated form are
  /// registered automatically for every vocabulary entry.
  void add_surface_form(std::string_view phrase, int index);

  /// Align a free-text phrase to a vocabulary index. Matching order:
  ///  1. exact lexicon lookup (after lowercasing/trimming/article removal),
  ///  2. substring containment of a surface form in the phrase,
  ///  3. best normalized edit distance below `fuzzy_threshold`.
  /// Returns nullopt when nothing matches.
  [[nodiscard]] std::optional<int> align(std::string_view phrase) const;

  [[nodiscard]] double fuzzy_threshold() const { return fuzzy_threshold_; }
  void set_fuzzy_threshold(double t) { fuzzy_threshold_ = t; }

  [[nodiscard]] const Vocabulary& vocab() const { return vocab_; }

 private:
  [[nodiscard]] static std::string normalize(std::string_view phrase);

  Vocabulary vocab_;
  std::vector<std::pair<std::string, int>> lexicon_;
  double fuzzy_threshold_ = 0.34;
};

/// Aligner pre-populated with the driving-domain surface forms (the
/// phrasings the synthetic corpus and the paper's examples use).
PhraseAligner make_driving_aligner(const Vocabulary& vocab);

}  // namespace dpoaf::glm2fsa
