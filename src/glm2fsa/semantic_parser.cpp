#include "glm2fsa/semantic_parser.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace dpoaf::glm2fsa {

namespace {

// Cues marking a negated condition phrase ("no car from left", "the light
// is not green", "the traffic light is red", "clear of traffic").
bool phrase_is_negated(std::string_view phrase) {
  // Padding built by append only: the literal+string concatenation form
  // trips GCC 12's -Wrestrict false positive at -O3 (GCC PR105651).
  std::string p;
  p.reserve(phrase.size() + 2);
  p += ' ';
  p += to_lower(std::string(phrase));
  p += ' ';
  for (const char* cue :
       {" no ", " not ", "n't ", " without ", " absent ", " clear of ",
        " is off ", " red ", " turns red ", " is clear ", " to clear"}) {
    if (p.find(cue) != std::string::npos) return true;
  }
  return false;
}

// Strip negation cues so the remainder aligns to the underlying
// proposition ("no car from the left" → "car from the left").
std::string strip_negation(std::string_view phrase) {
  std::string p = to_lower(std::string(phrase));
  for (const char* cue :
       {"there is no ", "there are no ", "no ", "not ", "is not present",
        "is not on", "is not", "isn't", "are not present", "are not",
        "aren't", "without ", "is absent", "are absent", "is off",
        "is red", "turns red", "is clear of", "clear of", "is clear",
        "to clear"}) {
    p = replace_all(std::move(p), cue, " ");
  }
  return trim(p);
}

bool starts_with_word(std::string_view text, std::string_view word) {
  if (!starts_with(text, word)) return false;
  return text.size() == word.size() ||
         !std::isalnum(static_cast<unsigned char>(text[word.size()]));
}

bool is_observe_opener(std::string_view lowered) {
  for (const char* v : {"observe", "check", "look", "watch", "monitor",
                        "scan", "approach"}) {
    if (starts_with_word(lowered, v)) return true;
  }
  // Framing clauses like "As you approach the intersection, observe …".
  const std::string p(lowered);
  for (const char* v : {", observe", ", check", ", look", " observe the",
                        " check the", " check for"}) {
    if (p.find(v) != std::string::npos) return true;
  }
  return false;
}

// True when the consequence clause is a further check rather than an
// action ("…, check the pedestrian at right").
bool is_check_consequence(std::string_view lowered) {
  const std::string p = trim(lowered);
  for (const char* v : {"check", "observe", "look", "watch", "wait",
                        "then check", "then observe"}) {
    if (starts_with_word(p, v)) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> split_steps(std::string_view response_text) {
  std::vector<std::string> steps;
  for (const std::string& raw : split(response_text, '\n')) {
    std::string line = trim(raw);
    if (line.empty()) continue;
    // Strip "N." / "N)" numbering.
    std::size_t i = 0;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i])))
      ++i;
    if (i > 0 && i < line.size() && (line[i] == '.' || line[i] == ')')) {
      line = trim(line.substr(i + 1));
    }
    if (!line.empty()) steps.push_back(line);
  }
  return steps;
}

ParsedResponse parse_response(std::string_view response_text,
                              const PhraseAligner& aligner) {
  ParsedResponse out;
  const std::vector<std::string> step_texts = split_steps(response_text);
  const logic::Vocabulary& vocab = aligner.vocab();

  for (std::size_t i = 0; i < step_texts.size(); ++i) {
    const std::string& text = step_texts[i];
    const std::string lowered = to_lower(text);
    ParsedStep step;
    step.text = text;

    if (starts_with_word(lowered, "if") || starts_with_word(lowered, "when")) {
      step.kind = StepKind::Conditional;
      // Split condition from consequence at the first comma, or at " then ".
      std::size_t cut = lowered.find(',');
      std::size_t cons_begin = cut == std::string::npos ? cut : cut + 1;
      if (cut == std::string::npos) {
        const std::size_t then_pos = lowered.find(" then ");
        if (then_pos != std::string::npos) {
          cut = then_pos;
          cons_begin = then_pos + 6;
        }
      }
      if (cut == std::string::npos) {
        out.issues.push_back({i, text, "conditional without consequence"});
        continue;
      }
      const std::string head = trim(lowered.substr(0, cut));
      const std::string cond_text =
          trim(head.substr(head.find(' ') == std::string::npos
                               ? head.size()
                               : head.find(' ') + 1));
      std::string cons_text = trim(lowered.substr(cons_begin));
      if (starts_with_word(cons_text, "then"))
        cons_text = trim(cons_text.substr(4));

      // Condition: conjunction of phrases joined by " and ".
      for (const std::string& part :
           split(replace_all(cond_text, " and ", "\x01"), '\x01')) {
        const std::string phrase = trim(part);
        if (phrase.empty()) continue;
        ConditionLiteral lit;
        lit.negated = phrase_is_negated(phrase);
        const std::string core =
            lit.negated ? strip_negation(phrase) : phrase;
        const auto idx = aligner.align(core);
        if (!idx) {
          out.issues.push_back({i, phrase, "unalignable condition phrase"});
          continue;
        }
        if (vocab.is_action(*idx)) {
          out.issues.push_back(
              {i, phrase, "condition phrase aligned to an action"});
          continue;
        }
        lit.prop = *idx;
        step.condition.push_back(lit);
      }
      if (step.condition.empty()) {
        out.issues.push_back({i, cond_text, "empty condition"});
        continue;
      }
      // Contradictory conditions ("car from left and no car from left")
      // cannot guard any transition; flag them as parse issues.
      bool contradiction = false;
      for (const auto& l1 : step.condition)
        for (const auto& l2 : step.condition)
          if (l1.prop == l2.prop && l1.negated != l2.negated)
            contradiction = true;
      if (contradiction) {
        out.issues.push_back({i, cond_text, "contradictory condition"});
        continue;
      }

      // Consequence: another check (proceed) or an action.
      if (is_check_consequence(cons_text)) {
        step.consequence = ConsequenceKind::Proceed;
      } else {
        const auto idx = aligner.align(cons_text);
        if (!idx || !vocab.is_action(*idx)) {
          out.issues.push_back({i, cons_text, "unalignable action phrase"});
          continue;
        }
        step.consequence = ConsequenceKind::EmitAction;
        step.action = logic::Vocabulary::bit(*idx);
      }
      out.steps.push_back(step);
      continue;
    }

    // "Wait for/until X" — a conditional wait: block (emitting the wait
    // action) until X holds, then advance. This is how GLM2FSA encodes the
    // paper's "Wait for the left-turn light to turn green." step.
    if (starts_with_word(lowered, "wait") &&
        (lowered.find("wait for ") == 0 || lowered.find("wait until ") == 0)) {
      const std::size_t skip =
          lowered.find("wait for ") == 0 ? 9 : 11;  // len of the opener
      const std::string phrase = trim(lowered.substr(skip));
      ConditionLiteral lit;
      lit.negated = phrase_is_negated(phrase);
      const std::string core = lit.negated ? strip_negation(phrase) : phrase;
      const auto idx = aligner.align(core);
      if (!idx || vocab.is_action(*idx)) {
        out.issues.push_back({i, phrase, "unalignable wait condition"});
        continue;
      }
      lit.prop = *idx;
      step.kind = StepKind::Conditional;
      step.condition.push_back(lit);
      step.consequence = ConsequenceKind::Proceed;
      out.steps.push_back(step);
      continue;
    }

    if (is_observe_opener(lowered)) {
      step.kind = StepKind::Observe;
      // Align the observed object for diagnostics; failure here is benign
      // (the FSA treats every observe step identically).
      if (const auto idx = aligner.align(lowered)) step.observed_prop = *idx;
      out.steps.push_back(step);
      continue;
    }

    // Bare action step. Compound sentences ("Turn left and proceed through
    // the intersection") align on the first clause that names an action.
    std::optional<int> action_idx;
    for (const std::string& clause :
         split(replace_all(lowered, " and ", "\x01"), '\x01')) {
      const auto idx = aligner.align(trim(clause));
      if (idx && vocab.is_action(*idx)) {
        action_idx = idx;
        break;
      }
    }
    if (!action_idx) {
      if (const auto idx = aligner.align(lowered);
          idx && vocab.is_action(*idx))
        action_idx = idx;
    }
    if (action_idx) {
      step.kind = StepKind::Action;
      step.consequence = ConsequenceKind::EmitAction;
      step.action = logic::Vocabulary::bit(*action_idx);
      out.steps.push_back(step);
      continue;
    }
    out.issues.push_back({i, text, "unrecognized step shape"});
  }

  if (out.steps.empty() && out.issues.empty())
    out.issues.push_back({0, std::string(response_text), "empty response"});
  return out;
}

}  // namespace dpoaf::glm2fsa
