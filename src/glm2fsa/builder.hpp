// GLM2FSA controller construction (Yang et al. 2022, as used in §4.1 and
// demonstrated in the paper's Figure 7): one FSA state per step, the first
// step's state initial, and transition rules
//
//   Observe step i      : q_i --( true        / stop )--> q_{i+1}
//   Conditional i, act A: q_i --( cond        / A    )--> q_{i+1}
//                         (implicit else: wait in q_i emitting stop)
//   Conditional i, check: q_i --( cond        / stop )--> q_{i+1}
//   Action step i       : q_i --( true        / A    )--> q_{i+1}
//
// The successor of the last step wraps to q_1: the task restarts, which is
// the standard reactive-verification closure (an absorbing final state
// would trivially violate liveness specifications such as
// Φ10 = □(green → ◇¬stop)). Waiting/observing emits `stop` — a vehicle
// holding for its step condition is physically stationary, which is what
// the rulebook's Φ6 = □(stop ∨ go ∨ turn …) presumes.
#pragma once

#include <string>

#include "automata/controller.hpp"
#include "glm2fsa/semantic_parser.hpp"

namespace dpoaf::glm2fsa {

using automata::FsaController;

struct BuildOptions {
  /// Action emitted when waiting/observing; driving uses {stop}.
  Symbol wait_action = 0;
};

/// Build a controller from a parsed response. Requires response.ok().
FsaController build_controller(const ParsedResponse& response,
                               const BuildOptions& options);

/// Convenience: split → align → parse → build in one call. Returns the
/// parse result alongside the controller; `controller` is only valid when
/// `parsed.ok()`.
struct Glm2FsaResult {
  ParsedResponse parsed;
  FsaController controller;
};
Glm2FsaResult glm2fsa(std::string_view response_text,
                      const PhraseAligner& aligner,
                      const BuildOptions& options);

}  // namespace dpoaf::glm2fsa
