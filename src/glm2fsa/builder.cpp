#include "glm2fsa/builder.hpp"

#include <cstdio>

#include "util/check.hpp"

namespace dpoaf::glm2fsa {

using automata::CtrlStateId;
using automata::Guard;

FsaController build_controller(const ParsedResponse& response,
                               const BuildOptions& options) {
  DPOAF_CHECK_MSG(response.ok(),
                  "cannot build a controller from a failed parse");
  FsaController ctrl(options.wait_action);

  const std::size_t n = response.steps.size();
  std::vector<CtrlStateId> states;
  states.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Formatted into a char buffer: literal+string concatenation trips
    // GCC 12's -Wrestrict false positive at -O3 (GCC PR105651).
    char buf[24];
    std::snprintf(buf, sizeof buf, "q%zu", i + 1);
    states.push_back(ctrl.add_state(buf));
  }
  ctrl.set_initial(states.front());

  for (std::size_t i = 0; i < n; ++i) {
    const ParsedStep& step = response.steps[i];
    const CtrlStateId from = states[i];
    const CtrlStateId to = states[(i + 1) % n];  // last step wraps to q_1

    switch (step.kind) {
      case StepKind::Observe: {
        ctrl.add_transition(from, Guard::top(), options.wait_action, to);
        break;
      }
      case StepKind::Action: {
        ctrl.add_transition(from, Guard::top(), step.action, to);
        break;
      }
      case StepKind::Conditional: {
        Guard guard;
        for (const ConditionLiteral& lit : step.condition) {
          const Symbol bit = logic::Vocabulary::bit(lit.prop);
          if (lit.negated)
            guard.must_false |= bit;
          else
            guard.must_true |= bit;
        }
        const Symbol action = step.consequence == ConsequenceKind::EmitAction
                                  ? step.action
                                  : options.wait_action;
        ctrl.add_transition(from, guard, action, to);
        // The unmet-condition case is the controller's implicit wait
        // self-loop (FsaController::moves), emitting the wait action.
        break;
      }
    }
  }
  return ctrl;
}

Glm2FsaResult glm2fsa(std::string_view response_text,
                      const PhraseAligner& aligner,
                      const BuildOptions& options) {
  Glm2FsaResult result{parse_response(response_text, aligner),
                       FsaController(options.wait_action)};
  if (result.parsed.ok())
    result.controller = build_controller(result.parsed, options);
  return result;
}

}  // namespace dpoaf::glm2fsa
