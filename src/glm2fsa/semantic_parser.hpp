// Semantic parsing of step lists (paper §4.1, "Controller Construction"):
// breaks each textual step into verb phrases and keywords, producing the
// intermediate form the paper illustrates as
//   <observe traffic light>. / <if> <green traffic light>, <go straight>.
// Three step shapes are recognized:
//   Observe      — "Observe/Check/Look at/Watch X."
//   Conditional  — "If C₁ and C₂ …, A."  (A an action or a check/observe)
//   Action       — "Turn right." / "Execute the action stop."
#pragma once

#include <string>
#include <vector>

#include "glm2fsa/aligner.hpp"
#include "logic/vocabulary.hpp"

namespace dpoaf::glm2fsa {

using logic::Symbol;

enum class StepKind { Observe, Conditional, Action };

/// One literal of a step condition: proposition index + polarity.
struct ConditionLiteral {
  int prop = -1;
  bool negated = false;
};

/// What the step does once its condition holds.
enum class ConsequenceKind {
  EmitAction,  // emit `action` and advance
  Proceed,     // a further check/observe: advance without acting
};

struct ParsedStep {
  StepKind kind = StepKind::Observe;
  std::vector<ConditionLiteral> condition;  // empty for Observe/Action
  ConsequenceKind consequence = ConsequenceKind::Proceed;
  Symbol action = 0;       // valid when consequence == EmitAction
  int observed_prop = -1;  // for Observe steps (diagnostics only)
  std::string text;        // the original step text
};

/// A parse failure on one step. The paper treats unalignable output as a
/// deficiency that the fine-tuning should reduce; failures are therefore
/// recorded rather than thrown, and the ranking code scores them.
struct ParseIssue {
  std::size_t step_index = 0;
  std::string phrase;   // the offending fragment
  std::string message;  // what went wrong
};

struct ParsedResponse {
  std::vector<ParsedStep> steps;
  std::vector<ParseIssue> issues;

  [[nodiscard]] bool ok() const { return issues.empty() && !steps.empty(); }
};

/// Split a response body into numbered step texts. Accepts "1. foo", "2)
/// bar", or bare lines; blank lines are skipped.
std::vector<std::string> split_steps(std::string_view response_text);

/// Parse an entire response (numbered step list) using `aligner` to ground
/// phrases in the vocabulary.
ParsedResponse parse_response(std::string_view response_text,
                              const PhraseAligner& aligner);

}  // namespace dpoaf::glm2fsa
