#include "glm2fsa/aligner.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace dpoaf::glm2fsa {

PhraseAligner::PhraseAligner(Vocabulary vocab) : vocab_(std::move(vocab)) {
  for (std::size_t i = 0; i < vocab_.size(); ++i) {
    const auto idx = static_cast<int>(i);
    add_surface_form(vocab_.name(idx), idx);
    add_surface_form(replace_all(vocab_.name(idx), "_", " "), idx);
  }
}

void PhraseAligner::add_surface_form(std::string_view phrase, int index) {
  lexicon_.emplace_back(normalize(phrase), index);
}

std::string PhraseAligner::normalize(std::string_view phrase) {
  std::string s = to_lower(trim(phrase));
  // Strip articles and filler determiners that carry no alignment signal.
  const std::vector<std::string> stop_words{"the", "a",  "an",  "your",
                                            "you", "of", "for", "state"};
  std::vector<std::string> kept;
  for (const std::string& w : split_ws(s)) {
    if (std::find(stop_words.begin(), stop_words.end(), w) ==
        stop_words.end())
      kept.push_back(w);
  }
  return join(kept, " ");
}

std::optional<int> PhraseAligner::align(std::string_view phrase) const {
  const std::string p = normalize(phrase);
  if (p.empty()) return std::nullopt;

  // 1. Exact match.
  for (const auto& [form, idx] : lexicon_)
    if (form == p) return idx;

  // 2. Containment: the longest surface form embedded in the phrase wins
  // ("observe green traffic light ahead" contains "green traffic light").
  std::optional<int> best_contained;
  std::size_t best_len = 0;
  for (const auto& [form, idx] : lexicon_) {
    if (form.size() > best_len && p.find(form) != std::string::npos) {
      best_contained = idx;
      best_len = form.size();
    }
  }
  if (best_contained) return best_contained;

  // 3. Fuzzy match by normalized edit distance.
  std::optional<int> best_fuzzy;
  double best_dist = fuzzy_threshold_;
  for (const auto& [form, idx] : lexicon_) {
    const double d = normalized_edit_distance(form, p);
    if (d < best_dist) {
      best_dist = d;
      best_fuzzy = idx;
    }
  }
  return best_fuzzy;
}

PhraseAligner make_driving_aligner(const Vocabulary& vocab) {
  PhraseAligner a(vocab);
  auto add = [&](std::string_view name,
                 std::initializer_list<std::string_view> forms) {
    const auto idx = vocab.find(name);
    if (!idx) return;
    for (std::string_view f : forms) a.add_surface_form(f, *idx);
  };

  add("green_traffic_light",
      {"traffic light is green", "light is green", "green light",
       "light turns green", "traffic light turns green", "signal is green",
       "traffic light"});
  add("green_left_turn_light",
      {"left turn light is green", "left-turn light is green",
       "green left-turn light", "left turn light turns green",
       "left-turn light turns green", "left turn light to turn green",
       "left-turn light to turn green", "green arrow", "left turn light",
       "left-turn light", "left turn signal"});
  add("flashing_left_turn_light",
      {"left turn light is flashing", "flashing left-turn light",
       "flashing yellow arrow", "flashing arrow"});
  add("opposite_car",
      {"oncoming traffic", "oncoming car", "car from opposite direction",
       "opposite traffic", "oncoming vehicles"});
  add("car_from_left",
      {"left approaching car", "car approaching from left",
       "car approaching from the left", "traffic from left",
       "cars coming from left", "vehicle from left", "car on left",
       "left traffic"});
  add("car_from_right",
      {"right approaching car", "car approaching from right",
       "traffic from right", "cars coming from right", "vehicle from right",
       "car on right"});
  add("pedestrian_at_left",
      {"pedestrian on left", "left side pedestrian", "person on left",
       "people crossing on left"});
  add("pedestrian_at_right",
      {"pedestrian on right", "right side pedestrian", "person on right",
       "people crossing on right", "pedestrians on right"});
  add("pedestrian_in_front",
      {"pedestrian ahead", "pedestrian crossing in front", "person ahead",
       "pedestrian in crosswalk", "people in crosswalk"});
  add("stop_sign", {"stop signal sign", "octagonal sign"});

  add("stop", {"halt", "come to stop", "come to complete stop", "wait",
               "brake", "remain stopped"});
  add("turn_left", {"make left turn", "turn vehicle left", "left turn",
                    "steer left"});
  add("turn_right", {"make right turn", "turn vehicle right", "right turn",
                     "steer right", "proceed to turn right"});
  add("go_straight", {"proceed forward", "drive forward", "move forward",
                      "proceed straight", "continue straight",
                      "drive through intersection", "start moving forward",
                      "proceed through intersection"});
  return a;
}

}  // namespace dpoaf::glm2fsa
