#include "sim/simulator.hpp"

#include "util/check.hpp"

namespace dpoaf::sim {

Rollout Simulator::run(const FsaController& controller, Rng& rng) const {
  DPOAF_CHECK(model_.state_count() > 0);
  DPOAF_CHECK(controller.state_count() > 0);
  Rollout rollout;
  rollout.trace.reserve(static_cast<std::size_t>(config_.horizon));

  auto p = static_cast<automata::ModelStateId>(
      rng.below(model_.state_count()));
  automata::CtrlStateId q = controller.initial();

  for (int step = 0; step < config_.horizon; ++step) {
    Symbol observation = model_.label(p);
    if (config_.perception_noise > 0.0) {
      for (int bit = 0; bit < 64; ++bit) {
        const Symbol mask = Symbol{1} << static_cast<unsigned>(bit);
        if ((config_.noise_mask & mask) == 0) continue;
        if (rng.chance(config_.perception_noise)) observation ^= mask;
      }
    }

    const auto move = controller.step(q, observation);
    const Symbol action =
        move.action == 0 ? config_.epsilon_label : move.action;
    rollout.trace.push_back(observation | action);
    rollout.model_states.push_back(p);
    rollout.ctrl_states.push_back(q);

    q = move.to;
    const auto& succ = model_.successors(p);
    if (succ.empty()) break;  // deadlocked environment: end the rollout
    p = succ[rng.below(succ.size())];
  }
  return rollout;
}

std::vector<Trace> Simulator::collect_traces(const FsaController& controller,
                                             int count, Rng& rng) const {
  DPOAF_CHECK(count > 0);
  std::vector<Trace> traces;
  traces.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    traces.push_back(run(controller, rng).trace);
  return traces;
}

}  // namespace dpoaf::sim
