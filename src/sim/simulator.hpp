// Scenario simulator — the repository's Carla substitute (§4.2, Empirical
// Evaluation). It executes an FSA controller against stochastic
// environment dynamics and returns the grounding artifact the paper
// defines: G(C, S) ∈ (2^P × 2^P_A)^N, a finite sequence of
// proposition/action pairs describing one operation of the controller in
// the system.
//
// The environment walks the scenario's transition system (uniformly random
// successor each step, like Carla's traffic randomization); optional
// perception noise flips each observed proposition independently with a
// small probability, modeling the sim-to-perception gap. With zero noise
// the simulator's traces are exactly paths of the abstract model — the
// premise of Theorem 1 (formal ⟹ empirical), which the test suite checks.
#pragma once

#include <vector>

#include "automata/controller.hpp"
#include "automata/transition_system.hpp"
#include "logic/ltlf.hpp"
#include "util/rng.hpp"

namespace dpoaf::sim {

using automata::FsaController;
using automata::TransitionSystem;
using logic::Symbol;
using logic::Trace;

struct SimulatorConfig {
  /// Steps per rollout (the paper's N).
  int horizon = 40;
  /// Per-proposition observation flip probability (0 = perfect perception).
  double perception_noise = 0.0;
  /// Mask of propositions noise may flip (defaults to every bit; set to
  /// the environment mask so actions are never corrupted).
  Symbol noise_mask = ~Symbol{0};
  /// Replace the controller's ε action with this symbol in the trace
  /// (driving: {stop}), mirroring the product construction.
  Symbol epsilon_label = 0;
};

/// One rollout: the grounding G(C, S). The trace's symbols are
/// observation ∪ action at each step; `model_states` records the ground
/// truth path (diagnostics and tests).
struct Rollout {
  Trace trace;
  std::vector<automata::ModelStateId> model_states;
  std::vector<automata::CtrlStateId> ctrl_states;
};

class Simulator {
 public:
  Simulator(const TransitionSystem& model, SimulatorConfig config)
      : model_(model), config_(config) {}

  /// Execute `controller` once from a uniformly random initial model state.
  [[nodiscard]] Rollout run(const FsaController& controller, Rng& rng) const;

  /// Collect `count` independent rollouts.
  [[nodiscard]] std::vector<Trace> collect_traces(
      const FsaController& controller, int count, Rng& rng) const;

  [[nodiscard]] const SimulatorConfig& config() const { return config_; }

 private:
  const TransitionSystem& model_;
  SimulatorConfig config_;
};

}  // namespace dpoaf::sim
