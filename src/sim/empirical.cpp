#include "sim/empirical.hpp"

#include "monitor/monitor.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::sim {

double EmpiricalReport::mean_probability() const {
  if (per_spec.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& s : per_spec) acc += s.probability;
  return acc / static_cast<double>(per_spec.size());
}

double EmpiricalReport::probability_of(const std::string& spec_name) const {
  for (const auto& s : per_spec)
    if (s.spec_name == spec_name) return s.probability;
  DPOAF_CHECK_MSG(false, "unknown spec in empirical report: " + spec_name);
  return 0.0;
}

EmpiricalReport empirical_evaluation(const Simulator& simulator,
                                     const FsaController& controller,
                                     const std::vector<NamedSpec>& specs,
                                     int rollouts, Rng& rng) {
  static obs::Counter& evals_c = obs::counter("sim.empirical.evaluations");
  evals_c.add();
  const std::vector<logic::Trace> traces =
      simulator.collect_traces(controller, rollouts, rng);
  EmpiricalReport report;
  report.rollouts = rollouts;
  for (const logic::Trace& t : traces)
    if (t.empty()) ++report.skipped_traces;
  report.per_spec.reserve(specs.size());
  // Per-spec streaming check through the compiled-monitor cache: the
  // first evaluation of a spec pays one LTLf→DFA compile, every later
  // one is a shared-pointer cache hit plus |trace| table lookups per
  // trace. monitor::satisfaction_counts falls back to the tree evaluator
  // (verdict-identically) when monitors are disabled or the spec is
  // uncompilable, and CHECKs when every trace is empty.
  for (const NamedSpec& spec : specs) {
    const auto counts = monitor::satisfaction_counts(spec.formula, traces);
    report.per_spec.push_back({spec.name, counts.rate()});
  }
  return report;
}

}  // namespace dpoaf::sim
