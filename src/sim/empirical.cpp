#include "sim/empirical.hpp"

#include "util/check.hpp"

namespace dpoaf::sim {

double EmpiricalReport::mean_probability() const {
  if (per_spec.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& s : per_spec) acc += s.probability;
  return acc / static_cast<double>(per_spec.size());
}

double EmpiricalReport::probability_of(const std::string& spec_name) const {
  for (const auto& s : per_spec)
    if (s.spec_name == spec_name) return s.probability;
  DPOAF_CHECK_MSG(false, "unknown spec in empirical report: " + spec_name);
  return 0.0;
}

EmpiricalReport empirical_evaluation(const Simulator& simulator,
                                     const FsaController& controller,
                                     const std::vector<NamedSpec>& specs,
                                     int rollouts, Rng& rng) {
  const std::vector<logic::Trace> traces =
      simulator.collect_traces(controller, rollouts, rng);
  EmpiricalReport report;
  report.rollouts = rollouts;
  report.per_spec.reserve(specs.size());
  for (const NamedSpec& spec : specs) {
    report.per_spec.push_back(
        {spec.name, logic::satisfaction_rate(spec.formula, traces)});
  }
  return report;
}

}  // namespace dpoaf::sim
