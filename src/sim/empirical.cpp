#include "sim/empirical.hpp"

#include "monitor/monitor.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::sim {

double EmpiricalReport::mean_probability() const {
  if (per_spec.empty()) return 0.0;
  double acc = 0.0;
  for (const auto& s : per_spec) acc += s.probability;
  return acc / static_cast<double>(per_spec.size());
}

double EmpiricalReport::probability_of(const std::string& spec_name) const {
  for (const auto& s : per_spec)
    if (s.spec_name == spec_name) return s.probability;
  DPOAF_CHECK_MSG(false, "unknown spec in empirical report: " + spec_name);
  return 0.0;
}

EmpiricalReport empirical_evaluation(const Simulator& simulator,
                                     const FsaController& controller,
                                     const std::vector<NamedSpec>& specs,
                                     int rollouts, Rng& rng) {
  static obs::Counter& evals_c = obs::counter("sim.empirical.evaluations");
  evals_c.add();
  const std::vector<logic::Trace> traces =
      simulator.collect_traces(controller, rollouts, rng);
  EmpiricalReport report;
  report.rollouts = rollouts;
  for (const logic::Trace& t : traces)
    if (t.empty()) ++report.skipped_traces;
  report.per_spec.reserve(specs.size());
  // Per-spec streaming check through the compiled-monitor cache: the
  // first evaluation of a spec pays one LTLf→DFA compile, every later
  // one is a shared-pointer cache hit plus |trace| table lookups per
  // trace. monitor::satisfaction_counts falls back to the tree evaluator
  // (verdict-identically) when monitors are disabled or the spec is
  // uncompilable, and CHECKs when every trace is empty.
  for (const NamedSpec& spec : specs) {
    const auto counts = monitor::satisfaction_counts(spec.formula, traces);
    report.per_spec.push_back({spec.name, counts.rate()});
  }
  return report;
}

std::vector<ScenarioSweepEntry> empirical_scenario_sweep(
    const driving::DrivingDomain& domain, int rollouts, std::uint64_t seed,
    SimulatorConfig base) {
  // Noise may flip observed environment propositions, never the action
  // bits the controller emitted.
  logic::Symbol action_mask = 0;
  for (const char* a : {"stop", "turn_left", "turn_right", "go_straight"}) {
    const auto bit = domain.vocab().find(a);
    DPOAF_CHECK_MSG(bit.has_value(),
                    "driving vocabulary missing action " + std::string(a));
    action_mask |= logic::Vocabulary::bit(*bit);
  }

  Rng root(seed);
  std::vector<ScenarioSweepEntry> out;
  out.reserve(domain.scenarios().size());
  for (const driving::Scenario& sc : domain.scenarios()) {
    Rng rng = root.split();  // serial, registry order — deterministic
    const driving::Task* task = nullptr;
    for (const driving::Task& t : domain.tasks())
      if (t.scenario == sc.key) {
        task = &t;
        break;
      }
    DPOAF_CHECK_MSG(task != nullptr,
                    "scenario has no catalog task: " + sc.key);
    const driving::ResponseVariant* good = nullptr;
    for (const driving::ResponseVariant& v : task->variants)
      if (v.tag == driving::FlawTag::Good) {
        good = &v;
        break;
      }
    DPOAF_CHECK_MSG(good != nullptr,
                    "task has no compliant variant: " + task->id);
    const driving::FeedbackResult fb =
        driving::formal_feedback(domain, sc.key, good->text);
    DPOAF_CHECK_MSG(fb.aligned,
                    "compliant variant failed to align: " + task->id);

    SimulatorConfig cfg = base;
    cfg.perception_noise = sc.perception_noise;
    cfg.noise_mask = ~action_mask;
    cfg.epsilon_label = domain.stop_action();
    const Simulator simulator(sc.model, cfg);
    ScenarioSweepEntry entry;
    entry.scenario_key = sc.key;
    entry.generated = sc.generated;
    entry.holdout = sc.holdout;
    entry.report =
        empirical_evaluation(simulator, fb.controller, sc.specs, rollouts, rng);
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace dpoaf::sim
