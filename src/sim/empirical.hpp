// Empirical evaluation (paper §4.2, Eq. 2): run the controller in the
// simulated system, check each rollout trace against each specification
// under finite-trace (LTLf) semantics, and report
//     P_Φ = (# sequences satisfying Φ) / (total # sequences)
// per specification — the quantity Figure 11 plots before/after
// fine-tuning.
#pragma once

#include <string>
#include <vector>

#include "modelcheck/checker.hpp"
#include "sim/simulator.hpp"

namespace dpoaf::sim {

using modelcheck::NamedSpec;

struct SpecSatisfaction {
  std::string spec_name;
  double probability = 0.0;  // P_Φ
};

struct EmpiricalReport {
  std::vector<SpecSatisfaction> per_spec;
  int rollouts = 0;

  [[nodiscard]] double mean_probability() const;
  [[nodiscard]] double probability_of(const std::string& spec_name) const;
};

/// Run `rollouts` simulations of `controller` and evaluate every spec on
/// every trace.
EmpiricalReport empirical_evaluation(const Simulator& simulator,
                                     const FsaController& controller,
                                     const std::vector<NamedSpec>& specs,
                                     int rollouts, Rng& rng);

}  // namespace dpoaf::sim
