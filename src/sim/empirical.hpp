// Empirical evaluation (paper §4.2, Eq. 2): run the controller in the
// simulated system, check each rollout trace against each specification
// under finite-trace (LTLf) semantics, and report
//     P_Φ = (# sequences satisfying Φ) / (total # sequences)
// per specification — the quantity Figure 11 plots before/after
// fine-tuning.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "driving/domain.hpp"
#include "modelcheck/checker.hpp"
#include "sim/simulator.hpp"

namespace dpoaf::sim {

using modelcheck::NamedSpec;

struct SpecSatisfaction {
  std::string spec_name;
  double probability = 0.0;  // P_Φ
};

struct EmpiricalReport {
  std::vector<SpecSatisfaction> per_spec;
  int rollouts = 0;
  /// Rollouts that produced an *empty* trace. These carry no step to
  /// evaluate, so they are excluded from every per-spec denominator
  /// instead of silently counting as violations; a run where every
  /// rollout is empty CHECKs (that is a simulator bug, not a 0% P_Φ).
  int skipped_traces = 0;

  [[nodiscard]] double mean_probability() const;
  [[nodiscard]] double probability_of(const std::string& spec_name) const;
};

/// Run `rollouts` simulations of `controller` and evaluate every spec on
/// every trace, streaming each trace through the spec's compiled DFA
/// monitor (monitor::monitor_for cache; see docs/VERIFICATION.md). The
/// report is byte-identical whether monitors are enabled or the LTLf
/// tree evaluator runs — tests/test_monitor.cpp enforces it.
EmpiricalReport empirical_evaluation(const Simulator& simulator,
                                     const FsaController& controller,
                                     const std::vector<NamedSpec>& specs,
                                     int rollouts, Rng& rng);

/// One row of the registry-wide sweep below.
struct ScenarioSweepEntry {
  std::string scenario_key;
  bool generated = false;
  bool holdout = false;
  EmpiricalReport report;
};

/// Empirical evaluation across the *whole* scenario registry — generated
/// scenarios included: for every scenario, synthesize the reference
/// controller (the canonical compliant variant of the scenario's first
/// catalog task), simulate it under the scenario's own perception-noise
/// level (the grammar's noise axis; env propositions only), and evaluate
/// the rollouts against the scenario's own rulebook. Deterministic per
/// seed: one child Rng per scenario, split in registry order.
/// `base.perception_noise` and `base.noise_mask`/`epsilon_label` are
/// overridden per scenario; the other fields pass through.
std::vector<ScenarioSweepEntry> empirical_scenario_sweep(
    const driving::DrivingDomain& domain, int rollouts, std::uint64_t seed,
    SimulatorConfig base = {});

}  // namespace dpoaf::sim
