// RunReport — the machine-readable artifact of one instrumented run:
// a snapshot of the metrics registry, per-phase span rollups, named value
// series (e.g. per-epoch DPO loss), and optionally the raw trace.
//
// Serialized as JSON with a stable schema ("dpoaf.run_report", version 1;
// field-by-field spec in docs/RUN_REPORT_SCHEMA.md, validated in CI by
// scripts/check_metrics_schema.py) and as a Chrome trace ("traceEvents")
// loadable in chrome://tracing / ui.perfetto.dev. from_json() parses
// exactly what to_json() emits, so reports round-trip — the perf-smoke CI
// job and future PRs can diff runs structurally.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dpoaf::obs {

/// A named sequence of doubles, e.g. {"dpo.loss", one value per epoch}.
/// Non-finite values serialize as JSON null and parse back as NaN.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// One run's complete observability artifact. Everything here except
/// wall-clock-derived data (histogram contents, phase total_ns, the
/// trace) is deterministic for a fixed configuration — see the
/// "Determinism contract" section of docs/RUN_REPORT_SCHEMA.md.
struct RunReport {
  /// Schema version ("dpoaf.run_report" version 1).
  int version = 1;
  /// Producing binary, e.g. "finetune_pipeline".
  std::string tool;
  /// Registry snapshot: counters, gauges, log2-bucket histograms.
  MetricsSnapshot metrics;
  /// Per-span-name rollups (span count + summed duration), aggregated
  /// from `trace` at capture time.
  std::vector<PhaseStat> phases;
  /// Producer-attached per-epoch value series, in insertion order.
  std::vector<Series> series;
  /// Raw span events sorted by start time (dropped from the JSON when
  /// to_json() is called with include_trace = false).
  std::vector<TraceEvent> trace;
};

/// Snapshot the process-wide registry and trace into a report. The trace
/// is copied, not drained, so capturing is repeatable.
[[nodiscard]] RunReport capture_run_report(std::string tool);

/// Append a value series (kept in insertion order).
void add_series(RunReport& report, std::string name,
                std::vector<double> values);

/// The stable-schema JSON document (single line, UTF-8, keys in fixed
/// order). `include_trace` = false drops the "trace" array (reports stay
/// small for CI artifacts; the chrome export carries the events instead).
[[nodiscard]] std::string to_json(const RunReport& report,
                                  bool include_trace = true);

/// Chrome trace-event JSON ({"traceEvents": [...]}) of the report's trace.
[[nodiscard]] std::string to_chrome_trace(const RunReport& report);

/// Parse a to_json() document. Returns false (leaving `out` unspecified)
/// on malformed JSON or a schema mismatch.
bool from_json(std::string_view json, RunReport& out);

/// Write `content` to `path` (truncating). Returns false on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace dpoaf::obs
