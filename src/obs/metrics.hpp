// Process-wide observability: a registry of named counters, gauges, and
// histograms feeding the RunReport exporter (obs/report.hpp).
//
// Design constraints (see DESIGN.md "Observability"):
//  - Zero cost when disabled. Every record path starts with one relaxed
//    atomic load of the global enable flag and returns immediately when it
//    is off — no clock reads, no allocation, no locks.
//  - Mutex-striped registration, lock-free recording. Looking a metric up
//    by name takes a shard mutex (like util::ShardedCache); the returned
//    reference is stable for the process lifetime, so hot paths resolve
//    once (function-local static) and then only touch std::atomic fields.
//  - Deterministic values. Counters count logical events (cache hits, DPO
//    steps, matmul calls), which are identical across runs of the same
//    configuration; wall-clock lives only in histograms and trace spans,
//    which are reported but never fed back into any computed metric — the
//    property tests compare RunResult numbers with observability on vs off.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dpoaf::obs {

/// Global observability switch (default off). Recording into counters,
/// gauges, histograms, and trace spans is a no-op while disabled.
void set_enabled(bool on);
[[nodiscard]] bool enabled();

/// Monotonic event counter. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value, plus a high-water-mark helper.
class Gauge {
 public:
  void set(std::int64_t v) {
    if (enabled()) value_.store(v, std::memory_order_relaxed);
  }
  /// Raise the gauge to `v` if it is below it (e.g. max queue depth).
  void record_max(std::int64_t v) {
    if (!enabled()) return;
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Snapshot of a histogram: count/sum/min/max plus log2 buckets —
/// buckets[i] counts recorded values v with bit_width(v) == i (v = 0 goes
/// to bucket 0).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  // 0 when count == 0
  std::uint64_t max = 0;
  std::array<std::uint64_t, 64> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

/// Lock-free log2-bucketed histogram of non-negative integer samples
/// (durations in nanoseconds, sizes, …).
class Histogram {
 public:
  void record(std::uint64_t v);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{UINT64_MAX};
  std::atomic<std::uint64_t> max_{0};
  std::array<std::atomic<std::uint64_t>, 64> buckets_{};
};

/// RAII wall-clock timer recording one duration (ns) into a histogram on
/// destruction. Unlike a trace Span it emits no trace event, so it is safe
/// on paths hot enough that per-call events would swamp the trace buffer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_;       // nullptr when observability was off at entry
  std::uint64_t start_ns_ = 0;
};

/// One (name, value) snapshot row.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};
struct HistogramSample {
  std::string name;
  HistogramSnapshot snapshot;
};

/// Full registry snapshot, each section sorted by name for stable output.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// The process-wide named-metric registry. Metric objects are created on
/// first lookup and never destroyed or moved, so references returned here
/// stay valid for the process lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Zero every registered metric (registrations survive).
  void reset();

 private:
  MetricsRegistry() = default;

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
    std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
    std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms;
  };
  static constexpr std::size_t kShards = 8;  // power of two

  Shard& shard_for(std::string_view name);

  std::array<Shard, kShards> shards_;
};

/// Shorthands for the hot-path idiom:
///   static auto& c = obs::counter("tensor.matmul.calls");
///   c.add();
inline Counter& counter(std::string_view name) {
  return MetricsRegistry::instance().counter(name);
}
inline Gauge& gauge(std::string_view name) {
  return MetricsRegistry::instance().gauge(name);
}
inline Histogram& histogram(std::string_view name) {
  return MetricsRegistry::instance().histogram(name);
}

/// Monotonic nanoseconds since an arbitrary process-local epoch (the first
/// call). Shared by ScopedTimer and the trace spans so all timestamps in a
/// report are mutually comparable.
[[nodiscard]] std::uint64_t monotonic_now_ns();

}  // namespace dpoaf::obs
