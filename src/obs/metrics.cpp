#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <chrono>

namespace dpoaf::obs {

namespace {

std::atomic<bool> g_enabled{false};

}  // namespace

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

std::uint64_t monotonic_now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point epoch = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                           epoch)
          .count());
}

void Histogram::record(std::uint64_t v) {
  if (!enabled()) return;
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur &&
         !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur &&
         !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  buckets_[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
      1, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const std::uint64_t min = min_.load(std::memory_order_relaxed);
  s.min = min == UINT64_MAX ? 0 : min;
  s.max = max_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.buckets.size(); ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(Histogram& hist)
    : hist_(enabled() ? &hist : nullptr) {
  if (hist_ != nullptr) start_ns_ = monotonic_now_ns();
}

ScopedTimer::~ScopedTimer() {
  if (hist_ != nullptr) hist_->record(monotonic_now_ns() - start_ns_);
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for(std::string_view name) {
  // Same finalizer mix as util::ShardedCache: std::hash of short strings
  // can cluster in the low bits.
  std::uint64_t h = std::hash<std::string_view>{}(name);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return shards_[h & (kShards - 1)];
}

Counter& MetricsRegistry::counter(std::string_view name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.counters[std::string(name)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.gauges[std::string(name)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  Shard& shard = shard_for(name);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto& slot = shard.histograms[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, c] : shard.counters)
      out.counters.push_back({name, c->value()});
    for (const auto& [name, g] : shard.gauges)
      out.gauges.push_back({name, g->value()});
    for (const auto& [name, h] : shard.histograms)
      out.histograms.push_back({name, h->snapshot()});
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(out.counters.begin(), out.counters.end(), by_name);
  std::sort(out.gauges.begin(), out.gauges.end(), by_name);
  std::sort(out.histograms.begin(), out.histograms.end(), by_name);
  return out;
}

void MetricsRegistry::reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [name, c] : shard.counters) c->reset();
    for (auto& [name, g] : shard.gauges) g->reset();
    for (auto& [name, h] : shard.histograms) h->reset();
  }
}

}  // namespace dpoaf::obs
