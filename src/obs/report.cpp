#include "obs/report.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <utility>

namespace dpoaf::obs {

namespace {

// ------------------------------------------------------- JSON writing ---

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through untouched
        }
    }
  }
  out += '"';
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no NaN/Inf; read back as NaN
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_histogram(std::string& out, const HistogramSnapshot& h) {
  out += "{\"count\":";
  append_u64(out, h.count);
  out += ",\"sum\":";
  append_u64(out, h.sum);
  out += ",\"min\":";
  append_u64(out, h.min);
  out += ",\"max\":";
  append_u64(out, h.max);
  out += ",\"buckets\":[";
  // Trim trailing zero buckets; from_json restores them.
  std::size_t last = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i)
    if (h.buckets[i] != 0) last = i + 1;
  for (std::size_t i = 0; i < last; ++i) {
    if (i != 0) out += ',';
    append_u64(out, h.buckets[i]);
  }
  out += "]}";
}

void append_trace_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\":";
  append_escaped(out, e.name);
  out += ",\"tid\":";
  append_u64(out, e.tid);
  out += ",\"depth\":";
  append_u64(out, e.depth);
  out += ",\"ts_ns\":";
  append_u64(out, e.start_ns);
  out += ",\"dur_ns\":";
  append_u64(out, e.dur_ns);
  out += '}';
}

// -------------------------------------------------------- JSON parsing --
//
// Minimal recursive-descent parser covering exactly the JSON subset the
// writer emits (objects, arrays, strings with the escapes above, integer
// and floating numbers, true/false/null). Not a general-purpose parser.

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;        // always set for numbers
  std::uint64_t uint_val = 0; // exact when the text was a plain integer
  bool is_negative = false;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::uint64_t as_u64() const {
    return is_negative ? 0 : uint_val;
  }
  [[nodiscard]] std::int64_t as_i64() const {
    const auto mag = static_cast<std::int64_t>(uint_val);
    return is_negative ? -mag : mag;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': out.kind = JsonValue::Kind::String; return parse_string(out.text);
      case 't':
        if (text_.substr(pos_, 4) != "true") return false;
        pos_ += 4;
        out.kind = JsonValue::Kind::Bool;
        out.boolean = true;
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return false;
        pos_ += 5;
        out.kind = JsonValue::Kind::Bool;
        out.boolean = false;
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return false;
        pos_ += 4;
        out.kind = JsonValue::Kind::Null;
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // The writer only emits \u00xx control escapes; that is all we
          // decode (other code points pass through as raw UTF-8).
          if (code > 0xFF) return false;
          out += static_cast<char>(code);
          break;
        }
        default: return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (consume('-')) out.is_negative = true;
    bool integral = true;
    std::uint64_t mag = 0;
    bool any_digit = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        any_digit = true;
        mag = mag * 10 + static_cast<std::uint64_t>(c - '0');
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (!any_digit) return false;
    out.kind = JsonValue::Kind::Number;
    const std::string token(text_.substr(start, pos_ - start));
    out.number = std::strtod(token.c_str(), nullptr);
    out.uint_val = integral ? mag : static_cast<std::uint64_t>(
                                        std::llabs(std::llround(out.number)));
    return true;
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return false;
    out.kind = JsonValue::Kind::Object;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.fields.emplace(std::move(key), std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return false;
    out.kind = JsonValue::Kind::Array;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.items.push_back(std::move(value));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool is_u64(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::Number && !v->is_negative;
}
bool is_int(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::Number;
}
bool is_str(const JsonValue* v) {
  return v != nullptr && v->kind == JsonValue::Kind::String;
}

bool read_histogram(const JsonValue& v, HistogramSnapshot& out) {
  if (v.kind != JsonValue::Kind::Object) return false;
  const JsonValue* count = v.find("count");
  const JsonValue* sum = v.find("sum");
  const JsonValue* min = v.find("min");
  const JsonValue* max = v.find("max");
  const JsonValue* buckets = v.find("buckets");
  if (!is_u64(count) || !is_u64(sum) || !is_u64(min) || !is_u64(max) ||
      buckets == nullptr || buckets->kind != JsonValue::Kind::Array ||
      buckets->items.size() > out.buckets.size())
    return false;
  out.count = count->as_u64();
  out.sum = sum->as_u64();
  out.min = min->as_u64();
  out.max = max->as_u64();
  out.buckets.fill(0);
  for (std::size_t i = 0; i < buckets->items.size(); ++i) {
    if (!is_u64(&buckets->items[i])) return false;
    out.buckets[i] = buckets->items[i].as_u64();
  }
  return true;
}

}  // namespace

RunReport capture_run_report(std::string tool) {
  RunReport report;
  report.tool = std::move(tool);
  report.metrics = MetricsRegistry::instance().snapshot();
  report.trace = trace_snapshot();
  report.phases = aggregate_phases(report.trace);
  return report;
}

void add_series(RunReport& report, std::string name,
                std::vector<double> values) {
  report.series.push_back({std::move(name), std::move(values)});
}

std::string to_json(const RunReport& report, bool include_trace) {
  std::string out;
  out.reserve(4096);
  out += "{\"schema\":\"dpoaf.run_report\",\"version\":";
  append_i64(out, report.version);
  out += ",\"tool\":";
  append_escaped(out, report.tool);

  out += ",\"counters\":{";
  for (std::size_t i = 0; i < report.metrics.counters.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(out, report.metrics.counters[i].name);
    out += ':';
    append_u64(out, report.metrics.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < report.metrics.gauges.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(out, report.metrics.gauges[i].name);
    out += ':';
    append_i64(out, report.metrics.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < report.metrics.histograms.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(out, report.metrics.histograms[i].name);
    out += ':';
    append_histogram(out, report.metrics.histograms[i].snapshot);
  }
  out += "},\"phases\":[";
  for (std::size_t i = 0; i < report.phases.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"name\":";
    append_escaped(out, report.phases[i].name);
    out += ",\"spans\":";
    append_u64(out, report.phases[i].spans);
    out += ",\"total_ns\":";
    append_u64(out, report.phases[i].total_ns);
    out += '}';
  }
  out += "],\"series\":{";
  for (std::size_t i = 0; i < report.series.size(); ++i) {
    if (i != 0) out += ',';
    append_escaped(out, report.series[i].name);
    out += ":[";
    for (std::size_t j = 0; j < report.series[i].values.size(); ++j) {
      if (j != 0) out += ',';
      append_double(out, report.series[i].values[j]);
    }
    out += ']';
  }
  out += '}';
  if (include_trace) {
    out += ",\"trace\":[";
    for (std::size_t i = 0; i < report.trace.size(); ++i) {
      if (i != 0) out += ',';
      append_trace_event(out, report.trace[i]);
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string to_chrome_trace(const RunReport& report) {
  // Complete ("X") events, timestamps in microseconds — the schema of
  // chrome://tracing and ui.perfetto.dev.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < report.trace.size(); ++i) {
    const TraceEvent& e = report.trace[i];
    if (i != 0) out += ',';
    out += "{\"name\":";
    append_escaped(out, e.name);
    out += ",\"cat\":\"dpoaf\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, e.tid);
    out += ",\"ts\":";
    append_double(out, static_cast<double>(e.start_ns) / 1000.0);
    out += ",\"dur\":";
    append_double(out, static_cast<double>(e.dur_ns) / 1000.0);
    out += '}';
  }
  out += "]}";
  return out;
}

bool from_json(std::string_view json, RunReport& out) {
  JsonValue root;
  if (!JsonParser(json).parse(root) || root.kind != JsonValue::Kind::Object)
    return false;
  const JsonValue* schema = root.find("schema");
  const JsonValue* version = root.find("version");
  const JsonValue* tool = root.find("tool");
  if (!is_str(schema) || schema->text != "dpoaf.run_report" ||
      !is_int(version) || !is_str(tool))
    return false;
  out = RunReport{};
  out.version = static_cast<int>(version->as_i64());
  out.tool = tool->text;

  const JsonValue* counters = root.find("counters");
  const JsonValue* gauges = root.find("gauges");
  const JsonValue* histograms = root.find("histograms");
  const JsonValue* phases = root.find("phases");
  const JsonValue* series = root.find("series");
  if (counters == nullptr || counters->kind != JsonValue::Kind::Object ||
      gauges == nullptr || gauges->kind != JsonValue::Kind::Object ||
      histograms == nullptr || histograms->kind != JsonValue::Kind::Object ||
      phases == nullptr || phases->kind != JsonValue::Kind::Array ||
      series == nullptr || series->kind != JsonValue::Kind::Object)
    return false;

  for (const auto& [name, v] : counters->fields) {
    if (!is_u64(&v)) return false;
    out.metrics.counters.push_back({name, v.as_u64()});
  }
  for (const auto& [name, v] : gauges->fields) {
    if (!is_int(&v)) return false;
    out.metrics.gauges.push_back({name, v.as_i64()});
  }
  for (const auto& [name, v] : histograms->fields) {
    HistogramSample sample;
    sample.name = name;
    if (!read_histogram(v, sample.snapshot)) return false;
    out.metrics.histograms.push_back(std::move(sample));
  }
  for (const JsonValue& v : phases->items) {
    if (v.kind != JsonValue::Kind::Object) return false;
    const JsonValue* name = v.find("name");
    const JsonValue* spans = v.find("spans");
    const JsonValue* total = v.find("total_ns");
    if (!is_str(name) || !is_u64(spans) || !is_u64(total)) return false;
    out.phases.push_back({name->text, spans->as_u64(), total->as_u64()});
  }
  for (const auto& [name, v] : series->fields) {
    if (v.kind != JsonValue::Kind::Array) return false;
    Series s;
    s.name = name;
    for (const JsonValue& item : v.items) {
      if (item.kind == JsonValue::Kind::Null) {
        s.values.push_back(std::nan(""));
      } else if (item.kind == JsonValue::Kind::Number) {
        s.values.push_back(item.number);
      } else {
        return false;
      }
    }
    out.series.push_back(std::move(s));
  }
  if (const JsonValue* trace = root.find("trace")) {
    if (trace->kind != JsonValue::Kind::Array) return false;
    for (const JsonValue& v : trace->items) {
      if (v.kind != JsonValue::Kind::Object) return false;
      const JsonValue* name = v.find("name");
      const JsonValue* tid = v.find("tid");
      const JsonValue* depth = v.find("depth");
      const JsonValue* ts = v.find("ts_ns");
      const JsonValue* dur = v.find("dur_ns");
      if (!is_str(name) || !is_u64(tid) || !is_u64(depth) || !is_u64(ts) ||
          !is_u64(dur))
        return false;
      out.trace.push_back({name->text, static_cast<std::uint32_t>(tid->as_u64()),
                           static_cast<std::uint32_t>(depth->as_u64()),
                           ts->as_u64(), dur->as_u64()});
    }
  }
  return true;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  out.put('\n');
  return static_cast<bool>(out);
}

}  // namespace dpoaf::obs
