#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>

namespace dpoaf::obs {

namespace {

// Each per-thread event buffer caps out instead of growing unboundedly;
// a long uninstrumented-drain run then loses tail events, not memory.
constexpr std::size_t kMaxEventsPerThread = 1 << 18;

struct ThreadBuffer {
  std::mutex mutex;  // owner appends; drain/snapshot steal concurrently
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Collector {
  std::mutex mutex;
  std::vector<ThreadBuffer*> live;       // registered, thread still running
  std::vector<TraceEvent> adopted;       // events of exited threads
  std::uint32_t next_tid = 0;
  std::size_t threads_ever = 0;
  std::atomic<std::uint64_t> dropped{0};
};

Collector& collector() {
  // Leaked intentionally: thread-exit hooks of detached/late threads may
  // run after main() returns and must still find the collector alive.
  static Collector* c = new Collector();
  return *c;
}

// Registers with the collector on first armed span; the destructor hands
// buffered events over so traces survive thread exit.
struct ThreadBufferHolder {
  std::unique_ptr<ThreadBuffer> buffer;

  ThreadBuffer& get() {
    if (!buffer) {
      buffer = std::make_unique<ThreadBuffer>();
      Collector& c = collector();
      std::lock_guard<std::mutex> lock(c.mutex);
      buffer->tid = c.next_tid++;
      ++c.threads_ever;
      c.live.push_back(buffer.get());
    }
    return *buffer;
  }

  ~ThreadBufferHolder() {
    if (!buffer) return;
    Collector& c = collector();
    std::lock_guard<std::mutex> lock(c.mutex);
    c.live.erase(std::remove(c.live.begin(), c.live.end(), buffer.get()),
                 c.live.end());
    std::lock_guard<std::mutex> buf_lock(buffer->mutex);
    c.adopted.insert(c.adopted.end(),
                     std::make_move_iterator(buffer->events.begin()),
                     std::make_move_iterator(buffer->events.end()));
  }
};

thread_local ThreadBufferHolder t_buffer;
thread_local std::uint32_t t_depth = 0;

void record_event(const char* name, std::uint64_t start_ns,
                  std::uint64_t dur_ns, std::uint32_t depth) {
  ThreadBuffer& buf = t_buffer.get();
  std::lock_guard<std::mutex> lock(buf.mutex);
  if (buf.events.size() >= kMaxEventsPerThread) {
    collector().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back({name, buf.tid, depth, start_ns, dur_ns});
}

void sort_trace(std::vector<TraceEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_ns != b.start_ns)
                       return a.start_ns < b.start_ns;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.depth < b.depth;  // parent before child
                   });
}

}  // namespace

Span::Span(const char* name) : name_(name) {
  if (!obs::enabled()) return;
  armed_ = true;
  depth_ = t_depth++;
  start_ns_ = monotonic_now_ns();
}

Span::Span(const char* name, Histogram& hist) : Span(name) {
  if (armed_) hist_ = &hist;
}

Span::~Span() {
  if (!armed_) return;
  const std::uint64_t dur = monotonic_now_ns() - start_ns_;
  --t_depth;
  if (hist_ != nullptr) hist_->record(dur);
  record_event(name_, start_ns_, dur, depth_);
}

std::vector<TraceEvent> drain_trace() {
  Collector& c = collector();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    out = std::move(c.adopted);
    c.adopted.clear();
    for (ThreadBuffer* buf : c.live) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      out.insert(out.end(), std::make_move_iterator(buf->events.begin()),
                 std::make_move_iterator(buf->events.end()));
      buf->events.clear();
    }
  }
  sort_trace(out);
  return out;
}

std::vector<TraceEvent> trace_snapshot() {
  Collector& c = collector();
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    out = c.adopted;
    for (ThreadBuffer* buf : c.live) {
      std::lock_guard<std::mutex> buf_lock(buf->mutex);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  sort_trace(out);
  return out;
}

void clear_trace() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  c.adopted.clear();
  for (ThreadBuffer* buf : c.live) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    buf->events.clear();
  }
  c.dropped.store(0, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  std::size_t n = c.adopted.size();
  for (ThreadBuffer* buf : c.live) {
    std::lock_guard<std::mutex> buf_lock(buf->mutex);
    n += buf->events.size();
  }
  return n;
}

std::uint64_t dropped_trace_events() {
  return collector().dropped.load(std::memory_order_relaxed);
}

std::size_t registered_trace_threads() {
  Collector& c = collector();
  std::lock_guard<std::mutex> lock(c.mutex);
  return c.threads_ever;
}

std::vector<PhaseStat> aggregate_phases(
    const std::vector<TraceEvent>& events) {
  std::map<std::string, PhaseStat> by_name;
  for (const TraceEvent& e : events) {
    PhaseStat& stat = by_name[e.name];
    if (stat.spans == 0) stat.name = e.name;
    ++stat.spans;
    stat.total_ns += e.dur_ns;
  }
  std::vector<PhaseStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(std::move(stat));
  return out;
}

}  // namespace dpoaf::obs
