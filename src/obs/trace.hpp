// RAII trace spans recording into per-thread buffers, drained into a single
// time-ordered trace for the RunReport / chrome://tracing exporters.
//
// A Span is armed only while observability is enabled (obs::set_enabled):
// a disarmed Span reads no clock, touches no buffer, and allocates nothing.
// Armed spans capture a monotonic start timestamp and, on destruction,
// append one TraceEvent (name, thread id, start, duration, nesting depth)
// to the calling thread's buffer. Buffers are registered with a global
// collector on first use; drain_trace()/trace_snapshot() merge every
// thread's events — including those of threads that have already exited —
// and sort them by start time. Per-thread buffers are capped; events past
// the cap are counted in dropped_trace_events() instead of growing memory
// without bound.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace dpoaf::obs {

struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;    // small sequential per-thread id, not the OS tid
  std::uint32_t depth = 0;  // span nesting depth within its thread (0 = root)
  std::uint64_t start_ns = 0;  // monotonic_now_ns() timebase
  std::uint64_t dur_ns = 0;
};

class Span {
 public:
  /// `name` should be a string literal or otherwise outlive the span.
  explicit Span(const char* name);
  /// Also records the span's duration into `hist` (even though the trace
  /// buffer keeps the event itself), for aggregate latency metrics.
  Span(const char* name, Histogram& hist);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when this span is recording (observability was on at entry).
  [[nodiscard]] bool armed() const { return armed_; }

 private:
  const char* name_;
  Histogram* hist_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint32_t depth_ = 0;
  bool armed_ = false;
};

/// Move every recorded event out of all thread buffers, sorted by
/// (start_ns, tid). Subsequent calls only see events recorded afterwards.
[[nodiscard]] std::vector<TraceEvent> drain_trace();

/// Copy of the events recorded so far (same order), leaving them in place.
[[nodiscard]] std::vector<TraceEvent> trace_snapshot();

/// Drop all recorded events and reset the dropped-event counter.
void clear_trace();

/// Events recorded and currently buffered (cheap; takes the buffer locks).
[[nodiscard]] std::size_t trace_event_count();

/// Events discarded because a thread buffer hit its cap.
[[nodiscard]] std::uint64_t dropped_trace_events();

/// Number of threads that ever armed a span (still-live buffers plus
/// adopted buffers of exited threads). A thread that only constructs
/// disarmed spans never registers — the disabled-mode zero-footprint test
/// leans on this.
[[nodiscard]] std::size_t registered_trace_threads();

/// Aggregate of every span with the same name: the per-phase rollup
/// surfaced in RunReport and core::RunResult.
struct PhaseStat {
  std::string name;
  std::uint64_t spans = 0;
  std::uint64_t total_ns = 0;  // summed inclusive durations, all threads
};

/// Group events by name, sorted by name. Nested or concurrent spans each
/// contribute their full inclusive duration, so totals can exceed
/// wall-clock; within one phase name at one nesting site they are the
/// phase's summed wall time.
[[nodiscard]] std::vector<PhaseStat> aggregate_phases(
    const std::vector<TraceEvent>& events);

}  // namespace dpoaf::obs
