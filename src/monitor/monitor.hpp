// Compiled LTLf spec monitors — the streaming half of the verification
// hot path (ROADMAP item 3, homfa-style online monitoring). Each rulebook
// specification is compiled *once* into a minimal DFA over the projection
// of the `logic::Symbol` alphabet onto the formula's support propositions:
//
//     LTLf ──NNF──▶ NFA (Antimirov partial derivatives over the
//                        hash-consed LtlNodes)
//          ──subset construction──▶ DFA
//          ──Moore partition refinement──▶ minimal DFA
//
// after which checking a simulator trace is one transition-table lookup
// per step and one accepting-bit lookup at the end — verdict-identical to
// `logic::evaluate_ltlf` (enforced by tests/test_monitor.cpp), but
// amortized across the millions of (candidate, spec, trace) checks the
// feedback loop performs. The Büchi/nested-product path in
// `src/modelcheck` remains the infinite-trace channel; this subsystem
// only ever sees finite traces. See docs/VERIFICATION.md.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "logic/ltl.hpp"
#include "logic/ltlf.hpp"
#include "util/cache.hpp"

namespace dpoaf::monitor {

using logic::Ltl;
using logic::Symbol;
using logic::Trace;

/// Construction-size record of one compilation, kept on the monitor for
/// the obs layer and the micro benches.
struct MonitorStats {
  std::size_t support_props = 0;   // distinct propositions in the formula
  std::size_t nfa_states = 0;      // Antimirov partial-derivative states
  std::size_t dfa_states = 0;      // after subset construction
  std::size_t min_dfa_states = 0;  // after minimization (== state_count())
};

/// An executable finite-trace acceptor for one specification. Immutable
/// after compilation; sharing one instance across threads is safe.
class SpecMonitor {
 public:
  using State = std::uint32_t;

  [[nodiscard]] State initial() const { return initial_; }

  /// One streaming step: the successor state after reading `sym`.
  [[nodiscard]] State step(State s, Symbol sym) const {
    return table_[static_cast<std::size_t>(s) * alphabet_ + project(sym)];
  }

  /// Whether the trace consumed so far (non-empty) satisfies the spec.
  [[nodiscard]] bool accepting(State s) const { return accepting_[s] != 0; }

  /// Full-trace verdict; requires a non-empty trace (same contract as
  /// `logic::evaluate_ltlf`).
  [[nodiscard]] bool accepts(const Trace& trace) const;

  /// L(spec) ∩ Σ⁺ is empty: no finite trace can satisfy the spec.
  [[nodiscard]] bool is_unsatisfiable() const { return unsatisfiable_; }
  /// Every non-empty finite trace satisfies the spec.
  [[nodiscard]] bool is_trivially_true() const { return trivially_true_; }

  [[nodiscard]] std::size_t state_count() const { return state_count_; }
  /// 2^support_props — the projected alphabet the table is indexed by.
  [[nodiscard]] std::size_t alphabet_size() const { return alphabet_; }
  [[nodiscard]] const MonitorStats& stats() const { return stats_; }

 private:
  friend std::shared_ptr<const SpecMonitor> compile_monitor(const Ltl&);

  /// Gather the support bits of `sym` into a dense table index.
  [[nodiscard]] std::uint32_t project(Symbol sym) const {
    std::uint32_t idx = 0;
    for (std::size_t i = 0; i < support_.size(); ++i)
      idx |= static_cast<std::uint32_t>((sym >> support_[i]) & 1U) << i;
    return idx;
  }

  std::vector<unsigned> support_;  // ascending proposition indices
  std::vector<State> table_;       // state-major: [state * alphabet_ + letter]
  std::vector<std::uint8_t> accepting_;
  State initial_ = 0;
  std::size_t state_count_ = 0;
  std::size_t alphabet_ = 1;
  bool unsatisfiable_ = false;
  bool trivially_true_ = false;
  MonitorStats stats_;
};

using MonitorPtr = std::shared_ptr<const SpecMonitor>;

/// Hard limits that keep one pathological generated spec from exploding
/// the compile step: monitors are only built when the formula mentions at
/// most kMaxSupportProps distinct propositions and the DFA transition
/// table stays under kMaxTableEntries entries. Past either limit,
/// compile_monitor returns nullptr and callers fall back to the tree
/// evaluator (counted in `monitor.compile_fallbacks`).
inline constexpr std::size_t kMaxSupportProps = 16;
inline constexpr std::size_t kMaxTableEntries = std::size_t{1} << 22;

/// Compile `formula` into a minimal DFA monitor. Pure and uncached — the
/// hot path goes through monitor_for(). Returns nullptr when the formula
/// exceeds the construction limits above.
MonitorPtr compile_monitor(const Ltl& formula);

/// Memoized compilation, keyed by hash-consed formula identity (like
/// modelcheck::ltl_to_buchi_cached): one compile per distinct spec per
/// process, then shared-pointer hits from a util::ShardedCache. Returns
/// nullptr — routing callers to the tree evaluator — when monitors are
/// disabled (set_monitors_enabled) or the formula is uncompilable.
MonitorPtr monitor_for(const Ltl& formula);

/// Master switch (default on). Off makes monitor_for return nullptr so
/// every caller falls back to `logic::evaluate_ltlf`; the equivalence
/// tests and the evaluator-vs-monitor bench sweep flip this.
void set_monitors_enabled(bool enabled);
[[nodiscard]] bool monitors_enabled();

/// Counters of the process-wide compilation cache.
[[nodiscard]] util::CacheStats monitor_cache_stats();
void clear_monitor_cache();  // drops entries and resets the counters

/// Satisfiability/triviality pre-pass verdict for one spec under
/// finite-trace semantics (docs/VERIFICATION.md "Rulebook pre-pass").
enum class SpecClass {
  kNormal,         // satisfiable and falsifiable — a real constraint
  kUnsatisfiable,  // no finite trace satisfies it (contradiction)
  kTriviallyTrue,  // every finite trace satisfies it (tautology)
};

/// Classify via the compiled DFA: emptiness ⇒ kUnsatisfiable,
/// universality over Σ⁺ ⇒ kTriviallyTrue. Conservatively kNormal when
/// the formula is uncompilable. Used to reject degenerate specs before
/// they enter a rulebook (DrivingDomain CHECKs the shipped 15; the
/// procedural generator of ROADMAP item 4 filters with it).
[[nodiscard]] SpecClass classify_spec(const Ltl& formula);

/// Counts behind a satisfaction-rate computation. Empty traces carry no
/// step to evaluate, so they are skipped, never counted as violations.
struct SatisfactionCounts {
  std::size_t satisfied = 0;
  std::size_t evaluated = 0;  // non-empty traces checked
  std::size_t skipped = 0;    // empty traces excluded from the denominator

  /// satisfied / evaluated; 0 when nothing was evaluated.
  [[nodiscard]] double rate() const {
    return evaluated == 0 ? 0.0
                          : static_cast<double>(satisfied) /
                                static_cast<double>(evaluated);
  }
};

/// Monitor-backed satisfaction rate: streams every non-empty trace
/// through the cached monitor (tree-evaluator fallback when unavailable).
/// Verdict-identical to evaluating `logic::evaluate_ltlf` per trace.
/// CHECKs when `traces` is non-empty but every trace is empty — that is a
/// simulator bug, not a 0% satisfaction rate.
SatisfactionCounts satisfaction_counts(const Ltl& formula,
                                       const std::vector<Trace>& traces);

}  // namespace dpoaf::monitor
