#include "monitor/monitor.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <queue>
#include <set>
#include <utility>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace dpoaf::monitor {

namespace {

using logic::LtlOp;

// ------------------------------------------------------------------ NFA ---
//
// The NFA states are NNF formulas (hash-consed, so identity is pointer
// equality). For a state φ and a concrete symbol σ:
//
//   final(φ, σ)  — does the one-step trace [σ] satisfy φ? This mirrors
//                  the tree evaluator at the *last* trace position:
//                  strong Next is false, U/R collapse to their right arm.
//   pd(φ, σ)     — Antimirov partial derivatives: the set of formulas
//                  such that, for every non-empty suffix v,
//                  σv ⊨ φ  ⟺  v ⊨ ψ for some ψ ∈ pd(φ, σ).
//                  Disjunction splits (the source of nondeterminism),
//                  conjunction takes the pairwise product, and the
//                  temporal operators unfold one step:
//                    pd(X φ)   = {φ}
//                    pd(φ U ψ) = pd(ψ) ∪ {x ∧ (φ U ψ) : x ∈ pd(φ)}
//                    pd(φ R ψ) = {y ∧ x : y ∈ pd(ψ), x ∈ pd(φ)}
//                                ∪ {y ∧ (φ R ψ) : y ∈ pd(ψ)}

// LTLf-correct negation normal form. logic::to_nnf implements the
// infinite-trace rules, where X is self-dual — but on finite traces the
// strong next is not: ¬Xφ holds at the last position (there is no next
// step for Xφ to claim), i.e. ¬Xφ ≡ weak-next ¬φ. The AST has no weak
// next, so this NNF keeps `Not(Next g)` as a first-class monitor form
// (final_at = true; one-step derivative = the NNF of ¬g) and pushes every
// other negation to the literals. U/R and F/G stay duals under the
// finite-trace semantics the evaluator implements, so those rules carry
// over unchanged. The resulting node set: True, False, Prop, Not(Prop),
// Not(Next ·), And, Or, Next, Until, Release.
Ltl ltlf_nnf(const Ltl& f);

Ltl ltlf_nnf_neg(const Ltl& f) {
  using namespace logic::ltl;
  switch (f->op) {
    case LtlOp::True:
      return lfalse();
    case LtlOp::False:
      return ltrue();
    case LtlOp::Prop:
      return lnot(f);
    case LtlOp::Not:
      return ltlf_nnf(f->lhs);
    case LtlOp::And:
      return lor(ltlf_nnf_neg(f->lhs), ltlf_nnf_neg(f->rhs));
    case LtlOp::Or:
      return land(ltlf_nnf_neg(f->lhs), ltlf_nnf_neg(f->rhs));
    case LtlOp::Implies:
      return land(ltlf_nnf(f->lhs), ltlf_nnf_neg(f->rhs));
    case LtlOp::Next:  // ¬Xφ ≡ WX ¬φ, kept as Not(Next nnf(φ))
      return lnot(next(ltlf_nnf(f->lhs)));
    case LtlOp::Eventually:  // ¬Fφ = G ¬φ
      return release(lfalse(), ltlf_nnf_neg(f->lhs));
    case LtlOp::Always:  // ¬Gφ = F ¬φ
      return until(ltrue(), ltlf_nnf_neg(f->lhs));
    case LtlOp::Until:
      return release(ltlf_nnf_neg(f->lhs), ltlf_nnf_neg(f->rhs));
    case LtlOp::Release:
      return until(ltlf_nnf_neg(f->lhs), ltlf_nnf_neg(f->rhs));
  }
  DPOAF_CHECK_MSG(false, "unreachable LtlOp in monitor NNF");
  return f;
}

Ltl ltlf_nnf(const Ltl& f) {
  using namespace logic::ltl;
  switch (f->op) {
    case LtlOp::True:
    case LtlOp::False:
    case LtlOp::Prop:
      return f;
    case LtlOp::Not:
      return ltlf_nnf_neg(f->lhs);
    case LtlOp::And:
      return land(ltlf_nnf(f->lhs), ltlf_nnf(f->rhs));
    case LtlOp::Or:
      return lor(ltlf_nnf(f->lhs), ltlf_nnf(f->rhs));
    case LtlOp::Implies:
      return lor(ltlf_nnf_neg(f->lhs), ltlf_nnf(f->rhs));
    case LtlOp::Next:
      return next(ltlf_nnf(f->lhs));
    case LtlOp::Eventually:
      return until(ltrue(), ltlf_nnf(f->lhs));
    case LtlOp::Always:
      return release(lfalse(), ltlf_nnf(f->lhs));
    case LtlOp::Until:
      return until(ltlf_nnf(f->lhs), ltlf_nnf(f->rhs));
    case LtlOp::Release:
      return release(ltlf_nnf(f->lhs), ltlf_nnf(f->rhs));
  }
  DPOAF_CHECK_MSG(false, "unreachable LtlOp in monitor NNF");
  return f;
}

bool final_at(const Ltl& f, Symbol sym) {
  switch (f->op) {
    case LtlOp::True:
      return true;
    case LtlOp::False:
      return false;
    case LtlOp::Prop:
      return logic::Vocabulary::has(sym, f->prop);
    case LtlOp::Not:  // NNF: Not wraps a proposition or a (strong) Next
      if (f->lhs->op == LtlOp::Next) return true;  // ¬Xφ at last position
      return !logic::Vocabulary::has(sym, f->lhs->prop);
    case LtlOp::And:
      return final_at(f->lhs, sym) && final_at(f->rhs, sym);
    case LtlOp::Or:
      return final_at(f->lhs, sym) || final_at(f->rhs, sym);
    case LtlOp::Next:
      return false;  // strong next: no position after the last
    case LtlOp::Until:
    case LtlOp::Release:
      return final_at(f->rhs, sym);
    default:
      break;
  }
  DPOAF_CHECK_MSG(false, "non-NNF operator in monitor compilation");
  return false;
}

// Canonical conjunction: flatten nested Ands, sort conjuncts by interning
// id, and deduplicate before rebuilding. Without this the derivative
// products below would keep manufacturing structurally new nestings of
// the same conjunct set — φ∧(φ∧ψ), φ∧(φ∧(φ∧ψ)), … — and the NFA state
// space would grow without bound. Canonicalized, every derivative is a
// conjunction-set of subformulas, so the derivative closure is finite and
// the subset construction terminates.
void flatten_and(const Ltl& f, std::vector<Ltl>& out) {
  if (f->op == LtlOp::And) {
    flatten_and(f->lhs, out);
    flatten_and(f->rhs, out);
    return;
  }
  out.push_back(f);
}

Ltl conj(const Ltl& a, const Ltl& b) {
  using namespace logic::ltl;
  std::vector<Ltl> xs;
  flatten_and(a, xs);
  flatten_and(b, xs);
  std::sort(xs.begin(), xs.end(),
            [](const Ltl& x, const Ltl& y) { return x->id < y->id; });
  std::vector<Ltl> kept;
  for (const Ltl& x : xs) {
    if (x->op == LtlOp::False) return lfalse();
    if (x->op == LtlOp::True) continue;
    if (!kept.empty() && kept.back() == x) continue;
    kept.push_back(x);
  }
  return land_all(kept);  // empty → true
}

void partial_derivs(const Ltl& f, Symbol sym, std::vector<Ltl>& out) {
  using namespace logic::ltl;
  switch (f->op) {
    case LtlOp::True:
      out.push_back(ltrue());
      return;
    case LtlOp::False:
      return;
    case LtlOp::Prop:
      if (logic::Vocabulary::has(sym, f->prop)) out.push_back(ltrue());
      return;
    case LtlOp::Not:
      if (f->lhs->op == LtlOp::Next) {
        // ¬Xg on σv (v non-empty) ⟺ v ⊭ g ⟺ v ⊨ ¬g.
        out.push_back(ltlf_nnf_neg(f->lhs->lhs));
        return;
      }
      DPOAF_DCHECK(f->lhs->op == LtlOp::Prop);
      if (!logic::Vocabulary::has(sym, f->lhs->prop)) out.push_back(ltrue());
      return;
    case LtlOp::And: {
      std::vector<Ltl> ls, rs;
      partial_derivs(f->lhs, sym, ls);
      partial_derivs(f->rhs, sym, rs);
      for (const Ltl& l : ls)
        for (const Ltl& r : rs) out.push_back(conj(l, r));
      return;
    }
    case LtlOp::Or:
      partial_derivs(f->lhs, sym, out);
      partial_derivs(f->rhs, sym, out);
      return;
    case LtlOp::Next:
      out.push_back(f->lhs);
      return;
    case LtlOp::Until: {
      partial_derivs(f->rhs, sym, out);
      std::vector<Ltl> ls;
      partial_derivs(f->lhs, sym, ls);
      for (const Ltl& l : ls) out.push_back(conj(l, f));
      return;
    }
    case LtlOp::Release: {
      std::vector<Ltl> rs, ls;
      partial_derivs(f->rhs, sym, rs);
      partial_derivs(f->lhs, sym, ls);
      for (const Ltl& r : rs) {
        for (const Ltl& l : ls) out.push_back(conj(r, l));
        out.push_back(conj(r, f));
      }
      return;
    }
    default:
      break;
  }
  DPOAF_CHECK_MSG(false, "non-NNF operator in monitor compilation");
}

void collect_support(const Ltl& f, std::set<unsigned>& props) {
  if (!f) return;
  if (f->op == LtlOp::Prop) props.insert(static_cast<unsigned>(f->prop));
  collect_support(f->lhs, props);
  collect_support(f->rhs, props);
}

// One DFA state of the subset construction: the set of live NFA formulas
// (canonically sorted by interning id) plus the accept flag — whether the
// prefix consumed so far is itself a satisfying trace. The flag is what
// makes acceptance a state lookup instead of a function of the last
// symbol; it never feeds into the successor sets.
struct SubsetKey {
  std::vector<std::uint64_t> ids;
  bool flag = false;

  bool operator<(const SubsetKey& o) const {
    if (ids != o.ids) return ids < o.ids;
    return flag < o.flag;
  }
};

// Moore partition refinement: start from the accepting/rejecting split
// and refine by successor-block signatures until stable. Blocks are
// numbered in first-occurrence order over ascending state index, so state
// 0 (the initial state) always lands in block 0.
std::vector<std::uint32_t> minimize(const std::vector<std::uint32_t>& table,
                                    const std::vector<std::uint8_t>& accepting,
                                    std::size_t letters,
                                    std::size_t& block_count) {
  const std::size_t n = accepting.size();
  std::vector<std::uint32_t> block(n);
  for (std::size_t s = 0; s < n; ++s) block[s] = accepting[s] ? 1 : 0;
  // Normalize: if every state has the same flag the single block is 0.
  if (*std::min_element(block.begin(), block.end()) == 1)
    std::fill(block.begin(), block.end(), 0);

  for (;;) {
    std::map<std::vector<std::uint32_t>, std::uint32_t> sig_to_block;
    std::vector<std::uint32_t> next(n);
    std::vector<std::uint32_t> sig;
    for (std::size_t s = 0; s < n; ++s) {
      sig.clear();
      sig.push_back(block[s]);
      for (std::size_t l = 0; l < letters; ++l)
        sig.push_back(block[table[s * letters + l]]);
      const auto [it, inserted] = sig_to_block.emplace(
          sig, static_cast<std::uint32_t>(sig_to_block.size()));
      next[s] = it->second;
      (void)inserted;
    }
    const std::size_t count = sig_to_block.size();
    if (count == block_count) {
      block_count = count;
      return next;
    }
    block_count = count;
    block = std::move(next);
  }
}

}  // namespace

bool SpecMonitor::accepts(const Trace& trace) const {
  DPOAF_CHECK_MSG(!trace.empty(),
                  "spec monitors require a non-empty trace");
  static obs::Counter& traces_c = obs::counter("monitor.traces_checked");
  static obs::Counter& steps_c = obs::counter("monitor.steps");
  traces_c.add();
  steps_c.add(trace.size());
  State s = initial_;
  for (const Symbol sym : trace) s = step(s, sym);
  return accepting(s);
}

MonitorPtr compile_monitor(const Ltl& formula) {
  DPOAF_CHECK(formula != nullptr);
  static obs::Counter& compilations = obs::counter("monitor.compilations");
  static obs::Counter& fallbacks = obs::counter("monitor.compile_fallbacks");
  obs::ScopedTimer timer(obs::histogram("monitor.compile_ns"));

  const Ltl nnf = ltlf_nnf(formula);
  std::set<unsigned> support_set;
  collect_support(nnf, support_set);
  if (support_set.size() > kMaxSupportProps) {
    fallbacks.add();
    return nullptr;
  }

  auto m = std::make_shared<SpecMonitor>();
  m->support_.assign(support_set.begin(), support_set.end());
  const std::size_t letters = std::size_t{1} << m->support_.size();
  m->alphabet_ = letters;

  // Concrete representative symbol per projected letter; propositions
  // outside the support never occur in the formula, so their bits are
  // irrelevant to every final/pd computation.
  std::vector<Symbol> letter_sym(letters, 0);
  for (std::size_t l = 0; l < letters; ++l)
    for (std::size_t i = 0; i < m->support_.size(); ++i)
      if ((l >> i) & 1U)
        letter_sym[l] |= logic::Vocabulary::bit(
            static_cast<int>(m->support_[i]));

  // Per-(formula, letter) NFA expansion, memoized across subsets.
  struct Expansion {
    std::vector<Ltl> succ;  // deduped partial derivatives, sorted by id
    bool final = false;
  };
  std::map<std::pair<std::uint64_t, std::size_t>, Expansion> expansions;
  std::set<std::uint64_t> nfa_states;
  const auto expand = [&](const Ltl& f, std::size_t l) -> const Expansion& {
    const auto key = std::make_pair(f->id, l);
    auto it = expansions.find(key);
    if (it != expansions.end()) return it->second;
    Expansion e;
    e.final = final_at(f, letter_sym[l]);
    std::vector<Ltl> raw;
    partial_derivs(f, letter_sym[l], raw);
    std::sort(raw.begin(), raw.end(),
              [](const Ltl& a, const Ltl& b) { return a->id < b->id; });
    for (const Ltl& g : raw) {
      if (g->op == LtlOp::False) continue;  // empty language: dead branch
      if (!e.succ.empty() && e.succ.back() == g) continue;
      e.succ.push_back(g);
      nfa_states.insert(g->id);
    }
    return expansions.emplace(key, std::move(e)).first->second;
  };

  // Subset construction, BFS from {nnf}. The initial state's flag is
  // false: the empty prefix is never a satisfying trace (LTLf is defined
  // over non-empty traces, matching evaluate_ltlf's contract).
  std::vector<std::vector<Ltl>> sets;
  std::vector<std::uint8_t> flags;
  std::map<SubsetKey, std::uint32_t> index;
  const auto state_for = [&](std::vector<Ltl> set, bool flag) {
    SubsetKey key;
    key.ids.reserve(set.size());
    for (const Ltl& g : set) key.ids.push_back(g->id);
    key.flag = flag;
    const auto it = index.find(key);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(sets.size());
    index.emplace(std::move(key), id);
    sets.push_back(std::move(set));
    flags.push_back(flag ? 1 : 0);
    return id;
  };

  std::vector<Ltl> start;
  if (nnf->op != LtlOp::False) start.push_back(nnf);
  nfa_states.insert(nnf->id);
  state_for(std::move(start), false);

  std::vector<std::uint32_t> table;
  for (std::uint32_t s = 0; s < sets.size(); ++s) {
    if ((static_cast<std::size_t>(s) + 1) * letters > kMaxTableEntries) {
      fallbacks.add();
      return nullptr;
    }
    table.resize((static_cast<std::size_t>(s) + 1) * letters);
    for (std::size_t l = 0; l < letters; ++l) {
      std::vector<Ltl> succ;
      bool flag = false;
      for (const Ltl& f : sets[s]) {
        const Expansion& e = expand(f, l);
        flag = flag || e.final;
        succ.insert(succ.end(), e.succ.begin(), e.succ.end());
      }
      std::sort(succ.begin(), succ.end(),
                [](const Ltl& a, const Ltl& b) { return a->id < b->id; });
      succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
      table[s * letters + l] = state_for(std::move(succ), flag);
    }
  }

  m->stats_.support_props = m->support_.size();
  m->stats_.nfa_states = nfa_states.size();
  m->stats_.dfa_states = sets.size();

  // Minimize and renumber; block 0 contains pre-minimization state 0, so
  // the initial state stays 0.
  std::size_t blocks = 2;
  const std::vector<std::uint32_t> block =
      minimize(table, flags, letters, blocks);
  m->state_count_ = blocks;
  m->stats_.min_dfa_states = blocks;
  m->initial_ = block[0];
  m->table_.assign(blocks * letters, 0);
  m->accepting_.assign(blocks, 0);
  std::vector<bool> seen(blocks, false);
  for (std::size_t s = 0; s < sets.size(); ++s) {
    const std::uint32_t b = block[s];
    if (seen[b]) continue;
    seen[b] = true;
    m->accepting_[b] = flags[s];
    for (std::size_t l = 0; l < letters; ++l)
      m->table_[b * letters + l] = block[table[s * letters + l]];
  }

  // Pre-pass facts. Acceptance is tracked per state, so emptiness is
  // "no accepting state at all" and universality over Σ⁺ is "every
  // transition lands in an accepting state" (the initial state itself is
  // the empty prefix and does not count either way).
  m->unsatisfiable_ =
      std::find(m->accepting_.begin(), m->accepting_.end(), 1) ==
      m->accepting_.end();
  m->trivially_true_ = true;
  for (const std::uint32_t target : m->table_)
    if (!m->accepting_[target]) {
      m->trivially_true_ = false;
      break;
    }

  compilations.add();
  obs::histogram("monitor.dfa_states").record(blocks);
  return m;
}

namespace {

std::atomic<bool> monitors_on{true};

util::ShardedCache<std::uint64_t, MonitorPtr>& monitor_cache() {
  static util::ShardedCache<std::uint64_t, MonitorPtr> cache(
      /*capacity_per_shard=*/512, /*shards=*/16);
  return cache;
}

}  // namespace

MonitorPtr monitor_for(const Ltl& formula) {
  DPOAF_CHECK(formula != nullptr);
  if (!monitors_on.load(std::memory_order_relaxed)) return nullptr;
  return monitor_cache().get_or_compute(
      formula->id, [&] { return compile_monitor(formula); });
}

void set_monitors_enabled(bool enabled) {
  monitors_on.store(enabled, std::memory_order_relaxed);
}

bool monitors_enabled() {
  return monitors_on.load(std::memory_order_relaxed);
}

util::CacheStats monitor_cache_stats() { return monitor_cache().stats(); }

void clear_monitor_cache() {
  monitor_cache().clear();
  monitor_cache().reset_stats();
}

SpecClass classify_spec(const Ltl& formula) {
  static obs::Counter& unsat_c = obs::counter("monitor.prepass.unsat");
  static obs::Counter& trivial_c = obs::counter("monitor.prepass.trivial");
  static obs::Counter& normal_c = obs::counter("monitor.prepass.normal");
  const MonitorPtr m = monitor_for(formula);
  if (m == nullptr) {  // uncompilable: nothing can be concluded
    normal_c.add();
    return SpecClass::kNormal;
  }
  if (m->is_unsatisfiable()) {
    unsat_c.add();
    return SpecClass::kUnsatisfiable;
  }
  if (m->is_trivially_true()) {
    trivial_c.add();
    return SpecClass::kTriviallyTrue;
  }
  normal_c.add();
  return SpecClass::kNormal;
}

SatisfactionCounts satisfaction_counts(const Ltl& formula,
                                       const std::vector<Trace>& traces) {
  SatisfactionCounts out;
  if (traces.empty()) return out;
  const MonitorPtr m = monitor_for(formula);
  static obs::Counter& eval_fallback_c =
      obs::counter("monitor.evaluator_fallback_traces");
  for (const Trace& t : traces) {
    if (t.empty()) {
      ++out.skipped;
      continue;
    }
    ++out.evaluated;
    bool ok;
    if (m != nullptr) {
      ok = m->accepts(t);
    } else {
      eval_fallback_c.add();
      ok = logic::evaluate_ltlf(formula, t);
    }
    if (ok) ++out.satisfied;
  }
  DPOAF_CHECK_MSG(out.evaluated > 0,
                  "satisfaction over " + std::to_string(traces.size()) +
                      " traces: every trace is empty — the simulator "
                      "produced no steps");
  return out;
}

}  // namespace dpoaf::monitor
