// TrainingCheckpoint — the durable snapshot of the DPO-AF pipeline at an
// epoch boundary, and its (de)serialization to the versioned .dpoaf
// binary container defined in ckpt/format.hpp.
//
// A checkpoint carries *everything* a fresh process needs to continue a
// run bitwise-identically: model/reference weights, optimizer moments,
// the trainer's RNG stream and shuffle permutation, the tokenizer
// vocabulary (for compatibility validation), the preference dataset, and
// the metric/evaluation history accumulated before the snapshot. See
// docs/CHECKPOINT_FORMAT.md for the normative byte-level layout.
#pragma once

#include <array>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/format.hpp"
#include "dpo/dataset.hpp"
#include "dpo/trainer.hpp"
#include "nn/gpt.hpp"

namespace dpoaf::ckpt {

/// Which pipeline stage wrote the snapshot. Resuming a kPretrain
/// checkpoint re-enters the pre-training loop and then runs the remaining
/// stages; resuming a kDpo checkpoint re-enters DPO directly (the stored
/// preference pairs make stages 1–4 unnecessary).
enum class Stage : std::uint32_t { kPretrain = 0, kDpo = 1 };

/// "pretrain" / "dpo" — used in file names and human-readable output.
[[nodiscard]] const char* stage_name(Stage stage);

/// Mirror of core::CheckpointEval (ckpt sits below core in the dependency
/// order, so the pipeline converts at the boundary). Doubles round-trip
/// bit-exactly through the file format.
struct EvalRecord {
  int epoch = 0;
  double train_mean_satisfied = 0.0;
  double val_mean_satisfied = 0.0;
  double train_alignment_failure_rate = 0.0;
  double val_alignment_failure_rate = 0.0;
  int truncated_responses = 0;
  std::vector<std::pair<std::string, double>> per_task;
  std::vector<double> per_task_alignment_failure;
};

/// One durable pipeline snapshot. Stage-independent fields are always
/// populated; the dpo_* / pretrain_* groups belong to their stage only
/// and stay empty otherwise.
struct TrainingCheckpoint {
  Stage stage = Stage::kDpo;
  /// Number of fully completed epochs in the stage's own numbering
  /// (pretrain counts 1..epochs, DPO counts 1..config.epochs).
  int completed_epochs = 0;
  /// PipelineConfig::seed of the producing run, validated on resume.
  std::uint64_t pipeline_seed = 0;

  /// Model architecture + LoRA layout, validated against the resuming
  /// pipeline's configuration before any weight is loaded.
  nn::GptConfig model_config;
  std::int64_t lora_rank = 0;
  float lora_alpha = 0.0f;

  /// Tokenizer vocabulary in id order — resume fails loudly if the task
  /// catalog (and therefore the derived vocabulary) changed under us.
  std::vector<std::string> vocab;

  /// Flat parameter snapshot (TinyGpt::state() canonical order) of the
  /// training policy; for kDpo also the frozen reference model.
  std::vector<float> policy_state;
  std::vector<float> reference_state;

  /// AdamW per-parameter moment buffers (trainable-parameter order) and
  /// step count.
  std::vector<std::vector<float>> opt_m;
  std::vector<std::vector<float>> opt_v;
  std::int64_t opt_steps = 0;

  /// The training loop's RNG stream (xoshiro256** state words) and
  /// shuffle permutation, captured at the epoch boundary.
  std::array<std::uint64_t, 4> rng_state{};
  std::vector<std::uint64_t> order;

  /// kDpo: per-epoch metrics and checkpoint evaluations accumulated up to
  /// the snapshot, and the full preference dataset.
  std::vector<dpo::EpochMetrics> dpo_history;
  std::vector<EvalRecord> evals;
  std::vector<dpo::PreferencePair> pairs;

  /// kPretrain: per-epoch mean cross-entropy accumulated so far.
  std::vector<double> pretrain_losses;
};

/// Encode to the versioned binary container (in memory).
[[nodiscard]] std::vector<std::uint8_t> serialize(
    const TrainingCheckpoint& ckpt);

/// Decode and validate a container produced by serialize(). Throws
/// CheckpointError on bad magic, future schema version, CRC mismatch,
/// truncation, or missing/malformed sections.
[[nodiscard]] TrainingCheckpoint deserialize(const std::uint8_t* data,
                                             std::size_t size);

/// Write atomically: serialize to `path` + ".tmp" in the same directory,
/// flush, then rename over `path`. A crash mid-write can therefore never
/// leave a half-written file at `path`. Throws CheckpointError on I/O
/// failure.
void save_checkpoint(const std::filesystem::path& path,
                     const TrainingCheckpoint& ckpt);

/// Read + deserialize + validate. Throws CheckpointError.
[[nodiscard]] TrainingCheckpoint load_checkpoint(
    const std::filesystem::path& path);

/// Human-readable one-screen summary (stage, epochs, model shape,
/// parameter counts, dataset size) — the `export_artifacts
/// --inspect-checkpoint` output.
[[nodiscard]] std::string describe(const TrainingCheckpoint& ckpt);

/// describe() plus the physical section table (tag, payload bytes, CRC)
/// read directly from the file.
[[nodiscard]] std::string describe_file(const std::filesystem::path& path);

}  // namespace dpoaf::ckpt
