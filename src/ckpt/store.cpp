#include "ckpt/store.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace dpoaf::ckpt {

namespace {

std::string file_name_for(Stage stage, int epoch) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "ckpt-%s-epoch-%06d.dpoaf",
                stage_name(stage), epoch);
  return buf;
}

/// Parse "ckpt-<stage>-epoch-NNNNNN.dpoaf"; returns epoch or -1.
int epoch_from_name(const std::string& name, Stage stage) {
  const std::string prefix =
      std::string("ckpt-") + stage_name(stage) + "-epoch-";
  const std::string suffix = ".dpoaf";
  if (name.size() <= prefix.size() + suffix.size()) return -1;
  if (name.compare(0, prefix.size(), prefix) != 0) return -1;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
    return -1;
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos)
    return -1;
  return std::stoi(digits);
}

}  // namespace

std::optional<CrashPlan> parse_crash_plan(const char* value) {
  if (value == nullptr || *value == '\0') return std::nullopt;
  std::string s(value);
  CrashPlan plan;
  const std::size_t colon = s.find(':');
  std::string epoch_part = s;
  if (colon != std::string::npos) {
    const std::string stage_part = s.substr(0, colon);
    if (stage_part == "pretrain") {
      plan.stage = Stage::kPretrain;
    } else if (stage_part == "dpo") {
      plan.stage = Stage::kDpo;
    } else {
      throw CheckpointError("DPOAF_CRASH_AFTER_EPOCH: unknown stage \"" +
                            stage_part + "\" (want pretrain or dpo)");
    }
    epoch_part = s.substr(colon + 1);
  }
  if (epoch_part.empty() ||
      epoch_part.find_first_not_of("0123456789") != std::string::npos)
    throw CheckpointError(
        "DPOAF_CRASH_AFTER_EPOCH: malformed epoch \"" + epoch_part +
        "\" (want \"N\", \"pretrain:N\" or \"dpo:N\")");
  plan.epoch = std::stoi(epoch_part);
  return plan;
}

CheckpointStore::CheckpointStore(std::filesystem::path dir, int retain_last)
    : dir_(std::move(dir)), retain_last_(retain_last) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec)
    throw CheckpointError("cannot create checkpoint directory " +
                          dir_.string() + ": " + ec.message());
  crash_plan_ = parse_crash_plan(std::getenv("DPOAF_CRASH_AFTER_EPOCH"));
}

std::filesystem::path CheckpointStore::path_for(Stage stage,
                                                int epoch) const {
  return dir_ / file_name_for(stage, epoch);
}

void CheckpointStore::write(const TrainingCheckpoint& ckpt) {
  save_checkpoint(path_for(ckpt.stage, ckpt.completed_epochs), ckpt);

  if (retain_last_ > 0) {
    std::vector<std::filesystem::path> files =
        list_checkpoints(dir_, ckpt.stage);
    while (files.size() > static_cast<std::size_t>(retain_last_)) {
      std::error_code ec;
      std::filesystem::remove(files.front(), ec);  // oldest epoch first
      files.erase(files.begin());
    }
  }

  // Fault injection: die *after* the durable write so the resume tests
  // exercise exactly the state a real crash would leave behind.
  if (crash_plan_ && crash_plan_->stage == ckpt.stage &&
      crash_plan_->epoch == ckpt.completed_epochs) {
    std::fflush(nullptr);
    std::_Exit(kCrashExitCode);
  }
}

std::vector<std::filesystem::path> list_checkpoints(
    const std::filesystem::path& dir, Stage stage) {
  std::vector<std::pair<int, std::filesystem::path>> found;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const int epoch = epoch_from_name(entry.path().filename().string(), stage);
    if (epoch >= 0) found.emplace_back(epoch, entry.path());
  }
  std::sort(found.begin(), found.end());
  std::vector<std::filesystem::path> out;
  out.reserve(found.size());
  for (auto& [epoch, path] : found) out.push_back(std::move(path));
  return out;
}

std::filesystem::path resolve_resume_path(
    const std::filesystem::path& path_or_dir) {
  if (std::filesystem::is_regular_file(path_or_dir)) return path_or_dir;
  if (!std::filesystem::is_directory(path_or_dir))
    throw CheckpointError("no checkpoint file or directory at " +
                          path_or_dir.string());
  // Prefer the furthest-along stage: a dpo snapshot supersedes pretrain.
  for (const Stage stage : {Stage::kDpo, Stage::kPretrain}) {
    const std::vector<std::filesystem::path> files =
        list_checkpoints(path_or_dir, stage);
    if (!files.empty()) return files.back();
  }
  throw CheckpointError("no .dpoaf checkpoints found in directory " +
                        path_or_dir.string());
}

}  // namespace dpoaf::ckpt
