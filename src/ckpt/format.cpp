#include "ckpt/format.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace dpoaf::ckpt {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// ------------------------------------------------------------ writer ----

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }

void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(std::string_view s) {
  u64(s.size());
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::floats(const std::vector<float>& v) {
  u64(v.size());
  for (const float x : v) f32(x);
}

void ByteWriter::doubles(const std::vector<double>& v) {
  u64(v.size());
  for (const double x : v) f64(x);
}

void ByteWriter::u64s(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (const std::uint64_t x : v) u64(x);
}

void ByteWriter::ints(const std::vector<int>& v) {
  u64(v.size());
  for (const int x : v) i32(x);
}

// ------------------------------------------------------------ reader ----

void ByteReader::need(std::size_t n) const {
  if (size_ - off_ < n)
    throw CheckpointError("truncated checkpoint data in " + context_);
}

void ByteReader::check_count(std::uint64_t count,
                             std::size_t elem_size) const {
  if (count > remaining() / elem_size)
    throw CheckpointError("truncated checkpoint data in " + context_);
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[off_++];
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(data_[off_ + static_cast<std::size_t>(i)])
         << (8 * i);
  off_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(data_[off_ + static_cast<std::size_t>(i)])
         << (8 * i);
  off_ += 8;
  return v;
}

float ByteReader::f32() { return std::bit_cast<float>(u32()); }

double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  need(n);
  std::string out(reinterpret_cast<const char*>(data_ + off_),
                  static_cast<std::size_t>(n));
  off_ += static_cast<std::size_t>(n);
  return out;
}

std::vector<float> ByteReader::floats() {
  const std::uint64_t n = u64();
  // Bounds-check the count up front (overflow-safe: elements are ≥ 4
  // bytes) so a huge bogus count fails fast instead of allocating.
  check_count(n, 4);
  std::vector<float> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f32());
  return out;
}

std::vector<double> ByteReader::doubles() {
  const std::uint64_t n = u64();
  check_count(n, 8);
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(f64());
  return out;
}

std::vector<std::uint64_t> ByteReader::u64s() {
  const std::uint64_t n = u64();
  check_count(n, 8);
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(u64());
  return out;
}

std::vector<int> ByteReader::ints() {
  const std::uint64_t n = u64();
  check_count(n, 4);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(i32());
  return out;
}

void ByteReader::expect_done() const {
  if (off_ != size_)
    throw CheckpointError("trailing bytes after " + context_ +
                          " (writer/reader layout mismatch)");
}

// ---------------------------------------------------------- sections ----

std::vector<std::uint8_t> pack_sections(const std::vector<Section>& sections) {
  ByteWriter w;
  for (const char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kSchemaVersion);
  w.u32(static_cast<std::uint32_t>(sections.size()));
  for (const Section& s : sections) {
    DPOAF_CHECK_MSG(s.tag.size() == 4, "section tags are exactly 4 bytes");
    for (const char c : s.tag) w.u8(static_cast<std::uint8_t>(c));
    w.u64(s.payload.size());
    // Layout: tag, size, crc, payload — the CRC sits in the fixed-size
    // prefix so a truncated payload can never be mistaken for its CRC.
    w.u32(crc32(s.payload.data(), s.payload.size()));
    for (const std::uint8_t b : s.payload) w.u8(b);
  }
  return w.take();
}

std::vector<Section> unpack_sections(const std::uint8_t* data,
                                     std::size_t size) {
  ByteReader r(data, size, "checkpoint header");
  char magic[4];
  for (char& c : magic) c = static_cast<char>(r.u8());
  if (std::memcmp(magic, kMagic, 4) != 0)
    throw CheckpointError("bad magic: not a dpoaf checkpoint file");
  const std::uint32_t version = r.u32();
  if (version > kSchemaVersion)
    throw CheckpointError(
        "checkpoint schema version " + std::to_string(version) +
        " is newer than this build supports (" +
        std::to_string(kSchemaVersion) + ")");
  const std::uint32_t count = r.u32();
  std::vector<Section> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    Section s;
    s.tag.resize(4);
    for (char& c : s.tag) c = static_cast<char>(r.u8());
    const std::uint64_t payload_size = r.u64();
    const std::uint32_t stored_crc = r.u32();
    if (r.remaining() < payload_size)
      throw CheckpointError("truncated checkpoint file in section " + s.tag);
    s.payload.resize(static_cast<std::size_t>(payload_size));
    for (std::uint64_t b = 0; b < payload_size; ++b)
      s.payload[static_cast<std::size_t>(b)] = r.u8();
    const std::uint32_t actual_crc = crc32(s.payload.data(), s.payload.size());
    if (actual_crc != stored_crc)
      throw CheckpointError("CRC mismatch in section " + s.tag +
                            " (stored " + std::to_string(stored_crc) +
                            ", computed " + std::to_string(actual_crc) +
                            "): checkpoint is corrupted");
    out.push_back(std::move(s));
  }
  if (r.remaining() != 0)
    throw CheckpointError("trailing bytes after the last checkpoint section");
  return out;
}

// ------------------------------------------------------------ tensors ---

void write_tensor(ByteWriter& w, const tensor::Tensor& t) {
  w.i64(t.rows());
  w.i64(t.cols());
  w.u64(static_cast<std::uint64_t>(t.numel()));
  for (std::int64_t i = 0; i < t.numel(); ++i) w.f32(t.data()[i]);
}

tensor::Tensor read_tensor(ByteReader& r) {
  const std::int64_t rows = r.i64();
  const std::int64_t cols = r.i64();
  if (rows < 0 || cols < 0)
    throw CheckpointError("tensor with negative dimensions");
  const std::uint64_t n = r.u64();
  if (n != static_cast<std::uint64_t>(rows * cols))
    throw CheckpointError("tensor data length does not match its shape");
  std::vector<float> data;
  data.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) data.push_back(r.f32());
  return tensor::Tensor::from({rows, cols}, std::move(data));
}

}  // namespace dpoaf::ckpt
