// Low-level binary checkpoint framing: explicit little-endian primitive
// encoding, CRC32-protected named sections, and the file header
// (magic + schema version) every .dpoaf checkpoint starts with.
//
// The byte-level layout is specified normatively in
// docs/CHECKPOINT_FORMAT.md; this header is the single implementation of
// it. Everything here is deliberately dependency-free (util/check only)
// so any subsystem can serialize into the same container.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "tensor/tensor.hpp"

namespace dpoaf::ckpt {

/// Thrown on any malformed, truncated, corrupted, or incompatible
/// checkpoint input. The message always names the failing section or
/// field so operators can tell CRC damage from version skew at a glance.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// File magic: the first four bytes of every checkpoint file.
inline constexpr char kMagic[4] = {'D', 'P', 'A', 'F'};

/// Schema version written by this build. Readers reject files with a
/// *newer* version (see docs/CHECKPOINT_FORMAT.md "Versioning rules").
inline constexpr std::uint32_t kSchemaVersion = 1;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// crc32("123456789") == 0xCBF43926.
[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// Append-only little-endian encoder for section payloads. Floating-point
/// values are written as their IEEE-754 bit patterns, so payloads
/// round-trip bit-exactly (the property the resume tests depend on).
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// Length-prefixed (u64) UTF-8 bytes.
  void str(std::string_view s);
  /// Length-prefixed (u64 element count) packed little-endian arrays.
  void floats(const std::vector<float>& v);
  void doubles(const std::vector<double>& v);
  void u64s(const std::vector<std::uint64_t>& v);
  void ints(const std::vector<int>& v);

  [[nodiscard]] const std::vector<std::uint8_t>& buffer() const {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a section payload. Every
/// overrun throws CheckpointError naming the context passed to the
/// constructor, so a truncated section is reported as such rather than
/// read as garbage.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size, std::string context)
      : data_(data), size_(size), context_(std::move(context)) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<float> floats();
  [[nodiscard]] std::vector<double> doubles();
  [[nodiscard]] std::vector<std::uint64_t> u64s();
  [[nodiscard]] std::vector<int> ints();

  [[nodiscard]] std::size_t remaining() const { return size_ - off_; }
  /// Assert the payload was consumed exactly — trailing bytes mean the
  /// writer and reader disagree about the section layout.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  /// Reject element counts that cannot fit in the remaining bytes without
  /// computing count*elem_size (which could overflow on hostile input).
  void check_count(std::uint64_t count, std::size_t elem_size) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  std::string context_;
};

/// One named, CRC-protected unit of a checkpoint file. Tags are exactly
/// four ASCII characters (e.g. "META", "WPOL").
struct Section {
  std::string tag;
  std::vector<std::uint8_t> payload;
};

/// Assemble a complete checkpoint image: header (magic, version, section
/// count) followed by each section as tag + u64 payload size + payload +
/// CRC32(payload).
[[nodiscard]] std::vector<std::uint8_t> pack_sections(
    const std::vector<Section>& sections);

/// Parse and validate a checkpoint image: checks magic, rejects files
/// whose schema version is newer than kSchemaVersion, bounds-checks every
/// section, and verifies every payload CRC. Throws CheckpointError.
[[nodiscard]] std::vector<Section> unpack_sections(const std::uint8_t* data,
                                                   std::size_t size);

/// Serialize one tensor (shape + data) into a payload. Zero-size tensors
/// (any dimension 0) are legal and round-trip to an empty data block.
void write_tensor(ByteWriter& w, const tensor::Tensor& t);

/// Inverse of write_tensor. Throws CheckpointError on malformed shapes
/// (negative dimensions, data length not matching rows*cols).
[[nodiscard]] tensor::Tensor read_tensor(ByteReader& r);

}  // namespace dpoaf::ckpt
