// CheckpointSink / CheckpointStore — where snapshots go.
//
// The training loops talk to the abstract CheckpointSink so tests can
// capture snapshots in memory; production uses CheckpointStore, which
// writes atomic files into a directory with retained-last-K rotation and
// optional crash injection (DPOAF_CRASH_AFTER_EPOCH) for resume testing.
#pragma once

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace dpoaf::ckpt {

/// Destination for training snapshots. Implementations must be durable
/// (or deliberately not, for tests) by the time write() returns.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  /// Persist one snapshot. Throws CheckpointError on failure.
  virtual void write(const TrainingCheckpoint& ckpt) = 0;
};

/// Test sink: keeps every snapshot in memory, never crashes.
class MemorySink final : public CheckpointSink {
 public:
  void write(const TrainingCheckpoint& ckpt) override {
    snapshots.push_back(ckpt);
  }
  std::vector<TrainingCheckpoint> snapshots;
};

/// Exit code used by the fault-injection crash (distinct from any normal
/// failure path so CI can assert the crash actually fired).
inline constexpr int kCrashExitCode = 86;

/// Parsed DPOAF_CRASH_AFTER_EPOCH directive: crash the process (via
/// std::_Exit(kCrashExitCode)) immediately after durably writing the
/// checkpoint for `epoch` of `stage`. Accepted forms: "N" (stage dpo),
/// "pretrain:N", "dpo:N".
struct CrashPlan {
  Stage stage = Stage::kDpo;
  int epoch = 0;
};

/// Parse a DPOAF_CRASH_AFTER_EPOCH value; nullopt when unset/empty.
/// Throws CheckpointError on a malformed directive.
[[nodiscard]] std::optional<CrashPlan> parse_crash_plan(const char* value);

/// Directory-backed sink. File names are
/// `ckpt-<stage>-epoch-NNNNNN.dpoaf`; each write is atomic
/// (temp + rename) and afterwards only the newest `retain_last` files of
/// that stage are kept (0 keeps everything).
class CheckpointStore final : public CheckpointSink {
 public:
  /// Creates `dir` (and parents) if needed. Reads
  /// DPOAF_CRASH_AFTER_EPOCH once at construction.
  explicit CheckpointStore(std::filesystem::path dir, int retain_last = 3);

  void write(const TrainingCheckpoint& ckpt) override;

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }
  /// Path the next write(ckpt) with this stage/epoch would produce.
  [[nodiscard]] std::filesystem::path path_for(Stage stage, int epoch) const;

 private:
  std::filesystem::path dir_;
  int retain_last_;
  std::optional<CrashPlan> crash_plan_;
};

/// All checkpoint files of one stage in `dir`, sorted by epoch ascending.
[[nodiscard]] std::vector<std::filesystem::path> list_checkpoints(
    const std::filesystem::path& dir, Stage stage);

/// Resolve a --resume argument: a .dpoaf file is used as-is; a directory
/// resolves to its newest checkpoint (preferring the dpo stage over
/// pretrain, then the highest epoch). Throws CheckpointError when nothing
/// resumable is found.
[[nodiscard]] std::filesystem::path resolve_resume_path(
    const std::filesystem::path& path_or_dir);

}  // namespace dpoaf::ckpt
