#include "ckpt/checkpoint.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

namespace dpoaf::ckpt {

namespace {

// Section tags (4 ASCII bytes each). Order in the file follows this list;
// readers locate sections by tag, so reordering is a compatible change.
constexpr const char* kMeta = "META";  // stage, epochs, seed, model config
constexpr const char* kTokv = "TOKV";  // tokenizer vocabulary
constexpr const char* kWpol = "WPOL";  // policy weights
constexpr const char* kWref = "WREF";  // reference weights (dpo only)
constexpr const char* kOpts = "OPTS";  // AdamW moments + step count
constexpr const char* kRngs = "RNGS";  // xoshiro256** state words
constexpr const char* kOrdr = "ORDR";  // shuffle permutation
constexpr const char* kHist = "HIST";  // dpo per-epoch metrics
constexpr const char* kEval = "EVAL";  // checkpoint evaluations
constexpr const char* kPair = "PAIR";  // preference dataset
constexpr const char* kPtls = "PTLS";  // pretrain per-epoch losses

Section make_section(const char* tag, ByteWriter&& w) {
  return Section{tag, std::move(w).take()};
}

const Section& find_section(const std::vector<Section>& sections,
                            const char* tag) {
  for (const Section& s : sections)
    if (s.tag == tag) return s;
  throw CheckpointError(std::string("missing required checkpoint section ") +
                        tag);
}

ByteReader reader_for(const Section& s) {
  return ByteReader(s.payload.data(), s.payload.size(),
                    "section " + s.tag);
}

}  // namespace

const char* stage_name(Stage stage) {
  return stage == Stage::kPretrain ? "pretrain" : "dpo";
}

std::vector<std::uint8_t> serialize(const TrainingCheckpoint& ckpt) {
  std::vector<Section> sections;

  {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(ckpt.stage));
    w.i32(ckpt.completed_epochs);
    w.u64(ckpt.pipeline_seed);
    const nn::GptConfig& m = ckpt.model_config;
    w.i64(m.vocab_size);
    w.i64(m.d_model);
    w.i64(m.n_heads);
    w.i64(m.n_layers);
    w.i64(m.d_ff);
    w.i64(m.max_seq);
    w.f32(m.init_scale);
    w.i64(ckpt.lora_rank);
    w.f32(ckpt.lora_alpha);
    sections.push_back(make_section(kMeta, std::move(w)));
  }
  {
    ByteWriter w;
    w.u64(ckpt.vocab.size());
    for (const std::string& word : ckpt.vocab) w.str(word);
    sections.push_back(make_section(kTokv, std::move(w)));
  }
  {
    ByteWriter w;
    w.floats(ckpt.policy_state);
    sections.push_back(make_section(kWpol, std::move(w)));
  }
  {
    ByteWriter w;
    w.floats(ckpt.reference_state);
    sections.push_back(make_section(kWref, std::move(w)));
  }
  {
    ByteWriter w;
    w.u64(ckpt.opt_m.size());
    for (const auto& buf : ckpt.opt_m) w.floats(buf);
    w.u64(ckpt.opt_v.size());
    for (const auto& buf : ckpt.opt_v) w.floats(buf);
    w.i64(ckpt.opt_steps);
    sections.push_back(make_section(kOpts, std::move(w)));
  }
  {
    ByteWriter w;
    for (const std::uint64_t word : ckpt.rng_state) w.u64(word);
    sections.push_back(make_section(kRngs, std::move(w)));
  }
  {
    ByteWriter w;
    w.u64s(ckpt.order);
    sections.push_back(make_section(kOrdr, std::move(w)));
  }
  {
    ByteWriter w;
    w.u64(ckpt.dpo_history.size());
    for (const dpo::EpochMetrics& e : ckpt.dpo_history) {
      w.i32(e.epoch);
      w.f64(e.loss);
      w.f64(e.accuracy);
      w.f64(e.margin);
      w.f64(e.kl);
    }
    sections.push_back(make_section(kHist, std::move(w)));
  }
  {
    ByteWriter w;
    w.u64(ckpt.evals.size());
    for (const EvalRecord& e : ckpt.evals) {
      w.i32(e.epoch);
      w.f64(e.train_mean_satisfied);
      w.f64(e.val_mean_satisfied);
      w.f64(e.train_alignment_failure_rate);
      w.f64(e.val_alignment_failure_rate);
      w.i32(e.truncated_responses);
      w.u64(e.per_task.size());
      for (const auto& [task, value] : e.per_task) {
        w.str(task);
        w.f64(value);
      }
      w.doubles(e.per_task_alignment_failure);
    }
    sections.push_back(make_section(kEval, std::move(w)));
  }
  {
    ByteWriter w;
    w.u64(ckpt.pairs.size());
    for (const dpo::PreferencePair& p : ckpt.pairs) {
      w.str(p.task_id);
      w.ints(p.chosen);
      w.ints(p.rejected);
      w.i64(p.prompt_len);
      w.i32(p.score_chosen);
      w.i32(p.score_rejected);
    }
    sections.push_back(make_section(kPair, std::move(w)));
  }
  {
    ByteWriter w;
    w.doubles(ckpt.pretrain_losses);
    sections.push_back(make_section(kPtls, std::move(w)));
  }

  return pack_sections(sections);
}

TrainingCheckpoint deserialize(const std::uint8_t* data, std::size_t size) {
  const std::vector<Section> sections = unpack_sections(data, size);
  TrainingCheckpoint ckpt;

  {
    ByteReader r = reader_for(find_section(sections, kMeta));
    const std::uint32_t stage = r.u32();
    if (stage > static_cast<std::uint32_t>(Stage::kDpo))
      throw CheckpointError("unknown checkpoint stage " +
                            std::to_string(stage));
    ckpt.stage = static_cast<Stage>(stage);
    ckpt.completed_epochs = r.i32();
    ckpt.pipeline_seed = r.u64();
    ckpt.model_config.vocab_size = r.i64();
    ckpt.model_config.d_model = r.i64();
    ckpt.model_config.n_heads = r.i64();
    ckpt.model_config.n_layers = r.i64();
    ckpt.model_config.d_ff = r.i64();
    ckpt.model_config.max_seq = r.i64();
    ckpt.model_config.init_scale = r.f32();
    ckpt.lora_rank = r.i64();
    ckpt.lora_alpha = r.f32();
    r.expect_done();
    if (ckpt.completed_epochs < 0)
      throw CheckpointError("negative completed_epochs in checkpoint");
  }
  {
    ByteReader r = reader_for(find_section(sections, kTokv));
    const std::uint64_t n = r.u64();
    ckpt.vocab.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) ckpt.vocab.push_back(r.str());
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kWpol));
    ckpt.policy_state = r.floats();
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kWref));
    ckpt.reference_state = r.floats();
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kOpts));
    const std::uint64_t nm = r.u64();
    ckpt.opt_m.reserve(static_cast<std::size_t>(nm));
    for (std::uint64_t i = 0; i < nm; ++i) ckpt.opt_m.push_back(r.floats());
    const std::uint64_t nv = r.u64();
    ckpt.opt_v.reserve(static_cast<std::size_t>(nv));
    for (std::uint64_t i = 0; i < nv; ++i) ckpt.opt_v.push_back(r.floats());
    ckpt.opt_steps = r.i64();
    r.expect_done();
    if (ckpt.opt_m.size() != ckpt.opt_v.size())
      throw CheckpointError(
          "optimizer moment buffer counts disagree in checkpoint");
  }
  {
    ByteReader r = reader_for(find_section(sections, kRngs));
    for (std::uint64_t& word : ckpt.rng_state) word = r.u64();
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kOrdr));
    ckpt.order = r.u64s();
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kHist));
    const std::uint64_t n = r.u64();
    ckpt.dpo_history.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      dpo::EpochMetrics e;
      e.epoch = r.i32();
      e.loss = r.f64();
      e.accuracy = r.f64();
      e.margin = r.f64();
      e.kl = r.f64();
      ckpt.dpo_history.push_back(e);
    }
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kEval));
    const std::uint64_t n = r.u64();
    ckpt.evals.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      EvalRecord e;
      e.epoch = r.i32();
      e.train_mean_satisfied = r.f64();
      e.val_mean_satisfied = r.f64();
      e.train_alignment_failure_rate = r.f64();
      e.val_alignment_failure_rate = r.f64();
      e.truncated_responses = r.i32();
      const std::uint64_t nt = r.u64();
      e.per_task.reserve(static_cast<std::size_t>(nt));
      for (std::uint64_t t = 0; t < nt; ++t) {
        std::string task = r.str();
        const double value = r.f64();
        e.per_task.emplace_back(std::move(task), value);
      }
      e.per_task_alignment_failure = r.doubles();
      ckpt.evals.push_back(std::move(e));
    }
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kPair));
    const std::uint64_t n = r.u64();
    ckpt.pairs.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
      dpo::PreferencePair p;
      p.task_id = r.str();
      p.chosen = r.ints();
      p.rejected = r.ints();
      p.prompt_len = r.i64();
      p.score_chosen = r.i32();
      p.score_rejected = r.i32();
      ckpt.pairs.push_back(std::move(p));
    }
    r.expect_done();
  }
  {
    ByteReader r = reader_for(find_section(sections, kPtls));
    ckpt.pretrain_losses = r.doubles();
    r.expect_done();
  }

  return ckpt;
}

void save_checkpoint(const std::filesystem::path& path,
                     const TrainingCheckpoint& ckpt) {
  const std::vector<std::uint8_t> bytes = serialize(ckpt);
  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out)
      throw CheckpointError("cannot open " + tmp.string() + " for writing");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out)
      throw CheckpointError("write failed for " + tmp.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp);
    throw CheckpointError("cannot rename " + tmp.string() + " to " +
                          path.string() + ": " + ec.message());
  }
}

TrainingCheckpoint load_checkpoint(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    throw CheckpointError("cannot open checkpoint file " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in)
    throw CheckpointError("read failed for checkpoint file " + path.string());
  return deserialize(bytes.data(), bytes.size());
}

std::string describe(const TrainingCheckpoint& ckpt) {
  std::ostringstream os;
  os << "stage:              " << stage_name(ckpt.stage) << "\n"
     << "completed epochs:   " << ckpt.completed_epochs << "\n"
     << "pipeline seed:      " << ckpt.pipeline_seed << "\n"
     << "model:              d_model=" << ckpt.model_config.d_model
     << " n_heads=" << ckpt.model_config.n_heads
     << " n_layers=" << ckpt.model_config.n_layers
     << " d_ff=" << ckpt.model_config.d_ff
     << " max_seq=" << ckpt.model_config.max_seq
     << " vocab=" << ckpt.model_config.vocab_size << "\n"
     << "lora:               rank=" << ckpt.lora_rank
     << " alpha=" << ckpt.lora_alpha << "\n"
     << "vocabulary:         " << ckpt.vocab.size() << " tokens\n"
     << "policy params:      " << ckpt.policy_state.size() << " floats\n"
     << "reference params:   " << ckpt.reference_state.size() << " floats\n"
     << "optimizer:          " << ckpt.opt_m.size() << " moment buffers, "
     << ckpt.opt_steps << " steps taken\n"
     << "shuffle order:      " << ckpt.order.size() << " entries\n"
     << "dpo history:        " << ckpt.dpo_history.size() << " epochs\n"
     << "evals:              " << ckpt.evals.size() << " records\n"
     << "preference pairs:   " << ckpt.pairs.size() << "\n"
     << "pretrain losses:    " << ckpt.pretrain_losses.size() << " epochs\n";
  return os.str();
}

std::string describe_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    throw CheckpointError("cannot open checkpoint file " + path.string());
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in)
    throw CheckpointError("read failed for checkpoint file " + path.string());

  const std::vector<Section> sections =
      unpack_sections(bytes.data(), bytes.size());

  std::ostringstream os;
  os << "file:               " << path.string() << "\n"
     << "size:               " << bytes.size() << " bytes\n"
     << "schema version:     " << kSchemaVersion << "\n"
     << "sections:\n";
  for (const Section& s : sections) {
    char crc_hex[16];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08X",
                  crc32(s.payload.data(), s.payload.size()));
    os << "  " << s.tag << "  " << s.payload.size() << " bytes  crc32 0x"
       << crc_hex << "\n";
  }
  os << "\n" << describe(deserialize(bytes.data(), bytes.size()));
  return os.str();
}

}  // namespace dpoaf::ckpt
