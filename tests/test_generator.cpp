// Property tests for the procedural scenario generator (docs/GENERATOR.md):
// Algorithm 1 invariants over hundreds of seeded draws, the seeding /
// determinism contract (same seed ⇒ bitwise-identical registry at any
// thread count), rulebook instantiation + satisfiability pre-pass, and the
// pipeline-level held-out generalization eval.
#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "driving/domain.hpp"
#include "driving/generator/generator.hpp"
#include "logic/parser.hpp"
#include "monitor/monitor.hpp"
#include "util/threadpool.hpp"

namespace dpoaf::driving::generator {
namespace {

const Vocabulary& vocab() {
  static const Vocabulary v = logic::make_driving_vocabulary();
  return v;
}

// Full textual fingerprint of a generated registry: any difference in
// keys, features, models, rulebooks, fairness, or task blueprints shows.
std::string fingerprint(const std::vector<GeneratedScenario>& scenarios) {
  std::ostringstream out;
  for (const GeneratedScenario& g : scenarios) {
    out << g.key << '|' << topology_name(g.features.topology) << '|'
        << signal_name(g.features.signal) << '|'
        << noise_name(g.features.noise) << '|';
    for (const std::string& a : g.features.agents) out << a << ',';
    out << '|' << g.features.action << '|' << g.features.wrong_action << '\n';
    for (std::size_t p = 0; p < g.model.state_count(); ++p) {
      out << g.model.label(static_cast<int>(p)) << ':';
      for (int q : g.model.successors(static_cast<int>(p))) out << q << ',';
      out << ';';
    }
    out << '\n';
    for (const auto& spec : g.specs)
      out << spec.name << '=' << logic::to_string(spec.formula, vocab())
          << '\n';
    for (const auto& f : g.fairness)
      out << logic::to_string(f, vocab()) << '\n';
    out << g.holdout << '|' << g.task.id << '|' << g.task.prompt << '|'
        << g.task.observe << '|' << g.task.light_cond << '|'
        << g.task.light_wait << '|' << g.task.action << '|'
        << g.task.wrong_action << '|';
    for (const std::string& c : g.task.obstacle_conds) out << c << ',';
    out << '\n';
  }
  return out.str();
}

// --------------------------------------------- Algorithm 1 invariants ---

TEST(GeneratorGrammar, DrawnModelsSatisfyAlgorithmOneInvariants) {
  // ≥ 200 seeded draws; every drawn model must respect the grammar's
  // noise-bounded transition relation and Algorithm 1's structure.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const ScenarioFeatures f = draw_features(rng);
    const TransitionSystem pruned = build_model(f, vocab());
    ASSERT_GT(pruned.state_count(), 0u) << "seed " << seed;
    EXPECT_TRUE(pruned.deadlock_states().empty()) << "seed " << seed;

    const int max_flips = f.noise == NoiseRegime::Calm ? 1 : 2;
    for (std::size_t p = 0; p < pruned.state_count(); ++p)
      for (int q : pruned.successors(static_cast<int>(p))) {
        const auto diff =
            pruned.label(static_cast<int>(p)) ^ pruned.label(q);
        EXPECT_LE(std::popcount(diff), max_flips)
            << "seed " << seed << " noise " << noise_name(f.noise);
      }

    // Pruned-mode labelings are a subset of the conservative (no-pruning)
    // variant's — pruning only removes, never invents, labelings.
    const TransitionSystem conservative =
        build_model(f, vocab(), /*conservative=*/true);
    EXPECT_GE(conservative.state_count(), pruned.state_count());
    std::set<logic::Symbol> allowed;
    for (std::size_t p = 0; p < conservative.state_count(); ++p)
      allowed.insert(conservative.label(static_cast<int>(p)));
    for (std::size_t p = 0; p < pruned.state_count(); ++p)
      EXPECT_TRUE(allowed.count(pruned.label(static_cast<int>(p))))
          << "seed " << seed;

    // A stop-controlled junction forces the sign proposition everywhere.
    if (f.topology == Topology::StopControlled) {
      const auto sign = logic::Vocabulary::bit(*vocab().find("stop_sign"));
      for (std::size_t p = 0; p < pruned.state_count(); ++p)
        EXPECT_NE(pruned.label(static_cast<int>(p)) & sign, 0u);
    }
    // The drawn manoeuvre is always constrained: its rulebook keeps at
    // least one non-degenerate rule beyond liveness.
    EXPECT_FALSE(f.agents.empty()) << "seed " << seed;
    EXPECT_NE(f.action, f.wrong_action) << "seed " << seed;
  }
}

// ------------------------------------------------ determinism contract ---

TEST(GeneratorDeterminism, SameSeedSameRegistryAcrossThreadCounts) {
  GeneratorConfig cfg;
  cfg.seed = 42;
  cfg.count = 24;
  cfg.holdout = 4;
  util::set_global_threads(1);
  const auto at_one = generate_scenarios(cfg, vocab());
  util::set_global_threads(4);
  const auto at_four = generate_scenarios(cfg, vocab());
  util::set_global_threads(0);  // restore the default for later tests
  ASSERT_EQ(at_one.size(), 24u);
  EXPECT_EQ(fingerprint(at_one), fingerprint(at_four));
}

TEST(GeneratorDeterminism, DistinctSeedsProduceDistinctScenarioSets) {
  GeneratorConfig a, b;
  a.seed = 1;
  b.seed = 2;
  a.count = b.count = 16;
  const auto set_a = generate_scenarios(a, vocab());
  const auto set_b = generate_scenarios(b, vocab());
  EXPECT_NE(fingerprint(set_a), fingerprint(set_b));
  // And the feature draws themselves differ, not just cosmetics: some
  // index must disagree on topology/signal/noise/agents.
  bool any_diff = false;
  for (std::size_t i = 0; i < set_a.size(); ++i)
    any_diff |= set_a[i].key != set_b[i].key;
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorDeterminism, KeysAreUniqueAndIndexOrdered) {
  GeneratorConfig cfg;
  cfg.seed = 9;
  cfg.count = 32;
  const auto scenarios = generate_scenarios(cfg, vocab());
  std::set<std::string> keys;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    keys.insert(scenarios[i].key);
    EXPECT_EQ(scenarios[i].key.substr(0, 3), "gen");
    // Zero-padded index prefix preserves generation order lexically.
    const std::string index = std::to_string(i);
    EXPECT_EQ(scenarios[i].key.substr(3, 3),
              std::string(3 - index.size(), '0') + index);
  }
  EXPECT_EQ(keys.size(), scenarios.size());
}

// ------------------------------------- rulebook + satisfiability gate ---

TEST(GeneratorRulebook, PrePassDiscardsDegenerateInstantiationsOnly) {
  GeneratorStats stats;
  GeneratorConfig cfg;
  cfg.seed = 7;
  cfg.count = 64;
  cfg.holdout = 8;
  const auto scenarios = generate_scenarios(cfg, vocab(), &stats);
  EXPECT_EQ(stats.requested, 64);
  EXPECT_EQ(stats.generated, 64);
  EXPECT_EQ(stats.holdout, 8);
  // The turn-right gate template degenerates in every scenario (no lamp
  // ever governs right turns), so the pre-pass must discard ≥ 1 per
  // scenario.
  EXPECT_GE(stats.specs_discarded_trivial, 64);
  EXPECT_EQ(stats.discarded(),
            stats.specs_discarded_trivial + stats.specs_discarded_unsat);
  EXPECT_GT(stats.specs_instantiated,
            stats.discarded());  // most rules survive
  // Everything that survived classifies kNormal.
  for (const auto& g : scenarios)
    for (const auto& spec : g.specs)
      EXPECT_EQ(monitor::classify_spec(spec.formula),
                monitor::SpecClass::kNormal)
          << g.key << "/" << spec.name;
}

TEST(GeneratorRulebook, FilterSatisfiableRoutesEachClass) {
  std::vector<NamedSpec> specs;
  specs.push_back({"unsat", logic::parse_ltl("F (stop & !stop)", vocab())});
  specs.push_back({"trivial", logic::parse_ltl("G (stop | !stop)", vocab())});
  specs.push_back({"normal", logic::parse_ltl("G stop", vocab())});
  RulebookStats stats;
  const auto kept = filter_satisfiable(std::move(specs), &stats);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].name, "normal");
  EXPECT_EQ(stats.instantiated, 3);
  EXPECT_EQ(stats.discarded_unsat, 1);
  EXPECT_EQ(stats.discarded_trivial, 1);
}

// --------------------------------------------------- domain installing ---

TEST(GeneratorDomain, RegistryExtendsThePaperFive) {
  GeneratorConfig cfg;
  cfg.seed = 3;
  cfg.count = 12;
  cfg.holdout = 3;
  const DrivingDomain domain(cfg);
  EXPECT_EQ(domain.scenarios().size(), all_scenarios().size() + 12u);
  EXPECT_EQ(domain.generator_stats().generated, 12);
  int generated = 0, holdout_scenarios = 0, holdout_tasks = 0;
  for (const Scenario& s : domain.scenarios()) {
    if (!s.generated) continue;
    ++generated;
    if (s.holdout) ++holdout_scenarios;
    EXPECT_FALSE(s.specs.empty()) << s.key;
    EXPECT_FALSE(s.fairness.empty()) << s.key;
    // Exactly one catalog task per generated scenario.
    int tasks = 0;
    for (const Task& t : domain.tasks())
      if (t.scenario == s.key) {
        ++tasks;
        EXPECT_EQ(t.holdout, s.holdout) << s.key;
      }
    EXPECT_EQ(tasks, 1) << s.key;
  }
  EXPECT_EQ(generated, 12);
  EXPECT_EQ(holdout_scenarios, 3);
  for (const Task& t : domain.tasks())
    if (t.holdout) ++holdout_tasks;
  EXPECT_EQ(holdout_tasks, 3);
}

TEST(GeneratorDomain, CompliantVariantsOutscoreRecklessOnGeneratedTasks) {
  GeneratorConfig cfg;
  cfg.seed = 11;
  cfg.count = 12;
  const DrivingDomain domain(cfg);
  for (const Task& t : domain.tasks()) {
    const Scenario& sc = domain.scenario(t.scenario);
    if (!sc.generated) continue;
    int good_score = -2, reckless_score = -2;
    for (const ResponseVariant& v : t.variants) {
      if (v.tag == FlawTag::Good) {
        const auto fb = formal_feedback(domain, t.scenario, v.text);
        ASSERT_TRUE(fb.aligned) << t.id;
        good_score = fb.score();
        // The canonical compliant response satisfies the *entire*
        // generated rulebook — the generator's soundness property.
        EXPECT_EQ(fb.report.satisfied(), sc.specs.size())
            << t.id << " violated: "
            << (fb.report.violated().empty() ? "" : fb.report.violated()[0]);
      }
      if (v.tag == FlawTag::Reckless) {
        const auto fb = formal_feedback(domain, t.scenario, v.text);
        ASSERT_TRUE(fb.aligned) << t.id;
        reckless_score = fb.score();
      }
    }
    ASSERT_GE(good_score, 0) << t.id;
    ASSERT_GE(reckless_score, 0) << t.id;
    EXPECT_GT(good_score, reckless_score) << t.id;
  }
}

// ------------------------------------------- held-out generalization ---

TEST(GeneratorPipeline, HoldoutScenariosAreExcludedFromTrainingSignals) {
  core::PipelineConfig cfg;
  cfg.seed = 2;
  cfg.generated_scenarios = 4;
  cfg.holdout_scenarios = 2;
  cfg.generator_seed = 13;
  cfg.candidates_from_catalog = true;
  cfg.corpus_samples_per_task = 4;
  cfg.pretrain.epochs = 1;
  cfg.dpo.epochs = 2;
  cfg.dpo.checkpoint_every = 2;
  cfg.eval_samples_per_task = 1;
  cfg.eval_max_new_tokens = 48;
  core::DpoAfPipeline pipe(cfg);

  std::set<std::string> holdout_ids;
  for (const Task& t : pipe.domain().tasks())
    if (t.holdout) holdout_ids.insert(t.id);
  ASSERT_EQ(holdout_ids.size(), 2u);

  const auto result = pipe.run();
  EXPECT_EQ(result.generator_stats.generated, 4);
  EXPECT_GE(result.generator_stats.discarded(), 4);
  // Checkpoint evaluation never touches a held-out task...
  for (const auto& eval : result.checkpoints)
    for (const auto& [task_id, score] : eval.per_task)
      EXPECT_FALSE(holdout_ids.count(task_id)) << task_id;
  // ...the generalization eval covers exactly the held-out tasks.
  ASSERT_TRUE(result.has_generalization);
  EXPECT_EQ(result.generalization.holdout_tasks, 2);
  EXPECT_EQ(result.generalization.per_holdout_task.size(), 2u);
  for (const auto& [task_id, fraction] : result.generalization.per_holdout_task) {
    EXPECT_TRUE(holdout_ids.count(task_id)) << task_id;
    EXPECT_GE(fraction, 0.0);
    EXPECT_LE(fraction, 1.0);
  }
  EXPECT_EQ(result.generalization.train_tasks,
            static_cast<int>(pipe.domain().tasks().size()) - 2);
}

TEST(GeneratorPipeline, NoGenerationMeansNoGeneralizationBlock) {
  core::PipelineConfig cfg;
  cfg.seed = 2;
  cfg.candidates_from_catalog = true;
  cfg.corpus_samples_per_task = 4;
  cfg.pretrain.epochs = 1;
  cfg.dpo.epochs = 2;
  cfg.dpo.checkpoint_every = 2;
  cfg.eval_samples_per_task = 1;
  core::DpoAfPipeline pipe(cfg);
  const auto result = pipe.run();
  EXPECT_FALSE(result.has_generalization);
  EXPECT_EQ(result.generator_stats.generated, 0);
  EXPECT_EQ(result.generator_stats.discarded(), 0);
}

}  // namespace
}  // namespace dpoaf::driving::generator
