#include <gtest/gtest.h>

#include "dpo/trainer.hpp"
#include "lm/corpus.hpp"
#include "util/check.hpp"

namespace dpoaf::dpo {
namespace {

using nn::Tokenizer;

class DatasetTest : public ::testing::Test {
 protected:
  DatasetTest()
      : tok_(Tokenizer::build(
            {"steps for the task : alpha beta gamma delta epsilon"})) {}
  Tokenizer tok_;
};

TEST_F(DatasetTest, StrictOrderingOnly) {
  const std::vector<Candidate> cands{
      {"alpha", 15}, {"beta", 10}, {"gamma", 10}};
  const auto pairs =
      build_preference_pairs("t", "the task", cands, tok_, 64);
  // (alpha,beta) and (alpha,gamma); the 10-10 tie is skipped.
  ASSERT_EQ(pairs.size(), 2u);
  for (const auto& p : pairs) {
    EXPECT_EQ(p.score_chosen, 15);
    EXPECT_EQ(p.score_rejected, 10);
    EXPECT_GT(p.chosen.size(), 0u);
  }
}

TEST_F(DatasetTest, WinnerIsHigherScoreRegardlessOfOrder) {
  const std::vector<Candidate> cands{{"beta", 3}, {"alpha", 12}};
  const auto pairs =
      build_preference_pairs("t", "the task", cands, tok_, 64);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0].score_chosen, 12);
  // chosen sequence must encode "alpha"
  const auto alpha = lm::encode_example(tok_, "the task", "alpha");
  EXPECT_EQ(pairs[0].chosen, alpha);
}

TEST_F(DatasetTest, DuplicateTextsDeduplicated) {
  const std::vector<Candidate> cands{
      {"alpha", 15}, {"alpha", 15}, {"beta", 3}};
  const auto pairs =
      build_preference_pairs("t", "the task", cands, tok_, 64);
  EXPECT_EQ(pairs.size(), 1u);
}

TEST_F(DatasetTest, MaxPairCountIsChoose2) {
  // m distinct-scored candidates yield C2(m) pairs (paper §4.3).
  std::vector<Candidate> cands;
  for (int i = 0; i < 5; ++i)
    cands.push_back({"alpha beta gamma" + std::string(static_cast<std::size_t>(i), 'x'), i});
  // Texts must tokenize distinctly: use repeated words instead.
  cands.clear();
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  for (int i = 0; i < 5; ++i) cands.push_back({words[i], i});
  const auto pairs =
      build_preference_pairs("t", "the task", cands, tok_, 64);
  EXPECT_EQ(pairs.size(), 10u);  // C2(5)
}

TEST_F(DatasetTest, OverlongSequencesDropped) {
  std::string longtext;
  for (int i = 0; i < 100; ++i) longtext += "alpha ";
  const std::vector<Candidate> cands{{longtext, 15}, {"beta", 3}};
  std::size_t dropped = 0;
  const auto pairs = build_preference_pairs("t", "the task", cands, tok_,
                                            32, &dropped);
  EXPECT_TRUE(pairs.empty());
  EXPECT_EQ(dropped, 1u);
}

TEST_F(DatasetTest, PromptLenCoversPromptTokens) {
  const std::vector<Candidate> cands{{"alpha", 2}, {"beta", 1}};
  const auto pairs =
      build_preference_pairs("t", "the task", cands, tok_, 64);
  ASSERT_EQ(pairs.size(), 1u);
  const auto prompt = lm::encode_prompt(tok_, "the task");
  EXPECT_EQ(pairs[0].prompt_len, static_cast<std::int64_t>(prompt.size()));
}

// ---------------------------------------------------------------- trainer ---

class TrainerTest : public ::testing::Test {
 protected:
  TrainerTest()
      : tok_(Tokenizer::build({"steps for the task : good good good bad bad "
                               "bad fine poor"})) {}

  nn::TinyGpt make_model(Rng& rng) const {
    nn::GptConfig cfg;
    cfg.vocab_size = static_cast<std::int64_t>(tok_.vocab_size());
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    cfg.d_ff = 32;
    cfg.max_seq = 32;
    return nn::TinyGpt(cfg, rng);
  }

  std::vector<PreferencePair> make_pairs() const {
    const std::vector<Candidate> cands{
        {"good good good", 15}, {"bad bad bad", 5}, {"fine poor", 9}};
    return build_preference_pairs("t", "the task", cands, tok_, 32);
  }

  Tokenizer tok_;
};

TEST_F(TrainerTest, LossDropsAccuracyAndMarginRise) {
  Rng rng(21);
  nn::TinyGpt model = make_model(rng);
  DpoConfig cfg;
  cfg.epochs = 60;
  cfg.lr = 3e-3f;
  cfg.beta = 1.0f;
  cfg.nll_coef = 0.0f;
  cfg.lora_rank = 2;
  cfg.checkpoint_every = 10;
  DpoTrainer trainer(model.clone(), cfg, rng);
  const auto history = trainer.train(make_pairs());
  ASSERT_EQ(history.size(), 60u);
  EXPECT_LT(history.back().loss, history.front().loss * 0.5);
  EXPECT_GT(history.back().margin, 0.0);
  EXPECT_GE(history.back().accuracy, 2.0 / 3.0);
}

TEST_F(TrainerTest, PolicyPrefersChosenAfterTraining) {
  Rng rng(22);
  nn::TinyGpt model = make_model(rng);
  DpoConfig cfg;
  cfg.epochs = 40;
  cfg.lr = 3e-3f;
  cfg.nll_coef = 0.0f;
  cfg.lora_rank = 2;
  DpoTrainer trainer(model.clone(), cfg, rng);
  const auto pairs = make_pairs();
  trainer.train(pairs);
  for (const auto& pair : pairs) {
    const double lp_w =
        trainer.policy().response_log_prob_value(pair.chosen, pair.prompt_len);
    const double lp_l = trainer.policy().response_log_prob_value(
        pair.rejected, pair.prompt_len);
    const double ref_w = trainer.reference().response_log_prob_value(
        pair.chosen, pair.prompt_len);
    const double ref_l = trainer.reference().response_log_prob_value(
        pair.rejected, pair.prompt_len);
    // Implicit reward difference must be positive for every pair.
    EXPECT_GT((lp_w - ref_w) - (lp_l - ref_l), 0.0);
  }
}

TEST_F(TrainerTest, ReferenceModelStaysFrozen) {
  Rng rng(23);
  nn::TinyGpt model = make_model(rng);
  DpoConfig cfg;
  cfg.epochs = 5;
  cfg.lora_rank = 2;
  DpoTrainer trainer(model.clone(), cfg, rng);
  const auto before = trainer.reference().state();
  trainer.train(make_pairs());
  EXPECT_EQ(trainer.reference().state(), before);
}

TEST_F(TrainerTest, LoraRestrictsTraining) {
  Rng rng(24);
  nn::TinyGpt model = make_model(rng);
  DpoConfig cfg;
  cfg.epochs = 1;
  cfg.lora_rank = 2;
  DpoTrainer trainer(model.clone(), cfg, rng);
  EXPECT_TRUE(trainer.policy().lora_enabled());
  EXPECT_LT(trainer.policy().trainable_parameter_count(),
            trainer.policy().parameter_count() / 4);
}

TEST_F(TrainerTest, CheckpointHookFiresOnSchedule) {
  Rng rng(25);
  nn::TinyGpt model = make_model(rng);
  DpoConfig cfg;
  cfg.epochs = 10;
  cfg.checkpoint_every = 4;
  cfg.lora_rank = 2;
  DpoTrainer trainer(model.clone(), cfg, rng);
  std::vector<int> epochs;
  trainer.train(make_pairs(),
                [&epochs](int e, const nn::TinyGpt&) { epochs.push_back(e); });
  // epoch 0 (pre-training state), 4, 8, and the final epoch 10.
  EXPECT_EQ(epochs, (std::vector<int>{0, 4, 8, 10}));
}

TEST_F(TrainerTest, EmptyPairsRejected) {
  Rng rng(26);
  nn::TinyGpt model = make_model(rng);
  DpoConfig cfg;
  cfg.lora_rank = 2;
  DpoTrainer trainer(model.clone(), cfg, rng);
  EXPECT_THROW(trainer.train({}), ContractViolation);
}

TEST_F(TrainerTest, NllAnchorKeepsChosenLikely) {
  // With the anchor, the absolute log-probability of chosen responses must
  // not collapse (the failure mode the anchor exists to prevent).
  Rng rng(27);
  nn::TinyGpt model = make_model(rng);
  const auto pairs = make_pairs();

  DpoConfig cfg;
  cfg.epochs = 60;
  cfg.lr = 3e-3f;
  cfg.nll_coef = 0.5f;
  cfg.lora_rank = 2;
  DpoTrainer anchored(model.clone(), cfg, rng);
  anchored.train(pairs);

  for (const auto& pair : pairs) {
    const double lp_ref = anchored.reference().response_log_prob_value(
        pair.chosen, pair.prompt_len);
    const double lp_pol = anchored.policy().response_log_prob_value(
        pair.chosen, pair.prompt_len);
    EXPECT_GT(lp_pol, lp_ref - 2.0)
        << "anchored DPO should not push chosen responses down";
  }
}

}  // namespace
}  // namespace dpoaf::dpo
