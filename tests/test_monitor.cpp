#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "driving/domain.hpp"
#include "logic/parser.hpp"
#include "monitor/monitor.hpp"
#include "sim/empirical.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dpoaf::monitor {
namespace {

using namespace dpoaf::logic::ltl;
using driving::DrivingDomain;
using driving::ScenarioId;
using logic::Vocabulary;
using logic::evaluate_ltlf;
using logic::parse_ltl;

// Restores the monitors-enabled master switch even when a test fails.
struct MonitorToggle {
  explicit MonitorToggle(bool enabled) : previous_(monitors_enabled()) {
    set_monitors_enabled(enabled);
  }
  ~MonitorToggle() { set_monitors_enabled(previous_); }
  bool previous_;
};

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : vocab_(logic::make_driving_vocabulary()) {}

  Symbol sym(std::initializer_list<std::string_view> names) {
    return vocab_.make_symbol(names);
  }

  Ltl parse(const char* text) { return parse_ltl(text, vocab_); }

  logic::Vocabulary vocab_;
};

// ------------------------------------------ finite-trace operator table ---
//
// Each row pins the expected verdict at a semantic boundary (length-1
// traces, strong Next at the last position, vacuous Release, …) and is
// asserted identically against the tree evaluator AND the compiled
// monitor — the two engines must agree with the table and each other.

struct BoundaryCase {
  const char* name;
  const char* formula;
  std::vector<std::vector<std::string_view>> trace;  // prop names per step
  bool expected;
};

const BoundaryCase kBoundaryCases[] = {
    {"next_strong_at_last", "X stop", {{"stop"}}, false},
    {"next_holds_one_before_last", "X stop", {{}, {"stop"}}, true},
    {"double_next_needs_three_steps", "X X stop", {{}, {"stop"}}, false},
    {"double_next_at_third_step", "X X stop", {{}, {}, {"stop"}}, true},
    {"always_on_length_one", "G stop", {{"stop"}}, true},
    {"always_fails_on_length_one", "G stop", {{}}, false},
    {"always_of_next_truncates", "G (stop -> X stop)", {{"stop"}}, false},
    {"eventually_on_length_one", "F stop", {{}}, false},
    {"eventually_at_last_position", "F stop", {{}, {}, {"stop"}}, true},
    {"until_witness_at_first", "stop U green_traffic_light",
     {{"green_traffic_light"}}, true},
    {"until_without_witness", "stop U green_traffic_light",
     {{"stop"}, {"stop"}}, false},
    {"until_gap_before_witness", "stop U green_traffic_light",
     {{"stop"}, {}, {"green_traffic_light"}}, false},
    {"release_vacuous_to_end", "green_traffic_light R stop",
     {{"stop"}, {"stop"}}, true},
    {"release_discharged_at_first", "green_traffic_light R stop",
     {{"stop", "green_traffic_light"}, {}}, true},
    {"release_fails_on_length_one", "green_traffic_light R stop", {{}},
     false},
    {"release_psi_gap", "green_traffic_light R stop",
     {{"stop"}, {}, {"stop"}}, false},
    {"implication_spec_satisfied", "G (pedestrian_in_front -> F stop)",
     {{"pedestrian_in_front"}, {"stop"}}, true},
    {"implication_spec_violated", "G (pedestrian_in_front -> F stop)",
     {{"pedestrian_in_front"}, {"go_straight"}}, false},
};

TEST_F(MonitorTest, BoundarySemanticsTableMatchesBothEngines) {
  for (const BoundaryCase& c : kBoundaryCases) {
    const Ltl f = parse(c.formula);
    Trace trace;
    for (const auto& step : c.trace) {
      Symbol s = 0;
      for (const std::string_view name : step)
        s |= Vocabulary::bit(*vocab_.find(name));
      trace.push_back(s);
    }
    EXPECT_EQ(evaluate_ltlf(f, trace), c.expected) << "evaluator: " << c.name;
    const MonitorPtr m = compile_monitor(f);
    ASSERT_NE(m, nullptr) << c.name;
    EXPECT_EQ(m->accepts(trace), c.expected) << "monitor: " << c.name;
    // The streaming interface agrees with the batch verdict.
    SpecMonitor::State s = m->initial();
    for (const Symbol symb : trace) s = m->step(s, symb);
    EXPECT_EQ(m->accepting(s), c.expected) << "streaming: " << c.name;
  }
}

TEST_F(MonitorTest, MonitorRejectsEmptyTrace) {
  const MonitorPtr m = compile_monitor(parse("F stop"));
  ASSERT_NE(m, nullptr);
  EXPECT_THROW((void)m->accepts(Trace{}), ContractViolation);
}

// ----------------------------------------------- property: equivalence ---

TEST_F(MonitorTest, PropertyMonitorMatchesEvaluatorOnRandomFormulas) {
  Rng rng(4242);
  const int a = *vocab_.find("green_traffic_light");
  const int b = *vocab_.find("car_from_left");
  const int c = *vocab_.find("stop");
  const std::vector<Ltl> atoms{prop(a), prop(b), prop(c)};
  std::function<Ltl(int)> gen = [&](int depth) -> Ltl {
    if (depth == 0 || rng.chance(0.3)) return atoms[rng.below(atoms.size())];
    switch (rng.below(9)) {
      case 0: return lnot(gen(depth - 1));
      case 1: return land(gen(depth - 1), gen(depth - 1));
      case 2: return lor(gen(depth - 1), gen(depth - 1));
      case 3: return implies(gen(depth - 1), gen(depth - 1));
      case 4: return next(gen(depth - 1));
      case 5: return eventually(gen(depth - 1));
      case 6: return always(gen(depth - 1));
      case 7: return until(gen(depth - 1), gen(depth - 1));
      default: return release(gen(depth - 1), gen(depth - 1));
    }
  };
  const Symbol bits[] = {Vocabulary::bit(a), Vocabulary::bit(b),
                         Vocabulary::bit(c)};
  for (int trial = 0; trial < 300; ++trial) {
    const Ltl f = gen(4);
    const MonitorPtr m = compile_monitor(f);
    ASSERT_NE(m, nullptr) << to_string(f, vocab_);
    for (int t = 0; t < 5; ++t) {
      Trace trace(1 + rng.below(8), 0);
      for (Symbol& s : trace)
        for (const Symbol bit : bits)
          if (rng.chance(0.5)) s |= bit;
      ASSERT_EQ(m->accepts(trace), evaluate_ltlf(f, trace))
          << "trial " << trial << ": " << to_string(f, vocab_);
    }
  }
}

// ------------------------------------------------- construction & stats ---

TEST_F(MonitorTest, CompileStatsAreConsistent) {
  const MonitorPtr m = compile_monitor(parse("G (pedestrian_in_front -> F stop)"));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->stats().support_props, 2u);
  EXPECT_EQ(m->alphabet_size(), 4u);
  EXPECT_GE(m->stats().nfa_states, 1u);
  EXPECT_LE(m->stats().min_dfa_states, m->stats().dfa_states);
  EXPECT_EQ(m->state_count(), m->stats().min_dfa_states);
  EXPECT_FALSE(m->is_unsatisfiable());
  EXPECT_FALSE(m->is_trivially_true());
}

TEST_F(MonitorTest, MinimizationCollapsesRedundantStructure) {
  // (F stop) | (F stop & F stop) recognizes the same language as F stop;
  // the minimal automata must have identical state counts.
  const Ltl plain = parse("F stop");
  const Ltl bloated = lor(eventually(prop(*vocab_.find("stop"))),
                          land(eventually(prop(*vocab_.find("stop"))),
                               eventually(prop(*vocab_.find("stop")))));
  const MonitorPtr m1 = compile_monitor(plain);
  const MonitorPtr m2 = compile_monitor(bloated);
  ASSERT_NE(m1, nullptr);
  ASSERT_NE(m2, nullptr);
  EXPECT_EQ(m1->state_count(), m2->state_count());
}

TEST_F(MonitorTest, SupportLimitFallsBackToNullptr) {
  // 17 distinct propositions exceeds kMaxSupportProps == 16.
  std::vector<Ltl> atoms;
  for (int i = 0; i < 17; ++i) atoms.push_back(prop(i));
  const Ltl wide = lor_all(atoms);
  EXPECT_EQ(compile_monitor(wide), nullptr);
  // The satisfaction path still answers through the tree evaluator.
  const Trace t{Symbol{1} << 3};
  const auto counts = satisfaction_counts(wide, {t});
  EXPECT_EQ(counts.evaluated, 1u);
  EXPECT_EQ(counts.satisfied, 1u);
}

// ----------------------------------------------------------- pre-pass ---

TEST_F(MonitorTest, ClassifySpecDetectsDegenerateFormulas) {
  const int stop = *vocab_.find("stop");
  EXPECT_EQ(classify_spec(land(prop(stop), lnot(prop(stop)))),
            SpecClass::kUnsatisfiable);
  EXPECT_EQ(classify_spec(lfalse()), SpecClass::kUnsatisfiable);
  EXPECT_EQ(classify_spec(lor(prop(stop), lnot(prop(stop)))),
            SpecClass::kTriviallyTrue);
  EXPECT_EQ(classify_spec(ltrue()), SpecClass::kTriviallyTrue);
  EXPECT_EQ(classify_spec(always(ltrue())), SpecClass::kTriviallyTrue);
  EXPECT_EQ(classify_spec(parse("F stop")), SpecClass::kNormal);
  EXPECT_EQ(classify_spec(parse("G stop")), SpecClass::kNormal);
  EXPECT_EQ(classify_spec(parse("X stop")), SpecClass::kNormal);
}

TEST_F(MonitorTest, ShippedRulebookPassesPrePass) {
  const DrivingDomain domain;  // the ctor itself CHECKs the pre-pass
  for (const auto& spec : domain.specs())
    EXPECT_EQ(classify_spec(spec.formula), SpecClass::kNormal) << spec.name;
}

// ------------------------------------------------- satisfaction counts ---

TEST_F(MonitorTest, SatisfactionCountsSkipEmptyTraces) {
  const Ltl f = parse("F stop");
  const std::vector<Trace> traces{
      {sym({"stop"})}, {}, {Symbol{0}}, {}, {Symbol{0}, sym({"stop"})}};
  const auto counts = satisfaction_counts(f, traces);
  EXPECT_EQ(counts.satisfied, 2u);
  EXPECT_EQ(counts.evaluated, 3u);
  EXPECT_EQ(counts.skipped, 2u);
  EXPECT_NEAR(counts.rate(), 2.0 / 3.0, 1e-12);
}

TEST_F(MonitorTest, SatisfactionCountsEmptyInputIsZero) {
  const auto counts = satisfaction_counts(parse("F stop"), {});
  EXPECT_EQ(counts.evaluated, 0u);
  EXPECT_EQ(counts.rate(), 0.0);
}

TEST_F(MonitorTest, SatisfactionCountsAllEmptyTracesThrow) {
  EXPECT_THROW((void)satisfaction_counts(parse("F stop"), {{}, {}, {}}),
               ContractViolation);
}

TEST_F(MonitorTest, SatisfactionCountsMatchEvaluatorFallback) {
  const Ltl f = parse("G (pedestrian_in_front -> F stop)");
  std::vector<Trace> traces;
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    Trace t(1 + rng.below(12), 0);
    for (Symbol& s : t) {
      if (rng.chance(0.4)) s |= sym({"pedestrian_in_front"});
      if (rng.chance(0.4)) s |= sym({"stop"});
    }
    traces.push_back(std::move(t));
  }
  SatisfactionCounts with_monitor, with_evaluator;
  {
    MonitorToggle on(true);
    with_monitor = satisfaction_counts(f, traces);
  }
  {
    MonitorToggle off(false);
    with_evaluator = satisfaction_counts(f, traces);
  }
  EXPECT_EQ(with_monitor.satisfied, with_evaluator.satisfied);
  EXPECT_EQ(with_monitor.evaluated, with_evaluator.evaluated);
  EXPECT_EQ(with_monitor.skipped, with_evaluator.skipped);
}

// ---------------------------------------------------------------- cache ---

TEST_F(MonitorTest, MonitorForCachesByFormulaIdentity) {
  clear_monitor_cache();
  const Ltl f = parse("G (car_from_left -> X stop)");
  const MonitorPtr first = monitor_for(f);
  const MonitorPtr second = monitor_for(f);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first.get(), second.get());  // shared, compiled once
  const auto stats = monitor_cache_stats();
  EXPECT_GE(stats.hits, 1u);
  EXPECT_GE(stats.misses, 1u);
}

TEST_F(MonitorTest, DisabledMonitorsBypassCache) {
  MonitorToggle off(false);
  EXPECT_EQ(monitor_for(parse("F stop")), nullptr);
}

// Exercised under TSan in CI (DPOAF_THREADS=4 matrix): concurrent lookups
// of the same specs must race only inside the sharded cache's locks and
// end up sharing one immutable monitor per formula.
TEST_F(MonitorTest, ConcurrentMonitorLookupsShareOneCompile) {
  clear_monitor_cache();
  const std::vector<Ltl> specs{
      parse("G (pedestrian_in_front -> F stop)"),
      parse("stop U green_traffic_light"),
      parse("G (car_from_left -> X stop)"),
      parse("F go_straight"),
  };
  const Trace trace{sym({"pedestrian_in_front"}), sym({"stop"}),
                    sym({"green_traffic_light", "go_straight"})};
  constexpr int kThreads = 4;
  std::vector<std::vector<const SpecMonitor*>> seen(kThreads);
  std::vector<std::thread> workers;
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 50; ++round) {
        for (const Ltl& f : specs) {
          const MonitorPtr m = monitor_for(f);
          if (round == 0) seen[w].push_back(m.get());
          (void)m->accepts(trace);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  for (int w = 1; w < kThreads; ++w) EXPECT_EQ(seen[w], seen[0]);
}

// -------------------------------------- empirical-report equivalence ---
//
// The tentpole's proof obligation: for every shipped scenario, the full
// rulebook, and several seeds, the EmpiricalReport produced through the
// compiled monitors is identical (exact doubles, same skip counts) to the
// one produced by the tree evaluator.

TEST_F(MonitorTest, EmpiricalReportsIdenticalMonitorVsEvaluator) {
  const DrivingDomain domain;
  auto g2f = glm2fsa::glm2fsa(driving::paper_right_turn_after(),
                              domain.aligner(), domain.build_options());
  ASSERT_TRUE(g2f.parsed.ok());
  const sim::FsaController controller = g2f.controller;

  sim::SimulatorConfig cfg;
  cfg.horizon = 20;
  cfg.perception_noise = 0.1;  // noise exercises more of the DFA
  cfg.noise_mask = domain.vocab().env_mask();
  cfg.epsilon_label = domain.stop_action();

  for (const ScenarioId scenario : driving::all_scenarios()) {
    sim::Simulator simulator(domain.model(scenario), cfg);
    for (const std::uint64_t seed : {11u, 22u, 33u}) {
      sim::EmpiricalReport with_monitor, with_evaluator;
      {
        MonitorToggle on(true);
        Rng rng(seed);
        with_monitor = sim::empirical_evaluation(simulator, controller,
                                                 domain.specs(), 40, rng);
      }
      {
        MonitorToggle off(false);
        Rng rng(seed);
        with_evaluator = sim::empirical_evaluation(simulator, controller,
                                                   domain.specs(), 40, rng);
      }
      ASSERT_EQ(with_monitor.per_spec.size(), with_evaluator.per_spec.size());
      EXPECT_EQ(with_monitor.rollouts, with_evaluator.rollouts);
      EXPECT_EQ(with_monitor.skipped_traces, with_evaluator.skipped_traces);
      for (std::size_t i = 0; i < with_monitor.per_spec.size(); ++i) {
        EXPECT_EQ(with_monitor.per_spec[i].spec_name,
                  with_evaluator.per_spec[i].spec_name);
        // Exact equality: both sides divide identical integer counts.
        EXPECT_EQ(with_monitor.per_spec[i].probability,
                  with_evaluator.per_spec[i].probability)
            << driving::scenario_name(scenario) << " seed " << seed << " "
            << with_monitor.per_spec[i].spec_name;
      }
    }
  }
}

}  // namespace
}  // namespace dpoaf::monitor
