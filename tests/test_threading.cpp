// Threading determinism contract (see DESIGN.md "Threading model"):
// every parallelized path must produce bitwise-identical results at any
// thread count, because partitions never split a float reduction across
// chunks. These tests pin that contract for the tensor ops and for the
// end-to-end pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "core/pipeline.hpp"
#include "tensor/backend/backend.hpp"
#include "tensor/ops.hpp"
#include "util/threadpool.hpp"

namespace dpoaf {
namespace {

using tensor::Tape;
using tensor::Tensor;
namespace ops = tensor::ops;
namespace backend = tensor::backend;

// The 1-vs-N bitwise contract holds per compute backend (docs/BACKENDS.md):
// run `fn` under scalar and — when the CPU supports it — simd, restoring
// the scalar backend afterwards.
template <typename Fn>
void for_each_backend(Fn fn) {
  fn("scalar");
  if (backend::simd_supported()) fn("simd");
  backend::select("scalar");
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  util::ThreadPool pool(4);
  constexpr std::int64_t n = 10'000;
  std::vector<int> hits(n, 0);
  pool.parallel_for(0, n, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[static_cast<std::size_t>(i)], 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  util::ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(0, 8, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i)
      // Nested call: must execute inline on this thread without deadlock.
      pool.parallel_for(0, 100, 1, [&](std::int64_t a, std::int64_t b) {
        total.fetch_add(b - a, std::memory_order_relaxed);
      });
  });
  EXPECT_EQ(total.load(), 8 * 100);
}

TEST(ThreadPool, SerialPoolRunsWholeRangeAsOneChunk) {
  util::ThreadPool pool(1);
  int calls = 0;
  pool.parallel_for(0, 1000, 1, [&](std::int64_t lo, std::int64_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 1000);
  });
  EXPECT_EQ(calls, 1);
}

// Runs `fn` once at threads=1 and once at threads=4, returning both
// results for bitwise comparison.
template <typename Fn>
auto with_both_thread_counts(Fn fn) {
  util::set_global_threads(1);
  auto serial = fn();
  util::set_global_threads(4);
  auto parallel = fn();
  util::set_global_threads(1);
  return std::make_pair(serial, parallel);
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<std::size_t>(a.numel())),
            0);
}

TEST(Determinism, MatmulForwardBitwiseAcrossThreadCounts) {
  for_each_backend([](const char* be) {
    backend::select(be);
    auto [serial, parallel] = with_both_thread_counts([] {
      Rng rng(7);
      Tensor a = Tensor::randn({96, 96}, rng);
      Tensor b = Tensor::randn({96, 96}, rng);
      return ops::matmul(nullptr, a, b);
    });
    expect_bitwise_equal(serial, parallel);
  });
}

TEST(Determinism, MatmulBackwardGradsBitwiseAcrossThreadCounts) {
  auto run = [] {
    Rng rng(11);
    Tensor a = Tensor::randn({64, 96}, rng).set_requires_grad(true);
    Tensor b = Tensor::randn({96, 80}, rng).set_requires_grad(true);
    Tape tape;
    Tensor c = ops::matmul(&tape, a, b);
    Tensor loss = ops::sum(&tape, c);
    tape.backward(loss);
    Tensor ga = Tensor::from(
        a.shape(), std::vector<float>(a.grad(), a.grad() + a.numel()));
    Tensor gb = Tensor::from(
        b.shape(), std::vector<float>(b.grad(), b.grad() + b.numel()));
    return std::make_pair(ga, gb);
  };
  for_each_backend([&](const char* be) {
    backend::select(be);
    auto [serial, parallel] = with_both_thread_counts(run);
    expect_bitwise_equal(serial.first, parallel.first);
    expect_bitwise_equal(serial.second, parallel.second);
  });
}

TEST(Determinism, ElementwiseAndRowOpsBitwiseAcrossThreadCounts) {
  auto run = [] {
    Rng rng(13);
    Tensor x = Tensor::randn({256, 256}, rng).set_requires_grad(true);
    Tensor y = Tensor::randn({256, 256}, rng).set_requires_grad(true);
    Tensor gamma = Tensor::full({1, 256}, 1.0f);
    Tensor beta = Tensor::zeros({1, 256});
    Tape tape;
    Tensor h = ops::gelu(&tape, ops::add(&tape, x, ops::mul(&tape, x, y)));
    h = ops::layer_norm(&tape, h, gamma, beta);
    h = ops::softmax_rows(&tape, h);
    Tensor loss = ops::sum(&tape, ops::softplus(&tape, h));
    tape.backward(loss);
    Tensor out = h.clone();
    Tensor gx = Tensor::from(
        x.shape(), std::vector<float>(x.grad(), x.grad() + x.numel()));
    return std::make_pair(out, gx);
  };
  for_each_backend([&](const char* be) {
    backend::select(be);
    auto [serial, parallel] = with_both_thread_counts(run);
    expect_bitwise_equal(serial.first, parallel.first);
    expect_bitwise_equal(serial.second, parallel.second);
  });
}

// End-to-end: the full DPO-AF loop (pretrain → candidates → pairs → DPO →
// checkpoint eval) at threads=1 and threads=4 must produce identical
// EpochMetrics and CheckpointEvals on a fixed seed.
TEST(Determinism, PipelineRunIdenticalAcrossThreadCounts) {
  auto run_with = [](int threads) {
    core::PipelineConfig cfg;
    cfg.seed = 23;
    cfg.threads = threads;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    cfg.d_ff = 32;
    cfg.corpus_samples_per_task = 6;
    cfg.pretrain.epochs = 1;
    cfg.candidates_from_catalog = true;
    cfg.dpo.epochs = 2;
    cfg.dpo.checkpoint_every = 2;
    cfg.dpo.pairs_per_epoch = 8;
    cfg.dpo.lora_rank = 2;
    cfg.eval_samples_per_task = 2;
    cfg.eval_max_new_tokens = 24;
    core::DpoAfPipeline pipe(cfg);
    pipe.pretrain_model();
    return pipe.run_dpo(pipe.build_pairs(pipe.collect_candidates()));
  };
  const auto serial = run_with(1);
  const auto parallel = run_with(4);
  util::set_global_threads(1);

  ASSERT_EQ(serial.metrics.size(), parallel.metrics.size());
  for (std::size_t i = 0; i < serial.metrics.size(); ++i) {
    EXPECT_EQ(serial.metrics[i].loss, parallel.metrics[i].loss);
    EXPECT_EQ(serial.metrics[i].accuracy, parallel.metrics[i].accuracy);
    EXPECT_EQ(serial.metrics[i].margin, parallel.metrics[i].margin);
  }
  ASSERT_EQ(serial.checkpoints.size(), parallel.checkpoints.size());
  for (std::size_t i = 0; i < serial.checkpoints.size(); ++i) {
    const auto& s = serial.checkpoints[i];
    const auto& p = parallel.checkpoints[i];
    EXPECT_EQ(s.epoch, p.epoch);
    EXPECT_EQ(s.train_mean_satisfied, p.train_mean_satisfied);
    EXPECT_EQ(s.val_mean_satisfied, p.val_mean_satisfied);
    ASSERT_EQ(s.per_task.size(), p.per_task.size());
    for (std::size_t t = 0; t < s.per_task.size(); ++t) {
      EXPECT_EQ(s.per_task[t].first, p.per_task[t].first);
      EXPECT_EQ(s.per_task[t].second, p.per_task[t].second);
    }
  }
}

}  // namespace
}  // namespace dpoaf
