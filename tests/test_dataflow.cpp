// The streaming dataflow framework (src/core/dataflow) and the
// streaming-vs-phased equivalence contract (docs/PIPELINE.md): bounded
// channels must enforce backpressure and drain cleanly on close/fail,
// sequence-numbered reassembly must release items in submission order no
// matter the completion order, stage errors must unwind the whole graph,
// and the streaming pipeline must produce bitwise-identical results to
// the barriered phased pipeline. This suite also runs under TSan in CI
// (DPOAF_THREADS=4, both tensor backends).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/dataflow/channel.hpp"
#include "core/dataflow/reorder.hpp"
#include "core/dataflow/stage.hpp"
#include "core/pipeline.hpp"
#include "util/threadpool.hpp"

namespace dpoaf {
namespace {

using core::dataflow::Channel;
using core::dataflow::Reorder;
using core::dataflow::StageSet;

// ---------------------------------------------------------- channel ----

TEST(DataflowChannel, FifoOrderThenCloseDrains) {
  Channel<int> ch(8, "test.fifo");
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ch.push(i));
  ch.close();
  EXPECT_FALSE(ch.push(99));  // closed: push refuses, item dropped
  for (int i = 0; i < 5; ++i) {
    const auto v = ch.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);  // buffered items drain in FIFO order after close
  }
  EXPECT_FALSE(ch.pop().has_value());  // drained: stream ends
  EXPECT_FALSE(ch.pop().has_value());  // and stays ended
  const auto stats = ch.stats();
  EXPECT_EQ(stats.pushes, 5u);
  EXPECT_EQ(stats.pops, 5u);
  EXPECT_TRUE(stats.closed);
  EXPECT_FALSE(stats.failed);
}

TEST(DataflowChannel, BackpressureBoundsDepthUnderSlowConsumer) {
  constexpr std::size_t kCapacity = 2;
  constexpr int kItems = 24;
  Channel<int> ch(kCapacity, "test.backpressure");
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) ASSERT_TRUE(ch.push(i));
    ch.close();
  });
  int received = 0;
  for (;;) {
    // The consumer is deliberately slower than the producer, so the
    // producer must hit the capacity bound and block.
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const auto v = ch.pop();
    if (!v.has_value()) break;
    EXPECT_EQ(*v, received);  // order survives the blocking
    ++received;
  }
  producer.join();
  EXPECT_EQ(received, kItems);
  const auto stats = ch.stats();
  EXPECT_LE(stats.max_depth, kCapacity);  // the bound held throughout
  EXPECT_GT(stats.backpressure_waits, 0u);  // and the producer did block
}

TEST(DataflowChannel, FailUnblocksBlockedProducerAndConsumer) {
  Channel<int> ch(1, "test.fail");
  ASSERT_TRUE(ch.push(0));  // fill to capacity
  std::atomic<bool> push_returned{false};
  std::thread producer([&] {
    EXPECT_FALSE(ch.push(1));  // blocks on full, then fails out
    push_returned.store(true);
  });
  // Give the producer time to block on the full channel.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ch.fail();
  producer.join();
  EXPECT_TRUE(push_returned.load());
  // fail() abandons buffered items: the consumer sees end-of-stream, not
  // the item pushed before the failure.
  EXPECT_FALSE(ch.pop().has_value());
  EXPECT_TRUE(ch.stats().failed);
}

// ---------------------------------------------------------- reorder ----

TEST(DataflowReorder, ReleasesInSequenceOrderRegardlessOfArrival) {
  Reorder<std::string> ro("test.reorder");
  // Completions arrive in reverse order.
  for (int i = 4; i >= 0; --i)
    EXPECT_TRUE(ro.push(static_cast<std::uint64_t>(i), std::to_string(i)));
  EXPECT_EQ(ro.max_pending(), 5u);
  ro.close();
  for (int i = 0; i < 5; ++i) {
    const auto v = ro.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, std::to_string(i));
  }
  EXPECT_FALSE(ro.pop().has_value());
}

TEST(DataflowReorder, PopBlocksUntilTheNextSequenceNumberArrives) {
  Reorder<int> ro("test.reorder_block");
  std::vector<int> seen;
  std::thread consumer([&] {
    while (const auto v = ro.pop()) seen.push_back(*v);
  });
  ro.push(1, 11);  // out of order: the consumer must keep waiting
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ro.push(0, 10);  // gap filled: both release, in order
  ro.push(2, 12);
  ro.close();
  consumer.join();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], 10);
  EXPECT_EQ(seen[1], 11);
  EXPECT_EQ(seen[2], 12);
}

TEST(DataflowReorder, FailAbandonsPendingItems) {
  Reorder<int> ro("test.reorder_fail");
  ro.push(1, 11);  // would block a pop forever (seq 0 never arrives)
  ro.fail();
  EXPECT_FALSE(ro.pop().has_value());
  EXPECT_FALSE(ro.push(0, 10));  // failed: pushes refuse
}

// ---------------------------------------------------------- stages -----

TEST(DataflowStageSet, FanInFanOutDeliversEveryItemExactlyOnce) {
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 100;
  Channel<int> ch(8, "test.fanin");
  StageSet stages([&] { ch.fail(); });
  stages.spawn(
      "produce", kWorkers,
      [&](int worker) {
        for (int i = 0; i < kPerWorker; ++i)
          ASSERT_TRUE(ch.push(worker * kPerWorker + i));
      },
      [&] { ch.close(); });  // fires once, after the LAST worker returns
  std::vector<bool> seen(kWorkers * kPerWorker, false);
  while (const auto v = ch.pop()) {
    ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
  }
  stages.join();
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(DataflowStageSet, WorkerErrorFailsTheGraphAndRethrowsOnJoin) {
  Channel<int> work(2, "test.err_in");
  Channel<int> done(2, "test.err_out");
  StageSet stages([&] {
    work.fail();
    done.fail();
  });
  stages.spawn("explode", 1, [&](int) {
    throw std::runtime_error("stage worker died");
  });
  // A downstream stage blocked on the failed graph must unwind cleanly
  // instead of hanging.
  stages.spawn(
      "drain", 2,
      [&](int) {
        while (const auto v = work.pop()) done.push(*v);
      },
      [&] { done.close(); });
  EXPECT_FALSE(done.pop().has_value());  // consumer unblocks with nothing
  EXPECT_THROW(stages.join(), std::runtime_error);
}

// ---------------------------- streaming vs phased: bitwise identical ----

core::PipelineConfig micro_config(bool streaming, int threads,
                                  bool catalog, bool serve) {
  core::PipelineConfig cfg;
  cfg.seed = 29;
  cfg.threads = threads;
  cfg.streaming = streaming;
  cfg.stage_queue_capacity = 4;  // small bound: force real backpressure
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.corpus_samples_per_task = 6;
  cfg.pretrain.epochs = 1;
  cfg.candidates_from_catalog = catalog;
  cfg.serve = serve;
  cfg.serve_slots = 4;
  cfg.responses_per_task = 3;
  cfg.sampler.max_new_tokens = 24;
  cfg.dpo.epochs = 2;
  cfg.dpo.checkpoint_every = 2;
  cfg.dpo.pairs_per_epoch = 8;
  cfg.dpo.lora_rank = 2;
  cfg.eval_samples_per_task = 2;
  cfg.eval_max_new_tokens = 24;
  return cfg;
}

std::vector<core::TaskCandidates> collect(const core::PipelineConfig& cfg) {
  core::DpoAfPipeline pipe(cfg);
  if (!cfg.candidates_from_catalog) pipe.pretrain_model();
  auto out = pipe.collect_candidates();
  util::set_global_threads(1);
  return out;
}

void expect_same_candidates(const std::vector<core::TaskCandidates>& a,
                            const std::vector<core::TaskCandidates>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t u = 0; u < a.size(); ++u) {
    EXPECT_EQ(a[u].task_id, b[u].task_id);
    EXPECT_EQ(a[u].truncated, b[u].truncated);
    ASSERT_EQ(a[u].candidates.size(), b[u].candidates.size());
    for (std::size_t c = 0; c < a[u].candidates.size(); ++c) {
      EXPECT_EQ(a[u].candidates[c].text, b[u].candidates[c].text);
      EXPECT_EQ(a[u].candidates[c].score, b[u].candidates[c].score);
    }
  }
}

TEST(StreamingEquivalence, CatalogCandidatesIdenticalAcrossModesAndThreads) {
  const auto phased = collect(micro_config(false, 1, true, false));
  expect_same_candidates(phased, collect(micro_config(true, 1, true, false)));
  expect_same_candidates(phased, collect(micro_config(true, 4, true, false)));
}

TEST(StreamingEquivalence, SampledCandidatesIdenticalAcrossModesAndThreads) {
  const auto phased = collect(micro_config(false, 1, false, false));
  expect_same_candidates(phased, collect(micro_config(true, 1, false, false)));
  expect_same_candidates(phased, collect(micro_config(true, 4, false, false)));
}

TEST(StreamingEquivalence, ServedCandidatesIdenticalAcrossModesAndThreads) {
  const auto phased = collect(micro_config(false, 1, false, true));
  expect_same_candidates(phased, collect(micro_config(true, 4, false, true)));
}

// Full run(): in streaming mode the pair builder runs as a stage (pairs
// are built the moment a task's last candidate is scored), so the whole
// RunResult — DPO metric history included — must match the phased run.
TEST(StreamingEquivalence, FullRunIdenticalToPhased) {
  const auto run_with = [](bool streaming, int threads) {
    auto cfg = micro_config(streaming, threads, true, false);
    core::DpoAfPipeline pipe(cfg);
    auto result = pipe.run();
    util::set_global_threads(1);
    return result;
  };
  const auto phased = run_with(false, 1);
  const auto streaming1 = run_with(true, 1);
  const auto streaming4 = run_with(true, 4);
  for (const auto* other : {&streaming1, &streaming4}) {
    EXPECT_EQ(phased.pair_count, other->pair_count);
    ASSERT_EQ(phased.metrics.size(), other->metrics.size());
    for (std::size_t i = 0; i < phased.metrics.size(); ++i) {
      EXPECT_EQ(phased.metrics[i].loss, other->metrics[i].loss);
      EXPECT_EQ(phased.metrics[i].accuracy, other->metrics[i].accuracy);
      EXPECT_EQ(phased.metrics[i].margin, other->metrics[i].margin);
      EXPECT_EQ(phased.metrics[i].kl, other->metrics[i].kl);
    }
    ASSERT_EQ(phased.checkpoints.size(), other->checkpoints.size());
    for (std::size_t i = 0; i < phased.checkpoints.size(); ++i) {
      EXPECT_EQ(phased.checkpoints[i].train_mean_satisfied,
                other->checkpoints[i].train_mean_satisfied);
      EXPECT_EQ(phased.checkpoints[i].val_mean_satisfied,
                other->checkpoints[i].val_mean_satisfied);
      EXPECT_EQ(phased.checkpoints[i].truncated_responses,
                other->checkpoints[i].truncated_responses);
    }
  }
}

}  // namespace
}  // namespace dpoaf
