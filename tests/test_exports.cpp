#include <gtest/gtest.h>

#include <cmath>

#include "automata/dot_export.hpp"
#include "driving/domain.hpp"
#include "modelcheck/smv_export.hpp"
#include "nn/decoder.hpp"
#include "util/check.hpp"

namespace dpoaf {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  static const driving::DrivingDomain& domain() {
    static driving::DrivingDomain d;
    return d;
  }
  static const glm2fsa::Glm2FsaResult& after() {
    static auto r =
        glm2fsa::glm2fsa(driving::paper_right_turn_after(),
                         domain().aligner(), domain().build_options());
    return r;
  }
};

// ------------------------------------------------------------------ DOT ---

TEST_F(ExportTest, ModelDotContainsStatesAndEdges) {
  const auto& model = domain().model(driving::ScenarioId::WideMedian);
  const std::string dot =
      automata::to_dot(model, domain().vocab(), "wide_median");
  EXPECT_NE(dot.find("digraph wide_median"), std::string::npos);
  EXPECT_NE(dot.find("car_from_left"), std::string::npos);
  // One node line per state and at least one edge per state (no deadlocks).
  std::size_t arrows = 0;
  for (std::size_t pos = 0; (pos = dot.find("->", pos)) != std::string::npos;
       ++pos)
    ++arrows;
  EXPECT_GE(arrows, model.state_count());
}

TEST_F(ExportTest, ControllerDotMarksInitialState) {
  const std::string dot =
      automata::to_dot(after().controller, domain().vocab());
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);
  EXPECT_NE(dot.find("turn_right"), std::string::npos);
  EXPECT_NE(dot.find("!car_from_left"), std::string::npos);
}

TEST_F(ExportTest, ProductDotUsesPaperTriples) {
  const auto product =
      automata::make_product(domain().model(driving::ScenarioId::WideMedian),
                             after().controller, domain().product_options());
  const std::string dot = automata::to_dot(product, domain().model(
                                               driving::ScenarioId::WideMedian),
                                           after().controller,
                                           domain().vocab());
  EXPECT_NE(dot.find("q1"), std::string::npos);
  EXPECT_NE(dot.find("init"), std::string::npos);
}

// ------------------------------------------------------------------ SMV ---

TEST_F(ExportTest, SmvModuleStructure) {
  const auto scenario = driving::ScenarioId::TrafficLight;
  const auto product = automata::make_product(
      domain().model(scenario), after().controller,
      domain().product_options());
  const std::string smv =
      modelcheck::to_smv(product, domain().vocab(), domain().specs(),
                         domain().fairness(scenario));
  EXPECT_NE(smv.find("MODULE main"), std::string::npos);
  EXPECT_NE(smv.find("VAR\n  state : 0.."), std::string::npos);
  EXPECT_NE(smv.find("INIT"), std::string::npos);
  EXPECT_NE(smv.find("TRANS"), std::string::npos);
  // One LTLSPEC per rulebook entry, carrying its name.
  for (const auto& spec : domain().specs())
    EXPECT_NE(smv.find("LTLSPEC NAME " + spec.name), std::string::npos);
  // □◇ fairness assumptions become NuSMV FAIRNESS constraints.
  EXPECT_NE(smv.find("FAIRNESS"), std::string::npos);
  // Release is spelled V in NuSMV; G/F/X/U pass through. The driving specs
  // contain no Release, but every proposition define must exist.
  EXPECT_NE(smv.find("green_traffic_light := state in {"),
            std::string::npos);
}

TEST_F(ExportTest, SmvEmptyKripkeRejected) {
  automata::Kripke empty;
  EXPECT_THROW((void)modelcheck::to_smv(empty, domain().vocab(), {}),
               ContractViolation);
}

// -------------------------------------------------------------- decoder ---

class DecoderTest : public ::testing::Test {
 protected:
  static nn::TinyGpt make_model(std::uint64_t seed, bool lora) {
    nn::GptConfig cfg;
    cfg.vocab_size = 24;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 2;
    cfg.d_ff = 32;
    cfg.max_seq = 20;
    Rng rng(seed);
    nn::TinyGpt model(cfg, rng);
    if (lora) model.enable_lora(2, 4.0f, rng);
    return model;
  }
};

TEST_F(DecoderTest, MatchesBatchForwardLogits) {
  const auto model = make_model(31, false);
  nn::DecodeSession session(model);
  Rng rng(5);
  std::vector<int> ids;
  for (int t = 0; t < 12; ++t) {
    ids.push_back(static_cast<int>(rng.below(24)));
    const auto& incremental = session.step(ids.back());
    const auto batch = model.forward(nullptr, ids);
    const float* row = batch.data() + (batch.rows() - 1) * batch.cols();
    for (std::int64_t j = 0; j < batch.cols(); ++j)
      ASSERT_NEAR(incremental[static_cast<std::size_t>(j)], row[j], 2e-3f)
          << "t=" << t << " j=" << j;
  }
}

TEST_F(DecoderTest, MatchesBatchForwardWithLora) {
  auto model = make_model(32, true);
  // Perturb the adapters so LoRA actually contributes.
  Rng rng(6);
  for (nn::Tensor p : model.trainable_parameters())
    for (std::int64_t i = 0; i < p.numel(); ++i)
      p.data()[i] += static_cast<float>(rng.normal()) * 0.05f;

  nn::DecodeSession session(model);
  std::vector<int> ids;
  for (int t = 0; t < 10; ++t) {
    ids.push_back(static_cast<int>(rng.below(24)));
    const auto& incremental = session.step(ids.back());
    const auto batch = model.forward(nullptr, ids);
    const float* row = batch.data() + (batch.rows() - 1) * batch.cols();
    for (std::int64_t j = 0; j < batch.cols(); ++j)
      ASSERT_NEAR(incremental[static_cast<std::size_t>(j)], row[j], 2e-3f);
  }
}

TEST_F(DecoderTest, ResetStartsOver) {
  const auto model = make_model(33, false);
  nn::DecodeSession session(model);
  const auto first = session.step(3);
  const std::vector<float> saved = first;
  session.step(5);
  session.reset();
  EXPECT_EQ(session.position(), 0);
  const auto& again = session.step(3);
  for (std::size_t j = 0; j < saved.size(); ++j)
    EXPECT_FLOAT_EQ(saved[j], again[j]);
}

TEST_F(DecoderTest, EnforcesContextLimit) {
  const auto model = make_model(34, false);
  nn::DecodeSession session(model);
  for (int t = 0; t < 20; ++t) session.step(1);
  EXPECT_THROW((void)session.step(1), ContractViolation);
  EXPECT_THROW((void)session.step(-1), ContractViolation);
}

TEST_F(DecoderTest, GreedyGenerationUsesCachePathConsistently) {
  // generate_greedy (cache path) must agree with manual argmax decoding
  // over batch forwards.
  const auto model = make_model(35, false);
  const std::vector<int> prompt{1, 2, 3};
  const auto fast = model.generate_greedy(prompt, 6, 0);

  std::vector<int> seq = prompt;
  std::vector<int> slow;
  for (int step = 0; step < 6; ++step) {
    const auto logits = model.forward(nullptr, seq);
    const float* row = logits.data() + (logits.rows() - 1) * logits.cols();
    int best = 0;
    for (std::int64_t j = 1; j < logits.cols(); ++j)
      if (row[j] > row[best]) best = static_cast<int>(j);
    if (best == 0) break;
    seq.push_back(best);
    slow.push_back(best);
  }
  EXPECT_EQ(fast.ids, slow);
}

}  // namespace
}  // namespace dpoaf
