#include <gtest/gtest.h>

#include <algorithm>

#include "core/repair.hpp"

namespace dpoaf::core {
namespace {

using driving::DrivingDomain;
using driving::ScenarioId;

class RepairTest : public ::testing::Test {
 protected:
  static const DrivingDomain& domain() {
    static DrivingDomain d;
    return d;
  }
  static automata::FsaController build(const std::string& text) {
    auto r = glm2fsa::glm2fsa(text, domain().aligner(),
                              domain().build_options());
    EXPECT_TRUE(r.parsed.ok());
    return r.controller;
  }
};

TEST_F(RepairTest, RepairsPaperBeforeControllerToFullCompliance) {
  const auto result = repair_controller(
      domain(), ScenarioId::TrafficLight, build(driving::paper_right_turn_before()));
  EXPECT_EQ(result.score_before, 11);
  EXPECT_EQ(result.score_after, 15);
  EXPECT_GT(result.iterations, 0);
  // Φ5 (the paper's highlighted violation) must be among the patches.
  EXPECT_NE(std::find(result.patched_specs.begin(),
                      result.patched_specs.end(), "phi_5"),
            result.patched_specs.end());
}

TEST_F(RepairTest, CompliantControllerIsLeftUntouched) {
  const auto controller = build(driving::paper_right_turn_after());
  const auto result =
      repair_controller(domain(), ScenarioId::TrafficLight, controller);
  EXPECT_EQ(result.score_before, 15);
  EXPECT_EQ(result.score_after, 15);
  EXPECT_EQ(result.iterations, 0);
  EXPECT_TRUE(result.patched_specs.empty());
  EXPECT_EQ(result.controller.transitions().size(),
            controller.transitions().size());
}

TEST_F(RepairTest, RepairNeverDecreasesTheScore) {
  for (const auto& task : domain().tasks()) {
    for (const auto& variant : task.variants) {
      if (variant.tag == driving::FlawTag::Unaligned) continue;
      auto g2f = glm2fsa::glm2fsa(variant.text, domain().aligner(),
                                  domain().build_options());
      ASSERT_TRUE(g2f.parsed.ok()) << task.id;
      const auto result =
          repair_controller(domain(), task.scenario, g2f.controller);
      EXPECT_GE(result.score_after, result.score_before)
          << task.id << "/" << driving::flaw_name(variant.tag);
    }
  }
}

TEST_F(RepairTest, RepairsLeftTurnPhi12) {
  const auto result = repair_controller(
      domain(), ScenarioId::LeftTurnSignal,
      build(driving::paper_left_turn_before()));
  EXPECT_GT(result.score_after, result.score_before);
  // The unprotected-turn safety rules must be restored.
  const auto product = automata::make_product(
      domain().model(ScenarioId::LeftTurnSignal), result.controller,
      domain().product_options());
  const auto report =
      modelcheck::verify_all(product, domain().specs(),
                             domain().fairness(ScenarioId::LeftTurnSignal));
  const auto violated = report.violated();
  EXPECT_EQ(std::find(violated.begin(), violated.end(), "phi_12"),
            violated.end());
  EXPECT_EQ(std::find(violated.begin(), violated.end(), "phi_2"),
            violated.end());
}

TEST_F(RepairTest, IterationBudgetRespected) {
  RepairOptions opt;
  opt.max_iterations = 1;
  const auto result = repair_controller(
      domain(), ScenarioId::TrafficLight,
      build(driving::paper_right_turn_before()), opt);
  EXPECT_LE(result.iterations, 1);
}

}  // namespace
}  // namespace dpoaf::core
