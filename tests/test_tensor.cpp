#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dpoaf::tensor {
namespace {

namespace ops = dpoaf::tensor::ops;

// Central finite-difference check: analytic grad of `loss(inputs)` wrt each
// entry of each input vs (f(x+h)−f(x−h)) / 2h.
void check_gradients(std::vector<Tensor> inputs,
                     const std::function<Tensor(Tape*)>& loss_fn,
                     float h = 1e-3f, float tol = 2e-2f) {
  Tape tape;
  Tensor loss = loss_fn(&tape);
  ASSERT_EQ(loss.numel(), 1);
  tape.backward(loss);

  for (Tensor& input : inputs) {
    ASSERT_TRUE(input.requires_grad());
    for (std::int64_t i = 0; i < input.numel(); ++i) {
      const float orig = input.data()[i];
      input.data()[i] = orig + h;
      const float up = loss_fn(nullptr).item();
      input.data()[i] = orig - h;
      const float down = loss_fn(nullptr).item();
      input.data()[i] = orig;
      const float numeric = (up - down) / (2.0f * h);
      const float analytic = input.grad()[i];
      EXPECT_NEAR(analytic, numeric,
                  tol * std::max(1.0f, std::fabs(numeric)))
          << "input entry " << i;
    }
  }
}

TEST(Tensor, ConstructionAndAccess) {
  Tensor t = Tensor::from({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.at(1, 2), 6.0f);
  t.at(0, 0) = 9.0f;
  EXPECT_EQ(t.data()[0], 9.0f);
  EXPECT_THROW((void)Tensor::from({2, 2}, {1, 2, 3}), ContractViolation);
}

TEST(Tensor, CopiesAliasCloneDoesNot) {
  Tensor a = Tensor::from({1, 2}, {1, 2});
  Tensor b = a;          // aliases
  Tensor c = a.clone();  // deep copy
  a.data()[0] = 7.0f;
  EXPECT_EQ(b.data()[0], 7.0f);
  EXPECT_EQ(c.data()[0], 1.0f);
  EXPECT_TRUE(a.same_storage(b));
  EXPECT_FALSE(a.same_storage(c));
}

TEST(Tensor, ItemRequiresScalar) {
  EXPECT_THROW((void)Tensor::zeros({2, 1}).item(), ContractViolation);
  EXPECT_EQ(Tensor::full({1, 1}, 3.0f).item(), 3.0f);
}

TEST(Tensor, GradLazyAllocationAndZero) {
  Tensor t = Tensor::zeros({2, 2});
  EXPECT_FALSE(t.has_grad());
  t.grad()[0] = 5.0f;
  EXPECT_TRUE(t.has_grad());
  t.zero_grad();
  EXPECT_EQ(t.grad()[0], 0.0f);
}

TEST(Ops, MatmulForwardValues) {
  Tensor a = Tensor::from({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from({2, 2}, {5, 6, 7, 8});
  Tensor c = ops::matmul(nullptr, a, b);
  EXPECT_EQ(c.at(0, 0), 19.0f);
  EXPECT_EQ(c.at(0, 1), 22.0f);
  EXPECT_EQ(c.at(1, 0), 43.0f);
  EXPECT_EQ(c.at(1, 1), 50.0f);
}

TEST(Ops, MatmulShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({2, 3});
  EXPECT_THROW((void)ops::matmul(nullptr, a, b), ContractViolation);
}

TEST(Ops, MatmulGradients) {
  Rng rng(1);
  Tensor a = Tensor::randn({3, 4}, rng).set_requires_grad(true);
  Tensor b = Tensor::randn({4, 2}, rng).set_requires_grad(true);
  check_gradients({a, b}, [&](Tape* t) {
    return ops::sum(t, ops::matmul(t, a, b));
  });
}

TEST(Ops, AddMulSubScaleGradients) {
  Rng rng(2);
  Tensor a = Tensor::randn({2, 3}, rng).set_requires_grad(true);
  Tensor b = Tensor::randn({2, 3}, rng).set_requires_grad(true);
  check_gradients({a, b}, [&](Tape* t) {
    Tensor x = ops::add(t, a, b);
    Tensor y = ops::mul(t, x, ops::sub(t, a, b));
    return ops::sum(t, ops::scale(t, y, 0.5f));
  });
}

TEST(Ops, AddRowwiseGradients) {
  Rng rng(3);
  Tensor x = Tensor::randn({3, 4}, rng).set_requires_grad(true);
  Tensor b = Tensor::randn({1, 4}, rng).set_requires_grad(true);
  check_gradients({x, b}, [&](Tape* t) {
    return ops::sum(t, ops::add_rowwise(t, x, b));
  });
}

TEST(Ops, GeluGradientsAndValues) {
  // gelu(0) = 0; gelu(x) ≈ x for large x; gelu(x) ≈ 0 for very negative x.
  Tensor z = Tensor::from({1, 3}, {0.0f, 10.0f, -10.0f});
  Tensor g = ops::gelu(nullptr, z);
  EXPECT_NEAR(g.data()[0], 0.0f, 1e-6f);
  EXPECT_NEAR(g.data()[1], 10.0f, 1e-3f);
  EXPECT_NEAR(g.data()[2], 0.0f, 1e-3f);

  Rng rng(4);
  Tensor a = Tensor::randn({2, 5}, rng).set_requires_grad(true);
  check_gradients({a}, [&](Tape* t) { return ops::sum(t, ops::gelu(t, a)); });
}

TEST(Ops, LayerNormNormalizesRows) {
  Rng rng(5);
  Tensor x = Tensor::randn({4, 8}, rng, 3.0f);
  Tensor gamma = Tensor::full({1, 8}, 1.0f);
  Tensor beta = Tensor::zeros({1, 8});
  Tensor y = ops::layer_norm(nullptr, x, gamma, beta);
  for (std::int64_t i = 0; i < 4; ++i) {
    float mean = 0.0f, var = 0.0f;
    for (std::int64_t j = 0; j < 8; ++j) mean += y.at(i, j);
    mean /= 8.0f;
    for (std::int64_t j = 0; j < 8; ++j)
      var += (y.at(i, j) - mean) * (y.at(i, j) - mean);
    var /= 8.0f;
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(Ops, LayerNormGradients) {
  Rng rng(6);
  Tensor x = Tensor::randn({3, 6}, rng).set_requires_grad(true);
  Tensor gamma = Tensor::randn({1, 6}, rng).set_requires_grad(true);
  Tensor beta = Tensor::randn({1, 6}, rng).set_requires_grad(true);
  Tensor w = Tensor::randn({3, 6}, rng);  // weighting makes the loss non-flat
  check_gradients({x, gamma, beta}, [&](Tape* t) {
    return ops::sum(t, ops::mul(t, ops::layer_norm(t, x, gamma, beta), w));
  });
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(7);
  Tensor x = Tensor::randn({3, 5}, rng, 2.0f);
  Tensor y = ops::softmax_rows(nullptr, x);
  for (std::int64_t i = 0; i < 3; ++i) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < 5; ++j) {
      s += y.at(i, j);
      EXPECT_GT(y.at(i, j), 0.0f);
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Ops, SoftmaxGradients) {
  Rng rng(8);
  Tensor x = Tensor::randn({2, 4}, rng).set_requires_grad(true);
  Tensor w = Tensor::randn({2, 4}, rng);
  check_gradients({x}, [&](Tape* t) {
    return ops::sum(t, ops::mul(t, ops::softmax_rows(t, x), w));
  });
}

TEST(Ops, CausalSoftmaxMasksUpperTriangle) {
  Rng rng(9);
  Tensor x = Tensor::randn({4, 4}, rng);
  Tensor y = ops::causal_softmax_rows(nullptr, x);
  for (std::int64_t i = 0; i < 4; ++i) {
    float s = 0.0f;
    for (std::int64_t j = 0; j < 4; ++j) {
      if (j > i) {
        EXPECT_EQ(y.at(i, j), 0.0f);
      } else {
        s += y.at(i, j);
      }
    }
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
}

TEST(Ops, CausalSoftmaxGradients) {
  Rng rng(10);
  Tensor x = Tensor::randn({3, 3}, rng).set_requires_grad(true);
  Tensor w = Tensor::randn({3, 3}, rng);
  check_gradients({x}, [&](Tape* t) {
    return ops::sum(t, ops::mul(t, ops::causal_softmax_rows(t, x), w));
  });
}

TEST(Ops, EmbeddingGatherAndScatter) {
  Tensor table =
      Tensor::from({3, 2}, {1, 2, 3, 4, 5, 6}).set_requires_grad(true);
  const std::vector<int> ids{2, 0, 2};
  Tensor out = ops::embedding(nullptr, table, ids);
  EXPECT_EQ(out.at(0, 0), 5.0f);
  EXPECT_EQ(out.at(1, 1), 2.0f);

  check_gradients({table}, [&](Tape* t) {
    return ops::sum(t, ops::embedding(t, table, ids));
  });
  // Row 2 gathered twice → gradient 2 per entry; row 1 never → 0.
  Tape tape;
  table.zero_grad();
  Tensor loss = ops::sum(&tape, ops::embedding(&tape, table, ids));
  tape.backward(loss);
  EXPECT_EQ(table.grad()[2 * 2], 2.0f);
  EXPECT_EQ(table.grad()[1 * 2], 0.0f);
}

TEST(Ops, EmbeddingOutOfRangeThrows) {
  Tensor table = Tensor::zeros({3, 2});
  EXPECT_THROW((void)ops::embedding(nullptr, table, {3}), ContractViolation);
}

TEST(Ops, SliceAndConcatRoundTrip) {
  Rng rng(11);
  Tensor x = Tensor::randn({2, 6}, rng).set_requires_grad(true);
  Tensor a = ops::slice_cols(nullptr, x, 0, 3);
  Tensor b = ops::slice_cols(nullptr, x, 3, 3);
  Tensor back = ops::concat_cols(nullptr, {a, b});
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_EQ(back.data()[i], x.data()[i]);

  check_gradients({x}, [&](Tape* t) {
    Tensor s1 = ops::slice_cols(t, x, 1, 2);
    Tensor s2 = ops::slice_cols(t, x, 3, 2);
    return ops::sum(t, ops::mul(t, s1, s2));
  });
}

TEST(Ops, TransposeGradients) {
  Rng rng(12);
  Tensor x = Tensor::randn({2, 3}, rng).set_requires_grad(true);
  Tensor w = Tensor::randn({3, 2}, rng);
  check_gradients({x}, [&](Tape* t) {
    return ops::sum(t, ops::mul(t, ops::transpose(t, x), w));
  });
}

TEST(Ops, CrossEntropyMatchesManualComputation) {
  // Uniform logits over V classes → CE = log V.
  Tensor logits = Tensor::zeros({2, 4});
  const std::vector<int> targets{1, 3};
  const float ce = ops::cross_entropy(nullptr, logits, targets).item();
  EXPECT_NEAR(ce, std::log(4.0f), 1e-5f);
}

TEST(Ops, CrossEntropyIgnoresNegativeTargets) {
  Tensor logits = Tensor::from({2, 2}, {100, 0, 0, 100});
  // Only position 1 scored; it predicts class 1 with ~certainty.
  const float ce = ops::cross_entropy(nullptr, logits, {-1, 1}).item();
  EXPECT_NEAR(ce, 0.0f, 1e-4f);
}

TEST(Ops, CrossEntropyGradients) {
  Rng rng(13);
  Tensor logits = Tensor::randn({3, 5}, rng).set_requires_grad(true);
  const std::vector<int> targets{4, -1, 0};
  check_gradients({logits}, [&](Tape* t) {
    return ops::cross_entropy(t, logits, targets);
  });
}

TEST(Ops, SumLogProbsEqualsNegativeCeTimesCount) {
  Rng rng(14);
  Tensor logits = Tensor::randn({4, 6}, rng);
  const std::vector<int> targets{1, 2, 3, -1};
  const float lp = ops::sum_log_probs(nullptr, logits, targets, 0).item();
  const float ce = ops::cross_entropy(nullptr, logits, targets).item();
  EXPECT_NEAR(lp, -3.0f * ce, 1e-4f);
}

TEST(Ops, SumLogProbsRespectsFrom) {
  Rng rng(15);
  Tensor logits = Tensor::randn({4, 6}, rng).set_requires_grad(true);
  const std::vector<int> targets{1, 2, 3, 4};
  const float all = ops::sum_log_probs(nullptr, logits, targets, 0).item();
  const float tail = ops::sum_log_probs(nullptr, logits, targets, 2).item();
  EXPECT_LT(tail, 0.0f);
  EXPECT_LT(all, tail);  // more (negative) terms
  check_gradients({logits}, [&](Tape* t) {
    return ops::sum_log_probs(t, logits, targets, 2);
  });
}

TEST(Ops, SoftplusValuesAndGradients) {
  Tensor x = Tensor::from({1, 3}, {0.0f, 20.0f, -20.0f});
  Tensor y = ops::softplus(nullptr, x);
  EXPECT_NEAR(y.data()[0], std::log(2.0f), 1e-6f);
  EXPECT_NEAR(y.data()[1], 20.0f, 1e-4f);
  EXPECT_NEAR(y.data()[2], 0.0f, 1e-4f);

  Rng rng(16);
  Tensor a = Tensor::randn({2, 3}, rng).set_requires_grad(true);
  check_gradients({a}, [&](Tape* t) {
    return ops::sum(t, ops::softplus(t, a));
  });
}

TEST(Ops, NoTapeMeansNoGradFlow) {
  Tensor a = Tensor::from({1, 1}, {2.0f}).set_requires_grad(true);
  Tensor b = ops::scale(nullptr, a, 3.0f);
  EXPECT_FALSE(b.requires_grad());
}

TEST(Ops, FrozenInputGetsNoGradient) {
  Tensor a = Tensor::from({1, 2}, {1, 2});  // requires_grad = false
  Tensor b = Tensor::from({1, 2}, {3, 4}).set_requires_grad(true);
  Tape tape;
  Tensor loss = ops::sum(&tape, ops::mul(&tape, a, b));
  tape.backward(loss);
  EXPECT_FALSE(a.has_grad());
  EXPECT_EQ(b.grad()[0], 1.0f);
}

TEST(Tape, BackwardAccumulatesAcrossUses) {
  // y = a + a → dy/da = 2.
  Tensor a = Tensor::from({1, 1}, {1.0f}).set_requires_grad(true);
  Tape tape;
  Tensor loss = ops::add(&tape, a, a);
  tape.backward(loss);
  EXPECT_EQ(a.grad()[0], 2.0f);
}

TEST(Tape, BackwardRequiresScalarSeed) {
  Tape tape;
  EXPECT_THROW(tape.backward(Tensor::zeros({2, 1})), ContractViolation);
}

}  // namespace
}  // namespace dpoaf::tensor
