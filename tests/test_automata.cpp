#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "automata/controller.hpp"
#include "automata/product.hpp"
#include "automata/transition_system.hpp"
#include "util/check.hpp"

namespace dpoaf::automata {
namespace {

using logic::Symbol;
using logic::Vocabulary;

class AutomataTest : public ::testing::Test {
 protected:
  AutomataTest() : vocab_(logic::make_driving_vocabulary()) {
    green_ = *vocab_.find("green_traffic_light");
    car_left_ = *vocab_.find("car_from_left");
    stop_ = *vocab_.find("stop");
    go_ = *vocab_.find("go_straight");
  }
  Vocabulary vocab_;
  int green_ = 0, car_left_ = 0, stop_ = 0, go_ = 0;
};

// --------------------------------------------------- TransitionSystem ---

TEST_F(AutomataTest, AddStatesAndTransitions) {
  TransitionSystem ts;
  const auto p0 = ts.add_state(Vocabulary::bit(green_), "green");
  const auto p1 = ts.add_state(0, "red");
  ts.add_transition(p0, p1);
  ts.add_transition(p1, p0);
  ts.add_transition(p0, p1);  // duplicate ignored
  EXPECT_EQ(ts.state_count(), 2u);
  EXPECT_EQ(ts.transition_count(), 2u);
  EXPECT_TRUE(ts.has_transition(p0, p1));
  EXPECT_FALSE(ts.has_transition(p1, p1));
  EXPECT_EQ(ts.name(p0), "green");
  EXPECT_EQ(ts.label(p0), Vocabulary::bit(green_));
}

TEST_F(AutomataTest, OutOfRangeTransitionThrows) {
  TransitionSystem ts;
  ts.add_state(0);
  EXPECT_THROW(ts.add_transition(0, 5), ContractViolation);
  EXPECT_THROW((void)ts.label(-1), ContractViolation);
}

TEST_F(AutomataTest, DeadlockStatesDetected) {
  TransitionSystem ts;
  const auto p0 = ts.add_state(0);
  const auto p1 = ts.add_state(0);
  ts.add_transition(p0, p1);
  const auto dead = ts.deadlock_states();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], p1);
}

TEST_F(AutomataTest, IntegrateFormsDisjointUnion) {
  TransitionSystem a;
  const auto a0 = a.add_state(1, "a0");
  a.add_transition(a0, a0);
  TransitionSystem b;
  const auto b0 = b.add_state(2, "b0");
  const auto b1 = b.add_state(4, "b1");
  b.add_transition(b0, b1);

  const auto offset = a.integrate(b);
  EXPECT_EQ(offset, 1);
  EXPECT_EQ(a.state_count(), 3u);
  EXPECT_TRUE(a.has_transition(offset, offset + 1));
  EXPECT_FALSE(a.has_transition(a0, offset));  // no cross edges
  EXPECT_EQ(a.label(offset + 1), 4u);
}

// Algorithm 1: traffic light cycling red→green→yellow→red from the paper's
// own illustration (§4.1); uses three dedicated propositions.
TEST_F(AutomataTest, Algorithm1TrafficLightExample) {
  Vocabulary v;
  const int g = v.add_prop("green");
  const int y = v.add_prop("yellow");
  const int r = v.add_prop("red");
  const Symbol G = Vocabulary::bit(g), Y = Vocabulary::bit(y),
               R = Vocabulary::bit(r);
  auto allowed = [&](Symbol from, Symbol to) {
    return (from == G && to == Y) || (from == Y && to == R) ||
           (from == R && to == G);
  };
  const auto ts =
      TransitionSystem::from_predicate({g, y, r}, allowed, false);
  // Pruning removes all states except the three single-light labelings.
  EXPECT_EQ(ts.state_count(), 3u);
  EXPECT_EQ(ts.transition_count(), 3u);
  std::set<Symbol> labels;
  for (std::size_t p = 0; p < ts.state_count(); ++p)
    labels.insert(ts.label(static_cast<ModelStateId>(p)));
  EXPECT_EQ(labels, (std::set<Symbol>{G, Y, R}));
}

TEST_F(AutomataTest, Algorithm1ConservativeKeepsAllStates) {
  Vocabulary v;
  const int g = v.add_prop("green");
  const int y = v.add_prop("yellow");
  auto allowed = [&](Symbol from, Symbol to) {
    return from == Vocabulary::bit(g) && to == Vocabulary::bit(y);
  };
  const auto pruned = TransitionSystem::from_predicate({g, y}, allowed, false);
  const auto conservative =
      TransitionSystem::from_predicate({g, y}, allowed, true);
  EXPECT_EQ(pruned.state_count(), 2u);
  EXPECT_EQ(conservative.state_count(), 4u);  // 2^2 labelings kept
  EXPECT_EQ(conservative.transition_count(), pruned.transition_count());
}

TEST_F(AutomataTest, Algorithm1SelfLoopCountsAsTouched) {
  Vocabulary v;
  const int g = v.add_prop("green");
  auto allowed = [&](Symbol from, Symbol to) {
    return from == to && from == Vocabulary::bit(g);
  };
  const auto ts = TransitionSystem::from_predicate({g}, allowed, false);
  EXPECT_EQ(ts.state_count(), 1u);
  EXPECT_TRUE(ts.has_transition(0, 0));
}

// ------------------------------------------------------- FsaController ---

TEST_F(AutomataTest, GuardMatching) {
  Guard g;
  g.must_true = Vocabulary::bit(green_);
  g.must_false = Vocabulary::bit(car_left_);
  EXPECT_TRUE(g.matches(Vocabulary::bit(green_)));
  EXPECT_FALSE(g.matches(0));
  EXPECT_FALSE(
      g.matches(Vocabulary::bit(green_) | Vocabulary::bit(car_left_)));
  EXPECT_TRUE(Guard::top().matches(0));
  EXPECT_TRUE(Guard::top().matches(~Symbol{0}));
}

TEST_F(AutomataTest, ContradictoryGuardRejected) {
  FsaController c;
  const auto q0 = c.add_state();
  Guard g;
  g.must_true = g.must_false = Vocabulary::bit(green_);
  EXPECT_THROW(c.add_transition(q0, g, 0, q0), ContractViolation);
}

TEST_F(AutomataTest, ImplicitWaitSelfLoop) {
  FsaController c(Vocabulary::bit(stop_));
  const auto q0 = c.add_state();
  const auto q1 = c.add_state();
  Guard needs_green;
  needs_green.must_true = Vocabulary::bit(green_);
  c.add_transition(q0, needs_green, Vocabulary::bit(go_), q1);

  // Green present: explicit transition fires.
  const auto on = c.moves(q0, Vocabulary::bit(green_));
  ASSERT_EQ(on.size(), 1u);
  EXPECT_EQ(on[0].to, q1);
  EXPECT_EQ(on[0].action, Vocabulary::bit(go_));

  // Green absent: implicit wait with the default action.
  const auto off = c.moves(q0, 0);
  ASSERT_EQ(off.size(), 1u);
  EXPECT_EQ(off[0].to, q0);
  EXPECT_EQ(off[0].action, Vocabulary::bit(stop_));
}

TEST_F(AutomataTest, StepUsesInsertionOrderPriority) {
  FsaController c;
  const auto q0 = c.add_state();
  const auto q1 = c.add_state();
  const auto q2 = c.add_state();
  c.add_transition(q0, Guard::top(), Vocabulary::bit(stop_), q1);
  c.add_transition(q0, Guard::top(), Vocabulary::bit(go_), q2);
  EXPECT_EQ(c.step(q0, 0).to, q1);  // first-declared wins
  EXPECT_EQ(c.moves(q0, 0).size(), 2u);
}

TEST_F(AutomataTest, DescribeRendersGuardsAndActions) {
  FsaController c(Vocabulary::bit(stop_));
  const auto q0 = c.add_state("observe");
  const auto q1 = c.add_state("go");
  Guard g;
  g.must_true = Vocabulary::bit(green_);
  g.must_false = Vocabulary::bit(car_left_);
  c.add_transition(q0, g, Vocabulary::bit(go_), q1);
  const std::string text = c.describe(vocab_);
  EXPECT_NE(text.find("green_traffic_light"), std::string::npos);
  EXPECT_NE(text.find("!car_from_left"), std::string::npos);
  EXPECT_NE(text.find("go_straight"), std::string::npos);
}

// ------------------------------------------------------------ product ---

TEST_F(AutomataTest, ProductLabelsUnionModelAndAction) {
  // One-state model labeled {green}; controller immediately goes straight.
  TransitionSystem m;
  const auto p0 = m.add_state(Vocabulary::bit(green_));
  m.add_transition(p0, p0);

  FsaController c(Vocabulary::bit(stop_));
  const auto q0 = c.add_state();
  Guard needs_green;
  needs_green.must_true = Vocabulary::bit(green_);
  c.add_transition(q0, needs_green, Vocabulary::bit(go_), q0);

  const Kripke k = make_product(m, c);
  ASSERT_EQ(k.state_count(), 1u);
  EXPECT_EQ(k.labels[0], Vocabulary::bit(green_) | Vocabulary::bit(go_));
  ASSERT_EQ(k.initial.size(), 1u);
  EXPECT_EQ(k.successors[0], std::vector<int>{0});
}

TEST_F(AutomataTest, ProductEpsilonMapsToConfiguredLabel) {
  TransitionSystem m;
  const auto p0 = m.add_state(0);
  m.add_transition(p0, p0);
  FsaController c;  // default action ε
  c.add_state();

  ProductOptions opt;
  opt.epsilon_label = Vocabulary::bit(stop_);
  const Kripke k = make_product(m, c, opt);
  ASSERT_EQ(k.state_count(), 1u);
  EXPECT_EQ(k.labels[0], Vocabulary::bit(stop_));
  EXPECT_EQ(k.origin[0].action, 0u);  // the origin still records ε itself
}

TEST_F(AutomataTest, ProductInitialStatesCoverAllModelStates) {
  // Two disconnected model states — the product must verify from both, as
  // the paper checks all possible initial states.
  TransitionSystem m;
  const auto p0 = m.add_state(Vocabulary::bit(green_), "g");
  const auto p1 = m.add_state(0, "r");
  m.add_transition(p0, p0);
  m.add_transition(p1, p1);

  FsaController c(Vocabulary::bit(stop_));
  c.add_state();

  const Kripke k = make_product(m, c);
  EXPECT_EQ(k.initial.size(), 2u);
  std::set<int> models;
  for (int s : k.initial) models.insert(k.origin[static_cast<std::size_t>(s)].model_state);
  EXPECT_EQ(models, (std::set<int>{p0, p1}));
}

TEST_F(AutomataTest, ProductBranchesOverNondeterministicModel) {
  // Model: p0 -> {p1, p2}; controller: single wait state. Product from p0
  // must reach configurations over both successors.
  TransitionSystem m;
  const auto p0 = m.add_state(0, "p0");
  const auto p1 = m.add_state(Vocabulary::bit(green_), "p1");
  const auto p2 = m.add_state(Vocabulary::bit(car_left_), "p2");
  m.add_transition(p0, p1);
  m.add_transition(p0, p2);
  m.add_transition(p1, p0);
  m.add_transition(p2, p0);

  FsaController c(Vocabulary::bit(stop_));
  c.add_state();
  const Kripke k = make_product(m, c);
  EXPECT_EQ(k.state_count(), 3u);
  EXPECT_EQ(k.transition_count(), 4u);
}

TEST_F(AutomataTest, ProductStuttersDeadlockStates) {
  TransitionSystem m;
  m.add_state(0);  // deadlocked model state
  FsaController c;
  c.add_state();
  const Kripke k = make_product(m, c);
  ASSERT_EQ(k.state_count(), 1u);
  EXPECT_EQ(k.successors[0], std::vector<int>{0});  // stutter self-loop

  ProductOptions opt;
  opt.stutter_deadlocks = false;
  const Kripke k2 = make_product(m, c, opt);
  EXPECT_TRUE(k2.successors[0].empty());
}

TEST_F(AutomataTest, DescribeStateUsesPaperNotation) {
  TransitionSystem m;
  const auto p0 = m.add_state(Vocabulary::bit(green_), "p0");
  m.add_transition(p0, p0);
  FsaController c(Vocabulary::bit(stop_));
  c.add_state("q0");
  const Kripke k = make_product(m, c);
  const std::string s = k.describe_state(0, m, c, vocab_);
  EXPECT_NE(s.find("p0"), std::string::npos);
  EXPECT_NE(s.find("q0"), std::string::npos);
  EXPECT_NE(s.find("stop"), std::string::npos);
}

}  // namespace
}  // namespace dpoaf::automata
