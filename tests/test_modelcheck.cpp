#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "automata/product.hpp"
#include "logic/lasso_eval.hpp"
#include "logic/parser.hpp"
#include "modelcheck/buchi.hpp"
#include "modelcheck/checker.hpp"
#include "util/rng.hpp"

namespace dpoaf::modelcheck {
namespace {

using automata::Kripke;
using logic::LassoWord;
using logic::Ltl;
using logic::Symbol;
using logic::Vocabulary;
using namespace logic::ltl;

// Build a bare Kripke structure directly (bypassing the product) so the
// checker can be exercised on arbitrary graphs.
Kripke make_kripke(std::vector<Symbol> labels,
                   std::vector<std::vector<int>> succ,
                   std::vector<int> initial) {
  Kripke k;
  k.labels = std::move(labels);
  k.successors = std::move(succ);
  k.initial = std::move(initial);
  k.origin.resize(k.labels.size());
  return k;
}

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest() : vocab_(logic::make_driving_vocabulary()) {
    a_ = *vocab_.find("green_traffic_light");
    b_ = *vocab_.find("car_from_left");
    c_ = *vocab_.find("stop");
    A_ = Vocabulary::bit(a_);
    B_ = Vocabulary::bit(b_);
    C_ = Vocabulary::bit(c_);
  }
  Ltl parse(const char* s) { return logic::parse_ltl(s, vocab_); }

  Vocabulary vocab_;
  int a_ = 0, b_ = 0, c_ = 0;
  Symbol A_ = 0, B_ = 0, C_ = 0;
};

// ------------------------------------------------------------- Büchi ---

TEST_F(CheckerTest, BuchiForAlwaysPropIsSmall) {
  BuchiStats stats;
  const auto ba = ltl_to_buchi(parse("G green_traffic_light"), stats);
  EXPECT_GE(ba.state_count(), 1u);
  EXPECT_LE(stats.gba_states, 4u);
  EXPECT_FALSE(ba.initial.empty());
}

TEST_F(CheckerTest, BuchiAcceptanceOnSimpleWords) {
  // Accepting runs of B_(F a) must exist exactly for words containing a.
  // We test through the checker: K generating only the word w satisfies
  // F a iff w contains a.
  const Ltl f = parse("F green_traffic_light");
  // Single self-loop word: {} repeated
  auto k_empty = make_kripke({0}, {{0}}, {0});
  EXPECT_FALSE(check(k_empty, f).holds);
  auto k_green = make_kripke({A_}, {{0}}, {0});
  EXPECT_TRUE(check(k_green, f).holds);
}

// ------------------------------------------------------- Büchi cache ---

TEST_F(CheckerTest, CachedTranslationSharesOneAutomatonPerFormula) {
  clear_buchi_cache();
  const Ltl f = parse("G (green_traffic_light -> F stop)");
  const auto first = ltl_to_buchi_cached(f);
  const auto second = ltl_to_buchi_cached(f);
  EXPECT_EQ(first.get(), second.get()) << "repeat query must not retranslate";
  // Hash-consing makes an independently parsed structurally-equal formula
  // the same node, so it hits the same entry.
  const auto third =
      ltl_to_buchi_cached(parse("G (green_traffic_light -> F stop)"));
  EXPECT_EQ(first.get(), third.get());
  const auto stats = buchi_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  // The cached automaton is the one a fresh translation would build.
  BuchiStats fresh_stats;
  const auto fresh = ltl_to_buchi(f, fresh_stats);
  EXPECT_EQ(first->state_count(), fresh.state_count());
  EXPECT_EQ(first->initial, fresh.initial);
}

TEST_F(CheckerTest, DisabledBuchiCacheBypassesEntirely) {
  clear_buchi_cache();
  set_buchi_cache_enabled(false);
  const auto a = ltl_to_buchi_cached(parse("F stop"));
  const auto b = ltl_to_buchi_cached(parse("F stop"));
  set_buchi_cache_enabled(true);
  EXPECT_TRUE(buchi_cache_enabled());
  EXPECT_NE(a.get(), b.get());
  const auto stats = buchi_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
}

TEST_F(CheckerTest, CheckVerdictsIdenticalWithCacheOnAndOff) {
  auto k = make_kripke({A_, 0}, {{1}, {1}}, {0});
  const std::vector<const char*> formulas{
      "G green_traffic_light", "F stop", "X !green_traffic_light",
      "stop U green_traffic_light", "G F green_traffic_light"};
  for (const char* s : formulas) {
    clear_buchi_cache();
    const auto on1 = check(k, parse(s));
    const auto on2 = check(k, parse(s));  // second query replays the cache
    set_buchi_cache_enabled(false);
    const auto off = check(k, parse(s));
    set_buchi_cache_enabled(true);
    EXPECT_EQ(on1.holds, off.holds) << s;
    EXPECT_EQ(on2.holds, off.holds) << s;
    EXPECT_EQ(on1.buchi_states, off.buchi_states) << s;
    EXPECT_EQ(on1.counterexample.prefix, off.counterexample.prefix) << s;
    EXPECT_EQ(on1.counterexample.cycle, off.counterexample.cycle) << s;
    EXPECT_EQ(on2.counterexample.prefix, on1.counterexample.prefix) << s;
    EXPECT_EQ(on2.counterexample.cycle, on1.counterexample.cycle) << s;
  }
  EXPECT_GT(buchi_cache_stats().hits, 0u);
}

// ------------------------------------------------------------ checker ---

TEST_F(CheckerTest, AlwaysHoldsOnInvariantGraph) {
  auto k = make_kripke({A_, A_ | C_}, {{1}, {0}}, {0});
  EXPECT_TRUE(check(k, parse("G green_traffic_light")).holds);
  EXPECT_FALSE(check(k, parse("G stop")).holds);
}

TEST_F(CheckerTest, CounterexampleIsValidLasso) {
  auto k = make_kripke({A_, 0}, {{1}, {1}}, {0});
  const auto res = check(k, parse("G green_traffic_light"));
  ASSERT_FALSE(res.holds);
  ASSERT_FALSE(res.counterexample.cycle.empty());
  LassoWord w;
  for (int s : res.counterexample.prefix)
    w.prefix.push_back(k.labels[static_cast<std::size_t>(s)]);
  for (int s : res.counterexample.cycle)
    w.cycle.push_back(k.labels[static_cast<std::size_t>(s)]);
  EXPECT_FALSE(evaluate_lasso(parse("G green_traffic_light"), w));
}

TEST_F(CheckerTest, EventuallyRequiresAllPaths) {
  // Branching: initial can go to a-branch or to empty-branch forever.
  auto k = make_kripke({0, A_, 0}, {{1, 2}, {1}, {2}}, {0});
  EXPECT_FALSE(check(k, parse("F green_traffic_light")).holds);
  // Remove the empty branch: now F a holds on all paths.
  auto k2 = make_kripke({0, A_}, {{1}, {1}}, {0});
  EXPECT_TRUE(check(k2, parse("F green_traffic_light")).holds);
}

TEST_F(CheckerTest, UntilSemantics) {
  // c holds until a, on the single path c,c,a^ω.
  auto k = make_kripke({C_, C_, A_}, {{1}, {2}, {2}}, {0});
  EXPECT_TRUE(check(k, parse("stop U green_traffic_light")).holds);
  // Break the chain: middle state lacks c.
  auto k2 = make_kripke({C_, 0, A_}, {{1}, {2}, {2}}, {0});
  EXPECT_FALSE(check(k2, parse("stop U green_traffic_light")).holds);
}

TEST_F(CheckerTest, NextSemantics) {
  auto k = make_kripke({C_, A_, 0}, {{1}, {2}, {2}}, {0});
  EXPECT_TRUE(check(k, parse("X green_traffic_light")).holds);
  EXPECT_FALSE(check(k, parse("X stop")).holds);
}

TEST_F(CheckerTest, InfinitelyOftenOnCycle) {
  // Cycle alternating a and empty: GF a holds, GF c fails.
  auto k = make_kripke({A_, 0}, {{1}, {0}}, {0});
  EXPECT_TRUE(check(k, parse("G F green_traffic_light")).holds);
  EXPECT_FALSE(check(k, parse("G F stop")).holds);
  EXPECT_FALSE(check(k, parse("F G green_traffic_light")).holds);
}

TEST_F(CheckerTest, MultipleInitialStatesAllChecked) {
  // Initial state 1 violates G a even though initial state 0 satisfies it.
  auto k = make_kripke({A_, 0}, {{0}, {1}}, {0, 1});
  EXPECT_FALSE(check(k, parse("G green_traffic_light")).holds);
}

TEST_F(CheckerTest, FairnessAssumptionDischargesEventuality) {
  // Model may loop on "car from left" forever; under the fairness
  // assumption GF !car_from_left the spec F !car_from_left holds.
  auto k = make_kripke({B_, 0}, {{0, 1}, {1}}, {0});
  const Ltl spec = parse("F !car_from_left");
  EXPECT_FALSE(check(k, spec).holds);
  EXPECT_TRUE(
      check_under_fairness(k, spec, {parse("G F !car_from_left")}).holds);
}

TEST_F(CheckerTest, VerifyAllCountsAndNames) {
  auto k = make_kripke({A_ | C_}, {{0}}, {0});
  std::vector<NamedSpec> specs{
      {"holds_1", parse("G green_traffic_light")},
      {"fails", parse("G !stop")},
      {"holds_2", parse("F stop")},
  };
  const auto report = verify_all(k, specs);
  EXPECT_EQ(report.total(), 3u);
  EXPECT_EQ(report.satisfied(), 2u);
  EXPECT_NEAR(report.fraction(), 2.0 / 3.0, 1e-12);
  ASSERT_EQ(report.violated().size(), 1u);
  EXPECT_EQ(report.violated()[0], "fails");
}

TEST_F(CheckerTest, TautologyAndContradiction) {
  auto k = make_kripke({0}, {{0}}, {0});
  EXPECT_TRUE(check(k, parse("G (stop | !stop)")).holds);
  EXPECT_FALSE(check(k, parse("F (stop & !stop)")).holds);
}

// Property-based validation against the independent lasso-word oracle:
//  * if the checker reports a violation, the returned lasso must falsify
//    the specification;
//  * if the checker reports the spec holds, random lassos sampled from the
//    Kripke structure must all satisfy it.
class CheckerPropertyTest : public CheckerTest,
                            public ::testing::WithParamInterface<int> {};

TEST_P(CheckerPropertyTest, AgreesWithLassoOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);

  // Random Kripke structure over 3 propositions.
  const int n = 2 + static_cast<int>(rng.below(4));
  std::vector<Symbol> labels;
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    Symbol lab = 0;
    if (rng.chance(0.5)) lab |= A_;
    if (rng.chance(0.5)) lab |= B_;
    if (rng.chance(0.5)) lab |= C_;
    labels.push_back(lab);
    // ensure at least one successor (no deadlocks)
    succ[static_cast<std::size_t>(i)].push_back(
        static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
    if (rng.chance(0.6))
      succ[static_cast<std::size_t>(i)].push_back(
          static_cast<int>(rng.below(static_cast<std::uint64_t>(n))));
  }
  auto k = make_kripke(labels, succ, {0});

  // Random formula.
  const std::vector<Ltl> atoms{prop(a_), prop(b_), prop(c_)};
  std::function<Ltl(int)> gen = [&](int depth) -> Ltl {
    if (depth == 0 || rng.chance(0.3)) return atoms[rng.below(atoms.size())];
    switch (rng.below(8)) {
      case 0: return lnot(gen(depth - 1));
      case 1: return land(gen(depth - 1), gen(depth - 1));
      case 2: return lor(gen(depth - 1), gen(depth - 1));
      case 3: return implies(gen(depth - 1), gen(depth - 1));
      case 4: return next(gen(depth - 1));
      case 5: return eventually(gen(depth - 1));
      case 6: return always(gen(depth - 1));
      default: return until(gen(depth - 1), gen(depth - 1));
    }
  };
  const Ltl f = gen(3);

  const auto res = check(k, f);
  if (!res.holds) {
    ASSERT_FALSE(res.counterexample.cycle.empty());
    LassoWord w;
    for (int s : res.counterexample.prefix)
      w.prefix.push_back(k.labels[static_cast<std::size_t>(s)]);
    for (int s : res.counterexample.cycle)
      w.cycle.push_back(k.labels[static_cast<std::size_t>(s)]);
    EXPECT_FALSE(evaluate_lasso(f, w))
        << "counterexample does not falsify " << to_string(f, vocab_);
    // The lasso must also be a real path of the Kripke structure.
    auto edge_ok = [&](int u, int v) {
      const auto& out = k.successors[static_cast<std::size_t>(u)];
      return std::find(out.begin(), out.end(), v) != out.end();
    };
    std::vector<int> walk = res.counterexample.prefix;
    walk.insert(walk.end(), res.counterexample.cycle.begin(),
                res.counterexample.cycle.end());
    for (std::size_t i = 0; i + 1 < walk.size(); ++i)
      ASSERT_TRUE(edge_ok(walk[i], walk[i + 1]));
    ASSERT_TRUE(edge_ok(walk.back(), res.counterexample.cycle.front()));
  } else {
    // Sample random lassos from K; all must satisfy f.
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<int> path{0};
      std::vector<Symbol> word{k.labels[0]};
      int cycle_start = -1;
      std::vector<int> seen_at(static_cast<std::size_t>(n), -1);
      seen_at[0] = 0;
      while (cycle_start < 0) {
        const auto& out = k.successors[static_cast<std::size_t>(path.back())];
        const int nxt = out[rng.below(out.size())];
        if (seen_at[static_cast<std::size_t>(nxt)] >= 0 && rng.chance(0.5)) {
          cycle_start = seen_at[static_cast<std::size_t>(nxt)];
        } else {
          seen_at[static_cast<std::size_t>(nxt)] =
              static_cast<int>(path.size());
          path.push_back(nxt);
          word.push_back(k.labels[static_cast<std::size_t>(nxt)]);
        }
      }
      LassoWord w;
      w.prefix.assign(word.begin(), word.begin() + cycle_start);
      w.cycle.assign(word.begin() + cycle_start, word.end());
      EXPECT_TRUE(evaluate_lasso(f, w))
          << to_string(f, vocab_) << " claimed to hold but a sampled lasso "
          << "falsifies it";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedSweep, CheckerPropertyTest,
                         ::testing::Range(0, 120));

}  // namespace
}  // namespace dpoaf::modelcheck
