#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/cache.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace dpoaf {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // every residue hit
}

TEST(Rng, BetweenInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceFrequencyRoughlyMatchesP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  const double freq = static_cast<double>(hits) / n;
  EXPECT_NEAR(freq, 0.25, 0.02);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.05);
}

TEST(Rng, WeightedNeverPicksZeroWeight) {
  Rng rng(17);
  const std::vector<double> w{0.0, 1.0, 0.0, 3.0};
  for (int i = 0; i < 2000; ++i) {
    const std::size_t idx = rng.weighted(w);
    EXPECT_TRUE(idx == 1 || idx == 3);
  }
}

TEST(Rng, WeightedMatchesProportions) {
  Rng rng(19);
  const std::vector<double> w{1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted(w)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto copy = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, copy);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(RunningStats, MatchesDirectComputation) {
  RunningStats s;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.75);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_NEAR(s.variance(), 9.583333333, 1e-6);
}

TEST(RunningStats, EmptyAndSingleAreSafe) {
  RunningStats s;
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.5), 1.5);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys{2, 4, 6, 8};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, SpearmanHandlesMonotoneNonlinear) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  std::vector<double> ys{1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Stats, SpearmanTiesGetAverageRanks) {
  std::vector<double> xs{1, 1, 2, 2};
  std::vector<double> ys{1, 1, 2, 2};
  EXPECT_NEAR(spearman(xs, ys), 1.0, 1e-12);
}

TEST(Strings, SplitAndJoinRoundTrip) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strings, SplitWsDropsEmpty) {
  const auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, TrimAndLower) {
  EXPECT_EQ(trim("  Hello \n"), "Hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(to_lower("AbC"), "abc");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
}

TEST(Strings, EditDistanceKnownValues) {
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("same", "same"), 0u);
}

TEST(Strings, NormalizedEditDistanceBounds) {
  EXPECT_DOUBLE_EQ(normalized_edit_distance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(normalized_edit_distance("abc", "xyz"), 1.0);
  const double d = normalized_edit_distance("stop sign", "stop signs");
  EXPECT_GT(d, 0.0);
  EXPECT_LT(d, 0.2);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t("t");
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), ContractViolation);
}

TEST(TextTable, CsvOutput) {
  TextTable t("t");
  t.set_header({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(ShardedCache, FindMissesThenHitsAfterInsert) {
  util::ShardedCache<std::string, int> cache;
  EXPECT_FALSE(cache.find("a").has_value());
  cache.insert("a", 7);
  const auto hit = cache.find("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 7);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 0.5);
}

TEST(ShardedCache, DuplicateInsertKeepsFirstValue) {
  util::ShardedCache<int, int> cache;
  cache.insert(1, 10);
  cache.insert(1, 20);
  EXPECT_EQ(*cache.find(1), 10);
  EXPECT_EQ(cache.stats().inserts, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ShardedCache, GetOrComputeComputesOnlyOnMiss) {
  util::ShardedCache<int, int> cache;
  int computes = 0;
  const auto fn = [&] { ++computes; return 42; };
  EXPECT_EQ(cache.get_or_compute(5, fn), 42);
  EXPECT_EQ(cache.get_or_compute(5, fn), 42);
  EXPECT_EQ(computes, 1);
}

TEST(ShardedCache, SizeNeverExceedsCapacityBound) {
  util::ShardedCache<int, int> cache(/*capacity_per_shard=*/4, /*shards=*/4);
  EXPECT_EQ(cache.capacity(), 16u);
  for (int i = 0; i < 1000; ++i) cache.insert(i, i * i);
  EXPECT_LE(cache.size(), cache.capacity());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.inserts, 1000u);
  EXPECT_GE(stats.evictions, 1000u - cache.capacity());
  // Evicted or not, whatever find() returns must be the inserted value.
  for (int i = 0; i < 1000; ++i) {
    if (const auto v = cache.find(i)) {
      EXPECT_EQ(*v, i * i);
    }
  }
}

TEST(ShardedCache, EvictionIsOldestFirstWithinAShard) {
  util::ShardedCache<int, int> cache(/*capacity_per_shard=*/2, /*shards=*/1);
  cache.insert(1, 1);
  cache.insert(2, 2);
  cache.insert(3, 3);  // shard full: evicts key 1
  EXPECT_FALSE(cache.find(1).has_value());
  EXPECT_TRUE(cache.find(2).has_value());
  EXPECT_TRUE(cache.find(3).has_value());
}

TEST(ShardedCache, ClearEmptiesAllShards) {
  util::ShardedCache<int, int> cache;
  for (int i = 0; i < 100; ++i) cache.insert(i, i);
  EXPECT_EQ(cache.size(), 100u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find(0).has_value());
}

TEST(ShardedCache, ConcurrentGetOrComputeIsSingleFlight) {
  util::ShardedCache<int, int> cache(/*capacity_per_shard=*/1024,
                                     /*shards=*/8);
  constexpr int kThreads = 8;
  constexpr int kKeys = 500;
  std::atomic<int> computes{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &computes] {
      // All threads race over the same key range; single-flight means each
      // key is computed exactly once, and everyone reads key * 3.
      for (int i = 0; i < kKeys; ++i) {
        const int v = cache.get_or_compute(i, [&computes, i] {
          computes.fetch_add(1, std::memory_order_relaxed);
          return i * 3;
        });
        ASSERT_EQ(v, i * 3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(computes.load(), kKeys);
  EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKeys));
  // Deterministic counters regardless of interleaving: one miss per unique
  // key, everything else a hit — what keeps bench stats byte-identical
  // across thread counts.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.inserts, static_cast<std::uint64_t>(kKeys));
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1) * kKeys);
}

TEST(ShardedCache, GetOrComputeReleasesWaitersOnThrow) {
  util::ShardedCache<int, int> cache;
  EXPECT_THROW(cache.get_or_compute(
                   1, []() -> int { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The failed flight must not wedge the key: the next caller recomputes.
  EXPECT_EQ(cache.get_or_compute(1, [] { return 9; }), 9);
}

TEST(ShardedCache, ConcurrentMixedOpsUnderEvictionPressureKeepCountersExact) {
  // Tiny capacity over a wide key range: evictions fire constantly, so
  // keys get recomputed after falling out. Run under TSan in CI. Invariants
  // that must survive any interleaving:
  //   - every observed value is f(key) (no lost or torn updates),
  //   - hits + misses == lookups issued,
  //   - inserts == computes (each successful compute lands exactly once;
  //     single-flight means no duplicate insert can swallow one),
  //   - evictions == inserts - size() (every insert grows or displaces),
  //   - size() <= capacity().
  util::ShardedCache<int, long> cache(/*capacity_per_shard=*/2, /*shards=*/2);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  constexpr int kKeyRange = 64;
  const auto value_of = [](int key) { return 7L * key + 1L; };
  std::atomic<std::uint64_t> computes{0};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<std::uint64_t>(1000 + t));
      std::uint64_t my_lookups = 0;
      for (int i = 0; i < kIters; ++i) {
        const int key = static_cast<int>(rng.below(kKeyRange));
        if (rng.chance(0.3)) {
          ++my_lookups;
          if (const auto v = cache.find(key)) {
            ASSERT_EQ(*v, value_of(key));
          }
        } else {
          ++my_lookups;
          const long v = cache.get_or_compute(key, [&computes, &value_of, key] {
            computes.fetch_add(1, std::memory_order_relaxed);
            return value_of(key);
          });
          ASSERT_EQ(v, value_of(key));
        }
      }
      lookups.fetch_add(my_lookups, std::memory_order_relaxed);
    });
  }
  for (auto& th : threads) th.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, lookups.load());
  EXPECT_EQ(stats.inserts, computes.load());
  EXPECT_EQ(stats.evictions, stats.inserts - cache.size());
  EXPECT_LE(cache.size(), cache.capacity());
  EXPECT_GT(stats.evictions, 0u);  // the pressure actually materialized
  // Whatever remains cached is still correct.
  for (int key = 0; key < kKeyRange; ++key) {
    if (const auto v = cache.find(key)) {
      EXPECT_EQ(*v, value_of(key));
    }
  }
}

TEST(CacheStats, SummaryAndAccumulate) {
  util::CacheStats a{8, 2, 2, 1};
  util::CacheStats b{2, 0, 0, 0};
  a += b;
  EXPECT_EQ(a.hits, 10u);
  EXPECT_DOUBLE_EQ(a.hit_rate(), 10.0 / 12.0);
  const std::string s = a.summary();
  EXPECT_NE(s.find("hits=10"), std::string::npos);
  EXPECT_NE(s.find("misses=2"), std::string::npos);
  EXPECT_EQ(util::CacheStats{}.hit_rate(), 0.0);
}

TEST(Check, MacrosThrowWithContext) {
  try {
    DPOAF_CHECK_MSG(false, "custom context");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("custom context"), std::string::npos);
  }
}

}  // namespace
}  // namespace dpoaf
