#include <gtest/gtest.h>

#include "util/stats.hpp"
#include "vision/calibration.hpp"
#include "vision/detector.hpp"

namespace dpoaf::vision {
namespace {

TEST(Detector, ProducesRequestedCounts) {
  SyntheticDetector det;
  Rng rng(1);
  const auto samples = det.detect(Domain::Simulation, "car", 100, rng);
  EXPECT_EQ(samples.size(), 100u);
  for (const auto& s : samples) {
    EXPECT_GT(s.confidence, 0.0);
    EXPECT_LT(s.confidence, 1.0);
    EXPECT_EQ(s.object_class, "car");
  }
}

TEST(Detector, DetectAllCoversEveryClass) {
  SyntheticDetector det;
  Rng rng(2);
  const auto samples = det.detect_all(Domain::RealWorld, 10, rng);
  EXPECT_EQ(samples.size(), driving_object_classes().size() * 10u);
}

TEST(Detector, ConfidenceIsInformative) {
  // Higher-confidence detections must be correct more often: split at the
  // median and compare accuracies.
  SyntheticDetector det;
  Rng rng(3);
  const auto samples = det.detect_all(Domain::Simulation, 2000, rng);
  double lo_acc = 0, hi_acc = 0;
  int lo_n = 0, hi_n = 0;
  for (const auto& s : samples) {
    if (s.confidence < 0.5) {
      lo_acc += s.correct;
      ++lo_n;
    } else {
      hi_acc += s.correct;
      ++hi_n;
    }
  }
  ASSERT_GT(lo_n, 100);
  ASSERT_GT(hi_n, 100);
  EXPECT_GT(hi_acc / hi_n, lo_acc / lo_n + 0.2);
}

TEST(Detector, RealDomainIsHarder) {
  SyntheticDetector det;
  Rng r1(4), r2(4);
  const auto sim = det.detect_all(Domain::Simulation, 4000, r1);
  const auto real = det.detect_all(Domain::RealWorld, 4000, r2);
  auto acc = [](const std::vector<DetectionSample>& xs) {
    double a = 0;
    for (const auto& s : xs) a += s.correct;
    return a / static_cast<double>(xs.size());
  };
  EXPECT_GT(acc(sim), acc(real));  // more clutter in the real domain
}

TEST(Calibration, BinsPartitionSamples) {
  SyntheticDetector det;
  Rng rng(5);
  const auto samples = det.detect_all(Domain::Simulation, 500, rng);
  const auto curve = calibration_curve(samples, 10);
  ASSERT_EQ(curve.size(), 10u);
  std::size_t total = 0;
  for (const auto& bin : curve) total += static_cast<std::size_t>(bin.count);
  EXPECT_EQ(total, samples.size());
  for (const auto& bin : curve) {
    if (bin.count == 0) continue;
    EXPECT_GE(bin.mean_confidence, bin.conf_lo - 1e-9);
    EXPECT_LE(bin.mean_confidence, bin.conf_hi + 1e-9);
    EXPECT_GE(bin.accuracy, 0.0);
    EXPECT_LE(bin.accuracy, 1.0);
  }
}

TEST(Calibration, HandComputedBins) {
  std::vector<DetectionSample> samples{
      {"car", 0.05, false}, {"car", 0.15, true},  // bins 0 and 1
      {"car", 0.95, true},  {"car", 0.95, false},
  };
  const auto curve = calibration_curve(samples, 10);
  EXPECT_EQ(curve[0].count, 1);
  EXPECT_EQ(curve[0].accuracy, 0.0);
  EXPECT_EQ(curve[1].accuracy, 1.0);
  EXPECT_EQ(curve[9].count, 2);
  EXPECT_EQ(curve[9].accuracy, 0.5);
}

TEST(Calibration, EceZeroForPerfectCalibration) {
  std::vector<DetectionSample> samples;
  // Accuracy exactly equal to confidence in each bin.
  for (int i = 0; i < 100; ++i)
    samples.push_back({"car", 0.75, i < 75});
  const auto curve = calibration_curve(samples, 10);
  EXPECT_NEAR(expected_calibration_error(curve), 0.0, 1e-9);
}

TEST(Calibration, CurveIsMonotoneInConfidence) {
  SyntheticDetector det;
  Rng rng(6);
  const auto samples = det.detect_all(Domain::Simulation, 5000, rng);
  const auto curve = calibration_curve(samples, 10);
  std::vector<double> confs, accs;
  for (const auto& bin : curve) {
    if (bin.count < 30) continue;
    confs.push_back(bin.mean_confidence);
    accs.push_back(bin.accuracy);
  }
  ASSERT_GE(confs.size(), 4u);
  EXPECT_GT(spearman(confs, accs), 0.8);
}

// Figure 12's claim: the detector's confidence→accuracy mapping is
// approximately equal in simulation and reality.
TEST(Calibration, SimAndRealCurvesApproximatelyCoincide) {
  SyntheticDetector det;
  Rng r1(7), r2(8);
  const auto sim = det.detect_all(Domain::Simulation, 8000, r1);
  const auto real = det.detect_all(Domain::RealWorld, 8000, r2);
  const auto curve_sim = calibration_curve(sim, 10);
  const auto curve_real = calibration_curve(real, 10);
  EXPECT_LT(max_accuracy_gap(curve_sim, curve_real), 0.12);
  EXPECT_LT(mean_accuracy_gap(curve_sim, curve_real), 0.06);
}

TEST(Calibration, MiscalibrationWidensTheGap) {
  DetectorConfig distorted;
  distorted.real_miscalibration = 1.5;  // badly miscalibrated real domain
  SyntheticDetector bad(distorted);
  SyntheticDetector good;

  Rng r1(9), r2(10), r3(9), r4(10);
  const auto good_gap = mean_accuracy_gap(
      calibration_curve(good.detect_all(Domain::Simulation, 6000, r1), 10),
      calibration_curve(good.detect_all(Domain::RealWorld, 6000, r2), 10));
  const auto bad_gap = mean_accuracy_gap(
      calibration_curve(bad.detect_all(Domain::Simulation, 6000, r3), 10),
      calibration_curve(bad.detect_all(Domain::RealWorld, 6000, r4), 10));
  EXPECT_GT(bad_gap, good_gap * 1.5);
}

TEST(Calibration, GapHelpersValidateSizes) {
  const auto a = calibration_curve({}, 5);
  const auto b = calibration_curve({}, 10);
  EXPECT_THROW((void)max_accuracy_gap(a, b), ContractViolation);
  EXPECT_EQ(expected_calibration_error(a), 0.0);
}

}  // namespace
}  // namespace dpoaf::vision
