// Block-paged KV storage (src/nn/kv_cache): pool refcount/recycle
// invariants, prefix-tree anchoring/matching/eviction, and the decode
// guarantees the serve layer leans on — logits bitwise-invariant to the
// KV block size, and adopted prefixes + copy-on-write reproducing a
// private prefill exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "nn/decoder.hpp"
#include "nn/gpt.hpp"
#include "nn/kv_cache.hpp"
#include "util/check.hpp"

namespace dpoaf {
namespace {

nn::GptConfig tiny_config(std::int64_t max_seq = 32) {
  nn::GptConfig cfg;
  cfg.vocab_size = 40;
  cfg.d_model = 12;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 24;
  cfg.max_seq = max_seq;
  return cfg;
}

nn::TinyGpt tiny_model(std::uint64_t seed = 5) {
  Rng rng(seed);
  return nn::TinyGpt(tiny_config(), rng);
}

std::vector<int> prompt_of(std::initializer_list<int> ids) { return ids; }

TEST(KvBlockPool, AllocateRefcountRecycle) {
  nn::KvBlockPool pool(1, 4, 2, 3);
  EXPECT_EQ(pool.total_blocks(), 3);
  EXPECT_EQ(pool.free_blocks(), 3);
  const std::int32_t a = pool.allocate();
  const std::int32_t b = pool.allocate();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.free_blocks(), 1);
  EXPECT_EQ(pool.refcount(a), 1);
  pool.incref(a);
  EXPECT_EQ(pool.refcount(a), 2);
  pool.decref(a);
  EXPECT_EQ(pool.refcount(a), 1);
  pool.decref(a);
  EXPECT_EQ(pool.refcount(a), 0);
  EXPECT_EQ(pool.free_blocks(), 2);
  // LIFO recycling: the block just freed is handed out next.
  EXPECT_EQ(pool.allocate(), a);
  const std::int32_t c = pool.allocate();
  EXPECT_GE(c, 0);
  EXPECT_EQ(pool.free_blocks(), 0);
  EXPECT_THROW(static_cast<void>(pool.allocate()), ContractViolation);
  // Refcounting a free block is a logic error, not a no-op.
  pool.decref(b);
  EXPECT_THROW(pool.decref(b), ContractViolation);
  EXPECT_THROW(pool.incref(b), ContractViolation);
}

TEST(KvBlockPool, BlocksForRoundsUp) {
  nn::KvBlockPool pool(1, 1, 4, 1);
  EXPECT_EQ(pool.blocks_for(0), 0);
  EXPECT_EQ(pool.blocks_for(1), 1);
  EXPECT_EQ(pool.blocks_for(4), 1);
  EXPECT_EQ(pool.blocks_for(5), 2);
  EXPECT_EQ(pool.blocks_for(8), 2);
}

TEST(KvBlockPool, CopyRowsCopiesPrefixAcrossLayers) {
  const std::int64_t layers = 2, d = 3, bt = 4;
  nn::KvBlockPool pool(layers, d, bt, 2);
  const std::int32_t src = pool.allocate();
  const std::int32_t dst = pool.allocate();
  for (std::int64_t l = 0; l < layers; ++l)
    for (std::int64_t i = 0; i < bt * d; ++i) {
      pool.k(l, src)[i] = static_cast<float>(100 * l + i);
      pool.v(l, src)[i] = static_cast<float>(-100 * l - i);
      pool.k(l, dst)[i] = -1.0f;
      pool.v(l, dst)[i] = -1.0f;
    }
  pool.copy_rows(src, dst, 2);  // rows [0, 2) only
  for (std::int64_t l = 0; l < layers; ++l)
    for (std::int64_t i = 0; i < bt * d; ++i) {
      if (i < 2 * d) {
        EXPECT_EQ(pool.k(l, dst)[i], pool.k(l, src)[i]);
        EXPECT_EQ(pool.v(l, dst)[i], pool.v(l, src)[i]);
      } else {
        EXPECT_EQ(pool.k(l, dst)[i], -1.0f);  // rows past the copy untouched
        EXPECT_EQ(pool.v(l, dst)[i], -1.0f);
      }
    }
}

TEST(PrefixTree, MatchMissesOnEmptyTreeAndForeignPrompt) {
  nn::KvBlockPool pool(1, 2, 2, 4);
  nn::PrefixTree tree(&pool);
  EXPECT_EQ(tree.match(prompt_of({1, 2, 3}), 3).tokens, 0);
  const std::int32_t b0 = pool.allocate();
  tree.insert(prompt_of({7, 8}).data(), 2, {b0}, -1);
  pool.decref(b0);  // tree holds its own reference now
  EXPECT_EQ(tree.match(prompt_of({1, 2}), 2).tokens, 0);
  EXPECT_EQ(tree.misses(), 2u);
  EXPECT_EQ(tree.anchors(), 1);
}

TEST(PrefixTree, InsertAnchorsBoundariesAndMatchesDeepestPrefix) {
  nn::KvBlockPool pool(1, 2, 2, 8);  // two tokens per block
  nn::PrefixTree tree(&pool);
  const std::vector<std::int32_t> chain = {pool.allocate(), pool.allocate()};
  const auto toks = prompt_of({4, 5, 6, 7});
  tree.insert(toks.data(), 4, chain, -1);
  EXPECT_EQ(tree.anchors(), 2);  // depths 2 and 4
  EXPECT_EQ(pool.refcount(chain[0]), 3);  // ours + both anchors
  EXPECT_EQ(pool.refcount(chain[1]), 2);  // ours + depth-4 anchor

  // Full match at a boundary.
  auto m = tree.match(prompt_of({4, 5, 6, 7, 9}), 4);
  EXPECT_EQ(m.tokens, 4);
  ASSERT_EQ(m.blocks.size(), 2u);
  EXPECT_EQ(m.blocks[0], chain[0]);
  EXPECT_EQ(m.blocks[1], chain[1]);
  for (const std::int32_t b : m.blocks) pool.decref(b);

  // Diverging after two tokens adopts the depth-2 anchor only.
  m = tree.match(prompt_of({4, 5, 9, 9}), 4);
  EXPECT_EQ(m.tokens, 2);
  ASSERT_EQ(m.blocks.size(), 1u);
  EXPECT_EQ(m.blocks[0], chain[0]);
  for (const std::int32_t b : m.blocks) pool.decref(b);

  // A limit that lands mid-block adopts a deeper anchor's leading blocks:
  // limit 3 rows live in chain[0..1] of the depth-4 anchor.
  m = tree.match(prompt_of({4, 5, 6}), 3);
  EXPECT_EQ(m.tokens, 3);
  ASSERT_EQ(m.blocks.size(), 2u);
  for (const std::int32_t b : m.blocks) pool.decref(b);

  EXPECT_EQ(tree.hits(), 3u);
  EXPECT_EQ(tree.tokens_reused(), 4u + 2u + 3u);
}

TEST(PrefixTree, PartialTailAnchorIsOwnedAndMatchable) {
  nn::KvBlockPool pool(1, 2, 4, 4);
  nn::PrefixTree tree(&pool);
  const std::int32_t full = pool.allocate();
  const std::int32_t tail = pool.allocate();  // ownership moves to the tree
  const auto toks = prompt_of({1, 2, 3, 4, 5, 6});
  EXPECT_FALSE(tree.has_anchor(toks.data(), 6));
  tree.insert(toks.data(), 6, {full}, tail);
  EXPECT_TRUE(tree.has_anchor(toks.data(), 6));
  EXPECT_EQ(tree.anchors(), 2);           // depth 4 (boundary) + depth 6
  EXPECT_EQ(pool.refcount(tail), 1);      // transferred, not increffed
  auto m = tree.match(toks, 6);
  EXPECT_EQ(m.tokens, 6);
  ASSERT_EQ(m.blocks.size(), 2u);
  EXPECT_EQ(m.blocks[1], tail);
  for (const std::int32_t b : m.blocks) pool.decref(b);
  // Without a partial tail, nothing past the last boundary is anchored.
  const auto other = prompt_of({9, 8, 7, 6, 5});
  const std::int32_t full2 = pool.allocate();
  tree.insert(other.data(), 5, {full2}, -1);
  pool.decref(full2);
  EXPECT_FALSE(tree.has_anchor(other.data(), 5));
  EXPECT_TRUE(tree.has_anchor(other.data(), 4));
}

TEST(PrefixTree, EvictionIsLruAndSparesSharedBlocks) {
  nn::KvBlockPool pool(1, 2, 2, 6);
  nn::PrefixTree tree(&pool);
  const std::int32_t a = pool.allocate();
  const std::int32_t b = pool.allocate();
  const auto ta = prompt_of({1, 1});
  const auto tb = prompt_of({2, 2});
  tree.insert(ta.data(), 2, {a}, -1);
  tree.insert(tb.data(), 2, {b}, -1);
  pool.decref(b);  // only the tree holds b; we still hold a
  EXPECT_EQ(pool.free_blocks(), 4);
  // Oldest anchor goes first, but block a survives: we still reference it.
  EXPECT_EQ(tree.evict_until_free(5), 1);
  EXPECT_EQ(tree.anchors(), 0);
  EXPECT_EQ(pool.refcount(a), 1);
  EXPECT_EQ(pool.free_blocks(), 5);
  EXPECT_EQ(tree.evicted_blocks(), 1u);
  pool.decref(a);
  // clear() releases everything the tree still holds.
  const std::int32_t c = pool.allocate();
  tree.insert(ta.data(), 2, {c}, -1);
  pool.decref(c);
  tree.clear();
  EXPECT_EQ(pool.free_blocks(), 6);
}

// Logits must be byte-identical at every block size: attention walks
// positions in order with the same arithmetic regardless of the block
// geometry beneath the table.
TEST(PagedDecode, LogitsBitIdenticalAcrossBlockSizes) {
  const nn::TinyGpt model = tiny_model();
  Rng rng(11);
  std::vector<int> ids(20);
  for (auto& t : ids) t = static_cast<int>(rng.below(40));
  nn::DecodeSession ref(model, nullptr, 1);
  std::vector<std::vector<float>> want;
  for (const int t : ids) want.push_back(ref.step(t));
  for (const std::int64_t bt : {3, 8, 64}) {
    nn::DecodeSession session(model, nullptr, bt);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const auto& got = session.step(ids[i]);
      ASSERT_EQ(0, std::memcmp(got.data(), want[i].data(),
                               want[i].size() * sizeof(float)))
          << "block_tokens " << bt << " step " << i;
    }
  }
}

// Adopting a cached prefix must reproduce a private prefill bitwise, and
// copy-on-write must keep the donor blocks untouched while both adopters
// diverge.
TEST(PagedDecode, AdoptedPrefixAndCowMatchPrivatePrefill) {
  const nn::TinyGpt model = tiny_model();
  const auto& cfg = model.config();
  const std::int64_t bt = 4;
  nn::KvBlockPool pool(cfg.n_layers, cfg.d_model, bt,
                       4 * ((cfg.max_seq + bt - 1) / bt));
  nn::PrefixTree tree(&pool);
  const std::vector<int> preamble = {3, 1, 4, 1, 5, 9};  // 6 = 1.5 blocks

  // Donor prefills the preamble and anchors it (partial tail snapshot).
  nn::DecodeSession donor(model, &pool);
  for (const int t : preamble) donor.step(t);
  const auto& chain = donor.block_table();
  const std::int32_t tail_copy = pool.allocate();
  pool.copy_rows(chain[1], tail_copy, 6 % bt);
  tree.insert(preamble.data(), 6, chain, tail_copy);

  for (const int divergent : {7, 8}) {
    auto m = tree.match(preamble, 6);
    ASSERT_EQ(m.tokens, 6);
    nn::DecodeSession adopter(model, &pool);
    adopter.adopt_prefix(m.blocks, m.tokens);
    EXPECT_TRUE(adopter.pending_cow());

    nn::DecodeSession fresh(model, &pool);
    for (const int t : preamble) fresh.step(t);

    std::vector<int> suffix = {divergent, 2, 6};
    for (const int t : suffix) {
      const auto& got = adopter.step(t);
      const auto& want = fresh.step(t);
      ASSERT_EQ(0, std::memcmp(got.data(), want.data(),
                               want.size() * sizeof(float)))
          << "divergent " << divergent << " token " << t;
    }
    // The shared tail was copied before the first append...
    EXPECT_EQ(adopter.cow_copies(), 1);
    EXPECT_FALSE(adopter.pending_cow());
    // ...so the tree's anchor still matches for the next adopter.
    EXPECT_TRUE(tree.has_anchor(preamble.data(), 6));
  }
  // Full-block adoption (limit at a boundary) needs no copy-on-write for
  // the adopted blocks themselves.
  auto m = tree.match(preamble, 4);
  ASSERT_EQ(m.tokens, 4);
  nn::DecodeSession boundary(model, &pool);
  boundary.adopt_prefix(m.blocks, m.tokens);
  EXPECT_FALSE(boundary.pending_cow());
  boundary.step(preamble[4]);
  EXPECT_EQ(boundary.cow_copies(), 0);
  // Appends went into a fresh block, never the shared one.
  EXPECT_NE(boundary.block_table()[1], chain[1]);
}

// reset() returns every reference; a session cycle leaves the pool where
// it started.
TEST(PagedDecode, ResetReleasesAllBlocks) {
  const nn::TinyGpt model = tiny_model();
  const auto& cfg = model.config();
  nn::KvBlockPool pool(cfg.n_layers, cfg.d_model, 4, 16);
  const std::int64_t before = pool.free_blocks();
  nn::DecodeSession session(model, &pool);
  for (int t = 0; t < 10; ++t) session.step(t);
  EXPECT_LT(pool.free_blocks(), before);
  session.reset();
  EXPECT_EQ(pool.free_blocks(), before);
  EXPECT_EQ(session.position(), 0);
}

}  // namespace
}  // namespace dpoaf
