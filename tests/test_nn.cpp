#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "nn/gpt.hpp"
#include "nn/optim.hpp"
#include "nn/tokenizer.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace dpoaf::nn {
namespace {

namespace ops = tensor::ops;
using tensor::Tape;
using tensor::Tensor;

// ------------------------------------------------------------ tokenizer ---

TEST(Tokenizer, WordSplitLowercasesAndSeparatesPunctuation) {
  const auto w = Tokenizer::words("1. Observe the Traffic light.");
  ASSERT_EQ(w.size(), 7u);
  EXPECT_EQ(w[0], "1");
  EXPECT_EQ(w[1], ".");
  EXPECT_EQ(w[2], "observe");
  EXPECT_EQ(w[6], ".");
}

TEST(Tokenizer, NewlinesBecomeTokens) {
  const auto w = Tokenizer::words("a\nb");
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[1], "<nl>");
}

TEST(Tokenizer, EncodeDecodeRoundTripsStepLists) {
  const std::string text =
      "1. Observe the traffic light.\n2. If no car from the left, turn "
      "right.";
  Tokenizer tok = Tokenizer::build({text});
  const auto ids = tok.encode(text);
  const std::string back = tok.decode(ids);
  EXPECT_EQ(back,
            "1. observe the traffic light.\n2. if no car from the left, "
            "turn right.");
}

TEST(Tokenizer, PunctuationRunsStayOrderedAndRoundTrip) {
  // Regression: the tail used to be built with insert-at-front (quadratic
  // on long runs); append-then-reverse must keep the emission order.
  const auto w = Tokenizer::words("stop.,.,.");
  ASSERT_EQ(w.size(), 6u);
  EXPECT_EQ(w[0], "stop");
  EXPECT_EQ(w[1], ".");
  EXPECT_EQ(w[2], ",");
  EXPECT_EQ(w[3], ".");
  EXPECT_EQ(w[4], ",");
  EXPECT_EQ(w[5], ".");

  const std::string text = "wait, then stop... go, now.";
  Tokenizer tok = Tokenizer::build({text});
  const auto ids = tok.encode(text);
  EXPECT_EQ(tok.decode(ids), "wait, then stop... go, now.");
}

TEST(Tokenizer, PathologicalPunctuationRunIsLinear) {
  // A long all-punctuation token must come back verbatim (and quickly).
  std::string text = "stop";
  text.append(2000, '.');
  const auto w = Tokenizer::words(text);
  ASSERT_EQ(w.size(), 2001u);
  EXPECT_EQ(w.front(), "stop");
  for (std::size_t i = 1; i < w.size(); ++i) ASSERT_EQ(w[i], ".");
}

TEST(Tokenizer, UnknownWordsMapToUnk) {
  Tokenizer tok = Tokenizer::build({"known words"});
  const auto ids = tok.encode("unknown");
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids[0], tok.unk());
}

TEST(Tokenizer, SpecialTokensAreRegistered) {
  Tokenizer tok = Tokenizer::build({});
  EXPECT_NE(tok.bos(), tok.eos());
  EXPECT_EQ(tok.id_of("<s>"), tok.bos());
  EXPECT_EQ(tok.id_of("[INST]"), tok.inst_open());
  EXPECT_EQ(tok.id_of("[/INST]"), tok.inst_close());
  EXPECT_EQ(tok.vocab_size(), 6u);  // specials only
}

TEST(Tokenizer, SpecialTokensSurviveEncode) {
  Tokenizer tok = Tokenizer::build({"steps for x"});
  const auto ids = tok.encode("<s> [INST] steps for x [/INST]");
  ASSERT_GE(ids.size(), 2u);
  EXPECT_EQ(ids[0], tok.bos());
  EXPECT_EQ(ids[1], tok.inst_open());
  EXPECT_EQ(ids.back(), tok.inst_close());
}

// Lossiness (case folding, OOV -> <unk>) means decode(encode(x)) != x in
// general, but one round must reach a fixpoint: re-encoding the decoded
// text reproduces the ids exactly, and re-decoding reproduces the text.
void expect_round_trip_fixpoint(const Tokenizer& tok, const std::string& text) {
  const auto ids = tok.encode(text);
  const std::string decoded = tok.decode(ids);
  EXPECT_EQ(tok.encode(decoded), ids) << "input: " << text;
  EXPECT_EQ(tok.decode(tok.encode(decoded)), decoded) << "input: " << text;
}

TEST(Tokenizer, PropertyRoundTripFixpointOnPunctuationHeavyText) {
  Tokenizer tok = Tokenizer::build(
      {"1. Observe the traffic light.\n2. If no car, stop.",
       "wait, then go straight. turn left at the stop sign."});
  const std::vector<std::string> pool = {
      "observe", "Traffic", "light", "stop",  "go",     "OOV-word", "x9",
      ".",       ",",       "...",   ".,.,",  "a.b",    "<s>",      "</s>",
      "[INST]",  "[/INST]", "<nl>",  "<unk>", "stop.,", "\n",       "42."};
  Rng rng(613);
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    for (std::uint64_t i = 0, n = 1 + rng.below(12); i < n; ++i) {
      if (!text.empty()) text += rng.chance(0.2) ? "  " : " ";
      text += pool[rng.below(pool.size())];
    }
    expect_round_trip_fixpoint(tok, text);
  }
}

TEST(Tokenizer, PropertyOovCollapsesToUnkAndStaysStable) {
  Tokenizer tok = Tokenizer::build({"known words only"});
  const auto ids = tok.encode("Zebra quux9 <nothing>");
  ASSERT_EQ(ids.size(), 3u);
  for (const int id : ids) EXPECT_EQ(id, tok.unk());
  EXPECT_EQ(tok.decode(ids), "<unk> <unk> <unk>");
  expect_round_trip_fixpoint(tok, "Zebra quux9 <nothing>");
}

TEST(Tokenizer, EmptyAndWhitespaceOnlyInputs) {
  Tokenizer tok = Tokenizer::build({"some words"});
  EXPECT_TRUE(tok.encode("").empty());
  EXPECT_TRUE(tok.encode("   \t  ").empty());
  EXPECT_EQ(tok.decode({}), "");
  EXPECT_TRUE(Tokenizer::words("").empty());
  // Newlines are structure, not whitespace: they survive as <nl> tokens.
  const auto nl = tok.encode(" \n ");
  ASSERT_EQ(nl.size(), 1u);
  EXPECT_EQ(nl[0], tok.id_of("<nl>"));
  expect_round_trip_fixpoint(tok, " \n\n ");
  expect_round_trip_fixpoint(tok, "");
}

// -------------------------------------------------------------- modules ---

TEST(Modules, LinearForwardShape) {
  Rng rng(1);
  Linear lin(4, 3, rng, 0.1f);
  Tensor x = Tensor::randn({5, 4}, rng);
  Tensor y = lin.forward(nullptr, x);
  EXPECT_EQ(y.rows(), 5);
  EXPECT_EQ(y.cols(), 3);
}

TEST(Modules, LoraStartsAsIdentityUpdate) {
  Rng rng(2);
  Linear lin(4, 4, rng, 0.1f);
  Tensor x = Tensor::randn({3, 4}, rng);
  Tensor before = lin.forward(nullptr, x);
  lin.enable_lora(2, 4.0f, rng);
  Tensor after = lin.forward(nullptr, x);
  for (std::int64_t i = 0; i < before.numel(); ++i)
    EXPECT_FLOAT_EQ(after.data()[i], before.data()[i]);  // B starts at zero
}

TEST(Modules, LoraFreezesBaseAndTrainsAdapters) {
  Rng rng(3);
  Linear lin(4, 4, rng, 0.1f);
  lin.enable_lora(2, 4.0f, rng);
  EXPECT_FALSE(lin.weight.requires_grad());
  EXPECT_TRUE(lin.lora_a.requires_grad());
  EXPECT_TRUE(lin.lora_b.requires_grad());
  EXPECT_THROW(lin.enable_lora(2, 4.0f, rng), ContractViolation);

  // Gradients reach the adapters through the forward pass.
  Tensor x = Tensor::randn({2, 4}, rng);
  Tape tape;
  Tensor loss = ops::sum(&tape, lin.forward(&tape, x));
  tape.backward(loss);
  EXPECT_FALSE(lin.weight.has_grad());
  EXPECT_TRUE(lin.lora_a.has_grad());
}

TEST(Modules, AttentionIsCausal) {
  // Changing a later token must not change earlier outputs.
  Rng rng(4);
  CausalSelfAttention attn(8, 2, rng, 0.1f);
  Tensor x = Tensor::randn({4, 8}, rng);
  Tensor y1 = attn.forward(nullptr, x);
  Tensor x2 = x.clone();
  x2.at(3, 0) += 10.0f;  // perturb the last position
  Tensor y2 = attn.forward(nullptr, x2);
  for (std::int64_t t = 0; t < 3; ++t)
    for (std::int64_t j = 0; j < 8; ++j)
      EXPECT_FLOAT_EQ(y1.at(t, j), y2.at(t, j)) << "t=" << t;
}

TEST(Modules, TransformerBlockPreservesShape) {
  Rng rng(5);
  TransformerBlock block(8, 2, 16, rng, 0.1f);
  Tensor x = Tensor::randn({6, 8}, rng);
  Tensor y = block.forward(nullptr, x);
  EXPECT_EQ(y.rows(), 6);
  EXPECT_EQ(y.cols(), 8);
}

// ------------------------------------------------------------------ GPT ---

GptConfig tiny_config() {
  GptConfig c;
  c.vocab_size = 20;
  c.d_model = 16;
  c.n_heads = 2;
  c.n_layers = 2;
  c.d_ff = 32;
  c.max_seq = 16;
  return c;
}

TEST(Gpt, ForwardShapeAndCausality) {
  Rng rng(6);
  TinyGpt model(tiny_config(), rng);
  const std::vector<int> ids{1, 2, 3, 4};
  Tensor logits = model.forward(nullptr, ids);
  EXPECT_EQ(logits.rows(), 4);
  EXPECT_EQ(logits.cols(), 20);

  // Prefix logits are independent of suffix tokens.
  const std::vector<int> ids2{1, 2, 3, 7};
  Tensor logits2 = model.forward(nullptr, ids2);
  for (std::int64_t j = 0; j < 20; ++j) {
    EXPECT_FLOAT_EQ(logits.at(0, j), logits2.at(0, j));
    EXPECT_FLOAT_EQ(logits.at(2, j), logits2.at(2, j));
  }
}

TEST(Gpt, SequenceLimitsEnforced) {
  Rng rng(7);
  TinyGpt model(tiny_config(), rng);
  EXPECT_THROW((void)model.forward(nullptr, {}), ContractViolation);
  EXPECT_THROW((void)model.forward(nullptr, std::vector<int>(17, 1)),
               ContractViolation);
}

TEST(Gpt, TrainingReducesLoss) {
  Rng rng(8);
  TinyGpt model(tiny_config(), rng);
  const std::vector<int> seq{1, 5, 9, 5, 1, 5, 9, 5};
  AdamWConfig cfg;
  cfg.lr = 1e-2f;
  AdamW opt(model.trainable_parameters(), cfg);
  const float before = model.nll_loss(nullptr, seq).item();
  for (int step = 0; step < 30; ++step) {
    Tape tape;
    Tensor loss = model.nll_loss(&tape, seq);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
  }
  const float after = model.nll_loss(nullptr, seq).item();
  EXPECT_LT(after, before * 0.5f);
}

TEST(Gpt, ResponseLogProbMatchesManualSum) {
  Rng rng(9);
  TinyGpt model(tiny_config(), rng);
  const std::vector<int> ids{1, 2, 3, 4, 5};
  const std::int64_t prompt_len = 2;
  const double lp = model.response_log_prob_value(ids, prompt_len);

  // Manual: Σ_{t=prompt_len-1}^{T-2} log softmax(logits[t])[ids[t+1]]
  Tensor logits = model.forward(nullptr, ids);
  double manual = 0.0;
  for (std::int64_t t = prompt_len - 1; t + 1 < 5; ++t) {
    double mx = -1e30;
    for (std::int64_t j = 0; j < 20; ++j)
      mx = std::max(mx, static_cast<double>(logits.at(t, j)));
    double z = 0.0;
    for (std::int64_t j = 0; j < 20; ++j)
      z += std::exp(static_cast<double>(logits.at(t, j)) - mx);
    manual +=
        static_cast<double>(logits.at(t, ids[static_cast<std::size_t>(t + 1)])) -
        mx - std::log(z);
  }
  EXPECT_NEAR(lp, manual, 1e-3);
}

TEST(Gpt, ResponseLogProbValidatesPromptLen) {
  Rng rng(10);
  TinyGpt model(tiny_config(), rng);
  EXPECT_THROW((void)model.response_log_prob_value({1, 2}, 2),
               ContractViolation);
  EXPECT_THROW((void)model.response_log_prob_value({1, 2}, 0),
               ContractViolation);
}

TEST(Gpt, StateRoundTrip) {
  Rng rng(11);
  TinyGpt model(tiny_config(), rng);
  const auto snapshot = model.state();
  const std::vector<int> seq{3, 1, 4, 1, 5};
  const float loss0 = model.nll_loss(nullptr, seq).item();

  // Perturb, then restore.
  AdamWConfig cfg;
  cfg.lr = 1e-2f;
  AdamW opt(model.trainable_parameters(), cfg);
  Tape tape;
  Tensor loss = model.nll_loss(&tape, seq);
  tape.backward(loss);
  opt.step();
  EXPECT_NE(model.nll_loss(nullptr, seq).item(), loss0);
  model.load_state(snapshot);
  EXPECT_FLOAT_EQ(model.nll_loss(nullptr, seq).item(), loss0);

  EXPECT_THROW(model.load_state(std::vector<float>(3, 0.0f)),
               ContractViolation);
}

TEST(Gpt, CloneIsIndependent) {
  Rng rng(12);
  TinyGpt model(tiny_config(), rng);
  TinyGpt copy = model.clone();
  const std::vector<int> seq{1, 2, 3};
  EXPECT_FLOAT_EQ(model.nll_loss(nullptr, seq).item(),
                  copy.nll_loss(nullptr, seq).item());
  // Training the original must not affect the clone.
  AdamWConfig cfg;
  cfg.lr = 5e-2f;
  AdamW opt(model.trainable_parameters(), cfg);
  Tape tape;
  Tensor loss = model.nll_loss(&tape, seq);
  tape.backward(loss);
  opt.step();
  EXPECT_NE(model.nll_loss(nullptr, seq).item(),
            copy.nll_loss(nullptr, seq).item());
}

TEST(Gpt, LoraShrinksTrainableSet) {
  Rng rng(13);
  TinyGpt model(tiny_config(), rng);
  const std::size_t full = model.trainable_parameter_count();
  model.enable_lora(2, 4.0f, rng);
  const std::size_t lora = model.trainable_parameter_count();
  EXPECT_LT(lora, full / 4);
  EXPECT_GT(lora, 0u);
  // Forward unchanged at initialization.
  TinyGpt base = model.clone();
  EXPECT_FLOAT_EQ(model.nll_loss(nullptr, {1, 2, 3}).item(),
                  base.nll_loss(nullptr, {1, 2, 3}).item());
}

TEST(Gpt, LoraCloneKeepsAdapters) {
  Rng rng(14);
  TinyGpt model(tiny_config(), rng);
  model.enable_lora(2, 4.0f, rng);
  TinyGpt copy = model.clone();
  EXPECT_TRUE(copy.lora_enabled());
  EXPECT_EQ(copy.trainable_parameter_count(),
            model.trainable_parameter_count());
}

TEST(Gpt, GenerateStopsAtEosAndRespectsMaxNew) {
  Rng rng(15);
  TinyGpt model(tiny_config(), rng);
  Rng sampler(42);
  const auto out = model.generate({1, 2}, 5, 1.0f, 0, /*eos=*/0, sampler);
  EXPECT_LE(out.ids.size(), 5u);
  for (int id : out.ids) EXPECT_NE(id, 0);  // eos never included
}

TEST(Gpt, GenerateIsDeterministicGivenSeed) {
  Rng rng(16);
  TinyGpt model(tiny_config(), rng);
  Rng s1(7), s2(7);
  EXPECT_EQ(model.generate({1}, 8, 0.8f, 5, 0, s1).ids,
            model.generate({1}, 8, 0.8f, 5, 0, s2).ids);
}

TEST(Gpt, GreedyPicksArgmaxAfterOverfitting) {
  Rng rng(17);
  TinyGpt model(tiny_config(), rng);
  const std::vector<int> seq{2, 4, 6, 8, 2, 4, 6, 8};
  AdamWConfig cfg;
  cfg.lr = 1e-2f;
  AdamW opt(model.trainable_parameters(), cfg);
  for (int step = 0; step < 80; ++step) {
    Tape tape;
    Tensor loss = model.nll_loss(&tape, seq);
    opt.zero_grad();
    tape.backward(loss);
    opt.step();
  }
  const auto out = model.generate_greedy({2, 4}, 3, 0);
  ASSERT_EQ(out.ids.size(), 3u);
  EXPECT_EQ(out.ids[0], 6);
  EXPECT_EQ(out.ids[1], 8);
  EXPECT_EQ(out.ids[2], 2);
}

TEST(Gpt, GenerateSetsTruncatedWhenContextExhausted) {
  Rng rng(18);
  TinyGpt model(tiny_config(), rng);  // max_seq = 16
  Rng sampler(1);
  // eos=-1 matches no token, so only the context limit can stop decoding.
  const auto out = model.generate({1, 2}, 32, 1.0f, 0, /*eos=*/-1, sampler);
  EXPECT_TRUE(out.truncated);
  EXPECT_EQ(out.ids.size(), 14u);  // max_seq − prompt length
  Rng sampler2(1);
  const auto within = model.generate({1, 2}, 4, 1.0f, 0, -1, sampler2);
  EXPECT_FALSE(within.truncated);
  EXPECT_EQ(within.ids.size(), 4u);
}

TEST(Gpt, GreedySetsTruncatedAndOverlongPromptThrows) {
  Rng rng(19);
  TinyGpt model(tiny_config(), rng);
  const auto out = model.generate_greedy({1, 2, 3}, 64, /*eos=*/-1);
  EXPECT_TRUE(out.truncated);
  EXPECT_EQ(out.ids.size(), 13u);
  const auto ok = model.generate_greedy({1, 2, 3}, 5, -1);
  EXPECT_FALSE(ok.truncated);
  // A prompt that alone exceeds max_seq is a contract violation, not a
  // silently truncated generation.
  EXPECT_THROW((void)model.generate_greedy(std::vector<int>(17, 1), 1, 0),
               ContractViolation);
  Rng s(3);
  EXPECT_THROW(
      (void)model.generate(std::vector<int>(17, 1), 1, 1.0f, 0, 0, s),
      ContractViolation);
}

TEST(Gpt, TopKTieBreaksByAscendingTokenId) {
  Rng rng(20);
  TinyGpt model(tiny_config(), rng);
  // Zero every parameter: all logits become exactly equal, so the top-k
  // candidate set is decided purely by the tie-break rule. Breaking ties
  // by ascending token id makes the set {0, 1, 2, 3}.
  model.load_state(std::vector<float>(model.state().size(), 0.0f));
  Rng sampler(5);
  const auto out =
      model.generate({1}, 12, 1.0f, /*top_k=*/4, /*eos=*/-1, sampler);
  ASSERT_FALSE(out.ids.empty());
  for (int id : out.ids) EXPECT_LT(id, 4);
}

// ---------------------------------------------------------------- AdamW ---

TEST(AdamW, ConvergesOnQuadratic) {
  // minimize (w − 3)² — gradient supplied manually.
  Tensor w = Tensor::from({1, 1}, {0.0f}).set_requires_grad(true);
  AdamWConfig cfg;
  cfg.lr = 0.1f;
  AdamW opt({w}, cfg);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    w.grad()[0] = 2.0f * (w.data()[0] - 3.0f);
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 3.0f, 1e-2f);
  EXPECT_EQ(opt.steps_taken(), 300);
}

TEST(AdamW, GradClipBoundsUpdate) {
  Tensor w = Tensor::from({1, 1}, {0.0f}).set_requires_grad(true);
  AdamWConfig cfg;
  cfg.lr = 0.1f;
  cfg.grad_clip = 1.0f;
  AdamW opt({w}, cfg);
  w.grad()[0] = 1e6f;
  opt.step();
  EXPECT_NEAR(opt.last_grad_norm(), 1e6, 1e2);
  EXPECT_LT(std::fabs(w.data()[0]), 0.2f);  // clipped step stays small
}

TEST(AdamW, WeightDecayPullsTowardZero) {
  Tensor w = Tensor::from({1, 1}, {1.0f}).set_requires_grad(true);
  AdamWConfig cfg;
  cfg.lr = 0.01f;
  cfg.weight_decay = 0.1f;
  AdamW opt({w}, cfg);
  for (int i = 0; i < 100; ++i) {
    opt.zero_grad();  // zero gradient: only decay acts
    opt.step();
  }
  EXPECT_LT(w.data()[0], 1.0f);
  EXPECT_GT(w.data()[0], 0.0f);
}

TEST(AdamW, RequiresParameters) {
  AdamWConfig cfg;
  EXPECT_THROW(AdamW({}, cfg), ContractViolation);
}

}  // namespace
}  // namespace dpoaf::nn
