// Continuous-batching generation service (src/serve): served decoding must
// reproduce TinyGpt::generate bitwise per request, stay invariant to
// arrival order / slot count / thread count in deterministic mode, and keep
// its robustness contract (queue-full rejection, deadline expiry, drain and
// abort shutdown).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/service.hpp"
#include "util/threadpool.hpp"

namespace dpoaf {
namespace {

nn::GptConfig small_config(std::int64_t max_seq = 48) {
  nn::GptConfig cfg;
  cfg.vocab_size = 48;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 2;
  cfg.d_ff = 32;
  cfg.max_seq = max_seq;
  return cfg;
}

nn::TinyGpt small_model(std::uint64_t seed = 3) {
  Rng rng(seed);
  return nn::TinyGpt(small_config(), rng);
}

// A varied request set: different prompts, lengths, budgets, temperatures,
// top-k settings, priorities, and per-request seeds. eos_id = 1 so a random
// model terminates some requests early.
std::vector<serve::GenerateRequest> request_set(int n,
                                                std::uint64_t seed = 17) {
  Rng rng(seed);
  std::vector<serve::GenerateRequest> reqs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto& req = reqs[static_cast<std::size_t>(i)];
    const auto len = static_cast<std::size_t>(rng.between(1, 6));
    req.prompt.resize(len);
    for (auto& t : req.prompt) t = static_cast<int>(rng.below(48));
    req.max_new_tokens = static_cast<int>(rng.between(0, 40));
    req.temperature = 0.5f + 0.1f * static_cast<float>(rng.below(8));
    req.top_k = static_cast<int>(rng.between(0, 8));
    req.eos_id = 1;
    req.seed = rng();
    req.priority = static_cast<int>(rng.below(3));
  }
  return reqs;
}

struct Outcome {
  std::vector<int> ids;
  bool truncated = false;
  serve::FinishReason finish = serve::FinishReason::kEos;

  bool operator==(const Outcome& o) const {
    return ids == o.ids && truncated == o.truncated && finish == o.finish;
  }
};

// Submit `reqs` in the order given by `order` and return outcomes indexed
// by original request position.
std::vector<Outcome> run_served(const nn::TinyGpt& model,
                                serve::ServiceConfig cfg,
                                const std::vector<serve::GenerateRequest>& reqs,
                                const std::vector<std::size_t>& order) {
  serve::GenerationService service(model, cfg);
  std::vector<std::future<serve::GenerateResult>> futures(reqs.size());
  for (const std::size_t u : order)
    futures[u] = service.submit(reqs[u]).result;
  std::vector<Outcome> out(reqs.size());
  for (std::size_t u = 0; u < reqs.size(); ++u) {
    serve::GenerateResult r = futures[u].get();
    out[u] = Outcome{std::move(r.ids), r.truncated, r.finish};
  }
  return out;
}

TEST(Serve, MatchesGenerateBitwisePerRequest) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model();
  const auto reqs = request_set(16);
  serve::ServiceConfig cfg;
  cfg.slots = 4;
  cfg.deterministic = true;
  cfg.seed = 99;
  serve::GenerationService service(model, cfg);
  const auto results = service.generate_all(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (std::size_t u = 0; u < reqs.size(); ++u) {
    const auto& req = reqs[u];
    Rng rng = serve::request_rng(cfg.seed, req.seed);
    const auto direct =
        model.generate(req.prompt, req.max_new_tokens, req.temperature,
                       req.top_k, req.eos_id, rng);
    EXPECT_EQ(results[u].ids, direct.ids) << "request " << u;
    EXPECT_EQ(results[u].truncated, direct.truncated) << "request " << u;
  }
  const auto stats = service.stats();
  std::size_t total_tokens = 0;
  for (const auto& r : results) total_tokens += r.ids.size();
  EXPECT_EQ(stats.accepted, reqs.size());
  EXPECT_EQ(stats.completed, reqs.size());
  EXPECT_EQ(stats.generated_tokens, total_tokens);
  util::set_global_threads(1);
}

TEST(Serve, GreedyMatchesGenerateGreedy) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model(5);
  serve::ServiceConfig cfg;
  cfg.deterministic = true;
  serve::GenerationService service(model, cfg);
  auto reqs = request_set(8, 23);
  for (auto& req : reqs) req.greedy = true;
  const auto results = service.generate_all(reqs);
  for (std::size_t u = 0; u < reqs.size(); ++u) {
    const auto direct = model.generate_greedy(
        reqs[u].prompt, reqs[u].max_new_tokens, reqs[u].eos_id);
    EXPECT_EQ(results[u].ids, direct.ids) << "request " << u;
    EXPECT_EQ(results[u].truncated, direct.truncated) << "request " << u;
  }
  util::set_global_threads(1);
}

// The acceptance property: the same request set yields bitwise-identical
// responses regardless of arrival order, slot count, or thread count.
TEST(Serve, DeterministicAcrossArrivalOrderSlotsAndThreads) {
  const nn::TinyGpt model = small_model(7);
  const auto reqs = request_set(24, 41);
  std::vector<std::size_t> fifo(reqs.size());
  std::iota(fifo.begin(), fifo.end(), std::size_t{0});
  std::vector<std::size_t> shuffled = fifo;
  Rng shuffle_rng(2718);
  shuffle_rng.shuffle(shuffled);
  std::vector<std::size_t> reversed(fifo.rbegin(), fifo.rend());

  serve::ServiceConfig base;
  base.deterministic = true;
  base.seed = 4;

  util::set_global_threads(1);
  serve::ServiceConfig one_slot = base;
  one_slot.slots = 1;
  const auto reference = run_served(model, one_slot, reqs, fifo);

  struct Variant {
    int slots;
    int threads;
    const std::vector<std::size_t>* order;
  };
  const Variant variants[] = {
      {8, 4, &shuffled},
      {3, 2, &reversed},
      {8, 1, &fifo},
  };
  for (const Variant& v : variants) {
    util::set_global_threads(v.threads);
    serve::ServiceConfig cfg = base;
    cfg.slots = v.slots;
    const auto got = run_served(model, cfg, reqs, *v.order);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t u = 0; u < reference.size(); ++u)
      EXPECT_TRUE(got[u] == reference[u])
          << "request " << u << " diverged at slots=" << v.slots
          << " threads=" << v.threads;
  }
  util::set_global_threads(1);
}

TEST(Serve, RejectsInvalidFullAndShutdown) {
  const nn::TinyGpt model = small_model();
  serve::ServiceConfig cfg;
  cfg.queue_capacity = 0;  // nothing can ever be admitted
  serve::GenerationService service(model, cfg);

  serve::GenerateRequest ok;
  ok.prompt = {2, 3};
  serve::SubmitError why{};
  EXPECT_FALSE(service.try_submit(ok, &why).has_value());
  EXPECT_EQ(why, serve::SubmitError::kQueueFull);

  serve::GenerateRequest bad = ok;
  bad.prompt.clear();
  EXPECT_FALSE(service.try_submit(bad, &why).has_value());
  EXPECT_EQ(why, serve::SubmitError::kInvalid);
  bad = ok;
  bad.prompt = {-1};
  EXPECT_NE(service.validate(bad), "");
  bad = ok;
  bad.temperature = 0.0f;
  EXPECT_NE(service.validate(bad), "");
  bad = ok;
  bad.prompt.assign(static_cast<std::size_t>(model.config().max_seq) + 1, 2);
  EXPECT_NE(service.validate(bad), "");

  service.shutdown();
  EXPECT_FALSE(service.try_submit(ok, &why).has_value());
  EXPECT_EQ(why, serve::SubmitError::kShutdown);
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_full, 1u);
  EXPECT_EQ(stats.rejected_shutdown, 1u);
}

TEST(Serve, BlockingSubmitBackpressureCompletesEverything) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model();
  serve::ServiceConfig cfg;
  cfg.slots = 1;
  cfg.queue_capacity = 1;  // every submit beyond the first two must wait
  serve::GenerationService service(model, cfg);
  auto reqs = request_set(12, 61);
  std::vector<std::future<serve::GenerateResult>> futures;
  futures.reserve(reqs.size());
  for (const auto& req : reqs)
    futures.push_back(service.submit(req).result);
  for (auto& f : futures) EXPECT_NO_THROW(f.get());
  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, reqs.size());
  EXPECT_EQ(stats.completed, reqs.size());
  EXPECT_EQ(stats.rejected_full, 0u);
  util::set_global_threads(1);
}

TEST(Serve, DeadlineExpiryTruncatesWithFlag) {
  const nn::TinyGpt model = small_model();
  serve::GenerateRequest req;
  req.prompt = {2};
  req.max_new_tokens = 40;  // ≥ 40 decode steps ≫ 1 µs of work
  req.eos_id = -1;          // never stops early
  req.timeout_us = 1;

  serve::ServiceConfig wall;
  wall.deterministic = false;
  {
    serve::GenerationService service(model, wall);
    const auto r = service.submit(req).result.get();
    EXPECT_EQ(r.finish, serve::FinishReason::kDeadline);
    EXPECT_TRUE(r.truncated);
    EXPECT_EQ(service.stats().deadline_expired, 1u);
  }

  // Deterministic mode ignores wall-clock deadlines entirely.
  serve::ServiceConfig det;
  det.deterministic = true;
  {
    serve::GenerationService service(model, det);
    const auto r = service.submit(req).result.get();
    EXPECT_EQ(r.finish, serve::FinishReason::kLength);
    EXPECT_FALSE(r.truncated);
    EXPECT_EQ(static_cast<int>(r.ids.size()), req.max_new_tokens);
  }
}

TEST(Serve, ContextExhaustionReportsTruncation) {
  const nn::TinyGpt model = small_model(11);
  serve::ServiceConfig cfg;
  cfg.deterministic = true;
  serve::GenerationService service(model, cfg);
  const auto max_seq = static_cast<std::size_t>(model.config().max_seq);

  // Prompt exactly fills the context: not a single token fits.
  serve::GenerateRequest full;
  full.prompt.assign(max_seq, 2);
  full.max_new_tokens = 8;
  full.eos_id = -1;
  const auto r1 = service.submit(full).result.get();
  EXPECT_TRUE(r1.ids.empty());
  EXPECT_TRUE(r1.truncated);
  EXPECT_EQ(r1.finish, serve::FinishReason::kContext);

  // Budget larger than the remaining context: truncated mid-decode.
  serve::GenerateRequest over;
  over.prompt = {2};
  over.max_new_tokens = 1000;
  over.eos_id = -1;
  const auto r2 = service.submit(over).result.get();
  EXPECT_EQ(r2.ids.size(), max_seq - 1);
  EXPECT_TRUE(r2.truncated);
  EXPECT_EQ(r2.finish, serve::FinishReason::kContext);
}

TEST(Serve, GracefulDrainCompletesAllAdmittedWork) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model();
  serve::ServiceConfig cfg;
  cfg.slots = 2;
  serve::GenerationService service(model, cfg);
  const auto reqs = request_set(10, 83);
  std::vector<std::future<serve::GenerateResult>> futures;
  for (const auto& req : reqs) futures.push_back(service.submit(req).result);
  service.shutdown(true);
  for (auto& f : futures) {
    const auto r = f.get();
    EXPECT_NE(r.finish, serve::FinishReason::kShutdown);
  }
  EXPECT_EQ(service.stats().completed, reqs.size());
  util::set_global_threads(1);
}

TEST(Serve, AbortShutdownFailsOutstandingWorkFast) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model();
  serve::ServiceConfig cfg;
  cfg.slots = 1;
  cfg.queue_capacity = 64;
  serve::GenerationService service(model, cfg);
  auto reqs = request_set(32, 97);
  for (auto& req : reqs) {
    req.max_new_tokens = 40;
    req.eos_id = -1;
  }
  std::vector<std::future<serve::GenerateResult>> futures;
  for (const auto& req : reqs)
    futures.push_back(service.submit(req).result);
  service.shutdown(false);
  for (auto& f : futures) {
    const auto r = f.get();  // every promise must be fulfilled
    if (r.finish == serve::FinishReason::kShutdown) {
      EXPECT_TRUE(r.truncated);
    }
  }
  serve::SubmitError why{};
  EXPECT_FALSE(service.try_submit(reqs[0], &why).has_value());
  EXPECT_EQ(why, serve::SubmitError::kShutdown);
  util::set_global_threads(1);
}

// An empty prompt must never reach the scheduler: try_submit reports
// kInvalid, blocking submit resolves the future immediately with
// FinishReason::kInvalid instead of throwing (or crashing a decode slot).
TEST(Serve, EmptyPromptResolvesInvalidWithoutReachingScheduler) {
  const nn::TinyGpt model = small_model();
  serve::ServiceConfig cfg;
  cfg.deterministic = true;
  serve::GenerationService service(model, cfg);
  serve::GenerateRequest bad;
  bad.prompt = {};
  serve::SubmitError why{};
  EXPECT_FALSE(service.try_submit(bad, &why).has_value());
  EXPECT_EQ(why, serve::SubmitError::kInvalid);
  auto sub = service.submit(bad);
  const auto r = sub.result.get();
  EXPECT_EQ(r.finish, serve::FinishReason::kInvalid);
  EXPECT_TRUE(r.ids.empty());
  const auto stats = service.stats();
  EXPECT_EQ(stats.rejected_invalid, 2u);
  EXPECT_EQ(stats.accepted, 0u);
  // The service still works for valid traffic afterwards.
  serve::GenerateRequest ok;
  ok.prompt = {2, 3};
  ok.max_new_tokens = 2;
  EXPECT_EQ(service.submit(ok).result.get().finish,
            serve::FinishReason::kLength);
}

// Time-to-first-token must be recorded for the first decode step even when
// that step samples eos (the old path only stamped it after a token was
// appended, so eos-first responses reported ttft_ns == 0).
TEST(Serve, TtftRecordedWhenFirstTokenIsEos) {
  const nn::TinyGpt model = small_model();
  serve::ServiceConfig cfg;
  cfg.deterministic = true;
  serve::GenerationService service(model, cfg);
  serve::GenerateRequest req;
  req.prompt = {2, 3, 5};
  req.max_new_tokens = 4;
  req.greedy = true;
  req.eos_id = -1;
  // Probe the deterministic greedy decode for its first token, then make
  // exactly that token the eos.
  const auto probe = service.submit(req).result.get();
  ASSERT_FALSE(probe.ids.empty());
  req.eos_id = probe.ids.front();
  const auto r = service.submit(req).result.get();
  EXPECT_EQ(r.finish, serve::FinishReason::kEos);
  EXPECT_TRUE(r.ids.empty());
  EXPECT_GT(r.ttft_ns, 0u);
  EXPECT_LE(r.ttft_ns, r.total_ns);
  // No decode step at all (max_new == 0) still legitimately reports 0.
  req.eos_id = -1;
  req.max_new_tokens = 0;
  EXPECT_EQ(service.submit(req).result.get().ttft_ns, 0u);
}

// A pool far smaller than slots * max_seq throttles admission instead of
// stranding requests: everything completes, bitwise-equal to an
// unconstrained service.
TEST(Serve, BlockExhaustionThrottlesAdmissionWithoutStranding) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model();
  const auto reqs = request_set(24, 41);
  serve::ServiceConfig big;
  big.slots = 4;
  big.deterministic = true;
  big.seed = 7;
  std::vector<std::size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), 0);
  const auto want = run_served(model, big, reqs, order);

  serve::ServiceConfig tight = big;
  tight.kv_block_tokens = 4;
  // Exactly one worst-case sequence fits: slots effectively share the
  // pool and most admissions wait on blocks, not on a free slot.
  tight.kv_blocks_total = model.config().max_seq / 4;
  const auto got = run_served(model, tight, reqs, order);
  EXPECT_EQ(got, want);
  util::set_global_threads(1);
}

// Outputs are bitwise-invariant to the KV block size, with or without
// prefix sharing in the mix.
TEST(Serve, DeterministicAcrossKvBlockSizes) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model();
  auto reqs = request_set(12, 59);
  // Give half the requests a common preamble so sharing actually engages.
  for (std::size_t u = 0; u < reqs.size(); u += 2)
    reqs[u].prompt.insert(reqs[u].prompt.begin(), {9, 8, 7, 6, 5, 4});
  std::vector<std::size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), 0);
  serve::ServiceConfig cfg;
  cfg.slots = 4;
  cfg.deterministic = true;
  cfg.seed = 13;
  cfg.kv_block_tokens = 1;
  const auto want = run_served(model, cfg, reqs, order);
  for (const int bt : {3, 8, 64}) {
    cfg.kv_block_tokens = bt;
    for (const bool sharing : {true, false}) {
      cfg.prefix_sharing = sharing;
      EXPECT_EQ(run_served(model, cfg, reqs, order), want)
          << "kv_block_tokens " << bt << " sharing " << sharing;
    }
  }
  util::set_global_threads(1);
}

// Prefix sharing: identical results to private prefill, fewer prefill
// steps, and hit/reuse telemetry that accounts for the skipped work.
TEST(Serve, PrefixSharingReusesPreambleAndMatchesPrivatePrefill) {
  util::set_global_threads(2);
  const nn::TinyGpt model = small_model();
  const std::vector<int> preamble = {9, 8, 7, 6, 5, 4, 3, 2, 9, 8, 7, 6};
  std::vector<serve::GenerateRequest> reqs(8);
  Rng rng(71);
  for (std::size_t u = 0; u < reqs.size(); ++u) {
    auto& req = reqs[u];
    req.prompt = preamble;
    req.prompt.push_back(static_cast<int>(rng.below(48)));
    req.max_new_tokens = 6;
    req.eos_id = 1;
    req.seed = rng();
  }
  std::vector<std::size_t> order(reqs.size());
  std::iota(order.begin(), order.end(), 0);

  serve::ServiceConfig cfg;
  cfg.slots = 2;
  cfg.deterministic = true;
  cfg.seed = 3;
  cfg.kv_block_tokens = 4;

  cfg.prefix_sharing = false;
  std::uint64_t private_prefill = 0;
  std::vector<Outcome> want;
  {
    serve::GenerationService service(model, cfg);
    std::vector<std::future<serve::GenerateResult>> fs;
    for (const std::size_t u : order)
      fs.push_back(service.submit(reqs[u]).result);
    for (auto& f : fs) {
      auto r = f.get();
      want.push_back(Outcome{std::move(r.ids), r.truncated, r.finish});
    }
    const auto s = service.stats();
    private_prefill = s.prefill_steps;
    EXPECT_EQ(s.prefix_hits, 0u);
  }

  cfg.prefix_sharing = true;
  serve::GenerationService service(model, cfg);
  std::vector<std::future<serve::GenerateResult>> fs;
  for (const std::size_t u : order) fs.push_back(service.submit(reqs[u]).result);
  std::vector<Outcome> got;
  for (auto& f : fs) {
    auto r = f.get();
    got.push_back(Outcome{std::move(r.ids), r.truncated, r.finish});
  }
  EXPECT_EQ(got, want);  // byte-identical shared vs independent
  const auto s = service.stats();
  EXPECT_GT(s.prefix_hits, 0u);
  EXPECT_GT(s.prefix_tokens_reused, 0u);
  EXPECT_LT(s.prefill_steps, private_prefill);
  EXPECT_EQ(s.prefill_steps + s.prefix_tokens_reused, private_prefill);
  EXPECT_EQ(s.blocks_total, service.config().kv_blocks_total == 0
                                ? 2 * ((model.config().max_seq + 3) / 4)
                                : service.config().kv_blocks_total);
  util::set_global_threads(1);
}

// Pipeline routing: with config.serve on, candidates and checkpoint eval
// are identical at any (serve_slots, threads) setting.
TEST(Serve, PipelineServeModeDeterministicAcrossSlotsAndThreads) {
  const auto run_with = [](int slots, int threads) {
    core::PipelineConfig cfg;
    cfg.seed = 29;
    cfg.threads = threads;
    cfg.d_model = 16;
    cfg.n_heads = 2;
    cfg.n_layers = 1;
    cfg.d_ff = 32;
    cfg.corpus_samples_per_task = 6;
    cfg.pretrain.epochs = 1;
    cfg.responses_per_task = 4;
    cfg.sampler.max_new_tokens = 16;
    cfg.eval_samples_per_task = 2;
    cfg.eval_max_new_tokens = 16;
    cfg.serve = true;
    cfg.serve_slots = slots;
    core::DpoAfPipeline pipe(cfg);
    pipe.pretrain_model();
    auto candidates = pipe.collect_candidates();
    auto eval = pipe.evaluate_model(pipe.model(), 0);
    return std::make_pair(std::move(candidates), std::move(eval));
  };
  const auto [cand_a, eval_a] = run_with(2, 1);
  const auto [cand_b, eval_b] = run_with(8, 4);
  util::set_global_threads(1);

  ASSERT_EQ(cand_a.size(), cand_b.size());
  for (std::size_t t = 0; t < cand_a.size(); ++t) {
    EXPECT_EQ(cand_a[t].task_id, cand_b[t].task_id);
    EXPECT_EQ(cand_a[t].truncated, cand_b[t].truncated);
    ASSERT_EQ(cand_a[t].candidates.size(), cand_b[t].candidates.size());
    for (std::size_t c = 0; c < cand_a[t].candidates.size(); ++c) {
      EXPECT_EQ(cand_a[t].candidates[c].text, cand_b[t].candidates[c].text);
      EXPECT_EQ(cand_a[t].candidates[c].score,
                cand_b[t].candidates[c].score);
    }
  }
  EXPECT_EQ(eval_a.train_mean_satisfied, eval_b.train_mean_satisfied);
  EXPECT_EQ(eval_a.val_mean_satisfied, eval_b.val_mean_satisfied);
  ASSERT_EQ(eval_a.per_task.size(), eval_b.per_task.size());
  for (std::size_t t = 0; t < eval_a.per_task.size(); ++t) {
    EXPECT_EQ(eval_a.per_task[t].first, eval_b.per_task[t].first);
    EXPECT_EQ(eval_a.per_task[t].second, eval_b.per_task[t].second);
  }
}

}  // namespace
}  // namespace dpoaf
