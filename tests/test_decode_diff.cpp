// Differential property test: the KV-cache DecodeSession must agree with
// the batch TinyGpt::forward across randomized model shapes (LoRA on and
// off). The two paths accumulate floats in different orders, so logits
// agree to ~1e-4, not bitwise — but greedy decodes must be token-identical
// whenever the argmax is not a float-tolerance near-tie.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "nn/decoder.hpp"
#include "nn/gpt.hpp"
#include "util/check.hpp"

namespace dpoaf {
namespace {

constexpr std::int64_t kVocab = 32;

nn::GptConfig random_config(Rng& rng) {
  nn::GptConfig cfg;
  cfg.vocab_size = kVocab;
  cfg.n_heads = static_cast<std::int64_t>(rng.between(1, 4));
  cfg.d_model = cfg.n_heads * static_cast<std::int64_t>(rng.between(4, 12));
  cfg.n_layers = static_cast<std::int64_t>(rng.between(1, 3));
  cfg.d_ff = static_cast<std::int64_t>(rng.between(8, 48));
  cfg.max_seq = static_cast<std::int64_t>(rng.between(8, 40));
  return cfg;
}

std::vector<int> random_prompt(Rng& rng, std::int64_t max_len) {
  std::vector<int> prompt(
      static_cast<std::size_t>(rng.between(1, max_len)));
  for (auto& t : prompt) t = static_cast<int>(rng.below(kVocab));
  return prompt;
}

// Feed `ids` token by token; every step's logits must match the matching
// row of the batch forward within tol.
void expect_logits_close(const nn::TinyGpt& model, const std::vector<int>& ids,
                         float tol = 1e-4f) {
  const auto batch = model.forward(nullptr, ids);
  ASSERT_EQ(batch.rows(), static_cast<std::int64_t>(ids.size()));
  ASSERT_EQ(batch.cols(), kVocab);
  nn::DecodeSession session(model);
  for (std::size_t t = 0; t < ids.size(); ++t) {
    const auto& cached = session.step(ids[t]);
    const float* row = batch.data() + static_cast<std::int64_t>(t) * kVocab;
    for (std::int64_t j = 0; j < kVocab; ++j)
      ASSERT_NEAR(cached[static_cast<std::size_t>(j)], row[j], tol)
          << "position " << t << " vocab " << j;
  }
}

// Greedy decode via the batch forward path (recompute the whole prefix
// every step, argmax with lowest-id tie-break). Returns false instead of a
// token when the top-2 gap is a float-tolerance near-tie — the cached path
// may legitimately pick the other side of such a tie.
bool batch_greedy_step(const nn::TinyGpt& model, const std::vector<int>& ids,
                       int* out) {
  const auto logits = model.forward(nullptr, ids);
  const float* row =
      logits.data() + (static_cast<std::int64_t>(ids.size()) - 1) * kVocab;
  const int best = nn::argmax_token(row, kVocab);
  float second = -1e30f;
  for (std::int64_t j = 0; j < kVocab; ++j)
    if (static_cast<int>(j) != best) second = std::max(second, row[j]);
  *out = best;
  return row[best] - second > 1e-3f;
}

void expect_greedy_identical(const nn::TinyGpt& model,
                             const std::vector<int>& prompt, int max_new,
                             int eos_id) {
  const auto cached = model.generate_greedy(prompt, max_new, eos_id);
  std::vector<int> ids = prompt;
  std::size_t compared = 0;
  const auto max_seq = model.config().max_seq;
  for (int step = 0; step < max_new; ++step) {
    if (static_cast<std::int64_t>(ids.size()) >= max_seq) break;
    int next = 0;
    if (!batch_greedy_step(model, ids, &next)) return;  // near-tie: stop here
    if (next == eos_id) break;
    ASSERT_LT(compared, cached.ids.size());
    EXPECT_EQ(cached.ids[compared], next) << "step " << step;
    ++compared;
    ids.push_back(next);
  }
}

TEST(DecodeDiff, LogitsMatchForwardAcrossRandomConfigs) {
  Rng rng(101);
  for (int trial = 0; trial < 12; ++trial) {
    const nn::GptConfig cfg = random_config(rng);
    nn::TinyGpt model(cfg, rng);
    const auto ids = random_prompt(rng, cfg.max_seq);
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_logits_close(model, ids);
  }
}

TEST(DecodeDiff, LogitsMatchForwardWithLora) {
  Rng rng(211);
  for (int trial = 0; trial < 8; ++trial) {
    const nn::GptConfig cfg = random_config(rng);
    nn::TinyGpt model(cfg, rng);
    model.enable_lora(static_cast<std::int64_t>(rng.between(1, 4)), 8.0f,
                      rng);
    const auto ids = random_prompt(rng, cfg.max_seq);
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_logits_close(model, ids);
  }
}

TEST(DecodeDiff, GreedyDecodesTokenIdentical) {
  Rng rng(307);
  for (int trial = 0; trial < 10; ++trial) {
    const nn::GptConfig cfg = random_config(rng);
    nn::TinyGpt model(cfg, rng);
    if (trial % 2 == 1)
      model.enable_lora(2, 8.0f, rng);
    const auto prompt = random_prompt(rng, std::max<std::int64_t>(1, cfg.max_seq / 2));
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_greedy_identical(model, prompt, 16, /*eos_id=*/1);
  }
}

TEST(DecodeDiff, PromptExactlyFillsContext) {
  Rng rng(401);
  const nn::GptConfig cfg = random_config(rng);
  nn::TinyGpt model(cfg, rng);
  std::vector<int> prompt(static_cast<std::size_t>(cfg.max_seq), 3);
  // The whole context is consumed by the prompt: generation truncates
  // immediately with zero tokens, and the session accepts exactly max_seq
  // steps.
  const auto gen = model.generate_greedy(prompt, 8, /*eos_id=*/-1);
  EXPECT_TRUE(gen.ids.empty());
  EXPECT_TRUE(gen.truncated);
  expect_logits_close(model, prompt);
  nn::DecodeSession session(model);
  for (const int t : prompt) session.step(t);
  EXPECT_EQ(session.position(), cfg.max_seq);
  EXPECT_THROW(session.step(0), ContractViolation);
}

TEST(DecodeDiff, SingleTokenPrompt) {
  Rng rng(503);
  for (int trial = 0; trial < 6; ++trial) {
    const nn::GptConfig cfg = random_config(rng);
    nn::TinyGpt model(cfg, rng);
    const std::vector<int> prompt = {static_cast<int>(rng.below(kVocab))};
    SCOPED_TRACE("trial " + std::to_string(trial));
    expect_logits_close(model, prompt);
    expect_greedy_identical(model, prompt, 8, /*eos_id=*/1);
  }
}

}  // namespace
}  // namespace dpoaf
