#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "util/check.hpp"

namespace dpoaf::core {
namespace {

// Micro configuration: exercises every pipeline stage in a few seconds.
PipelineConfig micro_config() {
  PipelineConfig cfg;
  cfg.seed = 11;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.corpus_samples_per_task = 6;
  cfg.pretrain.epochs = 2;
  cfg.responses_per_task = 4;
  cfg.candidates_from_catalog = true;  // deterministic candidates
  cfg.dpo.epochs = 4;
  cfg.dpo.checkpoint_every = 2;
  cfg.dpo.pairs_per_epoch = 16;
  cfg.dpo.lora_rank = 2;
  cfg.eval_samples_per_task = 2;
  cfg.eval_max_new_tokens = 24;
  return cfg;
}

TEST(Pipeline, ConstructionSizesModelToCorpus) {
  DpoAfPipeline pipe(micro_config());
  EXPECT_GT(pipe.tokenizer().vocab_size(), 40u);
  EXPECT_GT(pipe.model().config().max_seq, 40);
  EXPECT_EQ(pipe.model().config().vocab_size,
            static_cast<std::int64_t>(pipe.tokenizer().vocab_size()));
}

TEST(Pipeline, CatalogCandidatesMatchFormalFeedback) {
  DpoAfPipeline pipe(micro_config());
  const auto candidates = pipe.collect_candidates();
  // Training tasks only.
  EXPECT_EQ(candidates.size(), 5u);
  for (const auto& tc : candidates) {
    const auto& task = pipe.domain().task_by_id(tc.task_id);
    EXPECT_TRUE(task.training);
    ASSERT_EQ(tc.candidates.size(), task.variants.size());
    for (std::size_t i = 0; i < tc.candidates.size(); ++i) {
      EXPECT_EQ(tc.candidates[i].score,
                pipe.score_response(task, task.variants[i].text));
    }
  }
}

TEST(Pipeline, SamplingRequiresPretraining) {
  auto cfg = micro_config();
  cfg.candidates_from_catalog = false;
  DpoAfPipeline pipe(cfg);
  EXPECT_THROW((void)pipe.collect_candidates(), ContractViolation);
}

TEST(Pipeline, PairsAreBuiltAcrossTrainingTasks) {
  DpoAfPipeline pipe(micro_config());
  const auto pairs = pipe.build_pairs(pipe.collect_candidates());
  EXPECT_GT(pairs.size(), 50u);  // catalog variants give many ordered pairs
  for (const auto& pair : pairs)
    EXPECT_GT(pair.score_chosen, pair.score_rejected);
}

TEST(Pipeline, FullRunProducesFigureSeries) {
  DpoAfPipeline pipe(micro_config());
  pipe.pretrain_model();
  const auto result = pipe.run_dpo(pipe.build_pairs(pipe.collect_candidates()));

  // Figure 8 series: one row per epoch.
  ASSERT_EQ(result.metrics.size(), 4u);
  for (const auto& m : result.metrics) {
    EXPECT_GE(m.loss, 0.0);
    EXPECT_GE(m.accuracy, 0.0);
    EXPECT_LE(m.accuracy, 1.0);
  }
  // Figure 9 series: checkpoints at 0, 2, 4.
  ASSERT_EQ(result.checkpoints.size(), 3u);
  EXPECT_EQ(result.checkpoints[0].epoch, 0);
  EXPECT_EQ(result.checkpoints[1].epoch, 2);
  EXPECT_EQ(result.checkpoints[2].epoch, 4);
  for (const auto& ckpt : result.checkpoints) {
    EXPECT_EQ(ckpt.per_task.size(), pipe.domain().tasks().size());
    EXPECT_GE(ckpt.train_mean_satisfied, 0.0);
    EXPECT_LE(ckpt.train_mean_satisfied, 15.0);
    EXPECT_GE(ckpt.val_mean_satisfied, 0.0);
    EXPECT_LE(ckpt.val_mean_satisfied, 15.0);
  }
  EXPECT_GT(result.pair_count, 0u);
}

TEST(Pipeline, EvaluationIsDeterministicPerSeedAndEpoch) {
  DpoAfPipeline pipe(micro_config());
  const auto a = pipe.evaluate_model(pipe.model(), 7);
  const auto b = pipe.evaluate_model(pipe.model(), 7);
  ASSERT_EQ(a.per_task.size(), b.per_task.size());
  for (std::size_t i = 0; i < a.per_task.size(); ++i)
    EXPECT_EQ(a.per_task[i].second, b.per_task[i].second);
}

TEST(Pipeline, EvaluationRejectsZeroSamplesPerTask) {
  // Regression: eval_samples_per_task == 0 used to divide by zero and
  // poison CheckpointEval means with NaN; it must fail loudly instead.
  auto cfg = micro_config();
  cfg.eval_samples_per_task = 0;
  DpoAfPipeline pipe(cfg);
  EXPECT_THROW((void)pipe.evaluate_model(pipe.model(), 0), ContractViolation);
}

TEST(Pipeline, EvaluationReportsAlignmentFailuresExplicitly) {
  DpoAfPipeline pipe(micro_config());
  const auto eval = pipe.evaluate_model(pipe.model(), 0);
  const auto& tasks = pipe.domain().tasks();
  ASSERT_EQ(eval.per_task_alignment_failure.size(), tasks.size());

  double train_fail = 0.0, val_fail = 0.0;
  std::size_t train_n = 0, val_n = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const double rate = eval.per_task_alignment_failure[i];
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
    if (tasks[i].training) {
      train_fail += rate;
      ++train_n;
    } else {
      val_fail += rate;
      ++val_n;
    }
  }
  EXPECT_NEAR(eval.train_alignment_failure_rate,
              train_fail / static_cast<double>(train_n), 1e-12);
  EXPECT_NEAR(eval.val_alignment_failure_rate,
              val_fail / static_cast<double>(val_n), 1e-12);
  EXPECT_GE(eval.truncated_responses, 0);
  // An untrained model emits mostly unalignable text; the clamped mean no
  // longer hides that — the explicit failure rate reports it.
  EXPECT_GT(eval.train_alignment_failure_rate, 0.0);
}

TEST(Pipeline, RunResultCarriesCacheStatistics) {
  DpoAfPipeline pipe(micro_config());  // feedback_cache defaults to on
  pipe.pretrain_model();
  const auto result =
      pipe.run_dpo(pipe.build_pairs(pipe.collect_candidates()));
  // Catalog candidates + checkpoint evals re-verify the same spec set;
  // both memoization tiers must have seen traffic, and the Büchi tier must
  // have hit (the 15 rulebook formulas recur on every verification).
  EXPECT_GT(result.buchi_cache_stats.hits, 0u);
  EXPECT_GT(result.feedback_cache_stats.hits +
                result.feedback_cache_stats.misses,
            0u);
  // Re-scoring a text already seen by collect_candidates is a cache hit.
  const auto before = pipe.domain().feedback_cache_stats();
  const auto& task = pipe.domain().task_by_id("turn_right_traffic_light");
  (void)pipe.score_response(task, task.variants[0].text);
  const auto after = pipe.domain().feedback_cache_stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST(Pipeline, ScoreResponseMatchesDomainFeedback) {
  DpoAfPipeline pipe(micro_config());
  const auto& task = pipe.domain().task_by_id("turn_right_traffic_light");
  EXPECT_EQ(pipe.score_response(task, driving::paper_right_turn_after()), 15);
  EXPECT_EQ(pipe.score_response(task, "gibberish that cannot align"), -1);
}

// Regression: a phase that never ran must not appear in the trace. An
// empty build_pairs() call used to emit a "ranking" span anyway, charging
// call overhead to a phase with zero work and double-counting wall time
// in the RunReport phase rollup.
TEST(Pipeline, EmptyPhasesEmitNoSpans) {
  auto cfg = micro_config();
  cfg.observability = true;
  DpoAfPipeline pipe(cfg);
  (void)obs::drain_trace();  // isolate from spans of earlier tests
  const auto pairs = pipe.build_pairs({});
  EXPECT_TRUE(pairs.empty());
  for (const auto& event : obs::drain_trace())
    EXPECT_NE(event.name, "ranking") << "empty ranking phase emitted a span";
  // A non-empty input still traces the phase.
  (void)pipe.build_pairs(pipe.collect_candidates());
  bool saw_ranking = false;
  for (const auto& event : obs::drain_trace())
    if (event.name == "ranking") saw_ranking = true;
  EXPECT_TRUE(saw_ranking);
  obs::set_enabled(false);
  obs::clear_trace();
}

}  // namespace
}  // namespace dpoaf::core
