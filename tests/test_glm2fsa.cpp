#include <gtest/gtest.h>

#include "glm2fsa/aligner.hpp"
#include "glm2fsa/builder.hpp"
#include "glm2fsa/semantic_parser.hpp"
#include "util/check.hpp"

namespace dpoaf::glm2fsa {
namespace {

using automata::Guard;
using logic::Vocabulary;

class Glm2FsaTest : public ::testing::Test {
 protected:
  Glm2FsaTest()
      : vocab_(logic::make_driving_vocabulary()),
        aligner_(make_driving_aligner(vocab_)) {
    green_ = *vocab_.find("green_traffic_light");
    green_left_ = *vocab_.find("green_left_turn_light");
    car_left_ = *vocab_.find("car_from_left");
    ped_right_ = *vocab_.find("pedestrian_at_right");
    opposite_ = *vocab_.find("opposite_car");
    stop_ = *vocab_.find("stop");
    turn_right_ = *vocab_.find("turn_right");
    go_ = *vocab_.find("go_straight");
  }

  BuildOptions opts() const {
    BuildOptions o;
    o.wait_action = Vocabulary::bit(stop_);
    return o;
  }

  Vocabulary vocab_;
  PhraseAligner aligner_;
  int green_ = 0, green_left_ = 0, car_left_ = 0, ped_right_ = 0,
      opposite_ = 0, stop_ = 0, turn_right_ = 0, go_ = 0;
};

// -------------------------------------------------------------- aligner ---

TEST_F(Glm2FsaTest, AlignsCanonicalNames) {
  EXPECT_EQ(aligner_.align("green_traffic_light"), green_);
  EXPECT_EQ(aligner_.align("green traffic light"), green_);
}

TEST_F(Glm2FsaTest, AlignsSynonyms) {
  EXPECT_EQ(aligner_.align("oncoming traffic"), opposite_);
  EXPECT_EQ(aligner_.align("left approaching car"), car_left_);
  EXPECT_EQ(aligner_.align("right side pedestrian"), ped_right_);
  EXPECT_EQ(aligner_.align("proceed forward"), go_);
}

TEST_F(Glm2FsaTest, AlignsByContainment) {
  EXPECT_EQ(aligner_.align("observe the green traffic light ahead of you"),
            green_);
  EXPECT_EQ(aligner_.align("the car from the left is approaching"),
            car_left_);
}

TEST_F(Glm2FsaTest, ContainmentPrefersLongestForm) {
  // "the left-turn light turns green" contains both "light turns green"
  // (green_traffic_light) and the longer left-turn-light form; the longer
  // one must win (regression test for the App. C left-turn demo).
  EXPECT_EQ(aligner_.align("the left-turn light turns green"), green_left_);
}

TEST_F(Glm2FsaTest, FuzzyMatchToleratesTypos) {
  EXPECT_EQ(aligner_.align("green trafic light"), green_);
  EXPECT_EQ(aligner_.align("pedestrain at right"), ped_right_);
}

TEST_F(Glm2FsaTest, UnalignablePhrasesReturnNullopt) {
  EXPECT_FALSE(aligner_.align("quantum flux capacitor").has_value());
  EXPECT_FALSE(aligner_.align("").has_value());
}

TEST_F(Glm2FsaTest, ArticlesAreIgnored) {
  EXPECT_EQ(aligner_.align("the state of the green traffic light"), green_);
}

// --------------------------------------------------------------- parser ---

TEST_F(Glm2FsaTest, SplitStepsHandlesNumberingStyles) {
  const auto steps = split_steps("1. First.\n2) Second.\n\nThird line.\n");
  ASSERT_EQ(steps.size(), 3u);
  EXPECT_EQ(steps[0], "First.");
  EXPECT_EQ(steps[1], "Second.");
  EXPECT_EQ(steps[2], "Third line.");
}

TEST_F(Glm2FsaTest, ParsesObserveStep) {
  const auto r = parse_response("1. Observe the traffic light.", aligner_);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.steps.size(), 1u);
  EXPECT_EQ(r.steps[0].kind, StepKind::Observe);
  EXPECT_EQ(r.steps[0].observed_prop, green_);
}

TEST_F(Glm2FsaTest, ParsesConditionalWithAction) {
  const auto r = parse_response(
      "1. If the green traffic light is on and no car from the left, "
      "turn right.",
      aligner_);
  ASSERT_TRUE(r.ok());
  const ParsedStep& s = r.steps[0];
  EXPECT_EQ(s.kind, StepKind::Conditional);
  ASSERT_EQ(s.condition.size(), 2u);
  EXPECT_EQ(s.condition[0].prop, green_);
  EXPECT_FALSE(s.condition[0].negated);
  EXPECT_EQ(s.condition[1].prop, car_left_);
  EXPECT_TRUE(s.condition[1].negated);
  EXPECT_EQ(s.consequence, ConsequenceKind::EmitAction);
  EXPECT_EQ(s.action, Vocabulary::bit(turn_right_));
}

TEST_F(Glm2FsaTest, ParsesConditionalWithCheckConsequence) {
  const auto r = parse_response(
      "1. If the car from left is not present, check the state of the "
      "pedestrian at right.",
      aligner_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.steps[0].consequence, ConsequenceKind::Proceed);
  EXPECT_TRUE(r.steps[0].condition[0].negated);
}

TEST_F(Glm2FsaTest, ParsesWaitUntilStep) {
  const auto r =
      parse_response("1. Wait until no car from the left.", aligner_);
  ASSERT_TRUE(r.ok());
  const ParsedStep& s = r.steps[0];
  EXPECT_EQ(s.kind, StepKind::Conditional);
  EXPECT_EQ(s.consequence, ConsequenceKind::Proceed);
  ASSERT_EQ(s.condition.size(), 1u);
  EXPECT_EQ(s.condition[0].prop, car_left_);
  EXPECT_TRUE(s.condition[0].negated);
}

TEST_F(Glm2FsaTest, ParsesBareAndCompoundActions) {
  const auto r = parse_response(
      "1. Turn right.\n2. Turn left and proceed through the intersection.",
      aligner_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.steps[0].action, Vocabulary::bit(turn_right_));
  EXPECT_EQ(r.steps[1].action,
            Vocabulary::bit(*vocab_.find("turn_left")));
}

TEST_F(Glm2FsaTest, NegationCues) {
  for (const char* text :
       {"1. If there is no car from the left, turn right.",
        "1. If the car from the left is not present, turn right.",
        "1. If the road is clear of traffic from the left, turn right."}) {
    const auto r = parse_response(text, aligner_);
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_TRUE(r.steps[0].condition[0].negated) << text;
    EXPECT_EQ(r.steps[0].condition[0].prop, car_left_) << text;
  }
}

TEST_F(Glm2FsaTest, RedLightParsesAsNegatedGreen) {
  const auto r =
      parse_response("1. If the traffic light is red, stop.", aligner_);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.steps[0].condition[0].prop, green_);
  EXPECT_TRUE(r.steps[0].condition[0].negated);
  EXPECT_EQ(r.steps[0].action, Vocabulary::bit(stop_));
}

TEST_F(Glm2FsaTest, UnalignableConditionIsAnIssue) {
  const auto r = parse_response(
      "1. If the froomulator is engaged, turn right.", aligner_);
  EXPECT_FALSE(r.ok());
  ASSERT_FALSE(r.issues.empty());
  EXPECT_EQ(r.issues[0].message, "unalignable condition phrase");
}

TEST_F(Glm2FsaTest, ContradictoryConditionIsAnIssue) {
  const auto r = parse_response(
      "1. If the car from the left and no car from the left, turn right.",
      aligner_);
  EXPECT_FALSE(r.ok());
}

TEST_F(Glm2FsaTest, ConditionalWithoutConsequenceIsAnIssue) {
  const auto r = parse_response("1. If the green traffic light", aligner_);
  EXPECT_FALSE(r.ok());
}

TEST_F(Glm2FsaTest, EmptyResponseIsAnIssue) {
  const auto r = parse_response("", aligner_);
  EXPECT_FALSE(r.ok());
}

TEST_F(Glm2FsaTest, ActionAsConditionIsAnIssue) {
  const auto r =
      parse_response("1. If turn right, go straight.", aligner_);
  EXPECT_FALSE(r.ok());
}

// -------------------------------------------------------------- builder ---

TEST_F(Glm2FsaTest, BuilderWiresStatesAndWrapsToInitial) {
  const auto result = glm2fsa(
      "1. Observe the traffic light.\n"
      "2. If the green traffic light is on, go straight.",
      aligner_, opts());
  ASSERT_TRUE(result.parsed.ok());
  const auto& c = result.controller;
  EXPECT_EQ(c.state_count(), 2u);
  EXPECT_EQ(c.initial(), 0);
  // q1 advances unconditionally emitting stop.
  const auto m1 = c.step(0, 0);
  EXPECT_EQ(m1.to, 1);
  EXPECT_EQ(m1.action, Vocabulary::bit(stop_));
  // q2 waits without green…
  EXPECT_EQ(c.step(1, 0).to, 1);
  // …and fires + wraps to q1 with green.
  const auto m2 = c.step(1, Vocabulary::bit(green_));
  EXPECT_EQ(m2.to, 0);
  EXPECT_EQ(m2.action, Vocabulary::bit(go_));
}

TEST_F(Glm2FsaTest, BuilderRejectsFailedParse) {
  ParsedResponse bad;
  bad.issues.push_back({0, "x", "y"});
  EXPECT_THROW(build_controller(bad, opts()), ContractViolation);
}

TEST_F(Glm2FsaTest, SingleActionStepSelfLoops) {
  const auto result = glm2fsa("1. Turn right immediately.", aligner_, opts());
  ASSERT_TRUE(result.parsed.ok());
  const auto& c = result.controller;
  EXPECT_EQ(c.state_count(), 1u);
  const auto m = c.step(0, 0);
  EXPECT_EQ(m.to, 0);  // wraps to itself: turns forever
  EXPECT_EQ(m.action, Vocabulary::bit(turn_right_));
}

TEST_F(Glm2FsaTest, GuardCollectsAllLiterals) {
  const auto result = glm2fsa(
      "1. If no car from the left and no pedestrian on the right and the "
      "green traffic light is on, turn right.",
      aligner_, opts());
  ASSERT_TRUE(result.parsed.ok());
  const auto& t = result.controller.transitions();
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].guard.must_true, Vocabulary::bit(green_));
  EXPECT_EQ(t[0].guard.must_false,
            Vocabulary::bit(car_left_) | Vocabulary::bit(ped_right_));
}

}  // namespace
}  // namespace dpoaf::glm2fsa
