// Checkpoint subsystem tests: binary framing (CRC32, little-endian
// primitives), corruption/truncation/version rejection, full
// TrainingCheckpoint round-trips (zero-size tensors, LoRA on/off),
// atomic save/load, retained-last-K rotation, and resume-path
// resolution. The end-to-end bitwise resume properties live in
// tests/test_properties.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>

#include "ckpt/checkpoint.hpp"
#include "ckpt/format.hpp"
#include "ckpt/store.hpp"
#include "nn/gpt.hpp"

namespace dpoaf {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(Crc32Test, MatchesIeee8023TestVector) {
  const char* s = "123456789";
  EXPECT_EQ(ckpt::crc32(reinterpret_cast<const std::uint8_t*>(s), 9),
            0xCBF43926u);
  EXPECT_EQ(ckpt::crc32(nullptr, 0), 0u);
}

TEST(ByteCodecTest, PrimitivesRoundTripBitExactly) {
  ckpt::ByteWriter w;
  w.u8(0xAB);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f32(-0.0f);
  w.f64(std::numeric_limits<double>::quiet_NaN());
  w.str("hello world");
  w.floats({1.5f, -2.25f, 0.0f});
  w.doubles({3.14159, -1e300});
  w.u64s({7, 0, 0xFFFFFFFFFFFFFFFFull});
  w.ints({-1, 0, 1});

  ckpt::ByteReader r(w.buffer().data(), w.buffer().size(), "test payload");
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  const float neg_zero = r.f32();
  EXPECT_EQ(std::bit_cast<std::uint32_t>(neg_zero),
            std::bit_cast<std::uint32_t>(-0.0f));
  EXPECT_TRUE(std::isnan(r.f64()));
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.floats(), (std::vector<float>{1.5f, -2.25f, 0.0f}));
  EXPECT_EQ(r.doubles(), (std::vector<double>{3.14159, -1e300}));
  EXPECT_EQ(r.u64s(), (std::vector<std::uint64_t>{7, 0, 0xFFFFFFFFFFFFFFFFull}));
  EXPECT_EQ(r.ints(), (std::vector<int>{-1, 0, 1}));
  EXPECT_NO_THROW(r.expect_done());
}

TEST(ByteCodecTest, ReaderRejectsOverruns) {
  ckpt::ByteWriter w;
  w.u32(7);
  ckpt::ByteReader r(w.buffer().data(), w.buffer().size(), "tiny payload");
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), ckpt::CheckpointError);
}

TEST(ByteCodecTest, ReaderRejectsHugeBogusElementCount) {
  // A corrupted length prefix must fail fast, not allocate.
  ckpt::ByteWriter w;
  w.u64(0xFFFFFFFFFFFFFFFFull);
  ckpt::ByteReader r(w.buffer().data(), w.buffer().size(), "bogus count");
  EXPECT_THROW((void)r.floats(), ckpt::CheckpointError);
}

TEST(TensorSerdeTest, RoundTripsIncludingZeroSize) {
  ckpt::ByteWriter w;
  ckpt::write_tensor(w, tensor::Tensor::from({2, 3},
                                             {1, 2, 3, 4, 5, 6}));
  ckpt::write_tensor(w, tensor::Tensor::from({0, 5}, {}));
  ckpt::ByteReader r(w.buffer().data(), w.buffer().size(), "tensors");
  const tensor::Tensor a = ckpt::read_tensor(r);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.cols(), 3);
  EXPECT_EQ(a.data()[5], 6.0f);
  const tensor::Tensor b = ckpt::read_tensor(r);
  EXPECT_EQ(b.rows(), 0);
  EXPECT_EQ(b.cols(), 5);
  EXPECT_EQ(b.numel(), 0);
  EXPECT_NO_THROW(r.expect_done());
}

TEST(TensorSerdeTest, RejectsShapeDataMismatch) {
  ckpt::ByteWriter w;
  w.i64(2);
  w.i64(2);
  w.u64(3);  // claims 3 floats for a 2x2 shape
  for (int i = 0; i < 3; ++i) w.f32(0.0f);
  ckpt::ByteReader r(w.buffer().data(), w.buffer().size(), "bad tensor");
  EXPECT_THROW((void)ckpt::read_tensor(r), ckpt::CheckpointError);
}

// ------------------------------------------------------------ framing ---

std::vector<ckpt::Section> sample_sections() {
  ckpt::ByteWriter a;
  a.str("alpha");
  ckpt::ByteWriter b;  // empty payload is legal
  return {{"AAAA", a.take()}, {"BBBB", b.take()}};
}

TEST(SectionsTest, PackUnpackRoundTrips) {
  const auto bytes = ckpt::pack_sections(sample_sections());
  const auto sections = ckpt::unpack_sections(bytes.data(), bytes.size());
  ASSERT_EQ(sections.size(), 2u);
  EXPECT_EQ(sections[0].tag, "AAAA");
  EXPECT_EQ(sections[1].tag, "BBBB");
  EXPECT_TRUE(sections[1].payload.empty());
}

TEST(SectionsTest, RejectsBadMagic) {
  auto bytes = ckpt::pack_sections(sample_sections());
  bytes[0] = 'X';
  try {
    (void)ckpt::unpack_sections(bytes.data(), bytes.size());
    FAIL() << "bad magic accepted";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos);
  }
}

TEST(SectionsTest, RejectsFutureSchemaVersion) {
  auto bytes = ckpt::pack_sections(sample_sections());
  // The u32 version sits right after the 4-byte magic (little-endian).
  bytes[4] = static_cast<std::uint8_t>(ckpt::kSchemaVersion + 1);
  try {
    (void)ckpt::unpack_sections(bytes.data(), bytes.size());
    FAIL() << "future version accepted";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("newer than this build"),
              std::string::npos);
  }
}

TEST(SectionsTest, RejectsCorruptedPayload) {
  auto bytes = ckpt::pack_sections(sample_sections());
  bytes.back() ^= 0x01;  // flip a bit inside the last payload
  try {
    (void)ckpt::unpack_sections(bytes.data(), bytes.size());
    FAIL() << "corruption accepted";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("CRC mismatch"), std::string::npos);
  }
}

TEST(SectionsTest, RejectsTruncatedFile) {
  auto bytes = ckpt::pack_sections(sample_sections());
  bytes.resize(bytes.size() - 3);
  EXPECT_THROW((void)ckpt::unpack_sections(bytes.data(), bytes.size()),
               ckpt::CheckpointError);
}

TEST(SectionsTest, RejectsTrailingGarbage) {
  auto bytes = ckpt::pack_sections(sample_sections());
  bytes.push_back(0x00);
  EXPECT_THROW((void)ckpt::unpack_sections(bytes.data(), bytes.size()),
               ckpt::CheckpointError);
}

// ----------------------------------------------------------- document ---

ckpt::TrainingCheckpoint sample_checkpoint() {
  ckpt::TrainingCheckpoint c;
  c.stage = ckpt::Stage::kDpo;
  c.completed_epochs = 7;
  c.pipeline_seed = 23;
  c.model_config = {/*vocab_size=*/11, /*d_model=*/8, /*n_heads=*/2,
                    /*n_layers=*/1, /*d_ff=*/16, /*max_seq=*/12,
                    /*init_scale=*/0.02f};
  c.lora_rank = 2;
  c.lora_alpha = 4.0f;
  c.vocab = {"<s>", "</s>", "go", "stop"};
  c.policy_state = {0.25f, -1.0f, 3.5f};
  c.reference_state = {0.0f, 0.125f};
  c.opt_m = {{1.0f, 2.0f}, {}};
  c.opt_v = {{0.5f, 0.25f}, {}};
  c.opt_steps = 99;
  c.rng_state = {1, 2, 3, 4};
  c.order = {2, 0, 1};
  c.dpo_history = {{1, 0.5, 0.75, 0.1, -0.01}};
  ckpt::EvalRecord eval;
  eval.epoch = 5;
  eval.train_mean_satisfied = 12.5;
  eval.val_mean_satisfied = 11.0;
  eval.train_alignment_failure_rate = 0.125;
  eval.val_alignment_failure_rate = 0.0;
  eval.truncated_responses = 2;
  eval.per_task = {{"merge", 13.0}, {"stop_sign", 12.0}};
  eval.per_task_alignment_failure = {0.0, 0.25};
  c.evals = {eval};
  dpo::PreferencePair pair;
  pair.task_id = "merge";
  pair.chosen = {0, 2, 1};
  pair.rejected = {0, 3, 1};
  pair.prompt_len = 1;
  pair.score_chosen = 13;
  pair.score_rejected = 4;
  c.pairs = {pair};
  c.pretrain_losses = {2.5, 1.25};
  return c;
}

void expect_checkpoints_equal(const ckpt::TrainingCheckpoint& a,
                              const ckpt::TrainingCheckpoint& b) {
  EXPECT_EQ(a.stage, b.stage);
  EXPECT_EQ(a.completed_epochs, b.completed_epochs);
  EXPECT_EQ(a.pipeline_seed, b.pipeline_seed);
  EXPECT_EQ(a.model_config.vocab_size, b.model_config.vocab_size);
  EXPECT_EQ(a.model_config.d_model, b.model_config.d_model);
  EXPECT_EQ(a.model_config.n_heads, b.model_config.n_heads);
  EXPECT_EQ(a.model_config.n_layers, b.model_config.n_layers);
  EXPECT_EQ(a.model_config.d_ff, b.model_config.d_ff);
  EXPECT_EQ(a.model_config.max_seq, b.model_config.max_seq);
  EXPECT_EQ(std::bit_cast<std::uint32_t>(a.model_config.init_scale),
            std::bit_cast<std::uint32_t>(b.model_config.init_scale));
  EXPECT_EQ(a.lora_rank, b.lora_rank);
  EXPECT_EQ(a.lora_alpha, b.lora_alpha);
  EXPECT_EQ(a.vocab, b.vocab);
  EXPECT_EQ(a.policy_state, b.policy_state);
  EXPECT_EQ(a.reference_state, b.reference_state);
  EXPECT_EQ(a.opt_m, b.opt_m);
  EXPECT_EQ(a.opt_v, b.opt_v);
  EXPECT_EQ(a.opt_steps, b.opt_steps);
  EXPECT_EQ(a.rng_state, b.rng_state);
  EXPECT_EQ(a.order, b.order);
  ASSERT_EQ(a.dpo_history.size(), b.dpo_history.size());
  for (std::size_t i = 0; i < a.dpo_history.size(); ++i) {
    EXPECT_EQ(a.dpo_history[i].epoch, b.dpo_history[i].epoch);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.dpo_history[i].loss),
              std::bit_cast<std::uint64_t>(b.dpo_history[i].loss));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a.dpo_history[i].kl),
              std::bit_cast<std::uint64_t>(b.dpo_history[i].kl));
  }
  ASSERT_EQ(a.evals.size(), b.evals.size());
  for (std::size_t i = 0; i < a.evals.size(); ++i) {
    EXPECT_EQ(a.evals[i].epoch, b.evals[i].epoch);
    EXPECT_EQ(a.evals[i].per_task, b.evals[i].per_task);
    EXPECT_EQ(a.evals[i].per_task_alignment_failure,
              b.evals[i].per_task_alignment_failure);
    EXPECT_EQ(a.evals[i].truncated_responses, b.evals[i].truncated_responses);
  }
  ASSERT_EQ(a.pairs.size(), b.pairs.size());
  for (std::size_t i = 0; i < a.pairs.size(); ++i) {
    EXPECT_EQ(a.pairs[i].task_id, b.pairs[i].task_id);
    EXPECT_EQ(a.pairs[i].chosen, b.pairs[i].chosen);
    EXPECT_EQ(a.pairs[i].rejected, b.pairs[i].rejected);
    EXPECT_EQ(a.pairs[i].prompt_len, b.pairs[i].prompt_len);
    EXPECT_EQ(a.pairs[i].score_chosen, b.pairs[i].score_chosen);
    EXPECT_EQ(a.pairs[i].score_rejected, b.pairs[i].score_rejected);
  }
  EXPECT_EQ(a.pretrain_losses, b.pretrain_losses);
}

TEST(CheckpointTest, SerializeDeserializeRoundTrips) {
  const auto original = sample_checkpoint();
  const auto bytes = ckpt::serialize(original);
  const auto restored = ckpt::deserialize(bytes.data(), bytes.size());
  expect_checkpoints_equal(original, restored);
}

TEST(CheckpointTest, RejectsMissingSection) {
  // Repack without the WPOL section; the reader must name what's missing.
  const auto bytes = ckpt::serialize(sample_checkpoint());
  auto sections = ckpt::unpack_sections(bytes.data(), bytes.size());
  sections.erase(std::remove_if(sections.begin(), sections.end(),
                                [](const ckpt::Section& s) {
                                  return s.tag == "WPOL";
                                }),
                 sections.end());
  const auto repacked = ckpt::pack_sections(sections);
  try {
    (void)ckpt::deserialize(repacked.data(), repacked.size());
    FAIL() << "missing section accepted";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("WPOL"), std::string::npos);
  }
}

TEST(CheckpointTest, LoraStateRoundTripsThroughModel) {
  // The flat policy snapshot must restore a LoRA-enabled model exactly,
  // and a LoRA-free model too (the two layouts have different lengths).
  nn::GptConfig cfg;
  cfg.vocab_size = 13;
  cfg.d_model = 8;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 16;
  cfg.max_seq = 12;
  for (const bool lora : {false, true}) {
    Rng rng(7);
    nn::TinyGpt model(cfg, rng);
    if (lora) model.enable_lora(2, 4.0f, rng);
    ckpt::TrainingCheckpoint c = sample_checkpoint();
    c.policy_state = model.state();
    const auto bytes = ckpt::serialize(c);
    const auto restored = ckpt::deserialize(bytes.data(), bytes.size());
    nn::TinyGpt clone = model.clone();
    clone.load_state(restored.policy_state);
    EXPECT_EQ(clone.state(), model.state()) << "lora=" << lora;
  }
}

TEST(CheckpointTest, SaveIsAtomicAndLoadable) {
  const fs::path dir = fresh_dir("ckpt_atomic");
  const fs::path path = dir / "snap.dpoaf";
  const auto original = sample_checkpoint();
  ckpt::save_checkpoint(path, original);
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(dir / "snap.dpoaf.tmp"));  // renamed away
  expect_checkpoints_equal(original, ckpt::load_checkpoint(path));
}

TEST(CheckpointTest, LoadRejectsTruncatedFile) {
  const fs::path dir = fresh_dir("ckpt_truncated");
  const fs::path path = dir / "snap.dpoaf";
  ckpt::save_checkpoint(path, sample_checkpoint());
  const auto size = fs::file_size(path);
  fs::resize_file(path, size / 2);
  EXPECT_THROW((void)ckpt::load_checkpoint(path), ckpt::CheckpointError);
}

TEST(CheckpointTest, DescribeFileListsSections) {
  const fs::path dir = fresh_dir("ckpt_describe");
  const fs::path path = dir / "snap.dpoaf";
  ckpt::save_checkpoint(path, sample_checkpoint());
  const std::string text = ckpt::describe_file(path);
  EXPECT_NE(text.find("META"), std::string::npos);
  EXPECT_NE(text.find("WPOL"), std::string::npos);
  EXPECT_NE(text.find("stage:"), std::string::npos);
  EXPECT_NE(text.find("dpo"), std::string::npos);
}

// -------------------------------------------------------------- store ---

TEST(StoreTest, RotationKeepsNewestKPerStage) {
  const fs::path dir = fresh_dir("ckpt_rotation");
  ckpt::CheckpointStore store(dir, /*retain_last=*/2);
  ckpt::TrainingCheckpoint c = sample_checkpoint();
  for (int epoch = 1; epoch <= 4; ++epoch) {
    c.stage = ckpt::Stage::kDpo;
    c.completed_epochs = epoch;
    store.write(c);
  }
  c.stage = ckpt::Stage::kPretrain;
  c.completed_epochs = 1;
  store.write(c);

  const auto dpo_files = ckpt::list_checkpoints(dir, ckpt::Stage::kDpo);
  ASSERT_EQ(dpo_files.size(), 2u);  // epochs 3 and 4 survive
  EXPECT_EQ(dpo_files[0].filename(), "ckpt-dpo-epoch-000003.dpoaf");
  EXPECT_EQ(dpo_files[1].filename(), "ckpt-dpo-epoch-000004.dpoaf");
  // Rotation is per stage: the pretrain snapshot is untouched.
  EXPECT_EQ(ckpt::list_checkpoints(dir, ckpt::Stage::kPretrain).size(), 1u);
}

TEST(StoreTest, ResolveResumePathPrefersNewestDpoSnapshot) {
  const fs::path dir = fresh_dir("ckpt_resolve");
  ckpt::CheckpointStore store(dir, /*retain_last=*/0);
  ckpt::TrainingCheckpoint c = sample_checkpoint();
  c.stage = ckpt::Stage::kPretrain;
  c.completed_epochs = 3;
  store.write(c);
  EXPECT_EQ(ckpt::resolve_resume_path(dir).filename(),
            "ckpt-pretrain-epoch-000003.dpoaf");
  c.stage = ckpt::Stage::kDpo;
  c.completed_epochs = 2;
  store.write(c);
  // A dpo snapshot supersedes pretrain regardless of epoch number.
  EXPECT_EQ(ckpt::resolve_resume_path(dir).filename(),
            "ckpt-dpo-epoch-000002.dpoaf");
  // Explicit file paths pass through untouched.
  const fs::path file = dir / "ckpt-dpo-epoch-000002.dpoaf";
  EXPECT_EQ(ckpt::resolve_resume_path(file), file);
}

TEST(StoreTest, ResolveResumePathRejectsEmptyDirAndMissingPath) {
  const fs::path dir = fresh_dir("ckpt_resolve_empty");
  EXPECT_THROW((void)ckpt::resolve_resume_path(dir), ckpt::CheckpointError);
  EXPECT_THROW((void)ckpt::resolve_resume_path(dir / "nope.dpoaf"),
               ckpt::CheckpointError);
}

TEST(StoreTest, ParseCrashPlanForms) {
  EXPECT_FALSE(ckpt::parse_crash_plan(nullptr).has_value());
  EXPECT_FALSE(ckpt::parse_crash_plan("").has_value());
  const auto bare = ckpt::parse_crash_plan("5");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->stage, ckpt::Stage::kDpo);
  EXPECT_EQ(bare->epoch, 5);
  const auto pre = ckpt::parse_crash_plan("pretrain:3");
  ASSERT_TRUE(pre.has_value());
  EXPECT_EQ(pre->stage, ckpt::Stage::kPretrain);
  EXPECT_EQ(pre->epoch, 3);
  const auto dpo_plan = ckpt::parse_crash_plan("dpo:7");
  ASSERT_TRUE(dpo_plan.has_value());
  EXPECT_EQ(dpo_plan->stage, ckpt::Stage::kDpo);
  EXPECT_EQ(dpo_plan->epoch, 7);
  EXPECT_THROW((void)ckpt::parse_crash_plan("bogus:1"),
               ckpt::CheckpointError);
  EXPECT_THROW((void)ckpt::parse_crash_plan("abc"), ckpt::CheckpointError);
  EXPECT_THROW((void)ckpt::parse_crash_plan("dpo:"), ckpt::CheckpointError);
}

TEST(StoreTest, MemorySinkCapturesSnapshots) {
  ckpt::MemorySink sink;
  ckpt::TrainingCheckpoint c = sample_checkpoint();
  sink.write(c);
  c.completed_epochs = 8;
  sink.write(c);
  ASSERT_EQ(sink.snapshots.size(), 2u);
  EXPECT_EQ(sink.snapshots[0].completed_epochs, 7);
  EXPECT_EQ(sink.snapshots[1].completed_epochs, 8);
}

}  // namespace
}  // namespace dpoaf
