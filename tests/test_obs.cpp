// Observability layer: metric registry exactness under contention, trace
// span nesting/ordering, the disabled-mode zero-footprint guarantee, and
// RunReport JSON round-tripping (the schema CI validates).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace {

using namespace dpoaf;

// Every test toggles the process-wide switch; restore it on exit so test
// order never matters.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { was_enabled_ = obs::enabled(); }
  void TearDown() override {
    obs::clear_trace();
    obs::set_enabled(was_enabled_);
  }

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsTest, CounterExactUnderConcurrentAdds) {
  obs::set_enabled(true);
  obs::Counter& c = obs::counter("test.obs.concurrent_counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(ObsTest, RegistryReturnsStableReferences) {
  obs::Counter& a = obs::counter("test.obs.stable");
  obs::Counter& b = obs::counter("test.obs.stable");
  EXPECT_EQ(&a, &b);
  // Distinct kinds under one name are distinct metrics.
  obs::Gauge& g = obs::gauge("test.obs.stable");
  EXPECT_NE(static_cast<void*>(&a), static_cast<void*>(&g));
}

TEST_F(ObsTest, RegistryLookupSafeUnderConcurrentRegistration) {
  obs::set_enabled(true);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  std::atomic<int> ready{0};
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&ready] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }
      // All threads race to create the same and different names.
      for (int i = 0; i < 200; ++i) {
        obs::counter("test.obs.race.shared").add();
        obs::counter("test.obs.race." + std::to_string(i % 16)).add();
      }
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(obs::counter("test.obs.race.shared").value(), kThreads * 200u);
}

TEST_F(ObsTest, GaugeRecordMaxKeepsHighWaterMark) {
  obs::set_enabled(true);
  obs::Gauge& g = obs::gauge("test.obs.gauge_max");
  g.reset();
  g.record_max(5);
  g.record_max(3);
  EXPECT_EQ(g.value(), 5);
  g.record_max(9);
  EXPECT_EQ(g.value(), 9);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
}

TEST_F(ObsTest, HistogramBucketsByBitWidth) {
  obs::set_enabled(true);
  obs::Histogram& h = obs::histogram("test.obs.hist");
  h.reset();
  h.record(0);    // bucket 0
  h.record(1);    // bit_width 1
  h.record(37);   // bit_width 6
  h.record(37);
  h.record(1023);  // bit_width 10
  const obs::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 5u);
  EXPECT_EQ(s.sum, 0u + 1 + 37 + 37 + 1023);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 1023u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[6], 2u);
  EXPECT_EQ(s.buckets[10], 1u);
}

TEST_F(ObsTest, DisabledRecordingIsANoOp) {
  obs::set_enabled(false);
  obs::Counter& c = obs::counter("test.obs.disabled_counter");
  c.reset();
  c.add(100);
  EXPECT_EQ(c.value(), 0u);
  obs::Gauge& g = obs::gauge("test.obs.disabled_gauge");
  g.reset();
  g.set(7);
  g.record_max(9);
  EXPECT_EQ(g.value(), 0);
  obs::Histogram& h = obs::histogram("test.obs.disabled_hist");
  h.reset();
  h.record(42);
  EXPECT_EQ(h.snapshot().count, 0u);
}

TEST_F(ObsTest, DisabledSpansLeaveNoTraceFootprint) {
  obs::set_enabled(false);
  obs::clear_trace();
  const std::size_t threads_before = obs::registered_trace_threads();
  const std::size_t events_before = obs::trace_event_count();
  // A fresh thread constructing only disarmed spans must not register a
  // buffer (the zero-allocation guarantee: no clock, no buffer, no lock).
  std::thread t([] {
    for (int i = 0; i < 100; ++i) {
      obs::Span span("disabled.span");
      EXPECT_FALSE(span.armed());
    }
  });
  t.join();
  EXPECT_EQ(obs::registered_trace_threads(), threads_before);
  EXPECT_EQ(obs::trace_event_count(), events_before);
}

TEST_F(ObsTest, SpanNestingRecordsDepthAndContainment) {
  obs::set_enabled(true);
  obs::clear_trace();
  {
    obs::Span outer("outer");
    ASSERT_TRUE(outer.armed());
    {
      obs::Span inner("inner");
      ASSERT_TRUE(inner.armed());
    }
    obs::Span sibling("sibling");
  }
  const std::vector<obs::TraceEvent> events = obs::drain_trace();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by start time: outer first, then its children in order.
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[2].name, "sibling");
  EXPECT_EQ(events[2].depth, 1u);
  // Containment: children start no earlier and end no later than outer.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].start_ns, events[0].start_ns);
    EXPECT_LE(events[i].start_ns + events[i].dur_ns,
              events[0].start_ns + events[0].dur_ns);
  }
  // One thread produced everything.
  EXPECT_EQ(events[1].tid, events[0].tid);
  EXPECT_EQ(events[2].tid, events[0].tid);
}

TEST_F(ObsTest, TraceMergesEventsFromExitedThreads) {
  obs::set_enabled(true);
  obs::clear_trace();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      obs::Span span("worker.span");
    });
  for (auto& t : threads) t.join();
  // The threads are gone; their buffers were adopted by the collector.
  const auto events = obs::drain_trace();
  EXPECT_EQ(events.size(), static_cast<std::size_t>(kThreads));
  for (const auto& e : events) EXPECT_EQ(e.name, "worker.span");
  // Sorted by start time.
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_GE(events[i].start_ns, events[i - 1].start_ns);
}

TEST_F(ObsTest, SpanWithHistogramRecordsDuration) {
  obs::set_enabled(true);
  obs::clear_trace();
  obs::Histogram& h = obs::histogram("test.obs.span_hist");
  h.reset();
  {
    obs::Span span("timed", h);
  }
  EXPECT_EQ(h.snapshot().count, 1u);
  EXPECT_EQ(obs::drain_trace().size(), 1u);
}

TEST_F(ObsTest, AggregatePhasesSumsByName) {
  std::vector<obs::TraceEvent> events;
  events.push_back({"b", 0, 0, 0, 10});
  events.push_back({"a", 0, 0, 5, 7});
  events.push_back({"b", 1, 0, 6, 20});
  const auto phases = obs::aggregate_phases(events);
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].name, "a");
  EXPECT_EQ(phases[0].spans, 1u);
  EXPECT_EQ(phases[0].total_ns, 7u);
  EXPECT_EQ(phases[1].name, "b");
  EXPECT_EQ(phases[1].spans, 2u);
  EXPECT_EQ(phases[1].total_ns, 30u);
}

TEST_F(ObsTest, SnapshotIsSortedByName) {
  obs::set_enabled(true);
  obs::counter("test.obs.sort.zz").add();
  obs::counter("test.obs.sort.aa").add();
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);
  for (std::size_t i = 1; i < snap.histograms.size(); ++i)
    EXPECT_LT(snap.histograms[i - 1].name, snap.histograms[i].name);
}

// ---------------------------------------------------------------------------
// RunReport serialization

obs::RunReport escape_heavy_report() {
  obs::RunReport report;
  report.tool = "test \"tool\"\\with\nescapes\tand\x01control";
  obs::CounterSample c;
  c.name = "counter.\"quoted\"";
  c.value = 18446744073709551615ull;  // max uint64 must survive exactly
  report.metrics.counters.push_back(c);
  obs::GaugeSample g;
  g.name = "gauge.negative";
  g.value = -42;
  report.metrics.gauges.push_back(g);
  obs::HistogramSample h;
  h.name = "hist\\back\\slash";
  h.snapshot.count = 3;
  h.snapshot.sum = 300;
  h.snapshot.min = 50;
  h.snapshot.max = 150;
  h.snapshot.buckets[6] = 2;
  h.snapshot.buckets[8] = 1;
  report.metrics.histograms.push_back(h);
  report.phases.push_back({"phase one", 4, 123456789});
  obs::add_series(report, "series.with\nnewline", {0.5, -1.25, 3e-17});
  report.trace.push_back({"span \"x\"", 2, 1, 1000, 2000});
  return report;
}

TEST_F(ObsTest, JsonRoundTripPreservesEverything) {
  const obs::RunReport report = escape_heavy_report();
  const std::string json = obs::to_json(report, /*include_trace=*/true);
  obs::RunReport parsed;
  ASSERT_TRUE(obs::from_json(json, parsed)) << json;

  EXPECT_EQ(parsed.version, report.version);
  EXPECT_EQ(parsed.tool, report.tool);
  ASSERT_EQ(parsed.metrics.counters.size(), 1u);
  EXPECT_EQ(parsed.metrics.counters[0].name, report.metrics.counters[0].name);
  EXPECT_EQ(parsed.metrics.counters[0].value,
            report.metrics.counters[0].value);
  ASSERT_EQ(parsed.metrics.gauges.size(), 1u);
  EXPECT_EQ(parsed.metrics.gauges[0].value, -42);
  ASSERT_EQ(parsed.metrics.histograms.size(), 1u);
  const auto& hs = parsed.metrics.histograms[0];
  EXPECT_EQ(hs.name, report.metrics.histograms[0].name);
  EXPECT_EQ(hs.snapshot.count, 3u);
  EXPECT_EQ(hs.snapshot.sum, 300u);
  EXPECT_EQ(hs.snapshot.min, 50u);
  EXPECT_EQ(hs.snapshot.max, 150u);
  EXPECT_EQ(hs.snapshot.buckets, report.metrics.histograms[0].snapshot.buckets);
  ASSERT_EQ(parsed.phases.size(), 1u);
  EXPECT_EQ(parsed.phases[0].name, "phase one");
  EXPECT_EQ(parsed.phases[0].spans, 4u);
  EXPECT_EQ(parsed.phases[0].total_ns, 123456789u);
  ASSERT_EQ(parsed.series.size(), 1u);
  EXPECT_EQ(parsed.series[0].name, report.series[0].name);
  EXPECT_EQ(parsed.series[0].values, report.series[0].values);
  ASSERT_EQ(parsed.trace.size(), 1u);
  EXPECT_EQ(parsed.trace[0].name, "span \"x\"");
  EXPECT_EQ(parsed.trace[0].tid, 2u);
  EXPECT_EQ(parsed.trace[0].depth, 1u);
  EXPECT_EQ(parsed.trace[0].start_ns, 1000u);
  EXPECT_EQ(parsed.trace[0].dur_ns, 2000u);

  // Serialization is deterministic: a second encode matches the first.
  EXPECT_EQ(obs::to_json(parsed, true), json);
}

TEST_F(ObsTest, JsonWithoutTraceDropsOnlyTheTrace) {
  const obs::RunReport report = escape_heavy_report();
  const std::string json = obs::to_json(report, /*include_trace=*/false);
  obs::RunReport parsed;
  ASSERT_TRUE(obs::from_json(json, parsed));
  EXPECT_TRUE(parsed.trace.empty());
  EXPECT_EQ(parsed.phases.size(), report.phases.size());
  EXPECT_EQ(parsed.metrics.counters.size(), report.metrics.counters.size());
}

TEST_F(ObsTest, FromJsonRejectsMalformedAndWrongSchema) {
  obs::RunReport out;
  EXPECT_FALSE(obs::from_json("", out));
  EXPECT_FALSE(obs::from_json("{", out));
  EXPECT_FALSE(obs::from_json("[]", out));
  EXPECT_FALSE(obs::from_json("{\"schema\":\"other\",\"version\":1}", out));
  EXPECT_FALSE(obs::from_json(
      "{\"schema\":\"dpoaf.run_report\",\"version\":1,\"tool\":\"x\"",
      out));  // truncated
}

TEST_F(ObsTest, ChromeTraceExportContainsEveryEvent) {
  obs::RunReport report;
  report.tool = "t";
  report.trace.push_back({"alpha", 1, 0, 1500, 2500});
  report.trace.push_back({"beta", 2, 1, 3000, 500});
  const std::string chrome = obs::to_chrome_trace(report);
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("\"alpha\""), std::string::npos);
  EXPECT_NE(chrome.find("\"beta\""), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);
  // ts/dur are microseconds: 1500 ns -> 1.5 µs.
  EXPECT_NE(chrome.find("1.5"), std::string::npos);
}

TEST_F(ObsTest, CaptureRunReportIsRepeatable) {
  obs::set_enabled(true);
  obs::clear_trace();
  obs::counter("test.obs.capture").add(3);
  {
    obs::Span span("capture.span");
  }
  const obs::RunReport a = obs::capture_run_report("test");
  const obs::RunReport b = obs::capture_run_report("test");
  // Snapshot, not drain: capturing twice sees the same trace.
  EXPECT_EQ(a.trace.size(), b.trace.size());
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.tool, "test");
}

}  // namespace
