#include <gtest/gtest.h>

#include <map>

#include "driving/domain.hpp"
#include "lm/pretrain.hpp"
#include "util/strings.hpp"

namespace dpoaf::lm {
namespace {

class LmTest : public ::testing::Test {
 protected:
  static const std::vector<driving::Task>& tasks() {
    static const std::vector<driving::Task> t = driving::task_catalog();
    return t;
  }
  static const Tokenizer& tok() {
    static const Tokenizer t = build_tokenizer(tasks());
    return t;
  }
};

TEST_F(LmTest, PromptFormatFollowsAppendixE) {
  const std::string p = format_prompt_text("turn right at the traffic light");
  EXPECT_EQ(p, "[INST] steps for turn right at the traffic light : [/INST]");
  const auto ids = encode_prompt(tok(), "turn right at the traffic light");
  EXPECT_EQ(ids.front(), tok().bos());
  EXPECT_EQ(ids.back(), tok().inst_close());
}

TEST_F(LmTest, EncodeExampleAppendsResponseAndEos) {
  const auto prompt = encode_prompt(tok(), tasks()[0].prompt);
  const auto full =
      encode_example(tok(), tasks()[0].prompt, tasks()[0].variants[0].text);
  EXPECT_GT(full.size(), prompt.size());
  EXPECT_EQ(full.back(), tok().eos());
  for (std::size_t i = 0; i < prompt.size(); ++i)
    EXPECT_EQ(full[i], prompt[i]);
}

TEST_F(LmTest, NoCatalogTextProducesUnkTokens) {
  // The tokenizer must cover the entire catalog: no variant text may
  // contain out-of-vocabulary words.
  for (const auto& task : tasks()) {
    for (const auto& variant : task.variants) {
      for (int id : tok().encode(variant.text))
        EXPECT_NE(id, tok().unk()) << task.id;
    }
  }
}

TEST_F(LmTest, VariantTextsSurviveTokenizerRoundTrip) {
  // decode(encode(text)) must re-parse to the same controller text shape
  // (lowercased); this is what lets sampled generations flow back into
  // GLM2FSA.
  for (const auto& task : tasks()) {
    for (const auto& variant : task.variants) {
      const std::string back = tok().decode(tok().encode(variant.text));
      EXPECT_EQ(back, to_lower(variant.text)) << task.id;
    }
  }
}

TEST_F(LmTest, CorpusRespectsWeights) {
  VariantWeights weights;  // defaults skew toward flaws
  Rng rng(5);
  const auto corpus = build_corpus(tasks(), tok(), 400, weights, rng);
  EXPECT_EQ(corpus.size(), tasks().size() * 400u);

  std::map<driving::FlawTag, int> counts;
  for (const auto& ex : corpus) counts[ex.tag]++;
  // Unaligned has the largest weight; Good one of the smallest.
  EXPECT_GT(counts[driving::FlawTag::Unaligned],
            counts[driving::FlawTag::Good] * 2);
  EXPECT_GT(counts[driving::FlawTag::Good], 0);
}

TEST_F(LmTest, CorpusPromptLenMatchesPrompt) {
  VariantWeights weights;
  Rng rng(6);
  const auto corpus = build_corpus(tasks(), tok(), 3, weights, rng);
  for (const auto& ex : corpus) {
    bool found = false;
    for (const auto& task : tasks()) {
      if (task.id != ex.task_id) continue;
      found = true;
      const auto prompt = encode_prompt(tok(), task.prompt);
      ASSERT_EQ(ex.prompt_len, static_cast<std::int64_t>(prompt.size()));
      // The sequence must literally start with the prompt.
      for (std::size_t i = 0; i < prompt.size(); ++i)
        EXPECT_EQ(ex.ids[i], prompt[i]);
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(LmTest, MaxSequenceLengthIsTight) {
  VariantWeights weights;
  Rng rng(7);
  const auto corpus = build_corpus(tasks(), tok(), 10, weights, rng);
  const std::int64_t mx = max_sequence_length(corpus);
  for (const auto& ex : corpus)
    EXPECT_LE(static_cast<std::int64_t>(ex.ids.size()), mx);
  EXPECT_GT(mx, 10);
}

TEST_F(LmTest, PretrainingReducesLoss) {
  VariantWeights weights;
  Rng rng(8);
  const auto corpus = build_corpus(tasks(), tok(), 6, weights, rng);

  nn::GptConfig cfg;
  cfg.vocab_size = static_cast<std::int64_t>(tok().vocab_size());
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.max_seq = max_sequence_length(corpus) + 2;
  nn::TinyGpt model(cfg, rng);

  PretrainConfig pt;
  pt.epochs = 6;
  const auto stats = pretrain(model, corpus, pt, rng);
  ASSERT_EQ(stats.epoch_losses.size(), 6u);
  EXPECT_LT(stats.epoch_losses.back(), stats.epoch_losses.front() * 0.9);
}

TEST_F(LmTest, SampledResponsesDecodeToText) {
  VariantWeights weights;
  Rng rng(9);
  const auto corpus = build_corpus(tasks(), tok(), 6, weights, rng);
  nn::GptConfig cfg;
  cfg.vocab_size = static_cast<std::int64_t>(tok().vocab_size());
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.max_seq = max_sequence_length(corpus) + 8;
  nn::TinyGpt model(cfg, rng);
  PretrainConfig pt;
  pt.epochs = 1;
  pretrain(model, corpus, pt, rng);

  SamplerConfig sc;
  sc.max_new_tokens = 16;
  const auto responses =
      sample_responses(model, tok(), tasks()[0].prompt, 3, sc, rng);
  ASSERT_EQ(responses.texts.size(), 3u);
  ASSERT_EQ(responses.truncated.size(), 3u);
  // Responses decode into plain text (may be low quality at 1 epoch —
  // that's fine; the feedback channel scores them).
  for (const auto& r : responses.texts) EXPECT_LT(r.size(), 400u);
}

TEST_F(LmTest, GreedyResponseIsDeterministic) {
  VariantWeights weights;
  Rng rng(10);
  const auto corpus = build_corpus(tasks(), tok(), 4, weights, rng);
  nn::GptConfig cfg;
  cfg.vocab_size = static_cast<std::int64_t>(tok().vocab_size());
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.max_seq = max_sequence_length(corpus) + 8;
  nn::TinyGpt model(cfg, rng);
  EXPECT_EQ(greedy_response(model, tok(), tasks()[0].prompt, 12),
            greedy_response(model, tok(), tasks()[0].prompt, 12));
}

}  // namespace
}  // namespace dpoaf::lm
