#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "logic/lasso_eval.hpp"
#include "logic/ltl.hpp"
#include "logic/ltlf.hpp"
#include "logic/parser.hpp"
#include "logic/vocabulary.hpp"
#include "util/rng.hpp"

namespace dpoaf::logic {
namespace {

using namespace dpoaf::logic::ltl;

class LogicTest : public ::testing::Test {
 protected:
  LogicTest() : vocab_(make_driving_vocabulary()) {
    a_ = *vocab_.find("green_traffic_light");
    b_ = *vocab_.find("car_from_left");
    c_ = *vocab_.find("stop");
  }
  Vocabulary vocab_;
  int a_ = 0, b_ = 0, c_ = 0;
};

TEST_F(LogicTest, VocabularyRegistersKinds) {
  EXPECT_EQ(vocab_.prop_count(), 10u);
  EXPECT_EQ(vocab_.action_count(), 4u);
  EXPECT_FALSE(vocab_.is_action(a_));
  EXPECT_TRUE(vocab_.is_action(c_));
}

TEST_F(LogicTest, VocabularyReRegisterReturnsSameIndex) {
  Vocabulary v;
  const int i = v.add_prop("x");
  EXPECT_EQ(v.add_prop("x"), i);
  EXPECT_THROW(v.add_action("x"), ContractViolation);
}

TEST_F(LogicTest, SymbolBitOperations) {
  const Symbol s = vocab_.make_symbol({"green_traffic_light", "stop"});
  EXPECT_TRUE(Vocabulary::has(s, a_));
  EXPECT_TRUE(Vocabulary::has(s, c_));
  EXPECT_FALSE(Vocabulary::has(s, b_));
}

TEST_F(LogicTest, EnvAndActionMasksPartition) {
  const Symbol env = vocab_.env_mask();
  const Symbol act = vocab_.action_mask();
  EXPECT_EQ(env & act, 0u);
  EXPECT_EQ(__builtin_popcountll(env), 10);
  EXPECT_EQ(__builtin_popcountll(act), 4);
}

TEST_F(LogicTest, FormatSymbolListsNames) {
  const Symbol s = vocab_.make_symbol({"stop_sign"});
  EXPECT_EQ(vocab_.format(s), "{stop_sign}");
}

TEST_F(LogicTest, MakeSymbolUnknownNameThrows) {
  EXPECT_THROW((void)vocab_.make_symbol({"no_such_prop"}), ContractViolation);
}

TEST_F(LogicTest, InterningGivesPointerEquality) {
  const Ltl f1 = always(implies(prop(a_), eventually(prop(c_))));
  const Ltl f2 = always(implies(prop(a_), eventually(prop(c_))));
  EXPECT_EQ(f1.get(), f2.get());
}

TEST_F(LogicTest, SimplificationsApply) {
  EXPECT_EQ(lnot(lnot(prop(a_))).get(), prop(a_).get());
  EXPECT_EQ(land(ltrue(), prop(a_)).get(), prop(a_).get());
  EXPECT_EQ(land(lfalse(), prop(a_)).get(), lfalse().get());
  EXPECT_EQ(lor(ltrue(), prop(a_)).get(), ltrue().get());
  EXPECT_EQ(lor(prop(a_), prop(a_)).get(), prop(a_).get());
}

TEST_F(LogicTest, NnfEliminatesDerivedOperators) {
  const Ltl f = lnot(always(implies(prop(a_), eventually(prop(b_)))));
  const Ltl nnf = to_nnf(f);
  // Check no Implies/Eventually/Always/non-literal Not remain.
  std::function<void(const Ltl&)> walk = [&](const Ltl& g) {
    ASSERT_NE(g->op, LtlOp::Implies);
    ASSERT_NE(g->op, LtlOp::Eventually);
    ASSERT_NE(g->op, LtlOp::Always);
    if (g->op == LtlOp::Not) {
      ASSERT_EQ(g->lhs->op, LtlOp::Prop);
    }
    if (g->lhs) walk(g->lhs);
    if (g->rhs) walk(g->rhs);
  };
  walk(nnf);
}

TEST_F(LogicTest, ParserRoundTripsThroughPrinter) {
  const char* inputs[] = {
      "G (pedestrian_in_front -> F stop)",
      "G (!green_traffic_light -> !go_straight)",
      "(car_from_left | pedestrian_at_right) -> !turn_right",
      "a_unknown_free_form",  // replaced below; placeholder skipped
  };
  for (int i = 0; i < 3; ++i) {
    const Ltl f = parse_ltl(inputs[i], vocab_);
    const Ltl g = parse_ltl(to_string(f, vocab_), vocab_);
    EXPECT_EQ(f.get(), g.get()) << inputs[i];
  }
}

TEST_F(LogicTest, ParserPrecedence) {
  // a | b & c  parses as  a | (b & c)
  const Ltl f = parse_ltl(
      "green_traffic_light | car_from_left & stop", vocab_);
  EXPECT_EQ(f->op, LtlOp::Or);
  EXPECT_EQ(f->rhs->op, LtlOp::And);
  // Implication is right-associative and lowest precedence.
  const Ltl g = parse_ltl("stop -> stop -> stop", vocab_);
  EXPECT_EQ(g->op, LtlOp::Implies);
  EXPECT_EQ(g->rhs->op, LtlOp::Implies);
}

TEST_F(LogicTest, ParserUnicodeSynonyms) {
  const Ltl f = parse_ltl("□(pedestrian_in_front → ◇ stop)", vocab_);
  const Ltl g = parse_ltl("G (pedestrian_in_front -> F stop)", vocab_);
  EXPECT_EQ(f.get(), g.get());
}

TEST_F(LogicTest, ParserErrors) {
  EXPECT_THROW(parse_ltl("G (", vocab_), ParseError);
  EXPECT_THROW(parse_ltl("unknown_prop_name", vocab_), ParseError);
  EXPECT_THROW(parse_ltl("stop stop", vocab_), ParseError);
  EXPECT_THROW(parse_ltl("", vocab_), ParseError);
}

TEST_F(LogicTest, UntilAndReleaseParse) {
  const Ltl f = parse_ltl("stop U green_traffic_light", vocab_);
  EXPECT_EQ(f->op, LtlOp::Until);
  const Ltl g = parse_ltl("stop R green_traffic_light", vocab_);
  EXPECT_EQ(g->op, LtlOp::Release);
}

// ---------------------------------------------------------------- LTLf ---

class LtlfTest : public LogicTest {
 protected:
  Symbol sym(std::initializer_list<std::string_view> names) {
    return vocab_.make_symbol(names);
  }
};

TEST_F(LtlfTest, AlwaysOnFiniteTrace) {
  const Ltl f = parse_ltl("G stop", vocab_);
  Trace all_stop(5, sym({"stop"}));
  EXPECT_TRUE(evaluate_ltlf(f, all_stop));
  all_stop[3] = 0;
  EXPECT_FALSE(evaluate_ltlf(f, all_stop));
}

TEST_F(LtlfTest, EventuallyOnFiniteTrace) {
  const Ltl f = parse_ltl("F green_traffic_light", vocab_);
  Trace t(4, 0);
  EXPECT_FALSE(evaluate_ltlf(f, t));
  t[3] = sym({"green_traffic_light"});
  EXPECT_TRUE(evaluate_ltlf(f, t));
}

TEST_F(LtlfTest, NextIsStrongAtLastPosition) {
  const Ltl f = parse_ltl("X stop", vocab_);
  const Trace t{sym({"stop"})};
  EXPECT_FALSE(evaluate_ltlf(f, t));  // no next position ⇒ false
  const Trace t2{0, sym({"stop"})};
  EXPECT_TRUE(evaluate_ltlf(f, t2));
}

TEST_F(LtlfTest, UntilRequiresWitness) {
  const Ltl f = parse_ltl("stop U green_traffic_light", vocab_);
  const Trace never{sym({"stop"}), sym({"stop"})};
  EXPECT_FALSE(evaluate_ltlf(f, never));  // ψ never holds on finite trace
  const Trace witness{sym({"stop"}), sym({"green_traffic_light"})};
  EXPECT_TRUE(evaluate_ltlf(f, witness));
}

TEST_F(LtlfTest, ReleaseHoldsWhenPsiHoldsToEnd) {
  const Ltl f = parse_ltl("green_traffic_light R stop", vocab_);
  const Trace t(3, sym({"stop"}));
  EXPECT_TRUE(evaluate_ltlf(f, t));
  const Trace t2{sym({"stop"}), 0, sym({"stop"})};
  EXPECT_FALSE(evaluate_ltlf(f, t2));
}

TEST_F(LtlfTest, PedestrianSpecOnTraces) {
  const Ltl phi1 = parse_ltl("G (pedestrian_in_front -> F stop)", vocab_);
  const Trace good{sym({"pedestrian_in_front"}), sym({"stop"})};
  const Trace bad{sym({"pedestrian_in_front"}), sym({"go_straight"})};
  EXPECT_TRUE(evaluate_ltlf(phi1, good));
  EXPECT_FALSE(evaluate_ltlf(phi1, bad));
}

TEST_F(LtlfTest, SatisfactionRateCountsFractions) {
  const Ltl f = parse_ltl("F stop", vocab_);
  std::vector<Trace> traces{
      {sym({"stop"})}, {Symbol{0}}, {Symbol{0}, sym({"stop"})}};
  EXPECT_NEAR(satisfaction_rate(f, traces), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(satisfaction_rate(f, {}), 0.0);
}

TEST_F(LtlfTest, SatisfactionRateExcludesEmptyTraces) {
  // An empty rollout carries no step to evaluate; it must leave the
  // denominator, not count as a violation. 2 satisfied / 3 evaluated.
  const Ltl f = parse_ltl("F stop", vocab_);
  std::vector<Trace> traces{
      {sym({"stop"})}, {Symbol{0}}, {Symbol{0}, sym({"stop"})}, {}};
  EXPECT_NEAR(satisfaction_rate(f, traces), 2.0 / 3.0, 1e-12);
}

TEST_F(LtlfTest, SatisfactionRateAllEmptyTracesThrows) {
  const Ltl f = parse_ltl("F stop", vocab_);
  const std::vector<Trace> all_empty{{}, {}, {}};
  EXPECT_THROW((void)satisfaction_rate(f, all_empty), ContractViolation);
}

TEST_F(LtlfTest, EmptyTraceRejected) {
  EXPECT_THROW(evaluate_ltlf(ltrue(), Trace{}), ContractViolation);
}

// Regression for the memo-key collision: the evaluator's cache used to
// flatten (node id, position) into `id * 1000003 + pos`, so formulas with
// consecutive interning ids collide at positions 1,000,003 apart —
// (a, 1000003) and (b, 0) share a key, and F b silently inherits F a's
// cached sub-verdict. With a true only at position 1,000,003 and b never
// true, the colliding scheme answered true for F a & F b; the correct
// verdict is false.
TEST_F(LtlfTest, MemoKeyCollisionOnMillionStepTrace) {
  const Ltl pa = prop(40);  // fresh, unused prop indices so the two nodes
  const Ltl pb = prop(41);  // are interned back-to-back
  ASSERT_EQ(pb->id, pa->id + 1)
      << "collision setup needs consecutive interning ids";
  const Ltl f = land(eventually(pa), eventually(pb));
  Trace t(1000004, Symbol{0});
  t[1000003] = Symbol{1} << 40;  // a holds only here; b never holds
  EXPECT_FALSE(evaluate_ltlf(f, t));
}

// ----------------------------------------------------------- lasso LTL ---

TEST_F(LogicTest, LassoAlwaysDependsOnCycleOnly) {
  const Ltl f = parse_ltl("G stop", vocab_);
  const Symbol s = vocab_.make_symbol({"stop"});
  // prefix violates G stop
  EXPECT_FALSE(evaluate_lasso(f, {{Symbol{0}}, {s}}));
  // prefix and cycle both satisfy it
  EXPECT_TRUE(evaluate_lasso(f, {{s}, {s}}));
  // cycle violates it
  EXPECT_FALSE(evaluate_lasso(f, {{s}, {s, Symbol{0}}}));
}

TEST_F(LogicTest, LassoEventuallyFindsWitnessInCycle) {
  const Ltl f = parse_ltl("F green_traffic_light", vocab_);
  const Symbol g = vocab_.make_symbol({"green_traffic_light"});
  EXPECT_TRUE(evaluate_lasso(f, {{}, {Symbol{0}, g}}));
  EXPECT_FALSE(evaluate_lasso(f, {{}, {Symbol{0}}}));
}

TEST_F(LogicTest, LassoInfinitelyOften) {
  const Ltl f = parse_ltl("G F stop", vocab_);
  const Symbol s = vocab_.make_symbol({"stop"});
  // stop only in the prefix: not infinitely often
  EXPECT_FALSE(evaluate_lasso(f, {{s}, {Symbol{0}}}));
  // stop once per cycle: infinitely often
  EXPECT_TRUE(evaluate_lasso(f, {{Symbol{0}}, {Symbol{0}, s}}));
}

TEST_F(LogicTest, LassoUntil) {
  const Ltl f = parse_ltl("stop U green_traffic_light", vocab_);
  const Symbol s = vocab_.make_symbol({"stop"});
  const Symbol g = vocab_.make_symbol({"green_traffic_light"});
  EXPECT_TRUE(evaluate_lasso(f, {{s, s}, {g}}));
  EXPECT_FALSE(evaluate_lasso(f, {{s, Symbol{0}}, {g}}));  // gap before ψ
  EXPECT_FALSE(evaluate_lasso(f, {{}, {s}}));              // ψ never holds
}

TEST_F(LogicTest, LassoNextWrapsIntoCycle) {
  const Ltl f = parse_ltl("G (stop -> X green_traffic_light)", vocab_);
  const Symbol s = vocab_.make_symbol({"stop"});
  const Symbol g = vocab_.make_symbol({"green_traffic_light"});
  // cycle = [stop, green]: stop at last-cycle position wraps to green? No —
  // position order is stop→green→stop→…, so X after stop is green. Holds.
  EXPECT_TRUE(evaluate_lasso(f, {{}, {s, g}}));
  // cycle = [stop, stop]: next of stop is stop, not green.
  EXPECT_FALSE(evaluate_lasso(f, {{}, {s, s}}));
}

TEST_F(LogicTest, LassoEmptyCycleRejected) {
  EXPECT_THROW(evaluate_lasso(ltrue(), {{Symbol{0}}, {}}), ContractViolation);
}

// Property: LTL negation is complement on any single lasso word.
TEST_F(LogicTest, PropertyLassoNegationIsComplement) {
  Rng rng(123);
  const std::vector<Ltl> atoms{prop(a_), prop(b_), prop(c_)};
  for (int trial = 0; trial < 200; ++trial) {
    // random small formula
    std::function<Ltl(int)> gen = [&](int depth) -> Ltl {
      if (depth == 0 || rng.chance(0.3))
        return atoms[rng.below(atoms.size())];
      switch (rng.below(7)) {
        case 0: return lnot(gen(depth - 1));
        case 1: return land(gen(depth - 1), gen(depth - 1));
        case 2: return lor(gen(depth - 1), gen(depth - 1));
        case 3: return next(gen(depth - 1));
        case 4: return eventually(gen(depth - 1));
        case 5: return always(gen(depth - 1));
        default: return until(gen(depth - 1), gen(depth - 1));
      }
    };
    const Ltl f = gen(3);
    LassoWord w;
    const std::size_t plen = rng.below(3);
    const std::size_t clen = 1 + rng.below(3);
    for (std::size_t i = 0; i < plen; ++i)
      w.prefix.push_back(rng.below(16));
    for (std::size_t i = 0; i < clen; ++i)
      w.cycle.push_back(rng.below(16));
    EXPECT_NE(evaluate_lasso(f, w), evaluate_lasso(lnot(f), w));
  }
}

// Property: NNF preserves lasso semantics.
TEST_F(LogicTest, PropertyNnfPreservesSemantics) {
  Rng rng(321);
  const std::vector<Ltl> atoms{prop(a_), prop(b_), prop(c_)};
  for (int trial = 0; trial < 200; ++trial) {
    std::function<Ltl(int)> gen = [&](int depth) -> Ltl {
      if (depth == 0 || rng.chance(0.3))
        return atoms[rng.below(atoms.size())];
      switch (rng.below(8)) {
        case 0: return lnot(gen(depth - 1));
        case 1: return land(gen(depth - 1), gen(depth - 1));
        case 2: return lor(gen(depth - 1), gen(depth - 1));
        case 3: return implies(gen(depth - 1), gen(depth - 1));
        case 4: return next(gen(depth - 1));
        case 5: return eventually(gen(depth - 1));
        case 6: return always(gen(depth - 1));
        default: return release(gen(depth - 1), gen(depth - 1));
      }
    };
    const Ltl f = gen(3);
    const Ltl nnf = to_nnf(f);
    LassoWord w;
    for (std::size_t i = 0, n = 1 + rng.below(4); i < n; ++i)
      w.cycle.push_back(rng.below(16));
    for (std::size_t i = 0, n = rng.below(3); i < n; ++i)
      w.prefix.push_back(rng.below(16));
    EXPECT_EQ(evaluate_lasso(f, w), evaluate_lasso(nnf, w))
        << to_string(f, vocab_) << "  vs NNF  " << to_string(nnf, vocab_);
  }
}

// ------------------------------------------------------- parser fuzzing ---

// Build a random formula over the whole driving vocabulary with every
// operator the printer can emit.
Ltl random_formula(Rng& rng, const Vocabulary& vocab, int depth) {
  if (depth == 0 || rng.chance(0.3))
    return prop(static_cast<int>(rng.below(vocab.size())));
  switch (rng.below(9)) {
    case 0: return lnot(random_formula(rng, vocab, depth - 1));
    case 1:
      return land(random_formula(rng, vocab, depth - 1),
                  random_formula(rng, vocab, depth - 1));
    case 2:
      return lor(random_formula(rng, vocab, depth - 1),
                 random_formula(rng, vocab, depth - 1));
    case 3:
      return implies(random_formula(rng, vocab, depth - 1),
                     random_formula(rng, vocab, depth - 1));
    case 4: return next(random_formula(rng, vocab, depth - 1));
    case 5: return eventually(random_formula(rng, vocab, depth - 1));
    case 6: return always(random_formula(rng, vocab, depth - 1));
    case 7:
      return until(random_formula(rng, vocab, depth - 1),
                   random_formula(rng, vocab, depth - 1));
    default:
      return release(random_formula(rng, vocab, depth - 1),
                     random_formula(rng, vocab, depth - 1));
  }
}

// Print → re-parse must land on the hash-consed identical node: the
// printer's precedence handling and the parser are exact inverses up to
// the constructors' simplifications (which both sides apply).
TEST_F(LogicTest, PropertyPrintParseRoundTripIsHashConsedIdentity) {
  Rng rng(777);
  for (int trial = 0; trial < 500; ++trial) {
    const Ltl f = random_formula(rng, vocab_, 4);
    const std::string text = to_string(f, vocab_);
    const Ltl reparsed = parse_ltl(text, vocab_);
    ASSERT_EQ(f.get(), reparsed.get()) << "trial " << trial << ": " << text;
  }
}

// Mutated/garbled inputs must either parse or raise ParseError — never
// crash, hang, or throw anything else.
TEST_F(LogicTest, FuzzMutatedInputsRejectedWithParseError) {
  Rng rng(888);
  const std::string charset =
      "abcdefghijklmnopqrstuvwxyz_0123456789 ()!&|->UFRGX<>~^#.,\"\\";
  int parse_errors = 0;
  for (int trial = 0; trial < 1000; ++trial) {
    std::string text = to_string(random_formula(rng, vocab_, 3), vocab_);
    // 1-6 random edits: replace, insert, or delete a byte.
    for (std::uint64_t e = 0, n = 1 + rng.below(6); e < n; ++e) {
      if (text.empty()) {
        text.push_back(charset[rng.below(charset.size())]);
        continue;
      }
      const std::size_t at = rng.below(text.size());
      switch (rng.below(3)) {
        case 0: text[at] = charset[rng.below(charset.size())]; break;
        case 1:
          text.insert(at, 1, charset[rng.below(charset.size())]);
          break;
        default: text.erase(at, 1); break;
      }
    }
    try {
      (void)parse_ltl(text, vocab_);
    } catch (const ParseError&) {
      ++parse_errors;  // the only acceptable failure mode
    }
    // Any other exception type propagates and fails the test.
  }
  // Sanity: the mutator actually produced plenty of invalid inputs.
  EXPECT_GT(parse_errors, 100);
}

}  // namespace
}  // namespace dpoaf::logic
