// Compute-backend contract (docs/BACKENDS.md): selection precedence,
// cpuid dispatch, per-backend cross-thread bitwise determinism (on odd
// shapes, so microkernel remainder paths land on different rows as the
// chunk bounds move), scalar-vs-simd numerical tolerance, and the
// per-backend observability counters/gauges.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "tensor/backend/backend.hpp"
#include "tensor/ops.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace dpoaf {
namespace {

using tensor::Tape;
using tensor::Tensor;
namespace ops = tensor::ops;
namespace backend = tensor::backend;

// Every test leaves the process on the scalar backend / serial pool so
// suite-internal ordering cannot leak state.
class BackendTest : public ::testing::Test {
 protected:
  void TearDown() override {
    backend::select("scalar");
    util::set_global_threads(1);
  }
};

void expect_bitwise_equal(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<std::size_t>(a.numel())),
            0);
}

// Largest elementwise difference, relative to max(|element|, tensor
// magnitude): near-zero elements (catastrophic cancellation in long dot
// products) are judged against the tensor's scale, not their own.
double max_rel_diff(const Tensor& got, const Tensor& want) {
  double scale = 1e-6;
  for (std::int64_t i = 0; i < want.numel(); ++i)
    scale = std::max(scale, std::abs(static_cast<double>(want.data()[i])));
  double worst = 0.0;
  for (std::int64_t i = 0; i < want.numel(); ++i) {
    const double w = want.data()[i];
    const double d = std::abs(static_cast<double>(got.data()[i]) - w);
    worst = std::max(worst, d / std::max(std::abs(w), scale));
  }
  return worst;
}

std::vector<std::string> available_backends() {
  std::vector<std::string> out = {"scalar"};
  if (backend::simd_supported()) out.push_back("simd");
  return out;
}

TEST_F(BackendTest, ScalarAlwaysAvailableAndSelectable) {
  backend::select("scalar");
  EXPECT_EQ(backend::active_kind(), backend::Kind::kScalar);
  EXPECT_STREQ(backend::active().name(), "scalar");
}

TEST_F(BackendTest, AutoResolvesToSimdExactlyWhenSupported) {
  backend::select("auto");
  const backend::Kind want = backend::simd_supported()
                                 ? backend::Kind::kSimd
                                 : backend::Kind::kScalar;
  EXPECT_EQ(backend::active_kind(), want);
}

TEST_F(BackendTest, ExplicitSimdSelectsOrFailsLoudly) {
  if (backend::simd_supported()) {
    backend::select("simd");
    EXPECT_EQ(backend::active_kind(), backend::Kind::kSimd);
    EXPECT_STREQ(backend::active().name(), "simd");
  } else {
    EXPECT_THROW(backend::select("simd"), ContractViolation);
  }
}

TEST_F(BackendTest, UnknownBackendNameIsRejected) {
  EXPECT_THROW(backend::select("gpu"), ContractViolation);
  EXPECT_THROW(backend::select("SIMD"), ContractViolation);
}

TEST_F(BackendTest, EmptySelectionDefersToEnvironment) {
  ASSERT_EQ(setenv("DPOAF_BACKEND", "scalar", 1), 0);
  backend::select("");
  EXPECT_EQ(backend::active_kind(), backend::Kind::kScalar);
  if (backend::simd_supported()) {
    ASSERT_EQ(setenv("DPOAF_BACKEND", "simd", 1), 0);
    backend::select("");
    EXPECT_EQ(backend::active_kind(), backend::Kind::kSimd);
  }
  ASSERT_EQ(setenv("DPOAF_BACKEND", "bogus", 1), 0);
  EXPECT_THROW(backend::select(""), ContractViolation);
  ASSERT_EQ(unsetenv("DPOAF_BACKEND"), 0);
  backend::select("");  // no env ⇒ auto
  const backend::Kind want = backend::simd_supported()
                                 ? backend::Kind::kSimd
                                 : backend::Kind::kScalar;
  EXPECT_EQ(backend::active_kind(), want);
}

// Deliberately awkward shapes: odd dims exercise the 8-wide and scalar
// column tails, and rows that are remainder rows at one thread count are
// interior rows of a microkernel block at another.
struct MatmulCase {
  std::int64_t m, k, n;
};
const MatmulCase kShapes[] = {
    {1, 1, 1}, {3, 5, 2}, {7, 13, 9}, {61, 53, 67}, {96, 96, 96},
    {64, 96, 80}, {33, 257, 19},
};

TEST_F(BackendTest, SimdMatmulMatchesScalarWithinTolerance) {
  if (!backend::simd_supported()) GTEST_SKIP() << "no AVX2+FMA";
  for (const MatmulCase& shape : kShapes) {
    Rng rng(17);
    Tensor a = Tensor::randn({shape.m, shape.k}, rng);
    Tensor b = Tensor::randn({shape.k, shape.n}, rng);
    backend::select("scalar");
    Tensor want = ops::matmul(nullptr, a, b);
    backend::select("simd");
    Tensor got = ops::matmul(nullptr, a, b);
    EXPECT_LT(max_rel_diff(got, want), 1e-4)
        << shape.m << "x" << shape.k << "x" << shape.n;
  }
}

TEST_F(BackendTest, SimdMatmulGradsMatchScalarWithinTolerance) {
  if (!backend::simd_supported()) GTEST_SKIP() << "no AVX2+FMA";
  auto grads = [](const MatmulCase& shape) {
    Rng rng(19);
    Tensor a = Tensor::randn({shape.m, shape.k}, rng).set_requires_grad(true);
    Tensor b = Tensor::randn({shape.k, shape.n}, rng).set_requires_grad(true);
    Tape tape;
    Tensor loss = ops::sum(&tape, ops::matmul(&tape, a, b));
    tape.backward(loss);
    Tensor ga = Tensor::from(
        a.shape(), std::vector<float>(a.grad(), a.grad() + a.numel()));
    Tensor gb = Tensor::from(
        b.shape(), std::vector<float>(b.grad(), b.grad() + b.numel()));
    return std::make_pair(ga, gb);
  };
  for (const MatmulCase& shape : kShapes) {
    backend::select("scalar");
    auto want = grads(shape);
    backend::select("simd");
    auto got = grads(shape);
    EXPECT_LT(max_rel_diff(got.first, want.first), 1e-4);
    EXPECT_LT(max_rel_diff(got.second, want.second), 1e-4);
  }
}

TEST_F(BackendTest, ElementwiseOpsMatchScalarWithinTolerance) {
  if (!backend::simd_supported()) GTEST_SKIP() << "no AVX2+FMA";
  auto run = [] {
    Rng rng(23);
    Tensor x = Tensor::randn({37, 41}, rng).set_requires_grad(true);
    Tensor y = Tensor::randn({37, 41}, rng).set_requires_grad(true);
    Tensor bias = Tensor::randn({1, 41}, rng);
    Tape tape;
    Tensor h = ops::add_rowwise(
        &tape, ops::add(&tape, ops::mul(&tape, x, y), ops::scale(&tape, y, 0.3f)),
        bias);
    Tensor loss = ops::sum(&tape, h);
    tape.backward(loss);
    Tensor gx = Tensor::from(
        x.shape(), std::vector<float>(x.grad(), x.grad() + x.numel()));
    return std::make_pair(h.clone(), gx);
  };
  backend::select("scalar");
  auto want = run();
  backend::select("simd");
  auto got = run();
  EXPECT_LT(max_rel_diff(got.first, want.first), 1e-5);
  EXPECT_LT(max_rel_diff(got.second, want.second), 1e-5);
}

// The determinism half of the contract: per backend, results are bitwise
// identical across thread counts. Thread counts 1/3/4 shift the chunk
// bounds through every remainder-path alignment of the 61/53/67 shapes.
TEST_F(BackendTest, MatmulBitwiseAcrossThreadCountsPerBackend) {
  for (const std::string& be : available_backends()) {
    backend::select(be);
    for (const MatmulCase& shape : kShapes) {
      auto run = [&shape] {
        Rng rng(29);
        Tensor a = Tensor::randn({shape.m, shape.k}, rng);
        Tensor b = Tensor::randn({shape.k, shape.n}, rng);
        // Grain 1: at 3/4 threads the row partition actually splits even
        // the tiny shapes.
        Tensor c = Tensor::zeros({shape.m, shape.n});
        util::parallel_for(0, shape.m, 1,
                           [&](std::int64_t i0, std::int64_t i1) {
          backend::active().matmul_fwd(a.data(), b.data(), c.data(), shape.k,
                                       shape.n, i0, i1);
        });
        return c;
      };
      util::set_global_threads(1);
      Tensor serial = run();
      for (int threads : {3, 4}) {
        util::set_global_threads(threads);
        Tensor parallel = run();
        expect_bitwise_equal(serial, parallel);
      }
    }
  }
}

TEST_F(BackendTest, MatmulGradsBitwiseAcrossThreadCountsPerBackend) {
  for (const std::string& be : available_backends()) {
    backend::select(be);
    auto run = [] {
      Rng rng(31);
      Tensor a = Tensor::randn({61, 53}, rng).set_requires_grad(true);
      Tensor b = Tensor::randn({53, 67}, rng).set_requires_grad(true);
      Tape tape;
      Tensor loss = ops::sum(&tape, ops::matmul(&tape, a, b));
      tape.backward(loss);
      Tensor ga = Tensor::from(
          a.shape(), std::vector<float>(a.grad(), a.grad() + a.numel()));
      Tensor gb = Tensor::from(
          b.shape(), std::vector<float>(b.grad(), b.grad() + b.numel()));
      return std::make_pair(ga, gb);
    };
    util::set_global_threads(1);
    auto serial = run();
    util::set_global_threads(4);
    auto parallel = run();
    expect_bitwise_equal(serial.first, parallel.first);
    expect_bitwise_equal(serial.second, parallel.second);
  }
}

TEST_F(BackendTest, ElementwiseBitwiseAcrossThreadCountsPerBackend) {
  for (const std::string& be : available_backends()) {
    backend::select(be);
    auto run = [] {
      Rng rng(37);
      Tensor x = Tensor::randn({123, 131}, rng).set_requires_grad(true);
      Tensor y = Tensor::randn({123, 131}, rng).set_requires_grad(true);
      Tape tape;
      Tensor h = ops::add(&tape, ops::mul(&tape, x, y),
                          ops::scale(&tape, x, -0.7f));
      Tensor loss = ops::sum(&tape, h);
      tape.backward(loss);
      Tensor gx = Tensor::from(
          x.shape(), std::vector<float>(x.grad(), x.grad() + x.numel()));
      return std::make_pair(h.clone(), gx);
    };
    util::set_global_threads(1);
    auto serial = run();
    util::set_global_threads(4);
    auto parallel = run();
    expect_bitwise_equal(serial.first, parallel.first);
    expect_bitwise_equal(serial.second, parallel.second);
  }
}

// Per-backend matmul telemetry: calls/flops land on the selected
// backend's counters, and the active gauge tracks selection.
TEST_F(BackendTest, PerBackendCountersAndActiveGauge) {
  obs::set_enabled(true);
  auto& registry = obs::MetricsRegistry::instance();
  for (const std::string& be : available_backends()) {
    backend::select(be);
    obs::Counter& calls = registry.counter("tensor.matmul.calls." + be);
    obs::Counter& flops = registry.counter("tensor.matmul.flops." + be);
    obs::Counter& bwd_calls =
        registry.counter("tensor.matmul.bwd_calls." + be);
    const std::uint64_t calls0 = calls.value();
    const std::uint64_t flops0 = flops.value();
    const std::uint64_t bwd0 = bwd_calls.value();

    Rng rng(41);
    Tensor a = Tensor::randn({8, 8}, rng).set_requires_grad(true);
    Tensor b = Tensor::randn({8, 8}, rng).set_requires_grad(true);
    Tape tape;
    Tensor loss = ops::sum(&tape, ops::matmul(&tape, a, b));
    tape.backward(loss);

    EXPECT_EQ(calls.value(), calls0 + 1);
    EXPECT_EQ(flops.value(), flops0 + 2 * 8 * 8 * 8);
    EXPECT_EQ(bwd_calls.value(), bwd0 + 1);
    EXPECT_EQ(registry.gauge("tensor.backend.active").value(),
              be == "simd" ? 1 : 0);
  }
  EXPECT_EQ(registry.gauge("tensor.backend.simd_supported").value(),
            backend::simd_supported() ? 1 : 0);
}

}  // namespace
}  // namespace dpoaf
