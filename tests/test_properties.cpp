// Cross-module property tests: randomized sweeps over the invariants that
// tie the subsystems together (product construction vs Appendix A, the
// GLM2FSA grammar, LTL operator dualities on finite traces).
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "automata/product.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/store.hpp"
#include "core/pipeline.hpp"
#include "driving/domain.hpp"
#include "driving/generator/generator.hpp"
#include "logic/lasso_eval.hpp"
#include "logic/ltlf.hpp"
#include "logic/parser.hpp"
#include "monitor/monitor.hpp"
#include "modelcheck/buchi.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace dpoaf {
namespace {

using automata::FsaController;
using automata::Guard;
using automata::Kripke;
using automata::TransitionSystem;
using logic::Symbol;
using logic::Vocabulary;

class PropertySweep : public ::testing::TestWithParam<int> {
 protected:
  static const driving::DrivingDomain& domain() {
    static driving::DrivingDomain d;
    return d;
  }
};

// ---------------------------------------------- product invariants ------

TEST_P(PropertySweep, ProductStatesSatisfyAppendixA) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  const auto& vocab = domain().vocab();

  // Random model over 3 random env propositions.
  const auto props = vocab.prop_indices();
  TransitionSystem model;
  const int n_states = 2 + static_cast<int>(rng.below(5));
  for (int p = 0; p < n_states; ++p) {
    Symbol label = 0;
    for (int k = 0; k < 3; ++k)
      if (rng.chance(0.5)) label |= Vocabulary::bit(props[rng.below(props.size())]);
    model.add_state(label);
  }
  for (int p = 0; p < n_states; ++p) {
    model.add_transition(p, static_cast<int>(rng.below(
                                static_cast<std::uint64_t>(n_states))));
    if (rng.chance(0.5))
      model.add_transition(p, static_cast<int>(rng.below(
                                  static_cast<std::uint64_t>(n_states))));
  }

  // Random controller.
  const auto actions = vocab.action_indices();
  FsaController ctrl(domain().stop_action());
  const int n_ctrl = 1 + static_cast<int>(rng.below(4));
  for (int q = 0; q < n_ctrl; ++q) ctrl.add_state();
  for (int q = 0; q < n_ctrl; ++q) {
    Guard g;
    if (rng.chance(0.6)) {
      const int bit = props[rng.below(props.size())];
      if (rng.chance(0.5))
        g.must_true |= Vocabulary::bit(bit);
      else
        g.must_false |= Vocabulary::bit(bit);
    }
    const Symbol action = Vocabulary::bit(actions[rng.below(actions.size())]);
    ctrl.add_transition(q, g, action,
                        static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(n_ctrl))));
  }

  const Kripke k = automata::make_product(model, ctrl,
                                          domain().product_options());
  ASSERT_GT(k.state_count(), 0u);
  const Symbol action_mask = vocab.action_mask();
  for (std::size_t s = 0; s < k.state_count(); ++s) {
    const auto& origin = k.origin[s];
    // Label = λ_M(p) ∪ a (ε replaced by the configured stop label).
    const Symbol expected_action =
        origin.action == 0 ? domain().stop_action() : origin.action;
    EXPECT_EQ(k.labels[s] & ~action_mask, model.label(origin.model_state));
    EXPECT_EQ(k.labels[s] & action_mask, expected_action);
    // The recorded action must be one the controller can emit there.
    const auto moves =
        ctrl.moves(origin.ctrl_state, model.label(origin.model_state));
    const bool emittable =
        std::any_of(moves.begin(), moves.end(), [&](const auto& m) {
          return m.action == origin.action;
        });
    EXPECT_TRUE(emittable);
    // Every state has a successor (stutter extension).
    EXPECT_FALSE(k.successors[s].empty());
  }
  // Initial states start in q0 and cover every model state.
  std::vector<bool> covered(model.state_count(), false);
  for (int s : k.initial) {
    EXPECT_EQ(k.origin[static_cast<std::size_t>(s)].ctrl_state,
              ctrl.initial());
    covered[static_cast<std::size_t>(
        k.origin[static_cast<std::size_t>(s)].model_state)] = true;
  }
  for (std::size_t p = 0; p < model.state_count(); ++p)
    EXPECT_TRUE(covered[p]) << "model state " << p << " not in initial set";
}

// ------------------------------------------------ GLM2FSA grammar -------

TEST_P(PropertySweep, RandomGrammaticalStepListsAlwaysCompile) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 3);
  const std::vector<std::string> conds{
      "no car from the left", "no pedestrian on the right",
      "the green traffic light is on", "no oncoming traffic",
      "no car from the right", "no pedestrian in front"};
  const std::vector<std::string> acts{"turn right", "turn left",
                                      "go straight", "stop"};
  const std::vector<std::string> observes{
      "the traffic light", "the stop sign", "the left turn light"};

  const int n_steps = 1 + static_cast<int>(rng.below(5));
  std::string text;
  for (int i = 0; i < n_steps; ++i) {
    text += std::to_string(i + 1) + ". ";
    switch (rng.below(3)) {
      case 0:
        text += "Observe " + observes[rng.below(observes.size())] + ".";
        break;
      case 1: {
        text += "If " + conds[rng.below(conds.size())];
        if (rng.chance(0.5)) text += " and " + conds[rng.below(conds.size())];
        text += ", " + acts[rng.below(acts.size())] + ".";
        break;
      }
      default:
        text += "Wait until " + conds[rng.below(conds.size())] + ".";
        break;
    }
    text += "\n";
  }

  const auto result = glm2fsa::glm2fsa(text, domain().aligner(),
                                       domain().build_options());
  // Contradictory conjunctions ("X and no X") are legitimately rejected;
  // everything else must compile with one state and transition per step.
  bool contradiction = false;
  for (const auto& issue : result.parsed.issues)
    contradiction |= issue.message == "contradictory condition";
  if (contradiction) return;
  ASSERT_TRUE(result.parsed.ok()) << text;
  EXPECT_EQ(result.controller.state_count(),
            static_cast<std::size_t>(n_steps));
  EXPECT_EQ(result.controller.transitions().size(),
            static_cast<std::size_t>(n_steps));
  // Verification never crashes on grammatical controllers.
  const auto fb = driving::formal_feedback(
      domain(), driving::ScenarioId::TrafficLight, text);
  EXPECT_GE(fb.score(), 0);
}

// ------------------------------------------- LTL dualities (finite) -----

TEST_P(PropertySweep, LtlfOperatorDualities) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 7);
  using namespace logic::ltl;
  const auto props = domain().vocab().prop_indices();
  const logic::Ltl a = prop(props[rng.below(props.size())]);
  const logic::Ltl b = prop(props[rng.below(props.size())]);

  logic::Trace trace;
  const std::size_t len = 1 + rng.below(8);
  for (std::size_t t = 0; t < len; ++t) {
    Symbol sym = 0;
    for (int bit : props)
      if (rng.chance(0.4)) sym |= Vocabulary::bit(bit);
    trace.push_back(sym);
  }

  // ¬◇φ ≡ □¬φ, ¬□φ ≡ ◇¬φ, ¬(φUψ) ≡ ¬φ R ¬ψ, φRψ ≡ ¬(¬φ U ¬ψ).
  EXPECT_EQ(logic::evaluate_ltlf(lnot(eventually(a)), trace),
            logic::evaluate_ltlf(always(lnot(a)), trace));
  EXPECT_EQ(logic::evaluate_ltlf(lnot(always(a)), trace),
            logic::evaluate_ltlf(eventually(lnot(a)), trace));
  EXPECT_EQ(logic::evaluate_ltlf(lnot(until(a, b)), trace),
            logic::evaluate_ltlf(release(lnot(a), lnot(b)), trace));
  EXPECT_EQ(logic::evaluate_ltlf(release(a, b), trace),
            logic::evaluate_ltlf(lnot(until(lnot(a), lnot(b))), trace));
  // ◇φ ≡ true U φ and □φ ≡ false R φ.
  EXPECT_EQ(logic::evaluate_ltlf(eventually(a), trace),
            logic::evaluate_ltlf(until(ltrue(), a), trace));
  EXPECT_EQ(logic::evaluate_ltlf(always(a), trace),
            logic::evaluate_ltlf(release(lfalse(), a), trace));
}

// ----------------------------------- simulator path soundness -----------

TEST_P(PropertySweep, NoiselessRolloutsAreModelPathsInEveryScenario) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 11);
  for (driving::ScenarioId id : driving::all_scenarios()) {
    const auto& model = domain().model(id);
    // Any aligned catalog controller will do; pick one at random.
    const auto& tasks = domain().tasks();
    const auto& task = tasks[rng.below(tasks.size())];
    const auto& variant = task.variants[0];  // Good is always first
    auto g2f = glm2fsa::glm2fsa(variant.text, domain().aligner(),
                                domain().build_options());
    ASSERT_TRUE(g2f.parsed.ok());

    sim::SimulatorConfig cfg;
    cfg.horizon = 15;
    cfg.epsilon_label = domain().stop_action();
    sim::Simulator simulator(model, cfg);
    const auto rollout = simulator.run(g2f.controller, rng);
    for (std::size_t t = 0; t + 1 < rollout.model_states.size(); ++t)
      ASSERT_TRUE(model.has_transition(rollout.model_states[t],
                                       rollout.model_states[t + 1]))
          << driving::scenario_name(id);
  }
}

// ------------------------- generated-rulebook fuzz bridge ---------------
//
// The procedural generator (docs/GENERATOR.md) emits rulebooks no human
// reviewed, so the bridge properties fuzz them through every formula
// consumer: the ASCII printer→parser round-trip, the satisfiability
// pre-pass, monitor compilation, and monitor-vs-tree-evaluator agreement
// on random walks of the generated scenario's own model.

TEST_P(PropertySweep, GeneratedRulebooksSurvivePrinterParserRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 73 + 19);
  const auto& vocab = domain().vocab();
  const auto features = driving::generator::draw_features(rng);
  // Raw template instantiations — *before* the pre-pass — so the
  // degenerate tautologies are fuzzed too, plus the fairness assumptions.
  std::vector<logic::Ltl> formulas;
  for (const auto& spec : driving::generator::rule_templates(features, vocab))
    formulas.push_back(spec.formula);
  for (const auto& f : driving::generator::derive_fairness(features, vocab))
    formulas.push_back(f);
  ASSERT_FALSE(formulas.empty());
  for (const logic::Ltl& f : formulas) {
    // The pre-pass classifies every raw instantiation without CHECKing.
    (void)monitor::classify_spec(f);
    const std::string printed = logic::to_string(f, vocab);
    const logic::Ltl reparsed = logic::parse_ltl(printed, vocab);
    // Printing is a normal form: the round-trip is a fixed point.
    EXPECT_EQ(logic::to_string(reparsed, vocab), printed);
    // And semantics survive: verdicts agree on a short random trace.
    logic::Trace trace;
    const auto all_props = vocab.prop_indices();
    const auto all_actions = vocab.action_indices();
    for (int t = 0; t < 8; ++t) {
      Symbol sym = 0;
      for (int bit : all_props)
        if (rng.chance(0.4)) sym |= Vocabulary::bit(bit);
      sym |= Vocabulary::bit(all_actions[rng.below(all_actions.size())]);
      trace.push_back(sym);
    }
    EXPECT_EQ(logic::evaluate_ltlf(reparsed, trace),
              logic::evaluate_ltlf(f, trace))
        << printed;
  }
}

TEST_P(PropertySweep, GeneratedSpecsCompileAndMonitorMatchesTreeEvaluator) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 59 + 29);
  const auto& vocab = domain().vocab();
  const auto features = driving::generator::draw_features(rng);
  const auto model = driving::generator::build_model(features, vocab);
  const auto specs = driving::generator::instantiate_rulebook(features, vocab);
  ASSERT_FALSE(specs.empty());

  // Random walks through the scenario's own model, with a random action
  // bit per step (monitors see observation ∪ action symbols in the sim).
  const auto actions = vocab.action_indices();
  std::vector<logic::Trace> traces;
  for (int r = 0; r < 6; ++r) {
    auto s = static_cast<int>(rng.below(model.state_count()));
    logic::Trace trace;
    for (int step = 0; step < 12; ++step) {
      trace.push_back(model.label(s) |
                      Vocabulary::bit(actions[rng.below(actions.size())]));
      const auto& succ = model.successors(s);
      ASSERT_FALSE(succ.empty());
      s = succ[rng.below(succ.size())];
    }
    traces.push_back(std::move(trace));
  }

  for (const auto& spec : specs) {
    // Everything the pre-pass retained is a real constraint and small
    // enough to compile (the rulebook never exceeds the support cap).
    const auto mon = monitor::compile_monitor(spec.formula);
    ASSERT_NE(mon, nullptr) << spec.name;
    EXPECT_FALSE(mon->is_unsatisfiable()) << spec.name;
    EXPECT_FALSE(mon->is_trivially_true()) << spec.name;
    for (const auto& trace : traces)
      EXPECT_EQ(mon->accepts(trace),
                logic::evaluate_ltlf(spec.formula, trace))
          << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertySweep, ::testing::Range(0, 40));

// ------------------------------- feedback memoization transparency ------
//
// The caches memoize pure functions (DESIGN.md "Feedback memoization"):
// turning them on or off must not change a single bit of any pipeline
// metric, at any thread count. This is the contract that makes the
// memoized scoring hot path safe to ship enabled by default.

core::RunResult run_micro_pipeline(int threads, bool caches_on,
                                   bool observability = false,
                                   bool streaming = true) {
  modelcheck::clear_buchi_cache();
  modelcheck::set_buchi_cache_enabled(caches_on);
  core::PipelineConfig cfg;
  cfg.seed = 23;
  cfg.threads = threads;
  cfg.streaming = streaming;
  cfg.feedback_cache = caches_on;
  cfg.observability = observability;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.corpus_samples_per_task = 6;
  cfg.pretrain.epochs = 1;
  cfg.candidates_from_catalog = true;
  cfg.dpo.epochs = 2;
  cfg.dpo.checkpoint_every = 2;
  cfg.dpo.pairs_per_epoch = 8;
  cfg.dpo.lora_rank = 2;
  cfg.eval_samples_per_task = 2;
  cfg.eval_max_new_tokens = 24;
  core::DpoAfPipeline pipe(cfg);
  pipe.pretrain_model();
  auto result = pipe.run_dpo(pipe.build_pairs(pipe.collect_candidates()));
  modelcheck::set_buchi_cache_enabled(true);
  util::set_global_threads(1);
  return result;
}

void expect_identical_metrics(const core::RunResult& a,
                              const core::RunResult& b) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].loss, b.metrics[i].loss);
    EXPECT_EQ(a.metrics[i].accuracy, b.metrics[i].accuracy);
    EXPECT_EQ(a.metrics[i].margin, b.metrics[i].margin);
    EXPECT_EQ(a.metrics[i].kl, b.metrics[i].kl);
  }
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size());
  for (std::size_t i = 0; i < a.checkpoints.size(); ++i) {
    const auto& s = a.checkpoints[i];
    const auto& p = b.checkpoints[i];
    EXPECT_EQ(s.epoch, p.epoch);
    EXPECT_EQ(s.train_mean_satisfied, p.train_mean_satisfied);
    EXPECT_EQ(s.val_mean_satisfied, p.val_mean_satisfied);
    EXPECT_EQ(s.train_alignment_failure_rate, p.train_alignment_failure_rate);
    EXPECT_EQ(s.val_alignment_failure_rate, p.val_alignment_failure_rate);
    EXPECT_EQ(s.truncated_responses, p.truncated_responses);
    ASSERT_EQ(s.per_task.size(), p.per_task.size());
    for (std::size_t t = 0; t < s.per_task.size(); ++t) {
      EXPECT_EQ(s.per_task[t].first, p.per_task[t].first);
      EXPECT_EQ(s.per_task[t].second, p.per_task[t].second);
    }
    ASSERT_EQ(s.per_task_alignment_failure.size(),
              p.per_task_alignment_failure.size());
    for (std::size_t t = 0; t < s.per_task_alignment_failure.size(); ++t)
      EXPECT_EQ(s.per_task_alignment_failure[t],
                p.per_task_alignment_failure[t]);
  }
}

TEST(FeedbackCacheProperty, CachedRunBitwiseEqualsUncachedAtOneThread) {
  const auto cached = run_micro_pipeline(1, true);
  const auto uncached = run_micro_pipeline(1, false);
  expect_identical_metrics(cached, uncached);
  // The cached run actually exercised the caches; the uncached run
  // bypassed them entirely (no counter movement at all).
  EXPECT_GT(cached.buchi_cache_stats.hits, 0u);
  EXPECT_GT(cached.feedback_cache_stats.hits +
                cached.feedback_cache_stats.misses,
            0u);
  EXPECT_EQ(uncached.feedback_cache_stats.hits, 0u);
  EXPECT_EQ(uncached.feedback_cache_stats.misses, 0u);
}

TEST(FeedbackCacheProperty, CachedRunBitwiseEqualsUncachedAtFourThreads) {
  const auto cached = run_micro_pipeline(4, true);
  const auto uncached = run_micro_pipeline(4, false);
  expect_identical_metrics(cached, uncached);
}

TEST(FeedbackCacheProperty, CachedRunsIdenticalAcrossThreadCounts) {
  // Caches on, 1 vs 4 threads: memoization must not perturb the existing
  // threading determinism contract (tests/test_threading.cpp).
  const auto serial = run_micro_pipeline(1, true);
  const auto parallel = run_micro_pipeline(4, true);
  expect_identical_metrics(serial, parallel);
}

// ------------------------------- streaming dataflow equivalence --------
//
// The streaming pipeline (docs/PIPELINE.md) is a scheduling change only:
// sequence-numbered reassembly restores the phased pipeline's serial
// consumption order, so every metric must be bitwise-identical across
// {streaming, phased} × {1, 4 threads}. (The CI matrix runs this suite
// under both tensor backends, completing the ISSUE-9 proof grid.)

TEST(StreamingProperty, StreamingRunBitwiseEqualsPhasedAcrossThreadCounts) {
  const auto phased_serial = run_micro_pipeline(1, true, false, false);
  const auto phased_parallel = run_micro_pipeline(4, true, false, false);
  const auto streaming_serial = run_micro_pipeline(1, true, false, true);
  const auto streaming_parallel = run_micro_pipeline(4, true, false, true);
  expect_identical_metrics(phased_serial, streaming_serial);
  expect_identical_metrics(phased_serial, streaming_parallel);
  expect_identical_metrics(phased_serial, phased_parallel);
  EXPECT_EQ(phased_serial.pair_count, streaming_serial.pair_count);
  EXPECT_EQ(phased_serial.pair_count, streaming_parallel.pair_count);
}

// ------------------------------- observability transparency ------------
//
// Observability records wall-clock only into histograms/trace (report-only)
// and counts logical events; turning it on must not change a single bit of
// any pipeline metric — the contract that lets instrumentation ship in the
// hot paths (DESIGN.md "Observability").

TEST(ObservabilityProperty, InstrumentedRunBitwiseEqualsUninstrumented) {
  obs::set_enabled(false);
  obs::clear_trace();
  const auto plain = run_micro_pipeline(1, true, /*observability=*/false);
  EXPECT_TRUE(plain.phases.empty());  // nothing recorded while disabled
  const auto traced = run_micro_pipeline(1, true, /*observability=*/true);
  EXPECT_FALSE(traced.phases.empty());  // spans actually fired
  expect_identical_metrics(plain, traced);
  obs::set_enabled(false);
  obs::clear_trace();
}

TEST(ObservabilityProperty, InstrumentedRunIdenticalAtFourThreads) {
  obs::set_enabled(false);
  obs::clear_trace();
  const auto plain = run_micro_pipeline(4, true, /*observability=*/false);
  const auto traced = run_micro_pipeline(4, true, /*observability=*/true);
  expect_identical_metrics(plain, traced);
  obs::set_enabled(false);
  obs::clear_trace();
}

// ----------------------------- crash-resume determinism -----------------
//
// The durable-checkpoint contract (docs/CHECKPOINT_FORMAT.md): a run
// interrupted at any snapshot boundary and resumed in a fresh pipeline
// produces a RunResult — and final model weights — bitwise-identical to
// the uninterrupted run. Snapshots carry the trainer RNG stream, shuffle
// permutation, optimizer moments, and metric history, so nothing about
// the continuation depends on the interruption.

struct CheckpointedRun {
  core::RunResult result;
  std::vector<float> final_weights;
  std::vector<ckpt::TrainingCheckpoint> snapshots;
};

CheckpointedRun run_micro_checkpointed(int threads, bool observability,
                                       int pretrain_epochs,
                                       const std::string& resume_from = {}) {
  modelcheck::clear_buchi_cache();
  core::PipelineConfig cfg;
  cfg.seed = 23;
  cfg.threads = threads;
  cfg.observability = observability;
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.corpus_samples_per_task = 6;
  cfg.pretrain.epochs = pretrain_epochs;
  cfg.candidates_from_catalog = true;
  cfg.dpo.epochs = 2;
  cfg.dpo.checkpoint_every = 2;
  cfg.dpo.pairs_per_epoch = 8;
  cfg.dpo.lora_rank = 2;
  cfg.eval_samples_per_task = 2;
  cfg.eval_max_new_tokens = 24;
  cfg.checkpoint_every_epochs = 1;
  cfg.resume_from = resume_from;
  core::DpoAfPipeline pipe(cfg);
  auto sink = std::make_shared<ckpt::MemorySink>();
  pipe.set_checkpoint_sink(sink);
  CheckpointedRun out;
  out.result = pipe.run();
  out.final_weights = pipe.model().state();
  out.snapshots = sink->snapshots;
  util::set_global_threads(1);
  return out;
}

std::string save_snapshot(const ckpt::TrainingCheckpoint& snap,
                          const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / name;
  ckpt::save_checkpoint(path, snap);
  return path.string();
}

const ckpt::TrainingCheckpoint& find_snapshot(
    const std::vector<ckpt::TrainingCheckpoint>& snapshots, ckpt::Stage stage,
    int completed_epochs) {
  for (const auto& s : snapshots)
    if (s.stage == stage && s.completed_epochs == completed_epochs) return s;
  throw std::runtime_error("expected snapshot not captured");
}

TEST(CrashResumeProperty, SnapshottingItselfChangesNothing) {
  // A run that writes snapshots every epoch is bitwise-identical to the
  // plain pipeline (checkpointing only observes, never perturbs).
  const auto plain = run_micro_pipeline(1, true);
  const auto snapshotted =
      run_micro_checkpointed(1, /*observability=*/false, /*pretrain_epochs=*/1);
  expect_identical_metrics(plain, snapshotted.result);
  // pretrain final epoch + dpo epochs 1 and 2 all produced snapshots.
  EXPECT_EQ(snapshotted.snapshots.size(), 3u);
}

TEST(CrashResumeProperty, DpoResumeBitwiseIdenticalAtOneThread) {
  const auto baseline =
      run_micro_checkpointed(1, /*observability=*/false, /*pretrain_epochs=*/1);
  const auto& snap =
      find_snapshot(baseline.snapshots, ckpt::Stage::kDpo, /*epochs=*/1);
  const std::string path = save_snapshot(snap, "resume_dpo_t1.dpoaf");
  const auto resumed = run_micro_checkpointed(1, false, 1, path);
  expect_identical_metrics(baseline.result, resumed.result);
  EXPECT_EQ(baseline.final_weights, resumed.final_weights);
  EXPECT_EQ(baseline.result.pair_count, resumed.result.pair_count);
}

TEST(CrashResumeProperty, DpoResumeBitwiseIdenticalAtFourThreads) {
  const auto baseline =
      run_micro_checkpointed(4, /*observability=*/false, /*pretrain_epochs=*/1);
  const auto& snap =
      find_snapshot(baseline.snapshots, ckpt::Stage::kDpo, /*epochs=*/1);
  const std::string path = save_snapshot(snap, "resume_dpo_t4.dpoaf");
  const auto resumed = run_micro_checkpointed(4, false, 1, path);
  expect_identical_metrics(baseline.result, resumed.result);
  EXPECT_EQ(baseline.final_weights, resumed.final_weights);
}

TEST(CrashResumeProperty, DpoResumeCrossesThreadCounts) {
  // Snapshot written by a 1-thread run, resumed at 4 threads: the
  // determinism contract composes with the threading contract.
  const auto baseline =
      run_micro_checkpointed(1, /*observability=*/false, /*pretrain_epochs=*/1);
  const auto& snap =
      find_snapshot(baseline.snapshots, ckpt::Stage::kDpo, /*epochs=*/1);
  const std::string path = save_snapshot(snap, "resume_dpo_xthread.dpoaf");
  const auto resumed = run_micro_checkpointed(4, false, 1, path);
  expect_identical_metrics(baseline.result, resumed.result);
  EXPECT_EQ(baseline.final_weights, resumed.final_weights);
}

TEST(CrashResumeProperty, DpoResumeIdenticalWithObservabilityOn) {
  obs::set_enabled(false);
  obs::clear_trace();
  const auto baseline =
      run_micro_checkpointed(1, /*observability=*/false, /*pretrain_epochs=*/1);
  const auto& snap =
      find_snapshot(baseline.snapshots, ckpt::Stage::kDpo, /*epochs=*/1);
  const std::string path = save_snapshot(snap, "resume_dpo_obs.dpoaf");
  const auto resumed = run_micro_checkpointed(1, /*observability=*/true, 1, path);
  expect_identical_metrics(baseline.result, resumed.result);
  EXPECT_EQ(baseline.final_weights, resumed.final_weights);
  obs::set_enabled(false);
  obs::clear_trace();
}

TEST(CrashResumeProperty, PretrainResumeBitwiseIdentical) {
  // Interrupt mid-pre-training (epoch 1 of 2); the resumed run re-enters
  // the pre-training loop and then runs stages 2–6 from scratch.
  const auto baseline =
      run_micro_checkpointed(1, /*observability=*/false, /*pretrain_epochs=*/2);
  const auto& snap =
      find_snapshot(baseline.snapshots, ckpt::Stage::kPretrain, /*epochs=*/1);
  const std::string path = save_snapshot(snap, "resume_pretrain.dpoaf");
  const auto resumed = run_micro_checkpointed(1, false, 2, path);
  expect_identical_metrics(baseline.result, resumed.result);
  EXPECT_EQ(baseline.final_weights, resumed.final_weights);
}

TEST(CrashResumeProperty, ResumeRejectsMismatchedConfiguration) {
  const auto baseline =
      run_micro_checkpointed(1, /*observability=*/false, /*pretrain_epochs=*/1);
  const auto& snap =
      find_snapshot(baseline.snapshots, ckpt::Stage::kDpo, /*epochs=*/1);
  const std::string path = save_snapshot(snap, "resume_mismatch.dpoaf");

  core::PipelineConfig cfg;
  cfg.seed = 24;  // different seed than the snapshot's 23
  cfg.d_model = 16;
  cfg.n_heads = 2;
  cfg.n_layers = 1;
  cfg.d_ff = 32;
  cfg.candidates_from_catalog = true;
  cfg.dpo.lora_rank = 2;
  cfg.resume_from = path;
  core::DpoAfPipeline pipe(cfg);
  EXPECT_THROW((void)pipe.run(), ckpt::CheckpointError);
  util::set_global_threads(1);
}

}  // namespace
}  // namespace dpoaf
