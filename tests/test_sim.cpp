#include <gtest/gtest.h>

#include <algorithm>

#include "automata/product.hpp"
#include "driving/domain.hpp"
#include "sim/empirical.hpp"
#include "sim/simulator.hpp"
#include "util/check.hpp"

namespace dpoaf::sim {
namespace {

using driving::DrivingDomain;
using driving::ScenarioId;

class SimTest : public ::testing::Test {
 protected:
  static const DrivingDomain& domain() {
    static DrivingDomain d;
    return d;
  }

  static SimulatorConfig noiseless(int horizon = 30) {
    SimulatorConfig cfg;
    cfg.horizon = horizon;
    cfg.perception_noise = 0.0;
    cfg.epsilon_label = domain().stop_action();
    return cfg;
  }

  static FsaController after_controller() {
    auto result =
        glm2fsa::glm2fsa(driving::paper_right_turn_after(),
                         domain().aligner(), domain().build_options());
    DPOAF_CHECK(result.parsed.ok());
    return result.controller;
  }

  static FsaController before_controller() {
    auto result =
        glm2fsa::glm2fsa(driving::paper_right_turn_before(),
                         domain().aligner(), domain().build_options());
    DPOAF_CHECK(result.parsed.ok());
    return result.controller;
  }
};

TEST_F(SimTest, RolloutHasRequestedHorizon) {
  Simulator sim(domain().model(ScenarioId::TrafficLight), noiseless(25));
  Rng rng(1);
  const auto rollout = sim.run(after_controller(), rng);
  EXPECT_EQ(rollout.trace.size(), 25u);
  EXPECT_EQ(rollout.model_states.size(), 25u);
  EXPECT_EQ(rollout.ctrl_states.size(), 25u);
}

TEST_F(SimTest, NoiselessRolloutFollowsModelTransitions) {
  const auto& model = domain().model(ScenarioId::TrafficLight);
  Simulator sim(model, noiseless(40));
  Rng rng(2);
  const auto rollout = sim.run(after_controller(), rng);
  for (std::size_t t = 0; t + 1 < rollout.model_states.size(); ++t)
    EXPECT_TRUE(model.has_transition(rollout.model_states[t],
                                     rollout.model_states[t + 1]));
}

TEST_F(SimTest, TraceSymbolsAreObservationUnionAction) {
  const auto& model = domain().model(ScenarioId::TrafficLight);
  Simulator sim(model, noiseless(20));
  Rng rng(3);
  const auto rollout = sim.run(after_controller(), rng);
  const auto action_mask = domain().vocab().action_mask();
  for (std::size_t t = 0; t < rollout.trace.size(); ++t) {
    // Environment part matches the ground-truth model state label.
    EXPECT_EQ(rollout.trace[t] & ~action_mask,
              model.label(rollout.model_states[t]));
    // Exactly the mapped action bits appear in the action part.
    EXPECT_NE(rollout.trace[t] & action_mask, 0u);  // ε mapped to stop
  }
}

TEST_F(SimTest, EpsilonLabelSubstitutesEmptyAction) {
  // A controller with no transitions always waits with ε.
  FsaController idle;  // ε default action
  idle.add_state();
  SimulatorConfig cfg = noiseless(5);
  Simulator sim(domain().model(ScenarioId::Roundabout), cfg);
  Rng rng(4);
  const auto rollout = sim.run(idle, rng);
  for (const auto sym : rollout.trace)
    EXPECT_NE(sym & domain().stop_action(), 0u);
}

TEST_F(SimTest, PerceptionNoiseFlipsOnlyMaskedBits) {
  SimulatorConfig cfg = noiseless(200);
  cfg.perception_noise = 0.3;
  cfg.noise_mask = domain().vocab().env_mask();
  const auto& model = domain().model(ScenarioId::TrafficLight);
  Simulator sim(model, cfg);
  Rng rng(5);
  const auto rollout = sim.run(after_controller(), rng);
  bool some_flip = false;
  for (std::size_t t = 0; t < rollout.trace.size(); ++t) {
    const auto truth = model.label(rollout.model_states[t]);
    const auto observed = rollout.trace[t] & domain().vocab().env_mask();
    if (observed != truth) some_flip = true;
  }
  EXPECT_TRUE(some_flip);
}

TEST_F(SimTest, CollectTracesCountAndDeterminism) {
  Simulator sim(domain().model(ScenarioId::TrafficLight), noiseless(10));
  Rng r1(7), r2(7);
  const auto t1 = sim.collect_traces(after_controller(), 5, r1);
  const auto t2 = sim.collect_traces(after_controller(), 5, r2);
  ASSERT_EQ(t1.size(), 5u);
  EXPECT_EQ(t1, t2);
}

// Theorem 1 (paper Appendix B): when the model captures the system
// completely (here: the simulator IS the model, zero noise), formal
// verification implies empirical satisfaction. The implication is exact
// for safety specifications (G over state predicates); liveness
// specifications can be truncated by the finite horizon, so the theorem's
// infinite-trace statement does not transfer to LTLf for them.
TEST_F(SimTest, Theorem1FormalImpliesEmpiricalForSafetySpecs) {
  const std::vector<std::string> safety = {
      "phi_2", "phi_3", "phi_5", "phi_6", "phi_9",
      "phi_11", "phi_12", "phi_14", "phi_15"};
  const auto& model = domain().model(ScenarioId::TrafficLight);
  const auto controller = after_controller();

  // Formal verification first.
  const auto product =
      automata::make_product(model, controller, domain().product_options());
  const auto report = modelcheck::verify_all(
      product, domain().specs(), domain().fairness(ScenarioId::TrafficLight));
  for (const auto& outcome : report.outcomes)
    ASSERT_TRUE(outcome.result.holds) << outcome.spec.name;

  // Empirical: every noiseless rollout must satisfy every safety spec.
  Simulator sim(model, noiseless(40));
  Rng rng(11);
  const auto empirical =
      empirical_evaluation(sim, controller, domain().specs(), 300, rng);
  for (const auto& name : safety)
    EXPECT_EQ(empirical.probability_of(name), 1.0) << name;
}

TEST_F(SimTest, ViolatingControllerShowsInEmpiricalEvaluation) {
  // The paper-before controller formally violates Φ5; with enough rollouts
  // the violating configuration is hit, so P_Φ5 < 1.
  const auto& model = domain().model(ScenarioId::TrafficLight);
  Simulator sim(model, noiseless(40));
  Rng rng(13);
  const auto empirical = empirical_evaluation(sim, before_controller(),
                                              domain().specs(), 500, rng);
  EXPECT_LT(empirical.probability_of("phi_5"), 1.0);
  // And the compliant controller dominates it on that spec.
  Rng rng2(13);
  const auto empirical_after = empirical_evaluation(
      sim, after_controller(), domain().specs(), 500, rng2);
  EXPECT_GT(empirical_after.probability_of("phi_5"),
            empirical.probability_of("phi_5"));
}

TEST_F(SimTest, EmpiricalAllEmptyRolloutsThrow) {
  // horizon = 0 makes every rollout empty; that is a simulator bug, not a
  // 0% satisfaction rate, so the evaluation CHECKs instead of reporting.
  Simulator sim(domain().model(ScenarioId::TrafficLight), noiseless(0));
  Rng rng(23);
  EXPECT_THROW((void)empirical_evaluation(sim, after_controller(),
                                          domain().specs(), 10, rng),
               ContractViolation);
}

TEST_F(SimTest, EmpiricalReportCountsNoSkippedTracesAtPositiveHorizon) {
  Simulator sim(domain().model(ScenarioId::TrafficLight), noiseless(10));
  Rng rng(29);
  const auto report = empirical_evaluation(
      sim, after_controller(), driving::rulebook_head(domain().vocab()), 20,
      rng);
  EXPECT_EQ(report.skipped_traces, 0);
}

TEST_F(SimTest, EmpiricalReportHelpers) {
  const auto& model = domain().model(ScenarioId::TrafficLight);
  Simulator sim(model, noiseless(10));
  Rng rng(17);
  const auto report = empirical_evaluation(
      sim, after_controller(), driving::rulebook_head(domain().vocab()), 20,
      rng);
  EXPECT_EQ(report.per_spec.size(), 5u);
  EXPECT_EQ(report.rollouts, 20);
  EXPECT_GE(report.mean_probability(), 0.0);
  EXPECT_LE(report.mean_probability(), 1.0);
  EXPECT_THROW((void)report.probability_of("phi_99"), ContractViolation);
}

TEST_F(SimTest, NoiseDegradesSafetySatisfaction) {
  // Perception noise can make even the compliant controller act on stale
  // observations — P_Φ under noise ≤ P_Φ without noise (statistically).
  const auto& model = domain().model(ScenarioId::TrafficLight);
  Simulator clean(model, noiseless(40));
  SimulatorConfig noisy_cfg = noiseless(40);
  noisy_cfg.perception_noise = 0.15;
  noisy_cfg.noise_mask = domain().vocab().env_mask();
  Simulator noisy(model, noisy_cfg);

  Rng r1(19), r2(19);
  const auto clean_report = empirical_evaluation(
      clean, after_controller(), driving::rulebook_head(domain().vocab()),
      300, r1);
  const auto noisy_report = empirical_evaluation(
      noisy, after_controller(), driving::rulebook_head(domain().vocab()),
      300, r2);
  EXPECT_LT(noisy_report.probability_of("phi_5"),
            clean_report.probability_of("phi_5") + 1e-9);
}

// ------------------------------------------------- registry-wide sweep ---

TEST_F(SimTest, ScenarioSweepCoversWholeRegistry) {
  // No five-scenario assumption: the sweep covers whatever the registry
  // holds, in registry order.
  const auto sweep = empirical_scenario_sweep(domain(), 40, 31);
  ASSERT_EQ(sweep.size(), domain().scenarios().size());
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep[i].scenario_key, domain().scenarios()[i].key);
    EXPECT_FALSE(sweep[i].generated);
    EXPECT_EQ(sweep[i].report.rollouts, 40);
    EXPECT_EQ(sweep[i].report.per_spec.size(),
              domain().scenarios()[i].specs.size());
    for (const auto& s : sweep[i].report.per_spec) {
      EXPECT_GE(s.probability, 0.0) << sweep[i].scenario_key;
      EXPECT_LE(s.probability, 1.0) << sweep[i].scenario_key;
    }
  }
}

TEST_F(SimTest, ScenarioSweepIsDeterministicAndCoversGeneratedScenarios) {
  driving::generator::GeneratorConfig gen;
  gen.seed = 5;
  gen.count = 6;
  gen.holdout = 2;
  const DrivingDomain d(gen);
  const auto a = empirical_scenario_sweep(d, 30, 37);
  const auto b = empirical_scenario_sweep(d, 30, 37);
  ASSERT_EQ(a.size(), d.scenarios().size());
  int generated = 0, holdout = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].scenario_key, b[i].scenario_key);
    ASSERT_EQ(a[i].report.per_spec.size(), b[i].report.per_spec.size());
    for (std::size_t j = 0; j < a[i].report.per_spec.size(); ++j)
      EXPECT_EQ(a[i].report.per_spec[j].probability,
                b[i].report.per_spec[j].probability)
          << a[i].scenario_key << "/" << a[i].report.per_spec[j].spec_name;
    if (a[i].generated) ++generated;
    if (a[i].holdout) ++holdout;
  }
  EXPECT_EQ(generated, 6);
  EXPECT_EQ(holdout, 2);
}

}  // namespace
}  // namespace dpoaf::sim
