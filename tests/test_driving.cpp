#include <algorithm>
#include <gtest/gtest.h>

#include <set>

#include "automata/product.hpp"
#include "driving/domain.hpp"
#include "util/check.hpp"

namespace dpoaf::driving {
namespace {

class DrivingTest : public ::testing::Test {
 protected:
  static const DrivingDomain& domain() {
    static DrivingDomain d;  // built once; scenario models are immutable
    return d;
  }
  // Separate instance for the cache tests so toggling/clearing never
  // interferes with the shared read-only fixture above.
  static DrivingDomain& cache_domain() {
    static DrivingDomain d;
    return d;
  }
};

// ------------------------------------------------------------ scenarios ---

TEST_F(DrivingTest, ScenarioModelsHaveNoDeadlocks) {
  // Over the registry, not the enum: any generated scenarios installed in
  // a domain inherit the same invariant.
  for (const Scenario& s : domain().scenarios()) {
    EXPECT_GT(s.model.state_count(), 0u) << s.key;
    EXPECT_TRUE(s.model.deadlock_states().empty()) << s.key;
  }
}

TEST_F(DrivingTest, RegistryCoversPaperScenariosAndEnumAccessorsAgree) {
  EXPECT_EQ(domain().scenarios().size(), all_scenarios().size());
  for (ScenarioId id : all_scenarios()) {
    const Scenario& s = domain().scenario(scenario_name(id));
    EXPECT_FALSE(s.generated) << s.key;
    EXPECT_FALSE(s.holdout) << s.key;
    // Enum overloads forward to the same registry entry.
    EXPECT_EQ(&domain().model(id), &s.model);
    EXPECT_EQ(&domain().fairness(id), &s.fairness);
    // Paper scenarios carry the full 15-spec rulebook.
    EXPECT_EQ(s.specs.size(), domain().specs().size());
  }
  EXPECT_THROW((void)domain().scenario("no_such_scenario"),
               ContractViolation);
}

TEST_F(DrivingTest, ScenarioStateCounts) {
  // 2^|props| labelings, minus the invalid ones for the left-turn head.
  EXPECT_EQ(domain().model(ScenarioId::TrafficLight).state_count(), 16u);
  EXPECT_EQ(domain().model(ScenarioId::WideMedian).state_count(), 8u);
  EXPECT_EQ(domain().model(ScenarioId::LeftTurnSignal).state_count(), 12u);
  EXPECT_EQ(domain().model(ScenarioId::TwoWayStop).state_count(), 8u);
  EXPECT_EQ(domain().model(ScenarioId::Roundabout).state_count(), 8u);
}

TEST_F(DrivingTest, StopSignAlwaysOnInTwoWayStop) {
  const auto& m = domain().model(ScenarioId::TwoWayStop);
  const auto sign = *domain().vocab().find("stop_sign");
  for (std::size_t p = 0; p < m.state_count(); ++p)
    EXPECT_TRUE(logic::Vocabulary::has(m.label(static_cast<int>(p)), sign));
}

TEST_F(DrivingTest, LeftTurnHeadShowsOneAspectAtATime) {
  const auto& m = domain().model(ScenarioId::LeftTurnSignal);
  const auto green = logic::Vocabulary::bit(
      *domain().vocab().find("green_left_turn_light"));
  const auto flash = logic::Vocabulary::bit(
      *domain().vocab().find("flashing_left_turn_light"));
  for (std::size_t p = 0; p < m.state_count(); ++p)
    EXPECT_NE(m.label(static_cast<int>(p)) & (green | flash), green | flash);
}

TEST_F(DrivingTest, TransitionsChangeAtMostTwoPropositions) {
  for (const Scenario& s : domain().scenarios()) {
    const auto& m = s.model;
    for (std::size_t p = 0; p < m.state_count(); ++p) {
      for (int q : m.successors(static_cast<int>(p))) {
        const auto diff = m.label(static_cast<int>(p)) ^ m.label(q);
        EXPECT_LE(__builtin_popcountll(diff), 2) << s.key;
      }
    }
  }
}

TEST_F(DrivingTest, UniversalModelIntegratesAllScenarios) {
  std::size_t total = 0;
  for (ScenarioId id : all_scenarios())
    total += domain().model(id).state_count();
  EXPECT_EQ(domain().universal_model().state_count(), total);
  EXPECT_TRUE(domain().universal_model().deadlock_states().empty());
}

TEST_F(DrivingTest, FairnessAssumptionsAreSatisfiableInTheirScenario) {
  // fair → false must NOT hold: some trace of the scenario is fair.
  for (const Scenario& s : domain().scenarios()) {
    automata::FsaController idle(domain().stop_action());
    idle.add_state();
    const auto k = automata::make_product(s.model, idle,
                                          domain().product_options());
    const auto res = modelcheck::check_under_fairness(
        k, logic::ltl::lfalse(), s.fairness);
    EXPECT_FALSE(res.holds)
        << s.key << ": fairness is unsatisfiable (vacuous)";
  }
}

// ---------------------------------------------------------------- specs ---

TEST_F(DrivingTest, RulebookHasFifteenSpecs) {
  EXPECT_EQ(domain().specs().size(), 15u);
  std::set<std::string> names;
  for (const auto& s : domain().specs()) names.insert(s.name);
  EXPECT_EQ(names.size(), 15u);
  EXPECT_TRUE(names.count("phi_1"));
  EXPECT_TRUE(names.count("phi_15"));
}

TEST_F(DrivingTest, RulebookHeadIsFirstFive) {
  const auto head = rulebook_head(domain().vocab());
  ASSERT_EQ(head.size(), 5u);
  EXPECT_EQ(head[0].name, "phi_1");
  EXPECT_EQ(head[4].name, "phi_5");
}

// ---------------------------------------------------------------- tasks ---

TEST_F(DrivingTest, CatalogHasTrainingAndValidationTasks) {
  std::size_t train = 0, val = 0;
  for (const auto& t : domain().tasks()) (t.training ? train : val)++;
  EXPECT_EQ(train, 5u);
  EXPECT_EQ(val, 3u);
}

TEST_F(DrivingTest, EveryTaskHasGoodAndUnalignedVariants) {
  for (const auto& t : domain().tasks()) {
    bool good = false, unaligned = false;
    for (const auto& v : t.variants) {
      good |= v.tag == FlawTag::Good;
      unaligned |= v.tag == FlawTag::Unaligned;
    }
    EXPECT_TRUE(good) << t.id;
    EXPECT_TRUE(unaligned) << t.id;
    EXPECT_GE(t.variants.size(), 6u) << t.id;
  }
}

TEST_F(DrivingTest, VariantTextsAreDistinctWithinATask) {
  for (const auto& t : domain().tasks()) {
    std::set<std::string> texts;
    for (const auto& v : t.variants) texts.insert(v.text);
    EXPECT_EQ(texts.size(), t.variants.size()) << t.id;
  }
}

TEST_F(DrivingTest, TaskByIdFindsAndThrows) {
  EXPECT_EQ(domain().task_by_id("enter_roundabout").scenario,
            scenario_name(ScenarioId::Roundabout));
  EXPECT_THROW((void)domain().task_by_id("no_such_task"), ContractViolation);
}

// ------------------------------------------------------------- feedback ---

TEST_F(DrivingTest, GoodVariantsSatisfyAllSpecs) {
  for (const auto& t : domain().tasks()) {
    for (const auto& v : t.variants) {
      if (v.tag != FlawTag::Good && v.tag != FlawTag::GoodVerbose) continue;
      const auto fb = formal_feedback(domain(), t.scenario, v.text);
      ASSERT_TRUE(fb.aligned) << t.id << "/" << flaw_name(v.tag);
      EXPECT_EQ(fb.report.satisfied(), domain().specs().size())
          << t.id << "/" << flaw_name(v.tag) << " violated: "
          << (fb.report.violated().empty() ? "" : fb.report.violated()[0]);
    }
  }
}

TEST_F(DrivingTest, FlawedVariantsFailAtLeastOneSpec) {
  for (const auto& t : domain().tasks()) {
    for (const auto& v : t.variants) {
      // Φ12 legitimately exempts an all-clear unprotected left turn, so
      // dropping the arrow-check there stays compliant; skip those two.
      if (v.tag == FlawTag::Good || v.tag == FlawTag::GoodVerbose ||
          v.tag == FlawTag::NoLightCheck || v.tag == FlawTag::NoPedCheck)
        continue;
      const auto fb = formal_feedback(domain(), t.scenario, v.text);
      if (v.tag == FlawTag::Unaligned) {
        EXPECT_FALSE(fb.aligned) << t.id;
        EXPECT_EQ(fb.score(), -1) << t.id;
        continue;
      }
      ASSERT_TRUE(fb.aligned) << t.id << "/" << flaw_name(v.tag);
      EXPECT_LT(fb.report.satisfied(), domain().specs().size())
          << t.id << "/" << flaw_name(v.tag);
    }
  }
}

TEST_F(DrivingTest, ScoreRanksAlignedAboveUnaligned) {
  const auto& task = domain().task_by_id("turn_right_traffic_light");
  int worst_aligned = 1000;
  for (const auto& v : task.variants) {
    const auto fb = formal_feedback(domain(), task.scenario, v.text);
    if (fb.aligned) worst_aligned = std::min(worst_aligned, fb.score());
  }
  EXPECT_GT(worst_aligned, -1);
}

// ------------------------------------------------------ feedback cache ---

TEST_F(DrivingTest, CanonicalTextMatchesStepSplitterProjection) {
  EXPECT_EQ(canonical_response_text("1. Stop.\n2. Go straight."),
            "1. Stop.\n2. Go straight.");
  // CRLF endings, trailing spaces, and blank lines all canonicalize away —
  // exactly what glm2fsa's step splitter ignores.
  EXPECT_EQ(canonical_response_text("  1. Stop.  \r\n\r\n2. Go straight.\r\n"),
            "1. Stop.\n2. Go straight.");
  EXPECT_EQ(canonical_response_text("\n\n  \n"), "");
}

TEST_F(DrivingTest, FeedbackCacheHitReplaysIdenticalResult) {
  auto& d = cache_domain();
  d.clear_feedback_cache();
  const auto& task = d.task_by_id("turn_right_traffic_light");
  const auto first = formal_feedback(d, task.scenario, task.variants[1].text);
  const auto second = formal_feedback(d, task.scenario, task.variants[1].text);
  EXPECT_EQ(first.aligned, second.aligned);
  EXPECT_EQ(first.score(), second.score());
  EXPECT_EQ(first.report.satisfied(), second.report.satisfied());
  EXPECT_EQ(first.report.violated(), second.report.violated());
  EXPECT_EQ(first.controller.state_count(), second.controller.state_count());
  const auto stats = d.feedback_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
}

TEST_F(DrivingTest, WhitespaceVariantsShareOneCacheEntry) {
  auto& d = cache_domain();
  d.clear_feedback_cache();
  const auto& task = d.task_by_id("turn_right_traffic_light");
  const std::string text = task.variants[0].text;
  std::string noisy;
  for (char c : text) noisy += (c == '\n') ? std::string("  \r\n\r\n")
                                           : std::string(1, c);
  noisy += "\n\n";
  const auto clean_fb = formal_feedback(d, task.scenario, text);
  const auto noisy_fb = formal_feedback(d, task.scenario, noisy);
  EXPECT_EQ(clean_fb.score(), noisy_fb.score());
  const auto stats = d.feedback_cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u) << "noisy text must hit the clean text's entry";
}

TEST_F(DrivingTest, SameTextDifferentScenarioIsADistinctEntry) {
  auto& d = cache_domain();
  d.clear_feedback_cache();
  const auto& task = d.task_by_id("turn_right_traffic_light");
  (void)formal_feedback(d, ScenarioId::TrafficLight, task.variants[0].text);
  (void)formal_feedback(d, ScenarioId::WideMedian, task.variants[0].text);
  const auto stats = d.feedback_cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
}

TEST_F(DrivingTest, DisabledFeedbackCacheBypassesCounters) {
  auto& d = cache_domain();
  d.clear_feedback_cache();
  d.set_feedback_cache(false);
  const auto& task = d.task_by_id("turn_right_traffic_light");
  const auto a = formal_feedback(d, task.scenario, task.variants[0].text);
  const auto b = formal_feedback(d, task.scenario, task.variants[0].text);
  d.set_feedback_cache(true);
  EXPECT_EQ(a.score(), b.score());
  const auto stats = d.feedback_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.inserts, 0u);
}

// ------------------------------------------- paper's worked examples ---

TEST_F(DrivingTest, PaperRightTurnBeforeFailsPhi5WithCounterexample) {
  const auto fb = formal_feedback(domain(), ScenarioId::TrafficLight,
                                  paper_right_turn_before());
  ASSERT_TRUE(fb.aligned);
  const auto violated = fb.report.violated();
  EXPECT_NE(std::find(violated.begin(), violated.end(), "phi_5"),
            violated.end());
  // The checker must return a concrete lasso counter-example for Φ5.
  for (const auto& o : fb.report.outcomes) {
    if (o.spec.name != "phi_5") continue;
    EXPECT_FALSE(o.result.holds);
    EXPECT_FALSE(o.result.counterexample.cycle.empty());
  }
}

TEST_F(DrivingTest, PaperRightTurnAfterSatisfiesAllSpecs) {
  const auto fb = formal_feedback(domain(), ScenarioId::TrafficLight,
                                  paper_right_turn_after());
  ASSERT_TRUE(fb.aligned);
  EXPECT_EQ(fb.report.satisfied(), 15u)
      << "violated: "
      << (fb.report.violated().empty() ? "" : fb.report.violated()[0]);
}

TEST_F(DrivingTest, PaperLeftTurnBeforeFailsPhi12) {
  const auto fb = formal_feedback(domain(), ScenarioId::LeftTurnSignal,
                                  paper_left_turn_before());
  ASSERT_TRUE(fb.aligned);
  const auto violated = fb.report.violated();
  EXPECT_NE(std::find(violated.begin(), violated.end(), "phi_12"),
            violated.end());
}

TEST_F(DrivingTest, PaperLeftTurnAfterSatisfiesAllSpecs) {
  const auto fb = formal_feedback(domain(), ScenarioId::LeftTurnSignal,
                                  paper_left_turn_after());
  ASSERT_TRUE(fb.aligned);
  EXPECT_EQ(fb.report.satisfied(), 15u);
}

TEST_F(DrivingTest, BeforeControllerHasFiveStatesAfterHasThree) {
  // Figure 7: the before controller has one state per step (5), the
  // fine-tuned controller three.
  const auto before = glm2fsa::glm2fsa(paper_right_turn_before(),
                                       domain().aligner(),
                                       domain().build_options());
  const auto after = glm2fsa::glm2fsa(paper_right_turn_after(),
                                      domain().aligner(),
                                      domain().build_options());
  ASSERT_TRUE(before.parsed.ok());
  ASSERT_TRUE(after.parsed.ok());
  EXPECT_EQ(before.controller.state_count(), 5u);
  EXPECT_EQ(after.controller.state_count(), 3u);
}

}  // namespace
}  // namespace dpoaf::driving
