// Load generator for the continuous-batching generation service: submits
// an open-loop arrival trace (fixed inter-arrival gaps) against a
// GenerationService and prints two kinds of output.
//
//   stdout — deterministic request outcomes (token counts, finish reasons,
//            a hash of every generated id). The service runs in
//            deterministic mode, so this is byte-identical across runs,
//            arrival timings, slot counts, and thread counts; CI diffs two
//            runs to enforce it.
//   stderr or --latency-out FILE — the wall-clock latency table
//            (queue / time-to-first-token / total), which legitimately
//            varies run to run and is kept off stdout.
//
// Usage: serve_demo [--requests N] [--slots N] [--threads N] [--seed N]
//                   [--arrival-us N] [--max-new N] [--latency-out PATH]
//                   [--kv-block N] [--preamble N] [--no-prefix]
//
// Half the trace shares a scenario preamble of --preamble tokens, so the
// paged KV cache's prefix sharing engages; --kv-block sets the block size
// (outputs are byte-identical at any value — CI diffs runs across
// {1, 8, 64}) and --no-prefix disables sharing (same outputs, more
// prefill). Cache telemetry is wall-clock/timing dependent and therefore
// printed with the latency table, never on stdout.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "nn/gpt.hpp"
#include "serve/service.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace {

using namespace dpoaf;

// FNV-1a over the generated ids: one stable word per request on stdout
// instead of dumping every token.
std::uint64_t hash_ids(const std::vector<int>& ids) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const int id : ids) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(id));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

int main(int argc, char** argv) {
  int requests = 24;
  int slots = 4;
  int threads = 4;
  std::uint64_t seed = 7;
  int arrival_us = 2000;
  int max_new = 24;
  int kv_block = 16;
  int preamble_len = 12;
  bool prefix_sharing = true;
  std::string latency_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--requests" && i + 1 < argc) requests = std::atoi(argv[i + 1]);
    if (arg == "--slots" && i + 1 < argc) slots = std::atoi(argv[i + 1]);
    if (arg == "--threads" && i + 1 < argc) threads = std::atoi(argv[i + 1]);
    if (arg == "--seed" && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    if (arg == "--arrival-us" && i + 1 < argc)
      arrival_us = std::atoi(argv[i + 1]);
    if (arg == "--max-new" && i + 1 < argc) max_new = std::atoi(argv[i + 1]);
    if (arg == "--kv-block" && i + 1 < argc) kv_block = std::atoi(argv[i + 1]);
    if (arg == "--preamble" && i + 1 < argc)
      preamble_len = std::atoi(argv[i + 1]);
    if (arg == "--no-prefix") prefix_sharing = false;
    if (arg == "--latency-out" && i + 1 < argc) latency_out = argv[i + 1];
  }

  util::set_global_threads(threads);

  nn::GptConfig mcfg;
  mcfg.vocab_size = 80;
  mcfg.d_model = 48;
  mcfg.n_heads = 4;
  mcfg.n_layers = 2;
  mcfg.d_ff = 192;
  mcfg.max_seq = 96;
  Rng model_rng(seed);
  nn::TinyGpt model(mcfg, model_rng);

  serve::ServiceConfig scfg;
  scfg.slots = slots;
  scfg.queue_capacity = std::max(64, requests);
  scfg.deterministic = true;
  scfg.seed = seed;
  scfg.kv_block_tokens = kv_block;
  scfg.prefix_sharing = prefix_sharing;
  serve::GenerationService service(model, scfg);

  // Build the trace up front so request contents never depend on timing.
  // Even-indexed requests open with a shared scenario preamble — the
  // prefix tree caches its KV blocks once and later arrivals adopt them.
  Rng trace_rng(seed + 1);
  std::vector<int> preamble(static_cast<std::size_t>(
      std::max(0, std::min(preamble_len, static_cast<int>(mcfg.max_seq) -
                                             (max_new > 0 ? max_new : 1) -
                                             9))));
  for (auto& t : preamble)
    t = static_cast<int>(trace_rng.below(mcfg.vocab_size));
  std::vector<serve::GenerateRequest> trace;
  trace.reserve(static_cast<std::size_t>(requests));
  for (int i = 0; i < requests; ++i) {
    serve::GenerateRequest req;
    if (i % 2 == 0) req.prompt = preamble;
    const std::size_t suffix = 1 + trace_rng.below(8);
    for (std::size_t j = 0; j < suffix; ++j)
      req.prompt.push_back(static_cast<int>(trace_rng.below(mcfg.vocab_size)));
    req.max_new_tokens = max_new;
    req.temperature = 0.9f;
    req.top_k = 6;
    req.eos_id = 1;
    req.seed = trace_rng();
    req.priority = static_cast<int>(trace_rng.below(3));
    trace.push_back(std::move(req));
  }

  // Open-loop submission: one request per arrival tick, regardless of how
  // the previous ones are progressing (blocking submit applies
  // backpressure only if the queue saturates).
  std::vector<serve::Submission> pending;
  pending.reserve(trace.size());
  for (auto& req : trace) {
    pending.push_back(service.submit(serve::GenerateRequest(req)));
    if (arrival_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(arrival_us));
  }

  std::vector<double> queue_ms, ttft_ms, total_ms;
  std::uint64_t tokens = 0;
  std::cout << "req  prompt  tokens  finish    truncated  ids_hash\n";
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const serve::GenerateResult r = pending[i].result.get();
    tokens += r.ids.size();
    queue_ms.push_back(static_cast<double>(r.queue_ns) / 1e6);
    if (r.ttft_ns > 0) ttft_ms.push_back(static_cast<double>(r.ttft_ns) / 1e6);
    total_ms.push_back(static_cast<double>(r.total_ns) / 1e6);
    std::cout << i << "  " << trace[i].prompt.size() << "  " << r.ids.size()
              << "  " << serve::to_string(r.finish) << "  "
              << (r.truncated ? "yes" : "no") << "  " << std::hex
              << hash_ids(r.ids) << std::dec << "\n";
  }
  service.shutdown();

  const auto stats = service.stats();
  std::cout << "\naccepted " << stats.accepted << ", completed "
            << stats.completed << ", generated tokens "
            << stats.generated_tokens << "\n";

  // Wall-clock latency breakdown — off stdout so the determinism gate can
  // byte-diff the rest.
  TextTable table("serve latency (ms, wall clock)");
  table.set_header({"stage", "min", "mean", "p95", "max"});
  const auto add_stage = [&table](const std::string& name,
                                  std::vector<double> xs) {
    if (xs.empty()) return;
    RunningStats rs;
    for (const double x : xs) rs.add(x);
    table.add_row({name, TextTable::num(rs.min(), 3),
                   TextTable::num(rs.mean(), 3),
                   TextTable::num(quantile_of(xs, 0.95), 3),
                   TextTable::num(rs.max(), 3)});
  };
  add_stage("queue", queue_ms);
  add_stage("ttft", ttft_ms);
  add_stage("total", total_ms);
  // Paged-KV telemetry rides with the latency table: hit counts depend on
  // admission timing, so they stay off the byte-diffed stdout.
  TextTable cache("paged kv cache");
  cache.set_header({"metric", "value"});
  cache.add_row({"blocks total", std::to_string(stats.blocks_total)});
  cache.add_row({"blocks free", std::to_string(stats.blocks_free)});
  cache.add_row({"prefix hits", std::to_string(stats.prefix_hits)});
  cache.add_row(
      {"prefix tokens reused", std::to_string(stats.prefix_tokens_reused)});
  cache.add_row({"prefill steps", std::to_string(stats.prefill_steps)});
  cache.add_row({"cow copies", std::to_string(stats.cow_copies)});
  cache.add_row({"evicted blocks", std::to_string(stats.evicted_blocks)});
  if (!latency_out.empty()) {
    std::ofstream out(latency_out);
    if (!out) {
      std::cerr << "failed to open " << latency_out << "\n";
      return 1;
    }
    table.print(out);
    cache.print(out);
  } else {
    table.print(std::cerr);
    cache.print(std::cerr);
  }
  return 0;
}
