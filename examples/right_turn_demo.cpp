// §5.1 worked example: "turn right at the traffic light".
//
// Reproduces the paper's demonstration end-to-end: the pre-fine-tuning
// response is parsed, aligned, compiled to the 5-state controller of
// Figure 7 (left), implemented in the Figure-5 traffic-light model, and
// model-checked — the checker finds the Φ5 edge case the paper highlights
// ("the traffic light turns back to red and a car is coming from the left
// immediately after the agent is checking or waiting for pedestrians").
// The post-fine-tuning response compiles to the 3-state controller of
// Figure 7 (right) and passes all 15 specifications.
//
// The report is printed in a NuSMV-session-like style (paper Appendix D).
#include <iostream>

#include "automata/product.hpp"
#include "driving/domain.hpp"

namespace {

using namespace dpoaf;

void verify_and_report(const driving::DrivingDomain& domain,
                       const std::string& name, const std::string& response) {
  std::cout << "=== " << name << " ===\n" << response << "\n\n";
  auto g2f = glm2fsa::glm2fsa(response, domain.aligner(),
                              domain.build_options());
  if (!g2f.parsed.ok()) {
    std::cout << "alignment failed\n";
    return;
  }
  std::cout << g2f.controller.describe(domain.vocab()) << "\n";

  const auto scenario = driving::ScenarioId::TrafficLight;
  const auto product = automata::make_product(
      domain.model(scenario), g2f.controller, domain.product_options());
  const auto report = modelcheck::verify_all(product, domain.specs(),
                                             domain.fairness(scenario));

  // NuSMV-like session output (Appendix D).
  std::cout << "-- read_model (product: " << product.state_count()
            << " states, " << product.transition_count()
            << " transitions)\n";
  for (const auto& outcome : report.outcomes) {
    std::cout << "-- check_ltlspec -P \"" << outcome.spec.name << "\"  ("
              << logic::to_string(outcome.spec.formula, domain.vocab())
              << ")\n   specification is "
              << (outcome.result.holds ? "true" : "false") << "\n";
    if (!outcome.result.holds) {
      std::cout << "   counter-example: "
                << modelcheck::format_counterexample(
                       outcome.result.counterexample, product,
                       domain.model(scenario), g2f.controller,
                       domain.vocab())
                << "\n";
    }
  }
  std::cout << "== " << report.satisfied() << "/" << report.total()
            << " specifications satisfied ==\n\n";
}

}  // namespace

int main() {
  driving::DrivingDomain domain;
  verify_and_report(domain, "right turn, BEFORE fine-tuning (Fig. 7 left)",
                    driving::paper_right_turn_before());
  verify_and_report(domain, "right turn, AFTER fine-tuning (Fig. 7 right)",
                    driving::paper_right_turn_after());
  return 0;
}
