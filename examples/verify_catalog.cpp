// Example: run the formal-verification feedback channel over every response
// variant in the task catalog and print the per-variant specification
// counts — the raw material the DPO preference pairs are built from.
//
// Usage: verify_catalog [--violations]
//   --violations   also list which specifications each variant fails
#include <iostream>
#include <string>

#include "driving/domain.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const bool show_violations =
      argc > 1 && std::string(argv[1]) == "--violations";

  dpoaf::driving::DrivingDomain domain;
  dpoaf::TextTable table("formal feedback over the task catalog");
  table.set_header({"task", "variant", "aligned", "specs_satisfied", "of"});

  for (const auto& task : domain.tasks()) {
    for (const auto& variant : task.variants) {
      const auto fb =
          dpoaf::driving::formal_feedback(domain, task.scenario, variant.text);
      table.add_row({task.id, dpoaf::driving::flaw_name(variant.tag),
                     fb.aligned ? "yes" : "NO",
                     std::to_string(fb.aligned ? fb.report.satisfied() : 0),
                     std::to_string(domain.specs().size())});
      if (show_violations && fb.aligned) {
        for (const auto& name : fb.report.violated())
          std::cout << "  " << task.id << "/"
                    << dpoaf::driving::flaw_name(variant.tag) << " violates "
                    << name << "\n";
      }
      if (show_violations && !fb.aligned) {
        for (const auto& issue : fb.issues)
          std::cout << "  " << task.id << "/"
                    << dpoaf::driving::flaw_name(variant.tag)
                    << " alignment issue: step " << issue.step_index + 1
                    << " '" << issue.phrase << "': " << issue.message << "\n";
      }
    }
  }
  table.print(std::cout);
  return 0;
}
