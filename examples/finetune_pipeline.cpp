// End-to-end DPO-AF run at demonstration scale: pre-train the stand-in
// language model, sample responses, verify and rank them, fine-tune with
// DPO, and print before/after specification satisfaction for every task —
// the whole Figure-2 pipeline in one binary.
//
// Usage: finetune_pipeline [--epochs N] [--seed N]
//                          [--generate-scenarios N] [--holdout M]
//                          [--generator-seed N]
//                          [--metrics-json PATH] [--trace-json PATH]
//                          [--checkpoint-dir DIR] [--checkpoint-every N]
//                          [--resume [PATH]] [--streaming | --phased]
// (defaults are sized to finish in about a minute on a laptop core)
//
// --generate-scenarios N appends N procedurally generated scenarios to the
// paper's five (docs/GENERATOR.md) and scales the sampling knobs down so
// the bigger catalog still finishes quickly; --holdout M reserves the last
// M generated scenarios for the held-out generalization eval printed after
// training. Same seeds ⇒ byte-identical stdout (wall-clock fields only
// live in the JSON reports).
//
// --streaming (the default) runs sample→synthesize→verify→rank as a
// bounded-queue dataflow; --phased restores the barriered phases. Both
// produce bitwise-identical results (docs/PIPELINE.md).
//
// --metrics-json writes a dpoaf.run_report JSON document (metric counters,
// per-phase wall times, per-epoch loss/KL series); --trace-json writes a
// Chrome trace-event file loadable in chrome://tracing / ui.perfetto.dev.
//
// --checkpoint-dir enables durable snapshots (atomic .dpoaf files, see
// docs/CHECKPOINT_FORMAT.md) every --checkpoint-every epochs. --resume
// continues an interrupted run from the newest snapshot in the checkpoint
// directory (or from an explicit .dpoaf path) and produces results
// bitwise-identical to the uninterrupted run.
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;

  core::PipelineConfig cfg;
  cfg.seed = 3;
  cfg.dpo.epochs = 60;
  cfg.dpo.checkpoint_every = 20;
  cfg.dpo.pairs_per_epoch = 48;
  std::string metrics_path;
  std::string trace_path;
  bool resume = false;
  for (int i = 1; i + 1 < argc + 1; ++i) {
    const std::string arg = argv[i] ? argv[i] : "";
    if (arg == "--epochs" && i + 1 < argc)
      cfg.dpo.epochs = std::atoi(argv[i + 1]);
    if (arg == "--seed" && i + 1 < argc)
      cfg.seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    if (arg == "--generate-scenarios" && i + 1 < argc)
      cfg.generated_scenarios = std::atoi(argv[i + 1]);
    if (arg == "--holdout" && i + 1 < argc)
      cfg.holdout_scenarios = std::atoi(argv[i + 1]);
    if (arg == "--generator-seed" && i + 1 < argc)
      cfg.generator_seed = static_cast<std::uint64_t>(std::atoll(argv[i + 1]));
    if (arg == "--metrics-json" && i + 1 < argc) metrics_path = argv[i + 1];
    if (arg == "--trace-json" && i + 1 < argc) trace_path = argv[i + 1];
    if (arg == "--checkpoint-dir" && i + 1 < argc)
      cfg.checkpoint_dir = argv[i + 1];
    if (arg == "--checkpoint-every" && i + 1 < argc)
      cfg.checkpoint_every_epochs = std::atoi(argv[i + 1]);
    if (arg == "--streaming") cfg.streaming = true;
    if (arg == "--phased") cfg.streaming = false;
    if (arg == "--resume") {
      resume = true;
      // Optional explicit snapshot path; defaults to --checkpoint-dir.
      if (i + 1 < argc && argv[i + 1][0] != '-') cfg.resume_from = argv[i + 1];
    }
  }
  cfg.observability = !metrics_path.empty() || !trace_path.empty();
  // Enable metrics before the pipeline constructor runs: scenario
  // generation happens at construction time, and its generator.* counters
  // must land in the report.
  if (cfg.observability) obs::set_enabled(true);
  if (cfg.generated_scenarios > 0) {
    // A 64-scenario catalog at the default sampling scale would take far
    // longer than demonstration scale; trade samples per task for tasks.
    cfg.corpus_samples_per_task = 12;
    cfg.responses_per_task = 8;
    cfg.eval_samples_per_task = 4;
  }
  if (resume && cfg.resume_from.empty()) {
    if (cfg.checkpoint_dir.empty()) {
      std::cerr << "--resume needs --checkpoint-dir or an explicit path\n";
      return 1;
    }
    cfg.resume_from = cfg.checkpoint_dir;
  }

  core::DpoAfPipeline pipe(cfg);
  std::cout << "model: " << pipe.model().parameter_count()
            << " parameters, vocab " << pipe.tokenizer().vocab_size()
            << ", context " << pipe.model().config().max_seq << "\n";
  if (cfg.generated_scenarios > 0) {
    const auto& gs = pipe.domain().generator_stats();
    std::cout << "generator: " << gs.generated << " scenarios (" << gs.holdout
              << " held out), " << gs.specs_instantiated
              << " specs instantiated, discarded "
              << gs.specs_discarded_trivial << " trivial + "
              << gs.specs_discarded_unsat << " unsat\n";
  }

  core::RunResult result;
  if (resume) {
    std::cout << "\nresuming from " << cfg.resume_from << "...\n";
    result = pipe.run();
    std::cout << "      final loss "
              << TextTable::num(result.metrics.back().loss, 4)
              << ", accuracy "
              << TextTable::num(result.metrics.back().accuracy, 3)
              << ", margin "
              << TextTable::num(result.metrics.back().margin, 3) << "\n";
  } else {
    std::cout << "\n[1/4] pre-training on the synthetic driving corpus...\n";
    const auto pt = pipe.pretrain_model();
    std::cout << "      loss " << TextTable::num(pt.epoch_losses.front(), 3)
              << " -> " << TextTable::num(pt.epoch_losses.back(), 3) << "\n";

    std::cout << "\n[2/4] sampling " << pipe.config().responses_per_task
              << " responses per training task and verifying each...\n";
    const auto candidates = pipe.collect_candidates();
    for (const auto& tc : candidates) {
      std::cout << "      " << tc.task_id << ": scores";
      for (const auto& c : tc.candidates) std::cout << " " << c.score;
      std::cout << "\n";
    }

    const auto pairs = pipe.build_pairs(candidates);
    std::cout << "\n[3/4] " << pairs.size()
              << " preference pairs -> DPO fine-tuning (" << cfg.dpo.epochs
              << " epochs)...\n";
    result = pipe.run_dpo(pairs);
    std::cout << "      final loss "
              << TextTable::num(result.metrics.back().loss, 4)
              << ", accuracy "
              << TextTable::num(result.metrics.back().accuracy, 3)
              << ", margin "
              << TextTable::num(result.metrics.back().margin, 3) << "\n";
  }

  std::cout << "\n[4/4] specification satisfaction before vs after:\n\n";
  TextTable table(cfg.generated_scenarios > 0
                      ? "specifications satisfied (per-scenario rulebook, "
                        "sampled responses)"
                      : "specifications satisfied (of 15, sampled responses)");
  table.set_header({"task", "group", "before", "after"});
  const auto& first = result.checkpoints.front();
  const auto& last = result.checkpoints.back();
  for (std::size_t i = 0; i < first.per_task.size(); ++i) {
    const auto& task = pipe.domain().task_by_id(first.per_task[i].first);
    table.add_row({task.id, task.training ? "train" : "validation",
                   TextTable::num(first.per_task[i].second, 2),
                   TextTable::num(last.per_task[i].second, 2)});
  }
  table.add_row({"MEAN (train)", "",
                 TextTable::num(first.train_mean_satisfied, 2),
                 TextTable::num(last.train_mean_satisfied, 2)});
  table.add_row({"MEAN (validation)", "",
                 TextTable::num(first.val_mean_satisfied, 2),
                 TextTable::num(last.val_mean_satisfied, 2)});
  table.print(std::cout);

  if (result.has_generalization) {
    const auto& g = result.generalization;
    std::cout << "\nheld-out generalization (fraction of each scenario's "
                 "rulebook satisfied):\n\n";
    TextTable gt("final policy on " + std::to_string(g.train_tasks) +
                 " training vs " + std::to_string(g.holdout_tasks) +
                 " held-out tasks");
    gt.set_header({"metric", "train", "holdout"});
    gt.add_row({"satisfied fraction",
                TextTable::num(g.train_mean_satisfied_fraction, 3),
                TextTable::num(g.holdout_mean_satisfied_fraction, 3)});
    gt.add_row({"alignment failure rate",
                TextTable::num(g.train_alignment_failure_rate, 3),
                TextTable::num(g.holdout_alignment_failure_rate, 3)});
    gt.add_row({"violation rate", TextTable::num(g.train_violation_rate, 3),
                TextTable::num(g.holdout_violation_rate, 3)});
    for (const auto& [task_id, fraction] : g.per_holdout_task)
      gt.add_row({task_id, "-", TextTable::num(fraction, 3)});
    gt.print(std::cout);
  }

  if (cfg.observability) {
    obs::RunReport report = obs::capture_run_report("finetune_pipeline");
    std::vector<double> losses, kls;
    losses.reserve(result.metrics.size());
    kls.reserve(result.metrics.size());
    for (const auto& m : result.metrics) {
      losses.push_back(m.loss);
      kls.push_back(m.kl);
    }
    obs::add_series(report, "dpo.loss", std::move(losses));
    obs::add_series(report, "dpo.kl", std::move(kls));
    if (result.has_generalization) {
      const auto& g = result.generalization;
      obs::add_series(report, "generalization.train_satisfied_fraction",
                      {g.train_mean_satisfied_fraction});
      obs::add_series(report, "generalization.holdout_satisfied_fraction",
                      {g.holdout_mean_satisfied_fraction});
      obs::add_series(report, "generalization.train_alignment_failure",
                      {g.train_alignment_failure_rate});
      obs::add_series(report, "generalization.holdout_alignment_failure",
                      {g.holdout_alignment_failure_rate});
      obs::add_series(report, "generalization.train_violation_rate",
                      {g.train_violation_rate});
      obs::add_series(report, "generalization.holdout_violation_rate",
                      {g.holdout_violation_rate});
    }
    if (!metrics_path.empty()) {
      if (!obs::write_text_file(metrics_path,
                                obs::to_json(report, /*include_trace=*/false))) {
        std::cerr << "failed to write " << metrics_path << "\n";
        return 1;
      }
      std::cout << "\nmetrics report -> " << metrics_path << "\n";
    }
    if (!trace_path.empty()) {
      if (!obs::write_text_file(trace_path, obs::to_chrome_trace(report))) {
        std::cerr << "failed to write " << trace_path << "\n";
        return 1;
      }
      std::cout << "chrome trace   -> " << trace_path
                << "  (open in chrome://tracing)\n";
    }
  }
  return 0;
}
