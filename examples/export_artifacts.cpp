// Export the paper's verification artifacts to files: Graphviz DOT for
// every scenario model and for the §5.1 controllers (regenerating the
// paper's Figures 5/6/7/15/16/17 with `dot -Tpng`), and a NuSMV module
// for the right-turn product (Appendix D) that NuSMV 2.6 can re-check.
//
// Usage: export_artifacts [output_dir]   (default: ./artifacts)
//        export_artifacts --inspect-checkpoint PATH
//
// The second form prints a human-readable summary of a .dpoaf training
// checkpoint (section table with sizes and CRCs, stage, epoch, model
// shape, dataset counts) without loading any model — the operator's view
// into docs/CHECKPOINT_FORMAT.md.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "automata/dot_export.hpp"
#include "ckpt/checkpoint.hpp"
#include "driving/domain.hpp"
#include "modelcheck/smv_export.hpp"

int main(int argc, char** argv) {
  using namespace dpoaf;
  if (argc > 1 && std::string(argv[1]) == "--inspect-checkpoint") {
    if (argc < 3) {
      std::cerr << "usage: export_artifacts --inspect-checkpoint PATH\n";
      return 1;
    }
    try {
      std::cout << ckpt::describe_file(argv[2]);
    } catch (const ckpt::CheckpointError& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
    return 0;
  }
  const std::filesystem::path out_dir =
      argc > 1 ? argv[1] : "artifacts";
  std::filesystem::create_directories(out_dir);

  driving::DrivingDomain domain;
  auto write = [&out_dir](const std::string& name, const std::string& text) {
    const auto path = out_dir / name;
    std::ofstream os(path);
    os << text;
    std::cout << "wrote " << path.string() << " (" << text.size()
              << " bytes)\n";
  };

  // Scenario models (Figures 5, 6, 15, 16, 17).
  for (driving::ScenarioId id : driving::all_scenarios()) {
    const auto name = driving::scenario_name(id);
    write("model_" + name + ".dot",
          automata::to_dot(domain.model(id), domain.vocab(), name));
  }

  // §5.1 controllers (Figure 7) and their product with the traffic-light
  // model, plus the Appendix-D SMV module.
  for (const auto& [tag, text] :
       {std::pair<std::string, std::string>{"right_turn_before",
                                            driving::paper_right_turn_before()},
        {"right_turn_after", driving::paper_right_turn_after()}}) {
    auto g2f = glm2fsa::glm2fsa(text, domain.aligner(),
                                domain.build_options());
    if (!g2f.parsed.ok()) continue;
    write("controller_" + tag + ".dot",
          automata::to_dot(g2f.controller, domain.vocab(), tag));
    const auto product = automata::make_product(
        domain.model(driving::ScenarioId::TrafficLight), g2f.controller,
        domain.product_options());
    write("product_" + tag + ".smv",
          modelcheck::to_smv(
              product, domain.vocab(), domain.specs(),
              domain.fairness(driving::ScenarioId::TrafficLight)));
  }
  std::cout << "render figures with: dot -Tpng " << out_dir.string()
            << "/model_traffic_light.dot -o fig5.png\n"
            << "cross-check with:    NuSMV -source <(echo 'read_model -i "
            << out_dir.string() << "/product_right_turn_before.smv; go; "
            << "check_ltlspec; quit')\n";
  return 0;
}
