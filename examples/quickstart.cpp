// Quickstart: the library's public API in five steps.
//
//   1. Build the driving domain (vocabulary, scenario models, rulebook).
//   2. Turn a natural-language step list into an FSA controller (GLM2FSA).
//   3. Implement the controller in a world model (product automaton) and
//      formally verify it against the 15 LTL specifications.
//   4. Inspect the counter-example of a violated specification.
//   5. Operate the controller in the simulator and check traces
//      empirically (LTLf) — the second feedback channel.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "automata/product.hpp"
#include "driving/domain.hpp"
#include "sim/empirical.hpp"

int main() {
  using namespace dpoaf;

  // 1. The assembled autonomous-driving system.
  driving::DrivingDomain domain;
  std::cout << "domain: " << domain.specs().size() << " specifications, "
            << domain.tasks().size() << " tasks, "
            << domain.universal_model().state_count()
            << " universal-model states\n\n";

  // 2. A natural-language response → an automaton-based controller.
  const std::string response =
      "1. Observe the traffic light.\n"
      "2. If no car from the left and no pedestrian on the right, "
      "turn right.";
  auto g2f = glm2fsa::glm2fsa(response, domain.aligner(),
                              domain.build_options());
  if (!g2f.parsed.ok()) {
    std::cerr << "alignment failed\n";
    return 1;
  }
  std::cout << g2f.controller.describe(domain.vocab()) << "\n";

  // 3. Implement in the traffic-light scenario model and verify.
  const auto scenario = driving::ScenarioId::TrafficLight;
  const auto product = automata::make_product(
      domain.model(scenario), g2f.controller, domain.product_options());
  const auto report = modelcheck::verify_all(product, domain.specs(),
                                             domain.fairness(scenario));
  std::cout << "formal verification: " << report.satisfied() << "/"
            << report.total() << " specifications satisfied\n";

  // 4. Counter-examples for anything violated.
  for (const auto& outcome : report.outcomes) {
    if (outcome.result.holds) continue;
    std::cout << "  " << outcome.spec.name << " = "
              << logic::to_string(outcome.spec.formula, domain.vocab())
              << "\n  counter-example: "
              << modelcheck::format_counterexample(
                     outcome.result.counterexample, product,
                     domain.model(scenario), g2f.controller, domain.vocab())
              << "\n";
  }

  // 5. Empirical evaluation: operate the controller in the simulator.
  sim::SimulatorConfig sim_cfg;
  sim_cfg.horizon = 40;
  sim_cfg.epsilon_label = domain.stop_action();
  sim::Simulator simulator(domain.model(scenario), sim_cfg);
  Rng rng(1);
  const auto empirical = sim::empirical_evaluation(
      simulator, g2f.controller, domain.specs(), 200, rng);
  std::cout << "\nempirical evaluation over " << empirical.rollouts
            << " rollouts (P_Phi per spec):\n";
  for (const auto& s : empirical.per_spec)
    std::cout << "  " << s.spec_name << ": " << s.probability << "\n";
  return 0;
}
