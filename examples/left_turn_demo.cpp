// Appendix C worked example: "turn left at the traffic light" with the
// explicit left-turn signal (Figure 15 model, Figure 18 controllers).
//
// The pre-fine-tuning response waits for the arrow and for oncoming
// traffic in *separate sequential steps*, then turns unconditionally —
// the checker catches Φ12 (an unprotected left turn requires no cars and
// no oncoming traffic at the instant of the turn). The fine-tuned response
// gates the turn on the green arrow directly and passes all 15
// specifications.
#include <iostream>

#include "automata/product.hpp"
#include "driving/domain.hpp"

namespace {

using namespace dpoaf;

void verify_and_report(const driving::DrivingDomain& domain,
                       const std::string& name, const std::string& response) {
  std::cout << "=== " << name << " ===\n" << response << "\n\n";
  auto g2f = glm2fsa::glm2fsa(response, domain.aligner(),
                              domain.build_options());
  if (!g2f.parsed.ok()) {
    std::cout << "alignment failed:\n";
    for (const auto& issue : g2f.parsed.issues)
      std::cout << "  step " << issue.step_index + 1 << " '" << issue.phrase
                << "': " << issue.message << "\n";
    return;
  }
  std::cout << g2f.controller.describe(domain.vocab()) << "\n";

  const auto scenario = driving::ScenarioId::LeftTurnSignal;
  const auto product = automata::make_product(
      domain.model(scenario), g2f.controller, domain.product_options());
  const auto report = modelcheck::verify_all(product, domain.specs(),
                                             domain.fairness(scenario));
  std::cout << "satisfied " << report.satisfied() << "/" << report.total()
            << "; violated:";
  if (report.violated().empty()) std::cout << " (none)";
  for (const auto& v : report.violated()) std::cout << " " << v;
  std::cout << "\n";
  for (const auto& outcome : report.outcomes) {
    if (outcome.result.holds) continue;
    std::cout << "  " << outcome.spec.name << ": "
              << modelcheck::format_counterexample(
                     outcome.result.counterexample, product,
                     domain.model(scenario), g2f.controller, domain.vocab())
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  driving::DrivingDomain domain;
  verify_and_report(domain,
                    "left turn, BEFORE fine-tuning (Fig. 18 left)",
                    driving::paper_left_turn_before());
  verify_and_report(domain, "left turn, AFTER fine-tuning (Fig. 18 right)",
                    driving::paper_left_turn_after());
  return 0;
}
