# Empty dependencies file for test_exports.
# This may be replaced when dependencies are built.
