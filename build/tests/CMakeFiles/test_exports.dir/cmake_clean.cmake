file(REMOVE_RECURSE
  "CMakeFiles/test_exports.dir/test_exports.cpp.o"
  "CMakeFiles/test_exports.dir/test_exports.cpp.o.d"
  "test_exports"
  "test_exports.pdb"
  "test_exports[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
