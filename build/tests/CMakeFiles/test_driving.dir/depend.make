# Empty dependencies file for test_driving.
# This may be replaced when dependencies are built.
