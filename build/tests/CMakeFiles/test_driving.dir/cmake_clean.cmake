file(REMOVE_RECURSE
  "CMakeFiles/test_driving.dir/test_driving.cpp.o"
  "CMakeFiles/test_driving.dir/test_driving.cpp.o.d"
  "test_driving"
  "test_driving.pdb"
  "test_driving[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_driving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
