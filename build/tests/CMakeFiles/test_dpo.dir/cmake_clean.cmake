file(REMOVE_RECURSE
  "CMakeFiles/test_dpo.dir/test_dpo.cpp.o"
  "CMakeFiles/test_dpo.dir/test_dpo.cpp.o.d"
  "test_dpo"
  "test_dpo.pdb"
  "test_dpo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dpo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
