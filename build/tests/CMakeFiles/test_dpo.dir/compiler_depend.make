# Empty compiler generated dependencies file for test_dpo.
# This may be replaced when dependencies are built.
