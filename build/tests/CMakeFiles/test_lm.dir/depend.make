# Empty dependencies file for test_lm.
# This may be replaced when dependencies are built.
