file(REMOVE_RECURSE
  "CMakeFiles/test_lm.dir/test_lm.cpp.o"
  "CMakeFiles/test_lm.dir/test_lm.cpp.o.d"
  "test_lm"
  "test_lm.pdb"
  "test_lm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
