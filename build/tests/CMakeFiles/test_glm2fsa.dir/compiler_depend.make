# Empty compiler generated dependencies file for test_glm2fsa.
# This may be replaced when dependencies are built.
