file(REMOVE_RECURSE
  "CMakeFiles/test_glm2fsa.dir/test_glm2fsa.cpp.o"
  "CMakeFiles/test_glm2fsa.dir/test_glm2fsa.cpp.o.d"
  "test_glm2fsa"
  "test_glm2fsa.pdb"
  "test_glm2fsa[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_glm2fsa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
